(* The paper's motivating scenario: an operational telecom database
   that cannot stop taking traffic while its schema is denormalized.

     dune exec examples/telecom_foj.exe

   subscriber(imsi, name, plan_id) and plan(plan_id, rate_cents) are
   joined into account(plan_id, imsi, name, rate_cents) while a call
   workload keeps updating subscribers. Synchronization uses the
   non-blocking abort strategy: at switch-over, in-flight transactions
   on the old tables are rolled back and new traffic continues on the
   new table; the old tables are dropped. *)

open Nbsc_value
open Nbsc_core
module Manager = Nbsc_txn.Manager

let subscribers = 20_000
let plans = 40

let ok = function
  | Ok v -> v
  | Error e -> failwith (Format.asprintf "%a" Manager.pp_error e)

let () =
  let db = Db.create () in
  let col = Schema.column in
  ignore
    (Db.create_table db ~name:"subscriber"
       (Schema.make ~key:[ "imsi" ]
          [ col ~nullable:false "imsi" Value.TInt; col "name" Value.TText;
            col "plan_id" Value.TInt ]));
  ignore
    (Db.create_table db ~name:"plan"
       (Schema.make ~key:[ "plan_id" ]
          [ col ~nullable:false "plan_id" Value.TInt;
            col "rate_cents" Value.TInt ]));
  let rec load_range table make lo hi =
    if lo < hi then begin
      let upper = min hi (lo + 1000) in
      ok (Db.load db ~table (List.init (upper - lo) (fun i -> make (lo + i))));
      load_range table make upper hi
    end
  in
  load_range "subscriber"
    (fun i ->
       Row.make
         [ Value.Int i; Value.Text (Printf.sprintf "sub-%d" i);
           Value.Int (i mod plans) ])
    0 subscribers;
  load_range "plan"
    (fun p -> Row.make [ Value.Int p; Value.Int (100 + p) ])
    0 plans;

  let spec =
    { Spec.r_table = "subscriber";
      s_table = "plan";
      t_table = "account";
      join_r = [ "plan_id" ];
      join_s = [ "plan_id" ];
      t_join = [ "plan_id" ];
      r_carry = [ "imsi"; "name" ];
      s_carry = [ "rate_cents" ];
      many_to_many = false }
  in
  let config =
    { Transform.default_config with
      Transform.strategy = Transform.Nonblocking_abort;
      drop_sources = true;
      scan_batch = 512;
      propagate_batch = 256 }
  in
  let tf = Transform.foj db ~config spec in

  (* Call traffic: short transactions touching subscribers; after the
     switch-over they move to the new account table. *)
  let mgr = Db.manager db in
  let rng = Random.State.make [| 2006 |] in
  let traffic = ref 0 and rerouted = ref 0 and rejected = ref 0 in
  let one_call () =
    incr traffic;
    let imsi = Random.State.int rng subscribers in
    let txn = Manager.begin_txn mgr in
    let outcome =
      if Transform.routing tf = `Sources then
        Manager.update mgr ~txn ~table:"subscriber"
          ~key:(Row.make [ Value.Int imsi ])
          [ (1, Value.Text (Printf.sprintf "sub-%d'" imsi)) ]
      else begin
        incr rerouted;
        (* The new table is keyed by (imsi, plan_id); look the record up
           through the subscriber-key index. *)
        let account = Db.table db "account" in
        match
          Nbsc_storage.Table.index_lookup account ~index:Spec.ix_by_r_key
            (Row.make [ Value.Int imsi ])
        with
        | [ key ] ->
          Manager.update mgr ~txn ~table:"account" ~key
            [ (2, Value.Text (Printf.sprintf "sub-%d''" imsi)) ]
        | _ -> Ok ()
      end
    in
    match outcome with
    | Ok () -> ok (Manager.commit mgr txn)
    | Error _ ->
      incr rejected;
      ignore (Manager.abort mgr txn)
  in

  let phase_log = ref [] in
  let last_phase = ref (Transform.phase tf) in
  (match
     Transform.run tf ~between:(fun () ->
         one_call ();
         let phase = Transform.phase tf in
         if phase <> !last_phase then begin
           phase_log := (!traffic, phase) :: !phase_log;
           last_phase := phase
         end)
   with
   | Ok () -> ()
   | Error m -> failwith m);

  Format.printf "phases (after N calls):@.";
  List.iter
    (fun (n, phase) ->
       Format.printf "  after %6d calls -> %a@." n Transform.pp_phase phase)
    (List.rev !phase_log);
  let p = Transform.progress tf in
  Format.printf "%a@." Transform.pp_progress p;
  Format.printf
    "calls made: %d (rerouted to new schema: %d, rejected during change: %d)@."
    !traffic !rerouted !rejected;
  Format.printf "old tables dropped: subscriber=%b plan=%b; account rows: %d@."
    (not (Nbsc_storage.Catalog.mem (Db.catalog db) "subscriber"))
    (not (Nbsc_storage.Catalog.mem (Db.catalog db) "plan"))
    (Db.row_count db "account");
  Format.printf "forced aborts at switch-over: %d (their work was rolled back)@."
    p.Transform.forced_aborts
