(* Normalization online: the paper's Figure 3 / Example 1.

     dune exec examples/customer_split.exe

   A denormalized customer table with the functional dependency
   postal_code -> city is split into customer(id, name, postal_code)
   and place(postal_code, city) — except the data contains the paper's
   Example 1 inconsistency ("Trnodheim"), so the transformation runs in
   checked mode: the offending place record is U-flagged, the
   consistency checker keeps refusing to confirm it, and the
   transformation cannot synchronize until a user transaction repairs
   the typo. *)

open Nbsc_value
open Nbsc_core
module Manager = Nbsc_txn.Manager
module Table = Nbsc_storage.Table
module Record = Nbsc_storage.Record

let ok = function
  | Ok v -> v
  | Error e -> failwith (Format.asprintf "%a" Manager.pp_error e)

(* Ordered so that customer 134 (postal code 5004) lives in Trondheim,
   matching the paper's Example 1. *)
let cities = [| "Bergen"; "Oslo"; "Stavanger"; "Molde"; "Trondheim" |]

let () =
  let db = Db.create () in
  let col = Schema.column in
  ignore
    (Db.create_table db ~name:"customer"
       (Schema.make ~key:[ "id" ]
          [ col ~nullable:false "id" Value.TInt; col "name" Value.TText;
            col "postal_code" Value.TInt; col "city" Value.TText ]));
  ok
    (Db.load db ~table:"customer"
       (List.init 2000 (fun i ->
            let pc = 5000 + (i mod 5) in
            Row.make
              [ Value.Int i; Value.Text (Printf.sprintf "cust-%d" i);
                Value.Int pc; Value.Text cities.(pc - 5000) ])));
  (* The Example 1 inconsistency: one record spells its city wrong. *)
  let txn = Manager.begin_txn (Db.manager db) in
  ok
    (Manager.update (Db.manager db) ~txn ~table:"customer"
       ~key:(Row.make [ Value.Int 134 ])
       [ (3, Value.Text "Trnodheim") ]);
  ok (Manager.commit (Db.manager db) txn);

  let spec =
    { Spec.t_table' = "customer";
      r_table' = "customer_norm";
      s_table' = "place";
      r_cols = [ "id"; "name"; "postal_code" ];
      s_cols = [ "postal_code"; "city" ];
      split_key = [ "postal_code" ];
      assume_consistent = false }
  in
  let config =
    { Transform.default_config with
      Transform.drop_sources = false;
      scan_batch = 128;
      propagate_batch = 128 }
  in
  let tf = Transform.split db ~config spec in

  let repaired = ref false in
  let checking_steps = ref 0 in
  let total = ref 0 in
  (match
     Transform.run tf ~between:(fun () ->
         incr total;
         if !total > 100_000 then failwith "no convergence";
         if Transform.phase tf = Transform.Checking then begin
           incr checking_steps;
           (* Give the checker a few rounds to demonstrate that it keeps
              refusing the inconsistent group, then repair the typo. *)
           if !checking_steps = 10 && not !repaired then begin
             repaired := true;
             let mgr = Db.manager db in
             let txn = Manager.begin_txn mgr in
             ok
               (Manager.update mgr ~txn ~table:"customer"
                  ~key:(Row.make [ Value.Int 134 ])
                  [ (3, Value.Text "Trondheim") ]);
             ok (Manager.commit mgr txn);
             Format.printf
               "DBA transaction repaired customer 134: Trnodheim -> Trondheim@."
           end
         end)
   with
   | Ok () -> ()
   | Error m -> failwith m);

  let cc = Option.get (Transform.checker tf) in
  let st = Consistency.stats cc in
  Format.printf "%a@." Transform.pp_progress (Transform.progress tf);
  Format.printf
    "consistency checker: %d checks started, %d confirmed, %d refused \
     (inconsistent data), %d invalidated by concurrent updates@."
    st.Consistency.started st.Consistency.confirmed st.Consistency.disagreed
    st.Consistency.invalidated;
  Format.printf "place table (every record C-flagged, counters = customers per \
                 postal code):@.";
  Table.iter (Db.table db "place") (fun _ record ->
      Format.printf "  %a@." Record.pp record);
  (* Verify against the oracle. *)
  let t = Db.snapshot db "customer" in
  let expected_r, expected_s =
    Nbsc_relalg.Relalg.split
      { Nbsc_relalg.Relalg.r_cols' = [ "id"; "name"; "postal_code" ];
        s_cols' = [ "postal_code"; "city" ];
        r_key = [ "id" ];
        s_key = [ "postal_code" ] }
      t
  in
  Format.printf "customer_norm matches oracle: %b; place matches oracle: %b@."
    (Nbsc_relalg.Relalg.equal_as_sets expected_r (Db.snapshot db "customer_norm"))
    (Nbsc_relalg.Relalg.equal_as_sets expected_s (Db.snapshot db "place"))
