(* Quickstart: join two tables into one without blocking writers.

     dune exec examples/quickstart.exe

   Creates R(a,b,c) and S(c,d), starts a full-outer-join transformation
   into T, keeps updating R while the transformation runs in the
   background, and shows that T ends up exactly equal to R FOJ S over
   the final data. *)

open Nbsc_value
open Nbsc_core
module Manager = Nbsc_txn.Manager

let ok = function
  | Ok v -> v
  | Error e -> failwith (Format.asprintf "%a" Manager.pp_error e)

let () =
  (* 1. A little database. *)
  let db = Db.create () in
  let col = Schema.column in
  ignore
    (Db.create_table db ~name:"R"
       (Schema.make ~key:[ "a" ]
          [ col ~nullable:false "a" Value.TInt; col "b" Value.TText;
            col "c" Value.TInt ]));
  ignore
    (Db.create_table db ~name:"S"
       (Schema.make ~key:[ "c" ]
          [ col ~nullable:false "c" Value.TInt; col "d" Value.TText ]));
  ok
    (Db.load db ~table:"R"
       (List.init 1000 (fun i ->
            Row.make
              [ Value.Int i; Value.Text (Printf.sprintf "user-%d" i);
                Value.Int (i mod 50) ])));
  ok
    (Db.load db ~table:"S"
       (List.init 50 (fun c ->
            Row.make [ Value.Int c; Value.Text (Printf.sprintf "group-%d" c) ])));

  (* 2. Describe the transformation: T(c,a,b,d) = R FOJ S on c. *)
  let spec =
    { Spec.r_table = "R";
      s_table = "S";
      t_table = "T";
      join_r = [ "c" ];
      join_s = [ "c" ];
      t_join = [ "c" ];
      r_carry = [ "a"; "b" ];
      s_carry = [ "d" ];
      many_to_many = false }
  in
  let config =
    { Transform.default_config with
      Transform.drop_sources = false;  (* keep R and S for the final check *)
      scan_batch = 8;
      propagate_batch = 8 }
  in
  let tf = Transform.foj db ~config spec in

  (* 3. Drive it to completion while writers keep writing. *)
  let mgr = Db.manager db in
  let writes = ref 0 in
  let write_something () =
    (* Write only while the old schema is live — after the switch-over
       the sources are frozen and new work belongs on T. *)
    if !writes < 500 && Transform.routing tf = `Sources then begin
      incr writes;
      let txn = Manager.begin_txn mgr in
      ok
        (Manager.update mgr ~txn ~table:"R"
           ~key:(Row.make [ Value.Int (!writes mod 1000) ])
           [ (1, Value.Text (Printf.sprintf "updated-%d" !writes)) ]);
      ok (Manager.commit mgr txn)
    end
  in
  (match Transform.run ~between:write_something tf with
   | Ok () -> ()
   | Error m -> failwith m);

  (* 4. Verify against the relational-algebra oracle. *)
  let oracle =
    Nbsc_relalg.Relalg.full_outer_join
      { Nbsc_relalg.Relalg.r_join = [ "c" ]; s_join = [ "c" ];
        out_join = [ "c" ]; r_cols = [ "a"; "b" ]; s_cols = [ "d" ];
        out_key = [ "a" ] }
      (Db.snapshot db "R") (Db.snapshot db "S")
  in
  let p = Transform.progress tf in
  Format.printf "transformation finished: %a@." Transform.pp_progress p;
  Format.printf "concurrent writes while it ran: %d@." !writes;
  Format.printf "T has %d rows; oracle says %d; equal: %b@."
    (Db.row_count db "T")
    (List.length oracle.Nbsc_relalg.Relalg.rows)
    (Nbsc_relalg.Relalg.equal_as_sets oracle (Db.snapshot db "T"))
