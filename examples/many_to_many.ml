(* Many-to-many full outer join (the paper's Sec. 4.2 extension).

     dune exec examples/many_to_many.exe

   person(pid, name, city) and store(sid, city, chain) are joined on
   city — many people and many stores share a city, so each source
   record contributes to several result records and the transformed
   table is keyed by (pid, sid). Concurrent movers (people changing
   city) exercise the many-to-many join-attribute-update rule, the
   heaviest rule in the framework. *)

open Nbsc_value
open Nbsc_core
module Manager = Nbsc_txn.Manager

let people = 600
let stores = 90
let cities = 12

let ok = function
  | Ok v -> v
  | Error e -> failwith (Format.asprintf "%a" Manager.pp_error e)

let () =
  let db = Db.create () in
  let col = Schema.column in
  ignore
    (Db.create_table db ~name:"person"
       (Schema.make ~key:[ "pid" ]
          [ col ~nullable:false "pid" Value.TInt; col "name" Value.TText;
            col "city" Value.TInt ]));
  ignore
    (Db.create_table db ~name:"store"
       (Schema.make ~key:[ "sid" ]
          [ col ~nullable:false "sid" Value.TInt; col "city" Value.TInt;
            col "chain" Value.TText ]));
  ok
    (Db.load db ~table:"person"
       (List.init people (fun i ->
            Row.make
              [ Value.Int i; Value.Text (Printf.sprintf "p%d" i);
                Value.Int (i mod cities) ])));
  ok
    (Db.load db ~table:"store"
       (List.init stores (fun i ->
            Row.make
              [ Value.Int i; Value.Int (i mod cities);
                Value.Text (Printf.sprintf "chain%d" (i mod 7)) ])));

  let spec =
    { Spec.r_table = "person";
      s_table = "store";
      t_table = "person_store";
      join_r = [ "city" ];
      join_s = [ "city" ];
      t_join = [ "city" ];
      r_carry = [ "pid"; "name" ];
      s_carry = [ "sid"; "chain" ];
      many_to_many = true }
  in
  let config =
    { Transform.default_config with
      Transform.drop_sources = false;
      scan_batch = 8;
      propagate_batch = 8 }
  in
  let tf = Transform.foj db ~config spec in

  let mgr = Db.manager db in
  let rng = Random.State.make [| 7 |] in
  let moves = ref 0 in
  let move_someone () =
    if !moves < 300 then begin
      incr moves;
      let txn = Manager.begin_txn mgr in
      let pid = Random.State.int rng people in
      (match
         Manager.update mgr ~txn ~table:"person"
           ~key:(Row.make [ Value.Int pid ])
           [ (2, Value.Int (Random.State.int rng cities)) ]
       with
       | Ok () -> ok (Manager.commit mgr txn)
       | Error _ -> ignore (Manager.abort mgr txn))
    end
  in
  (match Transform.run ~between:move_someone tf with
   | Ok () -> ()
   | Error m -> failwith m);

  let oracle =
    Nbsc_relalg.Relalg.full_outer_join
      { Nbsc_relalg.Relalg.r_join = [ "city" ]; s_join = [ "city" ];
        out_join = [ "city" ]; r_cols = [ "pid"; "name" ];
        s_cols = [ "sid"; "chain" ]; out_key = [ "pid"; "sid" ] }
      (Db.snapshot db "person") (Db.snapshot db "store")
  in
  Format.printf "%a@." Transform.pp_progress (Transform.progress tf);
  Format.printf "moves while transforming: %d@." !moves;
  Format.printf
    "person_store: %d rows (each person x each matching store); oracle: %d; \
     equal: %b@."
    (Db.row_count db "person_store")
    (List.length oracle.Nbsc_relalg.Relalg.rows)
    (Nbsc_relalg.Relalg.equal_as_sets oracle (Db.snapshot db "person_store"))
