(* Extension operators in one scenario:

     dune exec examples/orders_archive.exe

   An orders table is split horizontally online — closed orders move to
   an archive, open ones stay hot — while order-processing traffic
   keeps running; rows migrate between the two tables live as orders
   close. Alongside, a deferred materialized view joins orders with
   their customers and is refreshed on demand (the paper's closing
   suggestion). *)

open Nbsc_value
open Nbsc_core
module Manager = Nbsc_txn.Manager

let orders = 5_000
let customers = 200

let ok = function
  | Ok v -> v
  | Error e -> failwith (Format.asprintf "%a" Manager.pp_error e)

let () =
  let db = Db.create () in
  let col = Schema.column in
  ignore
    (Db.create_table db ~name:"orders"
       (Schema.make ~key:[ "oid" ]
          [ col ~nullable:false "oid" Value.TInt;
            col "customer_id" Value.TInt;
            col "status" Value.TText;       (* 'open' | 'closed' *)
            col "total_cents" Value.TInt ]));
  ignore
    (Db.create_table db ~name:"customer"
       (Schema.make ~key:[ "customer_id" ]
          [ col ~nullable:false "customer_id" Value.TInt;
            col "name" Value.TText ]));
  let rec load table make lo hi =
    if lo < hi then begin
      let upper = min hi (lo + 1000) in
      ok (Db.load db ~table (List.init (upper - lo) (fun i -> make (lo + i))));
      load table make upper hi
    end
  in
  load "orders"
    (fun i ->
       Row.make
         [ Value.Int i; Value.Int (i mod customers);
           Value.Text (if i mod 3 = 0 then "open" else "closed");
           Value.Int (100 + (i mod 900)) ])
    0 orders;
  load "customer"
    (fun c -> Row.make [ Value.Int c; Value.Text (Printf.sprintf "cust-%d" c) ])
    0 customers;

  (* A deferred materialized view: orders joined with customer names. *)
  let view =
    Matview.create db
      { Spec.r_table = "orders";
        s_table = "customer";
        t_table = "orders_with_names";
        join_r = [ "customer_id" ];
        join_s = [ "customer_id" ];
        t_join = [ "customer_id" ];
        r_carry = [ "oid"; "status"; "total_cents" ];
        s_carry = [ "name" ];
        many_to_many = false }
  in

  (* The online archive split. *)
  let tf =
    Transform.hsplit db
      ~config:
        { Transform.default_config with
          Transform.drop_sources = true;
          scan_batch = 256;
          propagate_batch = 128 }
      { Spec.h_source = "orders";
        h_true_table = "orders_archive";
        h_false_table = "orders_live";
        h_pred = Pred.Cmp ("status", Pred.Eq, Value.Text "closed") }
  in

  let mgr = Db.manager db in
  let rng = Random.State.make [| 11 |] in
  let closed_during = ref 0 and traffic = ref 0 in
  let business () =
    incr traffic;
    if Transform.routing tf = `Sources then begin
      let oid = Random.State.int rng orders in
      let txn = Manager.begin_txn mgr in
      let outcome =
        if Random.State.int rng 4 = 0 then begin
          incr closed_during;
          Manager.update mgr ~txn ~table:"orders"
            ~key:(Row.make [ Value.Int oid ])
            [ (2, Value.Text "closed") ]
        end
        else
          Manager.update mgr ~txn ~table:"orders"
            ~key:(Row.make [ Value.Int oid ])
            [ (3, Value.Int (Random.State.int rng 1000)) ]
      in
      (match outcome with
       | Ok () -> ok (Manager.commit mgr txn)
       | Error _ -> ignore (Manager.abort mgr txn));
      (* An idle-loop tick of view maintenance. *)
      ignore (Matview.step view)
    end
  in
  (match Transform.run ~between:business tf with
   | Ok () -> ()
   | Error m -> failwith m);

  Format.printf "%a@." Transform.pp_progress (Transform.progress tf);
  Format.printf
    "orders processed while archiving: %d (%d closed mid-flight; %d rows \
     migrated between live and archive)@."
    !traffic !closed_during
    (List.assoc "migrations" (Transform.counters tf));
  Format.printf "orders_live: %d rows; orders_archive: %d rows (sum = %d)@."
    (Db.row_count db "orders_live")
    (Db.row_count db "orders_archive")
    (Db.row_count db "orders_live" + Db.row_count db "orders_archive");
  (* The view was created against "orders", which is now dropped — its
     maintenance simply has nothing further to consume, but its content
     as of the switch is still queryable; refresh and report. *)
  Matview.refresh view;
  Format.printf "materialized view %s: %d rows, staleness %d log records@."
    (Matview.table view)
    (Db.row_count db "orders_with_names")
    (Matview.lag view);
  (* Verify the split partitioned exactly. *)
  let archive = Db.snapshot db "orders_archive" in
  let live = Db.snapshot db "orders_live" in
  let bad_archive =
    List.exists
      (fun row -> not (Value.equal (Row.get row 2) (Value.Text "closed")))
      archive.Nbsc_relalg.Relalg.rows
  in
  let bad_live =
    List.exists
      (fun row -> Value.equal (Row.get row 2) (Value.Text "closed"))
      live.Nbsc_relalg.Relalg.rows
  in
  Format.printf "partition clean: archive all closed=%b, live none closed=%b@."
    (not bad_archive) (not bad_live)
