(* The crash matrix: every fault-injection site × every transformation
   operator. Each arm dry-runs the scenario to learn how often a site
   is consulted, then re-runs it with a crash armed mid-range: the
   in-memory database is abandoned ([Persist.crash]), the directory is
   reopened, in-flight schema changes are resumed ([Transform.resume]),
   and the store must still converge to the relational oracle of the
   final source tables.

   Also here: the replay_into idempotence properties (satellite of the
   durability work) and the restart-from-scratch scenario folded in
   from test_restart.ml, now exercised through the Persist path. *)

open Nbsc_value
open Nbsc_storage
open Nbsc_txn
open Nbsc_engine
open Nbsc_core
module H = Helpers

let ok_p name = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" name Persist.pp_error e

let base_seed =
  match Sys.getenv_opt "NBSC_CRASH_SEED" with
  | Some s -> (try int_of_string s with Failure _ -> 42)
  | None -> 42

let counter = ref 0

(* No unix dependency: uniqueness from a counter + random suffix. *)
let fresh_dir () =
  incr counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "nbsc_crashmx_%d_%d" !counter (Random.int 1_000_000))

let wipe dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let cfg =
  { Transform.default_config with
    Transform.scan_batch = 7;
    propagate_batch = 5;
    drop_sources = false }

(* The same knobs as an [Options.t] with a non-eager migration
   strategy, for the lazy/hybrid arms of the matrix. *)
let opts_of migration =
  Options.{ (Transform.options_of_config cfg) with strategy = migration }

(* One operator scenario of the matrix. *)
type op_case = {
  op_name : string;
  op_sources : string list;
  op_targets : string list;
  setup : Persist.t -> unit;  (* create + load sources, checkpoint *)
  start : ?options:Options.t -> Db.t -> unit;
      (* kick off the transformation *)
  traffic : H.driver -> unit; (* one round of committed user work *)
  oracle : Db.t -> (string * Nbsc_relalg.Relalg.t) list;
      (* target -> expected relation, from the final sources *)
}

(* {1 The four operators} *)

let checkpoint_ddl p = ok_p "setup checkpoint" (Persist.checkpoint p)

let foj_case =
  { op_name = "foj";
    op_sources = [ "R"; "S" ];
    op_targets = [ "T" ];
    setup =
      (fun p ->
         let db = Persist.db p in
         ignore (Db.create_table db ~name:"R" H.r_schema);
         ignore (Db.create_table db ~name:"S" H.s_schema);
         let r_rows, s_rows = H.seed_rows ~r:40 ~s:20 in
         (match Db.load db ~table:"R" r_rows with
          | Ok () -> ()
          | Error e -> Alcotest.failf "load R: %a" Manager.pp_error e);
         (match Db.load db ~table:"S" s_rows with
          | Ok () -> ()
          | Error e -> Alcotest.failf "load S: %a" Manager.pp_error e);
         checkpoint_ddl p);
    start =
      (fun ?options db -> ignore (Transform.foj db ~config:cfg ?options H.foj_spec));
    traffic =
      (fun d ->
         H.random_r_op d;
         H.random_s_op d);
    oracle = (fun db -> [ ("T", H.foj_oracle db) ]) }

let setup_flat_t p =
  let db = Persist.db p in
  ignore (Db.create_table db ~name:"T" H.t_flat_schema);
  (match Db.load db ~table:"T" (H.seed_t_rows ~n:60) with
   | Ok () -> ()
   | Error e -> Alcotest.failf "load T: %a" Manager.pp_error e);
  checkpoint_ddl p

let split_case =
  { op_name = "split";
    op_sources = [ "T" ];
    op_targets = [ "R"; "S" ];
    setup = setup_flat_t;
    start =
      (fun ?options db ->
         ignore
           (Transform.split db ~config:cfg ?options
              (H.split_spec ~assume_consistent:true)));
    traffic = (fun d -> H.random_t_op ~consistent:true d);
    oracle =
      (fun db ->
         let want_r, want_s =
           Nbsc_relalg.Relalg.split
             { Nbsc_relalg.Relalg.r_cols' = [ "a"; "b"; "c" ];
               s_cols' = [ "c"; "d" ];
               r_key = [ "a" ];
               s_key = [ "c" ] }
             (Db.snapshot db "T")
         in
         [ ("R", want_r); ("S", want_s) ]) }

let hpred = Pred.Cmp ("c", Pred.Gt, Value.Int 6)

let hspec =
  { Spec.h_source = "T";
    h_true_table = "archive";
    h_false_table = "live";
    h_pred = hpred }

let hsplit_case =
  { op_name = "hsplit";
    op_sources = [ "T" ];
    op_targets = [ "archive"; "live" ];
    setup = setup_flat_t;
    start =
      (fun ?options db -> ignore (Transform.hsplit db ~config:cfg ?options hspec));
    traffic = (fun d -> H.random_t_op ~consistent:true d);
    oracle =
      (fun db ->
         let t = Db.snapshot db "T" in
         let p = Pred.compile H.t_flat_schema hpred in
         [ ("archive", Nbsc_relalg.Relalg.select t p);
           ("live", Nbsc_relalg.Relalg.select t (fun row -> not (p row))) ]) }

(* Merge traffic: the shared fresh-key counter keeps A and B keys
   disjoint, so the oracle stays a plain union. *)
let merge_traffic d =
  let mgr = Db.manager d.H.db in
  ignore
    (H.run_txn d (fun txn ->
         let table = if Random.State.bool d.H.rng then "A" else "B" in
         match Random.State.int d.H.rng 3 with
         | 0 ->
           d.H.next_r_key <- d.H.next_r_key + 1;
           Manager.insert mgr ~txn ~table
             (H.ti d.H.next_r_key "new" (Random.State.int d.H.rng 10) "z")
         | 1 ->
           (match H.existing_key d table with
            | Some key ->
              Manager.update mgr ~txn ~table ~key
                [ (1, Value.Text ("w" ^ string_of_int (Random.State.int d.H.rng 100))) ]
            | None -> Ok ())
         | _ ->
           (match H.existing_key d table with
            | Some key -> Manager.delete mgr ~txn ~table ~key
            | None -> Ok ())))

let merge_case =
  { op_name = "merge";
    op_sources = [ "A"; "B" ];
    op_targets = [ "AB" ];
    setup =
      (fun p ->
         let db = Persist.db p in
         ignore (Db.create_table db ~name:"A" H.t_flat_schema);
         ignore (Db.create_table db ~name:"B" H.t_flat_schema);
         (match
            Db.load db ~table:"A"
              (List.init 30 (fun i -> H.ti i "a" (i mod 5) "x"))
          with
          | Ok () -> ()
          | Error e -> Alcotest.failf "load A: %a" Manager.pp_error e);
         (match
            Db.load db ~table:"B"
              (List.init 20 (fun i -> H.ti (100 + i) "b" (i mod 5) "y"))
          with
          | Ok () -> ()
          | Error e -> Alcotest.failf "load B: %a" Manager.pp_error e);
         checkpoint_ddl p);
    start =
      (fun ?options db ->
         ignore
           (Transform.merge db ~config:cfg ?options
              { Spec.m_sources = [ "A"; "B" ]; m_target = "AB" }));
    traffic = merge_traffic;
    oracle =
      (fun db ->
         let a = Db.snapshot db "A" and b = Db.snapshot db "B" in
         [ ( "AB",
             Nbsc_relalg.Relalg.make H.t_flat_schema
               (a.Nbsc_relalg.Relalg.rows @ b.Nbsc_relalg.Relalg.rows) ) ]) }

let all_cases = [ foj_case; split_case; hsplit_case; merge_case ]

(* {1 The harness}

   [run_attempt] plays the scenario from whatever state the directory
   is in: create-or-open, (re)do setup if the sources are missing,
   resume pending jobs or start the transformation, then drive it to
   completion with committed traffic and periodic checkpoints. A
   [Fault.Injected] escaping at any point is the simulated crash; the
   caller abandons the database and calls [run_attempt] again. *)

let run_attempt ?options op dir ~window ~attempt ~current_p =
  let p =
    if Sys.file_exists (Filename.concat dir "snapshot.nbsc") then
      ok_p "open" (Persist.open_dir ~dir)
    else ok_p "create" (Persist.create_dir ~dir)
  in
  current_p := Some p;
  let db = Persist.db p in
  (* Group commit re-arms after every (re)open: the window is a session
     setting, not durable state. A window of 1 is the classic
     write-through WAL; larger windows leave acked commits in the sink
     buffer, which is exactly the state the checkpoint-side flush and
     the recovery invariant protect. *)
  Manager.set_group_commit (Db.manager db) window;
  let catalog = Db.catalog db in
  if not (List.for_all (Catalog.mem catalog) op.op_sources) then op.setup p;
  (match Transform.resume ~config:cfg ?options p with
   | Error e -> Alcotest.failf "%s: resume: %s" op.op_name (Nbsc_error.to_string e)
   | Ok [] ->
     (* Nothing pending: either the transformation never made it into
        the durable state (restart it) or it completed and was
        checkpointed (targets restored from the snapshot). *)
     if not (List.for_all (Catalog.mem catalog) op.op_targets) then
       op.start ?options db
   | Ok tfs ->
     List.iter
       (fun tf ->
          match Transform.phase tf with
          | Transform.Propagating | Transform.Draining ->
            (* The acceptance bar: resuming after population must not
               re-scan the sources. *)
            Alcotest.(check int)
              (op.op_name ^ ": resume re-scans nothing")
              0 (Transform.progress tf).Transform.scanned
          | _ -> ())
       tfs);
  let d = H.driver ~seed:(base_seed + attempt) db in
  (* Fresh keys must not collide with a previous attempt's. *)
  d.H.next_r_key <- 1_000_000 + (attempt * 10_000);
  d.H.next_s_key <- 1_000_000 + (attempt * 10_000);
  let rounds = ref 0 in
  while Db.jobs db <> [] do
    incr rounds;
    if !rounds > 2_000 then
      Alcotest.failf "%s: transformation did not converge" op.op_name;
    ignore (Db.step_jobs db);
    (* Traffic only while the job is in flight: once the quantum above
       finalized the transformation the sources are live again, and a
       write there would be app misuse, not a lost update. *)
    if Db.jobs db <> [] && !rounds <= 120 then op.traffic d;
    if !rounds mod 25 = 0 then ok_p "mid checkpoint" (Persist.checkpoint p)
  done;
  ok_p "final checkpoint" (Persist.checkpoint p);
  p

(* Run a scenario to the end, crashing and reopening on every injected
   fault. Returns the number of crashes survived. *)
let run_scenario ?options op ~window dir =
  let current_p = ref None in
  let crashes = ref 0 in
  let rec go attempt =
    match run_attempt ?options op dir ~window ~attempt ~current_p with
    | p -> p
    | exception Fault.Injected _ ->
      incr crashes;
      if !crashes > 5 then Alcotest.failf "%s: too many crashes" op.op_name;
      Fault.reset ();
      (match !current_p with Some p -> Persist.crash p | None -> ());
      current_p := None;
      go (attempt + 1)
  in
  let p = go 0 in
  let db = Persist.db p in
  List.iter
    (fun (tname, want) ->
       H.check_relations_equal (op.op_name ^ "/" ^ tname) want
         (Db.snapshot db tname))
    (op.oracle db);
  Persist.close p;
  !crashes

(* The sites consulted only inside [Persist.open_dir] — never during a
   crash-free run, so they get their own double-crash matrix below
   instead of the single-crash sweep. *)
let recovery_sites = [ "snapshot_load"; "recovery_replay"; "recovery_truncate" ]

let runtime_sites =
  List.filter (fun s -> not (List.mem s recovery_sites)) Fault.all_sites

(* Dry run: play the scenario uncrashed with hit tracking on, recording
   how often each site is consulted. *)
let dry_run ?options op ~window =
  Fault.reset ();
  Fault.set_tracking true;
  let dir = fresh_dir () in
  let crashes = run_scenario ?options op ~window dir in
  Alcotest.(check int) (op.op_name ^ ": dry run crash-free") 0 crashes;
  let counts = List.map (fun s -> (s, Fault.hits s)) runtime_sites in
  Fault.reset ();
  wipe dir;
  counts

let run_armed ?options op ~window ~site ~mode ~after =
  Fault.reset ();
  let dir = fresh_dir () in
  Fault.arm ~mode ~after site;
  let crashes = run_scenario ?options op ~window dir in
  Fault.reset ();
  wipe dir;
  crashes

let test_matrix ?options op ~window () =
  let counts = dry_run ?options op ~window in
  List.iter
    (fun (site, n) ->
       Alcotest.(check bool)
         (Printf.sprintf "%s: site %s exercised" op.op_name site)
         true (n > 0);
       (* Crash mid-range: after half the consultations seen uncrashed. *)
       let crashes =
         run_armed ?options op ~window ~site ~mode:Fault.Crash ~after:(n / 2)
       in
       Alcotest.(check int)
         (Printf.sprintf "%s: crash at %s survived (window %d)" op.op_name
            site window)
         1 crashes)
    counts;
  (* The torn-write variant of the WAL append: half a line reaches the
     file before the crash; reopen must drop the unterminated tail. *)
  let n = List.assoc "wal_append" counts in
  let crashes =
    run_armed ?options op ~window ~site:"wal_append" ~mode:Fault.Torn
      ~after:(n / 2)
  in
  Alcotest.(check int)
    (op.op_name ^ ": torn wal_append survived")
    1 crashes

(* {1 Competitor strategies: shadow-table and trigger-method arms}

   Neither baseline persists a resumable job state — their target
   writes are unlogged, so a crash means restart-from-scratch: drop
   whatever partial targets the snapshot restored and rebuild. The
   harness mirrors [run_attempt]/[run_scenario], but arms only the
   sites a dry run shows the scenario actually consults (a trigger
   run, e.g., never reaches [sync_commit]). *)

module Sh = Nbsc_baseline.Shadow_table
module Tm = Nbsc_baseline.Trigger_method

let shadow_attempt dir ~attempt ~current_p =
  let p =
    if Sys.file_exists (Filename.concat dir "snapshot.nbsc") then
      ok_p "open" (Persist.open_dir ~dir)
    else ok_p "create" (Persist.create_dir ~dir)
  in
  current_p := Some p;
  let db = Persist.db p in
  Manager.set_group_commit (Db.manager db) 1;
  let catalog = Db.catalog db in
  if not (Catalog.mem catalog "T") then setup_flat_t p;
  (* Restart from scratch: partial targets from a previous attempt are
     unlogged state and must go. *)
  List.iter
    (fun tgt -> if Catalog.mem catalog tgt then Catalog.drop catalog tgt)
    [ "R"; "S" ];
  let packed = Transformation.split db (H.split_spec ~assume_consistent:true) in
  let sh = Sh.create db ~drop_sources:false ~chunk:8 packed in
  let d = H.driver ~seed:(base_seed + attempt) db in
  d.H.next_r_key <- 1_000_000 + (attempt * 10_000);
  let rounds = ref 0 in
  while not (Sh.step sh ~limit:8) do
    incr rounds;
    if !rounds > 2_000 then Alcotest.fail "shadow did not converge";
    if !rounds <= 120 then H.random_t_op ~consistent:true d;
    if !rounds mod 25 = 0 then ok_p "mid checkpoint" (Persist.checkpoint p)
  done;
  ok_p "final checkpoint" (Persist.checkpoint p);
  p

let trigger_attempt dir ~attempt ~current_p =
  let p =
    if Sys.file_exists (Filename.concat dir "snapshot.nbsc") then
      ok_p "open" (Persist.open_dir ~dir)
    else ok_p "create" (Persist.create_dir ~dir)
  in
  current_p := Some p;
  let db = Persist.db p in
  Manager.set_group_commit (Db.manager db) 1;
  let catalog = Db.catalog db in
  if not (Catalog.mem catalog "R" && Catalog.mem catalog "S") then
    foj_case.setup p;
  if Catalog.mem catalog "T" then Catalog.drop catalog "T";
  (* install_foj's populate loop consults quantum_end between chunks —
     the armed crash fires inside it. *)
  let tr = Tm.install_foj db H.foj_spec in
  let d = H.driver ~seed:(base_seed + attempt) db in
  d.H.next_r_key <- 1_000_000 + (attempt * 10_000);
  d.H.next_s_key <- 1_000_000 + (attempt * 10_000);
  for i = 1 to 40 do
    H.random_r_op d;
    H.random_s_op d;
    if i mod 15 = 0 then ok_p "mid checkpoint" (Persist.checkpoint p)
  done;
  Tm.uninstall tr;
  ok_p "final checkpoint" (Persist.checkpoint p);
  p

let run_baseline_scenario attempt_fn ~oracle_check dir =
  let current_p = ref None in
  let crashes = ref 0 in
  let rec go attempt =
    match attempt_fn dir ~attempt ~current_p with
    | p -> p
    | exception Fault.Injected _ ->
      incr crashes;
      if !crashes > 5 then Alcotest.fail "baseline: too many crashes";
      Fault.reset ();
      (match !current_p with Some p -> Persist.crash p | None -> ());
      current_p := None;
      go (attempt + 1)
  in
  let p = go 0 in
  oracle_check (Persist.db p);
  Persist.close p;
  !crashes

let test_baseline_matrix ~name ~must_hit attempt_fn ~oracle_check () =
  Fault.reset ();
  Fault.set_tracking true;
  let dir = fresh_dir () in
  let crashes = run_baseline_scenario attempt_fn ~oracle_check dir in
  Alcotest.(check int) (name ^ ": dry run crash-free") 0 crashes;
  let counts =
    List.filter
      (fun (_, n) -> n > 0)
      (List.map (fun s -> (s, Fault.hits s)) runtime_sites)
  in
  Fault.reset ();
  wipe dir;
  List.iter
    (fun site ->
       Alcotest.(check bool)
         (Printf.sprintf "%s: site %s exercised" name site)
         true (List.mem_assoc site counts))
    must_hit;
  List.iter
    (fun (site, n) ->
       Fault.reset ();
       let dir = fresh_dir () in
       Fault.arm ~mode:Fault.Crash ~after:(n / 2) site;
       let crashes = run_baseline_scenario attempt_fn ~oracle_check dir in
       Fault.reset ();
       wipe dir;
       Alcotest.(check int)
         (Printf.sprintf "%s: crash at %s survived" name site)
         1 crashes)
    counts

let split_oracle_check db =
  let want_r, want_s =
    Nbsc_relalg.Relalg.split
      { Nbsc_relalg.Relalg.r_cols' = [ "a"; "b"; "c" ]; s_cols' = [ "c"; "d" ];
        r_key = [ "a" ];
        s_key = [ "c" ] }
      (Db.snapshot db "T")
  in
  H.check_relations_equal "shadow/R" want_r (Db.snapshot db "R");
  H.check_relations_equal "shadow/S" want_s (Db.snapshot db "S")

let test_shadow_matrix =
  test_baseline_matrix ~name:"shadow"
    ~must_hit:[ "quantum_end"; "sync_commit"; "wal_append" ]
    shadow_attempt ~oracle_check:split_oracle_check

let test_trigger_matrix =
  test_baseline_matrix ~name:"trigger" ~must_hit:[ "quantum_end"; "wal_append" ]
    trigger_attempt
    ~oracle_check:(fun db ->
        H.check_relations_equal "trigger/T" (H.foj_oracle db)
          (Db.snapshot db "T"))

(* {1 Double crash: a crash during recovery itself}

   The first crash interrupts the transformation mid-flight; the second
   fires inside the [Persist.open_dir] that recovers from the first, at
   one of the recovery-only sites. Recovery must be idempotent: the
   third attempt starts from whatever the aborted recovery left behind
   and must still converge to the clean-run oracle. *)

(* Like [run_scenario], but calls [rearm] with the crash ordinal after
   each injected fault — [run_scenario]'s [Fault.reset] would otherwise
   wipe the not-yet-fired recovery arming. *)
let run_scenario_rearming op ~window ~rearm dir =
  let current_p = ref None in
  let crashes = ref 0 in
  let rec go attempt =
    match run_attempt op dir ~window ~attempt ~current_p with
    | p -> p
    | exception Fault.Injected _ ->
      incr crashes;
      if !crashes > 5 then Alcotest.failf "%s: too many crashes" op.op_name;
      Fault.reset ();
      rearm !crashes;
      (match !current_p with Some p -> Persist.crash p | None -> ());
      current_p := None;
      go (attempt + 1)
  in
  let p = go 0 in
  let db = Persist.db p in
  List.iter
    (fun (tname, want) ->
       H.check_relations_equal (op.op_name ^ "/" ^ tname) want
         (Db.snapshot db tname))
    (op.oracle db);
  Persist.close p;
  !crashes

let test_double_crash op ~window () =
  let counts = dry_run op ~window in
  let n = List.assoc "wal_append" counts in
  List.iter
    (fun rsite ->
       Fault.reset ();
       let dir = fresh_dir () in
       (* recovery_truncate only runs when the WAL has a torn tail, so
          its primary crash must be a torn append. *)
       let primary_mode =
         if String.equal rsite "recovery_truncate" then Fault.Torn
         else Fault.Crash
       in
       Fault.arm ~mode:primary_mode ~after:(n / 2) "wal_append";
       let rearm ordinal =
         if ordinal = 1 then Fault.arm rsite
       in
       let crashes = run_scenario_rearming op ~window ~rearm dir in
       Fault.reset ();
       wipe dir;
       Alcotest.(check int)
         (Printf.sprintf "%s: double crash at %s survived (window %d)"
            op.op_name rsite window)
         2 crashes)
    recovery_sites

(* {1 Directed resume: interrupt after population, no re-scan}

   The crash matrix hits this case probabilistically; this test pins it
   down, asserting the resumed executor starts in Propagating with a
   zero scan counter and still converges. *)
let test_resume_skips_population () =
  Fault.reset ();
  let dir = fresh_dir () in
  let p = ok_p "create" (Persist.create_dir ~dir) in
  setup_flat_t p;
  let db = Persist.db p in
  let tf =
    Transform.split db ~config:cfg (H.split_spec ~assume_consistent:true)
  in
  let d = H.driver ~seed:base_seed db in
  (* Step past population (60 rows / scan_batch 7 = 9 quanta), with
     traffic, then checkpoint so the propagating state is durable. *)
  let guard = ref 0 in
  while Transform.phase tf = Transform.Populating do
    incr guard;
    if !guard > 100 then Alcotest.fail "population never finished";
    ignore (Transform.step tf);
    H.random_t_op ~consistent:true d
  done;
  Alcotest.(check bool) "mid-flight" true (Transform.phase tf <> Transform.Done);
  let scanned_before = (Transform.progress tf).Transform.scanned in
  Alcotest.(check bool) "population scanned something" true (scanned_before > 0);
  ok_p "checkpoint" (Persist.checkpoint p);
  (* Crash without warning; the in-memory db is gone. *)
  Persist.crash p;
  let p2 = ok_p "reopen" (Persist.open_dir ~dir) in
  let db2 = Persist.db p2 in
  (match Transform.resume ~config:cfg p2 with
   | Error e -> Alcotest.fail (Nbsc_error.to_string e)
   | Ok [ tf2 ] ->
     Alcotest.(check bool) "resumed in propagation or later" true
       (match Transform.phase tf2 with
        | Transform.Propagating | Transform.Draining -> true
        | _ -> false);
     Alcotest.(check int) "no re-scan" 0
       (Transform.progress tf2).Transform.scanned;
     let d2 = H.driver ~seed:(base_seed + 1) db2 in
     d2.H.next_r_key <- 2_000_000;
     let budget = ref 60 in
     (match
        Db.run_jobs db2 ~max_rounds:2_000 ~between:(fun () ->
            if !budget > 0 && Db.jobs db2 <> [] then begin
              decr budget;
              H.random_t_op ~consistent:true d2
            end)
      with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
     Alcotest.(check int) "still no re-scan" 0
       (Transform.progress tf2).Transform.scanned;
     let want_r, want_s =
       Nbsc_relalg.Relalg.split
         { Nbsc_relalg.Relalg.r_cols' = [ "a"; "b"; "c" ];
           s_cols' = [ "c"; "d" ];
           r_key = [ "a" ];
           s_key = [ "c" ] }
         (Db.snapshot db2 "T")
     in
     H.check_relations_equal "resumed split R" want_r (Db.snapshot db2 "R");
     H.check_relations_equal "resumed split S" want_s (Db.snapshot db2 "S")
   | Ok tfs ->
     Alcotest.failf "expected one pending job, got %d" (List.length tfs));
  Persist.close p2;
  wipe dir

(* {1 Restart from scratch (folded in from test_restart.ml)}

   A crash during population cannot resume — the initial image is
   incomplete and the framework's target writes are unlogged — so the
   job restarts: targets are dropped and repopulated. User data still
   comes back from snapshot + WAL alone. *)
let test_populating_crash_restarts () =
  Fault.reset ();
  let dir = fresh_dir () in
  let p = ok_p "create" (Persist.create_dir ~dir) in
  setup_flat_t p;
  let db = Persist.db p in
  let tf =
    Transform.split db ~config:cfg (H.split_spec ~assume_consistent:true)
  in
  let d = H.driver ~seed:13 db in
  for _ = 1 to 4 do
    ignore (Transform.step tf);
    H.random_t_op ~consistent:true d
  done;
  Alcotest.(check bool) "still populating" true
    (Transform.phase tf = Transform.Populating);
  (* Make the populating job state durable, then crash. *)
  ok_p "checkpoint" (Persist.checkpoint p);
  H.random_t_op ~consistent:true d;
  let committed_t = Db.snapshot db "T" in
  Persist.crash p;
  let p2 = ok_p "reopen" (Persist.open_dir ~dir) in
  let db2 = Persist.db p2 in
  (* User data survived the crash exactly. *)
  H.check_relations_equal "T recovered" committed_t (Db.snapshot db2 "T");
  (match Transform.resume ~config:cfg p2 with
   | Error e -> Alcotest.fail (Nbsc_error.to_string e)
   | Ok [ tf2 ] ->
     (* Restarted, not resumed: population runs again from scratch. *)
     Alcotest.(check bool) "restarted in population" true
       (Transform.phase tf2 = Transform.Populating);
     let d2 = H.driver ~seed:14 db2 in
     d2.H.next_r_key <- 2_000_000;
     let budget = ref 60 in
     (match
        Db.run_jobs db2 ~max_rounds:2_000 ~between:(fun () ->
            if !budget > 0 && Db.jobs db2 <> [] then begin
              decr budget;
              H.random_t_op ~consistent:true d2
            end)
      with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)
   | Ok tfs ->
     Alcotest.failf "expected one pending job, got %d" (List.length tfs));
  let want_r, want_s =
    Nbsc_relalg.Relalg.split
      { Nbsc_relalg.Relalg.r_cols' = [ "a"; "b"; "c" ];
        s_cols' = [ "c"; "d" ];
        r_key = [ "a" ];
        s_key = [ "c" ] }
      (Db.snapshot db2 "T")
  in
  H.check_relations_equal "restarted split R" want_r (Db.snapshot db2 "R");
  H.check_relations_equal "restarted split S" want_s (Db.snapshot db2 "S");
  Persist.close p2;
  wipe dir

(* {1 Directed lazy migration: crash mid-sweep, restart, converge}

   A lazy (or hybrid) change interrupted while its background sweep is
   still visiting cold records — with some records already migrated on
   demand by user traffic — restarts population from scratch on
   resume, exactly like an eager one: the sweep is a fuzzy scan and
   both demand migration and re-population are idempotent. *)
let test_lazy_crash_mid_sweep migration () =
  Fault.reset ();
  let dir = fresh_dir () in
  let p = ok_p "create" (Persist.create_dir ~dir) in
  setup_flat_t p;
  let db = Persist.db p in
  let options = opts_of migration in
  let tf =
    Transform.split db ~options (H.split_spec ~assume_consistent:true)
  in
  let d = H.driver ~seed:base_seed db in
  (* A few sweep quanta with traffic: every committed operation demand-
     migrates the record it touches. Few enough that even the hybrid
     sweep (8 of the 60 records per quantum) is still mid-flight. *)
  for _ = 1 to 4 do
    ignore (Transform.step tf);
    H.random_t_op ~consistent:true d
  done;
  Alcotest.(check bool) "still populating" true
    (Transform.phase tf = Transform.Populating);
  Alcotest.(check bool) "demand migrations happened" true
    (Transform.demand_migrations tf > 0);
  ok_p "checkpoint" (Persist.checkpoint p);
  H.random_t_op ~consistent:true d;
  let committed_t = Db.snapshot db "T" in
  Persist.crash p;
  let p2 = ok_p "reopen" (Persist.open_dir ~dir) in
  let db2 = Persist.db p2 in
  H.check_relations_equal "T recovered" committed_t (Db.snapshot db2 "T");
  (match Transform.resume ~options p2 with
   | Error e -> Alcotest.fail (Nbsc_error.to_string e)
   | Ok [ tf2 ] ->
     Alcotest.(check bool) "restarted in population" true
       (Transform.phase tf2 = Transform.Populating);
     Alcotest.(check bool) "same strategy after resume" true
       (Transform.migration tf2 = migration);
     let d2 = H.driver ~seed:(base_seed + 1) db2 in
     d2.H.next_r_key <- 2_000_000;
     let budget = ref 60 in
     (match
        Db.run_jobs db2 ~max_rounds:2_000 ~between:(fun () ->
            if !budget > 0 && Db.jobs db2 <> [] then begin
              decr budget;
              H.random_t_op ~consistent:true d2
            end)
      with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)
   | Ok tfs ->
     Alcotest.failf "expected one pending job, got %d" (List.length tfs));
  let want_r, want_s =
    Nbsc_relalg.Relalg.split
      { Nbsc_relalg.Relalg.r_cols' = [ "a"; "b"; "c" ];
        s_cols' = [ "c"; "d" ];
        r_key = [ "a" ];
        s_key = [ "c" ] }
      (Db.snapshot db2 "T")
  in
  H.check_relations_equal "lazy restarted split R" want_r (Db.snapshot db2 "R");
  H.check_relations_equal "lazy restarted split S" want_s (Db.snapshot db2 "S");
  Persist.close p2;
  wipe dir

(* {1 Directed group commit: acked commits survive a checkpoint crash}

   With a group-commit window open, acked commits sit in the sink
   buffer. The checkpoint must flush them {e before} publishing
   anything: a crash at either snapshot fault site then leaves the old
   snapshot with an on-disk WAL that already holds the acked suffix.
   Without the checkpoint-side [flush_commits], this test loses rows
   9001-9003 — the ack-then-lose durability bug. *)

let commit_row db k =
  let mgr = Db.manager db in
  let txn = Manager.begin_txn mgr in
  (match Manager.insert mgr ~txn ~table:"T" (H.ti k "gc" 1 "x") with
   | Ok () -> ()
   | Error e -> Alcotest.failf "insert %d: %a" k Manager.pp_error e);
  match Manager.commit mgr txn with
  | Ok () -> ()
  | Error e -> Alcotest.failf "commit %d: %a" k Manager.pp_error e

let test_acked_commits_survive_checkpoint_crash () =
  Fault.reset ();
  let dir = fresh_dir () in
  let p = ok_p "create" (Persist.create_dir ~dir) in
  setup_flat_t p;
  let db = Persist.db p in
  let mgr = Db.manager db in
  Manager.set_group_commit mgr 8;
  let synced_before = Manager.synced_commits mgr in
  List.iter (commit_row db) [ 9001; 9002; 9003 ];
  (* All three are acked; none has reached the durable log yet. *)
  Alcotest.(check int) "buffered, not yet synced" synced_before
    (Manager.synced_commits mgr);
  Fault.arm ~mode:Fault.Crash "snapshot_write";
  (match Persist.checkpoint p with
   | exception Fault.Injected _ -> ()
   | Ok () -> Alcotest.fail "expected the armed crash"
   | Error e -> Alcotest.failf "checkpoint: %a" Persist.pp_error e);
  Fault.reset ();
  Persist.crash p;
  let p2 = ok_p "reopen" (Persist.open_dir ~dir) in
  let tbl = Db.table (Persist.db p2) "T" in
  List.iter
    (fun k ->
       Alcotest.(check bool)
         (Printf.sprintf "acked row %d survived" k)
         true
         (Table.mem tbl (Row.make [ Value.Int k ])))
    [ 9001; 9002; 9003 ];
  Persist.close p2;
  wipe dir

(* The durability floor the ack protocol actually promises: commits up
   to [synced_commits] survive any crash; the tail still inside the
   open window may be lost (the documented group-commit contract). With
   window 3 and seven commits, the barrier fired at 3 and 6 — the
   simulated crash then drops exactly the one buffered commit. *)
let test_synced_commits_is_the_durability_floor () =
  Fault.reset ();
  let dir = fresh_dir () in
  let p = ok_p "create" (Persist.create_dir ~dir) in
  setup_flat_t p;
  let db = Persist.db p in
  let mgr = Db.manager db in
  Manager.set_group_commit mgr 3;
  let synced_before = Manager.synced_commits mgr in
  List.iter (commit_row db) [ 9001; 9002; 9003; 9004; 9005; 9006; 9007 ];
  Alcotest.(check int) "floor after two barriers" (synced_before + 6)
    (Manager.synced_commits mgr);
  Persist.crash p;
  let p2 = ok_p "reopen" (Persist.open_dir ~dir) in
  let tbl = Db.table (Persist.db p2) "T" in
  List.iter
    (fun k ->
       Alcotest.(check bool)
         (Printf.sprintf "synced row %d survived" k)
         true
         (Table.mem tbl (Row.make [ Value.Int k ])))
    [ 9001; 9002; 9003; 9004; 9005; 9006 ];
  (* The seventh sat inside the open window; the crash dropped its
     buffered record — legal loss, pinned here so a change to the
     contract shows up. *)
  Alcotest.(check bool) "window tail lost" false
    (Table.mem tbl (Row.make [ Value.Int 9007 ]));
  Persist.close p2;
  wipe dir

(* {1 Replay properties}

   Replaying a log into a catalog that already reflects it must leave
   the state unchanged: redo is LSN-gated and undo of losers is made of
   inverse operations whose re-application is absorbed. Equivalently,
   the undo pass commutes with a second full replay. *)

let random_history seed nops =
  let db = H.fresh_split_db ~t_rows:(H.seed_t_rows ~n:20) in
  let d = H.driver ~seed db in
  for _ = 1 to nops do
    H.random_t_op ~consistent:true d
  done;
  (* Leave one transaction in flight: a loser for undo to roll back. *)
  let mgr = Db.manager db in
  let txn = Manager.begin_txn mgr in
  ignore (Manager.insert mgr ~txn ~table:"T" (H.ti 777_777 "loser" 1 "x"));
  ignore
    (Manager.update mgr ~txn ~table:"T"
       ~key:(Row.make [ Value.Int 777_777 ])
       [ (1, Value.Text "loser2") ]);
  db

let rows_of catalog name =
  Table.to_rows (Catalog.find catalog name) |> List.sort Row.compare

let prop_replay_idempotent =
  QCheck.Test.make ~name:"replay_into twice equals once" ~count:30
    QCheck.(pair small_nat (int_range 5 40))
    (fun (seed, nops) ->
       let db = random_history seed nops in
       let log = Db.log db in
       let defs = [ Recovery.table_def "T" H.t_flat_schema ] in
       let catalog, r1 = Recovery.recover ~table_defs:defs log in
       let once = rows_of catalog "T" in
       let r2 = Recovery.replay_into catalog log in
       let twice = rows_of catalog "T" in
       if r1.Recovery.losers <> r2.Recovery.losers then
         QCheck.Test.fail_reportf "analysis not deterministic";
       if once <> twice then QCheck.Test.fail_reportf "state diverged";
       true)

let prop_replay_matches_live =
  QCheck.Test.make ~name:"recovered state equals committed live state"
    ~count:30
    QCheck.(pair small_nat (int_range 5 40))
    (fun (seed, nops) ->
       let db = random_history seed nops in
       let catalog, _ =
         Recovery.recover
           ~table_defs:[ Recovery.table_def "T" H.t_flat_schema ]
           (Db.log db)
       in
       (* The live db still holds the loser's uncommitted writes; roll
          it back there too before comparing. *)
       let recovered = rows_of catalog "T" in
       let live =
         Nbsc_relalg.Relalg.select (Db.snapshot db "T") (fun row ->
             not (Value.equal (Row.get row 0) (Value.Int 777_777)))
       in
       recovered = List.sort Row.compare live.Nbsc_relalg.Relalg.rows)

let () =
  Random.self_init ();
  Alcotest.run "crash_matrix"
    (List.concat_map
       (fun op ->
          List.map
            (fun window ->
               ( Printf.sprintf "matrix %s w%d" op.op_name window,
                 [ Alcotest.test_case
                     (Printf.sprintf "sites x %s (window %d)" op.op_name
                        window)
                     `Slow
                     (test_matrix op ~window);
                   Alcotest.test_case
                     (Printf.sprintf "recovery sites x %s (window %d)"
                        op.op_name window)
                     `Slow
                     (test_double_crash op ~window) ] ))
            [ 1; 8 ])
       all_cases
     (* The lazy/hybrid migration arms: the full site sweep again, with
        the background sweeper standing in for eager population (one
        group-commit window keeps the runtime bounded). *)
     @ List.concat_map
         (fun (label, migration) ->
            List.map
              (fun op ->
                 ( Printf.sprintf "matrix %s %s" op.op_name label,
                   [ Alcotest.test_case
                       (Printf.sprintf "sites x %s (%s)" op.op_name label)
                       `Slow
                       (test_matrix ~options:(opts_of migration) op ~window:1)
                   ] ))
              all_cases)
         [ ("lazy", Options.Lazy);
           ("hybrid", Options.Hybrid { sweep_quantum = 8 }) ]
     (* The virtual-cut population arm: eager migration again, but the
        fuzzy scan replaced by the DBLog-style watermark populator. *)
     @ (let vc_opts =
          Options.
            { (Transform.options_of_config cfg) with
              population = Options.Virtual_cut }
        in
        List.map
          (fun op ->
             ( Printf.sprintf "matrix %s virtual-cut" op.op_name,
               [ Alcotest.test_case
                   (Printf.sprintf "sites x %s (virtual-cut)" op.op_name)
                   `Slow
                   (test_matrix ~options:vc_opts op ~window:1) ] ))
          all_cases)
     (* Competitor baselines: crash anywhere, restart from scratch,
        still converge to the oracle. *)
     @ [ ( "matrix shadow-table",
           [ Alcotest.test_case "sites x shadow split" `Slow
               test_shadow_matrix ] );
         ( "matrix trigger",
           [ Alcotest.test_case "sites x trigger foj" `Slow
               test_trigger_matrix ] ) ]
     @ [ ( "directed",
           [ Alcotest.test_case "resume skips population" `Quick
               test_resume_skips_population;
             Alcotest.test_case "lazy crash mid-sweep restarts" `Quick
               (test_lazy_crash_mid_sweep Options.Lazy);
             Alcotest.test_case "hybrid crash mid-sweep restarts" `Quick
               (test_lazy_crash_mid_sweep
                  (Options.Hybrid { sweep_quantum = 8 }));
             Alcotest.test_case "populating crash restarts" `Quick
               test_populating_crash_restarts;
             Alcotest.test_case "acked commits survive checkpoint crash"
               `Quick test_acked_commits_survive_checkpoint_crash;
             Alcotest.test_case "synced_commits is the durability floor"
               `Quick test_synced_commits_is_the_durability_floor ] );
         ( "properties",
           List.map QCheck_alcotest.to_alcotest
             [ prop_replay_idempotent; prop_replay_matches_live ] ) ])
