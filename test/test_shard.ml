(* The sharded execution layer: the domain pool itself, shard latches,
   atomic multi-lock backout, the 1-shard byte-identity contract
   (Sharded{shards=1} performs the identical operation sequence to the
   legacy serial paths), N-shard relational equivalence under traffic,
   and the WAL pin/unpin discipline of per-shard propagator cursors. *)

open Nbsc_value
open Nbsc_wal
open Nbsc_lock
open Nbsc_storage
open Nbsc_txn
open Nbsc_core
module H = Helpers

let cfg =
  { Transform.default_config with
    Transform.scan_batch = 7;
    propagate_batch = 5;
    drop_sources = false }

(* {1 The domain pool} *)

let test_pool_basics () =
  let pool = Domain_pool.create ~size:3 () in
  Alcotest.(check int) "size" 3 (Domain_pool.size pool);
  Alcotest.(check (array int)) "run" [| 0; 1; 4 |]
    (Domain_pool.run pool (fun i -> i * i));
  let exec = Domain_pool.Sharded { pool; shards = 7 } in
  Alcotest.(check int) "exec shards" 7 (Domain_pool.shards exec);
  Alcotest.(check (array int)) "run_shards strides" [| 1; 2; 3; 4; 5; 6; 7 |]
    (Domain_pool.run_shards exec ~shards:7 (fun s -> s + 1));
  Alcotest.(check (array int)) "serial exec inline" [| 0; 2; 4 |]
    (Domain_pool.run_shards Domain_pool.Serial ~shards:3 (fun s -> s * 2));
  Domain_pool.shutdown pool;
  Domain_pool.shutdown pool;
  (* shutdown is idempotent *)
  (try
     ignore (Domain_pool.run pool (fun i -> i));
     Alcotest.fail "run after shutdown should raise"
   with Invalid_argument _ -> ())

let test_pool_size_one_inline () =
  let pool = Domain_pool.create ~size:1 () in
  Alcotest.(check (array int)) "inline" [| 42 |]
    (Domain_pool.run pool (fun _ -> 42));
  Domain_pool.shutdown pool

let test_pool_error_propagates () =
  let pool = Domain_pool.create ~size:2 () in
  (try
     ignore (Domain_pool.run pool (fun i -> if i = 1 then failwith "boom" else i));
     Alcotest.fail "expected the worker failure to re-raise"
   with Failure m -> Alcotest.(check string) "boom" "boom" m);
  (* the pool survives a failed task *)
  Alcotest.(check (array int)) "still works" [| 0; 1 |]
    (Domain_pool.run pool (fun i -> i));
  Domain_pool.shutdown pool

(* A simulated crash ([Fault.Injected]) inside a worker quantum must
   cross the domain boundary to the submitter like any exception — the
   crash-matrix harness catches it at top level — and must not poison
   the parked worker for the next quantum. *)
let test_pool_injected_propagates () =
  let module Fault = Nbsc_engine.Fault in
  let pool = Domain_pool.create ~size:2 () in
  (try
     ignore
       (Domain_pool.run pool (fun i ->
            if i = 1 then
              raise (Fault.Injected { site = "worker"; mode = Fault.Crash })
            else i));
     Alcotest.fail "expected Injected to re-raise on the submitter"
   with Fault.Injected { site; _ } ->
     Alcotest.(check string) "site travels" "worker" site);
  (* The pool is reusable after the injected crash. *)
  Alcotest.(check (array int)) "pool survives a crash" [| 0; 10 |]
    (Domain_pool.run pool (fun i -> i * 10));
  (try
     ignore
       (Domain_pool.run_shards
          (Domain_pool.Sharded { pool; shards = 4 })
          ~shards:4
          (fun s ->
             if s = 3 then
               raise (Fault.Injected { site = "shard"; mode = Fault.Crash })
             else s));
     Alcotest.fail "expected Injected to re-raise from run_shards"
   with Fault.Injected { site; _ } ->
     Alcotest.(check string) "shard site travels" "shard" site);
  Alcotest.(check (array int)) "pool survives again" [| 0; 1; 2; 3 |]
    (Domain_pool.run_shards
       (Domain_pool.Sharded { pool; shards = 4 })
       ~shards:4
       (fun s -> s));
  Domain_pool.shutdown pool

(* {1 Shard latches} *)

let test_latch_shards () =
  let t = Latch.create () in
  Alcotest.(check bool) "acquire shard 0" true
    (Latch.try_latch_shard t ~holder:1 ~table:"x" ~shards:4 ~shard:0);
  Alcotest.(check bool) "reentrant" true
    (Latch.try_latch_shard t ~holder:1 ~table:"x" ~shards:4 ~shard:0);
  Alcotest.(check bool) "other shard, other holder" true
    (Latch.try_latch_shard t ~holder:2 ~table:"x" ~shards:4 ~shard:1);
  Alcotest.(check bool) "same shard, other holder" false
    (Latch.try_latch_shard t ~holder:2 ~table:"x" ~shards:4 ~shard:0);
  Alcotest.(check bool) "mismatched partition count" false
    (Latch.try_latch_shard t ~holder:3 ~table:"x" ~shards:2 ~shard:1);
  Alcotest.(check bool) "whole blocked by a foreign shard" false
    (Latch.try_latch t ~holder:1 ~table:"x");
  Alcotest.(check bool) "latched tables sees shard holders" true
    (Latch.latched_tables t ~holder:2 = [ "x" ]);
  Latch.unlatch_shard t ~holder:2 ~table:"x" ~shard:1;
  (* only holder 1's shards remain: a whole-table request promotes *)
  Alcotest.(check bool) "promotes over own shards" true
    (Latch.try_latch t ~holder:1 ~table:"x");
  Alcotest.(check bool) "shard under own whole latch" true
    (Latch.try_latch_shard t ~holder:1 ~table:"x" ~shards:4 ~shard:3);
  Alcotest.(check bool) "shard under foreign whole latch" false
    (Latch.try_latch_shard t ~holder:2 ~table:"x" ~shards:4 ~shard:3);
  Latch.unlatch t ~holder:1 ~table:"x";
  Alcotest.(check bool) "free again" false (Latch.is_latched t ~table:"x");
  (try
     Latch.unlatch_shard t ~holder:1 ~table:"x" ~shard:0;
     Alcotest.fail "unlatch_shard without a latch should raise"
   with Invalid_argument _ -> ())

let test_blocking_holder () =
  let t = Latch.create () in
  ignore (Latch.try_latch_shard t ~holder:7 ~table:"x" ~shards:2 ~shard:0);
  Alcotest.(check bool) "key in latched shard blocked" true
    (Latch.blocking_holder t ~table:"x" ~key_hash:(Some 4) = Some 7);
  Alcotest.(check bool) "key in free shard passes" true
    (Latch.blocking_holder t ~table:"x" ~key_hash:(Some 5) = None);
  Alcotest.(check bool) "unknown key blocked conservatively" true
    (Latch.blocking_holder t ~table:"x" ~key_hash:None = Some 7);
  Alcotest.(check bool) "other table free" true
    (Latch.blocking_holder t ~table:"y" ~key_hash:None = None);
  Latch.unlatch_shard t ~holder:7 ~table:"x" ~shard:0;
  ignore (Latch.try_latch t ~holder:8 ~table:"x");
  Alcotest.(check bool) "whole latch blocks every key" true
    (Latch.blocking_holder t ~table:"x" ~key_hash:(Some 5) = Some 8)

(* User operations against a shard-latched table: only the keys whose
   hash falls in the latched shard are paused. *)
let test_manager_shard_latch () =
  let db = H.fresh_split_db ~t_rows:(H.seed_t_rows ~n:10) in
  let mgr = Db.manager db in
  let k i = Row.make [ Value.Int i ] in
  let shards = 2 in
  let s1 = Table.shard_of_key ~shards (k 1) in
  (* find a seeded key in the other shard (keys 1..10 exist) *)
  let other = ref 2 in
  while Table.shard_of_key ~shards (k !other) = s1 do incr other done;
  Alcotest.(check bool) "fixture has both shards" true (!other <= 10);
  ignore
    (Latch.try_latch_shard (Manager.latches mgr) ~holder:999 ~table:"T"
       ~shards ~shard:s1);
  let txn = Manager.begin_txn mgr in
  (match Manager.update mgr ~txn ~table:"T" ~key:(k 1) [ (1, Value.Text "a") ] with
   | Error (`Latched "T") -> ()
   | _ -> Alcotest.fail "latched-shard key should pause");
  (match Manager.update mgr ~txn ~table:"T" ~key:(k !other) [ (1, Value.Text "b") ] with
   | Ok () -> ()
   | Error e -> Alcotest.failf "free-shard key should pass: %a" Manager.pp_error e);
  (* inserts route by their own key too *)
  let fresh_in shard =
    let i = ref 1000 in
    while Table.shard_of_key ~shards (k !i) <> shard do incr i done;
    !i
  in
  let latched_key = fresh_in s1 and free_key = fresh_in (1 - s1) in
  (match
     Manager.insert mgr ~txn ~table:"T"
       (H.ti latched_key "x" 1 (H.city_of 1))
   with
   | Error (`Latched "T") -> ()
   | _ -> Alcotest.fail "insert into latched shard should pause");
  (match
     Manager.insert mgr ~txn ~table:"T" (H.ti free_key "x" 1 (H.city_of 1))
   with
   | Ok () -> ()
   | Error e -> Alcotest.failf "insert into free shard: %a" Manager.pp_error e);
  Latch.unlatch_shard (Manager.latches mgr) ~holder:999 ~table:"T" ~shard:s1;
  (match Manager.update mgr ~txn ~table:"T" ~key:(k 1) [ (1, Value.Text "c") ] with
   | Ok () -> ()
   | Error e -> Alcotest.failf "after unlatch: %a" Manager.pp_error e);
  (match Manager.commit mgr txn with
   | Ok () -> ()
   | Error e -> Alcotest.failf "commit: %a" Manager.pp_error e)

(* {1 Atomic multi-lock acquisition backout} *)

let native m = { Compat.mode = m; provenance = Compat.Native }

let test_acquire_all_backout () =
  let t = Lock_table.create () in
  let k i = Row.make [ Value.Int i ] in
  let req table i lock = { Lock_table_many.table; key = k i; lock } in
  (match
     Lock_table_many.acquire_all t ~owner:1
       [ req "T" 1 (native Compat.X); req "U" 2 (native Compat.S) ]
   with
   | Lock_table.Granted -> ()
   | Lock_table.Blocked _ -> Alcotest.fail "free resources should grant");
  Alcotest.(check bool) "holds T/1" true
    (Lock_table.holds_any t ~owner:1 ~table:"T" ~key:(k 1));
  (* conflicting set: blocked with the owner named, nothing granted *)
  (match
     Lock_table_many.acquire_all t ~owner:2
       [ req "U" 9 (native Compat.X); req "T" 1 (native Compat.X) ]
   with
   | Lock_table.Blocked [ 1 ] -> ()
   | Lock_table.Blocked _ -> Alcotest.fail "expected owner 1 as blocker"
   | Lock_table.Granted -> Alcotest.fail "conflicting set must block");
  Alcotest.(check bool) "nothing granted on a blocked set" false
    (Lock_table.holds_any t ~owner:2 ~table:"U" ~key:(k 9));
  (* locks held before a blocked call survive it *)
  (match Lock_table_many.acquire_all t ~owner:2 [ req "V" 5 (native Compat.X) ] with
   | Lock_table.Granted -> ()
   | Lock_table.Blocked _ -> Alcotest.fail "V/5 is free");
  (match
     Lock_table_many.acquire_all t ~owner:2
       [ req "V" 5 (native Compat.X); req "T" 1 (native Compat.S) ]
   with
   | Lock_table.Blocked _ -> ()
   | Lock_table.Granted -> Alcotest.fail "T/1 is exclusively held by 1");
  Alcotest.(check bool) "previously-held V/5 survives the backout" true
    (Lock_table.holds_any t ~owner:2 ~table:"V" ~key:(k 5))

(* {1 Operator fixtures for the differential runs} *)

type fixture = {
  f_name : string;
  f_build : unit -> Db.t;
  f_start : Db.t -> exec:Domain_pool.exec -> Transform.t;
  f_traffic : H.driver -> unit;
  f_sources : string list;
  f_targets : string list;
  f_oracle : Db.t -> (string * Nbsc_relalg.Relalg.t) list;
      (** expected target relations from the run's own final sources *)
}

let foj_fixture =
  { f_name = "foj";
    f_build =
      (fun () ->
         let r_rows, s_rows = H.seed_rows ~r:40 ~s:20 in
         H.fresh_foj_db ~r_rows ~s_rows);
    f_start = (fun db ~exec -> Transform.foj db ~config:cfg ~exec H.foj_spec);
    f_traffic =
      (fun d ->
         H.random_r_op d;
         H.random_s_op d);
    f_sources = [ "R"; "S" ];
    f_targets = [ "T" ];
    f_oracle = (fun db -> [ ("T", H.foj_oracle db) ]) }

let split_fixture =
  { f_name = "split";
    f_build = (fun () -> H.fresh_split_db ~t_rows:(H.seed_t_rows ~n:60));
    f_start =
      (fun db ~exec ->
         Transform.split db ~config:cfg ~exec
           (H.split_spec ~assume_consistent:true));
    f_traffic = (fun d -> H.random_t_op ~consistent:true d);
    f_sources = [ "T" ];
    f_targets = [ "R"; "S" ];
    f_oracle =
      (fun db ->
         let r, s =
           Nbsc_relalg.Relalg.split
             { Nbsc_relalg.Relalg.r_cols' = [ "a"; "b"; "c" ];
               s_cols' = [ "c"; "d" ];
               r_key = [ "a" ];
               s_key = [ "c" ] }
             (Db.snapshot db "T")
         in
         [ ("R", r); ("S", s) ]) }

let hspec =
  { Spec.h_source = "T";
    h_true_table = "archive";
    h_false_table = "live";
    h_pred = Pred.Cmp ("c", Pred.Gt, Value.Int 6) }

let hsplit_fixture =
  { f_name = "hsplit";
    f_build = (fun () -> H.fresh_split_db ~t_rows:(H.seed_t_rows ~n:60));
    f_start = (fun db ~exec -> Transform.hsplit db ~config:cfg ~exec hspec);
    f_traffic = (fun d -> H.random_t_op ~consistent:true d);
    f_sources = [ "T" ];
    f_targets = [ "archive"; "live" ];
    f_oracle =
      (fun db ->
         let t = Db.snapshot db "T" in
         let p = Pred.compile H.t_flat_schema hspec.Spec.h_pred in
         [ ("archive", Nbsc_relalg.Relalg.select t p);
           ("live", Nbsc_relalg.Relalg.select t (fun row -> not (p row))) ]) }

let merge_traffic d =
  let mgr = Db.manager d.H.db in
  ignore
    (H.run_txn d (fun txn ->
         let table = if Random.State.bool d.H.rng then "A" else "B" in
         match Random.State.int d.H.rng 3 with
         | 0 ->
           d.H.next_r_key <- d.H.next_r_key + 1;
           Manager.insert mgr ~txn ~table
             (H.ti d.H.next_r_key "new" (Random.State.int d.H.rng 10) "z")
         | 1 ->
           (match H.existing_key d table with
            | Some key ->
              Manager.update mgr ~txn ~table ~key
                [ (1, Value.Text ("w" ^ string_of_int (Random.State.int d.H.rng 100))) ]
            | None -> Ok ())
         | _ ->
           (match H.existing_key d table with
            | Some key -> Manager.delete mgr ~txn ~table ~key
            | None -> Ok ())))

let merge_fixture =
  { f_name = "merge";
    f_build =
      (fun () ->
         let db = Db.create () in
         ignore (Db.create_table db ~name:"A" H.t_flat_schema);
         ignore (Db.create_table db ~name:"B" H.t_flat_schema);
         (match
            Db.load db ~table:"A"
              (List.init 30 (fun i -> H.ti i "a" (i mod 5) "x"))
          with
          | Ok () -> ()
          | Error e -> Alcotest.failf "load A: %a" Manager.pp_error e);
         (match
            Db.load db ~table:"B"
              (List.init 20 (fun i -> H.ti (100 + i) "b" (i mod 5) "y"))
          with
          | Ok () -> ()
          | Error e -> Alcotest.failf "load B: %a" Manager.pp_error e);
         db);
    f_start =
      (fun db ~exec ->
         Transform.merge db ~config:cfg ~exec
           { Spec.m_sources = [ "A"; "B" ]; m_target = "AB" });
    f_traffic = merge_traffic;
    f_sources = [ "A"; "B" ];
    f_targets = [ "AB" ];
    f_oracle =
      (fun db ->
         let a = Db.snapshot db "A" and b = Db.snapshot db "B" in
         [ ( "AB",
             Nbsc_relalg.Relalg.make H.t_flat_schema
               (a.Nbsc_relalg.Relalg.rows @ b.Nbsc_relalg.Relalg.rows) ) ]) }

let all_fixtures = [ foj_fixture; split_fixture; hsplit_fixture; merge_fixture ]

let run_fixture f ~exec ~seed ~max_traffic =
  let db = f.f_build () in
  let tf = f.f_start db ~exec in
  let d = H.driver ~seed db in
  let budget = ref max_traffic in
  let rounds = ref 0 in
  let rec go () =
    match Transform.step tf with
    | `Done -> ()
    | `Failed m -> Alcotest.failf "%s failed: %s" f.f_name m
    | `Running ->
      incr rounds;
      if !rounds > 20_000 then Alcotest.failf "%s: no convergence" f.f_name;
      if !budget > 0 then begin
        decr budget;
        f.f_traffic d
      end;
      go ()
  in
  go ();
  (db, tf)

(* Full record-level state: row, LSN, counter, consistency flag, aux
   bits — the byte-identity contract covers all of them, not just the
   user-visible relation. *)
let record_state db name =
  Table.fold (Db.table db name) ~init:[] ~f:(fun acc _ r ->
      Format.asprintf "%a" Record.pp r :: acc)
  |> List.sort String.compare

(* {2 One shard is byte-identical to the legacy serial paths} *)

let test_one_shard_identity f () =
  let db_a, tf_a =
    run_fixture f ~exec:Domain_pool.Serial ~seed:7 ~max_traffic:80
  in
  let pool = Domain_pool.create ~size:1 () in
  let db_b, tf_b =
    run_fixture f
      ~exec:(Domain_pool.Sharded { pool; shards = 1 })
      ~seed:7 ~max_traffic:80
  in
  Domain_pool.shutdown pool;
  (* identical traffic implies identical sources — a guard that the two
     runs really replayed the same history *)
  List.iter
    (fun t ->
       Alcotest.(check (list string))
         (f.f_name ^ "/" ^ t ^ " source histories identical")
         (record_state db_a t) (record_state db_b t))
    f.f_sources;
  List.iter
    (fun t ->
       Alcotest.(check (list string))
         (f.f_name ^ "/" ^ t ^ " records byte-identical")
         (record_state db_a t) (record_state db_b t))
    f.f_targets;
  let pa = Transform.progress tf_a and pb = Transform.progress tf_b in
  Alcotest.(check int) (f.f_name ^ " scanned") pa.Transform.scanned
    pb.Transform.scanned;
  Alcotest.(check int) (f.f_name ^ " produced") pa.Transform.produced
    pb.Transform.produced;
  Alcotest.(check int) (f.f_name ^ " propagated") pa.Transform.propagated
    pb.Transform.propagated;
  Alcotest.(check int) (f.f_name ^ " applied") pa.Transform.applied
    pb.Transform.applied

(* {2 N shards converge to the operator's semantics}

   Different shard counts legitimately take different numbers of
   executor steps, so the interleaved traffic histories differ between
   runs — final states cannot be compared across runs. What sharding
   must preserve is the convergence contract: after sync, each target
   equals the pure relational operator applied to the run's own final
   sources. *)

let test_n_shard_equivalence f shards () =
  let pool = Domain_pool.create ~size:2 () in
  let db, _ =
    run_fixture f
      ~exec:(Domain_pool.Sharded { pool; shards })
      ~seed:11 ~max_traffic:80
  in
  Domain_pool.shutdown pool;
  List.iter
    (fun (t, expected) ->
       H.check_relations_equal
         (Printf.sprintf "%s/%s at %d shards vs oracle" f.f_name t shards)
         expected (Db.snapshot db t))
    (f.f_oracle db)

(* {1 WAL pins of per-shard cursors} *)

let trivial_rules =
  Propagator.rules ~sources:[ "T" ] ~targets:[]
    ~apply:(fun ~lsn:_ _ -> [])
    ()

let drain_low_water mgr log =
  ignore (Manager.truncate_wal mgr);
  Lsn.equal (Manager.wal_low_water mgr) (Lsn.next (Log.head log))

let test_sharded_pins_released_once () =
  let db = H.fresh_split_db ~t_rows:(H.seed_t_rows ~n:5) in
  let mgr = Db.manager db in
  let log = Db.log db in
  let d = H.driver db in
  for _ = 1 to 10 do
    H.random_t_op ~consistent:true d
  done;
  let from = Log.head log in
  let pool = Domain_pool.create ~size:2 () in
  let prop =
    Propagator.create
      ~exec:(Domain_pool.Sharded { pool; shards = 4 })
      mgr trivial_rules ~from
  in
  (* all four shard cursors pin [from]: truncation cannot pass it *)
  for _ = 1 to 10 do
    H.random_t_op ~consistent:true d
  done;
  ignore (Manager.truncate_wal mgr);
  Alcotest.(check bool) "pinned suffix survives truncation" true
    Lsn.(Manager.wal_low_water mgr <= from);
  ignore (Log.get log from);
  (* close releases every shard pin; a second close must not unpin
     anything else (unpin_wal is idempotent per pin) *)
  Propagator.close prop;
  Propagator.close prop;
  Domain_pool.shutdown pool;
  Alcotest.(check bool) "all pins gone" true (drain_low_water mgr log)

(* Abort after the executor already closed its population and
   propagator (the finalize path) double-closes both; no pin may be
   dropped twice, and nothing may keep the WAL alive. *)
let test_abort_after_done_and_double_abort () =
  let f = split_fixture in
  let db, tf = run_fixture f ~exec:Domain_pool.Serial ~seed:3 ~max_traffic:40 in
  Alcotest.(check bool) "done" true (Transform.phase tf = Transform.Done);
  Transform.abort tf;
  Transform.abort tf;
  (* targets still intact: abort after Done is a no-op *)
  Alcotest.(check bool) "targets survive" true
    (Catalog.mem (Db.catalog db) "R" && Catalog.mem (Db.catalog db) "S");
  Alcotest.(check bool) "no leaked pins" true
    (drain_low_water (Db.manager db) (Db.log db));
  (* and aborting mid-flight twice releases exactly once too *)
  let db2 = f.f_build () in
  let tf2 = f.f_start db2 ~exec:Domain_pool.Serial in
  for _ = 1 to 3 do
    ignore (Transform.step tf2)
  done;
  Transform.abort tf2;
  Transform.abort tf2;
  Alcotest.(check bool) "no leaked pins after mid-flight abort" true
    (drain_low_water (Db.manager db2) (Db.log db2))

(* Random pin / unpin / truncate / traffic schedules: truncation never
   reclaims a pinned suffix, double-closes are absorbed, and once every
   propagator is closed the log drains completely. *)
let prop_pin_schedules =
  QCheck.Test.make ~name:"pin/unpin/truncate schedules" ~count:40
    QCheck.small_nat
    (fun seed ->
       let db = H.fresh_split_db ~t_rows:(H.seed_t_rows ~n:8) in
       let mgr = Db.manager db in
       let log = Db.log db in
       let rng = Random.State.make [| seed + 1 |] in
       let d = H.driver ~seed db in
       let open_props = ref [] in
       let closed = ref [] in
       for _ = 1 to 60 do
         match Random.State.int rng 5 with
         | 0 | 1 -> H.random_t_op ~consistent:true d
         | 2 ->
           if Log.length log > 0 then begin
             let from = Log.head log in
             let p = Propagator.create mgr trivial_rules ~from in
             open_props := (p, from) :: !open_props
           end
         | 3 ->
           (match !open_props with
            | [] -> ()
            | (p, _) :: rest ->
              Propagator.close p;
              closed := p :: !closed;
              open_props := rest);
           (match !closed with
            | p :: _ when Random.State.bool rng -> Propagator.close p
            | _ -> ())
         | _ -> ignore (Manager.truncate_wal mgr)
       done;
       (* every still-open cursor must be able to read from its pinned
          position: truncation never cut under it *)
       List.iter (fun (p, _) -> ignore (Propagator.step p ~limit:1)) !open_props;
       List.iter (fun (p, _) -> Propagator.close p) !open_props;
       ignore (Manager.truncate_wal mgr);
       Lsn.equal (Manager.wal_low_water mgr) (Lsn.next (Log.head log)))

let () =
  Alcotest.run "shard"
    [ ( "pool",
        [ Alcotest.test_case "basics" `Quick test_pool_basics;
          Alcotest.test_case "size one is inline" `Quick
            test_pool_size_one_inline;
          Alcotest.test_case "errors propagate" `Quick
            test_pool_error_propagates;
          Alcotest.test_case "injected faults propagate" `Quick
            test_pool_injected_propagates ] );
      ( "latch",
        [ Alcotest.test_case "shard latches" `Quick test_latch_shards;
          Alcotest.test_case "blocking holder" `Quick test_blocking_holder;
          Alcotest.test_case "manager shard-aware access" `Quick
            test_manager_shard_latch ] );
      ( "locks",
        [ Alcotest.test_case "acquire_all backout" `Quick
            test_acquire_all_backout ] );
      ( "one-shard identity",
        List.map
          (fun f ->
             Alcotest.test_case f.f_name `Quick (test_one_shard_identity f))
          all_fixtures );
      ( "n-shard equivalence",
        List.concat_map
          (fun f ->
             List.map
               (fun shards ->
                  Alcotest.test_case
                    (Printf.sprintf "%s x%d" f.f_name shards)
                    `Quick
                    (test_n_shard_equivalence f shards))
               [ 2; 4 ])
          all_fixtures );
      ( "wal pins",
        [ Alcotest.test_case "sharded pins released once" `Quick
            test_sharded_pins_released_once;
          Alcotest.test_case "abort after done / double abort" `Quick
            test_abort_after_done_and_double_abort ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_pin_schedules ] ) ]
