(* Tests for the engine facade and ARIES-light recovery: the log must
   be complete enough to rebuild the database from scratch. *)

open Nbsc_value
open Nbsc_storage
open Nbsc_txn
open Nbsc_engine
module H = Helpers

let row a b c = Row.make [ Value.Int a; Value.Text b; Value.Int c ]
let key a = Row.make [ Value.Int a ]

let ok name = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" name Manager.pp_error e

let defs = [ Recovery.table_def "t" H.r_schema ]

let fresh () =
  let db = Db.create () in
  ignore (Db.create_table db ~name:"t" H.r_schema);
  db

let table_image t =
  Table.fold t ~init:[] ~f:(fun acc _ r -> r.Record.row :: acc)
  |> List.sort Row.compare

let check_recovered db =
  let recovered, _report = Recovery.recover ~table_defs:defs (Db.log db) in
  let live = table_image (Db.table db "t") in
  let rec_t = table_image (Catalog.find recovered "t") in
  Alcotest.(check int) "same cardinality" (List.length live) (List.length rec_t);
  List.iter2
    (fun a b ->
       Alcotest.(check bool) "same row" true (Row.equal a b))
    live rec_t

let test_committed_survive () =
  let db = fresh () in
  ok "load" (Db.load db ~table:"t" [ row 1 "a" 1; row 2 "b" 2 ]);
  check_recovered db

let test_losers_rolled_back () =
  let db = fresh () in
  let mgr = Db.manager db in
  ok "load" (Db.load db ~table:"t" [ row 1 "a" 1 ]);
  (* A transaction that never finishes — the crash victim. *)
  let loser = Manager.begin_txn mgr in
  ok "loser insert" (Manager.insert mgr ~txn:loser ~table:"t" (row 2 "ghost" 2));
  ok "loser update"
    (Manager.update mgr ~txn:loser ~table:"t" ~key:(key 1)
       [ (1, Value.Text "ghost") ]);
  let recovered, report = Recovery.recover ~table_defs:defs (Db.log db) in
  Alcotest.(check (list int)) "loser detected" [ loser ] report.Recovery.losers;
  let t = Catalog.find recovered "t" in
  Alcotest.(check int) "ghost insert gone" 1 (Table.cardinality t);
  let r = Option.get (Table.find t (key 1)) in
  Alcotest.(check bool) "ghost update undone" true
    (Value.equal (Row.get r.Record.row 1) (Value.Text "a"))

let test_aborted_txn_replays_clean () =
  let db = fresh () in
  let mgr = Db.manager db in
  ok "load" (Db.load db ~table:"t" [ row 1 "a" 1 ]);
  let txn = Manager.begin_txn mgr in
  ok "i" (Manager.insert mgr ~txn ~table:"t" (row 2 "x" 2));
  ok "u" (Manager.update mgr ~txn ~table:"t" ~key:(key 1) [ (1, Value.Text "y") ]);
  ok "a" (Manager.abort mgr txn);
  (* The abort is complete in the log (CLRs + Abort_done): recovery
     replays history and must reach the same state with no losers. *)
  let _, report = Recovery.recover ~table_defs:defs (Db.log db) in
  Alcotest.(check (list int)) "no losers" [] report.Recovery.losers;
  check_recovered db

let test_mid_abort_crash () =
  (* Simulate a crash in the middle of a rollback by replaying a
     truncated log: Begin, 2 ops, Abort_begin, 1 CLR — no Abort_done. *)
  let db = fresh () in
  let mgr = Db.manager db in
  ok "load" (Db.load db ~table:"t" [ row 1 "a" 1 ]);
  let txn = Manager.begin_txn mgr in
  ok "i" (Manager.insert mgr ~txn ~table:"t" (row 2 "x" 2));
  ok "u" (Manager.update mgr ~txn ~table:"t" ~key:(key 1) [ (1, Value.Text "y") ]);
  ok "a" (Manager.abort mgr txn);
  let records = Nbsc_wal.Log.to_records (Db.log db) in
  (* Drop the last two records (the second CLR and Abort_done). *)
  let truncated =
    List.filteri (fun i _ -> i < List.length records - 2) records
  in
  let partial = Nbsc_wal.Log.of_records truncated in
  let recovered, report = Recovery.recover ~table_defs:defs partial in
  Alcotest.(check (list int)) "still a loser" [ txn ] report.Recovery.losers;
  let t = Catalog.find recovered "t" in
  (* Undo must resume where the CLR chain left off: both changes gone. *)
  Alcotest.(check int) "insert undone" 1 (Table.cardinality t);
  let r = Option.get (Table.find t (key 1)) in
  Alcotest.(check bool) "update undone" true
    (Value.equal (Row.get r.Record.row 1) (Value.Text "a"))

let test_unknown_tables_skipped () =
  let db = fresh () in
  ignore (Db.create_table db ~name:"other" H.s_schema);
  ok "load t" (Db.load db ~table:"t" [ row 1 "a" 1 ]);
  ok "load other" (Db.load db ~table:"other" [ Row.make [ Value.Int 5; Value.Text "d" ] ]);
  let recovered, report = Recovery.recover ~table_defs:defs (Db.log db) in
  Alcotest.(check bool) "skipped some" true (report.Recovery.redo_skipped > 0);
  Alcotest.(check int) "t recovered" 1 (Table.cardinality (Catalog.find recovered "t"));
  Alcotest.(check bool) "other absent" false (Catalog.mem recovered "other")

let test_recovery_idempotent () =
  let db = fresh () in
  ok "load" (Db.load db ~table:"t" [ row 1 "a" 1; row 2 "b" 2 ]);
  let r1, _ = Recovery.recover ~table_defs:defs (Db.log db) in
  let r2, _ = Recovery.recover ~table_defs:defs (Db.log db) in
  Alcotest.(check bool) "identical" true
    (table_image (Catalog.find r1 "t") = table_image (Catalog.find r2 "t"))

let test_with_txn_helper () =
  let db = fresh () in
  (* Success path commits. *)
  (match
     Db.with_txn db (fun txn ->
         Manager.insert (Db.manager db) ~txn ~table:"t" (row 1 "a" 1))
   with
   | Ok () -> ()
   | Error e -> Alcotest.failf "with_txn: %a" Manager.pp_error e);
  Alcotest.(check int) "committed" 1 (Db.row_count db "t");
  (* Failure path rolls back. *)
  (match
     Db.with_txn db (fun txn ->
         ok "i" (Manager.insert (Db.manager db) ~txn ~table:"t" (row 2 "b" 2));
         Error `Not_found)
   with
   | Error `Not_found -> ()
   | _ -> Alcotest.fail "error should propagate");
  Alcotest.(check int) "rolled back" 1 (Db.row_count db "t")

(* Property: after an arbitrary history of committed and aborted
   transactions, recovery from the log reproduces the live state. *)
let prop_recovery_equals_live =
  QCheck.Test.make ~name:"recovery reproduces live state" ~count:100
    QCheck.(pair (int_bound 1000)
              (list_of_size Gen.(int_bound 25)
                 (triple (int_bound 10) (int_bound 3) bool)))
    (fun (seed, txn_specs) ->
       let db = fresh () in
       let mgr = Db.manager db in
       let rng = Random.State.make [| seed |] in
       List.iter
         (fun (a, action, commit) ->
            let txn = Manager.begin_txn mgr in
            let n_ops = 1 + Random.State.int rng 4 in
            for i = 0 to n_ops - 1 do
              let a = (a + i) mod 12 in
              ignore
                (match action with
                 | 0 -> Manager.insert mgr ~txn ~table:"t" (row a "v" a)
                 | 1 ->
                   Manager.update mgr ~txn ~table:"t" ~key:(key a)
                     [ (1, Value.Text (string_of_int i)) ]
                 | _ -> Manager.delete mgr ~txn ~table:"t" ~key:(key a))
            done;
            ignore (if commit then Manager.commit mgr txn else Manager.abort mgr txn))
         txn_specs;
       let recovered, _ = Recovery.recover ~table_defs:defs (Db.log db) in
       table_image (Db.table db "t") = table_image (Catalog.find recovered "t"))

let () =
  Alcotest.run "engine"
    [ ( "recovery",
        [ Alcotest.test_case "committed survive" `Quick test_committed_survive;
          Alcotest.test_case "losers rolled back" `Quick test_losers_rolled_back;
          Alcotest.test_case "aborted replays clean" `Quick
            test_aborted_txn_replays_clean;
          Alcotest.test_case "mid-abort crash" `Quick test_mid_abort_crash;
          Alcotest.test_case "unknown tables skipped" `Quick
            test_unknown_tables_skipped;
          Alcotest.test_case "idempotent" `Quick test_recovery_idempotent ] );
      ("facade", [ Alcotest.test_case "with_txn" `Quick test_with_txn_helper ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_recovery_equals_live ] ) ]
