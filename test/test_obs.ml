(* The observability layer: registry semantics, trace spans, sinks,
   JSON round-trips, and the Db.Schema_change facade that feeds it. *)

open Nbsc_core
module Obs = Nbsc_obs.Obs
module Json = Nbsc_obs.Json
module E = Nbsc_sim.Experiment

(* {1 Registry instruments} *)

let test_counter () =
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter r "a.count" in
  Alcotest.(check int) "starts at zero" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.add c 4;
  Alcotest.(check int) "incr + add" 5 (Obs.Counter.value c);
  (* Get-or-create: the same name is the same instrument. *)
  let c' = Obs.Registry.counter r "a.count" in
  Obs.Counter.incr c';
  Alcotest.(check int) "aliased" 6 (Obs.Counter.value c);
  (* A kind mismatch on an existing name is a programming error. *)
  (match Obs.Registry.gauge r "a.count" with
   | _ -> Alcotest.fail "kind mismatch must raise"
   | exception Invalid_argument _ -> ());
  Obs.Registry.zero r;
  Alcotest.(check int) "zeroed" 0 (Obs.Counter.value c)

let test_gauge_and_probe () =
  let r = Obs.Registry.create () in
  let g = Obs.Registry.gauge r "a.gauge" in
  Obs.Gauge.set g 2.5;
  Alcotest.(check (float 0.)) "set" 2.5 (Obs.Gauge.value g);
  let live = ref 7. in
  Obs.Registry.probe r "a.probe" (fun () -> !live);
  (match Obs.Registry.find r "a.probe" with
   | Some (Obs.Gauge_v v) -> Alcotest.(check (float 0.)) "probe reads" 7. v
   | _ -> Alcotest.fail "probe must read as a gauge");
  live := 9.;
  (match Obs.Registry.find r "a.probe" with
   | Some (Obs.Gauge_v v) -> Alcotest.(check (float 0.)) "probe live" 9. v
   | _ -> Alcotest.fail "probe must read as a gauge");
  Obs.Registry.remove r "a.probe";
  Alcotest.(check bool) "removed" true (Obs.Registry.find r "a.probe" = None)

let test_histogram () =
  let r = Obs.Registry.create () in
  let h = Obs.Registry.histogram ~edges:[ 1.; 10.; 100. ] r "a.hist" in
  List.iter (Obs.Histogram.observe h) [ 0.5; 5.; 5.; 50.; 1000. ];
  Alcotest.(check int) "count" 5 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 1060.5 (Obs.Histogram.sum h);
  (match Obs.Histogram.buckets h with
   | [ (e1, 1); (e2, 2); (e3, 1); (e4, 1) ] ->
     Alcotest.(check (list (float 0.))) "edges" [ 1.; 10.; 100.; infinity ]
       [ e1; e2; e3; e4 ]
   | bs -> Alcotest.failf "unexpected buckets (%d)" (List.length bs));
  (* The 0.5 quantile of 5 samples lands in the second bucket. *)
  Alcotest.(check (float 0.)) "median upper-edge" 10.
    (Obs.Histogram.quantile h 0.5)

let test_snapshot_sorted () =
  let r = Obs.Registry.create () in
  ignore (Obs.Registry.counter r "zz");
  ignore (Obs.Registry.counter r "aa");
  ignore (Obs.Registry.gauge r "mm");
  let names = List.map fst (Obs.Registry.snapshot r) in
  Alcotest.(check (list string)) "sorted" [ "aa"; "mm"; "zz" ] names

(* {1 Sinks and the no-op guarantee} *)

let test_noop_without_sink () =
  let r = Obs.Registry.create () in
  Alcotest.(check bool) "not tracing" false (Obs.Registry.tracing r);
  (* Emitting with no sink is a guarded no-op; spans still get distinct
     deterministic ids so a later-attached sink sees a consistent
     stream. *)
  let s1 = Obs.span_open r "one" in
  Obs.span_close r s1;
  let mem = Obs.memory_sink () in
  Obs.Registry.attach r mem;
  Alcotest.(check bool) "tracing" true (Obs.Registry.tracing r);
  let s2 = Obs.span_open r "two" in
  Obs.span_close r s2;
  Alcotest.(check bool) "ids advance while untraced" true
    (s2.Obs.span_id > s1.Obs.span_id);
  Alcotest.(check int) "only traced events captured" 2
    (List.length (Obs.memory_events mem));
  Obs.Registry.detach r mem;
  Alcotest.(check bool) "detached" false (Obs.Registry.tracing r)

let test_memory_ring_drops_oldest () =
  let r = Obs.Registry.create () in
  let mem = Obs.memory_sink ~capacity:4 () in
  Obs.Registry.attach r mem;
  for i = 1 to 10 do
    Obs.point r "p" [ ("i", Json.Int i) ]
  done;
  let is =
    List.map
      (function
        | Obs.Point { attrs = [ ("i", Json.Int i) ]; _ } -> i
        | _ -> Alcotest.fail "point expected")
      (Obs.memory_events mem)
  in
  Alcotest.(check (list int)) "last 4, oldest first" [ 7; 8; 9; 10 ] is

let test_subscribe () =
  let db = Db.create () in
  let seen = ref 0 in
  let cancel = Db.Observe.subscribe db (fun _ -> incr seen) in
  ignore (Db.create_table db ~name:"X"
            (Nbsc_value.Schema.make ~key:[ "k" ]
               [ Nbsc_value.Schema.column ~nullable:false "k"
                   Nbsc_value.Value.TInt ]));
  let before = !seen in
  let sc =
    match
      Db.Schema_change.start db
        (Spec.Hsplit
           { Spec.h_source = "X"; h_true_table = "X1"; h_false_table = "X2";
             h_pred = Nbsc_value.Pred.True })
    with
    | Ok sc -> sc
    | Error e -> Alcotest.fail (Nbsc_error.to_string e)
  in
  (match Db.Schema_change.run sc with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Nbsc_error.to_string e));
  Alcotest.(check bool) "events delivered" true (!seen > before);
  cancel ();
  let at_cancel = !seen in
  ignore (Db.create_table db ~name:"Y"
            (Nbsc_value.Schema.make ~key:[ "k" ]
               [ Nbsc_value.Schema.column ~nullable:false "k"
                   Nbsc_value.Value.TInt ]));
  Alcotest.(check int) "unsubscribed" at_cancel !seen

(* {1 JSON} *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [ ("s", Json.String "a\"b\\c\nd");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.String "x" ]) ]
  in
  (match Json.of_string (Json.to_string v) with
   | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')
   | Error m -> Alcotest.fail m);
  (match Json.of_string "{\"a\": 1} trailing" with
   | Ok _ -> Alcotest.fail "trailing garbage must fail"
   | Error _ -> ());
  Alcotest.(check bool) "single line" true
    (not (String.contains (Json.to_string v) '\n'))

let test_event_json_fields () =
  let r = Obs.Registry.create () in
  Obs.Registry.set_clock r (fun () -> 12.);
  let mem = Obs.memory_sink () in
  Obs.Registry.attach r mem;
  let sp = Obs.span_open r "phase" ~attrs:[ ("k", Json.Int 1) ] in
  Obs.point r ~in_span:sp "tick" [];
  Obs.span_close r sp;
  List.iter
    (fun ev ->
       let j = Obs.event_to_json ev in
       List.iter
         (fun k ->
            if Json.member k j = None then
              Alcotest.failf "missing %S in %s" k (Json.to_string j))
         [ "ev"; "name"; "at" ];
       match Json.of_string (Json.to_string j) with
       | Ok j' -> Alcotest.(check bool) "event roundtrip" true (j = j')
       | Error m -> Alcotest.fail m)
    (Obs.memory_events mem)

(* {1 Phase spans from a fixed-seed simulation} *)

let traced = lazy (E.traced_run ())

let test_span_nesting () =
  let tr = Lazy.force traced in
  let phases = tr.E.tr_phases in
  Alcotest.(check (list string)) "phases in order"
    [ "schema_change"; "populate"; "propagate"; "sync" ]
    (List.map (fun p -> p.E.ph_name) phases);
  match phases with
  | root :: rest ->
    Alcotest.(check bool) "root has no parent" true (root.E.ph_parent = None);
    List.iter
      (fun p ->
         Alcotest.(check (option int)) (p.E.ph_name ^ " nested under root")
           (Some root.E.ph_span) p.E.ph_parent;
         (match p.E.ph_end with
          | None -> Alcotest.failf "%s never closed" p.E.ph_name
          | Some e ->
            Alcotest.(check bool) (p.E.ph_name ^ " start<=end") true
              (p.E.ph_start <= e));
         Alcotest.(check bool) "within root" true
           (p.E.ph_start >= root.E.ph_start))
      rest;
    (* Phases tile the change: populate ends where propagate begins. *)
    (match rest with
     | [ pop; prop; sync ] ->
       Alcotest.(check (option (float 0.))) "populate -> propagate"
         (Some prop.E.ph_start) pop.E.ph_end;
       Alcotest.(check (option (float 0.))) "propagate -> sync"
         (Some sync.E.ph_start) prop.E.ph_end;
       Alcotest.(check (option (float 0.))) "sync closes the change"
         root.E.ph_end sync.E.ph_end
     | _ -> Alcotest.fail "three phase spans expected")
  | [] -> Alcotest.fail "no spans captured"

let test_quantum_points () =
  let tr = Lazy.force traced in
  let quanta =
    List.filter
      (function
        | Obs.Point { name = "transform.quantum"; _ } -> true
        | _ -> false)
      tr.E.tr_events
  in
  Alcotest.(check bool) "many quantum points" true (List.length quanta > 10);
  List.iter
    (function
      | Obs.Point { attrs; in_span; _ } ->
        List.iter
          (fun k ->
             if not (List.mem_assoc k attrs) then
               Alcotest.failf "quantum point missing %S" k)
          [ "job"; "phase"; "scanned"; "propagated"; "lag"; "position" ];
        Alcotest.(check bool) "attributed to a phase span" true
          (in_span <> None)
      | _ -> ())
    quanta

let test_fixed_seed_traces_equal () =
  let a = E.traced_run () and b = E.traced_run () in
  Alcotest.(check int) "same event count" (List.length a.E.tr_events)
    (List.length b.E.tr_events);
  Alcotest.(check bool) "identical event streams" true
    (a.E.tr_events = b.E.tr_events);
  Alcotest.(check bool) "spans present" true (a.E.tr_phases <> [])

(* {1 The Schema_change facade} *)

let fresh_split_db rows =
  let db = Db.create () in
  let col = Nbsc_value.Schema.column in
  ignore
    (Db.create_table db ~name:"T"
       (Nbsc_value.Schema.make ~key:[ "a" ]
          [ col ~nullable:false "a" Nbsc_value.Value.TInt;
            col "b" Nbsc_value.Value.TText;
            col "c" Nbsc_value.Value.TInt ]));
  (match
     Db.load db ~table:"T"
       (List.init rows (fun i ->
            Nbsc_value.Row.make
              [ Nbsc_value.Value.Int i;
                Nbsc_value.Value.Text ("b" ^ string_of_int i);
                Nbsc_value.Value.Int (i mod 7) ]))
   with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "load");
  db

let split_spec =
  { Spec.t_table' = "T"; r_table' = "R"; s_table' = "S";
    r_cols = [ "a"; "b"; "c" ]; s_cols = [ "c" ];
    split_key = [ "c" ]; assume_consistent = true }

let test_schema_change_lifecycle () =
  let db = fresh_split_db 50 in
  let sc =
    match Db.Schema_change.start db (Spec.Split split_spec) with
    | Ok sc -> sc
    | Error e -> Alcotest.fail (Nbsc_error.to_string e)
  in
  let i = Db.Schema_change.status sc in
  Alcotest.(check string) "operator" "split" i.Db.Schema_change.sc_operator;
  Alcotest.(check bool) "routing at sources" true
    (i.Db.Schema_change.sc_routing = `Sources);
  let rec drive n =
    if n > 100_000 then Alcotest.fail "did not converge"
    else
      match Db.Schema_change.step sc with
      | `Running -> drive (n + 1)
      | `Done -> ()
      | `Failed e -> Alcotest.fail (Nbsc_error.to_string e)
  in
  drive 0;
  let i = Db.Schema_change.status sc in
  Alcotest.(check bool) "done" true
    (i.Db.Schema_change.sc_phase = Transform.Done);
  Alcotest.(check bool) "routing switched" true
    (i.Db.Schema_change.sc_routing = `Targets);
  Alcotest.(check int) "R populated" 50 (Db.row_count db "R");
  Alcotest.(check int) "S populated" 7 (Db.row_count db "S")

let test_schema_change_invalid () =
  let db = fresh_split_db 5 in
  (* A split keyed on a column T does not have is a spec error — the
     facade reports it as a result, never an exception. *)
  match
    Db.Schema_change.start db
      (Spec.Split { split_spec with Spec.split_key = [ "nope" ] })
  with
  | Ok _ -> Alcotest.fail "invalid spec must be rejected"
  | Error (`Invalid _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Nbsc_error.to_string e)

let test_schema_change_cancel () =
  let db = fresh_split_db 50 in
  let sc =
    match
      Db.Schema_change.start db
        ~config:{ Transform.default_config with Transform.scan_batch = 8 }
        (Spec.Split split_spec)
    with
    | Ok sc -> sc
    | Error e -> Alcotest.fail (Nbsc_error.to_string e)
  in
  ignore (Db.Schema_change.step sc);
  Db.Schema_change.cancel sc;
  let i = Db.Schema_change.status sc in
  (match i.Db.Schema_change.sc_phase with
   | Transform.Failed _ -> ()
   | p -> Alcotest.failf "cancelled change in phase %a" Transform.pp_phase p);
  Alcotest.(check bool) "targets dropped" true
    (not (Nbsc_storage.Catalog.mem (Db.catalog db) "R"));
  Alcotest.(check int) "source intact" 50 (Db.row_count db "T")

(* {1 Registry contents after engine work} *)

let test_one_way_to_read () =
  let db = fresh_split_db 50 in
  let sc =
    match Db.Schema_change.start db (Spec.Split split_spec) with
    | Ok sc -> sc
    | Error e -> Alcotest.fail (Nbsc_error.to_string e)
  in
  (match Db.Schema_change.run sc with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Nbsc_error.to_string e));
  (* Manager.Stats reads the same counters the registry snapshot
     serves: the two views must agree exactly. *)
  let stats = Nbsc_txn.Manager.Stats.get (Db.manager db) in
  let counter name =
    match Obs.Registry.find (Db.obs db) name with
    | Some (Obs.Counter_v n) -> n
    | _ -> Alcotest.failf "counter %S missing from registry" name
  in
  Alcotest.(check int) "ops" stats.Nbsc_txn.Manager.Stats.ops
    (counter "txn.ops");
  Alcotest.(check int) "commits" stats.Nbsc_txn.Manager.Stats.commits
    (counter "txn.commits");
  Alcotest.(check int) "lock waits" stats.Nbsc_txn.Manager.Stats.lock_waits
    (counter "lock.waits")

let () =
  Alcotest.run "obs"
    [ ( "registry",
        [ Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge and probe" `Quick test_gauge_and_probe;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "snapshot sorted" `Quick test_snapshot_sorted ] );
      ( "sinks",
        [ Alcotest.test_case "no-op without sink" `Quick test_noop_without_sink;
          Alcotest.test_case "ring drops oldest" `Quick
            test_memory_ring_drops_oldest;
          Alcotest.test_case "subscribe" `Quick test_subscribe ] );
      ( "json",
        [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "event fields" `Quick test_event_json_fields ] );
      ( "trace",
        [ Alcotest.test_case "span nesting" `Slow test_span_nesting;
          Alcotest.test_case "quantum points" `Slow test_quantum_points;
          Alcotest.test_case "fixed-seed equality" `Slow
            test_fixed_seed_traces_equal ] );
      ( "schema_change",
        [ Alcotest.test_case "lifecycle" `Quick test_schema_change_lifecycle;
          Alcotest.test_case "invalid spec" `Quick test_schema_change_invalid;
          Alcotest.test_case "cancel" `Quick test_schema_change_cancel;
          Alcotest.test_case "one way to read" `Quick test_one_way_to_read ] )
    ]
