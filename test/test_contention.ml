(* Contention soak: a high-conflict client mix (six clients, four-update
   transactions over a dozen hot keys of a 30-row table) runs against a
   split transformation for each synchronization strategy, fault-free
   and with a transient fault injected at the sync-commit point. Each
   run must neither livelock (the change completes within a bounded
   number of quanta, clients keep committing) nor diverge (the final
   R and S equal the oracle split of the final T, the waits-for graph
   is empty and acyclic at rest).

   The seed is fixed; override with NBSC_CONTENTION_SEED to explore. *)

open Nbsc_value
open Nbsc_lock
open Nbsc_txn
open Nbsc_core
open Nbsc_engine
module H = Helpers

let seed_env =
  match Sys.getenv_opt "NBSC_CONTENTION_SEED" with
  | Some s -> (try int_of_string s with Failure _ -> 42)
  | None -> 42

let split_oracle db =
  let t = Db.snapshot db "T" in
  Nbsc_relalg.Relalg.split
    { Nbsc_relalg.Relalg.r_cols' = [ "a"; "b"; "c" ];
      s_cols' = [ "c"; "d" ];
      r_key = [ "a" ];
      s_key = [ "c" ] }
    t

let check_split_converged db =
  let expected_r, expected_s = split_oracle db in
  H.check_relations_equal "R = pi_R(T)" expected_r (Db.snapshot db "R");
  H.check_relations_equal "S = pi_S(T)" expected_s (Db.snapshot db "S")

type client = {
  mutable txn : Manager.txn_id option;
  mutable ops_in_txn : int;
  mutable commits : int;
  mutable restarts : int;  (* deadlock sentences, wounds, forced aborts *)
  mutable retries : int;   (* Blocked / Latched re-arms *)
}

let strategy_ix = function
  | Transform.Nonblocking_abort -> 0
  | Transform.Nonblocking_commit -> 1
  | Transform.Blocking_commit -> 2

let ops_per_txn = 4

let soak ~strategy ~fault () =
  let db = H.fresh_split_db ~t_rows:(H.seed_t_rows ~n:30) in
  let mgr = Db.manager db in
  let rng =
    Random.State.make
      [| seed_env; strategy_ix strategy; (if fault then 1 else 0) |]
  in
  let config =
    { Transform.scan_batch = 8;
      propagate_batch = 8;
      analysis = Analysis.Remaining_records 4;
      strategy;
      drop_sources = false;
      sync_gate = (fun () -> true);
      pace = None }
  in
  let tf = Transform.split db ~config (H.split_spec ~assume_consistent:true) in
  let clients =
    Array.init 6 (fun _ ->
        { txn = None; ops_in_txn = 0; commits = 0; restarts = 0; retries = 0 })
  in
  let hot_key () = Row.make [ Value.Int (1 + Random.State.int rng 12) ] in
  let pump c =
    match c.txn with
    | None ->
      (* New transactions only while the schema change still routes to
         the sources; afterwards the clients idle and let it drain. *)
      if Transform.routing tf = `Sources then begin
        c.txn <- Some (Manager.begin_txn mgr);
        c.ops_in_txn <- 0
      end
    | Some txn ->
      if not (Manager.is_active mgr txn) then begin
        (* Died under us: wounded by an older transaction or force-
           aborted by non-blocking-abort synchronization. *)
        if Manager.is_victim mgr txn then c.restarts <- c.restarts + 1;
        c.txn <- None
      end
      else if c.ops_in_txn >= ops_per_txn || Transform.routing tf = `Targets
      then begin
        (* Quota reached — or the schema change switched while this
           transaction was open: commit what it has instead of writing
           more, so the drain can end with nothing left to propagate. *)
        (match Manager.commit mgr txn with
         | Ok () -> c.commits <- c.commits + 1
         | Error _ -> ignore (Manager.abort mgr txn));
        c.txn <- None
      end
      else begin
        match
          Manager.update mgr ~txn ~table:"T" ~key:(hot_key ())
            [ (1, Value.Text ("w" ^ string_of_int (Random.State.int rng 1000))) ]
        with
        | Ok () | Error `Not_found -> c.ops_in_txn <- c.ops_in_txn + 1
        | Error (`Blocked _) | Error (`Latched _) ->
          c.retries <- c.retries + 1
        | Error (`Deadlock _) | Error `Abort_only ->
          ignore (Manager.abort mgr txn);
          c.restarts <- c.restarts + 1;
          c.txn <- None
        | Error _ ->
          (* [`Frozen] during blocking-commit quiescence, and anything
             else unexpected: give the transaction up. *)
          ignore (Manager.abort mgr txn);
          c.txn <- None
      end
  in
  Fault.reset ();
  if fault then Fault.arm "sync_commit";
  let rounds = ref 0 and max_rounds = 300_000 in
  let faults_seen = ref 0 in
  let finished = ref false in
  while (not !finished) && !rounds < max_rounds do
    incr rounds;
    (match Transform.step tf with
     | `Done -> finished := true
     | `Failed m -> Alcotest.failf "transformation failed: %s" m
     | `Running -> ()
     | exception Fault.Injected _ ->
       (* The injected sync-commit fault: disarm and keep stepping —
          finalization is idempotent, the next quantum retries it. *)
       incr faults_seen;
       Fault.reset ());
    (* No client activity after completion: the propagator is gone, so
       anything written now could never reach the targets. *)
    if not !finished then Array.iter pump clients
  done;
  Fault.reset ();
  Alcotest.(check bool) "no livelock: change completes within bound" true
    !finished;
  if fault then
    Alcotest.(check bool) "the armed fault fired" true (!faults_seen > 0);
  (* Wind down stragglers by committing: every update they made was
     propagated before the drain ended, so committing preserves the
     state the targets already reflect (aborting would revert T with no
     propagator left to compensate on R and S). *)
  Array.iter
    (fun c ->
       (match c.txn with
        | Some t when Manager.is_active mgr t ->
          (match Manager.commit mgr t with
           | Ok () -> c.commits <- c.commits + 1
           | Error _ -> ignore (Manager.abort mgr t))
        | _ -> ());
       c.txn <- None)
    clients;
  let total_commits = Array.fold_left (fun a c -> a + c.commits) 0 clients in
  Alcotest.(check bool) "clients kept committing under contention" true
    (total_commits > 0);
  let s = Manager.Stats.get mgr in
  Alcotest.(check bool) "the workload actually contended" true
    (s.Manager.Stats.blocked > 0);
  let g = Manager.wait_graph mgr in
  Alcotest.(check bool) "waits-for graph acyclic at rest" true
    (Wait_graph.acyclic g);
  Alcotest.(check (list int)) "nothing left waiting" [] (Wait_graph.waiters g);
  check_split_converged db

let strategies =
  [ ("nonblocking-abort", Transform.Nonblocking_abort);
    ("nonblocking-commit", Transform.Nonblocking_commit);
    ("blocking-commit", Transform.Blocking_commit) ]

let () =
  Alcotest.run "contention"
    (List.map
       (fun (name, strategy) ->
          ( name,
            [ Alcotest.test_case "fault-free soak" `Quick
                (soak ~strategy ~fault:false);
              Alcotest.test_case "sync-commit fault soak" `Quick
                (soak ~strategy ~fault:true) ] ))
       strategies)
