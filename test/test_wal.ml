(* Tests for the write-ahead log: record codec, buffer, cursors. *)

open Nbsc_value
open Nbsc_wal

let sample_row = Row.make [ Value.Int 7; Value.Text "x"; Value.Null ]
let sample_key = Row.make [ Value.Int 7 ]

(* One row exercising every constructor and the encoding's edge cases:
   NULL, extreme ints, non-finite and signed-zero floats (round-trip
   through Int64 bits), both booleans, the empty string, and text
   containing every delimiter the chunk format must be immune to
   (':' length separators, backslashes, and a decoy "<len>:" prefix). *)
let edge_row =
  Row.make
    [ Value.Null; Value.Int max_int; Value.Int min_int;
      Value.Float Float.nan; Value.Float (-0.); Value.Float Float.infinity;
      Value.Bool true; Value.Bool false; Value.Text "";
      Value.Text "a:b\\c|d"; Value.Text "7:seven" ]

(* [encode_into] must agree byte-for-byte with [encode] — the persist
   sink uses the buffer-direct path, replay decodes its output. *)
let encode_via_buffer r =
  let buf = Buffer.create 64 and scratch = Buffer.create 64 in
  Log_record.encode_into ~scratch buf r;
  Buffer.contents buf

let bodies =
  [ Log_record.Begin;
    Log_record.Commit;
    Log_record.Abort_begin;
    Log_record.Abort_done;
    Log_record.Op (Log_record.Insert { table = "t"; row = sample_row });
    Log_record.Op
      (Log_record.Delete { table = "t"; key = sample_key; before = sample_row });
    Log_record.Op
      (Log_record.Update
         { table = "weird|name:with\\chars";
           key = sample_key;
           changes = [ (1, Value.Text "new") ];
           before = [ (1, Value.Text "old") ] });
    Log_record.Clr
      { undo_next = Lsn.of_int 3;
        op = Log_record.Insert { table = "t"; row = sample_row } };
    Log_record.Fuzzy_mark { active = [ (3, Lsn.of_int 1); (9, Lsn.of_int 5) ] };
    Log_record.Fuzzy_mark { active = [] };
    Log_record.Cc_begin { table = "t"; key = sample_key };
    Log_record.Cc_ok { table = "t"; key = sample_key; image = sample_row };
    Log_record.Checkpoint { active = [ (1, Lsn.of_int 1) ] };
    Log_record.Op (Log_record.Insert { table = "t"; row = edge_row });
    Log_record.Op
      (Log_record.Update
         { table = "t";
           key = sample_key;
           changes = [ (0, Value.Text ""); (3, Value.Float Float.nan) ];
           before = [ (0, Value.Null); (3, Value.Float (-0.)) ] }) ]

let test_record_roundtrip () =
  List.iteri
    (fun i body ->
       let r =
         { Log_record.lsn = Lsn.of_int (i + 1);
           txn = i;
           prev_lsn = Lsn.of_int i;
           body }
       in
       let r' = Log_record.decode (Log_record.encode r) in
       Alcotest.(check string)
         (Printf.sprintf "body %d" i)
         (Format.asprintf "%a" Log_record.pp r)
         (Format.asprintf "%a" Log_record.pp r');
       Alcotest.(check string)
         (Printf.sprintf "encode_into agrees %d" i)
         (Log_record.encode r) (encode_via_buffer r))
    bodies

let test_append_get () =
  let log = Log.create () in
  Alcotest.(check int) "empty" 0 (Log.length log);
  Alcotest.(check bool) "head zero" true (Lsn.equal (Log.head log) Lsn.zero);
  let l1 = Log.append log ~txn:1 ~prev_lsn:Lsn.zero Log_record.Begin in
  let l2 = Log.append log ~txn:1 ~prev_lsn:l1 Log_record.Commit in
  Alcotest.(check int) "lsn 1" 1 (Lsn.to_int l1);
  Alcotest.(check int) "lsn 2" 2 (Lsn.to_int l2);
  Alcotest.(check bool) "get 1" true ((Log.get log l1).Log_record.body = Log_record.Begin);
  Alcotest.(check bool) "get 2" true ((Log.get log l2).Log_record.body = Log_record.Commit);
  Alcotest.check_raises "get out of range" Not_found (fun () ->
      ignore (Log.get log (Lsn.of_int 3)))

let test_growth () =
  let log = Log.create () in
  for i = 1 to 5000 do
    ignore (Log.append log ~txn:i ~prev_lsn:Lsn.zero Log_record.Begin)
  done;
  Alcotest.(check int) "5000 records" 5000 (Log.length log);
  Alcotest.(check int) "txn of 4321" 4321 (Log.get log (Lsn.of_int 4321)).Log_record.txn

let test_fold_bounds () =
  let log = Log.create () in
  for i = 1 to 10 do
    ignore (Log.append log ~txn:i ~prev_lsn:Lsn.zero Log_record.Begin)
  done;
  let txns ?from ?upto () =
    Log.fold log ?from ?upto ~init:[] ~f:(fun acc r -> r.Log_record.txn :: acc)
    |> List.rev
  in
  Alcotest.(check (list int)) "all" [1;2;3;4;5;6;7;8;9;10] (txns ());
  Alcotest.(check (list int)) "from 8" [8;9;10] (txns ~from:(Lsn.of_int 8) ());
  Alcotest.(check (list int)) "upto 3" [1;2;3] (txns ~upto:(Lsn.of_int 3) ());
  Alcotest.(check (list int)) "window" [4;5]
    (txns ~from:(Lsn.of_int 4) ~upto:(Lsn.of_int 5) ())

let test_cursor () =
  let log = Log.create () in
  let l1 = Log.append log ~txn:1 ~prev_lsn:Lsn.zero Log_record.Begin in
  ignore (Log.append log ~txn:2 ~prev_lsn:Lsn.zero Log_record.Begin);
  let c = Log.Cursor.make log ~from:l1 in
  Alcotest.(check int) "lag 2" 2 (Log.Cursor.lag c);
  Alcotest.(check bool) "peek is 1" true
    ((Option.get (Log.Cursor.peek c)).Log_record.txn = 1);
  Alcotest.(check bool) "next is 1" true
    ((Option.get (Log.Cursor.next c)).Log_record.txn = 1);
  Alcotest.(check bool) "next is 2" true
    ((Option.get (Log.Cursor.next c)).Log_record.txn = 2);
  Alcotest.(check bool) "exhausted" true (Log.Cursor.next c = None);
  Alcotest.(check int) "lag 0" 0 (Log.Cursor.lag c);
  (* The cursor sees records appended after its creation. *)
  ignore (Log.append log ~txn:3 ~prev_lsn:Lsn.zero Log_record.Begin);
  Alcotest.(check int) "lag 1 again" 1 (Log.Cursor.lag c);
  Alcotest.(check bool) "next is 3" true
    ((Option.get (Log.Cursor.next c)).Log_record.txn = 3)

(* Serialize through the persist-boundary codec and rebuild — exactly
   what a durable round trip does. *)
let codec_roundtrip log =
  Log.to_records log
  |> List.map Log_record.encode
  |> List.map Log_record.decode
  |> Log.of_records

let test_serialization_roundtrip () =
  let log = Log.create () in
  (* Chain each record to the same transaction's previous record —
     of_records validates the back-pointer chains. *)
  let last = Hashtbl.create 8 in
  List.iteri
    (fun i body ->
       let txn = i mod 3 in
       let prev =
         match Hashtbl.find_opt last txn with Some l -> l | None -> Lsn.zero
       in
       Hashtbl.replace last txn (Log.append log ~txn ~prev_lsn:prev body))
    bodies;
  let log' = codec_roundtrip log in
  Alcotest.(check int) "same length" (Log.length log) (Log.length log');
  Log.iter log (fun r ->
      let r' = Log.get log' r.Log_record.lsn in
      Alcotest.(check string) "same record"
        (Format.asprintf "%a" Log_record.pp r)
        (Format.asprintf "%a" Log_record.pp r'))

(* {2 Segmented storage and truncation} *)

let append_n log n =
  for i = 1 to n do
    ignore (Log.append log ~txn:i ~prev_lsn:Lsn.zero Log_record.Begin)
  done

let test_segment_boundaries () =
  (* Tiny segments so a handful of records crosses several edges. *)
  let log = Log.create ~segment_size:4 () in
  append_n log 10;
  Alcotest.(check int) "segments" 3 (Log.segments log);
  Alcotest.(check int) "length" 10 (Log.length log);
  (* get on both sides of the 4|5 and 8|9 edges *)
  List.iter
    (fun i ->
       Alcotest.(check int)
         (Printf.sprintf "get %d" i)
         i
         (Log.get log (Lsn.of_int i)).Log_record.txn)
    [ 1; 4; 5; 8; 9; 10 ];
  let all =
    Log.fold log ?from:None ?upto:None ~init:[] ~f:(fun acc r -> r.Log_record.txn :: acc) |> List.rev
  in
  Alcotest.(check (list int)) "fold crosses edges"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] all;
  let window =
    Log.fold log ~from:(Lsn.of_int 3) ~upto:(Lsn.of_int 9) ~init:[]
      ~f:(fun acc r -> r.Log_record.txn :: acc)
    |> List.rev
  in
  Alcotest.(check (list int)) "windowed fold" [ 3; 4; 5; 6; 7; 8; 9 ] window;
  let seen = ref [] in
  Log.iter log (fun r -> seen := r.Log_record.txn :: !seen);
  Alcotest.(check int) "iter sees all" 10 (List.length !seen);
  let c = Log.Cursor.make log ~from:(Lsn.of_int 3) in
  let walked = ref [] in
  let rec go () =
    match Log.Cursor.next c with
    | Some r ->
      walked := r.Log_record.txn :: !walked;
      go ()
    | None -> ()
  in
  go ();
  Alcotest.(check (list int)) "cursor crosses edges"
    [ 3; 4; 5; 6; 7; 8; 9; 10 ] (List.rev !walked)

let test_truncate_mid_segment () =
  let log = Log.create ~segment_size:4 () in
  append_n log 10;
  (* Keep >= 6: record 6 sits mid-segment (segment 5..8), so that
     segment survives while 1..4 is freed whole. *)
  Log.truncate_to log (Lsn.of_int 6);
  Alcotest.(check int) "base" 5 (Lsn.to_int (Log.base log));
  Alcotest.(check int) "length" 5 (Log.length log);
  Alcotest.(check int) "segments after cut" 2 (Log.segments log);
  Alcotest.(check int) "truncated_total" 5 (Log.truncated_total log);
  Alcotest.(check int) "kept 6" 6 (Log.get log (Lsn.of_int 6)).Log_record.txn;
  Alcotest.(check int) "head unchanged" 10 (Lsn.to_int (Log.head log));
  (* Default fold starts at the first live record now. *)
  let all =
    Log.fold log ?from:None ?upto:None ~init:[] ~f:(fun acc r -> r.Log_record.txn :: acc) |> List.rev
  in
  Alcotest.(check (list int)) "fold from base" [ 6; 7; 8; 9; 10 ] all;
  (* Truncating backwards is a clamp, not an error. *)
  Log.truncate_to log (Lsn.of_int 2);
  Alcotest.(check int) "no un-truncate" 5 (Lsn.to_int (Log.base log));
  (* Truncating past the head empties the log but keeps the head. *)
  Log.truncate_to log (Lsn.of_int 100);
  Alcotest.(check int) "emptied" 0 (Log.length log);
  Alcotest.(check int) "head survives" 10 (Lsn.to_int (Log.head log));
  Alcotest.(check int) "all truncated" 10 (Log.truncated_total log);
  let l11 = Log.append log ~txn:11 ~prev_lsn:Lsn.zero Log_record.Begin in
  Alcotest.(check int) "append continues" 11 (Lsn.to_int l11)

let test_truncated_errors () =
  let log = Log.create ~segment_size:4 () in
  append_n log 10;
  let stale = Log.Cursor.make log ~from:(Lsn.of_int 2) in
  Log.truncate_to log (Lsn.of_int 6);
  Alcotest.check_raises "get below base" (Log.Truncated (Lsn.of_int 5))
    (fun () -> ignore (Log.get log (Lsn.of_int 5)));
  Alcotest.check_raises "cursor below base" (Log.Truncated (Lsn.of_int 5))
    (fun () -> ignore (Log.Cursor.make log ~from:(Lsn.of_int 5)));
  Alcotest.(check bool) "cursor at base+1 fine" true
    (Log.Cursor.make log ~from:(Lsn.of_int 6) |> Log.Cursor.peek
     |> Option.is_some);
  (* An unpinned cursor overtaken by truncation must fail loudly, not
     silently resume from the wrong record. *)
  Alcotest.check_raises "stale cursor next" (Log.Truncated (Lsn.of_int 2))
    (fun () -> ignore (Log.Cursor.next stale));
  Alcotest.check_raises "fold below base" (Log.Truncated (Lsn.of_int 3))
    (fun () ->
       Log.fold log ~from:(Lsn.of_int 3) ?upto:None ~init:()
         ~f:(fun () _ -> ()));
  Alcotest.check_raises "get at head+1 still Not_found" Not_found (fun () ->
      ignore (Log.get log (Lsn.of_int 11)))

let test_roundtrip_after_truncate () =
  let log = Log.create ~segment_size:4 () in
  append_n log 10;
  Log.truncate_to log (Lsn.of_int 6);
  let log' = codec_roundtrip log in
  Alcotest.(check int) "base carried" 5 (Lsn.to_int (Log.base log'));
  Alcotest.(check int) "length carried" 5 (Log.length log');
  Alcotest.(check int) "head carried" 10 (Lsn.to_int (Log.head log'));
  Log.iter log (fun r ->
      let r' = Log.get log' r.Log_record.lsn in
      Alcotest.(check string) "same record"
        (Format.asprintf "%a" Log_record.pp r)
        (Format.asprintf "%a" Log_record.pp r'));
  Alcotest.check_raises "prefix stays unavailable"
    (Log.Truncated (Lsn.of_int 5)) (fun () ->
      ignore (Log.get log' (Lsn.of_int 5)))

let test_high_water () =
  let log = Log.create ~segment_size:4 () in
  append_n log 10;
  Alcotest.(check int) "high water" 10 (Log.live_high_water log);
  Log.truncate_to log (Lsn.of_int 9);
  (* Truncation frees records but the high-water mark remembers. *)
  Alcotest.(check int) "live now" 2 (Log.length log);
  Alcotest.(check int) "high water sticks" 10 (Log.live_high_water log);
  for i = 11 to 14 do
    ignore (Log.append log ~txn:i ~prev_lsn:Lsn.zero Log_record.Begin)
  done;
  Alcotest.(check int) "live grew" 6 (Log.length log);
  Alcotest.(check int) "high water still 10" 10 (Log.live_high_water log)

let test_lsn_ops () =
  let open Lsn in
  Alcotest.(check bool) "zero < first" true (zero < first);
  Alcotest.(check bool) "next" true (equal (next first) (of_int 2));
  Alcotest.(check bool) "max" true (equal (max (of_int 3) (of_int 7)) (of_int 7));
  Alcotest.(check bool) "ge" true (of_int 5 >= of_int 5)

(* Property: any sequence of bodies written to a log survives a
   serialize/deserialize trip. *)
let arb_body =
  let open QCheck.Gen in
  let value =
    oneof
      [ return Value.Null; map (fun i -> Value.Int i) int;
        map (fun f -> Value.Float f) float;
        map (fun b -> Value.Bool b) bool;
        map (fun s -> Value.Text s) small_string;
        (* Edge cases the uniform generators rarely hit: extremes,
           non-finite floats, and delimiter-shaped text. *)
        oneofl
          [ Value.Int max_int; Value.Int min_int;
            Value.Float Float.nan; Value.Float Float.infinity;
            Value.Float Float.neg_infinity; Value.Float (-0.);
            Value.Text ""; Value.Text ":"; Value.Text "\\";
            Value.Text "3:abc" ] ]
  in
  let row = map Row.make (list_size (int_range 1 4) value) in
  let body =
    oneof
      [ return Log_record.Begin;
        return Log_record.Commit;
        return Log_record.Abort_begin;
        return Log_record.Abort_done;
        map
          (fun row -> Log_record.Op (Log_record.Insert { table = "q"; row }))
          row;
        map2
          (fun key before ->
             Log_record.Op (Log_record.Delete { table = "q"; key; before }))
          row row;
        map2
          (fun key v ->
             Log_record.Op
               (Log_record.Update
                  { table = "q"; key; changes = [ (0, v) ]; before = [ (0, Value.Null) ] }))
          row value ]
  in
  QCheck.make (QCheck.Gen.list_size (int_range 0 30) body)

let prop_log_serialization =
  QCheck.Test.make ~name:"log serialization roundtrips" ~count:100 arb_body
    (fun bodies ->
       let log = Log.create () in
       List.iteri
         (fun i body -> ignore (Log.append log ~txn:i ~prev_lsn:Lsn.zero body))
         bodies;
       let log' = codec_roundtrip log in
       Log.length log = Log.length log'
       && Log.fold log ?from:None ?upto:None ~init:true ~f:(fun acc r ->
           acc
           && Log_record.encode r = encode_via_buffer r
           && Format.asprintf "%a" Log_record.pp r
              = Format.asprintf "%a" Log_record.pp (Log.get log' r.Log_record.lsn)))

let () =
  Alcotest.run "wal"
    [ ( "records",
        [ Alcotest.test_case "codec roundtrip" `Quick test_record_roundtrip ] );
      ( "buffer",
        [ Alcotest.test_case "append/get" `Quick test_append_get;
          Alcotest.test_case "growth" `Quick test_growth;
          Alcotest.test_case "fold bounds" `Quick test_fold_bounds;
          Alcotest.test_case "cursor" `Quick test_cursor;
          Alcotest.test_case "serialization" `Quick test_serialization_roundtrip;
          Alcotest.test_case "lsn ops" `Quick test_lsn_ops ] );
      ( "segments",
        [ Alcotest.test_case "boundaries" `Quick test_segment_boundaries;
          Alcotest.test_case "truncate mid-segment" `Quick
            test_truncate_mid_segment;
          Alcotest.test_case "truncated errors" `Quick test_truncated_errors;
          Alcotest.test_case "roundtrip after truncate" `Quick
            test_roundtrip_after_truncate;
          Alcotest.test_case "high water" `Quick test_high_water ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_log_serialization ] ) ]
