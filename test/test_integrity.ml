(* Storage integrity and I/O-fault tolerance: checksummed format
   verification (bit flips, truncation, version headers), the
   disk-error model (transient-EIO retry, ENOSPC degraded mode), the
   offline scrub, and the fuzz property that corruption detection is
   total — damage is either repaired to an oracle-justified committed
   state or reported as [`Corrupt], never silently absorbed. *)

open Nbsc_value
open Nbsc_storage
open Nbsc_txn
open Nbsc_engine
open Nbsc_core
module H = Helpers
module Obs = Nbsc_obs.Obs

let ok name = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" name Manager.pp_error e

let ok_p name = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" name Persist.pp_error e

let base_seed =
  match Sys.getenv_opt "NBSC_CRASH_SEED" with
  | Some s -> (try int_of_string s with Failure _ -> 42)
  | None -> 42

let counter = ref 0

(* No unix dependency: uniqueness from a counter + random suffix. *)
let fresh_dir () =
  incr counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "nbsc_integrity_%d_%d" !counter (Random.int 1_000_000))

let wipe dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let setup_orders p =
  let db = Persist.db p in
  ignore (Db.create_table db ~name:"t" H.r_schema);
  ok_p "checkpoint" (Persist.checkpoint p)

let insert p a b c =
  let db = Persist.db p in
  let txn = Manager.begin_txn (Db.manager db) in
  ok "insert" (Manager.insert (Db.manager db) ~txn ~table:"t" (H.ri a b c));
  ok "commit" (Manager.commit (Db.manager db) txn)

let rows p =
  Table.fold (Db.table (Persist.db p) "t") ~init:[] ~f:(fun acc _ r ->
      r.Record.row :: acc)
  |> List.sort Row.compare

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let counter_value c = Obs.Counter.value c

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  go 0

(* A small valid store: table [t] with [n] committed single-row
   transactions after the DDL checkpoint. *)
let build_store ?(n = 5) dir =
  let p = ok_p "create" (Persist.create_dir ~dir) in
  setup_orders p;
  for i = 1 to n do
    insert p i "v" i
  done;
  p

(* {1 Bit flips: silent at write time, detected at read time} *)

let expect_corrupt name = function
  | Error (`Corrupt c) -> c
  | Ok _ -> Alcotest.failf "%s: expected Corrupt, opened fine" name
  | Error e -> Alcotest.failf "%s: expected Corrupt, got %a" name
                 Persist.pp_error e

let test_bit_flip_wal () =
  Fault.reset ();
  let dir = fresh_dir () in
  let p = build_store ~n:2 dir in
  let before = counter_value (Disk_format.crc_failures ()) in
  (* The flip damages the framed bytes after the CRC was computed:
     nothing raises, the write "succeeds" — silent media rot. *)
  Fault.arm ~mode:Fault.Bit_flip "wal_append";
  insert p 3 "flipped" 3;
  Fault.reset ();
  Persist.close p;
  let c = expect_corrupt "bit-flipped wal" (Persist.open_dir ~dir) in
  Alcotest.(check bool) "context names the wal" true
    (match c.Nbsc_error.c_path with
     | Some path -> Filename.basename path = "wal.nbsc"
     | None -> false);
  Alcotest.(check bool) "context carries a line" true
    (c.Nbsc_error.c_line <> None);
  Alcotest.(check bool) "crc failure counted" true
    (counter_value (Disk_format.crc_failures ()) > before);
  (* The scrub sees the same damage without opening the store. *)
  let r = match Db.Scrub.verify_dir ~dir with
    | Ok r -> r
    | Error e -> Alcotest.failf "scrub: %s" (Nbsc_error.to_string e)
  in
  Alcotest.(check bool) "scrub flags it" false (Db.Scrub.ok r);
  wipe dir

let test_bit_flip_snapshot () =
  Fault.reset ();
  let dir = fresh_dir () in
  let p = build_store ~n:3 dir in
  Fault.arm ~mode:Fault.Bit_flip "snapshot_write";
  ok_p "checkpoint with flip" (Persist.checkpoint p);
  Fault.reset ();
  Persist.close p;
  let c = expect_corrupt "bit-flipped snapshot" (Persist.open_dir ~dir) in
  Alcotest.(check bool) "context names the snapshot" true
    (match c.Nbsc_error.c_path with
     | Some path -> Filename.basename path = "snapshot.nbsc"
     | None -> false);
  (* Rendered context is self-describing. *)
  let s = Nbsc_error.corruption_to_string c in
  Alcotest.(check bool) "message carries the file" true
    (contains_sub s "snapshot.nbsc");
  wipe dir

(* {1 Version header} *)

let test_header_rejection () =
  let dir = fresh_dir () in
  let p = build_store ~n:1 dir in
  Persist.close p;
  let spath = Disk_format.snapshot_path dir in
  let original = read_file spath in
  (* Headerless (pre-v2) file: strip line 1. *)
  (match String.index_opt original '\n' with
   | Some i ->
     write_file spath
       (String.sub original (i + 1) (String.length original - i - 1))
   | None -> Alcotest.fail "snapshot has no lines");
  let c = expect_corrupt "pre-v2 dir" (Persist.open_dir ~dir) in
  Alcotest.(check bool) "pre-v2 message is specific" true
    (contains_sub c.Nbsc_error.c_reason "pre-v");
  (* Some other version's magic: supported-format message instead. *)
  (match String.index_opt original '\n' with
   | Some i ->
     write_file spath
       ("nbsc:snapshot:v99"
        ^ String.sub original i (String.length original - i))
   | None -> ());
  let c = expect_corrupt "future version" (Persist.open_dir ~dir) in
  Alcotest.(check bool) "version message is specific" true
    (contains_sub c.Nbsc_error.c_reason "not supported");
  wipe dir

(* {1 Snapshot trailer: truncation at a line boundary} *)

let test_trailer_detects_line_truncation () =
  let dir = fresh_dir () in
  let p = build_store ~n:4 dir in
  ok_p "checkpoint" (Persist.checkpoint p);
  Persist.close p;
  let spath = Disk_format.snapshot_path dir in
  let original = read_file spath in
  let lines = String.split_on_char '\n' original in
  (* Drop the second-to-last line (the last is "" from the trailing
     newline; before it sits the trailer): a payload line vanishes but
     every surviving line still checksums. *)
  let n = List.length lines in
  let cut = List.filteri (fun i _ -> i <> n - 3) lines in
  write_file spath (String.concat "\n" cut);
  let c = expect_corrupt "spliced snapshot" (Persist.open_dir ~dir) in
  Alcotest.(check bool) "trailer count mismatch reported" true
    (contains_sub c.Nbsc_error.c_reason "trailer");
  wipe dir

(* {1 Transient EIO: bounded retry} *)

let test_transient_eio_retried () =
  Fault.reset ();
  let dir = fresh_dir () in
  let p = build_store ~n:1 dir in
  let before = counter_value (Disk_format.io_retries ()) in
  Fault.arm
    ~mode:(Fault.Io_error { errno = Fault.EIO; transient = true })
    "wal_append";
  (* One blip: the arming fires once, the retry succeeds, the commit
     never sees it. *)
  insert p 2 "retried" 2;
  Fault.reset ();
  Alcotest.(check bool) "a retry was counted" true
    (counter_value (Disk_format.io_retries ()) > before);
  Persist.close p;
  let p2 = ok_p "reopen" (Persist.open_dir ~dir) in
  Alcotest.(check int) "row durable despite the blip" 2
    (List.length (rows p2));
  Persist.close p2;
  wipe dir

(* {1 ENOSPC: degraded mode, reads stay up, change resumes} *)

let hpred = Pred.Cmp ("c", Pred.Gt, Value.Int 6)

let hspec =
  { Spec.h_source = "T";
    h_true_table = "archive";
    h_false_table = "live";
    h_pred = hpred }

let cfg =
  { Transform.default_config with
    Transform.scan_batch = 4;
    propagate_batch = 3;
    drop_sources = false }

let test_enospc_degrades_and_recovers () =
  Fault.reset ();
  let dir = fresh_dir () in
  let p = ok_p "create" (Persist.create_dir ~dir) in
  let db = Persist.db p in
  let mgr = Db.manager db in
  ignore (Db.create_table db ~name:"T" H.t_flat_schema);
  (match Db.load db ~table:"T" (H.seed_t_rows ~n:40) with
   | Ok () -> ()
   | Error e -> Alcotest.failf "load T: %a" Manager.pp_error e);
  ok_p "setup checkpoint" (Persist.checkpoint p);
  let tf = Transform.hsplit db ~config:cfg hspec in
  (* A few quanta in, the disk fills. *)
  for _ = 1 to 3 do
    ignore (Db.step_jobs db)
  done;
  let stalls_before = counter_value (Disk_format.disk_full_stalls ()) in
  Fault.arm
    ~mode:(Fault.Io_error { errno = Fault.ENOSPC; transient = false })
    "wal_append";
  (* The write that hits the full disk is acked into the buffer (group
     commit semantics) and flips the manager into degraded mode... *)
  let txn = Manager.begin_txn mgr in
  ignore (Manager.insert mgr ~txn ~table:"T" (H.ti 900_001 "w" 9 "z"));
  ignore (Manager.commit mgr txn);
  ignore (Db.step_jobs db);
  Alcotest.(check bool) "manager degraded" true (Manager.disk_full mgr);
  Alcotest.(check bool) "stall counted" true
    (counter_value (Disk_format.disk_full_stalls ()) > stalls_before);
  (* ...after which writers get the typed refusal... *)
  let txn = Manager.begin_txn mgr in
  (match Manager.insert mgr ~txn ~table:"T" (H.ti 900_002 "w" 9 "z") with
   | Error `Disk_full -> ()
   | Ok () -> Alcotest.fail "insert should be refused while disk is full"
   | Error e -> Alcotest.failf "insert: %a" Manager.pp_error e);
  ok "abort proceeds while degraded" (Manager.abort mgr txn);
  (* ...checkpoints refuse rather than publish an uncovered snapshot... *)
  (match Persist.checkpoint p with
   | Error (`Disk_full _) -> ()
   | Ok () -> Alcotest.fail "checkpoint should refuse while disk is full"
   | Error e -> Alcotest.failf "checkpoint: %a" Persist.pp_error e);
  (* ...reads stay serviceable... *)
  Alcotest.(check bool) "reads stay up" true (Db.row_count db "T" > 0);
  (* ...and the schema change pauses instead of failing: its progress
     freezes while the quanta probe for space. *)
  let frozen = (Transform.progress tf).Transform.scanned in
  for _ = 1 to 5 do
    ignore (Db.step_jobs db)
  done;
  Alcotest.(check int) "transformation paused" frozen
    (Transform.progress tf).Transform.scanned;
  Alcotest.(check bool) "still registered" true (Db.jobs db <> []);
  (* Space returns: the next probe flushes, degraded mode clears
     automatically, and the change runs to completion. *)
  Fault.disarm "wal_append";
  (match Db.run_jobs db with
   | Ok () -> ()
   | Error m -> Alcotest.failf "run_jobs after disarm: %s" m);
  Alcotest.(check bool) "degraded mode cleared" false (Manager.disk_full mgr);
  let t = Db.snapshot db "T" in
  let pc = Pred.compile H.t_flat_schema hpred in
  H.check_relations_equal "archive" (Nbsc_relalg.Relalg.select t pc)
    (Db.snapshot db "archive");
  H.check_relations_equal "live"
    (Nbsc_relalg.Relalg.select t (fun row -> not (pc row)))
    (Db.snapshot db "live");
  ok_p "checkpoint after recovery" (Persist.checkpoint p);
  Persist.close p;
  (* The acked-while-degraded commit was buffered, then flushed: it
     must be durable now. *)
  let p2 = ok_p "reopen" (Persist.open_dir ~dir) in
  Alcotest.(check int) "buffered commit durable" 41
    (Db.row_count (Persist.db p2) "T");
  Persist.close p2;
  wipe dir

(* {1 Scrub} *)

let test_scrub_clean_then_corrupt () =
  let dir = fresh_dir () in
  let p = build_store ~n:3 dir in
  ok_p "checkpoint" (Persist.checkpoint p);
  insert p 9 "after" 9;
  Persist.close p;
  let r = match Db.Scrub.verify_dir ~dir with
    | Ok r -> r
    | Error e -> Alcotest.failf "scrub: %s" (Nbsc_error.to_string e)
  in
  Alcotest.(check bool) "fresh store is clean" true (Db.Scrub.ok r);
  Alcotest.(check int) "no errors" 0 (List.length (Db.Scrub.errors r));
  (* Flip one payload byte in the WAL: scrub must localise it. *)
  let wpath = Disk_format.wal_path dir in
  let s = Bytes.of_string (read_file wpath) in
  let pos = Bytes.length s - 5 in
  Bytes.set s pos (Char.chr (Char.code (Bytes.get s pos) lxor 0x01));
  write_file wpath (Bytes.to_string s);
  let r = match Db.Scrub.verify_dir ~dir with
    | Ok r -> r
    | Error e -> Alcotest.failf "scrub: %s" (Nbsc_error.to_string e)
  in
  Alcotest.(check bool) "damage found" false (Db.Scrub.ok r);
  let errs = Db.Scrub.errors r in
  Alcotest.(check bool) "error localised to the wal" true
    (List.exists
       (fun c ->
          match c.Nbsc_error.c_path with
          | Some path -> Filename.basename path = "wal.nbsc"
          | None -> false)
       errs);
  (* Missing directory is a directory-level error, not a report. *)
  (match Db.Scrub.verify_dir ~dir:(dir ^ "_nonexistent") with
   | Error (`Io _) -> ()
   | Ok _ -> Alcotest.fail "scrub of a missing dir should error"
   | Error e -> Alcotest.failf "scrub: %s" (Nbsc_error.to_string e));
  wipe dir

let test_scrub_tolerates_torn_tail () =
  let dir = fresh_dir () in
  let p = build_store ~n:2 dir in
  Persist.close p;
  let wpath = Disk_format.wal_path dir in
  let oc = open_out_gen [ Open_append ] 0o644 wpath in
  output_string oc "abcd1234:half-a-reco";
  close_out oc;
  let r = match Db.Scrub.verify_dir ~dir with
    | Ok r -> r
    | Error e -> Alcotest.failf "scrub: %s" (Nbsc_error.to_string e)
  in
  (* The torn tail is the legitimate crash signature: noted, clean. *)
  Alcotest.(check bool) "torn tail tolerated" true (Db.Scrub.ok r);
  Alcotest.(check bool) "and noted" true
    (List.exists
       (fun f ->
          Filename.basename f.Db.Scrub.f_path = "wal.nbsc"
          && f.Db.Scrub.f_torn_tail)
       r.Db.Scrub.files);
  wipe dir

(* {1 The fuzz property: corruption detection is total}

   Build a valid store recording the state after every commit, then
   damage one of the files — flip one random byte, or truncate at a
   random offset. Reopening must either report [`Corrupt] or recover
   to one of the recorded committed states (truncating the WAL loses a
   suffix of commits, which is exactly a crash); anything else is
   silent divergence. *)

let prop_damage_never_silent =
  QCheck.Test.make ~name:"one-byte flip / truncation never silent" ~count:60
    QCheck.(quad (int_range 1 8) bool bool (int_bound 10_000))
    (fun (nrows, damage_wal, flip, raw_pos) ->
       let dir = fresh_dir () in
       let p = match Persist.create_dir ~dir with
         | Ok p -> p
         | Error _ -> QCheck.Test.fail_report "create_dir failed"
       in
       setup_orders p;
       (* Committed states: rows after 0, 1, .. nrows commits. *)
       let states = ref [ [] ] in
       for i = 1 to nrows do
         insert p i "v" i;
         states := rows p :: !states
       done;
       (* Also checkpoint sometimes, so snapshot damage matters. *)
       if nrows mod 2 = 0 then ignore (Persist.checkpoint p);
       for i = nrows + 1 to nrows + 2 do
         insert p i "v" i;
         states := rows p :: !states
       done;
       Persist.close p;
       let path =
         if damage_wal then Disk_format.wal_path dir
         else Disk_format.snapshot_path dir
       in
       let original = read_file path in
       let len = String.length original in
       if len = 0 then QCheck.Test.fail_report "empty file";
       let pos = raw_pos mod len in
       (if flip then begin
          let b = Bytes.of_string original in
          Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x20));
          write_file path (Bytes.to_string b)
        end
        else write_file path (String.sub original 0 pos));
       let outcome = Persist.open_dir ~dir in
       let result =
         match outcome with
         | Error (`Corrupt _) -> true
         | Error _ -> false
         | Ok p2 ->
           let got = rows p2 in
           Persist.close p2;
           List.exists
             (fun want ->
                List.length want = List.length got
                && List.for_all2 Row.equal want got)
             !states
       in
       wipe dir;
       if not result then
         QCheck.Test.fail_reportf
           "silent divergence: %s %s at %d (nrows=%d)"
           (if damage_wal then "wal" else "snapshot")
           (if flip then "flip" else "truncate")
           pos nrows;
       true)

let () =
  Random.init base_seed;
  Alcotest.run "integrity"
    [ ( "checksums",
        [ Alcotest.test_case "bit flip in wal detected" `Quick
            test_bit_flip_wal;
          Alcotest.test_case "bit flip in snapshot detected" `Quick
            test_bit_flip_snapshot;
          Alcotest.test_case "header versions rejected" `Quick
            test_header_rejection;
          Alcotest.test_case "trailer detects line truncation" `Quick
            test_trailer_detects_line_truncation ] );
      ( "disk errors",
        [ Alcotest.test_case "transient EIO retried" `Quick
            test_transient_eio_retried;
          Alcotest.test_case "ENOSPC degrades and recovers" `Quick
            test_enospc_degrades_and_recovers ] );
      ( "scrub",
        [ Alcotest.test_case "clean then corrupt" `Quick
            test_scrub_clean_then_corrupt;
          Alcotest.test_case "torn tail tolerated" `Quick
            test_scrub_tolerates_torn_tail ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_damage_never_silent ] ) ]
