(* The paper's closing remark that repeated splits build many-to-many
   normalizations. (The crash-and-restart scenario that used to live
   here moved to test_crash_matrix.ml, where it runs through the
   durable Persist path.) *)

open Nbsc_value
open Nbsc_storage
open Nbsc_txn
open Nbsc_core
module H = Helpers

let ok name = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" name Manager.pp_error e

let cfg =
  { Transform.default_config with
    Transform.scan_batch = 7;
    propagate_batch = 5;
    drop_sources = false }

(* The paper's conclusion: "the split framework is able to split one
   source table into a many-to-many relationship by repeating splits."
   enrollment(student, course, student_name, course_title) is
   normalized in two online steps:
     split on student -> enrollment'(student, course) + student(...)
     split on course  -> enrollment''(student, course) + course(...)   *)
let test_repeated_splits_normalize_m2m () =
  let db = Db.create () in
  let col = Schema.column in
  ignore
    (Db.create_table db ~name:"enrollment"
       (Schema.make
          ~key:[ "student"; "course" ]
          [ col ~nullable:false "student" Value.TInt;
            col ~nullable:false "course" Value.TInt;
            col "student_name" Value.TText;
            col "course_title" Value.TText ]));
  let rows =
    List.concat_map
      (fun s ->
         List.filter_map
           (fun c ->
              if (s + c) mod 3 = 0 then None
              else
                Some
                  (Row.make
                     [ Value.Int s; Value.Int c;
                       Value.Text (Printf.sprintf "student-%d" s);
                       Value.Text (Printf.sprintf "course-%d" c) ]))
           [ 0; 1; 2; 3; 4 ])
      (List.init 20 Fun.id)
  in
  ok "load" (Db.load db ~table:"enrollment" rows);
  let d_rng = Random.State.make [| 3 |] in
  let mutate () =
    (* FD-preserving rename: every enrollment row of the student gets
       the same new name, in one transaction. *)
    let mgr = Db.manager db in
    if Catalog.mem (Db.catalog db) "enrollment" then begin
      let s = Random.State.int d_rng 20 in
      let name = Value.Text (Printf.sprintf "student-%d-r%d" s (Random.State.int d_rng 100)) in
      let txn = Manager.begin_txn mgr in
      let all_ok =
        List.for_all
          (fun c ->
             match
               Manager.update mgr ~txn ~table:"enrollment"
                 ~key:(Row.make [ Value.Int s; Value.Int c ])
                 [ (2, name) ]
             with
             | Ok () | Error `Not_found -> true
             | Error _ -> false)
          [ 0; 1; 2; 3; 4 ]
      in
      if all_ok then ignore (Manager.commit mgr txn)
      else ignore (Manager.abort mgr txn)
    end
  in
  (* Step 1: extract the student dimension. *)
  let tf1 =
    Transform.split db ~config:cfg
      { Spec.t_table' = "enrollment";
        r_table' = "enrollment1";
        s_table' = "student";
        r_cols = [ "student"; "course"; "course_title" ];
        s_cols = [ "student"; "student_name" ];
        split_key = [ "student" ];
        assume_consistent = true }
  in
  let budget = ref 40 in
  (match
     Transform.run tf1 ~between:(fun () ->
         if !budget > 0 then begin
           decr budget;
           mutate ()
         end)
   with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  (* Step 2: extract the course dimension from the intermediate. *)
  let tf2 =
    Transform.split db ~config:cfg
      { Spec.t_table' = "enrollment1";
        r_table' = "enrollment2";
        s_table' = "course";
        r_cols = [ "student"; "course" ];
        s_cols = [ "course"; "course_title" ];
        split_key = [ "course" ];
        assume_consistent = true }
  in
  (match Transform.run tf2 with Ok () -> () | Error m -> Alcotest.fail m);
  (* The end state is the classic normalized trio. *)
  let base = Db.snapshot db "enrollment" in
  let want_link =
    Nbsc_relalg.Relalg.project base [ "student"; "course" ]
      ~key:[ "student"; "course" ]
  in
  let want_students =
    Nbsc_relalg.Relalg.project base [ "student"; "student_name" ]
      ~key:[ "student" ]
  in
  let want_courses =
    Nbsc_relalg.Relalg.project base [ "course"; "course_title" ]
      ~key:[ "course" ]
  in
  H.check_relations_equal "link table" want_link (Db.snapshot db "enrollment2");
  H.check_relations_equal "student table" want_students
    (Db.snapshot db "student");
  H.check_relations_equal "course table" want_courses (Db.snapshot db "course");
  (* And re-joining the three reproduces the original (round trip via
     two FOJ transformations). *)
  let tf3 =
    Transform.foj db ~config:cfg
      { Spec.r_table = "enrollment2";
        s_table = "student";
        t_table = "with_names";
        join_r = [ "student" ];
        join_s = [ "student" ];
        t_join = [ "student" ];
        r_carry = [ "course" ];
        s_carry = [ "student_name" ];
        many_to_many = true }
  in
  (match Transform.run tf3 with Ok () -> () | Error m -> Alcotest.fail m);
  let tf4 =
    Transform.foj db ~config:cfg
      { Spec.r_table = "with_names";
        s_table = "course";
        t_table = "denormalized";
        join_r = [ "course" ];
        join_s = [ "course" ];
        t_join = [ "course" ];
        r_carry = [ "student"; "student_name" ];
        s_carry = [ "course_title" ];
        many_to_many = true }
  in
  (match Transform.run tf4 with Ok () -> () | Error m -> Alcotest.fail m);
  (* Compare as sets of (student, course, name, title). *)
  let normalize rel cols key = Nbsc_relalg.Relalg.project rel cols ~key in
  let want =
    normalize base
      [ "student"; "course"; "student_name"; "course_title" ]
      [ "student"; "course" ]
  in
  let got =
    normalize
      (Db.snapshot db "denormalized")
      [ "student"; "course"; "student_name"; "course_title" ]
      [ "student"; "course" ]
  in
  H.check_relations_equal "round trip" want got

let () =
  Alcotest.run "restart"
    [ ( "composition",
        [ Alcotest.test_case "repeated splits build a normalized m2m" `Quick
            test_repeated_splits_normalize_m2m ] ) ]
