(* Tests for ordered (range) indexes: the index itself, table
   integration, snapshot persistence, and the SQL range path. *)

open Nbsc_value
open Nbsc_wal
open Nbsc_storage
module H = Helpers

let schema = H.r_schema
let row a b c = Row.make [ Value.Int a; Value.Text b; Value.Int c ]
let k i = Row.make [ Value.Int i ]

let mk_table n =
  let t = Table.create ~name:"t" schema in
  for i = 1 to n do
    ignore (Table.insert t ~lsn:(Lsn.of_int i) (row i "x" (i mod 10)))
  done;
  Table.add_ordered_index t ~name:"by_c" ~columns:[ "c" ];
  t

let test_range_basics () =
  let t = mk_table 30 in
  let between lo hi = Table.ordered_range t ~index:"by_c" ~lo ~hi () in
  (* c values are i mod 10 over 1..30: three keys per c value. *)
  Alcotest.(check int) "closed range [3,5]" 9
    (List.length (between (k 3, true) (k 5, true)));
  Alcotest.(check int) "open range (3,5)" 3
    (List.length (between (k 3, false) (k 5, false)));
  Alcotest.(check int) "unbounded low" 12
    (List.length (Table.ordered_range t ~index:"by_c" ~hi:(k 3, true) ()));
  Alcotest.(check int) "unbounded high" 9
    (List.length (Table.ordered_range t ~index:"by_c" ~lo:(k 7, true) ()));
  Alcotest.(check int) "full" 30
    (List.length (Table.ordered_range t ~index:"by_c" ()));
  Alcotest.(check int) "empty range" 0
    (List.length (between (k 100, true) (k 200, true)))

let test_maintained_on_mutation () =
  let t = mk_table 10 in
  ignore (Table.update t ~lsn:(Lsn.of_int 99) ~key:(k 1) [ (2, Value.Int 42) ]);
  ignore (Table.delete t ~lsn:(Lsn.of_int 100) (k 2));
  let hits = Table.ordered_range t ~index:"by_c" ~lo:(k 42, true) ~hi:(k 42, true) () in
  Alcotest.(check int) "moved to 42" 1 (List.length hits);
  let at2 = Table.ordered_range t ~index:"by_c" ~lo:(k 2, true) ~hi:(k 2, true) () in
  Alcotest.(check int) "deleted gone" 0 (List.length at2)

let test_snapshot_persists_ordered () =
  let db = Nbsc_engine.Db.create () in
  let t = Nbsc_engine.Db.create_table db ~name:"t" schema in
  ignore (Nbsc_engine.Db.load db ~table:"t" [ row 1 "a" 5; row 2 "b" 6 ]);
  Table.add_ordered_index t ~name:"by_c" ~columns:[ "c" ];
  match Nbsc_engine.Snapshot.save db with
  | Error _ -> Alcotest.fail "save"
  | Ok lines ->
    (match Nbsc_engine.Snapshot.load lines with
     | Error _ -> Alcotest.fail "load"
     | Ok db' ->
       let t' = Nbsc_engine.Db.table db' "t" in
       Alcotest.(check bool) "definition restored" true
         (Table.ordered_index_definitions t' = [ ("by_c", [ "c" ]) ]);
       Alcotest.(check int) "works" 1
         (List.length
            (Table.ordered_range t' ~index:"by_c" ~lo:(k 6, true) ~hi:(k 6, true) ())))

let test_sql_create_index_and_ranges () =
  let s = Nbsc_sql.Exec.create (Nbsc_engine.Db.create ()) in
  let run input =
    match Nbsc_sql.Exec.exec_string s input with
    | Ok outs -> outs
    | Error m -> Alcotest.failf "exec %S: %s" input m
  in
  let rows_of = function
    | Nbsc_sql.Exec.Rows { rows; _ } -> rows
    | Nbsc_sql.Exec.Message m -> Alcotest.failf "expected rows, got %S" m
  in
  ignore
    (run
       "CREATE TABLE t (a INT NOT NULL, b TEXT, c INT, PRIMARY KEY (a)); \
        CREATE INDEX by_c ON t (c);");
  ignore
    (run
       "INSERT INTO t VALUES (1,'p',10), (2,'q',20), (3,'r',30), (4,'s',40), (5,'t',50);");
  let count input =
    match run input with
    | [ out ] -> List.length (rows_of out)
    | _ -> Alcotest.fail "one result"
  in
  (* Same answers with and without an exploitable index shape. *)
  Alcotest.(check int) "range" 3 (count "SELECT * FROM t WHERE c >= 20 AND c <= 40");
  Alcotest.(check int) "half open" 2 (count "SELECT * FROM t WHERE c > 30");
  Alcotest.(check int) "eq via index" 1 (count "SELECT * FROM t WHERE c = 20");
  Alcotest.(check int) "range + residual filter" 1
    (count "SELECT * FROM t WHERE c >= 20 AND c <= 40 AND b = 'q'");
  Alcotest.(check int) "or falls back to scan" 2
    (count "SELECT * FROM t WHERE c = 10 OR c = 50");
  (* UPDATE/DELETE through the range path. *)
  (match run "DELETE FROM t WHERE c >= 40" with
   | [ Nbsc_sql.Exec.Message m ] ->
     Alcotest.(check string) "deleted two" "2 row(s) deleted" m
   | _ -> Alcotest.fail "message");
  Alcotest.(check int) "remaining" 3 (count "SELECT * FROM t")

(* Property: range results always agree with a filter scan. *)
let prop_range_agrees_with_scan =
  QCheck.Test.make ~name:"ordered range = scan filter" ~count:200
    QCheck.(triple (list_of_size Gen.(int_bound 40) (int_bound 20))
              (int_bound 20) (int_bound 20))
    (fun (cs, lo, hi) ->
       let t = Table.create ~name:"t" schema in
       List.iteri
         (fun i c -> ignore (Table.insert t ~lsn:(Lsn.of_int (i + 1)) (row i "x" c)))
         cs;
       Table.add_ordered_index t ~name:"by_c" ~columns:[ "c" ];
       let got =
         Table.ordered_range t ~index:"by_c" ~lo:(k lo, true) ~hi:(k hi, true) ()
         |> List.sort Row.Key.compare
       in
       let want =
         Table.fold t ~init:[] ~f:(fun acc key r ->
             match Row.get r.Record.row 2 with
             | Value.Int c when c >= lo && c <= hi -> key :: acc
             | _ -> acc)
         |> List.sort Row.Key.compare
       in
       List.length got = List.length want
       && List.for_all2 Row.Key.equal got want)

let () =
  Alcotest.run "ordered_index"
    [ ( "index",
        [ Alcotest.test_case "range basics" `Quick test_range_basics;
          Alcotest.test_case "maintained on mutation" `Quick
            test_maintained_on_mutation;
          Alcotest.test_case "snapshot persistence" `Quick
            test_snapshot_persists_ordered ] );
      ( "sql",
        [ Alcotest.test_case "CREATE INDEX + ranges" `Quick
            test_sql_create_index_and_ranges ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_range_agrees_with_scan ] ) ]
