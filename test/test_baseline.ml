(* Tests for the comparators: blocking INSERT INTO ... SELECT and
   trigger-based (Ronstrom-style) maintenance. *)

open Nbsc_value
open Nbsc_storage
open Nbsc_txn
open Nbsc_core
open Nbsc_baseline
module H = Helpers

let ok name = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" name Manager.pp_error e

(* {1 Blocking INSERT INTO ... SELECT} *)

let test_dump_foj_correct () =
  let r_rows, s_rows = H.seed_rows ~r:40 ~s:15 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let oracle = H.foj_oracle db in
  let dump = Insert_into_select.foj db H.foj_spec in
  let steps = ref 0 in
  while Insert_into_select.step dump ~limit:7 = `Running do incr steps done;
  Alcotest.(check bool) "multiple steps" true (!steps > 3);
  Alcotest.(check bool) "sources dropped" false (Catalog.mem (Db.catalog db) "R");
  H.check_relations_equal "T = oracle" oracle (Db.snapshot db "T")

let test_dump_split_correct () =
  let db = H.fresh_split_db ~t_rows:(H.seed_t_rows ~n:50) in
  let t = Db.snapshot db "T" in
  let expected_r, expected_s =
    Nbsc_relalg.Relalg.split
      { Nbsc_relalg.Relalg.r_cols' = [ "a"; "b"; "c" ]; s_cols' = [ "c"; "d" ];
        r_key = [ "a" ]; s_key = [ "c" ] }
      t
  in
  let dump = Insert_into_select.split db (H.split_spec ~assume_consistent:true) in
  while Insert_into_select.step dump ~limit:16 = `Running do () done;
  H.check_relations_equal "R" expected_r (Db.snapshot db "R");
  H.check_relations_equal "S" expected_s (Db.snapshot db "S")

let test_dump_blocks_writers () =
  let r_rows, s_rows = H.seed_rows ~r:30 ~s:10 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let mgr = Db.manager db in
  let dump = Insert_into_select.foj db H.foj_spec in
  ignore (Insert_into_select.step dump ~limit:5);
  (* Mid-dump, the sources are latched: every write stalls. *)
  let txn = Manager.begin_txn mgr in
  (match
     Manager.update mgr ~txn ~table:"R"
       ~key:(Row.make [ Value.Int 1 ])
       [ (1, Value.Text "nope") ]
   with
   | Error (`Latched "R") -> ()
   | _ -> Alcotest.fail "expected Latched");
  ignore (Manager.abort mgr txn);
  while Insert_into_select.step dump ~limit:50 = `Running do () done;
  Alcotest.(check bool) "finished" true (Insert_into_select.finished dump)

(* {1 Trigger-based maintenance} *)

let test_trigger_keeps_t_fresh () =
  let r_rows, s_rows = H.seed_rows ~r:30 ~s:10 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let mgr = Db.manager db in
  let tr = Trigger_method.install_foj db H.foj_spec in
  (* Initial population is already there. *)
  H.check_relations_equal "initial" (H.foj_oracle db) (Db.snapshot db "T");
  (* Every user op is reflected synchronously. *)
  let txn = Manager.begin_txn mgr in
  ok "u" (Manager.update mgr ~txn ~table:"R"
            ~key:(Row.make [ Value.Int 3 ]) [ (1, Value.Text "fresh") ]);
  ok "i" (Manager.insert mgr ~txn ~table:"R" (H.ri 999 "brand-new" 4));
  ok "d" (Manager.delete mgr ~txn ~table:"S" ~key:(Row.make [ Value.Int 2 ]));
  ok "c" (Manager.commit mgr txn);
  H.check_relations_equal "after ops" (H.foj_oracle db) (Db.snapshot db "T");
  Alcotest.(check bool) "trigger work counted" true
    (Trigger_method.triggered_ops tr > 0);
  (* Uninstall stops maintenance. *)
  Trigger_method.uninstall tr;
  let txn = Manager.begin_txn mgr in
  ok "u2" (Manager.update mgr ~txn ~table:"R"
             ~key:(Row.make [ Value.Int 5 ]) [ (1, Value.Text "missed") ]);
  ok "c2" (Manager.commit mgr txn);
  Alcotest.(check bool) "now stale" false
    (Nbsc_relalg.Relalg.equal_as_sets (H.foj_oracle db) (Db.snapshot db "T"))

let test_trigger_split () =
  let db = H.fresh_split_db ~t_rows:(H.seed_t_rows ~n:40) in
  let mgr = Db.manager db in
  let _tr = Trigger_method.install_split db (H.split_spec ~assume_consistent:true) in
  let txn = Manager.begin_txn mgr in
  ok "u" (Manager.update mgr ~txn ~table:"T"
            ~key:(Row.make [ Value.Int 7 ])
            [ (2, Value.Int 3); (3, Value.Text (H.city_of 3)) ]);
  ok "c" (Manager.commit mgr txn);
  let t = Db.snapshot db "T" in
  let expected_r, expected_s =
    Nbsc_relalg.Relalg.split
      { Nbsc_relalg.Relalg.r_cols' = [ "a"; "b"; "c" ]; s_cols' = [ "c"; "d" ];
        r_key = [ "a" ]; s_key = [ "c" ] }
      t
  in
  H.check_relations_equal "R fresh" expected_r (Db.snapshot db "R");
  H.check_relations_equal "S fresh" expected_s (Db.snapshot db "S")

let test_trigger_work_attribution () =
  let r_rows, s_rows = H.seed_rows ~r:10 ~s:5 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let mgr = Db.manager db in
  let tr = Trigger_method.install_foj db H.foj_spec in
  let txn = Manager.begin_txn mgr in
  ok "u" (Manager.update mgr ~txn ~table:"R"
            ~key:(Row.make [ Value.Int 1 ]) [ (1, Value.Text "w") ]);
  Alcotest.(check bool) "last op did work" true (Trigger_method.last_op_work tr > 0);
  ok "c" (Manager.commit mgr txn);
  Trigger_method.uninstall tr

(* Two concurrent installations must not clobber each other: post-op
   hooks live in an id-keyed registry, and uninstall removes only the
   caller's own id. Pre-registry, the second install silently replaced
   the first and either uninstall removed whichever hook was left. *)
let test_trigger_two_installs () =
  let r_rows, s_rows = H.seed_rows ~r:20 ~s:8 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let mgr = Db.manager db in
  let oracle_t2 () =
    (* Same join, different target table — the oracle is target-name
       agnostic. *)
    H.foj_oracle db
  in
  let tr1 = Trigger_method.install_foj db H.foj_spec in
  let tr2 =
    Trigger_method.install_foj db { H.foj_spec with Spec.t_table = "T2" }
  in
  let write_r key text =
    let txn = Manager.begin_txn mgr in
    ok "u" (Manager.update mgr ~txn ~table:"R"
              ~key:(Row.make [ Value.Int key ]) [ (1, Value.Text text) ]);
    ok "c" (Manager.commit mgr txn)
  in
  (* Both hooks fire for the same write. *)
  write_r 3 "both";
  H.check_relations_equal "T fresh under two installs" (H.foj_oracle db)
    (Db.snapshot db "T");
  H.check_relations_equal "T2 fresh under two installs" (oracle_t2 ())
    (Db.snapshot db "T2");
  (* Uninstalling the second must leave the first maintaining T. *)
  Trigger_method.uninstall tr2;
  write_r 5 "only-tr1";
  H.check_relations_equal "T still fresh after tr2 uninstall"
    (H.foj_oracle db) (Db.snapshot db "T");
  Alcotest.(check bool) "T2 now stale" false
    (Nbsc_relalg.Relalg.equal_as_sets (oracle_t2 ()) (Db.snapshot db "T2"));
  Trigger_method.uninstall tr1;
  write_r 7 "nobody";
  Alcotest.(check bool) "T stale after tr1 uninstall" false
    (Nbsc_relalg.Relalg.equal_as_sets (H.foj_oracle db) (Db.snapshot db "T"))

(* {1 Shadow-table method} *)

let converge_shadow ?(between = fun () -> ()) sh =
  let steps = ref 0 in
  while not (Shadow_table.step sh ~limit:8) do
    incr steps;
    if !steps > 100_000 then Alcotest.fail "shadow did not converge";
    between ()
  done;
  !steps

let test_shadow_foj () =
  let r_rows, s_rows = H.seed_rows ~r:60 ~s:20 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let packed = Transformation.foj db H.foj_spec in
  let sh = Shadow_table.create db ~drop_sources:false ~chunk:8 packed in
  let d = H.driver db in
  (* Writes before the backfill starts are pure audit captures. *)
  for _ = 1 to 5 do H.random_r_op d; H.random_s_op d done;
  let tick = ref 0 in
  let steps =
    converge_shadow sh ~between:(fun () ->
        incr tick;
        if !tick mod 2 = 0 then begin
          H.random_r_op d;
          H.random_s_op d
        end)
  in
  Alcotest.(check bool) "many quanta" true (steps > 10);
  H.check_relations_equal "T = oracle" (H.foj_oracle db) (Db.snapshot db "T");
  Alcotest.(check bool) "audit captured writes" true
    (Shadow_table.captured sh > 0);
  Alcotest.(check bool) "several latched windows" true
    (Shadow_table.latched_windows sh > 2);
  Alcotest.(check int) "audit drained" 0 (Shadow_table.audit_pending sh);
  Alcotest.(check bool) "sources kept" true (Catalog.mem (Db.catalog db) "R")

(* An aborted transaction's writes are captured {e and} compensated:
   rollback fires the post-op hooks with the CLR inverses, so the
   audit replay nets the aborted insert out. Without that, the shadow
   target keeps a phantom row no oracle ever contains. *)
let test_shadow_aborted_writes () =
  let r_rows, s_rows = H.seed_rows ~r:25 ~s:10 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let mgr = Db.manager db in
  let packed = Transformation.foj db H.foj_spec in
  let sh = Shadow_table.create db ~drop_sources:false ~chunk:8 packed in
  let txn = Manager.begin_txn mgr in
  ok "i" (Manager.insert mgr ~txn ~table:"R" (H.ri 777 "phantom" 3));
  ignore (Manager.abort mgr txn);
  ignore (converge_shadow sh);
  H.check_relations_equal "no phantom from aborted txn" (H.foj_oracle db)
    (Db.snapshot db "T")

let test_shadow_split () =
  let db = H.fresh_split_db ~t_rows:(H.seed_t_rows ~n:50) in
  let packed =
    Transformation.split db (H.split_spec ~assume_consistent:true)
  in
  let sh = Shadow_table.create db ~drop_sources:false ~chunk:8 packed in
  let d = H.driver db in
  let tick = ref 0 in
  ignore
    (converge_shadow sh ~between:(fun () ->
         incr tick;
         if !tick mod 2 = 0 then H.random_t_op ~consistent:true d));
  let t = Db.snapshot db "T" in
  let expected_r, expected_s =
    Nbsc_relalg.Relalg.split
      { Nbsc_relalg.Relalg.r_cols' = [ "a"; "b"; "c" ]; s_cols' = [ "c"; "d" ];
        r_key = [ "a" ]; s_key = [ "c" ] }
      t
  in
  H.check_relations_equal "R = oracle" expected_r (Db.snapshot db "R");
  H.check_relations_equal "S = oracle" expected_s (Db.snapshot db "S")

let test_shadow_blocks_during_chunk () =
  let r_rows, s_rows = H.seed_rows ~r:30 ~s:10 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let mgr = Db.manager db in
  let packed = Transformation.foj db H.foj_spec in
  let sh = Shadow_table.create db ~drop_sources:false ~chunk:8 packed in
  (* Step one: the latch for the first chunk is taken. *)
  ignore (Shadow_table.step sh ~limit:8);
  let txn = Manager.begin_txn mgr in
  (match
     Manager.update mgr ~txn ~table:"R"
       ~key:(Row.make [ Value.Int 1 ])
       [ (1, Value.Text "nope") ]
   with
   | Error (`Latched "R") -> ()
   | _ -> Alcotest.fail "expected Latched during shadow chunk");
  ignore (Manager.abort mgr txn);
  (* Step two scans the chunk and releases: writes flow again. *)
  ignore (Shadow_table.step sh ~limit:8);
  let txn = Manager.begin_txn mgr in
  ok "u" (Manager.update mgr ~txn ~table:"R"
            ~key:(Row.make [ Value.Int 1 ]) [ (1, Value.Text "yes") ]);
  ok "c" (Manager.commit mgr txn);
  ignore (converge_shadow sh);
  H.check_relations_equal "converged" (H.foj_oracle db) (Db.snapshot db "T")

let () =
  Alcotest.run "baseline"
    [ ( "insert-into-select",
        [ Alcotest.test_case "FOJ correct" `Quick test_dump_foj_correct;
          Alcotest.test_case "split correct" `Quick test_dump_split_correct;
          Alcotest.test_case "blocks writers" `Quick test_dump_blocks_writers ] );
      ( "triggers",
        [ Alcotest.test_case "keeps T fresh" `Quick test_trigger_keeps_t_fresh;
          Alcotest.test_case "split variant" `Quick test_trigger_split;
          Alcotest.test_case "work attribution" `Quick
            test_trigger_work_attribution;
          Alcotest.test_case "two installs coexist" `Quick
            test_trigger_two_installs ] );
      ( "shadow-table",
        [ Alcotest.test_case "FOJ converges under traffic" `Quick
            test_shadow_foj;
          Alcotest.test_case "aborted writes compensated" `Quick
            test_shadow_aborted_writes;
          Alcotest.test_case "split converges under traffic" `Quick
            test_shadow_split;
          Alcotest.test_case "chunk latches block writers" `Quick
            test_shadow_blocks_during_chunk ] ) ]
