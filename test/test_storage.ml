(* Tests for the storage engine: heap tables, secondary indexes, fuzzy
   cursors, the catalog. *)

open Nbsc_value
open Nbsc_wal
open Nbsc_storage

let schema =
  Schema.make ~key:[ "a" ]
    [ Schema.column ~nullable:false "a" Value.TInt;
      Schema.column "b" Value.TText; Schema.column "c" Value.TInt ]

let mk ?(indexes = [ ("by_c", [ "c" ]) ]) () =
  Table.create ~indexes ~name:"t" schema

let row a b c = Row.make [ Value.Int a; Value.Text b; Value.Int c ]
let key a = Row.make [ Value.Int a ]
let lsn i = Lsn.of_int i

let test_insert_find_delete () =
  let t = mk () in
  Alcotest.(check bool) "insert" true (Table.insert t ~lsn:(lsn 1) (row 1 "x" 7) = Ok ());
  Alcotest.(check bool) "duplicate" true
    (Table.insert t ~lsn:(lsn 2) (row 1 "y" 8) = Error `Duplicate_key);
  Alcotest.(check int) "cardinality" 1 (Table.cardinality t);
  (match Table.find t (key 1) with
   | Some r ->
     Alcotest.(check bool) "row" true (Row.equal r.Record.row (row 1 "x" 7));
     Alcotest.(check int) "lsn" 1 (Lsn.to_int r.Record.lsn)
   | None -> Alcotest.fail "missing");
  (match Table.delete t ~lsn:(lsn 2) (key 1) with
   | Ok r -> Alcotest.(check bool) "deleted row" true (Row.equal r.Record.row (row 1 "x" 7))
   | Error `Not_found -> Alcotest.fail "delete failed");
  Alcotest.(check bool) "gone" true (Table.find t (key 1) = None);
  Alcotest.(check bool) "delete missing" true
    (Table.delete t ~lsn:(lsn 3) (key 1) = Error `Not_found)

let test_update () =
  let t = mk () in
  ignore (Table.insert t ~lsn:(lsn 1) (row 1 "x" 7));
  (match Table.update t ~lsn:(lsn 2) ~key:(key 1) [ (1, Value.Text "y") ] with
   | Ok r ->
     Alcotest.(check bool) "updated" true (Row.equal r.Record.row (row 1 "y" 7));
     Alcotest.(check int) "lsn moved" 2 (Lsn.to_int r.Record.lsn)
   | Error `Not_found -> Alcotest.fail "update failed");
  Alcotest.(check bool) "missing" true
    (Table.update t ~lsn:(lsn 3) ~key:(key 2) [ (1, Value.Text "z") ]
     = Error `Not_found);
  Alcotest.check_raises "key column refused" (Invalid_argument "")
    (fun () ->
       try ignore (Table.update t ~lsn:(lsn 4) ~key:(key 1) [ (0, Value.Int 9) ])
       with Invalid_argument _ -> raise (Invalid_argument ""))

let test_arity_checked () =
  let t = mk () in
  Alcotest.check_raises "bad arity" (Invalid_argument "")
    (fun () ->
       try ignore (Table.insert t ~lsn:(lsn 1) (Row.make [ Value.Int 1 ]))
       with Invalid_argument _ -> raise (Invalid_argument ""))

let test_index_maintenance () =
  let t = mk () in
  ignore (Table.insert t ~lsn:(lsn 1) (row 1 "x" 7));
  ignore (Table.insert t ~lsn:(lsn 2) (row 2 "y" 7));
  ignore (Table.insert t ~lsn:(lsn 3) (row 3 "z" 8));
  let c v = Row.make [ Value.Int v ] in
  let sorted l = List.sort Row.Key.compare l in
  Alcotest.(check int) "two with c=7" 2 (List.length (Table.index_lookup t ~index:"by_c" (c 7)));
  Alcotest.(check bool) "keys for c=7" true
    (sorted (Table.index_lookup t ~index:"by_c" (c 7)) = [ key 1; key 2 ]);
  (* Update moves the row between index buckets. *)
  ignore (Table.update t ~lsn:(lsn 4) ~key:(key 1) [ (2, Value.Int 8) ]);
  Alcotest.(check bool) "moved out of 7" true
    (Table.index_lookup t ~index:"by_c" (c 7) = [ key 2 ]);
  Alcotest.(check bool) "moved into 8" true
    (sorted (Table.index_lookup t ~index:"by_c" (c 8)) = [ key 1; key 3 ]);
  (* Delete removes from the index. *)
  ignore (Table.delete t ~lsn:(lsn 9) (key 3));
  Alcotest.(check bool) "delete removes" true
    (Table.index_lookup t ~index:"by_c" (c 8) = [ key 1 ]);
  Alcotest.check_raises "unknown index" Not_found (fun () ->
      ignore (Table.index_lookup t ~index:"nope" (c 1)))

let test_add_index_backfills () =
  let t = Table.create ~name:"t" schema in
  for i = 1 to 10 do
    ignore (Table.insert t ~lsn:(lsn i) (row i "x" (i mod 3)))
  done;
  Table.add_index t ~name:"late" ~columns:[ "c" ];
  (* c = i mod 3 = 0 for i in {3, 6, 9} *)
  Alcotest.(check int) "backfilled" 3
    (List.length (Table.index_lookup t ~index:"late" (Row.make [ Value.Int 0 ])));
  (* Maintained after creation too. *)
  ignore (Table.insert t ~lsn:(lsn 11) (row 11 "x" 0));
  Alcotest.(check int) "maintained" 4
    (List.length (Table.index_lookup t ~index:"late" (Row.make [ Value.Int 0 ])))

let test_set_record () =
  let t = mk () in
  ignore (Table.insert t ~lsn:(lsn 1) (row 1 "x" 7));
  let r = Option.get (Table.find t (key 1)) in
  let r' =
    Record.with_flag
      (Record.with_counter (Record.with_row r (row 1 "x2" 9)) 5)
      Record.Unknown
  in
  Alcotest.(check bool) "set ok" true (Table.set_record t ~key:(key 1) r' = Ok ());
  let got = Option.get (Table.find t (key 1)) in
  Alcotest.(check int) "counter" 5 got.Record.counter;
  Alcotest.(check bool) "flag" true (got.Record.flag = Record.Unknown);
  (* Index follows the row change. *)
  Alcotest.(check bool) "index moved" true
    (Table.index_lookup t ~index:"by_c" (Row.make [ Value.Int 9 ]) = [ key 1 ]);
  Alcotest.check_raises "key mismatch" (Invalid_argument "")
    (fun () ->
       try ignore (Table.set_record t ~key:(key 1) (Record.make ~lsn:(lsn 2) (row 2 "q" 1)))
       with Invalid_argument _ -> raise (Invalid_argument ""))

let test_fuzzy_cursor_basics () =
  let t = mk () in
  for i = 1 to 100 do
    ignore (Table.insert t ~lsn:(lsn i) (row i "x" i))
  done;
  let c = Table.Fuzzy_cursor.make t in
  let b1 = Table.Fuzzy_cursor.next_batch c ~limit:30 in
  Alcotest.(check int) "batch 1" 30 (List.length b1);
  Alcotest.(check bool) "not finished" false (Table.Fuzzy_cursor.finished c);
  let rest = ref 0 in
  let continue = ref true in
  while !continue do
    match Table.Fuzzy_cursor.next_batch c ~limit:40 with
    | [] -> continue := false
    | b -> rest := !rest + List.length b
  done;
  Alcotest.(check int) "rest" 70 !rest;
  Alcotest.(check bool) "finished" true (Table.Fuzzy_cursor.finished c);
  Alcotest.(check int) "scanned" 100 (Table.Fuzzy_cursor.scanned c)

let test_fuzzy_cursor_concurrent_mutations () =
  let t = mk () in
  for i = 1 to 50 do
    ignore (Table.insert t ~lsn:(lsn i) (row i "x" i))
  done;
  let c = Table.Fuzzy_cursor.make t in
  let b1 = Table.Fuzzy_cursor.next_batch c ~limit:20 in
  (* Delete a not-yet-scanned record, insert a new one, re-insert a
     scanned one after deleting it (the re-insert must NOT be reported
     twice). *)
  ignore (Table.delete t ~lsn:(lsn 90) (key 40));
  ignore (Table.insert t ~lsn:(lsn 51) (row 51 "new" 51));
  ignore (Table.delete t ~lsn:(lsn 91) (key 5));
  ignore (Table.insert t ~lsn:(lsn 52) (row 5 "again" 5));
  let rest = ref [] in
  let continue = ref true in
  while !continue do
    match Table.Fuzzy_cursor.next_batch c ~limit:100 with
    | [] -> continue := false
    | b -> rest := !rest @ b
  done;
  let all = b1 @ !rest in
  let keys =
    List.map (fun r -> Lsn.to_int (Lsn.of_int 0) |> ignore;
               match Row.get r.Record.row 0 with
               | Value.Int a -> a
               | _ -> -1) all
  in
  let sorted = List.sort_uniq compare keys in
  Alcotest.(check int) "no duplicates" (List.length keys) (List.length sorted);
  Alcotest.(check bool) "deleted unscanned not reported" true
    (not (List.mem 40 keys));
  Alcotest.(check bool) "new row may appear" true (List.mem 51 keys)

let test_arrival_compaction_under_churn () =
  let t = mk () in
  (* Sustained delete+reinsert churn over a fixed working set: without
     compaction every round appends [n] more arrival entries and the
     array grows with the churn count, not the cardinality. *)
  let n = 500 in
  for i = 1 to n do
    ignore (Table.insert t ~lsn:(lsn i) (row i "x" i))
  done;
  for round = 1 to 40 do
    for i = 1 to n do
      ignore (Table.delete t ~lsn:(lsn (100 + i)) (key i));
      ignore (Table.insert t ~lsn:(lsn ((round * n) + i)) (row i "x" i))
    done
  done;
  Alcotest.(check int) "cardinality stable" n (Table.cardinality t);
  Alcotest.(check bool)
    (Printf.sprintf "arrival_len %d within 2x cardinality"
       (Table.arrival_length t))
    true
    (Table.arrival_length t <= 2 * n);
  (* The compacted arrival order still drives a complete fuzzy scan. *)
  let c = Table.Fuzzy_cursor.make t in
  let seen = ref 0 in
  let continue = ref true in
  while !continue do
    match Table.Fuzzy_cursor.next_batch c ~limit:64 with
    | [] -> continue := false
    | b -> seen := !seen + List.length b
  done;
  Table.Fuzzy_cursor.close c;
  Alcotest.(check int) "scan still complete" n !seen

let test_live_cursor_blocks_compaction () =
  let t = mk () in
  let n = 200 in
  for i = 1 to n do
    ignore (Table.insert t ~lsn:(lsn i) (row i "x" i))
  done;
  let c = Table.Fuzzy_cursor.make t in
  ignore (Table.Fuzzy_cursor.next_batch c ~limit:10);
  (* Churn while a cursor is live: arrival entries must survive (the
     cursor's position indexes into the array). *)
  for round = 1 to 2 do
    for i = 1 to n do
      ignore (Table.delete t ~lsn:(lsn (100 + i)) (key i));
      ignore (Table.insert t ~lsn:(lsn ((round * n) + i)) (row i "x" i))
    done
  done;
  Alcotest.(check bool) "no compaction while cursor live" true
    (Table.arrival_length t > 2 * n);
  let seen = ref 10 in
  let continue = ref true in
  while !continue do
    match Table.Fuzzy_cursor.next_batch c ~limit:64 with
    | [] -> continue := false
    | b -> seen := !seen + List.length b
  done;
  Table.Fuzzy_cursor.close c;
  Table.Fuzzy_cursor.close c;  (* idempotent *)
  (* With the cursor closed the next mutation compacts. *)
  ignore (Table.delete t ~lsn:(lsn 99) (key 1));
  Alcotest.(check bool)
    (Printf.sprintf "compacted after close (len %d)" (Table.arrival_length t))
    true
    (Table.arrival_length t <= 2 * n)

let test_max_lsn_and_rows () =
  let t = mk () in
  ignore (Table.insert t ~lsn:(lsn 5) (row 1 "x" 1));
  ignore (Table.insert t ~lsn:(lsn 9) (row 2 "y" 2));
  Alcotest.(check int) "max lsn" 9 (Lsn.to_int (Table.max_lsn t));
  Alcotest.(check int) "to_rows" 2 (List.length (Table.to_rows t))

let test_catalog () =
  let cat = Catalog.create () in
  let t = Catalog.create_table cat ~name:"x" schema in
  Alcotest.(check bool) "find" true (Catalog.find cat "x" == t);
  Alcotest.(check bool) "mem" true (Catalog.mem cat "x");
  Alcotest.check_raises "duplicate name" (Invalid_argument "")
    (fun () ->
       try ignore (Catalog.create_table cat ~name:"x" schema)
       with Invalid_argument _ -> raise (Invalid_argument ""));
  Catalog.rename cat ~old_name:"x" ~new_name:"y";
  Alcotest.(check bool) "renamed" true (Catalog.mem cat "y" && not (Catalog.mem cat "x"));
  Catalog.drop cat "y";
  Alcotest.(check bool) "dropped" false (Catalog.mem cat "y");
  Alcotest.check_raises "drop missing" Not_found (fun () -> Catalog.drop cat "y")

(* Property: after random inserts/updates/deletes, every index bucket
   agrees with a scan of the heap. *)
let prop_index_agrees_with_heap =
  QCheck.Test.make ~name:"index = heap projection" ~count:150
    QCheck.(list_of_size Gen.(int_bound 80)
              (triple (int_bound 20) (int_bound 5) (int_bound 2)))
    (fun ops ->
       let t = mk () in
       let l = ref 0 in
       List.iter
         (fun (a, c, action) ->
            incr l;
            match action with
            | 0 -> ignore (Table.insert t ~lsn:(lsn !l) (row a "b" c))
            | 1 ->
              ignore (Table.update t ~lsn:(lsn !l) ~key:(key a) [ (2, Value.Int c) ])
            | _ -> ignore (Table.delete t ~lsn:(lsn 1000) (key a)))
         ops;
       (* Check every c value in 0..5. *)
       List.for_all
         (fun c ->
            let via_index =
              Table.index_lookup t ~index:"by_c" (Row.make [ Value.Int c ])
              |> List.sort Row.Key.compare
            in
            let via_scan =
              Table.fold t ~init:[] ~f:(fun acc k r ->
                  if Value.equal (Row.get r.Record.row 2) (Value.Int c) then
                    k :: acc
                  else acc)
              |> List.sort Row.Key.compare
            in
            List.length via_index = List.length via_scan
            && List.for_all2 Row.Key.equal via_index via_scan)
         [ 0; 1; 2; 3; 4; 5 ])

(* Property: a fuzzy scan over a static table returns exactly the
   table's rows. *)
let prop_fuzzy_scan_complete =
  QCheck.Test.make ~name:"fuzzy scan of static table is exact" ~count:100
    QCheck.(pair (int_range 1 17) (list_of_size Gen.(int_bound 50) (int_bound 200)))
    (fun (batch, keys) ->
       let t = mk () in
       let distinct = List.sort_uniq compare keys in
       List.iteri
         (fun i a -> ignore (Table.insert t ~lsn:(lsn (i + 1)) (row a "x" a)))
         distinct;
       let c = Table.Fuzzy_cursor.make t in
       let seen = ref 0 in
       let continue = ref true in
       while !continue do
         match Table.Fuzzy_cursor.next_batch c ~limit:batch with
         | [] -> continue := false
         | b -> seen := !seen + List.length b
       done;
       !seen = List.length distinct)

let () =
  Alcotest.run "storage"
    [ ( "table",
        [ Alcotest.test_case "insert/find/delete" `Quick test_insert_find_delete;
          Alcotest.test_case "update" `Quick test_update;
          Alcotest.test_case "arity checked" `Quick test_arity_checked;
          Alcotest.test_case "set_record" `Quick test_set_record;
          Alcotest.test_case "max_lsn and rows" `Quick test_max_lsn_and_rows;
          Alcotest.test_case "arrival compaction under churn" `Quick
            test_arrival_compaction_under_churn;
          Alcotest.test_case "live cursor blocks compaction" `Quick
            test_live_cursor_blocks_compaction ] );
      ( "index",
        [ Alcotest.test_case "maintenance" `Quick test_index_maintenance;
          Alcotest.test_case "add_index backfills" `Quick
            test_add_index_backfills ] );
      ( "fuzzy",
        [ Alcotest.test_case "basics" `Quick test_fuzzy_cursor_basics;
          Alcotest.test_case "concurrent mutations" `Quick
            test_fuzzy_cursor_concurrent_mutations ] );
      ("catalog", [ Alcotest.test_case "catalog" `Quick test_catalog ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_index_agrees_with_heap; prop_fuzzy_scan_complete ] ) ]
