(* Tests for deferred materialized views (the paper's closing
   suggestion): non-blocking creation, staleness, refresh-on-demand. *)

open Nbsc_value
open Nbsc_txn
open Nbsc_core
module H = Helpers

let ok name = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" name Manager.pp_error e

let view_spec = { H.foj_spec with Spec.t_table = "V" }

let foj_oracle db =
  Nbsc_relalg.Relalg.full_outer_join
    { Nbsc_relalg.Relalg.r_join = [ "c" ]; s_join = [ "c" ]; out_join = [ "c" ];
      r_cols = [ "a"; "b" ]; s_cols = [ "d" ]; out_key = [ "a" ] }
    (Db.snapshot db "R") (Db.snapshot db "S")

let test_create_and_refresh () =
  let r_rows, s_rows = H.seed_rows ~r:60 ~s:20 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let mv = Matview.create db ~config:{ Matview.scan_batch = 9; propagate_batch = 9 } view_spec in
  Alcotest.(check bool) "not populated yet" false (Matview.populated mv);
  Matview.refresh mv;
  Alcotest.(check bool) "populated" true (Matview.populated mv);
  Alcotest.(check int) "fresh" 0 (Matview.lag mv);
  H.check_relations_equal "V = FOJ(R,S)" (foj_oracle db) (Db.snapshot db "V")

let test_staleness_and_catchup () =
  let r_rows, s_rows = H.seed_rows ~r:30 ~s:10 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let mv = Matview.create db view_spec in
  Matview.refresh mv;
  let stale_oracle = foj_oracle db in
  (* Source writes make the view stale; it does NOT see them yet. *)
  let mgr = Db.manager db in
  let txn = Manager.begin_txn mgr in
  ok "u" (Manager.update mgr ~txn ~table:"R" ~key:(Row.make [ Value.Int 1 ])
            [ (1, Value.Text "changed") ]);
  ok "i" (Manager.insert mgr ~txn ~table:"R" (H.ri 777 "new" 3));
  ok "c" (Manager.commit mgr txn);
  Alcotest.(check bool) "stale" true (Matview.lag mv > 0);
  H.check_relations_equal "deferred: old image" stale_oracle (Db.snapshot db "V");
  (* Refresh catches up. *)
  Matview.refresh mv;
  Alcotest.(check int) "caught up" 0 (Matview.lag mv);
  H.check_relations_equal "fresh image" (foj_oracle db) (Db.snapshot db "V")

let test_incremental_steps_under_load () =
  let r_rows, s_rows = H.seed_rows ~r:50 ~s:15 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let d = H.driver ~seed:21 db in
  let mv = Matview.create db ~config:{ Matview.scan_batch = 5; propagate_batch = 5 } view_spec in
  (* Interleave maintenance steps with user writes. *)
  for _ = 1 to 120 do
    H.random_r_op d;
    ignore (Matview.step mv)
  done;
  Matview.refresh mv;
  H.check_relations_equal "converged under load" (foj_oracle db)
    (Db.snapshot db "V")

let test_no_lock_transfer () =
  (* View maintenance must not plant transferred locks: a user write to
     the view table (unusual but legal) is never blocked by phantom
     Source locks. *)
  let r_rows, s_rows = H.seed_rows ~r:20 ~s:8 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let mv = Matview.create db view_spec in
  let mgr = Db.manager db in
  let txn = Manager.begin_txn mgr in
  ok "source write" (Manager.update mgr ~txn ~table:"R"
                       ~key:(Row.make [ Value.Int 2 ]) [ (1, Value.Text "x") ]);
  Matview.refresh mv;  (* propagates the (uncommitted) write *)
  Alcotest.(check int) "no locks on V" 0
    (List.length
       (Nbsc_lock.Lock_table.locked_resources (Manager.locks mgr) ~table:"V"));
  ok "commit" (Manager.commit mgr txn)

let test_drop () =
  let r_rows, s_rows = H.seed_rows ~r:10 ~s:5 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let mv = Matview.create db view_spec in
  Matview.refresh mv;
  Matview.drop mv;
  Alcotest.(check bool) "gone" false
    (Nbsc_storage.Catalog.mem (Db.catalog db) "V");
  Alcotest.(check bool) "step is a no-op" false (Matview.step mv)

let test_m2m_view () =
  let r_rows, s_rows = H.seed_rows ~r:30 ~s:10 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let mv =
    Matview.create db { view_spec with Spec.many_to_many = true }
  in
  let d = H.driver ~seed:4 db in
  for _ = 1 to 60 do
    H.random_r_op d;
    ignore (Matview.step mv)
  done;
  Matview.refresh mv;
  H.check_relations_equal "m2m view converges" (foj_oracle db)
    (Db.snapshot db "V")

let () =
  Alcotest.run "matview"
    [ ( "views",
        [ Alcotest.test_case "create and refresh" `Quick test_create_and_refresh;
          Alcotest.test_case "staleness and catch-up" `Quick
            test_staleness_and_catchup;
          Alcotest.test_case "incremental under load" `Quick
            test_incremental_steps_under_load;
          Alcotest.test_case "no lock transfer" `Quick test_no_lock_transfer;
          Alcotest.test_case "drop" `Quick test_drop;
          Alcotest.test_case "many-to-many view" `Quick test_m2m_view ] ) ]
