(* Tests for the simulator and metrics: determinism, workload scaling,
   the priority knob, and the experiment plumbing. *)

open Nbsc_core
open Nbsc_sim

let workload ?(n = 4) ?(seed = 5) ?(share = 0.2) () =
  { Sim.n_clients = n;
    think_time = 5_000;
    ops_per_txn = 10;
    source_share = share;
    seed }

let split_kind = Sim.Split_scenario { t_rows = 500; assume_consistent = true }

let tf_config ~gate =
  { Transform.scan_batch = 16;
    propagate_batch = 32;
    analysis = Analysis.Remaining_records 8;
    strategy = Transform.Nonblocking_abort;
    drop_sources = false;
    sync_gate = (fun () -> gate);
    pace = None }

let run ?(background = Sim.No_background) ?(duration = 120_000) ?(warmup = 10_000)
    ?(wl = workload ()) () =
  Sim.run ~kind:split_kind ~workload:wl ~background ~duration ~warmup ()

let test_deterministic () =
  let r1 = run () and r2 = run () in
  Alcotest.(check int) "same committed" r1.Sim.summary.Metrics.committed
    r2.Sim.summary.Metrics.committed;
  Alcotest.(check (float 0.0001)) "same mean rt"
    r1.Sim.summary.Metrics.mean_response r2.Sim.summary.Metrics.mean_response

let test_seed_changes_runs () =
  let r1 = run () and r2 = run ~wl:(workload ~seed:6 ()) () in
  Alcotest.(check bool) "different runs" true
    (r1.Sim.summary.Metrics.mean_response
     <> r2.Sim.summary.Metrics.mean_response
     || r1.Sim.summary.Metrics.committed <> r2.Sim.summary.Metrics.committed)

let test_more_clients_more_throughput () =
  let r1 = run ~wl:(workload ~n:2 ()) () in
  let r2 = run ~wl:(workload ~n:6 ()) () in
  Alcotest.(check bool) "throughput grows" true
    (r2.Sim.summary.Metrics.throughput > r1.Sim.summary.Metrics.throughput)

let test_transformation_completes () =
  let background =
    Sim.Transformation { Sim.priority = 0.2; config = tf_config ~gate:true }
  in
  let r = run ~background ~duration:400_000 () in
  Alcotest.(check bool) "completed" true (r.Sim.tf_done_at <> None);
  Alcotest.(check bool) "did work" true (r.Sim.tf_busy > 0);
  (match r.Sim.tf_final_phase with
   | Some Transform.Done -> ()
   | p ->
     Alcotest.failf "phase %s"
       (match p with
        | Some p -> Format.asprintf "%a" Transform.pp_phase p
        | None -> "none"))

let test_zero_priority_never_completes () =
  let background =
    Sim.Transformation { Sim.priority = 0.0; config = tf_config ~gate:true }
  in
  let r = run ~background () in
  Alcotest.(check bool) "not completed" true (r.Sim.tf_done_at = None)

let test_higher_priority_faster () =
  let time p =
    let background =
      Sim.Transformation { Sim.priority = p; config = tf_config ~gate:true }
    in
    match (run ~background ~duration:1_000_000 ()).Sim.tf_done_at with
    | Some t -> t
    | None -> max_int
  in
  let slow = time 0.05 and fast = time 0.4 in
  Alcotest.(check bool) "0.4 beats 0.05" true (fast < slow);
  Alcotest.(check bool) "both finished" true (slow < max_int)

let test_clients_for_workload () =
  let n50 = Sim.clients_for_workload 50. in
  let n100 = Sim.clients_for_workload 100. in
  Alcotest.(check bool) "monotone" true (n100 > n50);
  Alcotest.(check bool) "at least 1" true (Sim.clients_for_workload 1. >= 1);
  Alcotest.(check bool) "roughly double" true
    (abs ((2 * n50) - n100) <= 1)

let test_metrics_relative () =
  let s = Metrics.create () in
  Metrics.record_txn s ~start:0 ~finish:100;
  Metrics.record_txn s ~start:50 ~finish:250;
  Metrics.record_abort s;
  let sum = Metrics.summarize s ~window:1000 in
  Alcotest.(check int) "committed" 2 sum.Metrics.committed;
  Alcotest.(check int) "aborted" 1 sum.Metrics.aborted;
  Alcotest.(check (float 0.001)) "throughput per kilotick" 2.0 sum.Metrics.throughput;
  Alcotest.(check (float 0.001)) "mean" 150.0 sum.Metrics.mean_response;
  Alcotest.(check int) "max" 200 sum.Metrics.max_response;
  let rel =
    Metrics.relative ~baseline:sum
      ~loaded:{ sum with Metrics.throughput = 1.8; mean_response = 180. }
  in
  Alcotest.(check (float 0.001)) "rel tput" 0.9 rel.Metrics.rel_throughput;
  Alcotest.(check (float 0.001)) "rel rt" 1.2 rel.Metrics.rel_response

let test_sync_window_report () =
  let setup =
    { Experiment.quick_setup with Experiment.scale = 400; duration = 60_000;
      warmup = 5_000 }
  in
  let r =
    match
      Experiment.sync_window ~setup ~strategy:Transform.Nonblocking_abort ()
    with
    | Ok r -> r
    | Error e -> Alcotest.fail (Nbsc_error.to_string e)
  in
  Alcotest.(check string) "strategy name" "non-blocking-abort"
    r.Experiment.strategy_name;
  Alcotest.(check bool) "tiny final iteration" true (r.Experiment.final_records < 64)

let test_method_comparison_rows () =
  (* Big enough that the blocking dump's latch window overlaps client
     activity. *)
  let setup =
    { Experiment.quick_setup with Experiment.scale = 8_000; duration = 120_000;
      warmup = 5_000 }
  in
  let rows = Experiment.method_comparison ~setup ~workload_pct:75. () in
  Alcotest.(check int) "three methods" 3 (List.length rows);
  let blocking = List.nth rows 1 in
  Alcotest.(check bool) "blocking dump finished" true
    (blocking.Experiment.m_done_at <> None);
  Alcotest.(check bool) "blocking stalled someone" true
    (blocking.Experiment.m_retries > 0)

(* {1 WAL soak}

   The bounded-memory claim (ISSUE: tentpole acceptance): under a
   long-running schema change plus sustained user traffic, the live
   in-memory WAL stays flat — its high-water mark is a function of the
   truncation cadence and the active-transaction window, not of run
   length. The transformation's sync gate is held shut so the
   propagator runs (and pins the log) for the whole run. *)

let soak_workload =
  { Sim.n_clients = 8;
    think_time = 500;
    ops_per_txn = 10;
    source_share = 0.2;
    seed = 11 }

let soak ~duration =
  let background =
    Sim.Transformation { Sim.priority = 0.05; config = tf_config ~gate:false }
  in
  Sim.run ~kind:split_kind ~workload:soak_workload ~background ~duration
    ~warmup:10_000 ()

(* High enough to absorb the truncation cadence (every 4096 live
   records) plus active-transaction undo chains; far below what an
   unbounded log accumulates over these durations. *)
let soak_bound = 16_384

let test_wal_soak_bounded () =
  let short = soak ~duration:300_000 in
  let long = soak ~duration:600_000 in
  Alcotest.(check bool) "truncation ran" true (short.Sim.wal_truncated > 0);
  Alcotest.(check bool)
    (Printf.sprintf "short run high-water %d <= %d" short.Sim.wal_high_water
       soak_bound)
    true
    (short.Sim.wal_high_water <= soak_bound);
  Alcotest.(check bool)
    (Printf.sprintf "long run high-water %d <= %d" long.Sim.wal_high_water
       soak_bound)
    true
    (long.Sim.wal_high_water <= soak_bound);
  (* Doubling the run must not grow the live log: flat, not linear. *)
  Alcotest.(check bool)
    (Printf.sprintf "flat across durations (%d vs %d)" short.Sim.wal_high_water
       long.Sim.wal_high_water)
    true
    (long.Sim.wal_high_water <= 2 * short.Sim.wal_high_water);
  Alcotest.(check bool) "longer run reclaims more" true
    (long.Sim.wal_truncated > short.Sim.wal_truncated)

let () =
  Alcotest.run "sim"
    [ ( "engine",
        [ Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_runs;
          Alcotest.test_case "clients scale throughput" `Quick
            test_more_clients_more_throughput ] );
      ( "background",
        [ Alcotest.test_case "transformation completes" `Quick
            test_transformation_completes;
          Alcotest.test_case "zero priority starves" `Quick
            test_zero_priority_never_completes;
          Alcotest.test_case "priority speeds completion" `Quick
            test_higher_priority_faster ] );
      ( "soak",
        [ Alcotest.test_case "wal memory bounded" `Quick
            test_wal_soak_bounded ] );
      ( "experiment",
        [ Alcotest.test_case "clients_for_workload" `Quick
            test_clients_for_workload;
          Alcotest.test_case "metrics math" `Quick test_metrics_relative;
          Alcotest.test_case "sync window report" `Quick test_sync_window_report;
          Alcotest.test_case "method comparison" `Quick
            test_method_comparison_rows ] ) ]
