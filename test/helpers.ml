(* Shared fixtures and drivers for the test suites. *)

open Nbsc_value
open Nbsc_storage
open Nbsc_txn
open Nbsc_core

let col = Schema.column

(* The running example: R(a,b,c) joined with S(c,d) on c — the shape of
   the paper's Figure 1 — and T(a,b,c,d) split back into R(a,b,c) and
   S(c,d) — the shape of Figure 3. *)

let r_schema =
  Schema.make ~key:[ "a" ]
    [ col ~nullable:false "a" Value.TInt; col "b" Value.TText;
      col "c" Value.TInt ]

let s_schema =
  Schema.make ~key:[ "c" ]
    [ col ~nullable:false "c" Value.TInt; col "d" Value.TText ]

let t_flat_schema =
  Schema.make ~key:[ "a" ]
    [ col ~nullable:false "a" Value.TInt; col "b" Value.TText;
      col "c" Value.TInt; col "d" Value.TText ]

let foj_spec =
  { Spec.r_table = "R";
    s_table = "S";
    t_table = "T";
    join_r = [ "c" ];
    join_s = [ "c" ];
    t_join = [ "c" ];
    r_carry = [ "a"; "b" ];
    s_carry = [ "d" ];
    many_to_many = false }

let split_spec ~assume_consistent =
  { Spec.t_table' = "T";
    r_table' = "R";
    s_table' = "S";
    r_cols = [ "a"; "b"; "c" ];
    s_cols = [ "c"; "d" ];
    split_key = [ "c" ];
    assume_consistent }

let ri a b c = Row.make [ Value.Int a; Value.Text b; Value.Int c ]
let si c d = Row.make [ Value.Int c; Value.Text d ]
let ti a b c d = Row.make [ Value.Int a; Value.Text b; Value.Int c; Value.Text d ]

let fresh_foj_db ~r_rows ~s_rows =
  let db = Db.create () in
  ignore (Db.create_table db ~name:"R" r_schema);
  ignore (Db.create_table db ~name:"S" s_schema);
  (match Db.load db ~table:"R" r_rows with
   | Ok () -> ()
   | Error e -> Alcotest.failf "load R: %a" Manager.pp_error e);
  (match Db.load db ~table:"S" s_rows with
   | Ok () -> ()
   | Error e -> Alcotest.failf "load S: %a" Manager.pp_error e);
  db

let fresh_split_db ~t_rows =
  let db = Db.create () in
  ignore (Db.create_table db ~name:"T" t_flat_schema);
  (match Db.load db ~table:"T" t_rows with
   | Ok () -> ()
   | Error e -> Alcotest.failf "load T: %a" Manager.pp_error e);
  db

(* Oracle: T must converge to the full outer join of the final R and S. *)
let foj_oracle db =
  let r = Db.snapshot db "R" and s = Db.snapshot db "S" in
  Nbsc_relalg.Relalg.full_outer_join
    { Nbsc_relalg.Relalg.r_join = [ "c" ];
      s_join = [ "c" ];
      out_join = [ "c" ];
      r_cols = [ "a"; "b" ];
      s_cols = [ "d" ];
      out_key = [ "a" ] }
    r s

let check_relations_equal msg expected actual =
  if not (Nbsc_relalg.Relalg.equal_as_sets expected actual) then begin
    let only_e, only_a = Nbsc_relalg.Relalg.diff_as_sets expected actual in
    Alcotest.failf "%s:@.only in expected: %s@.only in actual: %s" msg
      (String.concat "; " (List.map Row.to_string only_e))
      (String.concat "; " (List.map Row.to_string only_a))
  end

(* A deterministic workload driver: single-operation auto-committed
   transactions against the routed schema version. *)
type driver = {
  db : Db.t;
  rng : Random.State.t;
  mutable next_r_key : int;
  mutable next_s_key : int;
  mutable ops_done : int;
}

let driver ?(seed = 42) db =
  { db;
    rng = Random.State.make [| seed |];
    next_r_key = 1_000_000;
    next_s_key = 1_000_000;
    ops_done = 0 }

let existing_key d table =
  match Catalog.find_opt (Db.catalog d.db) table with
  | None -> None
  | Some tbl ->
    let n = Table.cardinality tbl in
    if n = 0 then None
    else begin
      let target = Random.State.int d.rng n in
      let i = ref 0 in
      let found = ref None in
      (try
         Table.iter tbl (fun key _ ->
             if !i = target then begin
               found := Some key;
               raise Exit
             end;
             incr i)
       with Exit -> ());
      !found
    end

let run_txn d f =
  let mgr = Db.manager d.db in
  let txn = Manager.begin_txn mgr in
  match f txn with
  | Ok () ->
    (match Manager.commit mgr txn with
     | Ok () ->
       d.ops_done <- d.ops_done + 1;
       true
     | Error _ ->
       ignore (Manager.abort mgr txn);
       false)
  | Error _ ->
    ignore (Manager.abort mgr txn);
    false

(* One random mutation against table R of the FOJ fixture. *)
let random_r_op d =
  let mgr = Db.manager d.db in
  ignore
    (run_txn d (fun txn ->
         match Random.State.int d.rng 4 with
         | 0 ->
           d.next_r_key <- d.next_r_key + 1;
           let c = Random.State.int d.rng 40 in
           Manager.insert mgr ~txn ~table:"R"
             (ri d.next_r_key ("u" ^ string_of_int d.next_r_key) c)
         | 1 ->
           (match existing_key d "R" with
            | Some key -> Manager.delete mgr ~txn ~table:"R" ~key
            | None -> Ok ())
         | 2 ->
           (* join-attribute update: the interesting rule 5 path *)
           (match existing_key d "R" with
            | Some key ->
              Manager.update mgr ~txn ~table:"R" ~key
                [ (2, Value.Int (Random.State.int d.rng 40)) ]
            | None -> Ok ())
         | _ ->
           (match existing_key d "R" with
            | Some key ->
              Manager.update mgr ~txn ~table:"R" ~key
                [ (1, Value.Text ("w" ^ string_of_int (Random.State.int d.rng 1000))) ]
            | None -> Ok ())))

let random_s_op d =
  let mgr = Db.manager d.db in
  ignore
    (run_txn d (fun txn ->
         match Random.State.int d.rng 4 with
         | 0 ->
           d.next_s_key <- d.next_s_key + 1;
           Manager.insert mgr ~txn ~table:"S"
             (si d.next_s_key ("v" ^ string_of_int d.next_s_key))
         | 1 ->
           (match existing_key d "S" with
            | Some key -> Manager.delete mgr ~txn ~table:"S" ~key
            | None -> Ok ())
         | _ ->
           (match existing_key d "S" with
            | Some key ->
              Manager.update mgr ~txn ~table:"S" ~key
                [ (1, Value.Text ("z" ^ string_of_int (Random.State.int d.rng 1000))) ]
            | None -> Ok ())))

(* One random mutation against the flat T of the split fixture.
   [consistent] keeps the c->d functional dependency intact by deriving
   d from c. *)
let city_of c = "city" ^ string_of_int c

let random_t_op ?(consistent = true) d =
  let mgr = Db.manager d.db in
  ignore
    (run_txn d (fun txn ->
         match Random.State.int d.rng 4 with
         | 0 ->
           d.next_r_key <- d.next_r_key + 1;
           let c = Random.State.int d.rng 40 in
           let dv =
             if consistent then city_of c
             else "noise" ^ string_of_int (Random.State.int d.rng 1000)
           in
           Manager.insert mgr ~txn ~table:"T"
             (ti d.next_r_key ("u" ^ string_of_int d.next_r_key) c dv)
         | 1 ->
           (match existing_key d "T" with
            | Some key -> Manager.delete mgr ~txn ~table:"T" ~key
            | None -> Ok ())
         | 2 ->
           (* split-attribute update, keeping or breaking the FD *)
           (match existing_key d "T" with
            | Some key ->
              let c = Random.State.int d.rng 40 in
              let changes =
                if consistent then
                  [ (2, Value.Int c); (3, Value.Text (city_of c)) ]
                else [ (2, Value.Int c) ]
              in
              Manager.update mgr ~txn ~table:"T" ~key changes
            | None -> Ok ())
         | _ ->
           (match existing_key d "T" with
            | Some key ->
              Manager.update mgr ~txn ~table:"T" ~key
                [ (1, Value.Text ("w" ^ string_of_int (Random.State.int d.rng 1000))) ]
            | None -> Ok ())))

let seed_rows ~r ~s =
  ( List.init r (fun i -> ri (i + 1) ("name" ^ string_of_int i) (i mod 17)),
    List.init s (fun i -> si i ("d" ^ string_of_int i)) )

let seed_t_rows ~n =
  List.init n (fun i ->
      let c = i mod 13 in
      ti (i + 1) ("name" ^ string_of_int i) c (city_of c))
