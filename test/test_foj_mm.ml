(* Tests for the many-to-many FOJ extension (paper Sec. 4.2): rule
   behaviour on fan-out states and end-to-end convergence under
   concurrent updates. *)

open Nbsc_value
open Nbsc_wal
open Nbsc_storage
open Nbsc_txn
open Nbsc_core
module LR = Log_record

(* person(pid, city) x store(sid, city, chain): join on city, where
   both sides repeat join values. *)
let r_schema =
  Schema.make ~key:[ "pid" ]
    [ Schema.column ~nullable:false "pid" Value.TInt;
      Schema.column "city" Value.TInt ]

let s_schema =
  Schema.make ~key:[ "sid" ]
    [ Schema.column ~nullable:false "sid" Value.TInt;
      Schema.column "city" Value.TInt; Schema.column "chain" Value.TText ]

let spec =
  { Spec.r_table = "P";
    s_table = "Q";
    t_table = "T";
    join_r = [ "city" ];
    join_s = [ "city" ];
    t_join = [ "city" ];
    r_carry = [ "pid" ];
    s_carry = [ "sid"; "chain" ];
    many_to_many = true }

let p pid city = Row.make [ Value.Int pid; Value.Int city ]
let q sid city chain = Row.make [ Value.Int sid; Value.Int city; Value.Text chain ]

let setup ~p_rows ~q_rows =
  let catalog = Catalog.create () in
  let r_tbl = Catalog.create_table catalog ~name:"P" r_schema in
  let s_tbl = Catalog.create_table catalog ~name:"Q" s_schema in
  List.iteri
    (fun i row -> ignore (Table.insert r_tbl ~lsn:(Lsn.of_int (i + 1)) row))
    p_rows;
  List.iteri
    (fun i row -> ignore (Table.insert s_tbl ~lsn:(Lsn.of_int (100 + i)) row))
    q_rows;
  let layout = Spec.foj_layout catalog spec in
  ignore
    (Catalog.create_table catalog
       ~indexes:(Spec.foj_t_indexes layout)
       ~name:"T" (Spec.foj_t_schema layout));
  let fj = Foj.create catalog layout in
  let pop = Population.foj fj ~r_tbl ~s_tbl in
  while not (Population.step pop ~limit:max_int) do () done;
  (catalog, fj)

(* T row layout: (city, pid, sid, chain). *)
let trow city pid sid chain =
  Row.make
    [ (match city with Some c -> Value.Int c | None -> Value.Null);
      (match pid with Some x -> Value.Int x | None -> Value.Null);
      (match sid with Some x -> Value.Int x | None -> Value.Null);
      (match chain with Some x -> Value.Text x | None -> Value.Null) ]

let t_rows catalog =
  Table.to_rows (Catalog.find catalog "T") |> List.sort Row.compare

let check_t catalog expected =
  let actual = t_rows catalog in
  let expected = List.sort Row.compare expected in
  if
    List.length actual <> List.length expected
    || not (List.for_all2 Row.equal expected actual)
  then
    Alcotest.failf "T mismatch:@.expected: %s@.actual:   %s"
      (String.concat "; " (List.map Row.to_string expected))
      (String.concat "; " (List.map Row.to_string actual))

let apply fj op = ignore (Foj_mm.apply fj ~lsn:(Lsn.of_int 9999) op)

let test_population_cross_product () =
  let catalog, _ =
    setup
      ~p_rows:[ p 1 5; p 2 5 ]
      ~q_rows:[ q 10 5 "A"; q 11 5 "B"; q 12 9 "C" ]
  in
  check_t catalog
    [ trow (Some 5) (Some 1) (Some 10) (Some "A");
      trow (Some 5) (Some 1) (Some 11) (Some "B");
      trow (Some 5) (Some 2) (Some 10) (Some "A");
      trow (Some 5) (Some 2) (Some 11) (Some "B");
      trow (Some 9) None (Some 12) (Some "C") ]

let test_insert_r_fans_out () =
  let catalog, fj = setup ~p_rows:[] ~q_rows:[ q 10 5 "A"; q 11 5 "B" ] in
  apply fj (LR.Insert { table = "P"; row = p 1 5 });
  check_t catalog
    [ trow (Some 5) (Some 1) (Some 10) (Some "A");
      trow (Some 5) (Some 1) (Some 11) (Some "B") ]

let test_insert_s_fans_out () =
  let catalog, fj = setup ~p_rows:[ p 1 5; p 2 5 ] ~q_rows:[ q 10 5 "A" ] in
  apply fj (LR.Insert { table = "Q"; row = q 11 5 "B" });
  check_t catalog
    [ trow (Some 5) (Some 1) (Some 10) (Some "A");
      trow (Some 5) (Some 1) (Some 11) (Some "B");
      trow (Some 5) (Some 2) (Some 10) (Some "A");
      trow (Some 5) (Some 2) (Some 11) (Some "B") ]

let test_delete_r_preserves_last_s_carrier () =
  let catalog, fj = setup ~p_rows:[ p 1 5 ] ~q_rows:[ q 10 5 "A"; q 11 5 "B" ] in
  apply fj
    (LR.Delete { table = "P"; key = Row.make [ Value.Int 1 ]; before = p 1 5 });
  check_t catalog
    [ trow (Some 5) None (Some 10) (Some "A");
      trow (Some 5) None (Some 11) (Some "B") ]

let test_delete_s_keeps_other_matches () =
  let catalog, fj = setup ~p_rows:[ p 1 5 ] ~q_rows:[ q 10 5 "A"; q 11 5 "B" ] in
  apply fj
    (LR.Delete
       { table = "Q"; key = Row.make [ Value.Int 10 ]; before = q 10 5 "A" });
  (* person 1 still matches store 11, so no null survivor for the
     person; store 10 is gone entirely. *)
  check_t catalog [ trow (Some 5) (Some 1) (Some 11) (Some "B") ]

let test_move_r_between_cities () =
  let catalog, fj =
    setup ~p_rows:[ p 1 5; p 2 5 ] ~q_rows:[ q 10 5 "A"; q 20 9 "C" ]
  in
  (* person 1 moves from city 5 to city 9. *)
  apply fj
    (LR.Update
       { table = "P";
         key = Row.make [ Value.Int 1 ];
         changes = [ (1, Value.Int 9) ];
         before = [ (1, Value.Int 5) ] });
  check_t catalog
    [ trow (Some 5) (Some 2) (Some 10) (Some "A");
      trow (Some 9) (Some 1) (Some 20) (Some "C") ]

let test_move_s_between_cities () =
  let catalog, fj =
    setup ~p_rows:[ p 1 5; p 2 9 ] ~q_rows:[ q 10 5 "A" ]
  in
  (* store 10 moves from city 5 to city 9. *)
  apply fj
    (LR.Update
       { table = "Q";
         key = Row.make [ Value.Int 10 ];
         changes = [ (1, Value.Int 9) ];
         before = [ (1, Value.Int 5) ] });
  check_t catalog
    [ trow (Some 5) (Some 1) None None;
      trow (Some 9) (Some 2) (Some 10) (Some "A") ]

let test_update_other_attr_all_carriers () =
  let catalog, fj = setup ~p_rows:[ p 1 5; p 2 5 ] ~q_rows:[ q 10 5 "A" ] in
  apply fj
    (LR.Update
       { table = "Q";
         key = Row.make [ Value.Int 10 ];
         changes = [ (2, Value.Text "A2") ];
         before = [ (2, Value.Text "A") ] });
  check_t catalog
    [ trow (Some 5) (Some 1) (Some 10) (Some "A2");
      trow (Some 5) (Some 2) (Some 10) (Some "A2") ]

(* End-to-end convergence through the full framework with concurrent
   random mutations. *)
let test_end_to_end_concurrent () =
  let db = Db.create () in
  ignore (Db.create_table db ~name:"P" r_schema);
  ignore (Db.create_table db ~name:"Q" s_schema);
  (match
     Db.load db ~table:"P" (List.init 60 (fun i -> p i (i mod 7)))
   with Ok () -> () | Error _ -> Alcotest.fail "load P");
  (match
     Db.load db ~table:"Q"
       (List.init 25 (fun i -> q i (i mod 7) ("c" ^ string_of_int i)))
   with Ok () -> () | Error _ -> Alcotest.fail "load Q");
  let config =
    { Transform.default_config with
      Transform.drop_sources = false;
      scan_batch = 5;
      propagate_batch = 5 }
  in
  let tf = Transform.foj db ~config spec in
  let mgr = Db.manager db in
  let rng = Random.State.make [| 31 |] in
  let budget = ref 200 in
  (match
     Transform.run tf ~between:(fun () ->
         if !budget > 0 && Transform.routing tf = `Sources then begin
           decr budget;
           let txn = Manager.begin_txn mgr in
           let outcome =
             match Random.State.int rng 4 with
             | 0 ->
               Manager.insert mgr ~txn ~table:"P"
                 (p (100 + !budget) (Random.State.int rng 9))
             | 1 ->
               Manager.update mgr ~txn ~table:"P"
                 ~key:(Row.make [ Value.Int (Random.State.int rng 60) ])
                 [ (1, Value.Int (Random.State.int rng 9)) ]
             | 2 ->
               Manager.update mgr ~txn ~table:"Q"
                 ~key:(Row.make [ Value.Int (Random.State.int rng 25) ])
                 [ (1, Value.Int (Random.State.int rng 9)) ]
             | _ ->
               Manager.delete mgr ~txn ~table:"P"
                 ~key:(Row.make [ Value.Int (Random.State.int rng 60) ])
           in
           match outcome with
           | Ok () -> ignore (Manager.commit mgr txn)
           | Error _ -> ignore (Manager.abort mgr txn)
         end)
   with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  let oracle =
    Nbsc_relalg.Relalg.full_outer_join
      { Nbsc_relalg.Relalg.r_join = [ "city" ]; s_join = [ "city" ];
        out_join = [ "city" ]; r_cols = [ "pid" ];
        s_cols = [ "sid"; "chain" ]; out_key = [ "pid"; "sid" ] }
      (Db.snapshot db "P") (Db.snapshot db "Q")
  in
  if not (Nbsc_relalg.Relalg.equal_as_sets oracle (Db.snapshot db "T")) then begin
    let only_e, only_a =
      Nbsc_relalg.Relalg.diff_as_sets oracle (Db.snapshot db "T")
    in
    Alcotest.failf "m2m divergence:@.only oracle: %s@.only T: %s"
      (String.concat "; " (List.map Row.to_string only_e))
      (String.concat "; " (List.map Row.to_string only_a))
  end

let () =
  Alcotest.run "foj_mm"
    [ ( "rules",
        [ Alcotest.test_case "population cross product" `Quick
            test_population_cross_product;
          Alcotest.test_case "insert R fans out" `Quick test_insert_r_fans_out;
          Alcotest.test_case "insert S fans out" `Quick test_insert_s_fans_out;
          Alcotest.test_case "delete R preserves S carriers" `Quick
            test_delete_r_preserves_last_s_carrier;
          Alcotest.test_case "delete S keeps other matches" `Quick
            test_delete_s_keeps_other_matches;
          Alcotest.test_case "move R between cities" `Quick
            test_move_r_between_cities;
          Alcotest.test_case "move S between cities" `Quick
            test_move_s_between_cities;
          Alcotest.test_case "update other attr" `Quick
            test_update_other_attr_all_carriers ] );
      ( "end-to-end",
        [ Alcotest.test_case "concurrent convergence" `Quick
            test_end_to_end_concurrent ] ) ]
