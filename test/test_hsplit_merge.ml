(* Tests for the extension operators (paper conclusion: "methods for
   other relational operators should also be developed"): horizontal
   split by predicate and merge (union). *)

open Nbsc_value
open Nbsc_storage
open Nbsc_txn
open Nbsc_core
module H = Helpers

let ok name = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" name Manager.pp_error e

let cfg =
  { Transform.default_config with
    Transform.scan_batch = 7;
    propagate_batch = 5;
    drop_sources = false }

(* Orders table: (a = order id, b = status text, c = age in days). *)
let hspec =
  { Spec.h_source = "T";
    h_true_table = "archive";
    h_false_table = "live";
    h_pred = Pred.Cmp ("c", Pred.Gt, Value.Int 30) }

let oracle_split db =
  let t = Db.snapshot db "T" in
  let p = Pred.compile H.t_flat_schema (Pred.Cmp ("c", Pred.Gt, Value.Int 30)) in
  ( Nbsc_relalg.Relalg.select t p,
    Nbsc_relalg.Relalg.select t (fun row -> not (p row)) )

let test_hsplit_quiet () =
  let db = H.fresh_split_db ~t_rows:(H.seed_t_rows ~n:60) in
  let tf = Transform.hsplit db ~config:cfg hspec in
  (match Transform.run tf with Ok () -> () | Error m -> Alcotest.fail m);
  let want_arch, want_live = oracle_split db in
  H.check_relations_equal "archive" want_arch (Db.snapshot db "archive");
  H.check_relations_equal "live" want_live (Db.snapshot db "live");
  Alcotest.(check int) "partition is total"
    (Db.row_count db "T")
    (Db.row_count db "archive" + Db.row_count db "live")

let test_hsplit_concurrent_with_migration () =
  let db = H.fresh_split_db ~t_rows:(H.seed_t_rows ~n:80) in
  let mgr = Db.manager db in
  let rng = Random.State.make [| 5 |] in
  let tf = Transform.hsplit db ~config:cfg hspec in
  let budget = ref 250 in
  (match
     Transform.run tf ~between:(fun () ->
         if !budget > 0 && Transform.routing tf = `Sources then begin
           decr budget;
           let txn = Manager.begin_txn mgr in
           let a = 1 + Random.State.int rng 80 in
           let outcome =
             match Random.State.int rng 3 with
             | 0 ->
               (* age update that can flip the predicate *)
               Manager.update mgr ~txn ~table:"T"
                 ~key:(Row.make [ Value.Int a ])
                 [ (2, Value.Int (Random.State.int rng 60)) ]
             | 1 ->
               Manager.insert mgr ~txn ~table:"T"
                 (H.ti (1000 + !budget) "new" (Random.State.int rng 60) "x")
             | _ ->
               Manager.delete mgr ~txn ~table:"T" ~key:(Row.make [ Value.Int a ])
           in
           match outcome with
           | Ok () -> ignore (Manager.commit mgr txn)
           | Error _ -> ignore (Manager.abort mgr txn)
         end)
   with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  let want_arch, want_live = oracle_split db in
  H.check_relations_equal "archive" want_arch (Db.snapshot db "archive");
  H.check_relations_equal "live" want_live (Db.snapshot db "live");
  Alcotest.(check bool) "some rows migrated" true
    (List.assoc "migrations" (Transform.counters tf) > 0)

let test_hsplit_null_predicate_routing () =
  (* NULL ages fail the comparison, so they land in "live" — and
     Is_null can route them explicitly. *)
  let rows = [ H.ti 1 "a" 50 "x"; Row.make [ Value.Int 2; Value.Text "b"; Value.Null; Value.Text "y" ] ] in
  let db = H.fresh_split_db ~t_rows:rows in
  let tf = Transform.hsplit db ~config:cfg hspec in
  (match Transform.run tf with Ok () -> () | Error m -> Alcotest.fail m);
  Alcotest.(check int) "archive has the old row" 1 (Db.row_count db "archive");
  Alcotest.(check int) "live holds the NULL row" 1 (Db.row_count db "live")

(* {1 Merge} *)

let fresh_merge_db () =
  let db = Db.create () in
  ignore (Db.create_table db ~name:"A" H.t_flat_schema);
  ignore (Db.create_table db ~name:"B" H.t_flat_schema);
  ok "load A"
    (Db.load db ~table:"A" (List.init 30 (fun i -> H.ti i "a" (i mod 5) "x")));
  ok "load B"
    (Db.load db ~table:"B"
       (List.init 20 (fun i -> H.ti (100 + i) "b" (i mod 5) "y")));
  db

let mspec = { Spec.m_sources = [ "A"; "B" ]; m_target = "AB" }

let test_merge_quiet () =
  let db = fresh_merge_db () in
  let tf = Transform.merge db ~config:cfg mspec in
  (match Transform.run tf with Ok () -> () | Error m -> Alcotest.fail m);
  Alcotest.(check int) "union size" 50 (Db.row_count db "AB");
  let a = Db.snapshot db "A" and b = Db.snapshot db "B" in
  let want =
    Nbsc_relalg.Relalg.make H.t_flat_schema
      (a.Nbsc_relalg.Relalg.rows @ b.Nbsc_relalg.Relalg.rows)
  in
  H.check_relations_equal "AB = A union B" want (Db.snapshot db "AB")

let test_merge_concurrent () =
  let db = fresh_merge_db () in
  let mgr = Db.manager db in
  let rng = Random.State.make [| 9 |] in
  let tf = Transform.merge db ~config:cfg mspec in
  let budget = ref 200 in
  (match
     Transform.run tf ~between:(fun () ->
         if !budget > 0 && Transform.routing tf = `Sources then begin
           decr budget;
           let txn = Manager.begin_txn mgr in
           let table = if Random.State.bool rng then "A" else "B" in
           let base = if table = "A" then 0 else 100 in
           let outcome =
             match Random.State.int rng 3 with
             | 0 ->
               Manager.insert mgr ~txn ~table
                 (H.ti (base + 500 + !budget) "new" 1 "z")
             | 1 ->
               Manager.update mgr ~txn ~table
                 ~key:(Row.make [ Value.Int (base + Random.State.int rng 30) ])
                 [ (1, Value.Text ("w" ^ string_of_int !budget)) ]
             | _ ->
               Manager.delete mgr ~txn ~table
                 ~key:(Row.make [ Value.Int (base + Random.State.int rng 30) ])
           in
           match outcome with
           | Ok () -> ignore (Manager.commit mgr txn)
           | Error _ -> ignore (Manager.abort mgr txn)
         end)
   with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  let a = Db.snapshot db "A" and b = Db.snapshot db "B" in
  let want =
    Nbsc_relalg.Relalg.make H.t_flat_schema
      (a.Nbsc_relalg.Relalg.rows @ b.Nbsc_relalg.Relalg.rows)
  in
  H.check_relations_equal "AB converges" want (Db.snapshot db "AB")

let test_merge_collision_lww () =
  (* Overlapping keys: the higher-LSN source row wins. *)
  let db = Db.create () in
  ignore (Db.create_table db ~name:"A" H.t_flat_schema);
  ignore (Db.create_table db ~name:"B" H.t_flat_schema);
  ok "a" (Db.load db ~table:"A" [ H.ti 1 "old" 1 "x" ]);
  ok "b" (Db.load db ~table:"B" [ H.ti 1 "newer" 2 "y" ]);
  let tf = Transform.merge db ~config:cfg mspec in
  (match Transform.run tf with Ok () -> () | Error m -> Alcotest.fail m);
  Alcotest.(check int) "one row" 1 (Db.row_count db "AB");
  let ab = Db.table db "AB" in
  let r = Option.get (Table.find ab (Row.make [ Value.Int 1 ])) in
  Alcotest.(check bool) "later write wins" true
    (Value.equal (Row.get r.Record.row 1) (Value.Text "newer"));
  Alcotest.(check bool) "collision counted" true
    (List.assoc "collisions" (Transform.counters tf) > 0)

(* Idempotence: like the FOJ rules, replaying any logged operation a
   second time must leave the targets unchanged (LSN discipline). *)
let prop_hsplit_rules_idempotent =
  QCheck.Test.make ~name:"hsplit rules are idempotent" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 10) (pair (int_bound 8) (int_bound 60)))
              (int_bound 2))
    (fun (ops, _) ->
       let catalog = Catalog.create () in
       let t_tbl = Catalog.create_table catalog ~name:"T" H.t_flat_schema in
       List.iteri
         (fun i (a, c) ->
            ignore
              (Table.insert t_tbl
                 ~lsn:(Nbsc_wal.Lsn.of_int (i + 1))
                 (H.ti a "seed" c "x")))
         ops;
       let layout = Spec.hsplit_layout catalog hspec in
       ignore (Catalog.create_table catalog ~name:"archive" layout.Spec.h_schema);
       ignore (Catalog.create_table catalog ~name:"live" layout.Spec.h_schema);
       let hs = Hsplit.create catalog layout in
       Table.iter t_tbl (fun _ r -> Hsplit.ingest_initial hs r);
       let image () =
         Table.to_rows (Catalog.find catalog "archive")
         @ Table.to_rows (Catalog.find catalog "live")
         |> List.sort Row.compare
       in
       List.for_all
         (fun (a, c) ->
            let op =
              Nbsc_wal.Log_record.Update
                { table = "T";
                  key = Row.make [ Value.Int a ];
                  changes = [ (2, Value.Int c) ];
                  before = [] }
            in
            ignore (Hsplit.apply hs ~lsn:(Nbsc_wal.Lsn.of_int 1000) op);
            let once = image () in
            ignore (Hsplit.apply hs ~lsn:(Nbsc_wal.Lsn.of_int 1000) op);
            once = image ())
         ops)

(* Round trip: hsplit then merge restores the original table. *)
let prop_hsplit_merge_roundtrip =
  QCheck.Test.make ~name:"hsplit then merge is identity" ~count:40
    QCheck.(pair small_nat (int_range 5 50))
    (fun (seed, n) ->
       let db = H.fresh_split_db ~t_rows:(H.seed_t_rows ~n) in
       let before = Db.snapshot db "T" in
       let tf1 =
         Transform.hsplit db
           ~config:{ cfg with Transform.drop_sources = true }
           hspec
       in
       let d = H.driver ~seed db in
       let budget = ref 30 in
       (match
          Transform.run tf1 ~between:(fun () ->
              if !budget > 0 && Transform.routing tf1 = `Sources then begin
                decr budget;
                H.random_t_op ~consistent:true d
              end)
        with
        | Ok () -> ()
        | Error m -> QCheck.Test.fail_reportf "hsplit: %s" m);
       ignore before;
       let want =
         Nbsc_relalg.Relalg.make H.t_flat_schema
           ((Db.snapshot db "archive").Nbsc_relalg.Relalg.rows
            @ (Db.snapshot db "live").Nbsc_relalg.Relalg.rows)
       in
       let tf2 =
         Transform.merge db
           ~config:{ cfg with Transform.drop_sources = true }
           { Spec.m_sources = [ "archive"; "live" ]; m_target = "T2" }
       in
       (match Transform.run tf2 with
        | Ok () -> ()
        | Error m -> QCheck.Test.fail_reportf "merge: %s" m);
       Nbsc_relalg.Relalg.equal_as_sets want (Db.snapshot db "T2"))

let () =
  Alcotest.run "hsplit_merge"
    [ ( "hsplit",
        [ Alcotest.test_case "quiet" `Quick test_hsplit_quiet;
          Alcotest.test_case "concurrent with migration" `Quick
            test_hsplit_concurrent_with_migration;
          Alcotest.test_case "NULL routing" `Quick
            test_hsplit_null_predicate_routing ] );
      ( "merge",
        [ Alcotest.test_case "quiet" `Quick test_merge_quiet;
          Alcotest.test_case "concurrent" `Quick test_merge_concurrent;
          Alcotest.test_case "collision last-writer-wins" `Quick
            test_merge_collision_lww ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_hsplit_merge_roundtrip; prop_hsplit_rules_idempotent ] ) ]
