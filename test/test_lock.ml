(* Tests for the lock manager: compatibility (incl. the paper's
   Figure 2 matrix), the record-lock table, atomic multi-acquisition,
   and table latches. *)

open Nbsc_value
open Nbsc_lock

let native m = { Compat.mode = m; provenance = Compat.Native }
let source i m = { Compat.mode = m; provenance = Compat.Source i }
let k i = Row.make [ Value.Int i ]

(* {1 Compatibility} *)

let test_standard_matrix () =
  Alcotest.(check bool) "S/S" true (Compat.standard Compat.S Compat.S);
  Alcotest.(check bool) "S/X" false (Compat.standard Compat.S Compat.X);
  Alcotest.(check bool) "X/S" false (Compat.standard Compat.X Compat.S);
  Alcotest.(check bool) "X/X" false (Compat.standard Compat.X Compat.X)

let test_figure2_exact () =
  (* Row-major matrix as printed in the paper. *)
  let expected =
    [ [ true; true; true; true; true; false ];
      [ true; true; true; true; true; false ];
      [ true; true; true; false; false; false ];
      [ true; true; false; true; true; false ];
      [ true; true; false; true; true; false ];
      [ false; false; false; false; false; false ] ]
  in
  Alcotest.(check bool) "all 36 cells" true (Compat.figure2_cells () = expected)

let test_figure2_symmetric () =
  let cells = Compat.figure2_cells () in
  List.iteri
    (fun i row ->
       List.iteri
         (fun j cell ->
            Alcotest.(check bool)
              (Printf.sprintf "cell %d,%d symmetric" i j)
              cell
              (List.nth (List.nth cells j) i))
         row)
    cells

let test_transferred_always_compatible () =
  (* Locks transferred from different sources never conflict, whatever
     their modes — their conflicts were resolved at the source. *)
  List.iter
    (fun (a, b) ->
       Alcotest.(check bool) "source vs source" true (Compat.compatible a b))
    [ (source 0 Compat.X, source 1 Compat.X);
      (source 0 Compat.X, source 0 Compat.X);
      (source 1 Compat.S, source 0 Compat.X);
      (source 5 Compat.X, source 9 Compat.X) ]

(* {1 Lock table} *)

let test_grant_conflict () =
  let t = Lock_table.create () in
  Alcotest.(check bool) "first X granted" true
    (Lock_table.acquire t ~owner:1 ~table:"a" ~key:(k 1) (native Compat.X)
     = Lock_table.Granted);
  (match Lock_table.acquire t ~owner:2 ~table:"a" ~key:(k 1) (native Compat.X) with
   | Lock_table.Blocked [ 1 ] -> ()
   | _ -> Alcotest.fail "expected Blocked [1]");
  (* Different key, no conflict. *)
  Alcotest.(check bool) "other key" true
    (Lock_table.acquire t ~owner:2 ~table:"a" ~key:(k 2) (native Compat.X)
     = Lock_table.Granted);
  (* Different table, same key, no conflict. *)
  Alcotest.(check bool) "other table" true
    (Lock_table.acquire t ~owner:2 ~table:"b" ~key:(k 1) (native Compat.X)
     = Lock_table.Granted)

let test_shared_then_upgrade () =
  let t = Lock_table.create () in
  ignore (Lock_table.acquire t ~owner:1 ~table:"a" ~key:(k 1) (native Compat.S));
  ignore (Lock_table.acquire t ~owner:2 ~table:"a" ~key:(k 1) (native Compat.S));
  (* Upgrade blocked by the other reader. *)
  (match Lock_table.acquire t ~owner:1 ~table:"a" ~key:(k 1) (native Compat.X) with
   | Lock_table.Blocked [ 2 ] -> ()
   | _ -> Alcotest.fail "upgrade should block on owner 2");
  Lock_table.release t ~owner:2 ~table:"a" ~key:(k 1);
  Alcotest.(check bool) "upgrade after release" true
    (Lock_table.acquire t ~owner:1 ~table:"a" ~key:(k 1) (native Compat.X)
     = Lock_table.Granted);
  Alcotest.(check bool) "holds X" true
    (Lock_table.holds t ~owner:1 ~table:"a" ~key:(k 1) (native Compat.X));
  Alcotest.(check bool) "X implies S" true
    (Lock_table.holds t ~owner:1 ~table:"a" ~key:(k 1) (native Compat.S))

let test_reentrant () =
  let t = Lock_table.create () in
  ignore (Lock_table.acquire t ~owner:1 ~table:"a" ~key:(k 1) (native Compat.X));
  Alcotest.(check bool) "re-acquire X" true
    (Lock_table.acquire t ~owner:1 ~table:"a" ~key:(k 1) (native Compat.X)
     = Lock_table.Granted);
  Alcotest.(check bool) "weaker S is no-op" true
    (Lock_table.acquire t ~owner:1 ~table:"a" ~key:(k 1) (native Compat.S)
     = Lock_table.Granted);
  Alcotest.(check int) "one lock" 1 (Lock_table.count t)

let test_release_owner () =
  let t = Lock_table.create () in
  ignore (Lock_table.acquire t ~owner:1 ~table:"a" ~key:(k 1) (native Compat.X));
  ignore (Lock_table.acquire t ~owner:1 ~table:"b" ~key:(k 2) (native Compat.S));
  ignore (Lock_table.acquire t ~owner:2 ~table:"a" ~key:(k 3) (native Compat.X));
  Lock_table.release_owner t ~owner:1;
  Alcotest.(check int) "only owner 2 left" 1 (Lock_table.count t);
  Alcotest.(check (list string)) "owner 1 has nothing" []
    (List.map (fun (t, _, _) -> t) (Lock_table.locks_of_owner t ~owner:1))

let test_release_owner_where () =
  let t = Lock_table.create () in
  ignore (Lock_table.acquire t ~owner:1 ~table:"T" ~key:(k 1) (source 0 Compat.X));
  ignore (Lock_table.acquire t ~owner:1 ~table:"R" ~key:(k 1) (native Compat.X));
  (* Release only the transferred lock on T (what the propagator does on
     a commit record). *)
  Lock_table.release_owner_where t ~owner:1 (fun ~table ~lock ->
      table = "T" && lock.Compat.provenance <> Compat.Native);
  Alcotest.(check int) "native lock survives" 1 (Lock_table.count t);
  Alcotest.(check bool) "still holds R lock" true
    (Lock_table.holds t ~owner:1 ~table:"R" ~key:(k 1) (native Compat.X));
  (* The bookkeeping still releases the remaining lock wholesale. *)
  Lock_table.release_owner t ~owner:1;
  Alcotest.(check int) "empty" 0 (Lock_table.count t)

let test_transfer_unconditional () =
  let t = Lock_table.create () in
  ignore (Lock_table.acquire t ~owner:1 ~table:"T" ~key:(k 1) (native Compat.X));
  (* A transfer succeeds even against a conflicting native lock. *)
  Alcotest.(check bool) "adds coverage" true
    (Lock_table.transfer t ~owner:2 ~table:"T" ~key:(k 1) (source 0 Compat.X));
  (* Re-transferring the same lock adds nothing. *)
  Alcotest.(check bool) "idempotent" false
    (Lock_table.transfer t ~owner:2 ~table:"T" ~key:(k 1) (source 0 Compat.X));
  Alcotest.(check int) "both present" 2
    (List.length (Lock_table.holders t ~table:"T" ~key:(k 1)))

let test_figure2_through_table () =
  (* End-to-end through the lock table: transferred locks from R and S
     coexist on the same T record; a native writer is shut out until
     they are released. *)
  let t = Lock_table.create () in
  ignore (Lock_table.acquire t ~owner:1 ~table:"T" ~key:(k 9) (source 0 Compat.X));
  Alcotest.(check bool) "S-transferred write joins" true
    (Lock_table.acquire t ~owner:2 ~table:"T" ~key:(k 9) (source 1 Compat.X)
     = Lock_table.Granted);
  (match Lock_table.acquire t ~owner:3 ~table:"T" ~key:(k 9) (native Compat.S) with
   | Lock_table.Blocked owners ->
     Alcotest.(check (list int)) "blocked by both" [ 1; 2 ]
       (List.sort compare owners)
   | Lock_table.Granted -> Alcotest.fail "native read must block");
  Lock_table.release_owner t ~owner:1;
  Lock_table.release_owner t ~owner:2;
  Alcotest.(check bool) "native read after releases" true
    (Lock_table.acquire t ~owner:3 ~table:"T" ~key:(k 9) (native Compat.S)
     = Lock_table.Granted)

let test_acquire_all_atomic () =
  let t = Lock_table.create () in
  ignore (Lock_table.acquire t ~owner:9 ~table:"b" ~key:(k 2) (native Compat.X));
  let requests =
    [ { Lock_table_many.table = "a"; key = k 1; lock = native Compat.X };
      { Lock_table_many.table = "b"; key = k 2; lock = native Compat.X } ]
  in
  (match Lock_table_many.acquire_all t ~owner:1 requests with
   | Lock_table.Blocked [ 9 ] -> ()
   | _ -> Alcotest.fail "expected Blocked [9]");
  (* Nothing was granted — atomicity. *)
  Alcotest.(check (list string)) "no partial grant" []
    (List.map (fun (t, _, _) -> t) (Lock_table.locks_of_owner t ~owner:1));
  Lock_table.release_owner t ~owner:9;
  Alcotest.(check bool) "now granted" true
    (Lock_table_many.acquire_all t ~owner:1 requests = Lock_table.Granted);
  Alcotest.(check int) "both held" 2
    (List.length (Lock_table.locks_of_owner t ~owner:1))

let test_locked_resources () =
  let t = Lock_table.create () in
  ignore (Lock_table.acquire t ~owner:1 ~table:"a" ~key:(k 1) (native Compat.X));
  ignore (Lock_table.acquire t ~owner:2 ~table:"a" ~key:(k 2) (native Compat.S));
  ignore (Lock_table.acquire t ~owner:3 ~table:"b" ~key:(k 3) (native Compat.X));
  Alcotest.(check int) "two on a" 2
    (List.length (Lock_table.locked_resources t ~table:"a"));
  Alcotest.(check int) "one on b" 1
    (List.length (Lock_table.locked_resources t ~table:"b"))

(* {1 Latches} *)

let test_latches () =
  let t = Latch.create () in
  Alcotest.(check bool) "acquire" true (Latch.try_latch t ~holder:1 ~table:"x");
  Alcotest.(check bool) "reentrant" true (Latch.try_latch t ~holder:1 ~table:"x");
  Alcotest.(check bool) "other holder fails" false
    (Latch.try_latch t ~holder:2 ~table:"x");
  Alcotest.(check bool) "latched" true (Latch.is_latched t ~table:"x");
  Alcotest.(check bool) "holder" true (Latch.latched_by t ~table:"x" = Some 1);
  Alcotest.(check (list string)) "tables of holder" [ "x" ]
    (Latch.latched_tables t ~holder:1);
  Latch.unlatch t ~holder:1 ~table:"x";
  Alcotest.(check bool) "free again" true (Latch.try_latch t ~holder:2 ~table:"x");
  Alcotest.check_raises "wrong holder unlatch" (Invalid_argument "")
    (fun () ->
       try Latch.unlatch t ~holder:1 ~table:"x"
       with Invalid_argument _ -> raise (Invalid_argument ""))

(* {1 Properties} *)

let arb_lock =
  QCheck.make
    QCheck.Gen.(
      map2
        (fun m p ->
           { Compat.mode = (if m then Compat.S else Compat.X);
             provenance = (match p with 0 -> Compat.Native | i -> Compat.Source i) })
        bool (int_bound 3))

let prop_compat_symmetric =
  QCheck.Test.make ~name:"compatibility is symmetric" ~count:500
    (QCheck.pair arb_lock arb_lock)
    (fun (a, b) -> Compat.compatible a b = Compat.compatible b a)

let prop_acquire_release_invariant =
  (* After any sequence of acquires and releases, count equals the
     number of (owner, resource, provenance) triples still held. *)
  QCheck.Test.make ~name:"lock count is consistent" ~count:200
    QCheck.(list_of_size Gen.(int_bound 60)
              (triple (int_bound 4) (int_bound 6) bool))
    (fun ops ->
       let t = Lock_table.create () in
       let held = Hashtbl.create 16 in
       List.iter
         (fun (owner, key_i, is_release) ->
            let key = k key_i in
            if is_release then begin
              Lock_table.release t ~owner ~table:"t" ~key;
              Hashtbl.remove held (owner, key_i)
            end
            else
              match
                Lock_table.acquire t ~owner ~table:"t" ~key (native Compat.X)
              with
              | Lock_table.Granted -> Hashtbl.replace held (owner, key_i) ()
              | Lock_table.Blocked _ -> ())
         ops;
       Lock_table.count t = Hashtbl.length held)

let () =
  Alcotest.run "lock"
    [ ( "compat",
        [ Alcotest.test_case "standard S/X" `Quick test_standard_matrix;
          Alcotest.test_case "figure 2 exact" `Quick test_figure2_exact;
          Alcotest.test_case "figure 2 symmetric" `Quick test_figure2_symmetric;
          Alcotest.test_case "transferred compatible" `Quick
            test_transferred_always_compatible ] );
      ( "table",
        [ Alcotest.test_case "grant and conflict" `Quick test_grant_conflict;
          Alcotest.test_case "shared + upgrade" `Quick test_shared_then_upgrade;
          Alcotest.test_case "reentrant" `Quick test_reentrant;
          Alcotest.test_case "release owner" `Quick test_release_owner;
          Alcotest.test_case "selective release" `Quick test_release_owner_where;
          Alcotest.test_case "unconditional transfer" `Quick
            test_transfer_unconditional;
          Alcotest.test_case "figure 2 end-to-end" `Quick
            test_figure2_through_table;
          Alcotest.test_case "atomic multi-acquire" `Quick
            test_acquire_all_atomic;
          Alcotest.test_case "locked resources" `Quick test_locked_resources ] );
      ("latch", [ Alcotest.test_case "latches" `Quick test_latches ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_compat_symmetric; prop_acquire_release_invariant ] ) ]
