(* The generic quantum executor: several transformations in flight at
   once, driven round-robin through the Db job registry while user
   transactions commit throughout; and the pluggable Transformation.S
   contract exercised with an operator the executor has never heard
   of. *)

open Nbsc_value
open Nbsc_wal
open Nbsc_storage
open Nbsc_txn
open Nbsc_core
module H = Helpers

let ok name = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" name Manager.pp_error e

(* propagate_batch must outpace the per-round log growth of the user
   traffic below, or neither transformation ever catches up. *)
let cfg =
  { Transform.default_config with
    Transform.scan_batch = 7;
    propagate_batch = 32;
    drop_sources = false }

(* {1 Two concurrent transformations through the job registry} *)

let u_pred = Pred.Cmp ("c", Pred.Gt, Value.Int 30)

let u_hspec =
  { Spec.h_source = "U";
    h_true_table = "U_arch";
    h_false_table = "U_live";
    h_pred = u_pred }

(* R/S for the FOJ plus an unrelated flat table U for the hsplit. *)
let fresh_two_tf_db () =
  let r_rows, s_rows = H.seed_rows ~r:60 ~s:12 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  ignore (Db.create_table db ~name:"U" H.t_flat_schema);
  ok "load U"
    (Db.load db ~table:"U"
       (List.init 70 (fun i ->
            H.ti (i + 1) ("u" ^ string_of_int i) (i mod 60) "x")));
  db

let random_u_op db rng ~budget =
  let mgr = Db.manager db in
  let txn = Manager.begin_txn mgr in
  let outcome =
    match Random.State.int rng 3 with
    | 0 ->
      (* age update that can flip the predicate *)
      Manager.update mgr ~txn ~table:"U"
        ~key:(Row.make [ Value.Int (1 + Random.State.int rng 70) ])
        [ (2, Value.Int (Random.State.int rng 60)) ]
    | 1 ->
      Manager.insert mgr ~txn ~table:"U"
        (H.ti (2000 + budget) "new" (Random.State.int rng 60) "y")
    | _ ->
      Manager.delete mgr ~txn ~table:"U"
        ~key:(Row.make [ Value.Int (1 + Random.State.int rng 70) ])
  in
  match outcome with
  | Ok () -> (match Manager.commit mgr txn with Ok () -> true | Error _ -> false)
  | Error _ ->
    ignore (Manager.abort mgr txn);
    false

let test_concurrent_foj_and_hsplit () =
  let db = fresh_two_tf_db () in
  let foj_tf = Transform.foj db ~config:cfg H.foj_spec in
  let hs_tf = Transform.hsplit db ~config:cfg u_hspec in
  Alcotest.(check (list string))
    "both registered"
    [ Transform.job_name foj_tf; Transform.job_name hs_tf ]
    (Db.jobs db);
  let d = H.driver db in
  let rng = Random.State.make [| 17 |] in
  let u_commits = ref 0 and rounds = ref 0 in
  let between () =
    incr rounds;
    (* One user transaction per scheduler round, cycling over the
       tables, gated on each transformation's own routing — exactly
       what a client library would do. *)
    match !rounds mod 3 with
    | 0 when Transform.routing foj_tf = `Sources -> H.random_r_op d
    | 1 when Transform.routing foj_tf = `Sources -> H.random_s_op d
    | 2 when Transform.routing hs_tf = `Sources ->
      if random_u_op db rng ~budget:!rounds then incr u_commits
    | _ -> ()
  in
  (match Db.run_jobs ~between db with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  Alcotest.(check bool) "foj done" true (Transform.phase foj_tf = Transform.Done);
  Alcotest.(check bool) "hsplit done" true (Transform.phase hs_tf = Transform.Done);
  Alcotest.(check (list string)) "registry drained" [] (Db.jobs db);
  (* User transactions committed while both transformations ran. *)
  Alcotest.(check bool) "R/S traffic committed" true (d.H.ops_done > 0);
  Alcotest.(check bool) "U traffic committed" true (!u_commits > 0);
  (* Both reached their oracles despite the interleaving. *)
  H.check_relations_equal "T converged" (H.foj_oracle db) (Db.snapshot db "T");
  let u = Db.snapshot db "U" in
  let p = Pred.compile H.t_flat_schema u_pred in
  H.check_relations_equal "U_arch converged"
    (Nbsc_relalg.Relalg.select u p)
    (Db.snapshot db "U_arch");
  H.check_relations_equal "U_live converged"
    (Nbsc_relalg.Relalg.select u (fun row -> not (p row)))
    (Db.snapshot db "U_live")

(* {1 A custom operator through the pluggable interface}

   A table copy: not one of the four built-in operators, implemented
   directly against Transformation.S (Population.make for the scan,
   LSN-disciplined redo rules) and run by the unmodified executor. *)

let copy_operator db ~source ~target =
  let catalog = Db.catalog db in
  let src_tbl = Catalog.find catalog source in
  ignore (Catalog.create_table catalog ~name:target (Table.schema src_tbl));
  let tgt_tbl = Catalog.find catalog target in
  let applied = ref 0 and ignored = ref 0 in
  let ingest (r : Record.t) =
    match Table.insert tgt_tbl ~lsn:r.Record.lsn r.Record.row with
    | Ok () -> ()
    | Error `Duplicate_key -> ()
  in
  let apply ~lsn (op : Log_record.op) =
    if not (String.equal (Log_record.op_table op) source) then []
    else
      match op with
      | Log_record.Insert { row; _ } ->
        let key = Table.key_of_row tgt_tbl row in
        (match Table.find tgt_tbl key with
         | Some _ -> incr ignored
         | None ->
           incr applied;
           (match Table.insert tgt_tbl ~lsn row with
            | Ok () -> ()
            | Error `Duplicate_key -> assert false));
        [ (target, key) ]
      | Log_record.Delete { key; _ } ->
        (match Table.find tgt_tbl key with
         | Some r when Lsn.(r.Record.lsn >= lsn) ->
           incr ignored;
           [ (target, key) ]
         | Some _ ->
           incr applied;
           ignore (Table.delete tgt_tbl ~lsn key);
           [ (target, key) ]
         | None ->
           incr ignored;
           [])
      | Log_record.Update { key; changes; _ } ->
        (match Table.find tgt_tbl key with
         | Some r when Lsn.(r.Record.lsn >= lsn) ->
           incr ignored;
           [ (target, key) ]
         | Some _ ->
           incr applied;
           ignore (Table.update tgt_tbl ~lsn ~key changes);
           [ (target, key) ]
         | None ->
           incr ignored;
           [])
  in
  let hook_log = ref [] in
  let note tag () = hook_log := tag :: !hook_log in
  ( (module struct
      let name = "copy"
      let sources = [ source ]
      let targets = [ target ]
      let spec_payload = None
      let population = Population.scan_one src_tbl ~ingest
      let rules =
        Propagator.rules ~sources:[ source ] ~targets:[ target ] ~apply ()
      let lock_map =
        { Transformation.source_to_targets =
            (fun ~table:_ ~key -> [ (target, key) ]);
          target_to_sources = (fun ~table:_ ~key -> [ (source, key) ]) }
      let consistency = None
      let unknown_flags () = 0
      let counters () = [ ("applied", !applied); ("ignored", !ignored) ]
      let sync_hooks =
        { Transformation.before_switch = note `Before;
          after_switch = note `After;
          on_done = note `Done }
    end : Transformation.S),
    hook_log )

let test_custom_operator () =
  let db = H.fresh_split_db ~t_rows:(H.seed_t_rows ~n:50) in
  let packed, hook_log = copy_operator db ~source:"T" ~target:"T2" in
  let tf = Transform.create db ~config:cfg packed in
  Alcotest.(check string) "operator name" "copy" (Transform.name tf);
  let d = H.driver db in
  (match
     Transform.run tf ~between:(fun () ->
         if Transform.routing tf = `Sources then H.random_t_op d)
   with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  Alcotest.(check bool) "traffic committed" true (d.H.ops_done > 0);
  H.check_relations_equal "copy converged" (Db.snapshot db "T")
    (Db.snapshot db "T2");
  Alcotest.(check bool) "rules fired" true
    (List.assoc "applied" (Transform.counters tf) > 0);
  (* The executor fired the operator's hooks in lifecycle order. *)
  Alcotest.(check bool) "hooks in order" true
    (List.rev !hook_log = [ `Before; `After; `Done ])

(* {1 The job registry itself} *)

let test_registry_round_robin () =
  let db = Db.create () in
  let order = ref [] in
  let job name quanta =
    let left = ref quanta in
    Db.register_job db ~name
      ~step:(fun () ->
        order := name :: !order;
        decr left;
        if !left <= 0 then `Done else `Running)
      ()
  in
  job "a" 3;
  job "b" 1;
  (match Db.run_jobs db with Ok () -> () | Error m -> Alcotest.fail m);
  (* Fair interleaving: b finishes after one quantum, a keeps going. *)
  Alcotest.(check (list string))
    "round-robin order" [ "a"; "b"; "a"; "a" ]
    (List.rev !order);
  Alcotest.(check (list string)) "empty after completion" [] (Db.jobs db)

let test_registry_failure_and_bounds () =
  let db = Db.create () in
  Db.register_job db ~name:"stuck" ~step:(fun () -> `Running) ();
  (match Db.run_jobs ~max_rounds:3 db with
   | Ok () -> Alcotest.fail "must not converge"
   | Error _ -> ());
  Db.unregister_job db ~name:"stuck";
  Db.register_job db ~name:"bad" ~step:(fun () -> `Failed "boom") ();
  (match Db.run_jobs db with
   | Ok () -> Alcotest.fail "must fail"
   | Error m ->
     Alcotest.(check bool) "failure names the job" true
       (String.length m >= 3 && String.sub m 0 3 = "bad"));
  Alcotest.(check (list string)) "failed job removed" [] (Db.jobs db)

(* {1 Concurrent transformations at the SQL layer} *)

let test_sql_concurrent_transforms () =
  let s = Nbsc_sql.Exec.create (Db.create ()) in
  let run input =
    match Nbsc_sql.Exec.exec_string s input with
    | Ok outs -> outs
    | Error m -> Alcotest.failf "exec %S: %s" input m
  in
  ignore
    (run
       "CREATE TABLE t (a INT NOT NULL, b TEXT, c INT, PRIMARY KEY (a)); \
        INSERT INTO t VALUES (1, 'x', 10), (2, 'y', 40); \
        CREATE TABLE u (k INT NOT NULL, v TEXT, age INT, PRIMARY KEY (k)); \
        INSERT INTO u VALUES (1, 'p', 5), (2, 'q', 90);");
  (* Disjoint footprints: both may run at once. *)
  ignore (run "TRANSFORM ARCHIVE t INTO t_old AND t_new WHERE c > 30");
  ignore (run "TRANSFORM ARCHIVE u INTO u_old AND u_new WHERE age > 30");
  Alcotest.(check int) "two in flight" 2
    (List.length (Nbsc_sql.Exec.transformations s));
  (* An overlapping third is rejected. *)
  (match Nbsc_sql.Exec.exec_string s "TRANSFORM MERGE t, u INTO all_rows" with
   | Ok _ -> Alcotest.fail "overlap must be rejected"
   | Error _ -> ());
  ignore (run "TRANSFORM STEP 2");
  ignore (run "TRANSFORM RUN");
  let count table =
    match run (Printf.sprintf "SELECT * FROM %s" table) with
    | [ Nbsc_sql.Exec.Rows { rows; _ } ] -> List.length rows
    | _ -> Alcotest.fail "one row result"
  in
  Alcotest.(check int) "t archived" 1 (count "t_old");
  Alcotest.(check int) "t live" 1 (count "t_new");
  Alcotest.(check int) "u archived" 1 (count "u_old");
  Alcotest.(check int) "u live" 1 (count "u_new");
  List.iter
    (fun h ->
       Alcotest.(check bool) "done" true
         ((Db.Schema_change.status h).Db.Schema_change.sc_phase
          = Transform.Done))
    (Nbsc_sql.Exec.transformations s)

let () =
  Alcotest.run "executor"
    [ ( "executor",
        [ Alcotest.test_case "two transformations, one registry" `Quick
            test_concurrent_foj_and_hsplit;
          Alcotest.test_case "custom operator via Transformation.S" `Quick
            test_custom_operator ] );
      ( "registry",
        [ Alcotest.test_case "round-robin fairness" `Quick
            test_registry_round_robin;
          Alcotest.test_case "failure and bounds" `Quick
            test_registry_failure_and_bounds ] );
      ( "sql",
        [ Alcotest.test_case "concurrent TRANSFORMs" `Quick
            test_sql_concurrent_transforms ] ) ]
