(* End-to-end tests of the transformation framework: the central
   convergence property (after synchronization the transformed tables
   equal the relational operator applied to the final sources) under
   quiet and concurrent histories, for both FOJ and split. *)

open Nbsc_value
open Nbsc_storage
open Nbsc_txn
open Nbsc_core
module H = Helpers

let cfg strategy =
  { Transform.default_config with
    Transform.scan_batch = 7;    (* small batches force many steps *)
    propagate_batch = 5;
    strategy;
    drop_sources = false }

let run_with_interleave tf ~between =
  match Transform.run ~between tf with
  | Ok () -> ()
  | Error m -> Alcotest.failf "transformation failed: %s" m

(* {1 FOJ} *)

let check_foj_converged db =
  let expected = H.foj_oracle db in
  let actual = Db.snapshot db "T" in
  H.check_relations_equal "T = FOJ(R, S)" expected actual

let test_foj_quiet () =
  let r_rows, s_rows = H.seed_rows ~r:50 ~s:20 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let tf = Transform.foj db ~config:(cfg Transform.Nonblocking_abort) H.foj_spec in
  run_with_interleave tf ~between:(fun () -> ());
  check_foj_converged db;
  Alcotest.(check int) "row count"
    (List.length (H.foj_oracle db).Nbsc_relalg.Relalg.rows)
    (Db.row_count db "T")

let test_foj_scanned_exact () =
  (* Regression: the leftover pass (unmatched S rows emitted after the
     R scan) used to bill each leftover a second time, so [scanned]
     came out as |R| + |S| + |unmatched S|. Every source record is
     fuzzy-scanned exactly once: [scanned] must equal |R| + |S|. *)
  let r = 50 and s = 20 in
  let r_rows, s_rows = H.seed_rows ~r ~s in
  (* seed_rows gives R c-values 0..16 and S keys 0..19, so S keys
     17..19 are unmatched leftovers — the case that double-counted. *)
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let tf = Transform.foj db ~config:(cfg Transform.Nonblocking_abort) H.foj_spec in
  run_with_interleave tf ~between:(fun () -> ());
  let p = Transform.progress tf in
  Alcotest.(check int) "scanned = |R| + |S|" (r + s) p.Transform.scanned;
  check_foj_converged db

let test_foj_concurrent strategy () =
  let r_rows, s_rows = H.seed_rows ~r:80 ~s:25 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let d = H.driver ~seed:7 db in
  let tf = Transform.foj db ~config:(cfg strategy) H.foj_spec in
  let budget = ref 400 in
  run_with_interleave tf ~between:(fun () ->
      if !budget > 0 then begin
        decr budget;
        H.random_r_op d;
        H.random_s_op d
      end);
  check_foj_converged db

let test_foj_fig1 () =
  (* The worked example of Figure 1: three R rows, two S rows, one
     unmatched on each side. *)
  let r_rows = [ H.ri 1 "John" 10; H.ri 2 "Karen" 30; H.ri 3 "Mary" 10 ] in
  let s_rows = [ H.si 10 "x"; H.si 20 "y" ] in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let tf = Transform.foj db ~config:(cfg Transform.Nonblocking_abort) H.foj_spec in
  run_with_interleave tf ~between:(fun () -> ());
  let t = Db.snapshot db "T" in
  let expected =
    [ Row.make [ Value.Int 10; Value.Int 1; Value.Text "John"; Value.Text "x" ];
      Row.make [ Value.Int 30; Value.Int 2; Value.Text "Karen"; Value.Null ];
      Row.make [ Value.Int 10; Value.Int 3; Value.Text "Mary"; Value.Text "x" ];
      Row.make [ Value.Int 20; Value.Null; Value.Null; Value.Text "y" ] ]
  in
  H.check_relations_equal "figure 1"
    (Nbsc_relalg.Relalg.make t.Nbsc_relalg.Relalg.schema expected)
    t

let test_foj_drop_sources () =
  let r_rows, s_rows = H.seed_rows ~r:10 ~s:5 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let config = { (cfg Transform.Nonblocking_abort) with Transform.drop_sources = true } in
  let tf = Transform.foj db ~config H.foj_spec in
  run_with_interleave tf ~between:(fun () -> ());
  Alcotest.(check bool) "R dropped" false (Catalog.mem (Db.catalog db) "R");
  Alcotest.(check bool) "S dropped" false (Catalog.mem (Db.catalog db) "S");
  Alcotest.(check bool) "T exists" true (Catalog.mem (Db.catalog db) "T")

let test_foj_routing_flips () =
  let r_rows, s_rows = H.seed_rows ~r:30 ~s:10 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let tf = Transform.foj db ~config:(cfg Transform.Nonblocking_abort) H.foj_spec in
  Alcotest.(check bool) "starts on sources" true (Transform.routing tf = `Sources);
  run_with_interleave tf ~between:(fun () -> ());
  Alcotest.(check bool) "ends on targets" true (Transform.routing tf = `Targets)

let test_foj_abort_mid_flight () =
  let r_rows, s_rows = H.seed_rows ~r:40 ~s:15 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let before_r = Db.snapshot db "R" in
  let tf = Transform.foj db ~config:(cfg Transform.Nonblocking_abort) H.foj_spec in
  (* A few steps in, change course. *)
  ignore (Transform.step tf);
  ignore (Transform.step tf);
  Transform.abort tf;
  Alcotest.(check bool) "T gone" false (Catalog.mem (Db.catalog db) "T");
  H.check_relations_equal "R untouched" before_r (Db.snapshot db "R");
  (* The engine still works. *)
  let d = H.driver db in
  H.random_r_op d;
  Alcotest.(check bool) "ops still run" true (d.H.ops_done >= 0)

let test_foj_forced_aborts () =
  (* A transaction holding a lock on R across the sync point must be
     forced to abort by the non-blocking abort strategy, and its update
     must not survive anywhere. *)
  let r_rows, s_rows = H.seed_rows ~r:20 ~s:8 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let mgr = Db.manager db in
  let victim = Manager.begin_txn mgr in
  (match
     Manager.update mgr ~txn:victim ~table:"R"
       ~key:(Row.make [ Value.Int 1 ])
       [ (1, Value.Text "doomed") ]
   with
   | Ok () -> ()
   | Error e -> Alcotest.failf "victim update: %a" Manager.pp_error e);
  let tf = Transform.foj db ~config:(cfg Transform.Nonblocking_abort) H.foj_spec in
  run_with_interleave tf ~between:(fun () -> ());
  Alcotest.(check bool) "victim aborted" true
    (Manager.status mgr victim = Manager.Aborted);
  let p = Transform.progress tf in
  Alcotest.(check bool) "counted" true (p.Transform.forced_aborts >= 1);
  check_foj_converged db;
  (* "doomed" must have been rolled back out of T as well. *)
  let t = Db.snapshot db "T" in
  let has_doomed =
    List.exists
      (fun row -> Array.exists (Value.equal (Value.Text "doomed")) row)
      t.Nbsc_relalg.Relalg.rows
  in
  Alcotest.(check bool) "no doomed value in T" false has_doomed

let test_foj_nonblocking_commit_survivor () =
  (* Under non-blocking commit a transaction spanning the sync point is
     allowed to finish and commit; its writes must reach T. *)
  let r_rows, s_rows = H.seed_rows ~r:20 ~s:8 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let mgr = Db.manager db in
  let survivor = Manager.begin_txn mgr in
  (match
     Manager.update mgr ~txn:survivor ~table:"R"
       ~key:(Row.make [ Value.Int 2 ])
       [ (1, Value.Text "survives") ]
   with
   | Ok () -> ()
   | Error e -> Alcotest.failf "survivor update: %a" Manager.pp_error e);
  let tf = Transform.foj db ~config:(cfg Transform.Nonblocking_commit) H.foj_spec in
  let committed = ref false in
  run_with_interleave tf ~between:(fun () ->
      if (not !committed) && Transform.routing tf = `Targets then begin
        (* Old transaction does one more source-side write, then commits. *)
        (match
           Manager.update mgr ~txn:survivor ~table:"R"
             ~key:(Row.make [ Value.Int 2 ])
             [ (1, Value.Text "survives2") ]
         with
         | Ok () -> ()
         | Error e -> Alcotest.failf "post-sync update: %a" Manager.pp_error e);
        (match Manager.commit mgr survivor with
         | Ok () -> ()
         | Error e -> Alcotest.failf "survivor commit: %a" Manager.pp_error e);
        committed := true
      end);
  Alcotest.(check bool) "committed across sync" true !committed;
  check_foj_converged db;
  let t = Db.snapshot db "T" in
  let has v =
    List.exists
      (fun row -> Array.exists (Value.equal (Value.Text v)) row)
      t.Nbsc_relalg.Relalg.rows
  in
  Alcotest.(check bool) "post-sync write reached T" true (has "survives2")

let test_foj_blocking_commit () =
  let r_rows, s_rows = H.seed_rows ~r:30 ~s:10 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let d = H.driver ~seed:3 db in
  let tf = Transform.foj db ~config:(cfg Transform.Blocking_commit) H.foj_spec in
  let budget = ref 100 in
  run_with_interleave tf ~between:(fun () ->
      if !budget > 0 then begin
        decr budget;
        H.random_r_op d
      end);
  check_foj_converged db

(* {1 Split} *)

let split_oracle db =
  let t = Db.snapshot db "T" in
  Nbsc_relalg.Relalg.split
    { Nbsc_relalg.Relalg.r_cols' = [ "a"; "b"; "c" ];
      s_cols' = [ "c"; "d" ];
      r_key = [ "a" ];
      s_key = [ "c" ] }
    t

let check_split_converged db =
  let expected_r, expected_s = split_oracle db in
  H.check_relations_equal "R = pi_R(T)" expected_r (Db.snapshot db "R");
  H.check_relations_equal "S = pi_S(T)" expected_s (Db.snapshot db "S")

let check_split_counters db =
  let t = Db.snapshot db "T" in
  let expected =
    Nbsc_relalg.Relalg.split_multiplicity
      { Nbsc_relalg.Relalg.r_cols' = [ "a"; "b"; "c" ];
        s_cols' = [ "c"; "d" ];
        r_key = [ "a" ];
        s_key = [ "c" ] }
      t
  in
  let s_tbl = Db.table db "S" in
  List.iter
    (fun (key, n) ->
       match Table.find s_tbl key with
       | None -> Alcotest.failf "missing S record %s" (Row.Key.to_string key)
       | Some record ->
         Alcotest.(check int)
           (Printf.sprintf "counter of %s" (Row.Key.to_string key))
           n record.Record.counter)
    expected;
  Alcotest.(check int) "no extra S records" (List.length expected)
    (Table.cardinality s_tbl)

let test_split_quiet () =
  let db = H.fresh_split_db ~t_rows:(H.seed_t_rows ~n:60) in
  let tf =
    Transform.split db ~config:(cfg Transform.Nonblocking_abort)
      (H.split_spec ~assume_consistent:true)
  in
  run_with_interleave tf ~between:(fun () -> ());
  check_split_converged db;
  check_split_counters db

let test_split_concurrent consistent strategy () =
  let db = H.fresh_split_db ~t_rows:(H.seed_t_rows ~n:80) in
  let d = H.driver ~seed:11 db in
  let tf =
    Transform.split db ~config:(cfg strategy)
      (H.split_spec ~assume_consistent:consistent)
  in
  let budget = ref 300 in
  run_with_interleave tf ~between:(fun () ->
      if !budget > 0 then begin
        decr budget;
        H.random_t_op ~consistent:true d
      end);
  check_split_converged db;
  check_split_counters db;
  if not consistent then begin
    (* Everything must have been C-flagged before sync. *)
    let s_tbl = Db.table db "S" in
    Table.iter s_tbl (fun key record ->
        if record.Record.flag <> Record.Consistent then
          Alcotest.failf "S record %s still U" (Row.Key.to_string key))
  end

let test_split_fig3 () =
  (* Figure 3 / Example 1 shape: customers split on postal code. *)
  let rows =
    [ H.ti 1 "Peter" 7050 "Trondheim";
      H.ti 2 "Mark" 5020 "Bergen";
      H.ti 3 "Gary" 50 "Oslo";
      H.ti 134 "Jen" 7050 "Trondheim" ]
  in
  let db = H.fresh_split_db ~t_rows:rows in
  let tf =
    Transform.split db ~config:(cfg Transform.Nonblocking_abort)
      (H.split_spec ~assume_consistent:true)
  in
  run_with_interleave tf ~between:(fun () -> ());
  check_split_converged db;
  let s_tbl = Db.table db "S" in
  (match Table.find s_tbl (Row.make [ Value.Int 7050 ]) with
   | Some record -> Alcotest.(check int) "7050 counted twice" 2 record.Record.counter
   | None -> Alcotest.fail "7050 missing");
  Alcotest.(check int) "three postal codes" 3 (Table.cardinality s_tbl)

let test_split_inconsistency_repaired () =
  (* Example 1: Trondheim vs Trnodheim. The checker cannot confirm the
     record until the data is repaired by a user transaction. *)
  let rows =
    [ H.ti 1 "Peter" 7050 "Trondheim";
      H.ti 2 "Mark" 5020 "Bergen";
      H.ti 134 "Jen" 7050 "Trnodheim" ]
  in
  let db = H.fresh_split_db ~t_rows:rows in
  let mgr = Db.manager db in
  let tf =
    Transform.split db ~config:(cfg Transform.Nonblocking_abort)
      (H.split_spec ~assume_consistent:false)
  in
  let repaired = ref false in
  let steps = ref 0 in
  run_with_interleave tf ~between:(fun () ->
      incr steps;
      if !steps > 2000 then Alcotest.fail "transformation did not converge";
      if (not !repaired) && Transform.phase tf = Transform.Checking then begin
        (* The DBA fixes the typo. *)
        let txn = Manager.begin_txn mgr in
        (match
           Manager.update mgr ~txn ~table:"T"
             ~key:(Row.make [ Value.Int 134 ])
             [ (3, Value.Text "Trondheim") ]
         with
         | Ok () -> ()
         | Error e -> Alcotest.failf "repair: %a" Manager.pp_error e);
        (match Manager.commit mgr txn with
         | Ok () -> ()
         | Error e -> Alcotest.failf "repair commit: %a" Manager.pp_error e);
        repaired := true
      end);
  Alcotest.(check bool) "repair happened" true !repaired;
  check_split_converged db;
  let cc = Option.get (Transform.checker tf) in
  let st = Consistency.stats cc in
  Alcotest.(check bool) "checker confirmed something" true
    (st.Consistency.confirmed >= 1)


(* {1 A schema where S has a surrogate key}

   With S keyed by its join attribute (the fixture above), the engine
   refuses join-attribute updates on S (primary keys are immutable), so
   Rule 6 is only reachable through hand-made log records. This variant
   gives S a surrogate key k and a unique join attribute c, making
   Rule 6 reachable through real transactions. *)

let s2_schema =
  Schema.make ~key:[ "k" ]
    [ Schema.column ~nullable:false "k" Value.TInt;
      Schema.column "c" Value.TInt; Schema.column "d" Value.TText ]

let foj2_spec =
  { Spec.r_table = "R";
    s_table = "S";
    t_table = "T";
    join_r = [ "c" ];
    join_s = [ "c" ];
    t_join = [ "c" ];
    r_carry = [ "a"; "b" ];
    s_carry = [ "k"; "d" ];
    many_to_many = false }

let test_foj_surrogate_s_key_rule6 () =
  let db = Db.create () in
  ignore (Db.create_table db ~name:"R" H.r_schema);
  ignore (Db.create_table db ~name:"S" s2_schema);
  (* Each S row k owns the join range [100k, 100k+9]; updates move c
     within the range, keeping c unique in S (the 1:N requirement). *)
  (match
     Db.load db ~table:"R"
       (List.init 40 (fun i -> H.ri i ("r" ^ string_of_int i) ((i mod 8) * 100)))
   with Ok () -> () | Error _ -> Alcotest.fail "load R");
  (match
     Db.load db ~table:"S"
       (List.init 8 (fun k ->
            Row.make [ Value.Int k; Value.Int (k * 100); Value.Text ("d" ^ string_of_int k) ]))
   with Ok () -> () | Error _ -> Alcotest.fail "load S");
  let tf = Transform.foj db ~config:(cfg Transform.Nonblocking_abort) foj2_spec in
  let mgr = Db.manager db in
  let rng = Random.State.make [| 17 |] in
  let budget = ref 150 in
  run_with_interleave tf ~between:(fun () ->
      if !budget > 0 && Transform.routing tf = `Sources then begin
        decr budget;
        let txn = Manager.begin_txn mgr in
        let outcome =
          if Random.State.bool rng then
            (* Rule 6 trigger: move an S row's join attribute. *)
            let k = Random.State.int rng 8 in
            Manager.update mgr ~txn ~table:"S"
              ~key:(Row.make [ Value.Int k ])
              [ (1, Value.Int ((k * 100) + Random.State.int rng 10)) ]
          else
            let a = Random.State.int rng 40 in
            Manager.update mgr ~txn ~table:"R"
              ~key:(Row.make [ Value.Int a ])
              [ (2, Value.Int ((Random.State.int rng 8 * 100) + Random.State.int rng 10)) ]
        in
        match outcome with
        | Ok () -> ignore (Manager.commit mgr txn)
        | Error _ -> ignore (Manager.abort mgr txn)
      end);
  let oracle =
    Nbsc_relalg.Relalg.full_outer_join
      { Nbsc_relalg.Relalg.r_join = [ "c" ]; s_join = [ "c" ];
        out_join = [ "c" ]; r_cols = [ "a"; "b" ]; s_cols = [ "k"; "d" ];
        out_key = [ "a"; "k" ] }
      (Db.snapshot db "R") (Db.snapshot db "S")
  in
  H.check_relations_equal "surrogate-key FOJ converges" oracle
    (Db.snapshot db "T")

(* {1 The central property: convergence under random histories}

   For random data, random concurrent operation histories and random
   step interleavings, after synchronization the transformed tables
   equal the operator applied to the final sources — the guarantee
   Theorem 1 and the rules exist to provide. *)

let strategy_of_int = function
  | 0 -> Transform.Blocking_commit
  | 1 -> Transform.Nonblocking_abort
  | _ -> Transform.Nonblocking_commit

let prop_foj_converges =
  QCheck.Test.make ~name:"FOJ converges under random histories" ~count:60
    QCheck.(triple small_nat small_nat (int_bound 2))
    (fun (seed, size_seed, strat) ->
       let r = 10 + (size_seed * 7 mod 60) and s = 5 + (size_seed mod 20) in
       let r_rows, s_rows = H.seed_rows ~r ~s in
       let db = H.fresh_foj_db ~r_rows ~s_rows in
       let d = H.driver ~seed db in
       let config =
         { (cfg (strategy_of_int strat)) with
           Transform.scan_batch = 3 + (seed mod 9);
           propagate_batch = 2 + (seed mod 7) }
       in
       let tf = Transform.foj db ~config H.foj_spec in
       let budget = ref (50 + (seed mod 100)) in
       (match
          Transform.run tf ~between:(fun () ->
              if !budget > 0 then begin
                decr budget;
                H.random_r_op d;
                if seed mod 2 = 0 then H.random_s_op d
              end)
        with
        | Ok () -> ()
        | Error m -> QCheck.Test.fail_reportf "failed: %s" m);
       Nbsc_relalg.Relalg.equal_as_sets (H.foj_oracle db) (Db.snapshot db "T"))

let prop_split_converges =
  QCheck.Test.make ~name:"split converges under random histories" ~count:60
    QCheck.(triple small_nat small_nat (int_bound 2))
    (fun (seed, size_seed, strat) ->
       let n = 20 + (size_seed * 11 mod 80) in
       let db = H.fresh_split_db ~t_rows:(H.seed_t_rows ~n) in
       let d = H.driver ~seed db in
       let config =
         { (cfg (strategy_of_int strat)) with
           Transform.scan_batch = 3 + (seed mod 9);
           propagate_batch = 2 + (seed mod 7) }
       in
       let tf =
         Transform.split db ~config
           (H.split_spec ~assume_consistent:(seed mod 2 = 0))
       in
       let budget = ref (50 + (seed mod 100)) in
       (match
          Transform.run tf ~between:(fun () ->
              if !budget > 0 then begin
                decr budget;
                H.random_t_op ~consistent:true d
              end)
        with
        | Ok () -> ()
        | Error m -> QCheck.Test.fail_reportf "failed: %s" m);
       let expected_r, expected_s = split_oracle db in
       Nbsc_relalg.Relalg.equal_as_sets expected_r (Db.snapshot db "R")
       && Nbsc_relalg.Relalg.equal_as_sets expected_s (Db.snapshot db "S"))

(* {1 Lock transfer} *)

let test_transfer_idempotent () =
  (* Regression: the bulk transfer at non-blocking-commit sync counted
     every source lock it visited, including locks whose target copies
     the propagator had already transferred while applying the log.
     Repeating the transfer must leave [locks_transferred] unchanged. *)
  let r_rows, s_rows = H.seed_rows ~r:20 ~s:8 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let mgr = Db.manager db in
  let (module T : Transformation.S) = Transformation.foj db H.foj_spec in
  while not (Population.finished T.population) do
    ignore (Population.step T.population ~limit:max_int)
  done;
  let prop = Transformation.start_propagator mgr T.rules in
  Propagator.set_lock_mapper prop (fun ~table ~key ->
      T.lock_map.Transformation.source_to_targets ~table ~key);
  (* Two transactions left open, holding write locks on the sources. *)
  let t1 = Manager.begin_txn mgr in
  (match
     Manager.update mgr ~txn:t1 ~table:"R" ~key:[| Value.Int 1 |]
       [ (1, Value.Text "held") ]
   with
   | Ok () -> ()
   | Error e -> Alcotest.failf "update R: %a" Manager.pp_error e);
  let t2 = Manager.begin_txn mgr in
  (match
     Manager.update mgr ~txn:t2 ~table:"S" ~key:[| Value.Int 0 |]
       [ (1, Value.Text "held") ]
   with
   | Ok () -> ()
   | Error e -> Alcotest.failf "update S: %a" Manager.pp_error e);
  ignore (Propagator.run_to_head prop);
  let after_propagation = Propagator.locks_transferred prop in
  Alcotest.(check bool) "propagation transferred locks" true
    (after_propagation > 0);
  Propagator.transfer_current_source_locks prop;
  let first = Propagator.locks_transferred prop in
  Propagator.transfer_current_source_locks prop;
  Propagator.transfer_current_source_locks prop;
  let repeated = Propagator.locks_transferred prop in
  Alcotest.(check int) "repeated transfer adds nothing" first repeated;
  Alcotest.(check int) "already-held locks not recounted"
    after_propagation first;
  ignore (Manager.abort mgr t1);
  ignore (Manager.abort mgr t2);
  ignore (Propagator.run_to_head prop);
  Propagator.close prop

(* {1 Wiring} *)

let () =
  Alcotest.run "transform"
    [ ( "foj",
        [ Alcotest.test_case "quiet convergence" `Quick test_foj_quiet;
          Alcotest.test_case "scanned counts each source record once"
            `Quick test_foj_scanned_exact;
          Alcotest.test_case "figure 1 example" `Quick test_foj_fig1;
          Alcotest.test_case "concurrent, non-blocking abort" `Quick
            (test_foj_concurrent Transform.Nonblocking_abort);
          Alcotest.test_case "concurrent, non-blocking commit" `Quick
            (test_foj_concurrent Transform.Nonblocking_commit);
          Alcotest.test_case "concurrent, blocking commit" `Quick
            (test_foj_concurrent Transform.Blocking_commit);
          Alcotest.test_case "drops sources" `Quick test_foj_drop_sources;
          Alcotest.test_case "routing flips at sync" `Quick
            test_foj_routing_flips;
          Alcotest.test_case "abort mid-flight" `Quick test_foj_abort_mid_flight;
          Alcotest.test_case "forced aborts roll back everywhere" `Quick
            test_foj_forced_aborts;
          Alcotest.test_case "non-blocking commit survivor" `Quick
            test_foj_nonblocking_commit_survivor;
          Alcotest.test_case "blocking commit with load" `Quick
            test_foj_blocking_commit;
          Alcotest.test_case "surrogate S key (rule 6 live)" `Quick
            test_foj_surrogate_s_key_rule6 ] );
      ( "split",
        [ Alcotest.test_case "quiet convergence" `Quick test_split_quiet;
          Alcotest.test_case "figure 3 example" `Quick test_split_fig3;
          Alcotest.test_case "concurrent, consistent mode" `Quick
            (test_split_concurrent true Transform.Nonblocking_abort);
          Alcotest.test_case "concurrent, checked mode" `Quick
            (test_split_concurrent false Transform.Nonblocking_abort);
          Alcotest.test_case "concurrent, non-blocking commit" `Quick
            (test_split_concurrent true Transform.Nonblocking_commit);
          Alcotest.test_case "Example 1 inconsistency repaired" `Quick
            test_split_inconsistency_repaired ] );
      ( "locks",
        [ Alcotest.test_case "bulk transfer is idempotent" `Quick
            test_transfer_idempotent ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_foj_converges; prop_split_converges ] ) ]
