(* MVCC tests: snapshot-isolation visibility against the version
   chains, snapshot reads staying non-blocking under every
   synchronization mechanism (freeze, latch, record lock), version
   GC respecting active snapshots, and the lazy / hybrid migration
   strategies of the strategy-aware schema-change API. *)

open Nbsc_value
open Nbsc_lock
open Nbsc_storage
open Nbsc_txn
open Nbsc_core
module H = Helpers
module Obs = Nbsc_obs.Obs

let key a = Row.make [ Value.Int a ]

let ok name = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" name Manager.pp_error e

(* Single-table fixture over the running example's R(a,b,c). *)
let fresh_table () =
  let db = Db.create () in
  ignore (Db.create_table db ~name:"t" H.r_schema);
  db

(* One auto-committed operation; any failure fails the test. *)
let commit_op db f =
  let mgr = Db.manager db in
  let txn = Manager.begin_txn mgr in
  match f mgr txn with
  | Ok () -> ok "commit" (Manager.commit mgr txn)
  | Error e ->
    ignore (Manager.abort mgr txn);
    Alcotest.failf "op: %a" Manager.pp_error e

let check_b name expected = function
  | Some row ->
    Alcotest.(check bool) name true
      (Value.equal (Row.get row 1) (Value.Text expected))
  | None -> Alcotest.failf "%s: row missing" name

(* {1 Visibility} *)

let test_snapshot_sees_begin_state () =
  let db = fresh_table () in
  let mgr = Db.manager db in
  commit_op db (fun m txn -> Manager.insert m ~txn ~table:"t" (H.ri 1 "v0" 7));
  let snap = Manager.begin_txn ~isolation:`Snapshot mgr in
  (* Committed after the snapshot began: invisible to it. *)
  commit_op db (fun m txn ->
      Manager.update m ~txn ~table:"t" ~key:(key 1) [ (1, Value.Text "v1") ]);
  commit_op db (fun m txn -> Manager.insert m ~txn ~table:"t" (H.ri 2 "new" 8));
  check_b "pre-begin value" "v0"
    (ok "snap read 1" (Manager.read mgr ~txn:snap ~table:"t" ~key:(key 1)));
  (match ok "snap read 2" (Manager.read mgr ~txn:snap ~table:"t" ~key:(key 2)) with
   | None -> ()
   | Some _ -> Alcotest.fail "row inserted after begin is visible");
  ok "snap commit" (Manager.commit mgr snap);
  (* A fresh locked reader sees the current state. *)
  let txn = Manager.begin_txn mgr in
  check_b "current value" "v1"
    (ok "read" (Manager.read mgr ~txn ~table:"t" ~key:(key 1)));
  ok "commit" (Manager.commit mgr txn)

let test_snapshot_sees_deleted_row () =
  let db = fresh_table () in
  let mgr = Db.manager db in
  commit_op db (fun m txn -> Manager.insert m ~txn ~table:"t" (H.ri 1 "keep" 7));
  let snap = Manager.begin_txn ~isolation:`Snapshot mgr in
  commit_op db (fun m txn -> Manager.delete m ~txn ~table:"t" ~key:(key 1));
  (* Gone from the heap, still reachable through the version chain. *)
  check_b "deleted row still visible" "keep"
    (ok "snap read" (Manager.read mgr ~txn:snap ~table:"t" ~key:(key 1)));
  ok "snap commit" (Manager.commit mgr snap);
  let txn = Manager.begin_txn mgr in
  (match ok "read" (Manager.read mgr ~txn ~table:"t" ~key:(key 1)) with
   | None -> ()
   | Some _ -> Alcotest.fail "delete not visible to a fresh reader");
  ok "commit" (Manager.commit mgr txn)

let test_snapshot_sees_own_writes () =
  let db = fresh_table () in
  let mgr = Db.manager db in
  commit_op db (fun m txn -> Manager.insert m ~txn ~table:"t" (H.ri 1 "v0" 7));
  let snap = Manager.begin_txn ~isolation:`Snapshot mgr in
  ok "own update"
    (Manager.update mgr ~txn:snap ~table:"t" ~key:(key 1)
       [ (1, Value.Text "mine") ]);
  ok "own insert" (Manager.insert mgr ~txn:snap ~table:"t" (H.ri 2 "also" 8));
  check_b "own update visible" "mine"
    (ok "read 1" (Manager.read mgr ~txn:snap ~table:"t" ~key:(key 1)));
  check_b "own insert visible" "also"
    (ok "read 2" (Manager.read mgr ~txn:snap ~table:"t" ~key:(key 2)));
  ok "commit" (Manager.commit mgr snap)

(* {1 Non-blocking reads}

   The three synchronization strategies block locked readers through
   three mechanisms — table freezes (blocking commit), table latches
   (the final latched iteration of all strategies) and record locks
   (non-blocking commit's dual locking). A snapshot reader must sail
   past each one. *)

let test_snapshot_read_ignores_freeze () =
  let db = fresh_table () in
  let mgr = Db.manager db in
  commit_op db (fun m txn -> Manager.insert m ~txn ~table:"t" (H.ri 1 "v0" 7));
  Manager.freeze_tables mgr [ "t" ];
  let eager = Manager.begin_txn mgr in
  (match Manager.read mgr ~txn:eager ~table:"t" ~key:(key 1) with
   | Error (`Frozen _) -> ()
   | Ok _ -> Alcotest.fail "locked read admitted on a frozen table"
   | Error e -> Alcotest.failf "unexpected error: %a" Manager.pp_error e);
  ignore (Manager.abort mgr eager);
  let snap = Manager.begin_txn ~isolation:`Snapshot mgr in
  check_b "snapshot read under freeze" "v0"
    (ok "snap read" (Manager.read mgr ~txn:snap ~table:"t" ~key:(key 1)));
  ok "snap commit" (Manager.commit mgr snap);
  Manager.unfreeze_tables mgr [ "t" ]

let test_snapshot_read_ignores_latch () =
  let db = fresh_table () in
  let mgr = Db.manager db in
  commit_op db (fun m txn -> Manager.insert m ~txn ~table:"t" (H.ri 1 "v0" 7));
  let holder = Db.fresh_holder db in
  Alcotest.(check bool) "latched" true
    (Latch.try_latch (Manager.latches mgr) ~holder ~table:"t");
  let eager = Manager.begin_txn mgr in
  (match Manager.read mgr ~txn:eager ~table:"t" ~key:(key 1) with
   | Error (`Latched _) -> ()
   | Ok _ -> Alcotest.fail "locked read admitted on a latched table"
   | Error e -> Alcotest.failf "unexpected error: %a" Manager.pp_error e);
  ignore (Manager.abort mgr eager);
  let snap = Manager.begin_txn ~isolation:`Snapshot mgr in
  check_b "snapshot read under latch" "v0"
    (ok "snap read" (Manager.read mgr ~txn:snap ~table:"t" ~key:(key 1)));
  ok "snap commit" (Manager.commit mgr snap);
  Latch.unlatch (Manager.latches mgr) ~holder ~table:"t"

let test_snapshot_read_ignores_write_lock () =
  let db = fresh_table () in
  let mgr = Db.manager db in
  commit_op db (fun m txn -> Manager.insert m ~txn ~table:"t" (H.ri 1 "v0" 7));
  (* A writer holds the X lock, uncommitted. *)
  let writer = Manager.begin_txn mgr in
  ok "write"
    (Manager.update mgr ~txn:writer ~table:"t" ~key:(key 1)
       [ (1, Value.Text "dirty") ]);
  let eager = Manager.begin_txn mgr in
  (match Manager.read mgr ~txn:eager ~table:"t" ~key:(key 1) with
   | Error (`Blocked _) -> ()
   | Ok _ -> Alcotest.fail "locked read did not block on the X lock"
   | Error e -> Alcotest.failf "unexpected error: %a" Manager.pp_error e);
  ignore (Manager.abort mgr eager);
  let snap = Manager.begin_txn ~isolation:`Snapshot mgr in
  check_b "reads around the lock" "v0"
    (ok "snap read" (Manager.read mgr ~txn:snap ~table:"t" ~key:(key 1)));
  ok "writer commit" (Manager.commit mgr writer);
  (* The writer committed after the snapshot began: still invisible. *)
  check_b "commit after begin invisible" "v0"
    (ok "snap reread" (Manager.read mgr ~txn:snap ~table:"t" ~key:(key 1)));
  ok "snap commit" (Manager.commit mgr snap)

(* End to end: drive a blocking-commit change into its quiesce window
   (the harshest synchronization — newcomers are refused outright) and
   show a snapshot reader begun mid-sync reads on while a locked
   reader is turned away. *)
let test_sync_phase_nonblocking_for_snapshots () =
  let r_rows, s_rows = H.seed_rows ~r:30 ~s:10 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let mgr = Db.manager db in
  (* A pre-sync transaction active on R keeps the change quiescing. *)
  let old_txn = Manager.begin_txn mgr in
  ok "old insert" (Manager.insert mgr ~txn:old_txn ~table:"R" (H.ri 999 "old" 3));
  let options =
    Options.{ default with sync = Blocking_commit; scan_batch = 7;
              propagate_batch = 5; drop_sources = false }
  in
  let tf = Transform.foj db ~options H.foj_spec in
  let steps = ref 0 in
  while Transform.phase tf <> Transform.Quiescing && !steps < 10_000 do
    (match Transform.step tf with
     | `Running -> ()
     | `Done -> Alcotest.fail "change finished without quiescing"
     | `Failed m -> Alcotest.failf "change failed: %s" m);
    incr steps
  done;
  Alcotest.(check bool) "reached quiescing" true
    (Transform.phase tf = Transform.Quiescing);
  let eager = Manager.begin_txn mgr in
  (match Manager.read mgr ~txn:eager ~table:"R" ~key:(key 1) with
   | Error (`Frozen _) -> ()
   | Ok _ -> Alcotest.fail "locked reader admitted during quiesce"
   | Error e -> Alcotest.failf "unexpected error: %a" Manager.pp_error e);
  ignore (Manager.abort mgr eager);
  let snap = Manager.begin_txn ~isolation:`Snapshot mgr in
  (match ok "snap read" (Manager.read mgr ~txn:snap ~table:"R" ~key:(key 1)) with
   | Some _ -> ()
   | None -> Alcotest.fail "snapshot read lost the row during sync");
  ok "snap commit" (Manager.commit mgr snap);
  ok "old commit" (Manager.commit mgr old_txn);
  (match Transform.run ~between:(fun () -> ()) tf with
   | Ok () -> ()
   | Error m -> Alcotest.failf "change failed: %s" m);
  H.check_relations_equal "T = FOJ(R, S)" (H.foj_oracle db) (Db.snapshot db "T")

(* {1 Version GC} *)

let test_gc_respects_snapshots () =
  let db = fresh_table () in
  let mgr = Db.manager db in
  let tbl = Catalog.find (Db.catalog db) "t" in
  commit_op db (fun m txn -> Manager.insert m ~txn ~table:"t" (H.ri 1 "v0" 7));
  let snap = Manager.begin_txn ~isolation:`Snapshot mgr in
  for i = 1 to 5 do
    commit_op db (fun m txn ->
        Manager.update m ~txn ~table:"t" ~key:(key 1)
          [ (1, Value.Text ("v" ^ string_of_int i)) ])
  done;
  Alcotest.(check bool) "chain grew" true (Table.versions_count tbl >= 5);
  ignore (Manager.gc_versions mgr);
  (* Nothing the snapshot needs may go: its read is still exact. *)
  check_b "snapshot survives GC" "v0"
    (ok "snap read" (Manager.read mgr ~txn:snap ~table:"t" ~key:(key 1)));
  (match Obs.Registry.find (Db.obs db) "storage.versions_live" with
   | Some (Obs.Gauge_v v) ->
     Alcotest.(check int) "versions_live probe" (Table.versions_count tbl)
       (int_of_float v)
   | _ -> Alcotest.fail "storage.versions_live probe missing");
  ok "snap commit" (Manager.commit mgr snap);
  Alcotest.(check bool) "no active snapshot" true
    (Manager.oldest_snapshot mgr = None);
  let reclaimed = Manager.gc_versions mgr in
  Alcotest.(check bool) "reclaimed after release" true (reclaimed >= 5);
  Alcotest.(check int) "chain emptied" 0 (Table.versions_count tbl);
  (match Obs.Registry.find (Db.obs db) "storage.versions_reclaimed" with
   | Some (Obs.Counter_v n) ->
     Alcotest.(check bool) "versions_reclaimed counter" true (n >= reclaimed)
   | _ -> Alcotest.fail "storage.versions_reclaimed counter missing")

(* System (txn = 0) overwrites materialize version entries only while
   a snapshot transaction is live — the retention hint the manager
   wires into every table, which keeps bulk population/propagation
   writes free of version churn. Deletes of keys that already carry a
   chain push regardless: with the heap record gone, the tombstone
   must shadow the stale entries. *)
let test_retention_hint_gates_system_writes () =
  let db = fresh_table () in
  let mgr = Db.manager db in
  let tbl = Catalog.find (Db.catalog db) "t" in
  let module Log = Nbsc_wal.Log in
  let module Log_record = Nbsc_wal.Log_record in
  (* Claim a real LSN for each system write, like population does, so
     commit ordering against snapshot Begin records stays faithful. *)
  let sys_lsn () =
    Log.append (Manager.log mgr) ~txn:Log_record.system_txn
      ~prev_lsn:Nbsc_wal.Lsn.zero (Log_record.Fuzzy_mark { active = [] })
  in
  let sys_update b =
    match Table.update tbl ~lsn:(sys_lsn ()) ~key:(key 1)
            [ (1, Value.Text b) ] with
    | Ok _ -> ()
    | Error `Not_found -> Alcotest.fail "system update"
  in
  commit_op db (fun m txn -> Manager.insert m ~txn ~table:"t" (H.ri 1 "v0" 7));
  (* No snapshot live: the overwritten state is unreachable forever —
     nothing is pushed. *)
  sys_update "s0";
  Alcotest.(check int) "no snapshot, no version" 0 (Table.versions_count tbl);
  (* A snapshot begun after the skipped push still reads exactly: the
     new state committed below its LSN, straight off the heap. *)
  let snap = Manager.begin_txn ~isolation:`Snapshot mgr in
  check_b "heap state visible" "s0"
    (ok "snap read" (Manager.read mgr ~txn:snap ~table:"t" ~key:(key 1)));
  (* Snapshot live: the overwritten state is retained and resolved. *)
  sys_update "s1";
  Alcotest.(check int) "snapshot live, version kept" 1
    (Table.versions_count tbl);
  check_b "overwritten state resolved" "s0"
    (ok "snap reread" (Manager.read mgr ~txn:snap ~table:"t" ~key:(key 1)));
  ok "snap commit" (Manager.commit mgr snap);
  (* Snapshot gone: system overwrites stop pushing again... *)
  sys_update "s2";
  Alcotest.(check int) "hint off again" 1 (Table.versions_count tbl);
  (* ...except a delete over the existing chain: pre-image + tombstone
     are pushed so no later walk can resurrect a stale entry. *)
  (match Table.delete tbl ~lsn:(sys_lsn ()) (key 1) with
   | Ok _ -> ()
   | Error `Not_found -> Alcotest.fail "system delete");
  Alcotest.(check int) "delete over a chain pushes" 3
    (Table.versions_count tbl);
  let snap2 = Manager.begin_txn ~isolation:`Snapshot mgr in
  (match ok "snap2 read" (Manager.read mgr ~txn:snap2 ~table:"t" ~key:(key 1))
   with
   | None -> ()
   | Some _ -> Alcotest.fail "deleted row resurrected from a stale chain");
  ok "snap2 commit" (Manager.commit mgr snap2)

(* {1 Lazy and hybrid migration} *)

let migrate_opts strategy =
  Options.{ default with strategy; scan_batch = 7; propagate_batch = 5;
            drop_sources = false }

let run_tf tf ~between =
  match Transform.run ~between tf with
  | Ok () -> ()
  | Error m -> Alcotest.failf "change failed: %s" m

let test_lazy_demand_migration () =
  let r_rows, s_rows = H.seed_rows ~r:40 ~s:15 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let mgr = Db.manager db in
  let tf = Transform.foj db ~options:(migrate_opts Options.Lazy) H.foj_spec in
  Alcotest.(check bool) "populating" true
    (Transform.phase tf = Transform.Populating);
  (* Touch one source record before any background work: it must be in
     the target immediately, paid for by the touching transaction. *)
  let txn = Manager.begin_txn mgr in
  ignore (ok "read" (Manager.read mgr ~txn ~table:"R" ~key:(key 5)));
  ok "commit" (Manager.commit mgr txn);
  let t_tbl = Catalog.find (Db.catalog db) "T" in
  let a_pos = Schema.position (Table.schema t_tbl) "a" in
  let in_target a =
    Table.fold t_tbl ~init:false ~f:(fun hit _ r ->
        hit || Value.equal (Row.get r.Record.row a_pos) (Value.Int a))
  in
  Alcotest.(check bool) "migrated on first access" true (in_target 5);
  Alcotest.(check bool) "cold record not yet migrated" false (in_target 23);
  Alcotest.(check bool) "demand migration counted" true
    (Transform.demand_migrations tf >= 1);
  Alcotest.(check bool) "strategy recorded" true
    (Transform.migration tf = Options.Lazy);
  (* The sweep finishes the cold records; concurrent writes ride the
     log as under eager migration. *)
  let d = H.driver db in
  run_tf tf ~between:(fun () -> if d.H.ops_done < 40 then H.random_r_op d);
  H.check_relations_equal "T = FOJ(R, S)" (H.foj_oracle db) (Db.snapshot db "T")

let test_hybrid_sweep_completes () =
  let r_rows, s_rows = H.seed_rows ~r:40 ~s:15 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let tf =
    Transform.foj db
      ~options:(migrate_opts (Options.Hybrid { sweep_quantum = 9 }))
      H.foj_spec
  in
  (* No user ever touches a record: the background sweep alone must
     complete the change on an idle system. *)
  run_tf tf ~between:(fun () -> ());
  Alcotest.(check int) "no demand migrations" 0 (Transform.demand_migrations tf);
  H.check_relations_equal "T = FOJ(R, S)" (H.foj_oracle db) (Db.snapshot db "T")

(* {1 Properties} *)

(* Committed single-operation transactions against R of the FOJ
   fixture, keyed small so updates and deletes hit. *)
let apply_op db (code, k, v) =
  let mgr = Db.manager db in
  let txn = Manager.begin_txn mgr in
  let res =
    match code mod 3 with
    | 0 ->
      Manager.insert mgr ~txn ~table:"R"
        (H.ri k ("b" ^ string_of_int v) (k mod 8))
    | 1 ->
      Manager.update mgr ~txn ~table:"R" ~key:(key k)
        [ (1, Value.Text ("u" ^ string_of_int v)) ]
    | _ -> Manager.delete mgr ~txn ~table:"R" ~key:(key k)
  in
  match res with
  | Ok () ->
    (match Manager.commit mgr txn with
     | Ok () -> ()
     | Error _ -> ignore (Manager.abort mgr txn))
  | Error _ -> ignore (Manager.abort mgr txn)

let ops_gen =
  QCheck.(list_of_size Gen.(int_bound 25)
            (triple (int_bound 5) (int_bound 15) (int_bound 99)))

(* A snapshot transaction begun between two batches of committed
   operations — with a lazy migration sweeping and demand-migrating
   underneath — reads exactly the state at its begin point. *)
let prop_snapshot_visibility =
  QCheck.Test.make ~name:"snapshot reads are exactly the begin state"
    ~count:30
    QCheck.(pair ops_gen ops_gen)
    (fun (before, after) ->
       let _, s_rows = H.seed_rows ~r:0 ~s:8 in
       let db = H.fresh_foj_db ~r_rows:[] ~s_rows in
       let mgr = Db.manager db in
       List.iter (apply_op db) before;
       let tf = Transform.foj db ~options:(migrate_opts Options.Lazy) H.foj_spec in
       let snap = Manager.begin_txn ~isolation:`Snapshot mgr in
       (* Everything so far is committed, so the dirty read is the
          committed state the snapshot must keep seeing. *)
       let expected =
         List.init 16 (fun k -> Manager.read_dirty mgr ~table:"R" ~key:(key k))
       in
       List.iter
         (fun op ->
            apply_op db op;
            ignore (Transform.step tf))
         after;
       let exact = ref true in
       List.iteri
         (fun k exp ->
            match Manager.read mgr ~txn:snap ~table:"R" ~key:(key k) with
            | Ok got ->
              let same =
                match (exp, got) with
                | None, None -> true
                | Some a, Some b -> Row.equal a b
                | _ -> false
              in
              if not same then exact := false
            | Error _ -> exact := false)
         expected;
       ignore (Manager.commit mgr snap);
       Transform.abort tf;
       !exact)

let () =
  Alcotest.run "mvcc"
    [ ( "visibility",
        [ Alcotest.test_case "snapshot sees begin state" `Quick
            test_snapshot_sees_begin_state;
          Alcotest.test_case "snapshot sees deleted row" `Quick
            test_snapshot_sees_deleted_row;
          Alcotest.test_case "snapshot sees own writes" `Quick
            test_snapshot_sees_own_writes ] );
      ( "non-blocking",
        [ Alcotest.test_case "freeze" `Quick test_snapshot_read_ignores_freeze;
          Alcotest.test_case "latch" `Quick test_snapshot_read_ignores_latch;
          Alcotest.test_case "write lock" `Quick
            test_snapshot_read_ignores_write_lock;
          Alcotest.test_case "sync phase end to end" `Quick
            test_sync_phase_nonblocking_for_snapshots ] );
      ( "gc",
        [ Alcotest.test_case "respects snapshots" `Quick
            test_gc_respects_snapshots;
          Alcotest.test_case "retention hint gates system writes" `Quick
            test_retention_hint_gates_system_writes ] );
      ( "lazy migration",
        [ Alcotest.test_case "demand migration" `Quick
            test_lazy_demand_migration;
          Alcotest.test_case "hybrid sweep completes" `Quick
            test_hybrid_sweep_completes ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_snapshot_visibility ] ) ]
