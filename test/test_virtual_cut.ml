(* Virtual-cut (DBLog-style watermark) population: differential
   equivalence against the fuzzy scan, the directed discard path, and
   the options-validation bugfix. *)

open Nbsc_core
module H = Helpers

(* Small batches so chunks span several quanta and watermark windows
   actually see traffic. *)
let base_options =
  { Options.default with
    Options.scan_batch = 4;
    propagate_batch = 8;
    drop_sources = false }

let vc_options =
  { base_options with Options.population = Options.Virtual_cut }

let counter tf name =
  match List.assoc_opt name (Transform.counters tf) with
  | Some n -> n
  | None -> 0

(* {1 Differential: FOJ} *)

let run_foj ~options ~seed =
  let r_rows, s_rows = H.seed_rows ~r:60 ~s:20 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let packed = Transformation.foj ~options db H.foj_spec in
  let tf = Transform.create db ~options packed in
  let d = H.driver ~seed db in
  (match
     Transform.run tf ~between:(fun () ->
         if Transform.routing tf = `Sources then begin
           H.random_r_op d;
           H.random_s_op d
         end)
   with
   | Ok () -> ()
   | Error m -> Alcotest.failf "foj run: %s" m);
  (db, tf)

let test_foj_differential () =
  (* Same fixed seed for both strategies; each run must converge to
     the relational oracle over its own final sources. *)
  List.iter
    (fun seed ->
       let fdb, _ = run_foj ~options:base_options ~seed in
       H.check_relations_equal
         (Printf.sprintf "fuzzy seed %d" seed)
         (H.foj_oracle fdb) (Db.snapshot fdb "T");
       let vdb, vtf = run_foj ~options:vc_options ~seed in
       H.check_relations_equal
         (Printf.sprintf "virtual-cut seed %d" seed)
         (H.foj_oracle vdb) (Db.snapshot vdb "T");
       Alcotest.(check bool)
         (Printf.sprintf "watermark chunks written (seed %d)" seed)
         true
         (counter vtf "vc_chunks" > 0))
    [ 7; 21; 1042 ]

(* {1 Differential: split} *)

let split_oracle db =
  Nbsc_relalg.Relalg.split
    { Nbsc_relalg.Relalg.r_cols' = [ "a"; "b"; "c" ]; s_cols' = [ "c"; "d" ];
      r_key = [ "a" ]; s_key = [ "c" ] }
    (Db.snapshot db "T")

let run_split ~options ~seed =
  let db = H.fresh_split_db ~t_rows:(H.seed_t_rows ~n:60) in
  let packed =
    Transformation.split ~options db (H.split_spec ~assume_consistent:true)
  in
  let tf = Transform.create db ~options packed in
  let d = H.driver ~seed db in
  (match
     Transform.run tf ~between:(fun () ->
         if Transform.routing tf = `Sources then H.random_t_op ~consistent:true d)
   with
   | Ok () -> ()
   | Error m -> Alcotest.failf "split run: %s" m);
  (db, tf)

let test_split_differential () =
  List.iter
    (fun seed ->
       List.iter
         (fun options ->
            let db, _ = run_split ~options ~seed in
            let expected_r, expected_s = split_oracle db in
            let tag =
              Printf.sprintf "%s seed %d"
                (Options.population_to_string options.Options.population)
                seed
            in
            H.check_relations_equal (tag ^ ": R") expected_r
              (Db.snapshot db "R");
            H.check_relations_equal (tag ^ ": S") expected_s
              (Db.snapshot db "S"))
         [ base_options; vc_options ])
    [ 3; 99 ]

(* {1 Directed discard}

   With scan_batch 2 the chunk target is 6 buffered rows, spanning
   three quanta; updating a key buffered in the first quantum on every
   inter-quantum tick guarantees the first chunk's watermark window
   contains a superseding write — the buffered row must be discarded
   and re-read. *)
let test_discard_path () =
  let options = { vc_options with Options.scan_batch = 2 } in
  let db = H.fresh_split_db ~t_rows:(H.seed_t_rows ~n:30) in
  let mgr = Db.manager db in
  let packed =
    Transformation.split ~options db (H.split_spec ~assume_consistent:true)
  in
  let tf = Transform.create db ~options packed in
  let tick = ref 0 in
  (match
     Transform.run tf ~between:(fun () ->
         incr tick;
         if Transform.routing tf = `Sources then
           ignore
             (let txn = Nbsc_txn.Manager.begin_txn mgr in
              match
                Nbsc_txn.Manager.update mgr ~txn ~table:"T"
                  ~key:(Nbsc_value.Row.make [ Nbsc_value.Value.Int 1 ])
                  [ (1, Nbsc_value.Value.Text ("tick" ^ string_of_int !tick)) ]
              with
              | Ok () -> Nbsc_txn.Manager.commit mgr txn
              | Error _ ->
                ignore (Nbsc_txn.Manager.abort mgr txn);
                Ok ()))
   with
   | Ok () -> ()
   | Error m -> Alcotest.failf "discard run: %s" m);
  Alcotest.(check bool) "rows were discarded and re-read" true
    (counter tf "vc_discarded" > 0);
  Alcotest.(check bool) "several chunks" true (counter tf "vc_chunks" > 1);
  let expected_r, expected_s = split_oracle db in
  H.check_relations_equal "R converged" expected_r (Db.snapshot db "R");
  H.check_relations_equal "S converged" expected_s (Db.snapshot db "S")

(* {1 Options validation (bugfix)} *)

let is_invalid = function
  | Error (`Invalid _) -> true
  | _ -> false

let test_validate_rejects () =
  Alcotest.(check bool) "scan_batch 0" true
    (is_invalid (Options.validate { Options.default with Options.scan_batch = 0 }));
  Alcotest.(check bool) "propagate_batch -1" true
    (is_invalid
       (Options.validate
          { Options.default with Options.propagate_batch = -1 }));
  Alcotest.(check bool) "hybrid sweep_quantum 0" true
    (is_invalid
       (Options.validate
          { Options.default with
            Options.strategy = Options.Hybrid { sweep_quantum = 0 } }));
  (match Options.validate Options.default with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "default must validate")

(* The record-update path bypasses every string parser; the funnel in
   [Transform.create] must still reject it with a clear error. *)
let test_create_rejects_programmatic () =
  let db = H.fresh_split_db ~t_rows:(H.seed_t_rows ~n:5) in
  let packed =
    Transformation.split db (H.split_spec ~assume_consistent:true)
  in
  let expect_invalid name options =
    match Transform.create db ~options packed with
    | exception Nbsc_error.Error (`Invalid _) -> ()
    | _ -> Alcotest.failf "%s: expected Invalid" name
  in
  expect_invalid "scan_batch 0"
    { Options.default with Options.scan_batch = 0 };
  expect_invalid "sweep_quantum 0"
    { Options.default with
      Options.strategy = Options.Hybrid { sweep_quantum = 0 } }

let test_parse_rejects () =
  Alcotest.(check bool) "hybrid:0" true
    (Options.migration_of_string "hybrid:0" = None);
  Alcotest.(check bool) "hybrid:-3" true
    (Options.migration_of_string "hybrid:-3" = None);
  Alcotest.(check bool) "population bogus" true
    (Options.population_of_string "bogus" = None);
  Alcotest.(check bool) "population virtual-cut" true
    (Options.population_of_string "virtual-cut" = Some Options.Virtual_cut);
  Alcotest.(check bool) "population vc alias" true
    (Options.population_of_string "vc" = Some Options.Virtual_cut);
  Alcotest.(check bool) "population fuzzy" true
    (Options.population_of_string "fuzzy" = Some Options.Fuzzy)

let () =
  Alcotest.run "virtual-cut"
    [ ( "differential",
        [ Alcotest.test_case "FOJ fuzzy vs virtual-cut" `Quick
            test_foj_differential;
          Alcotest.test_case "split fuzzy vs virtual-cut" `Quick
            test_split_differential ] );
      ( "watermarks",
        [ Alcotest.test_case "superseded rows discarded" `Quick
            test_discard_path ] );
      ( "options",
        [ Alcotest.test_case "validate rejects bad knobs" `Quick
            test_validate_rejects;
          Alcotest.test_case "create rejects programmatic records" `Quick
            test_create_rejects_programmatic;
          Alcotest.test_case "parsers reject bad strings" `Quick
            test_parse_rejects ] ) ]
