(* Tests for the transaction manager: 2PL, logging, rollback with CLRs,
   and the hooks the synchronization strategies rely on. *)

open Nbsc_value
open Nbsc_wal
open Nbsc_storage
open Nbsc_txn
module H = Helpers

let fresh () =
  let cat = Catalog.create () in
  ignore (Catalog.create_table cat ~name:"t" H.r_schema);
  (cat, Manager.create cat)

let row a b c = Row.make [ Value.Int a; Value.Text b; Value.Int c ]
let key a = Row.make [ Value.Int a ]

let ok name = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" name Manager.pp_error e

let test_commit_visible () =
  let cat, mgr = fresh () in
  let txn = Manager.begin_txn mgr in
  ok "insert" (Manager.insert mgr ~txn ~table:"t" (row 1 "x" 7));
  ok "commit" (Manager.commit mgr txn);
  Alcotest.(check bool) "committed" true (Manager.status mgr txn = Manager.Committed);
  Alcotest.(check int) "row there" 1 (Table.cardinality (Catalog.find cat "t"))

let test_abort_rolls_back () =
  let cat, mgr = fresh () in
  (* Pre-existing committed row. *)
  let setup = Manager.begin_txn mgr in
  ok "insert" (Manager.insert mgr ~txn:setup ~table:"t" (row 1 "orig" 7));
  ok "commit" (Manager.commit mgr setup);
  (* A transaction that does one of each, then aborts. *)
  let txn = Manager.begin_txn mgr in
  ok "insert2" (Manager.insert mgr ~txn ~table:"t" (row 2 "temp" 8));
  ok "update" (Manager.update mgr ~txn ~table:"t" ~key:(key 1) [ (1, Value.Text "mod") ]);
  ok "delete" (Manager.delete mgr ~txn ~table:"t" ~key:(key 2));
  ok "reinsert" (Manager.insert mgr ~txn ~table:"t" (row 3 "temp2" 9));
  ok "abort" (Manager.abort mgr txn);
  let t = Catalog.find cat "t" in
  Alcotest.(check int) "only original row" 1 (Table.cardinality t);
  let r = Option.get (Table.find t (key 1)) in
  Alcotest.(check bool) "original restored" true
    (Value.equal (Row.get r.Record.row 1) (Value.Text "orig"));
  Alcotest.(check bool) "status" true (Manager.status mgr txn = Manager.Aborted)

let test_clr_chain () =
  let _, mgr = fresh () in
  let txn = Manager.begin_txn mgr in
  ok "i" (Manager.insert mgr ~txn ~table:"t" (row 1 "x" 7));
  ok "u" (Manager.update mgr ~txn ~table:"t" ~key:(key 1) [ (1, Value.Text "y") ]);
  ok "a" (Manager.abort mgr txn);
  (* Log shape: Begin, Op, Op, Abort_begin, CLR(update), CLR(insert),
     Abort_done.  CLR undo_next pointers walk backwards. *)
  let log = Manager.log mgr in
  let kinds =
    Log.fold log ?from:None ?upto:None ~init:[] ~f:(fun acc r ->
        (match r.Log_record.body with
         | Log_record.Begin -> "begin"
         | Log_record.Op (Log_record.Insert _) -> "ins"
         | Log_record.Op (Log_record.Update _) -> "upd"
         | Log_record.Op (Log_record.Delete _) -> "del"
         | Log_record.Clr { op = Log_record.Update _; _ } -> "clr-upd"
         | Log_record.Clr { op = Log_record.Delete _; _ } -> "clr-del"
         | Log_record.Clr { op = Log_record.Insert _; _ } -> "clr-ins"
         | Log_record.Abort_begin -> "abort"
         | Log_record.Abort_done -> "abort-done"
         | _ -> "?")
        :: acc)
    |> List.rev
  in
  Alcotest.(check (list string)) "log shape"
    [ "begin"; "ins"; "upd"; "abort"; "clr-upd"; "clr-del"; "abort-done" ]
    kinds

let test_2pl_conflict_and_block_info () =
  let _, mgr = fresh () in
  let t1 = Manager.begin_txn mgr in
  let t2 = Manager.begin_txn mgr in
  ok "t1 insert" (Manager.insert mgr ~txn:t1 ~table:"t" (row 1 "x" 7));
  (match Manager.update mgr ~txn:t2 ~table:"t" ~key:(key 1) [ (1, Value.Text "y") ] with
   | Error (`Blocked owners) -> Alcotest.(check (list int)) "blocked by t1" [ t1 ] owners
   | _ -> Alcotest.fail "expected Blocked");
  (* Reads conflict with writes too. *)
  (match Manager.read mgr ~txn:t2 ~table:"t" ~key:(key 1) with
   | Error (`Blocked _) -> ()
   | _ -> Alcotest.fail "read should block");
  ok "t1 commit" (Manager.commit mgr t1);
  (match Manager.read mgr ~txn:t2 ~table:"t" ~key:(key 1) with
   | Ok (Some r) ->
     Alcotest.(check bool) "sees committed" true (Row.equal r (row 1 "x" 7))
   | _ -> Alcotest.fail "read after commit");
  ok "t2 commit" (Manager.commit mgr t2)

let test_shared_reads () =
  let _, mgr = fresh () in
  let setup = Manager.begin_txn mgr in
  ok "i" (Manager.insert mgr ~txn:setup ~table:"t" (row 1 "x" 7));
  ok "c" (Manager.commit mgr setup);
  let t1 = Manager.begin_txn mgr and t2 = Manager.begin_txn mgr in
  (match Manager.read mgr ~txn:t1 ~table:"t" ~key:(key 1) with
   | Ok (Some _) -> ()
   | _ -> Alcotest.fail "t1 read");
  (match Manager.read mgr ~txn:t2 ~table:"t" ~key:(key 1) with
   | Ok (Some _) -> ()
   | _ -> Alcotest.fail "t2 read (shared)");
  (* Writer blocked by both readers. *)
  let t3 = Manager.begin_txn mgr in
  (match Manager.update mgr ~txn:t3 ~table:"t" ~key:(key 1) [ (1, Value.Text "y") ] with
   | Error (`Blocked owners) ->
     Alcotest.(check (list int)) "both readers" [ t1; t2 ] (List.sort compare owners)
   | _ -> Alcotest.fail "expected blocked");
  ok "c1" (Manager.commit mgr t1);
  ok "c2" (Manager.commit mgr t2);
  ok "c3" (Manager.abort mgr t3)

let test_latch_pauses () =
  let _, mgr = fresh () in
  Alcotest.(check bool) "latched" true
    (Nbsc_lock.Latch.try_latch (Manager.latches mgr) ~holder:999 ~table:"t");
  let txn = Manager.begin_txn mgr in
  (match Manager.insert mgr ~txn ~table:"t" (row 1 "x" 7) with
   | Error (`Latched "t") -> ()
   | _ -> Alcotest.fail "expected Latched");
  Nbsc_lock.Latch.unlatch (Manager.latches mgr) ~holder:999 ~table:"t";
  ok "after unlatch" (Manager.insert mgr ~txn ~table:"t" (row 1 "x" 7));
  ok "c" (Manager.commit mgr txn)

let test_freeze_spares_old_txns () =
  let _, mgr = fresh () in
  let old_txn = Manager.begin_txn mgr in
  Manager.freeze_tables mgr [ "t" ];
  let new_txn = Manager.begin_txn mgr in
  ok "old proceeds" (Manager.insert mgr ~txn:old_txn ~table:"t" (row 1 "x" 7));
  (match Manager.insert mgr ~txn:new_txn ~table:"t" (row 2 "y" 8) with
   | Error (`Frozen "t") -> ()
   | _ -> Alcotest.fail "expected Frozen");
  Manager.unfreeze_tables mgr [ "t" ];
  ok "after unfreeze" (Manager.insert mgr ~txn:new_txn ~table:"t" (row 2 "y" 8));
  ok "c1" (Manager.commit mgr old_txn);
  ok "c2" (Manager.commit mgr new_txn)

let test_abort_only () =
  let _, mgr = fresh () in
  let txn = Manager.begin_txn mgr in
  ok "i" (Manager.insert mgr ~txn ~table:"t" (row 1 "x" 7));
  Manager.mark_abort_only mgr txn;
  (match Manager.insert mgr ~txn ~table:"t" (row 2 "y" 8) with
   | Error `Abort_only -> ()
   | _ -> Alcotest.fail "expected Abort_only");
  (match Manager.commit mgr txn with
   | Error `Abort_only -> ()
   | _ -> Alcotest.fail "commit must be refused");
  ok "abort works" (Manager.abort mgr txn)

let test_key_update_refused () =
  let _, mgr = fresh () in
  let txn = Manager.begin_txn mgr in
  ok "i" (Manager.insert mgr ~txn ~table:"t" (row 1 "x" 7));
  (match Manager.update mgr ~txn ~table:"t" ~key:(key 1) [ (0, Value.Int 2) ] with
   | Error `Key_update -> ()
   | _ -> Alcotest.fail "expected Key_update");
  ok "c" (Manager.commit mgr txn)

let test_errors () =
  let _, mgr = fresh () in
  let txn = Manager.begin_txn mgr in
  (match Manager.insert mgr ~txn ~table:"nope" (row 1 "x" 7) with
   | Error (`No_table "nope") -> ()
   | _ -> Alcotest.fail "expected No_table");
  (match Manager.update mgr ~txn ~table:"t" ~key:(key 42) [ (1, Value.Text "y") ] with
   | Error `Not_found -> ()
   | _ -> Alcotest.fail "expected Not_found");
  ok "i" (Manager.insert mgr ~txn ~table:"t" (row 1 "x" 7));
  (match Manager.insert mgr ~txn ~table:"t" (row 1 "x" 7) with
   | Error `Duplicate_key -> ()
   | _ -> Alcotest.fail "expected Duplicate_key");
  ok "c" (Manager.commit mgr txn);
  (match Manager.commit mgr txn with
   | Error `Txn_not_active -> ()
   | _ -> Alcotest.fail "double commit refused");
  (match Manager.insert mgr ~txn ~table:"t" (row 2 "y" 8) with
   | Error `Txn_not_active -> ()
   | _ -> Alcotest.fail "op after commit refused")

let test_active_snapshot () =
  let _, mgr = fresh () in
  let t1 = Manager.begin_txn mgr in
  let t2 = Manager.begin_txn mgr in
  let snap = Manager.active_snapshot mgr in
  Alcotest.(check (list int)) "both active" [ t1; t2 ] (List.map fst snap);
  (* first_lsn values are their Begin records, in order. *)
  let lsns = List.map (fun (_, l) -> Lsn.to_int l) snap in
  Alcotest.(check bool) "ordered first lsns" true (lsns = List.sort compare lsns);
  ok "c" (Manager.commit mgr t1);
  Alcotest.(check (list int)) "one active" [ t2 ] (List.map fst (Manager.active_snapshot mgr));
  ok "c" (Manager.abort mgr t2);
  Alcotest.(check int) "none active" 0 (Manager.active_count mgr)

let test_post_op_hook () =
  let _, mgr = fresh () in
  let fired = ref [] in
  Manager.set_post_op_hook mgr
    (Some (fun ~txn:_ ~lsn:_ op -> fired := Log_record.op_table op :: !fired));
  let txn = Manager.begin_txn mgr in
  ok "i" (Manager.insert mgr ~txn ~table:"t" (row 1 "x" 7));
  ok "u" (Manager.update mgr ~txn ~table:"t" ~key:(key 1) [ (1, Value.Text "y") ]);
  ok "d" (Manager.delete mgr ~txn ~table:"t" ~key:(key 1));
  ok "c" (Manager.commit mgr txn);
  Alcotest.(check int) "three ops" 3 (List.length !fired);
  Manager.set_post_op_hook mgr None;
  let txn = Manager.begin_txn mgr in
  ok "i2" (Manager.insert mgr ~txn ~table:"t" (row 9 "z" 1));
  ok "c2" (Manager.commit mgr txn);
  Alcotest.(check int) "hook removed" 3 (List.length !fired)

let test_stats () =
  let _, mgr = fresh () in
  let txn = Manager.begin_txn mgr in
  ok "i" (Manager.insert mgr ~txn ~table:"t" (row 1 "x" 7));
  ok "c" (Manager.commit mgr txn);
  let txn = Manager.begin_txn mgr in
  ok "i" (Manager.insert mgr ~txn ~table:"t" (row 2 "y" 8));
  ok "a" (Manager.abort mgr txn);
  let s = Manager.Stats.get mgr in
  Alcotest.(check int) "ops" 2 s.Manager.Stats.ops;
  Alcotest.(check int) "commits" 1 s.Manager.Stats.commits;
  Alcotest.(check int) "aborts" 1 s.Manager.Stats.aborts

(* Property: a transaction that aborts leaves the table exactly as it
   found it, whatever it did. *)
let arb_ops =
  QCheck.(list_of_size Gen.(int_bound 40)
            (triple (int_bound 12) (int_bound 3) small_nat))

let table_image t =
  Table.fold t ~init:[] ~f:(fun acc _ r -> r.Record.row :: acc)
  |> List.sort Row.compare

let prop_abort_is_identity =
  QCheck.Test.make ~name:"abort restores the exact table image" ~count:200
    arb_ops
    (fun ops ->
       let cat, mgr = fresh () in
       let t = Catalog.find cat "t" in
       (* Seed some committed data. *)
       let setup = Manager.begin_txn mgr in
       for i = 0 to 5 do
         ignore (Manager.insert mgr ~txn:setup ~table:"t" (row i "seed" i))
       done;
       ignore (Manager.commit mgr setup);
       let before = table_image t in
       let txn = Manager.begin_txn mgr in
       List.iter
         (fun (a, action, v) ->
            ignore
              (match action with
               | 0 ->
                 Manager.insert mgr ~txn ~table:"t"
                   (row a (string_of_int v) (v mod 7))
               | 1 ->
                 Manager.update mgr ~txn ~table:"t" ~key:(key a)
                   [ (1, Value.Text (string_of_int v)) ]
               | _ -> Manager.delete mgr ~txn ~table:"t" ~key:(key a)))
         ops;
       ignore (Manager.abort mgr txn);
       let after = table_image t in
       List.length before = List.length after
       && List.for_all2 Row.equal before after)

let () =
  Alcotest.run "txn"
    [ ( "basics",
        [ Alcotest.test_case "commit visible" `Quick test_commit_visible;
          Alcotest.test_case "abort rolls back" `Quick test_abort_rolls_back;
          Alcotest.test_case "CLR chain" `Quick test_clr_chain;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "stats" `Quick test_stats ] );
      ( "locking",
        [ Alcotest.test_case "2PL conflict" `Quick test_2pl_conflict_and_block_info;
          Alcotest.test_case "shared reads" `Quick test_shared_reads;
          Alcotest.test_case "latch pauses" `Quick test_latch_pauses;
          Alcotest.test_case "freeze spares old txns" `Quick
            test_freeze_spares_old_txns;
          Alcotest.test_case "abort-only" `Quick test_abort_only;
          Alcotest.test_case "key update refused" `Quick test_key_update_refused ] );
      ( "introspection",
        [ Alcotest.test_case "active snapshot" `Quick test_active_snapshot;
          Alcotest.test_case "post-op hook" `Quick test_post_op_hook ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_abort_is_identity ] ) ]
