(* Tests for the durable database directory: journaling, crash
   recovery from snapshot + WAL, checkpoint truncation. *)

open Nbsc_value
open Nbsc_storage
open Nbsc_txn
open Nbsc_engine
module H = Helpers

let ok name = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" name Manager.pp_error e

let ok_p name = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" name Persist.pp_error e

let counter = ref 0

(* No unix dependency: uniqueness from a counter + random suffix. *)
let fresh_dir () =
  incr counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "nbsc_test_%d_%d" !counter (Random.int 1_000_000))

let wipe dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let setup_orders p =
  let db = Persist.db p in
  ignore (Db.create_table db ~name:"t" H.r_schema);
  (* Persist the DDL. *)
  ok_p "checkpoint" (Persist.checkpoint p)

let insert p a b c =
  let db = Persist.db p in
  let txn = Manager.begin_txn (Db.manager db) in
  ok "insert" (Manager.insert (Db.manager db) ~txn ~table:"t" (H.ri a b c));
  ok "commit" (Manager.commit (Db.manager db) txn)

let rows p =
  Table.fold (Db.table (Persist.db p) "t") ~init:[] ~f:(fun acc _ r ->
      r.Record.row :: acc)
  |> List.sort Row.compare

let test_journal_and_reopen () =
  let dir = fresh_dir () in
  let p = ok_p "create" (Persist.create_dir ~dir) in
  setup_orders p;
  insert p 1 "a" 10;
  insert p 2 "b" 20;
  let before = rows p in
  Persist.close p;
  (* Reopen: committed work survives via the WAL (no checkpoint since
     the inserts). *)
  let p2 = ok_p "open" (Persist.open_dir ~dir) in
  Alcotest.(check bool) "rows survived" true (rows p2 = before);
  (* And new work keeps journaling. *)
  insert p2 3 "c" 30;
  Persist.close p2;
  let p3 = ok_p "open again" (Persist.open_dir ~dir) in
  Alcotest.(check int) "three rows" 3 (List.length (rows p3));
  Persist.close p3;
  wipe dir

let test_crash_rolls_back_losers () =
  let dir = fresh_dir () in
  let p = ok_p "create" (Persist.create_dir ~dir) in
  setup_orders p;
  insert p 1 "a" 10;
  (* A transaction left in flight: simulate a crash by NOT committing
     and not closing cleanly (the WAL has its ops, no Commit). *)
  let db = Persist.db p in
  let txn = Manager.begin_txn (Db.manager db) in
  ok "ghost insert" (Manager.insert (Db.manager db) ~txn ~table:"t" (H.ri 99 "ghost" 1));
  ok "ghost update"
    (Manager.update (Db.manager db) ~txn ~table:"t"
       ~key:(Row.make [ Value.Int 1 ]) [ (1, Value.Text "ghost") ]);
  (* The buffered sink only writes at the group-commit barrier; raise
     it explicitly so the ghost ops are on disk without their Commit —
     the torn durability state this test is about. *)
  Nbsc_wal.Log.sync (Db.log db);
  (* crash: abandon p without close/commit *)
  let p2 = ok_p "open after crash" (Persist.open_dir ~dir) in
  (match Persist.last_recovery p2 with
   | Some report ->
     Alcotest.(check int) "one loser" 1 (List.length report.Recovery.losers)
   | None -> Alcotest.fail "expected recovery to run");
  let got = rows p2 in
  Alcotest.(check int) "ghost insert gone" 1 (List.length got);
  Alcotest.(check bool) "ghost update undone" true
    (Row.equal (List.hd got) (H.ri 1 "a" 10));
  Persist.close p2;
  wipe dir

let test_checkpoint_truncates () =
  let dir = fresh_dir () in
  let p = ok_p "create" (Persist.create_dir ~dir) in
  setup_orders p;
  for i = 1 to 50 do
    insert p i "x" i
  done;
  let wal = Filename.concat dir "wal.nbsc" in
  let size_before = (Stdlib.open_in wal |> fun ic -> let n = in_channel_length ic in close_in ic; n) in
  Alcotest.(check bool) "wal grew" true (size_before > 0);
  ok_p "checkpoint" (Persist.checkpoint p);
  let size_after = (Stdlib.open_in wal |> fun ic -> let n = in_channel_length ic in close_in ic; n) in
  (* Truncated down to the format header alone. *)
  Alcotest.(check int) "wal truncated"
    (String.length Disk_format.wal_magic + 1)
    size_after;
  (* State survives reopen through the snapshot alone. *)
  Persist.close p;
  let p2 = ok_p "open" (Persist.open_dir ~dir) in
  Alcotest.(check int) "all rows" 50 (List.length (rows p2));
  (* LSN continuity: an update after reopen is strictly newer. *)
  insert p2 77 "post" 7;
  Persist.close p2;
  let p3 = ok_p "open again" (Persist.open_dir ~dir) in
  Alcotest.(check int) "51 rows" 51 (List.length (rows p3));
  Persist.close p3;
  wipe dir

let test_create_refuses_existing () =
  let dir = fresh_dir () in
  let p = ok_p "create" (Persist.create_dir ~dir) in
  Persist.close p;
  (match Persist.create_dir ~dir with
   | Error (`Io _) -> ()
   | _ -> Alcotest.fail "expected refusal");
  wipe dir

let test_corrupt_wal_detected () =
  let dir = fresh_dir () in
  let p = ok_p "create" (Persist.create_dir ~dir) in
  setup_orders p;
  insert p 1 "a" 1;
  Persist.close p;
  let oc = open_out_gen [ Open_append ] 0o644 (Filename.concat dir "wal.nbsc") in
  output_string oc "garbage line\n";
  close_out oc;
  (match Persist.open_dir ~dir with
   | Error (`Corrupt _) -> ()
   | _ -> Alcotest.fail "expected Corrupt");
  wipe dir

let test_torn_tail_tolerated () =
  let dir = fresh_dir () in
  let p = ok_p "create" (Persist.create_dir ~dir) in
  setup_orders p;
  insert p 1 "a" 1;
  insert p 2 "b" 2;
  Persist.close p;
  (* A crash can tear the final WAL append: a prefix of the line with
     no terminating newline. Reopen must drop exactly that tail. *)
  let oc = open_out_gen [ Open_append ] 0o644 (Filename.concat dir "wal.nbsc") in
  output_string oc "Op|9|half-a-reco";
  close_out oc;
  let p2 = ok_p "open tolerates torn tail" (Persist.open_dir ~dir) in
  Alcotest.(check int) "committed rows intact" 2 (List.length (rows p2));
  (* The journal keeps working after the truncated tail. *)
  insert p2 3 "c" 3;
  Persist.close p2;
  let p3 = ok_p "open again" (Persist.open_dir ~dir) in
  Alcotest.(check int) "three rows" 3 (List.length (rows p3));
  Persist.close p3;
  wipe dir

(* The snapshot is replaced atomically (temp file + rename): a crash
   while streaming the new snapshot, or just before the rename, leaves
   the previous snapshot untouched and the store recoverable. *)
let test_snapshot_replace_is_atomic () =
  List.iter
    (fun site ->
       Fault.reset ();
       let dir = fresh_dir () in
       let p = ok_p "create" (Persist.create_dir ~dir) in
       setup_orders p;
       insert p 1 "a" 1;
       ok_p "first checkpoint" (Persist.checkpoint p);
       insert p 2 "b" 2;
       Fault.arm site;
       (match Persist.checkpoint p with
        | exception Fault.Injected _ -> ()
        | Ok () -> Alcotest.failf "%s: checkpoint should have crashed" site
        | Error e -> Alcotest.failf "%s: %a" site Persist.pp_error e);
       Fault.reset ();
       Persist.crash p;
       let p2 = ok_p (site ^ ": reopen") (Persist.open_dir ~dir) in
       Alcotest.(check int) (site ^ ": rows survive") 2
         (List.length (rows p2));
       (* The leftover temp file must not confuse a later checkpoint. *)
       insert p2 3 "c" 3;
       ok_p (site ^ ": checkpoint after recovery") (Persist.checkpoint p2);
       Persist.close p2;
       wipe dir)
    [ "snapshot_write"; "snapshot_rename"; "wal_rewrite" ]

(* A newline-terminated record whose prev_lsn chain is inconsistent is
   corruption, not a torn tail: open_dir must refuse, and with a
   diagnosable error rather than a stray Not_found from redo. *)
let test_bad_prev_lsn_is_corrupt () =
  let module W = Nbsc_wal in
  let bad_wals =
    [ ( "forward pointer",
        [ { W.Log_record.lsn = W.Lsn.of_int 1; txn = 1;
            prev_lsn = W.Lsn.of_int 1; body = W.Log_record.Begin } ] );
      ( "cross-transaction chain",
        [ { W.Log_record.lsn = W.Lsn.of_int 1; txn = 1;
            prev_lsn = W.Lsn.zero; body = W.Log_record.Begin };
          { W.Log_record.lsn = W.Lsn.of_int 2; txn = 2;
            prev_lsn = W.Lsn.zero; body = W.Log_record.Begin };
          { W.Log_record.lsn = W.Lsn.of_int 3; txn = 2;
            prev_lsn = W.Lsn.of_int 1; body = W.Log_record.Commit } ] ) ]
  in
  List.iter
    (fun (name, records) ->
       let dir = fresh_dir () in
       let p = ok_p "create" (Persist.create_dir ~dir) in
       Persist.close p;
       let oc = open_out (Filename.concat dir "wal.nbsc") in
       (* Correctly framed v2 lines — the chain check must trip, not the
          CRC. *)
       output_string oc (Disk_format.wal_magic ^ "\n");
       List.iter
         (fun r ->
            output_string oc (Disk_format.frame (W.Log_record.encode r));
            output_char oc '\n')
         records;
       close_out oc;
       (match Persist.open_dir ~dir with
        | Error (`Corrupt _) -> ()
        | Ok _ -> Alcotest.failf "%s: expected Corrupt, opened fine" name
        | Error e -> Alcotest.failf "%s: %a" name Persist.pp_error e);
       wipe dir)
    bad_wals

(* A crash between writing a temp file and renaming it strands a *.tmp
   orphan; reopening must sweep it so no stale bytes are ever mistaken
   for live state. *)
let test_orphan_tmp_removed () =
  let dir = fresh_dir () in
  let p = ok_p "create" (Persist.create_dir ~dir) in
  setup_orders p;
  insert p 1 "a" 1;
  Fault.arm "snapshot_rename";
  (match Persist.checkpoint p with
   | exception Fault.Injected _ -> ()
   | Ok () -> Alcotest.fail "checkpoint should have crashed"
   | Error e -> Alcotest.failf "checkpoint: %a" Persist.pp_error e);
  Fault.reset ();
  Persist.crash p;
  (* A hand-made orphan too, to cover non-snapshot temp names. *)
  let stray = Filename.concat dir "stale.tmp" in
  let oc = open_out stray in
  output_string oc "junk";
  close_out oc;
  let orphans () =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".tmp")
  in
  Alcotest.(check bool) "orphans present before reopen" true (orphans () <> []);
  let p2 = ok_p "reopen" (Persist.open_dir ~dir) in
  Alcotest.(check (list string)) "orphans swept" [] (orphans ());
  Alcotest.(check int) "rows intact" 1 (List.length (rows p2));
  Persist.close p2;
  wipe dir

(* Property: for a random history of committed transactions plus a
   random in-flight tail at the "crash", reopening yields exactly the
   committed state. *)
let prop_reopen_equals_committed =
  QCheck.Test.make ~name:"reopen = committed prefix" ~count:25
    QCheck.(pair (list_of_size Gen.(int_range 1 12)
                    (triple (int_bound 10) (int_bound 2) bool))
              (list_of_size Gen.(int_bound 5) (pair (int_bound 10) (int_bound 2))))
    (fun (committed_ops, tail_ops) ->
       let dir = fresh_dir () in
       let p = match Persist.create_dir ~dir with
         | Ok p -> p
         | Error _ -> QCheck.Test.fail_report "create_dir failed"
       in
       setup_orders p;
       let mgr = Db.manager (Persist.db p) in
       let run_op txn (a, action) =
         ignore
           (match action with
            | 0 -> Manager.insert mgr ~txn ~table:"t" (H.ri a "v" a)
            | 1 ->
              Manager.update mgr ~txn ~table:"t"
                ~key:(Row.make [ Value.Int a ]) [ (1, Value.Text "u") ]
            | _ ->
              Manager.delete mgr ~txn ~table:"t"
                ~key:(Row.make [ Value.Int a ]))
       in
       List.iter
         (fun (a, action, commit) ->
            let txn = Manager.begin_txn mgr in
            run_op txn (a, action);
            ignore
              (if commit then Manager.commit mgr txn
               else Manager.abort mgr txn))
         committed_ops;
       let committed_image = rows p in
       (* The crash tail: one transaction that never finishes. *)
       (if tail_ops <> [] then begin
          let txn = Manager.begin_txn mgr in
          List.iter (run_op txn) tail_ops
        end);
       (* Crash: abandon without closing. *)
       let p2 = match Persist.open_dir ~dir with
         | Ok p2 -> p2
         | Error _ -> QCheck.Test.fail_report "open_dir failed"
       in
       let got = rows p2 in
       Persist.close p2;
       wipe dir;
       List.length got = List.length committed_image
       && List.for_all2 Row.equal got committed_image)

let () =
  Random.self_init ();
  Alcotest.run "persist"
    [ ( "persist",
        [ Alcotest.test_case "journal and reopen" `Quick test_journal_and_reopen;
          Alcotest.test_case "crash rolls back losers" `Quick
            test_crash_rolls_back_losers;
          Alcotest.test_case "checkpoint truncates" `Quick
            test_checkpoint_truncates;
          Alcotest.test_case "create refuses existing" `Quick
            test_create_refuses_existing;
          Alcotest.test_case "corrupt wal detected" `Quick
            test_corrupt_wal_detected;
          Alcotest.test_case "torn wal tail tolerated" `Quick
            test_torn_tail_tolerated;
          Alcotest.test_case "snapshot replace is atomic" `Quick
            test_snapshot_replace_is_atomic;
          Alcotest.test_case "bad prev_lsn is corrupt" `Quick
            test_bad_prev_lsn_is_corrupt;
          Alcotest.test_case "orphan tmp files removed" `Quick
            test_orphan_tmp_removed ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_reopen_equals_committed ] ) ]
