(* Differential tests for the schema-compiled rule plans: every
   operator is run twice over the same fixed-seed history — once with
   compiled plans, once with the positional interpreter — and the runs
   must agree exactly: identical target tables, identical operator
   counters, identical propagation counts. The interpreter is the
   executable specification; compilation must be observationally
   invisible. *)

open Nbsc_value
open Nbsc_txn
open Nbsc_core
module H = Helpers

type fingerprint = {
  tables : (string * string list) list;  (* table -> sorted row strings *)
  counters : (string * int) list;
  processed : int;
}

let rows_of db table =
  (Db.snapshot db table).Nbsc_relalg.Relalg.rows
  |> List.map Row.to_string
  |> List.sort String.compare

let check_same op a b =
  List.iter2
    (fun (tbl, ra) (tbl', rb) ->
       Alcotest.(check string) (op ^ ": same table order") tbl tbl';
       Alcotest.(check (list string)) (op ^ ": table " ^ tbl) ra rb)
    a.tables b.tables;
  Alcotest.(check (list (pair string int)))
    (op ^ ": counters") a.counters b.counters;
  Alcotest.(check int) (op ^ ": records processed") a.processed b.processed

(* Drive a packed operator to completion against a seeded workload:
   population in small batches interleaved with source writes and
   propagation, then a write burst, then drain. The workload closure
   must derive all its randomness from [d] so both modes see the same
   history. *)
let run_packed db (module T : Transformation.S) ~workload ~targets d =
  let prop = Transformation.start_propagator (Db.manager db) T.rules in
  (* Like the executor's lifecycle: propagation replays the log only
     after the fuzzy scan completes. *)
  while not (Population.finished T.population) do
    ignore (Population.step T.population ~limit:5);
    workload d
  done;
  for _ = 1 to 60 do
    workload d;
    ignore (Propagator.step prop ~limit:4)
  done;
  ignore (Propagator.run_to_head prop);
  let fp =
    { tables = List.map (fun tbl -> (tbl, rows_of db tbl)) targets;
      counters = T.counters ();
      processed = Propagator.records_processed prop }
  in
  Propagator.close prop;
  Population.close T.population;
  fp

(* {1 FOJ, one-to-many} *)

let initial_r = List.init 40 (fun i -> H.ri i ("b" ^ string_of_int i) (i mod 7))
let initial_s = List.init 7 (fun c -> H.si c ("d" ^ string_of_int c))

let run_foj mode =
  let db = H.fresh_foj_db ~r_rows:initial_r ~s_rows:initial_s in
  let d = H.driver ~seed:11 db in
  let packed = Transformation.foj ~plan_mode:mode db H.foj_spec in
  run_packed db packed ~targets:[ "T" ]
    ~workload:(fun d ->
      H.random_r_op d;
      H.random_s_op d)
    d

let test_foj () =
  check_same "foj" (run_foj Plan.Compiled) (run_foj Plan.Interpreted)

(* {1 FOJ, many-to-many} *)

let mm_r_schema =
  Schema.make ~key:[ "pid" ]
    [ Schema.column ~nullable:false "pid" Value.TInt;
      Schema.column "city" Value.TInt ]

let mm_s_schema =
  Schema.make ~key:[ "sid" ]
    [ Schema.column ~nullable:false "sid" Value.TInt;
      Schema.column "city" Value.TInt; Schema.column "chain" Value.TText ]

let mm_spec =
  { Spec.r_table = "P";
    s_table = "Q";
    t_table = "T";
    join_r = [ "city" ];
    join_s = [ "city" ];
    t_join = [ "city" ];
    r_carry = [ "pid" ];
    s_carry = [ "sid"; "chain" ];
    many_to_many = true }

let mm_p pid city = Row.make [ Value.Int pid; Value.Int city ]

let mm_q sid city chain =
  Row.make [ Value.Int sid; Value.Int city; Value.Text chain ]

let fresh_mm_db () =
  let db = Db.create () in
  ignore (Db.create_table db ~name:"P" mm_r_schema);
  ignore (Db.create_table db ~name:"Q" mm_s_schema);
  (match
     Db.load db ~table:"P" (List.init 25 (fun i -> mm_p i (i mod 5)))
   with
   | Ok () -> ()
   | Error e -> Alcotest.failf "load P: %a" Manager.pp_error e);
  (match
     Db.load db ~table:"Q"
       (List.init 12 (fun i -> mm_q i (i mod 5) ("c" ^ string_of_int (i mod 3))))
   with
   | Ok () -> ()
   | Error e -> Alcotest.failf "load Q: %a" Manager.pp_error e);
  db

(* Seeded mutations against P and Q, fan-out included (join-attribute
   updates move a record across join groups). *)
let mm_workload d =
  let mgr = Db.manager d.H.db in
  ignore
    (H.run_txn d (fun txn ->
         match Random.State.int d.H.rng 5 with
         | 0 ->
           d.H.next_r_key <- d.H.next_r_key + 1;
           Manager.insert mgr ~txn ~table:"P"
             (mm_p d.H.next_r_key (Random.State.int d.H.rng 6))
         | 1 ->
           (match H.existing_key d "P" with
            | Some key ->
              Manager.update mgr ~txn ~table:"P" ~key
                [ (1, Value.Int (Random.State.int d.H.rng 6)) ]
            | None -> Ok ())
         | 2 ->
           (match H.existing_key d "P" with
            | Some key -> Manager.delete mgr ~txn ~table:"P" ~key
            | None -> Ok ())
         | 3 ->
           d.H.next_s_key <- d.H.next_s_key + 1;
           Manager.insert mgr ~txn ~table:"Q"
             (mm_q d.H.next_s_key
                (Random.State.int d.H.rng 6)
                ("c" ^ string_of_int (Random.State.int d.H.rng 3)))
         | _ ->
           (match H.existing_key d "Q" with
            | Some key ->
              Manager.update mgr ~txn ~table:"Q" ~key
                [ (2, Value.Text ("z" ^ string_of_int (Random.State.int d.H.rng 9))) ]
            | None -> Ok ())))

let run_foj_mm mode =
  let db = fresh_mm_db () in
  let d = H.driver ~seed:13 db in
  let packed = Transformation.foj ~plan_mode:mode db mm_spec in
  run_packed db packed ~targets:[ "T" ] ~workload:mm_workload d

let test_foj_mm () =
  check_same "foj_mm" (run_foj_mm Plan.Compiled) (run_foj_mm Plan.Interpreted)

(* {1 Split} *)

let initial_t =
  List.init 45 (fun i -> H.ti i ("b" ^ string_of_int i) (i mod 8) (H.city_of (i mod 8)))

let run_split mode =
  let db = H.fresh_split_db ~t_rows:initial_t in
  let d = H.driver ~seed:17 db in
  let packed =
    Transformation.split ~plan_mode:mode db
      (H.split_spec ~assume_consistent:true)
  in
  run_packed db packed ~targets:[ "R"; "S" ]
    ~workload:(fun d -> H.random_t_op ~consistent:true d)
    d

let test_split () =
  check_same "split" (run_split Plan.Compiled) (run_split Plan.Interpreted)

(* {1 Materialized view} *)

let run_matview mode =
  let db = H.fresh_foj_db ~r_rows:initial_r ~s_rows:initial_s in
  let d = H.driver ~seed:19 db in
  let mv = Matview.create db ~plan_mode:mode H.foj_spec in
  while not (Matview.populated mv) do
    ignore (Matview.step mv);
    H.random_r_op d;
    H.random_s_op d
  done;
  for _ = 1 to 60 do
    H.random_r_op d;
    H.random_s_op d
  done;
  Matview.refresh mv;
  Alcotest.(check int) "matview: lag 0 after refresh" 0 (Matview.lag mv);
  let fp =
    { tables = [ ("T", rows_of db "T") ]; counters = []; processed = 0 }
  in
  Matview.drop mv;
  fp

let test_matview () =
  check_same "matview" (run_matview Plan.Compiled) (run_matview Plan.Interpreted)

let () =
  Alcotest.run "differential"
    [ ( "compiled = interpreted",
        [ Alcotest.test_case "foj one-to-many" `Quick test_foj;
          Alcotest.test_case "foj many-to-many" `Quick test_foj_mm;
          Alcotest.test_case "split" `Quick test_split;
          Alcotest.test_case "matview" `Quick test_matview ] ) ]
