(* Tests for engine-level contention handling: the waits-for graph and
   its victim policies, wait-queue fairness, deadlock cycles threading
   through the extra-lock hook and through transferred locks, and the
   anti-starvation governor. *)

open Nbsc_value
open Nbsc_storage
open Nbsc_lock
open Nbsc_txn
open Nbsc_core
open Nbsc_sim
module H = Helpers

(* Three tables with the same shape: "t" and "u" for ordinary records,
   "tgt" standing in for a transformed table that receives transferred
   locks. *)
let fresh ?policy ?fairness () =
  let cat = Catalog.create () in
  List.iter
    (fun name -> ignore (Catalog.create_table cat ~name H.r_schema))
    [ "t"; "u"; "tgt" ];
  let mgr = Manager.create cat in
  Manager.set_contention ?policy ?fairness mgr;
  mgr

let row a = Row.make [ Value.Int a; Value.Text "x"; Value.Int 0 ]
let key a = Row.make [ Value.Int a ]

let ok name = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" name Manager.pp_error e

let seed mgr table keys =
  let txn = Manager.begin_txn mgr in
  List.iter (fun k -> ok "seed" (Manager.insert mgr ~txn ~table (row k))) keys;
  ok "seed commit" (Manager.commit mgr txn)

let upd mgr txn table k =
  Manager.update mgr ~txn ~table ~key:(key k) [ (1, Value.Text "y") ]

let no_locks mgr owner =
  Alcotest.(check int) "victim holds nothing" 0
    (List.length (Lock_table.locks_of_owner (Manager.locks mgr) ~owner))

(* {1 Detection (youngest-in-cycle, the default)} *)

let test_two_txn_cycle () =
  let mgr = fresh () in
  seed mgr "t" [ 1; 2 ];
  let t1 = Manager.begin_txn mgr in
  let t2 = Manager.begin_txn mgr in
  ok "t1 k1" (upd mgr t1 "t" 1);
  ok "t2 k2" (upd mgr t2 "t" 2);
  (match upd mgr t1 "t" 2 with
   | Error (`Blocked [ o ]) -> Alcotest.(check int) "t1 waits on t2" t2 o
   | _ -> Alcotest.fail "expected Blocked");
  (match upd mgr t2 "t" 1 with
   | Error (`Deadlock cycle) ->
     Alcotest.(check (list int)) "cycle names both" [ t1; t2 ]
       (List.sort compare cycle)
   | Error e -> Alcotest.failf "expected Deadlock, got %a" Manager.pp_error e
   | Ok () -> Alcotest.fail "expected Deadlock");
  Alcotest.(check bool) "sentenced" true (Manager.is_victim mgr t2);
  Alcotest.(check bool) "abort-only" true (Manager.is_abort_only mgr t2);
  ok "victim rolls back" (Manager.abort mgr t2);
  Alcotest.(check bool) "graph acyclic" true
    (Wait_graph.acyclic (Manager.wait_graph mgr));
  no_locks mgr t2;
  (* Exactly one victim: the survivor's retry goes through. *)
  ok "t1 retries" (upd mgr t1 "t" 2);
  ok "t1 commit" (Manager.commit mgr t1);
  let s = Manager.Stats.get mgr in
  Alcotest.(check int) "one deadlock" 1 s.Manager.Stats.deadlocks;
  Alcotest.(check int) "no wounds" 0 s.Manager.Stats.victims

let test_three_txn_cycle () =
  let mgr = fresh () in
  seed mgr "t" [ 1; 2; 3 ];
  let t1 = Manager.begin_txn mgr in
  let t2 = Manager.begin_txn mgr in
  let t3 = Manager.begin_txn mgr in
  ok "t1 k1" (upd mgr t1 "t" 1);
  ok "t2 k2" (upd mgr t2 "t" 2);
  ok "t3 k3" (upd mgr t3 "t" 3);
  (match upd mgr t1 "t" 2 with
   | Error (`Blocked _) -> ()
   | _ -> Alcotest.fail "t1 should wait");
  (match upd mgr t2 "t" 3 with
   | Error (`Blocked _) -> ()
   | _ -> Alcotest.fail "t2 should wait");
  (* t3 -> t1 closes a three-node cycle; t3 is the youngest on it. *)
  (match upd mgr t3 "t" 1 with
   | Error (`Deadlock cycle) ->
     Alcotest.(check (list int)) "cycle names all three" [ t1; t2; t3 ]
       (List.sort compare cycle)
   | _ -> Alcotest.fail "expected Deadlock");
  ok "t3 aborts" (Manager.abort mgr t3);
  no_locks mgr t3;
  (* The chain unwinds in order. *)
  ok "t2 retry" (upd mgr t2 "t" 3);
  ok "t2 commit" (Manager.commit mgr t2);
  ok "t1 retry" (upd mgr t1 "t" 2);
  ok "t1 commit" (Manager.commit mgr t1);
  Alcotest.(check bool) "acyclic at rest" true
    (Wait_graph.acyclic (Manager.wait_graph mgr))

(* {1 Prevention policies} *)

let test_wound_wait () =
  let mgr = fresh ~policy:Wait_graph.Wound_wait () in
  seed mgr "t" [ 1; 2 ];
  let t1 = Manager.begin_txn mgr in
  let t2 = Manager.begin_txn mgr in
  ok "t2 k2" (upd mgr t2 "t" 2);
  (* The older requester wounds the younger holder and proceeds within
     the same call — the manager rolls t2 back via the CLR machinery. *)
  ok "t1 wounds t2 and takes k2" (upd mgr t1 "t" 2);
  Alcotest.(check bool) "t2 rolled back" true
    (Manager.status mgr t2 = Manager.Aborted);
  Alcotest.(check bool) "t2 flagged victim" true (Manager.is_victim mgr t2);
  no_locks mgr t2;
  let s = Manager.Stats.get mgr in
  Alcotest.(check int) "one wound" 1 s.Manager.Stats.victims;
  (* A younger requester against an older holder just waits. *)
  let t3 = Manager.begin_txn mgr in
  (match upd mgr t3 "t" 2 with
   | Error (`Blocked owners) ->
     Alcotest.(check (list int)) "younger waits" [ t1 ] owners
   | _ -> Alcotest.fail "younger must wait");
  ok "t1 commit" (Manager.commit mgr t1);
  ok "t3 retry" (upd mgr t3 "t" 2);
  ok "t3 commit" (Manager.commit mgr t3)

let test_wait_die () =
  let mgr = fresh ~policy:Wait_graph.Wait_die () in
  seed mgr "t" [ 1; 2 ];
  let t1 = Manager.begin_txn mgr in
  let t2 = Manager.begin_txn mgr in
  ok "t1 k1" (upd mgr t1 "t" 1);
  (* Younger requester vs older holder: dies on the spot. *)
  (match upd mgr t2 "t" 1 with
   | Error (`Deadlock blockers) ->
     Alcotest.(check (list int)) "sentenced by t1" [ t1 ] blockers
   | _ -> Alcotest.fail "younger must die");
  Alcotest.(check bool) "abort-only" true (Manager.is_abort_only mgr t2);
  ok "t2 aborts" (Manager.abort mgr t2);
  no_locks mgr t2;
  (* Older requester vs younger holder: waits. *)
  let t3 = Manager.begin_txn mgr in
  ok "t3 k2" (upd mgr t3 "t" 2);
  (match upd mgr t1 "t" 2 with
   | Error (`Blocked owners) ->
     Alcotest.(check (list int)) "older waits" [ t3 ] owners
   | _ -> Alcotest.fail "older must wait");
  ok "t3 commit" (Manager.commit mgr t3);
  ok "t1 retry" (upd mgr t1 "t" 2);
  ok "t1 commit" (Manager.commit mgr t1)

(* {1 Cycles through the synchronization machinery} *)

(* The non-blocking-commit hook turns each lock request into an atomic
   multi-resource set; wait registration must cover the whole set, so a
   cycle threading through a hook-acquired lock is still found. *)
let test_cycle_through_lock_hook () =
  let mgr = fresh () in
  seed mgr "t" [ 1 ];
  seed mgr "u" [ 1; 2 ];
  Manager.add_extra_lock_hook mgr ~id:1 (fun ~txn:_ ~table ~key ~mode ->
      if table = "t" then
        [ { Lock_table_many.table = "u"; key;
            lock = { Compat.mode; provenance = Compat.Native } } ]
      else []);
  let t1 = Manager.begin_txn mgr in
  let t2 = Manager.begin_txn mgr in
  (* t1's update of t.1 atomically also locks u.1 through the hook. *)
  ok "t1 t.1 (+u.1)" (upd mgr t1 "t" 1);
  Alcotest.(check bool) "hook lock granted" true
    (Lock_table.holds_any (Manager.locks mgr) ~owner:t1 ~table:"u"
       ~key:(key 1));
  ok "t2 u.2" (upd mgr t2 "u" 2);
  (match upd mgr t1 "u" 2 with
   | Error (`Blocked _) -> ()
   | _ -> Alcotest.fail "t1 waits on t2");
  (* t2 requests the record t1 holds only through the hook. *)
  (match upd mgr t2 "u" 1 with
   | Error (`Deadlock cycle) ->
     Alcotest.(check (list int)) "cycle through the hook lock" [ t1; t2 ]
       (List.sort compare cycle)
   | _ -> Alcotest.fail "expected Deadlock");
  ok "t2 aborts" (Manager.abort mgr t2);
  ok "t1 retry" (upd mgr t1 "u" 2);
  ok "t1 commit" (Manager.commit mgr t1)

(* During non-blocking commit, locks on a source record extend to the
   transformed table with [Source] provenance (Fig. 2). A native
   request hitting such a transferred lock must enter the waits-for
   graph like any other conflict, or two-schema cycles go undetected. *)
let test_cycle_through_transferred_lock () =
  let mgr = fresh () in
  seed mgr "t" [ 1 ];
  seed mgr "u" [ 5 ];
  seed mgr "tgt" [ 1 ];
  Manager.add_extra_lock_hook mgr ~id:1 (fun ~txn:_ ~table ~key ~mode ->
      if table = "t" then
        [ { Lock_table_many.table = "tgt"; key;
            lock = { Compat.mode; provenance = Compat.Source 0 } } ]
      else []);
  let t1 = Manager.begin_txn mgr in
  let t2 = Manager.begin_txn mgr in
  ok "t1 t.1 (+transferred tgt.1)" (upd mgr t1 "t" 1);
  ok "t2 u.5" (upd mgr t2 "u" 5);
  (match upd mgr t1 "u" 5 with
   | Error (`Blocked _) -> ()
   | _ -> Alcotest.fail "t1 waits on t2");
  (* t2's native X on tgt.1 conflicts with t1's transferred X there —
     the Fig. 2 native-vs-transferred cell — closing the cycle. *)
  (match upd mgr t2 "tgt" 1 with
   | Error (`Deadlock cycle) ->
     Alcotest.(check (list int)) "cycle closed by the transferred lock"
       [ t1; t2 ] (List.sort compare cycle)
   | _ -> Alcotest.fail "expected Deadlock");
  ok "t2 aborts" (Manager.abort mgr t2);
  ok "t1 retry" (upd mgr t1 "u" 5);
  ok "t1 commit" (Manager.commit mgr t1)

(* {1 Wait-queue fairness} *)

let test_no_barging_past_the_queue () =
  let mgr = fresh () in
  seed mgr "t" [ 1 ];
  let t1 = Manager.begin_txn mgr in
  let t2 = Manager.begin_txn mgr in
  let t3 = Manager.begin_txn mgr in
  ok "t1 k1" (upd mgr t1 "t" 1);
  (match upd mgr t2 "t" 1 with
   | Error (`Blocked _) -> ()
   | _ -> Alcotest.fail "t2 queues");
  (match upd mgr t3 "t" 1 with
   | Error (`Blocked owners) ->
     Alcotest.(check bool) "t3 told to wait behind t2" true
       (List.mem t2 owners)
   | _ -> Alcotest.fail "t3 queues");
  ok "t1 commit" (Manager.commit mgr t1);
  (* The lock is free, but t2 queued first: t3 must still wait. *)
  (match upd mgr t3 "t" 1 with
   | Error (`Blocked owners) ->
     Alcotest.(check (list int)) "held back for t2" [ t2 ] owners
   | _ -> Alcotest.fail "no barging past t2");
  ok "t2 takes its turn" (upd mgr t2 "t" 1);
  ok "t2 commit" (Manager.commit mgr t2);
  ok "t3 last" (upd mgr t3 "t" 1);
  ok "t3 commit" (Manager.commit mgr t3)

let test_barging_when_fairness_off () =
  let mgr = fresh ~fairness:false () in
  seed mgr "t" [ 1 ];
  let t1 = Manager.begin_txn mgr in
  let t2 = Manager.begin_txn mgr in
  let t3 = Manager.begin_txn mgr in
  ok "t1 k1" (upd mgr t1 "t" 1);
  (match upd mgr t2 "t" 1 with
   | Error (`Blocked _) -> ()
   | _ -> Alcotest.fail "t2 blocked");
  ok "t1 commit" (Manager.commit mgr t1);
  (* First retry wins, queue position or not. *)
  ok "t3 barges" (upd mgr t3 "t" 1);
  ok "t3 commit" (Manager.commit mgr t3);
  ok "t2 eventually" (upd mgr t2 "t" 1);
  ok "t2 commit" (Manager.commit mgr t2)

(* {1 Properties} *)

(* Whatever the schedule and policy: the waits-for graph is acyclic
   after every resolution, a sentenced transaction releases every lock
   on abort, and nothing is left waiting once all transactions end. *)
let arb_schedule =
  QCheck.(pair (int_bound 2)
            (list_of_size Gen.(int_bound 120)
               (pair (int_bound 3) (int_bound 5))))

let prop_resolution_invariants =
  QCheck.Test.make ~name:"acyclic after resolution; victims disarmed"
    ~count:100 arb_schedule
    (fun (p, schedule) ->
       let policy =
         match p with
         | 0 -> Wait_graph.Youngest_in_cycle
         | 1 -> Wait_graph.Wait_die
         | _ -> Wait_graph.Wound_wait
       in
       let mgr = fresh ~policy () in
       seed mgr "t" [ 0; 1; 2; 3; 4; 5 ];
       let g = Manager.wait_graph mgr in
       let locks = Manager.locks mgr in
       let txns = Array.make 4 None in
       let get_txn i =
         match txns.(i) with
         | Some t when Manager.is_active mgr t -> t
         | _ ->
           let t = Manager.begin_txn mgr in
           txns.(i) <- Some t;
           t
       in
       let holds = ref true in
       let check_acyclic () =
         if not (Wait_graph.acyclic g) then holds := false
       in
       List.iter
         (fun (i, k) ->
            let txn = get_txn i in
            (match upd mgr txn "t" k with
             | Ok () | Error (`Blocked _) -> ()
             | Error (`Deadlock _) | Error `Abort_only ->
               ignore (Manager.abort mgr txn);
               if Lock_table.locks_of_owner locks ~owner:txn <> [] then
                 holds := false
             | Error _ -> ignore (Manager.abort mgr txn));
            check_acyclic ())
         schedule;
       Array.iter
         (function
           | Some t when Manager.is_active mgr t ->
             ignore (Manager.commit mgr t)
           | _ -> ())
         txns;
       check_acyclic ();
       !holds && Wait_graph.waiters g = [])

(* {1 The anti-starvation governor} *)

(* Fig. 4(d)'s pathology: a static priority below the log-generation
   rate never converges. With a governor attached the same point
   completes — the feedback loop escalates the effective share while
   propagation lag stalls. *)
let test_governor_rescues_starvation () =
  let kind = Sim.Split_scenario { t_rows = 500; assume_consistent = true } in
  let workload =
    { Sim.n_clients = 4; think_time = 5_000; ops_per_txn = 10;
      source_share = 0.2; seed = 5 }
  in
  let config pace =
    { Transform.scan_batch = 16;
      propagate_batch = 32;
      analysis = Analysis.Remaining_records 8;
      strategy = Transform.Nonblocking_abort;
      drop_sources = false;
      sync_gate = (fun () -> true);
      pace }
  in
  let run pace =
    Sim.run ~kind ~workload
      ~background:
        (Sim.Transformation { Sim.priority = 0.0005; config = config pace })
      ~duration:400_000 ~warmup:10_000 ()
  in
  let starved = run None in
  Alcotest.(check bool) "a 0.05% static share starves" true
    (starved.Sim.tf_done_at = None);
  let g = Governor.create () in
  let rescued = run (Some g) in
  Alcotest.(check bool) "the governed run completes" true
    (rescued.Sim.tf_done_at <> None);
  Alcotest.(check bool) "the governor escalated" true
    ((Governor.stats g).Governor.escalations > 0)

let () =
  Alcotest.run "deadlock"
    [ ( "detection",
        [ Alcotest.test_case "two-txn cycle" `Quick test_two_txn_cycle;
          Alcotest.test_case "three-txn cycle" `Quick test_three_txn_cycle ] );
      ( "policies",
        [ Alcotest.test_case "wound-wait" `Quick test_wound_wait;
          Alcotest.test_case "wait-die" `Quick test_wait_die ] );
      ( "synchronization locks",
        [ Alcotest.test_case "cycle through the lock hook" `Quick
            test_cycle_through_lock_hook;
          Alcotest.test_case "cycle through a transferred lock" `Quick
            test_cycle_through_transferred_lock ] );
      ( "fairness",
        [ Alcotest.test_case "no barging past the queue" `Quick
            test_no_barging_past_the_queue;
          Alcotest.test_case "barging with fairness off" `Quick
            test_barging_when_fairness_off ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_resolution_invariants ] );
      ( "governor",
        [ Alcotest.test_case "starvation point completes" `Slow
            test_governor_rescues_starvation ] ) ]
