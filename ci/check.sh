#!/bin/sh
# CI gate: build + tests, plus a formatting check when ocamlformat is
# available. The formatting step is advisory-by-absence: environments
# without ocamlformat (the binary is not part of the base toolchain)
# skip it rather than fail.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

# dune runtest already runs the crash matrix with a random seed; this
# second pass pins the seed so a CI failure is reproducible verbatim.
echo "== crash matrix (fixed seed) =="
NBSC_CRASH_SEED=42 dune exec test/test_crash_matrix.exe

# Same idea for the contention soak: a pinned seed makes any livelock
# or divergence reproducible verbatim.
echo "== contention soak (fixed seed) =="
NBSC_CONTENTION_SEED=42 dune exec test/test_contention.exe

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== ocamlformat check =="
  dune build @fmt
else
  echo "== ocamlformat not installed; skipping format check =="
fi

echo "OK"
