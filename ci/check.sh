#!/bin/sh
# CI gate: build + tests, plus a formatting check when ocamlformat is
# available. The formatting step is advisory-by-absence: environments
# without ocamlformat (the binary is not part of the base toolchain)
# skip it rather than fail.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

# dune runtest already runs the crash matrix with a random seed; this
# second pass pins the seed so a CI failure is reproducible verbatim.
echo "== crash matrix (fixed seed) =="
NBSC_CRASH_SEED=42 dune exec test/test_crash_matrix.exe

# Same idea for the contention soak: a pinned seed makes any livelock
# or divergence reproducible verbatim.
echo "== contention soak (fixed seed) =="
NBSC_CONTENTION_SEED=42 dune exec test/test_contention.exe

# Storage-integrity matrix at a pinned seed: checksummed-format
# verification, disk-error model (EIO retry, ENOSPC degraded mode),
# and the flip/truncate fuzz property.
echo "== integrity matrix (fixed seed) =="
NBSC_CRASH_SEED=42 dune exec test/test_integrity.exe

# End-to-end scrub drill: a freshly generated store must scrub clean
# (exit 0); after one flipped byte the scrub must refuse it (non-zero).
echo "== nbsc scrub drill =="
scrub_dir=$(mktemp -u /tmp/nbsc_scrub.XXXXXX)
dune exec bin/nbsc_cli.exe -- mkstore "$scrub_dir" --rows 200 >/dev/null
dune exec bin/nbsc_cli.exe -- scrub "$scrub_dir" >/dev/null
dune exec bin/nbsc_cli.exe -- flip "$scrub_dir/wal.nbsc" >/dev/null
if dune exec bin/nbsc_cli.exe -- scrub "$scrub_dir" >/dev/null 2>&1; then
  echo "nbsc scrub missed injected corruption" >&2
  rm -rf "$scrub_dir"
  exit 1
fi
rm -rf "$scrub_dir"

# Trace-enabled fixed-seed simulation: write the event stream as JSON
# lines, then have the CLI re-read it and check one well-formed object
# per line with the required fields (ev/name/at, span/parent on span
# events). Guards the observability wire format end to end.
echo "== trace output validation (fixed seed) =="
trace_out=$(mktemp /tmp/nbsc_trace.XXXXXX.jsonl)
wal_out=$(mktemp /tmp/nbsc_bench_wal.XXXXXX.json)
trap 'rm -f "$trace_out" "$wal_out"' EXIT
dune exec bin/nbsc_cli.exe -- trace --seed 42 --out "$trace_out" --validate
test -s "$trace_out"

# The bounded-memory WAL soak: a fixed-seed simulation with a
# never-synchronizing schema change plus sustained traffic must keep
# the live log's high-water mark under the bound and independent of
# run length (test/test_sim.ml, group "soak").
echo "== wal soak (bounded log memory, fixed seed) =="
dune exec test/test_sim.exe -- test soak

# Smoke the wal bench end to end and check it produces valid JSON.
echo "== bench wal smoke =="
dune exec bench/main.exe -- wal quick --out "$wal_out" >/dev/null
test -s "$wal_out"

# Smoke the engine bench (quick scale) and gate it: the run must emit
# the expected JSON shape and stay within 20% of the committed
# baseline's mixed-workload throughput (the gate exits non-zero on a
# regression past the margin).
echo "== bench engine smoke + regression gate =="
engine_out=$(mktemp /tmp/nbsc_bench_engine.XXXXXX.json)
trap 'rm -f "$trace_out" "$wal_out" "$engine_out"' EXIT
dune exec bench/main.exe -- engine quick --out "$engine_out" \
  --gate ci/bench_engine_baseline.json >/dev/null
test -s "$engine_out"
for key in '"bench":"engine"' '"populate"' '"propagate"' '"txn_per_s"' \
  '"alloc_words_per_txn"' '"baseline"' '"speedup_txn"'; do
  grep -q "$key" "$engine_out" || {
    echo "bench engine JSON missing $key" >&2
    exit 1
  }
done

# Smoke the shard bench (quick scale): serial vs 1/2/4/8-domain runs
# of the same split transformation. The bench itself exits non-zero if
# any sharded configuration diverges from the serial baseline (the
# 1-domain run must be byte-identical, record level included), and the
# gate holds the 1-domain population rate within 20% of the committed
# baseline.
echo "== bench shard smoke + equality + regression gate =="
shard_out=$(mktemp /tmp/nbsc_bench_shard.XXXXXX.json)
trap 'rm -f "$trace_out" "$wal_out" "$engine_out" "$shard_out"' EXIT
# The gated 1-domain populate window is a few milliseconds at quick
# scale, so the rate is noisy on a loaded 1-core host: take best of
# three. A real regression (or an equality divergence, which is
# deterministic) still fails all three attempts.
shard_ok=0
for attempt in 1 2 3; do
  if dune exec bench/main.exe -- shard quick --out "$shard_out" \
    --gate ci/bench_shard_baseline.json >/dev/null; then
    shard_ok=1
    break
  fi
  echo "bench shard gate: attempt $attempt failed, retrying"
done
if [ "$shard_ok" != 1 ]; then
  echo "bench shard gate failed on all attempts" >&2
  exit 1
fi
test -s "$shard_out"
for key in '"bench":"shard"' '"serial"' '"runs"' '"populate_rows_per_s"' \
  '"propagate_records_per_s"' '"equal_to_serial"'; do
  grep -q "$key" "$shard_out" || {
    echo "bench shard JSON missing $key" >&2
    exit 1
  }
done
if grep -q '"equal_to_serial":false' "$shard_out"; then
  echo "bench shard: a sharded run diverged from the serial baseline" >&2
  exit 1
fi

# Migration-strategy bench (full scale — it is cheap): the same FOJ
# change under eager, lazy and hybrid initial-image migration with a
# live workload. The bench itself exits non-zero if any strategy's
# target diverges from the FOJ oracle, and the gate holds the
# aggregate workload throughput within 30% of the committed baseline
# (full scale so the baseline's scale matches the run's).
echo "== bench migrate smoke + oracle equality + regression gate =="
migrate_out=$(mktemp /tmp/nbsc_bench_migrate.XXXXXX.json)
trap 'rm -f "$trace_out" "$wal_out" "$engine_out" "$shard_out" "$migrate_out"' EXIT
dune exec bench/main.exe -- migrate --out "$migrate_out" \
  --gate ci/bench_migrate_baseline.json >/dev/null
test -s "$migrate_out"
for key in '"bench":"migrate"' '"eager"' '"lazy"' '"hybrid"' \
  '"demand_migrations"' '"workload_txn_per_s"' '"lazy_total_vs_eager"'; do
  grep -q "$key" "$migrate_out" || {
    echo "bench migrate JSON missing $key" >&2
    exit 1
  }
done

# Competitor-strategy bench (full scale — it is cheap): the paper's
# log-redo method, the DBLog-style virtual-cut populator, and the
# shadow-table baseline run the same FOJ change under the same live
# workload. The bench itself exits non-zero if any strategy's target
# diverges from its relational FOJ oracle (crash-resume mini-runs
# included), and the gate holds the paper run's workload throughput
# within 30% of the committed baseline. The measured window is tens of
# milliseconds, so the rate is noisy on a loaded host: best of three.
echo "== bench compare smoke + oracle equality + regression gate =="
compare_out=$(mktemp /tmp/nbsc_bench_compare.XXXXXX.json)
trap 'rm -f "$trace_out" "$wal_out" "$engine_out" "$shard_out" "$migrate_out" "$compare_out"' EXIT
compare_ok=0
for attempt in 1 2 3; do
  if dune exec bench/main.exe -- compare --out "$compare_out" \
    --gate ci/bench_compare_baseline.json >/dev/null; then
    compare_ok=1
    break
  fi
  echo "bench compare gate: attempt $attempt failed, retrying"
done
if [ "$compare_ok" != 1 ]; then
  echo "bench compare gate failed on all attempts" >&2
  exit 1
fi
test -s "$compare_out"
for key in '"bench":"compare"' '"paper"' '"virtual-cut"' '"shadow"' \
  '"catchup_lag_peak"' '"wal_high_water"' '"crash_resume_quanta"' \
  '"paper_txn_per_s"' '"shadow_vs_paper_resume"'; do
  grep -q "$key" "$compare_out" || {
    echo "bench compare JSON missing $key" >&2
    exit 1
  }
done

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== ocamlformat check =="
  dune build @fmt
else
  echo "== ocamlformat not installed; skipping format check =="
fi

echo "OK"
