(* nbsc — command-line front end.

   Subcommands:
     demo        run a narrated demo transformation (foj | split | m2m)
     concurrent  run two transformations at once via the job registry
     figure      regenerate one of the paper's figures (4a 4b 4c 4d)
     sync        measure the synchronization window per strategy
     matrix      print the Figure 2 lock-compatibility matrix
     log         run a small transformation and dump the resulting log
     contention  high-conflict run; deadlock-detector and governor stats
     stats       run a demo change and dump the metrics registry
     trace       run a traced fixed-seed simulation; write/validate JSONL *)

open Cmdliner
open Nbsc_value
open Nbsc_core
module Manager = Nbsc_txn.Manager
module Obs = Nbsc_obs.Obs
module Json = Nbsc_obs.Json
module Sc = Db.Schema_change

let say fmt = Format.printf (fmt ^^ "@.")

let start_sc db ?options ~config spec =
  match Sc.start db ~config ?options spec with
  | Ok sc -> sc
  | Error e -> failwith (Nbsc_error.to_string e)

(* {1 demo} *)

let build_foj_db ~rows =
  let db = Db.create () in
  let col = Schema.column in
  ignore
    (Db.create_table db ~name:"R"
       (Schema.make ~key:[ "a" ]
          [ col ~nullable:false "a" Value.TInt; col "b" Value.TText;
            col "c" Value.TInt ]));
  ignore
    (Db.create_table db ~name:"S"
       (Schema.make ~key:[ "c" ]
          [ col ~nullable:false "c" Value.TInt; col "d" Value.TText ]));
  (match
     Db.load db ~table:"R"
       (List.init rows (fun i ->
            Row.make
              [ Value.Int i; Value.Text (Printf.sprintf "r%d" i);
                Value.Int (i mod 97) ]))
   with
   | Ok () -> ()
   | Error _ -> failwith "load");
  (match
     Db.load db ~table:"S"
       (List.init 97 (fun c ->
            Row.make [ Value.Int c; Value.Text (Printf.sprintf "s%d" c) ]))
   with
   | Ok () -> ()
   | Error _ -> failwith "load");
  db

let foj_spec ~m2m =
  { Spec.r_table = "R"; s_table = "S"; t_table = "T";
    join_r = [ "c" ]; join_s = [ "c" ]; t_join = [ "c" ];
    r_carry = [ "a"; "b" ]; s_carry = [ "d" ]; many_to_many = m2m }

let build_split_db ~rows =
  let db = Db.create () in
  let col = Schema.column in
  ignore
    (Db.create_table db ~name:"T"
       (Schema.make ~key:[ "a" ]
          [ col ~nullable:false "a" Value.TInt; col "b" Value.TText;
            col "c" Value.TInt; col "d" Value.TText ]));
  (match
     Db.load db ~table:"T"
       (List.init rows (fun i ->
            let c = i mod 53 in
            Row.make
              [ Value.Int i; Value.Text (Printf.sprintf "t%d" i); Value.Int c;
                Value.Text (Printf.sprintf "city%d" c) ]))
   with
   | Ok () -> ()
   | Error _ -> failwith "load");
  db

let split_spec =
  { Spec.t_table' = "T"; r_table' = "R"; s_table' = "S";
    r_cols = [ "a"; "b"; "c" ]; s_cols = [ "c"; "d" ];
    split_key = [ "c" ]; assume_consistent = true }

let run_demo which rows migration =
  let config =
    { Transform.default_config with
      Transform.drop_sources = false;
      scan_batch = 64;
      propagate_batch = 64 }
  in
  let options =
    { (Transform.options_of_config config) with Sc.Options.strategy = migration }
  in
  let db, sc =
    match which with
    | `Foj ->
      let db = build_foj_db ~rows in
      (db, start_sc db ~options ~config (Spec.Foj (foj_spec ~m2m:false)))
    | `M2m ->
      let db = build_foj_db ~rows in
      (db, start_sc db ~options ~config (Spec.Foj (foj_spec ~m2m:true)))
    | `Split ->
      let db = build_split_db ~rows in
      (db, start_sc db ~options ~config (Spec.Split split_spec))
  in
  let mgr = Db.manager db in
  let rng = Random.State.make [| 99 |] in
  let writes = ref 0 in
  let source = match which with `Split -> "T" | `Foj | `M2m -> "R" in
  let between () =
    if (Sc.status sc).Sc.sc_routing = `Sources then begin
      incr writes;
      let txn = Manager.begin_txn mgr in
      (match
         Manager.update mgr ~txn ~table:source
           ~key:(Row.make [ Value.Int (Random.State.int rng rows) ])
           [ (1, Value.Text (Printf.sprintf "w%d" !writes)) ]
       with
       | Ok () -> ignore (Manager.commit mgr txn)
       | Error _ -> ignore (Manager.abort mgr txn))
    end
  in
  (match Sc.run ~between sc with
   | Ok () -> ()
   | Error e -> failwith (Nbsc_error.to_string e));
  say "%a" Sc.pp_info (Sc.status sc);
  say "migration=%s demand_migrations=%d"
    (Sc.Options.migration_to_string migration)
    (Transform.demand_migrations (Sc.transform sc));
  say "concurrent writes while transforming: %d" !writes;
  List.iter
    (fun t -> say "table %-3s %6d rows" t (Db.row_count db t))
    (Transform.targets (Sc.transform sc));
  `Ok ()

let demo_kind =
  let parse = function
    | "foj" -> Ok `Foj
    | "split" -> Ok `Split
    | "m2m" -> Ok `M2m
    | s -> Error (`Msg (Printf.sprintf "unknown demo %S (foj|split|m2m)" s))
  in
  let print ppf = function
    | `Foj -> Format.pp_print_string ppf "foj"
    | `Split -> Format.pp_print_string ppf "split"
    | `M2m -> Format.pp_print_string ppf "m2m"
  in
  Arg.conv (parse, print)

let migration_conv =
  let parse s =
    match Sc.Options.migration_of_string s with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg (Printf.sprintf "unknown strategy %S (eager|lazy|hybrid[:N])" s))
  in
  let print ppf m =
    Format.pp_print_string ppf (Sc.Options.migration_to_string m)
  in
  Arg.conv (parse, print)

let demo_cmd =
  let kind =
    Arg.(required & pos 0 (some demo_kind) None
         & info [] ~docv:"KIND" ~doc:"foj, split or m2m")
  in
  let rows =
    Arg.(value & opt int 5000 & info [ "rows" ] ~doc:"source table size")
  in
  let migration =
    Arg.(value & opt migration_conv Sc.Options.Eager
         & info [ "strategy" ]
             ~doc:"migration strategy: eager, lazy or hybrid[:N]")
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"run a narrated non-blocking transformation")
    Term.(ret (const run_demo $ kind $ rows $ migration))

(* {1 concurrent}

   Two independent transformations — an FOJ of R and S into T, and a
   horizontal split archiving U — registered on the same database and
   driven round-robin through its job registry, with user transactions
   interleaved between rounds. *)

let build_concurrent_db ~rows =
  let db = build_foj_db ~rows in
  let col = Schema.column in
  ignore
    (Db.create_table db ~name:"U"
       (Schema.make ~key:[ "k" ]
          [ col ~nullable:false "k" Value.TInt; col "v" Value.TText;
            col "age" Value.TInt ]));
  (match
     Db.load db ~table:"U"
       (List.init rows (fun i ->
            Row.make
              [ Value.Int i; Value.Text (Printf.sprintf "u%d" i);
                Value.Int (i mod 100) ]))
   with
   | Ok () -> ()
   | Error _ -> failwith "load");
  db

let run_concurrent rows =
  let db = build_concurrent_db ~rows in
  let config =
    { Transform.default_config with
      Transform.drop_sources = false;
      scan_batch = 64;
      propagate_batch = 64 }
  in
  let foj_sc = start_sc db ~config (Spec.Foj (foj_spec ~m2m:false)) in
  let hs_sc =
    start_sc db ~config
      (Spec.Hsplit
         { Spec.h_source = "U"; h_true_table = "U_old";
           h_false_table = "U_live";
           h_pred = Pred.Cmp ("age", Pred.Ge, Value.Int 50) })
  in
  let foj_tf = Sc.transform foj_sc and hs_tf = Sc.transform hs_sc in
  say "registered jobs: %s" (String.concat ", " (Db.jobs db));
  let mgr = Db.manager db in
  let rng = Random.State.make [| 7 |] in
  let writes = ref 0 and rounds = ref 0 in
  let touch table =
    if rows <= 0 then ()
    else begin
      incr writes;
    let txn = Manager.begin_txn mgr in
    match
      Manager.update mgr ~txn ~table
        ~key:(Row.make [ Value.Int (Random.State.int rng rows) ])
        [ (1, Value.Text (Printf.sprintf "w%d" !writes)) ]
    with
    | Ok () -> ignore (Manager.commit mgr txn)
    | Error _ -> ignore (Manager.abort mgr txn)
    end
  in
  let between () =
    incr rounds;
    if Transform.routing foj_tf = `Sources then touch "R";
    if Transform.routing hs_tf = `Sources then touch "U"
  in
  (match Db.run_jobs ~between db with
   | Ok () -> ()
   | Error m -> failwith m);
  say "%-18s %a" (Transform.job_name foj_tf) Transform.pp_progress
    (Transform.progress foj_tf);
  say "%-18s %a" (Transform.job_name hs_tf) Transform.pp_progress
    (Transform.progress hs_tf);
  say "scheduler rounds: %d; user writes interleaved: %d" !rounds !writes;
  List.iter
    (fun t -> say "table %-6s %6d rows" t (Db.row_count db t))
    (Transform.targets foj_tf @ Transform.targets hs_tf);
  `Ok ()

let concurrent_cmd =
  let rows =
    Arg.(value & opt int 2000 & info [ "rows" ] ~doc:"source table size")
  in
  Cmd.v
    (Cmd.info "concurrent"
       ~doc:"run two transformations at once through the job registry")
    Term.(ret (const run_concurrent $ rows))

(* {1 figure} *)

let run_figure name quick =
  let module E = Nbsc_sim.Experiment in
  let setup = if quick then E.quick_setup else E.default_setup in
  let workloads = [ 50.; 60.; 70.; 80.; 90.; 100. ] in
  let print points = List.iter (fun p -> say "%a" E.pp_point p) points in
  match name with
  | "4a" | "4b" ->
    print (E.fig4ab_population ~setup ~workloads ());
    `Ok ()
  | "4c" ->
    say "-- 20%% updates on T --";
    print (E.fig4c_propagation ~setup ~source_share:0.2 ~workloads ());
    say "-- 80%% updates on T --";
    print (E.fig4c_propagation ~setup ~source_share:0.8 ~workloads ());
    `Ok ()
  | "4d" ->
    print
      (E.fig4d_priority ~setup ~workload_pct:75.
         ~priorities:[ 0.0005; 0.001; 0.002; 0.005; 0.01; 0.02; 0.04; 0.08 ]
         ());
    `Ok ()
  | other ->
    `Error (false, Printf.sprintf "unknown figure %S (4a|4b|4c|4d)" other)

let figure_cmd =
  let fig_name =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FIGURE" ~doc:"4a, 4b, 4c or 4d")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"reduced scale, fast")
  in
  Cmd.v
    (Cmd.info "figure" ~doc:"regenerate one of the paper's figures")
    Term.(ret (const run_figure $ fig_name $ quick))

(* {1 sync} *)

let run_sync () =
  let module E = Nbsc_sim.Experiment in
  List.iter
    (fun strategy ->
       match E.sync_window ~strategy () with
       | Error e -> say "sync window failed: %s" (Nbsc_error.to_string e)
       | Ok r ->
         say "%-22s final-iteration records=%d wall=%s forced aborts=%d"
           r.E.strategy_name r.E.final_records
           (match r.E.wall_ns with
            | Some ns -> Printf.sprintf "%.4f ms" (float_of_int ns /. 1e6)
            | None -> "n/a")
           r.E.forced_aborts)
    [ Transform.Nonblocking_abort; Transform.Nonblocking_commit;
      Transform.Blocking_commit ];
  `Ok ()

let sync_cmd =
  Cmd.v
    (Cmd.info "sync" ~doc:"measure the synchronization window per strategy")
    Term.(ret (const run_sync $ const ()))

(* {1 matrix} *)

let matrix_cmd =
  Cmd.v
    (Cmd.info "matrix" ~doc:"print the Figure 2 lock-compatibility matrix")
    Term.(
      ret
        (const (fun () ->
             say "%a" Nbsc_lock.Compat.pp_figure2 ();
             `Ok ())
         $ const ()))

(* {1 log} *)

let run_log rows =
  let db = build_foj_db ~rows in
  let tf =
    Transform.foj db
      ~config:{ Transform.default_config with Transform.drop_sources = false }
      (foj_spec ~m2m:false)
  in
  let mgr = Db.manager db in
  let n = ref 0 in
  (match
     Transform.run tf ~between:(fun () ->
         incr n;
         if !n <= 3 then begin
           let txn = Manager.begin_txn mgr in
           (match
              Manager.update mgr ~txn ~table:"R"
                ~key:(Row.make [ Value.Int (!n - 1) ])
                [ (1, Value.Text "touched") ]
            with
            | Ok () -> ignore (Manager.commit mgr txn)
            | Error _ -> ignore (Manager.abort mgr txn))
         end)
   with
   | Ok () -> ()
   | Error m -> failwith m);
  Nbsc_wal.Log.iter (Db.log db) (fun r ->
      say "%a" Nbsc_wal.Log_record.pp r);
  let log = Db.log db in
  say "-- wal: base %a, head %a, %d live records in %d segments, %d truncated"
    Nbsc_wal.Lsn.pp (Nbsc_wal.Log.base log) Nbsc_wal.Lsn.pp
    (Nbsc_wal.Log.head log) (Nbsc_wal.Log.length log)
    (Nbsc_wal.Log.segments log)
    (Nbsc_wal.Log.truncated_total log);
  `Ok ()

let log_cmd =
  let rows =
    Arg.(value & opt int 5 & info [ "rows" ] ~doc:"source table size")
  in
  Cmd.v
    (Cmd.info "log"
       ~doc:"run a small transformation and dump the write-ahead log")
    Term.(ret (const run_log $ rows))

(* {1 contention}

   A deliberately hostile run: a tiny hot table, most updates aimed at
   it, and a transformation competing for the same rows — then print
   what the engine's contention machinery did about it. *)

let run_contention governed duration =
  let module Sim = Nbsc_sim.Sim in
  let module Metrics = Nbsc_sim.Metrics in
  let kind = Sim.Split_scenario { t_rows = 40; assume_consistent = true } in
  let workload =
    { Sim.n_clients = 24; think_time = 400; ops_per_txn = 6;
      source_share = 0.9; seed = 42 }
  in
  let pace = if governed then Some (Governor.create ()) else None in
  let config =
    { Transform.scan_batch = 8;
      propagate_batch = 16;
      analysis = Analysis.Remaining_records 8;
      strategy = Transform.Nonblocking_commit;
      drop_sources = false;
      (* Governed runs let the change finish, so the governor's
         escalate-then-relax cycle is visible end to end; ungoverned
         runs gate sync off so the hot spot never evaporates. *)
      sync_gate = (fun () -> governed);
      pace }
  in
  let priority = if governed then 0.002 else 0.1 in
  let r =
    Sim.run ~kind ~workload
      ~background:(Sim.Transformation { Sim.priority; config })
      ~duration ~warmup:(duration / 20) ()
  in
  let s = r.Sim.mgr_stats in
  say "engine:   ops=%d commits=%d aborts=%d blocked=%d"
    s.Manager.Stats.ops s.Manager.Stats.commits s.Manager.Stats.aborts
    s.Manager.Stats.blocked;
  say "detector: lock_waits=%d deadlocks(Die)=%d wounded=%d"
    s.Manager.Stats.lock_waits s.Manager.Stats.deadlocks
    s.Manager.Stats.victims;
  say "clients:  %a" Metrics.pp_summary r.Sim.summary;
  (match pace with
   | Some g -> say "governor: %a" Governor.pp_stats (Governor.stats g)
   | None -> ());
  say "tf:       %s"
    (match r.Sim.tf_done_at with
     | Some t -> Printf.sprintf "completed at t=%d" t
     | None -> "still running at horizon");
  `Ok ()

let contention_cmd =
  let governed =
    Arg.(value & flag
         & info [ "governed" ]
             ~doc:
               "start the transformation at a starvation-level priority \
                and let the anti-starvation governor drive it home")
  in
  let duration =
    Arg.(value & opt int 150_000
         & info [ "duration" ] ~doc:"virtual-time horizon")
  in
  Cmd.v
    (Cmd.info "contention"
       ~doc:
         "run a high-conflict workload and print deadlock-detector and \
          governor statistics")
    Term.(ret (const run_contention $ governed $ duration))

(* {1 crash-demo}

   Narrated crash drill: build a durable store, start a split, kill the
   "process" at a chosen fault-injection site, then reopen the directory
   and resume the schema change from its checkpointed position. *)

module Persist = Nbsc_engine.Persist
module Fault = Nbsc_engine.Fault
module Recovery = Nbsc_engine.Recovery

let run_crash_demo site after rows keep =
  if not (List.mem site Fault.all_sites) then
    `Error
      (false,
       Printf.sprintf "unknown fault site %S (one of: %s)" site
         (String.concat ", " Fault.all_sites))
  else begin
    Random.self_init ();
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "nbsc_crash_demo_%d" (Random.int 1_000_000))
    in
    let wipe () =
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end
    in
    (* Satellite of the durability work: persistence errors surface as
       diagnosable messages, never an assertion failure. *)
    let surface what = function
      | Ok v -> v
      | Error e ->
        failwith (Format.asprintf "%s: %a" what Persist.pp_error e)
    in
    let run () =
      Fault.reset ();
      let p = surface "create" (Persist.create_dir ~dir) in
      let db = Persist.db p in
      let col = Schema.column in
      ignore
        (Db.create_table db ~name:"T"
           (Schema.make ~key:[ "a" ]
              [ col ~nullable:false "a" Value.TInt; col "b" Value.TText;
                col "c" Value.TInt; col "d" Value.TText ]));
      (match
         Db.load db ~table:"T"
           (List.init rows (fun i ->
                let c = i mod 53 in
                Row.make
                  [ Value.Int i; Value.Text (Printf.sprintf "t%d" i);
                    Value.Int c; Value.Text (Printf.sprintf "city%d" c) ]))
       with
       | Ok () -> ()
       | Error _ -> failwith "load failed");
      surface "checkpoint" (Persist.checkpoint p);
      say "created %s: table T, %d rows (checkpointed)" dir rows;
      let config =
        { Transform.default_config with
          Transform.drop_sources = false;
          scan_batch = 32;
          propagate_batch = 32 }
      in
      let tf = Sc.transform (start_sc db ~config (Spec.Split split_spec)) in
      say "started %s as job %s; arming fault site %S (trigger on hit %d)"
        (Transform.name tf) (Transform.job_name tf) site (after + 1);
      Fault.arm ~after site;
      let mgr = Db.manager db in
      let rng = Random.State.make [| 13 |] in
      let writes = ref 0 in
      let traffic d =
        (* Only while the change is in flight and still routed at the
           source — afterwards T is either dropped or demoted. *)
        if Db.jobs d <> [] && Transform.routing tf = `Sources then begin
          incr writes;
          let txn = Manager.begin_txn mgr in
          match
            Manager.update mgr ~txn ~table:"T"
              ~key:(Row.make [ Value.Int (Random.State.int rng rows) ])
              [ (1, Value.Text (Printf.sprintf "w%d" !writes)) ]
          with
          | Ok () -> ignore (Manager.commit mgr txn)
          | Error _ -> ignore (Manager.abort mgr txn)
        end
      in
      let rounds = ref 0 in
      let crashed =
        try
          while Db.jobs db <> [] do
            incr rounds;
            ignore (Db.step_jobs db);
            traffic db;
            if !rounds mod 3 = 0 then
              surface "checkpoint" (Persist.checkpoint p)
          done;
          false
        with Fault.Injected { site = s; _ } ->
          say "crash injected at %S in round %d; progress at the crash:" s
            !rounds;
          say "  %a" Transform.pp_progress (Transform.progress tf);
          true
      in
      if not crashed then
        say "fault site never fired; the change completed in round %d" !rounds;
      Fault.reset ();
      Persist.crash p;
      say "in-memory state abandoned; reopening from snapshot + WAL ...";
      let p2 = surface "reopen" (Persist.open_dir ~dir) in
      (match Persist.last_recovery p2 with
       | Some r -> say "recovery: %a" Recovery.pp_report r
       | None -> say "recovery: clean snapshot, empty WAL");
      let db2 = Persist.db p2 in
      let resumed =
        match Sc.resume ~config p2 with
        | Ok scs -> List.map Sc.transform scs
        | Error e -> failwith ("resume: " ^ Nbsc_error.to_string e)
      in
      (match resumed with
       | [] -> say "no job to resume"
       | tfs ->
         List.iter
           (fun tf ->
              say "resumed %s in phase %a; scanned=%d (0 = no re-scan)"
                (Transform.job_name tf) Transform.pp_phase (Transform.phase tf)
                (Transform.progress tf).Transform.scanned)
           tfs);
      (match
         Db.run_jobs db2 ~max_rounds:100_000 ~between:(fun () -> traffic db2)
       with
       | Ok () -> ()
       | Error m -> failwith ("drive to completion: " ^ m));
      surface "final checkpoint" (Persist.checkpoint p2);
      List.iter
        (fun tf ->
           say "%s finished: %a" (Transform.job_name tf) Transform.pp_progress
             (Transform.progress tf);
           List.iter
             (fun t -> say "  table %-3s %6d rows" t (Db.row_count db2 t))
             (Transform.targets tf))
        resumed;
      Persist.close p2;
      if keep then say "store kept at %s" dir else wipe ();
      `Ok ()
    in
    match run () with
    | r -> r
    | exception Failure m ->
      if not keep then wipe ();
      `Error (false, m)
  end

(* {1 stats}

   The one-way-to-read-a-number demo: run a transformation with
   interleaved writes, then dump the database's metrics registry —
   engine counters, lock statistics, schema-change probes and all —
   through the single [Db.Observe.snapshot] call. *)

let run_stats rows =
  let db = build_foj_db ~rows in
  let config =
    { Transform.default_config with
      Transform.drop_sources = false;
      scan_batch = 64;
      propagate_batch = 64 }
  in
  let sc = start_sc db ~config (Spec.Foj (foj_spec ~m2m:false)) in
  let mgr = Db.manager db in
  let rng = Random.State.make [| 99 |] in
  let writes = ref 0 in
  let between () =
    if (Sc.status sc).Sc.sc_routing = `Sources then begin
      incr writes;
      let txn = Manager.begin_txn mgr in
      match
        Manager.update mgr ~txn ~table:"R"
          ~key:(Row.make [ Value.Int (Random.State.int rng rows) ])
          [ (1, Value.Text (Printf.sprintf "w%d" !writes)) ]
      with
      | Ok () -> ignore (Manager.commit mgr txn)
      | Error _ -> ignore (Manager.abort mgr txn)
    end
  in
  (match Sc.run ~between sc with
   | Ok () -> ()
   | Error e -> failwith (Nbsc_error.to_string e));
  List.iter
    (fun (name, v) -> say "%-28s %a" name Obs.pp_value v)
    (Db.Observe.snapshot db);
  `Ok ()

let stats_cmd =
  let rows =
    Arg.(value & opt int 5000 & info [ "rows" ] ~doc:"source table size")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"run a demo transformation and dump the metrics registry")
    Term.(ret (const run_stats $ rows))

(* {1 trace} *)

let validate_jsonl path =
  let ic = open_in path in
  let lines = ref 0 and errors = ref 0 in
  let complain fmt = incr errors; say fmt in
  (try
     while true do
       let line = input_line ic in
       incr lines;
       match Json.of_string line with
       | Ok (Json.Obj fields) ->
         List.iter
           (fun k ->
              if not (List.mem_assoc k fields) then
                complain "line %d: missing required field %S" !lines k)
           [ "ev"; "name"; "at" ]
       | Ok _ -> complain "line %d: not a JSON object" !lines
       | Error m -> complain "line %d: %s" !lines m
     done
   with End_of_file -> ());
  close_in ic;
  (!lines, !errors)

let run_trace seed out validate =
  let module E = Nbsc_sim.Experiment in
  let setup = { E.quick_setup with E.seed } in
  let oc = open_out out in
  let tr =
    match E.traced_run ~setup ~sink:(Obs.jsonl_sink oc) () with
    | tr -> close_out oc; tr
    | exception e -> close_out oc; raise e
  in
  say "%d trace events written to %s" (List.length tr.E.tr_events) out;
  say "per-phase timings (JSON):";
  say "%s" (Json.to_string (E.phases_to_json tr.E.tr_phases));
  if not validate then `Ok ()
  else begin
    let lines, errors = validate_jsonl out in
    if errors = 0 then begin
      say "validated %d lines: every line is one JSON object with ev/name/at"
        lines;
      `Ok ()
    end
    else `Error (false, Printf.sprintf "%d of %d lines malformed" errors lines)
  end

let trace_cmd =
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"simulation seed")
  in
  let out =
    Arg.(value & opt string "nbsc_trace.jsonl"
         & info [ "out" ] ~docv:"FILE" ~doc:"JSON-lines output file")
  in
  let validate =
    Arg.(value & flag
         & info [ "validate" ]
             ~doc:"re-read the file and check one well-formed JSON object \
                   per line with the required fields")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "run a traced fixed-seed simulation and write its events as JSON \
          lines")
    Term.(ret (const run_trace $ seed $ out $ validate))

let crash_demo_cmd =
  let site =
    Arg.(value & opt string "wal_append"
         & info [ "site" ] ~docv:"SITE"
             ~doc:"fault-injection site to arm (see nbsc crash-demo --help)")
  in
  let after =
    Arg.(value & opt int 20
         & info [ "after" ] ~doc:"let the site pass this many times first")
  in
  let rows =
    Arg.(value & opt int 500 & info [ "rows" ] ~doc:"source table size")
  in
  let keep =
    Arg.(value & flag
         & info [ "keep" ] ~doc:"keep the store directory afterwards")
  in
  Cmd.v
    (Cmd.info "crash-demo"
       ~doc:
         "crash a durable schema change at an injected fault and resume it")
    Term.(ret (const run_crash_demo $ site $ after $ rows $ keep))

(* {1 scrub and its drill helpers} *)

let run_scrub dir =
  match Db.Scrub.verify_dir ~dir with
  | Error e -> `Error (false, Nbsc_error.to_string e)
  | Ok r ->
    Format.printf "%a@." Db.Scrub.pp_report r;
    if Db.Scrub.ok r then `Ok () else `Error (false, "store is corrupt")

let scrub_cmd =
  let dir =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"DIR" ~doc:"database directory to verify")
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:
         "verify a database directory offline: format headers, per-line \
          CRC-32, snapshot trailer, WAL record structure; exits non-zero \
          on any damage")
    Term.(ret (const run_scrub $ dir))

let run_mkstore dir rows =
  if Sys.file_exists dir then `Error (false, dir ^ ": already exists")
  else begin
    let surface what = function
      | Ok v -> v
      | Error e ->
        failwith (Format.asprintf "%s: %a" what Persist.pp_error e)
    in
    let p = surface "create" (Persist.create_dir ~dir) in
    let db = Persist.db p in
    let col = Schema.column in
    ignore
      (Db.create_table db ~name:"T"
         (Schema.make ~key:[ "a" ]
            [ col ~nullable:false "a" Value.TInt; col "b" Value.TText ]));
    (match
       Db.load db ~table:"T"
         (List.init rows (fun i ->
              Row.make [ Value.Int i; Value.Text (Printf.sprintf "t%d" i) ]))
     with
     | Ok () -> ()
     | Error _ -> failwith "load failed");
    surface "checkpoint" (Persist.checkpoint p);
    (* A few post-checkpoint commits so the WAL holds framed records
       too, not just the snapshot. *)
    let mgr = Db.manager db in
    for i = rows to rows + 4 do
      let txn = Manager.begin_txn mgr in
      ignore
        (Manager.insert mgr ~txn ~table:"T"
           (Row.make [ Value.Int i; Value.Text "tail" ]));
      ignore (Manager.commit mgr txn)
    done;
    Persist.close p;
    say "created %s: table T, %d rows, snapshot + live WAL tail" dir
      (rows + 5);
    `Ok ()
  end

let mkstore_cmd =
  let dir =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"DIR" ~doc:"directory to create")
  in
  let rows =
    Arg.(value & opt int 100 & info [ "rows" ] ~doc:"table size")
  in
  Cmd.v
    (Cmd.info "mkstore"
       ~doc:"create a small durable store (for scrub drills and demos)")
    Term.(ret (const run_mkstore $ dir $ rows))

(* Damage one byte of a file in place — the corruption half of the CI
   scrub drill ([make scrub], ci/check.sh). *)
let run_flip path offset =
  if not (Sys.file_exists path) then `Error (false, path ^ ": no such file")
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let b = Bytes.create n in
    really_input ic b 0 n;
    close_in ic;
    if n = 0 then `Error (false, path ^ ": empty file")
    else begin
      let pos = ((offset mod n) + n) mod n in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x01));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc;
      say "flipped bit 0 of byte %d/%d in %s" pos n path;
      `Ok ()
    end
  end

let flip_cmd =
  let path =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"file to damage")
  in
  let offset =
    Arg.(value & opt int (-40)
         & info [ "offset" ]
             ~doc:"byte offset to flip (negative counts from the end)")
  in
  Cmd.v
    (Cmd.info "flip"
       ~doc:"flip one bit of a file in place (simulated media corruption)")
    Term.(ret (const run_flip $ path $ offset))

let () =
  let default =
    Term.(ret (const (`Help (`Pager, None))))
  in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "nbsc" ~version:"1.0.0"
             ~doc:"online, non-blocking relational schema changes")
          [ demo_cmd; concurrent_cmd; figure_cmd; sync_cmd; matrix_cmd;
            log_cmd; contention_cmd; crash_demo_cmd; stats_cmd; trace_cmd;
            scrub_cmd; mkstore_cmd; flip_cmd ]))
