(* Tests for snapshots: save/load fidelity, LSN continuity across a
   restart (the split rules' discipline must survive), refusal under
   active transactions, corruption detection, and crash-recovery =
   snapshot + log suffix. *)

open Nbsc_value
open Nbsc_wal
open Nbsc_storage
open Nbsc_txn
open Nbsc_engine
open Nbsc_core
module H = Helpers

let ok name = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" name Manager.pp_error e

let ok_snap name = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" name Snapshot.pp_error e

let table_image db name =
  let t = Db.table db name in
  Table.fold t ~init:[] ~f:(fun acc _ r ->
      (r.Record.row, Lsn.to_int r.Record.lsn, r.Record.counter, r.Record.flag)
      :: acc)
  |> List.sort compare

let test_roundtrip_fidelity () =
  let db = H.fresh_split_db ~t_rows:(H.seed_t_rows ~n:40) in
  (* Give T an index and some metadata variety via a real split. *)
  let tf =
    Transform.split db
      ~config:{ Transform.default_config with Transform.drop_sources = false }
      (H.split_spec ~assume_consistent:true)
  in
  (match Transform.run tf with Ok () -> () | Error m -> Alcotest.fail m);
  let lines = ok_snap "save" (Snapshot.save db) in
  let db' = ok_snap "load" (Snapshot.load lines) in
  List.iter
    (fun name ->
       Alcotest.(check bool)
         (name ^ " identical") true
         (table_image db name = table_image db' name))
    [ "T"; "R"; "S" ];
  (* Index definitions survive. *)
  Alcotest.(check bool) "split index restored" true
    (List.mem_assoc Spec.ix_t_split (Table.index_definitions (Db.table db' "T")));
  (* And the index works. *)
  Alcotest.(check bool) "index answers" true
    (Table.index_lookup (Db.table db' "T") ~index:Spec.ix_t_split
       (Row.make [ Value.Int 0 ])
     <> [])

let test_lsn_continuity () =
  let db = H.fresh_split_db ~t_rows:(H.seed_t_rows ~n:10) in
  let head_before = Log.head (Db.log db) in
  let db' = ok_snap "load" (Snapshot.load (ok_snap "save" (Snapshot.save db))) in
  Alcotest.(check int) "log continues at snapshot head"
    (Lsn.to_int head_before)
    (Lsn.to_int (Log.head (Db.log db')));
  (* New writes get strictly larger LSNs than any restored record. *)
  let mgr = Db.manager db' in
  let txn = Manager.begin_txn mgr in
  ok "u" (Manager.update mgr ~txn ~table:"T" ~key:(Row.make [ Value.Int 1 ])
            [ (1, Value.Text "post-restart") ]);
  ok "c" (Manager.commit mgr txn);
  let r = Option.get (Table.find (Db.table db' "T") (Row.make [ Value.Int 1 ])) in
  Alcotest.(check bool) "record lsn beyond snapshot" true
    Lsn.(r.Record.lsn > head_before)

let test_transformation_after_restart () =
  (* The headline restart story: snapshot, reload, then run a split
     transformation on the restored database — the LSN discipline must
     hold. *)
  let db = H.fresh_split_db ~t_rows:(H.seed_t_rows ~n:50) in
  let db' = ok_snap "load" (Snapshot.load (ok_snap "save" (Snapshot.save db))) in
  let d = H.driver ~seed:3 db' in
  let tf =
    Transform.split db'
      ~config:{ Transform.default_config with
                Transform.drop_sources = false; scan_batch = 7; propagate_batch = 5 }
      (H.split_spec ~assume_consistent:true)
  in
  let budget = ref 100 in
  (match
     Transform.run tf ~between:(fun () ->
         if !budget > 0 then begin
           decr budget;
           H.random_t_op ~consistent:true d
         end)
   with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  let t = Db.snapshot db' "T" in
  let want_r, want_s =
    Nbsc_relalg.Relalg.split
      { Nbsc_relalg.Relalg.r_cols' = [ "a"; "b"; "c" ]; s_cols' = [ "c"; "d" ];
        r_key = [ "a" ]; s_key = [ "c" ] }
      t
  in
  H.check_relations_equal "R after restart" want_r (Db.snapshot db' "R");
  H.check_relations_equal "S after restart" want_s (Db.snapshot db' "S")

let test_refuses_active_transactions () =
  let db = H.fresh_split_db ~t_rows:(H.seed_t_rows ~n:5) in
  let mgr = Db.manager db in
  let txn = Manager.begin_txn mgr in
  ok "u" (Manager.update mgr ~txn ~table:"T" ~key:(Row.make [ Value.Int 1 ])
            [ (1, Value.Text "dirty") ]);
  (match Snapshot.save db with
   | Error (`Active_transactions [ t ]) ->
     Alcotest.(check int) "names the offender" txn t
   | _ -> Alcotest.fail "expected Active_transactions");
  ok "c" (Manager.commit mgr txn);
  (match Snapshot.save db with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "after commit: %a" Snapshot.pp_error e)

let test_corruption_detected () =
  let db = H.fresh_split_db ~t_rows:(H.seed_t_rows ~n:3) in
  let lines = ok_snap "save" (Snapshot.save db) in
  let corrupt lines = match Snapshot.load lines with
    | Error (`Corrupt _) -> true
    | _ -> false
  in
  Alcotest.(check bool) "garbage line" true (corrupt (lines @ [ "Z:???" ]));
  Alcotest.(check bool) "truncated payload" true
    (corrupt [ "R:" ^ Nbsc_value.Codec.encode_string_list [ "T" ] ]);
  Alcotest.(check bool) "row for unknown table" true
    (corrupt
       [ "R:"
         ^ Nbsc_value.Codec.encode_string_list
             [ "NOPE"; "1"; "1"; "C"; "0"; Nbsc_value.Codec.encode_row (H.ti 1 "a" 1 "x") ]
       ])

let test_snapshot_plus_log_suffix () =
  (* Crash recovery with checkpointing: state = snapshot + redo of the
     log suffix written after it. *)
  let db = H.fresh_split_db ~t_rows:(H.seed_t_rows ~n:20) in
  let snap = ok_snap "save" (Snapshot.save db) in
  let snap_head = Log.head (Db.log db) in
  (* More committed work after the snapshot... *)
  let mgr = Db.manager db in
  let txn = Manager.begin_txn mgr in
  ok "u" (Manager.update mgr ~txn ~table:"T" ~key:(Row.make [ Value.Int 2 ])
            [ (1, Value.Text "after-ckpt") ]);
  ok "i" (Manager.insert mgr ~txn ~table:"T" (H.ti 900 "late" 1 (H.city_of 1)));
  ok "c" (Manager.commit mgr txn);
  (* ...and a loser in flight at the crash. *)
  let loser = Manager.begin_txn mgr in
  ok "lu" (Manager.update mgr ~txn:loser ~table:"T"
             ~key:(Row.make [ Value.Int 3 ]) [ (1, Value.Text "ghost") ]);
  (* Recover: load snapshot, then redo/undo the suffix. *)
  let db' = ok_snap "load" (Snapshot.load snap) in
  let suffix =
    Log.fold (Db.log db) ~from:(Lsn.next snap_head) ?upto:None ~init:[]
      ~f:(fun acc r -> r :: acc)
    |> List.rev
  in
  (* Replay through the ordinary recovery machinery by rebuilding a
     sub-log; record-LSN idempotence makes double-application safe. *)
  let sublog = Log.create ~base:snap_head () in
  List.iter
    (fun r ->
       ignore
         (Log.append sublog ~txn:r.Log_record.txn ~prev_lsn:r.Log_record.prev_lsn
            r.Log_record.body))
    suffix;
  (* Redo committed suffix ops into db'. *)
  let losers =
    let active = Hashtbl.create 4 in
    Log.iter sublog (fun r ->
        match r.Log_record.body with
        | Log_record.Begin -> Hashtbl.replace active r.Log_record.txn ()
        | Log_record.Commit | Log_record.Abort_done ->
          Hashtbl.remove active r.Log_record.txn
        | _ -> ());
    active
  in
  Log.iter sublog (fun r ->
      match r.Log_record.body with
      | Log_record.Op op | Log_record.Clr { op; _ } ->
        if not (Hashtbl.mem losers r.Log_record.txn) then begin
          match Nbsc_txn.Apply.op (Db.catalog db') ~lsn:r.Log_record.lsn op with
          | Ok () -> ()
          | Error e ->
            Alcotest.failf "redo: %a" Nbsc_txn.Apply.pp_error e
        end
      | _ -> ());
  (* The recovered T equals the live T minus the loser's effect. *)
  let live = Db.snapshot db "T" in
  (* Undo the loser in the live db for comparison. *)
  ignore (Manager.abort mgr loser);
  let live_clean = Db.snapshot db "T" in
  ignore live;
  H.check_relations_equal "snapshot + suffix = state" live_clean
    (Db.snapshot db' "T")

let () =
  Alcotest.run "snapshot"
    [ ( "snapshot",
        [ Alcotest.test_case "roundtrip fidelity" `Quick test_roundtrip_fidelity;
          Alcotest.test_case "LSN continuity" `Quick test_lsn_continuity;
          Alcotest.test_case "transformation after restart" `Quick
            test_transformation_after_restart;
          Alcotest.test_case "refuses active transactions" `Quick
            test_refuses_active_transactions;
          Alcotest.test_case "corruption detected" `Quick
            test_corruption_detected;
          Alcotest.test_case "snapshot + log suffix" `Quick
            test_snapshot_plus_log_suffix ] ) ]
