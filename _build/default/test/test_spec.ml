(* Tests for transformation-spec validation — the preparation-step
   requirements of paper Sec. 3.1 enforced statically. *)

open Nbsc_value
open Nbsc_storage
open Nbsc_core
module H = Helpers

let fresh_foj_catalog () =
  let catalog = Catalog.create () in
  ignore (Catalog.create_table catalog ~name:"R" H.r_schema);
  ignore (Catalog.create_table catalog ~name:"S" H.s_schema);
  catalog

let fresh_split_catalog () =
  let catalog = Catalog.create () in
  ignore (Catalog.create_table catalog ~name:"T" H.t_flat_schema);
  catalog

let rejects name f =
  Alcotest.check_raises name (Invalid_argument "") (fun () ->
      try ignore (f ()) with Invalid_argument _ -> raise (Invalid_argument ""))

let test_foj_valid_layout () =
  let catalog = fresh_foj_catalog () in
  let l = Spec.foj_layout catalog H.foj_spec in
  let t = Spec.foj_t_schema l in
  (* T(c, a, b, d) keyed by (a, c). *)
  Alcotest.(check int) "arity" 4 (Schema.arity t);
  Alcotest.(check (list string)) "column order" [ "c"; "a"; "b"; "d" ]
    (List.map (fun c -> c.Schema.col_name) (Schema.columns t));
  Alcotest.(check (list string)) "key" [ "a"; "c" ] (Schema.key_names t);
  let indexes = Spec.foj_t_indexes l in
  Alcotest.(check int) "three indexes" 3 (List.length indexes);
  Alcotest.(check (list string)) "by_r_key columns" [ "a" ]
    (List.assoc Spec.ix_by_r_key indexes);
  Alcotest.(check (list string)) "by_join columns" [ "c" ]
    (List.assoc Spec.ix_by_join indexes);
  (* Position mappings round-trip. *)
  Alcotest.(check bool) "r_to_t maps a,b" true
    (List.length l.Spec.r_to_t = 2);
  Alcotest.(check bool) "join maps c" true
    (List.length l.Spec.r_join_to_t = 1)

let test_foj_missing_table () =
  let catalog = fresh_foj_catalog () in
  rejects "unknown source" (fun () ->
      Spec.foj_layout catalog { H.foj_spec with Spec.r_table = "NOPE" })

let test_foj_key_not_carried () =
  let catalog = fresh_foj_catalog () in
  rejects "R key must be carried" (fun () ->
      Spec.foj_layout catalog { H.foj_spec with Spec.r_carry = [ "b" ] })

let test_foj_join_type_mismatch () =
  let catalog = Catalog.create () in
  ignore (Catalog.create_table catalog ~name:"R" H.r_schema);
  ignore
    (Catalog.create_table catalog ~name:"S"
       (Schema.make ~key:[ "c" ]
          [ Schema.column ~nullable:false "c" Value.TText;
            Schema.column "d" Value.TText ]));
  rejects "join type mismatch" (fun () -> Spec.foj_layout catalog H.foj_spec)

let test_foj_duplicate_t_columns () =
  let catalog = fresh_foj_catalog () in
  rejects "duplicate T column" (fun () ->
      Spec.foj_layout catalog { H.foj_spec with Spec.t_join = [ "a" ] })

let test_foj_join_in_carry () =
  let catalog = fresh_foj_catalog () in
  rejects "join col in r_carry" (fun () ->
      Spec.foj_layout catalog
        { H.foj_spec with Spec.r_carry = [ "a"; "b"; "c" ]; t_join = [ "cc" ] })

let test_foj_join_count_mismatch () =
  let catalog = fresh_foj_catalog () in
  rejects "join arity" (fun () ->
      Spec.foj_layout catalog { H.foj_spec with Spec.join_s = [] })

let test_split_valid_layout () =
  let catalog = fresh_split_catalog () in
  let l = Spec.split_layout catalog (H.split_spec ~assume_consistent:true) in
  let r = Spec.split_r_schema l and s = Spec.split_s_schema l in
  Alcotest.(check (list string)) "R columns" [ "a"; "b"; "c" ]
    (List.map (fun c -> c.Schema.col_name) (Schema.columns r));
  Alcotest.(check (list string)) "R key = T key" [ "a" ] (Schema.key_names r);
  Alcotest.(check (list string)) "S columns" [ "c"; "d" ]
    (List.map (fun c -> c.Schema.col_name) (Schema.columns s));
  Alcotest.(check (list string)) "S key = split key" [ "c" ]
    (Schema.key_names s)

let test_split_key_must_be_in_both () =
  let catalog = fresh_split_catalog () in
  rejects "split key must be in r_cols" (fun () ->
      Spec.split_layout catalog
        { (H.split_spec ~assume_consistent:true) with Spec.r_cols = [ "a"; "b" ] });
  rejects "split key must be in s_cols" (fun () ->
      Spec.split_layout catalog
        { (H.split_spec ~assume_consistent:true) with Spec.s_cols = [ "d" ] })

let test_split_t_key_must_go_to_r () =
  let catalog = fresh_split_catalog () in
  rejects "T key in r_cols" (fun () ->
      Spec.split_layout catalog
        { (H.split_spec ~assume_consistent:true) with Spec.r_cols = [ "b"; "c" ] })

let test_split_unknown_column () =
  let catalog = fresh_split_catalog () in
  rejects "unknown column" (fun () ->
      Spec.split_layout catalog
        { (H.split_spec ~assume_consistent:true) with
          Spec.s_cols = [ "c"; "zzz" ] })

let test_transform_rejects_taken_target () =
  let db = Nbsc_engine.Db.create () in
  ignore (Nbsc_engine.Db.create_table db ~name:"R" H.r_schema);
  ignore (Nbsc_engine.Db.create_table db ~name:"S" H.s_schema);
  ignore (Nbsc_engine.Db.create_table db ~name:"T" H.t_flat_schema);
  rejects "target name taken" (fun () -> Transform.foj db H.foj_spec)

let () =
  Alcotest.run "spec"
    [ ( "foj",
        [ Alcotest.test_case "valid layout" `Quick test_foj_valid_layout;
          Alcotest.test_case "missing table" `Quick test_foj_missing_table;
          Alcotest.test_case "key not carried" `Quick test_foj_key_not_carried;
          Alcotest.test_case "join type mismatch" `Quick
            test_foj_join_type_mismatch;
          Alcotest.test_case "duplicate T columns" `Quick
            test_foj_duplicate_t_columns;
          Alcotest.test_case "join col in carry" `Quick test_foj_join_in_carry;
          Alcotest.test_case "join count mismatch" `Quick
            test_foj_join_count_mismatch ] );
      ( "split",
        [ Alcotest.test_case "valid layout" `Quick test_split_valid_layout;
          Alcotest.test_case "split key in both" `Quick
            test_split_key_must_be_in_both;
          Alcotest.test_case "T key to R" `Quick test_split_t_key_must_go_to_r;
          Alcotest.test_case "unknown column" `Quick test_split_unknown_column ] );
      ( "transform",
        [ Alcotest.test_case "taken target name" `Quick
            test_transform_rejects_taken_target ] ) ]
