(* Tests for the consistency checker (paper Sec. 5.3): the CC-begin /
   CC-ok protocol through the log, including invalidation by concurrent
   updates between the two records. *)

open Nbsc_value
open Nbsc_wal
open Nbsc_storage
open Nbsc_core
module H = Helpers

(* A manual harness: catalog + split engine + checker + a hand-driven
   propagator loop so tests control exactly when log records are
   consumed. *)
type h = {
  catalog : Catalog.t;
  t_tbl : Table.t;
  sp : Split.t;
  cc : Consistency.t;
  log : Log.t;
  cursor : Log.Cursor.t;
  mutable lsn : int;
}

let setup ~t_rows =
  let catalog = Catalog.create () in
  let t_tbl = Catalog.create_table catalog ~name:"T" H.t_flat_schema in
  List.iteri
    (fun i row -> ignore (Table.insert t_tbl ~lsn:(Lsn.of_int (i + 1)) row))
    t_rows;
  let layout = Spec.split_layout catalog (H.split_spec ~assume_consistent:false) in
  ignore (Catalog.create_table catalog ~name:"R" (Spec.split_r_schema layout));
  ignore (Catalog.create_table catalog ~name:"S" (Spec.split_s_schema layout));
  Table.add_index t_tbl ~name:Spec.ix_t_split ~columns:[ "c" ];
  let sp = Split.create catalog layout in
  let pop = Population.split sp ~t_tbl in
  while not (Population.step pop ~limit:max_int) do () done;
  let log = Log.create () in
  let cc = Consistency.create catalog sp ~log in
  { catalog;
    t_tbl;
    sp;
    cc;
    log;
    cursor = Log.Cursor.make log ~from:Lsn.first;
    lsn = 1000 }

(* Apply a T operation both to the source table and through the split
   rules' log path, like the real engine + propagator would. *)
let user_update h ~key ~changes ~before =
  h.lsn <- h.lsn + 1;
  let lsn = Lsn.of_int h.lsn in
  ignore (Table.update h.t_tbl ~lsn ~key changes);
  ignore
    (Log.append h.log ~txn:1 ~prev_lsn:Lsn.zero
       (Log_record.Op (Log_record.Update { table = "T"; key; changes; before })))

(* Drain the propagator: consume every pending log record, dispatching
   ops to the split rules and CC records to the checker. *)
let drain h =
  let continue = ref true in
  while !continue do
    match Log.Cursor.next h.cursor with
    | None -> continue := false
    | Some r ->
      (match r.Log_record.body with
       | Log_record.Op op ->
         let touched = Split.apply h.sp ~lsn:r.Log_record.lsn op in
         List.iter
           (fun (table, key) ->
              if String.equal table "S" then Consistency.note_touched h.cc key)
           touched
       | Log_record.Cc_begin { key; _ } -> Consistency.on_cc_begin h.cc key
       | Log_record.Cc_ok { key; image; _ } ->
         Consistency.on_cc_ok h.cc ~lsn:r.Log_record.lsn key image
       | _ -> ())
  done

let skey c = Row.make [ Value.Int c ]

let flag_of h c =
  (Option.get (Table.find (Split.s_table h.sp) (skey c))).Record.flag

let inconsistent_rows =
  [ H.ti 1 "a" 10 "GOOD"; H.ti 2 "b" 10 "BAD"; H.ti 3 "c" 20 "Z" ]

let test_disagree_then_repair () =
  let h = setup ~t_rows:inconsistent_rows in
  Alcotest.(check int) "one unknown" 1 (Split.unknown_count h.sp);
  (* A check on inconsistent data refuses to confirm. *)
  Alcotest.(check bool) "work done" true (Consistency.step h.cc);
  drain h;
  Alcotest.(check bool) "still U" true (flag_of h 10 = Record.Unknown);
  Alcotest.(check int) "disagreed" 1 (Consistency.stats h.cc).Consistency.disagreed;
  (* Repair through a user transaction, then check again. *)
  user_update h ~key:(Row.make [ Value.Int 2 ])
    ~changes:[ (3, Value.Text "GOOD") ]
    ~before:[ (3, Value.Text "BAD") ];
  drain h;
  ignore (Consistency.step h.cc);  (* begin + read *)
  ignore (Consistency.step h.cc);  (* cc-ok *)
  drain h;
  Alcotest.(check bool) "C after repair" true (flag_of h 10 = Record.Consistent);
  Alcotest.(check int) "confirmed" 1 (Consistency.stats h.cc).Consistency.confirmed;
  Alcotest.(check int) "no unknowns" 0 (Split.unknown_count h.sp);
  (* The confirmed image is the agreed one. *)
  let s = Option.get (Table.find (Split.s_table h.sp) (skey 10)) in
  Alcotest.(check bool) "image installed" true
    (Value.equal (Row.get s.Record.row 1) (Value.Text "GOOD"))

let test_invalidation_between_begin_and_ok () =
  let h = setup ~t_rows:[ H.ti 1 "a" 10 "GOOD"; H.ti 2 "b" 10 "BAD" ] in
  (* Repair first so the group agrees... *)
  user_update h ~key:(Row.make [ Value.Int 2 ])
    ~changes:[ (3, Value.Text "GOOD") ]
    ~before:[ (3, Value.Text "BAD") ];
  drain h;
  (* ...begin a check (reads the agreed image)... *)
  ignore (Consistency.step h.cc);
  (* ...but a user transaction touches the group between CC-begin and
     CC-ok in the log. *)
  user_update h ~key:(Row.make [ Value.Int 1 ])
    ~changes:[ (3, Value.Text "NEWER") ]
    ~before:[ (3, Value.Text "GOOD") ];
  ignore (Consistency.step h.cc);  (* writes CC-ok *)
  drain h;
  Alcotest.(check int) "invalidated" 1
    (Consistency.stats h.cc).Consistency.invalidated;
  Alcotest.(check bool) "stays U" true (flag_of h 10 = Record.Unknown)

let test_nothing_to_do () =
  let h = setup ~t_rows:[ H.ti 1 "a" 10 "X" ] in
  Alcotest.(check int) "no unknowns" 0 (Split.unknown_count h.sp);
  Alcotest.(check bool) "idle" false (Consistency.step h.cc)

let test_cc_records_in_log () =
  let h = setup ~t_rows:inconsistent_rows in
  user_update h ~key:(Row.make [ Value.Int 2 ])
    ~changes:[ (3, Value.Text "GOOD") ]
    ~before:[ (3, Value.Text "BAD") ];
  ignore (Consistency.step h.cc);
  ignore (Consistency.step h.cc);
  let begins = ref 0 and oks = ref 0 in
  Log.iter h.log (fun r ->
      match r.Log_record.body with
      | Log_record.Cc_begin _ -> incr begins
      | Log_record.Cc_ok _ -> incr oks
      | _ -> ());
  Alcotest.(check int) "one begin" 1 !begins;
  Alcotest.(check int) "one ok" 1 !oks

let () =
  Alcotest.run "consistency"
    [ ( "checker",
        [ Alcotest.test_case "disagree, repair, confirm" `Quick
            test_disagree_then_repair;
          Alcotest.test_case "invalidated by concurrent update" `Quick
            test_invalidation_between_begin_and_ok;
          Alcotest.test_case "idle when all consistent" `Quick
            test_nothing_to_do;
          Alcotest.test_case "protocol records in log" `Quick
            test_cc_records_in_log ] ) ]
