(* Unit tests for the FOJ propagation rules (paper Rules 1-7), each
   exercised against hand-built transformed-table states, plus the
   idempotence property the paper proves ("a log record may be redone
   multiple times"). *)

open Nbsc_value
open Nbsc_wal
open Nbsc_storage
open Nbsc_core
module H = Helpers
module LR = Log_record

(* Build a catalog with R and S loaded (directly, no txn machinery),
   T prepared, and the initial image populated. *)
let setup ~r_rows ~s_rows =
  let catalog = Catalog.create () in
  let r_tbl = Catalog.create_table catalog ~name:"R" H.r_schema in
  let s_tbl = Catalog.create_table catalog ~name:"S" H.s_schema in
  List.iteri
    (fun i row -> ignore (Table.insert r_tbl ~lsn:(Lsn.of_int (i + 1)) row))
    r_rows;
  List.iteri
    (fun i row -> ignore (Table.insert s_tbl ~lsn:(Lsn.of_int (100 + i)) row))
    s_rows;
  let layout = Spec.foj_layout catalog H.foj_spec in
  ignore
    (Catalog.create_table catalog
       ~indexes:(Spec.foj_t_indexes layout)
       ~name:"T" (Spec.foj_t_schema layout));
  let fj = Foj.create catalog layout in
  let pop = Population.foj fj ~r_tbl ~s_tbl in
  while not (Population.step pop ~limit:max_int) do () done;
  (catalog, fj)

let t_rows catalog =
  let t = Catalog.find catalog "T" in
  Table.to_rows t |> List.sort Row.compare

(* T row layout: (c, a, b, d). *)
let trow c a b d =
  Row.make
    [ (match c with Some c -> Value.Int c | None -> Value.Null);
      (match a with Some a -> Value.Int a | None -> Value.Null);
      (match b with Some b -> Value.Text b | None -> Value.Null);
      (match d with Some d -> Value.Text d | None -> Value.Null) ]

let check_t catalog expected =
  let actual = t_rows catalog in
  let expected = List.sort Row.compare expected in
  if
    List.length actual <> List.length expected
    || not (List.for_all2 Row.equal expected actual)
  then
    Alcotest.failf "T mismatch:@.expected: %s@.actual:   %s"
      (String.concat "; " (List.map Row.to_string expected))
      (String.concat "; " (List.map Row.to_string actual))

let lsn99 = Lsn.of_int 9_999

let apply fj op = ignore (Foj.apply fj ~lsn:lsn99 op)

let ins_r a b c = LR.Insert { table = "R"; row = H.ri a b c }
let ins_s c d = LR.Insert { table = "S"; row = H.si c d }

let del_r a ~before =
  LR.Delete { table = "R"; key = Row.make [ Value.Int a ]; before }

let del_s c ~before =
  LR.Delete { table = "S"; key = Row.make [ Value.Int c ]; before }

let upd_r a changes before =
  LR.Update { table = "R"; key = Row.make [ Value.Int a ]; changes; before }

let upd_s c changes before =
  LR.Update { table = "S"; key = Row.make [ Value.Int c ]; changes; before }

(* {1 Rule 1: insert into R} *)

let test_rule1_joins_existing_s () =
  let catalog, fj = setup ~r_rows:[ H.ri 1 "a" 10 ] ~s_rows:[ H.si 10 "x" ] in
  apply fj (ins_r 2 "b" 10);
  check_t catalog
    [ trow (Some 10) (Some 1) (Some "a") (Some "x");
      trow (Some 10) (Some 2) (Some "b") (Some "x") ]

let test_rule1_fills_snull_survivor () =
  (* s{^20} has no match: it sits as t{^null}{_20}; a new R row with
     join 20 must fill that record in place. *)
  let catalog, fj = setup ~r_rows:[] ~s_rows:[ H.si 20 "y" ] in
  check_t catalog [ trow (Some 20) None None (Some "y") ];
  apply fj (ins_r 5 "e" 20);
  check_t catalog [ trow (Some 20) (Some 5) (Some "e") (Some "y") ]

let test_rule1_no_match () =
  let catalog, fj = setup ~r_rows:[] ~s_rows:[ H.si 10 "x" ] in
  apply fj (ins_r 7 "g" 99);
  check_t catalog
    [ trow (Some 10) None None (Some "x");
      trow (Some 99) (Some 7) (Some "g") None ]

let test_rule1_null_join () =
  let catalog, fj = setup ~r_rows:[] ~s_rows:[] in
  apply fj (LR.Insert { table = "R"; row = Row.make [ Value.Int 3; Value.Text "n"; Value.Null ] });
  check_t catalog [ trow None (Some 3) (Some "n") None ]

let test_rule1_already_reflected () =
  let catalog, fj = setup ~r_rows:[ H.ri 1 "a" 10 ] ~s_rows:[ H.si 10 "x" ] in
  let before = t_rows catalog in
  apply fj (ins_r 1 "a" 10);
  Alcotest.(check bool) "unchanged" true (before = t_rows catalog);
  Alcotest.(check bool) "counted as ignored" true ((Foj.stats fj).Foj.ignored >= 1)

(* {1 Rule 2: insert into S} *)

let test_rule2_fills_all_waiting_rs () =
  let catalog, fj =
    setup ~r_rows:[ H.ri 1 "a" 10; H.ri 2 "b" 10; H.ri 3 "c" 11 ] ~s_rows:[]
  in
  apply fj (ins_s 10 "x");
  check_t catalog
    [ trow (Some 10) (Some 1) (Some "a") (Some "x");
      trow (Some 10) (Some 2) (Some "b") (Some "x");
      trow (Some 11) (Some 3) (Some "c") None ]

let test_rule2_unmatched_survives () =
  let catalog, fj = setup ~r_rows:[ H.ri 1 "a" 10 ] ~s_rows:[] in
  apply fj (ins_s 42 "z");
  check_t catalog
    [ trow (Some 10) (Some 1) (Some "a") None;
      trow (Some 42) None None (Some "z") ]

let test_rule2_already_reflected () =
  let catalog, fj = setup ~r_rows:[ H.ri 1 "a" 10 ] ~s_rows:[ H.si 10 "x" ] in
  let before = t_rows catalog in
  apply fj (ins_s 10 "x");
  Alcotest.(check bool) "unchanged" true (before = t_rows catalog)

(* {1 Rule 3: delete from R} *)

let test_rule3_sole_carrier_preserves_s () =
  let catalog, fj = setup ~r_rows:[ H.ri 1 "a" 10 ] ~s_rows:[ H.si 10 "x" ] in
  apply fj (del_r 1 ~before:(H.ri 1 "a" 10));
  check_t catalog [ trow (Some 10) None None (Some "x") ]

let test_rule3_other_carrier_keeps_s () =
  let catalog, fj =
    setup ~r_rows:[ H.ri 1 "a" 10; H.ri 2 "b" 10 ] ~s_rows:[ H.si 10 "x" ]
  in
  apply fj (del_r 1 ~before:(H.ri 1 "a" 10));
  check_t catalog [ trow (Some 10) (Some 2) (Some "b") (Some "x") ]

let test_rule3_unmatched_r () =
  let catalog, fj = setup ~r_rows:[ H.ri 1 "a" 99 ] ~s_rows:[] in
  apply fj (del_r 1 ~before:(H.ri 1 "a" 99));
  check_t catalog []

let test_rule3_missing_ignored () =
  let catalog, fj = setup ~r_rows:[] ~s_rows:[ H.si 10 "x" ] in
  let before = t_rows catalog in
  apply fj (del_r 7 ~before:(H.ri 7 "gone" 10));
  Alcotest.(check bool) "unchanged" true (before = t_rows catalog)

(* {1 Rule 4: delete from S} *)

let test_rule4_strips_carriers_and_drops_survivor () =
  let catalog, fj =
    setup ~r_rows:[ H.ri 1 "a" 10; H.ri 2 "b" 10 ] ~s_rows:[ H.si 10 "x"; H.si 20 "y" ]
  in
  apply fj (del_s 10 ~before:(H.si 10 "x"));
  check_t catalog
    [ trow (Some 10) (Some 1) (Some "a") None;
      trow (Some 10) (Some 2) (Some "b") None;
      trow (Some 20) None None (Some "y") ];
  (* And the unmatched survivor disappears when its S row goes. *)
  apply fj (del_s 20 ~before:(H.si 20 "y"));
  check_t catalog
    [ trow (Some 10) (Some 1) (Some "a") None;
      trow (Some 10) (Some 2) (Some "b") None ]

(* {1 Rule 5: update of R's join attribute} *)

let test_rule5_move_to_other_s () =
  let catalog, fj =
    setup ~r_rows:[ H.ri 1 "a" 10 ] ~s_rows:[ H.si 10 "x"; H.si 20 "y" ]
  in
  apply fj (upd_r 1 [ (2, Value.Int 20) ] [ (2, Value.Int 10) ]);
  check_t catalog
    [ trow (Some 10) None None (Some "x");  (* s{^10} preserved *)
      trow (Some 20) (Some 1) (Some "a") (Some "y") ]

let test_rule5_fills_null_target () =
  (* Moving onto a join value whose S part sits as t{^null}{_z}. *)
  let catalog, fj =
    setup ~r_rows:[ H.ri 1 "a" 10; H.ri 2 "b" 10 ] ~s_rows:[ H.si 20 "y" ]
  in
  (* t{^null}{_20} exists; r{^1} moves from 10 to 20 and must merge. *)
  apply fj (upd_r 1 [ (2, Value.Int 20) ] [ (2, Value.Int 10) ]);
  check_t catalog
    [ trow (Some 10) (Some 2) (Some "b") None;
      trow (Some 20) (Some 1) (Some "a") (Some "y") ]

let test_rule5_to_unmatched () =
  let catalog, fj = setup ~r_rows:[ H.ri 1 "a" 10 ] ~s_rows:[ H.si 10 "x" ] in
  apply fj (upd_r 1 [ (2, Value.Int 77) ] [ (2, Value.Int 10) ]);
  check_t catalog
    [ trow (Some 10) None None (Some "x");
      trow (Some 77) (Some 1) (Some "a") None ]

let test_rule5_stale_ignored () =
  (* T already shows join 20 (newer); a log record describing the move
     10 -> 15 must be skipped (the w <> x check). *)
  let catalog, fj = setup ~r_rows:[ H.ri 1 "a" 20 ] ~s_rows:[] in
  apply fj (upd_r 1 [ (2, Value.Int 15) ] [ (2, Value.Int 10) ]);
  check_t catalog [ trow (Some 20) (Some 1) (Some "a") None ]

(* {1 Rule 6: update of S's join attribute} *)

let test_rule6_move () =
  let catalog, fj =
    setup
      ~r_rows:[ H.ri 1 "a" 10; H.ri 2 "b" 10; H.ri 3 "c" 20 ]
      ~s_rows:[ H.si 10 "x" ]
  in
  (* s{^10} moves to join 20: rows 1,2 lose their S part; row 3 gains it. *)
  apply fj (upd_s 10 [ (0, Value.Int 20) ] [ (0, Value.Int 10) ]);
  check_t catalog
    [ trow (Some 10) (Some 1) (Some "a") None;
      trow (Some 10) (Some 2) (Some "b") None;
      trow (Some 20) (Some 3) (Some "c") (Some "x") ]

let test_rule6_to_unmatched () =
  let catalog, fj = setup ~r_rows:[ H.ri 1 "a" 10 ] ~s_rows:[ H.si 10 "x" ] in
  apply fj (upd_s 10 [ (0, Value.Int 55) ] [ (0, Value.Int 10) ]);
  check_t catalog
    [ trow (Some 10) (Some 1) (Some "a") None;
      trow (Some 55) None None (Some "x") ]

let test_rule6_missing_ignored () =
  let catalog, fj = setup ~r_rows:[ H.ri 1 "a" 10 ] ~s_rows:[] in
  let before = t_rows catalog in
  apply fj (upd_s 42 [ (0, Value.Int 43) ] [ (0, Value.Int 42) ]);
  Alcotest.(check bool) "unchanged" true (before = t_rows catalog)

(* {1 Rule 7: other attributes} *)

let test_rule7_r_side () =
  let catalog, fj = setup ~r_rows:[ H.ri 1 "a" 10 ] ~s_rows:[ H.si 10 "x" ] in
  apply fj (upd_r 1 [ (1, Value.Text "a2") ] [ (1, Value.Text "a") ]);
  check_t catalog [ trow (Some 10) (Some 1) (Some "a2") (Some "x") ]

let test_rule7_s_side_all_carriers () =
  let catalog, fj =
    setup ~r_rows:[ H.ri 1 "a" 10; H.ri 2 "b" 10 ] ~s_rows:[ H.si 10 "x" ]
  in
  apply fj (upd_s 10 [ (1, Value.Text "x2") ] [ (1, Value.Text "x") ]);
  check_t catalog
    [ trow (Some 10) (Some 1) (Some "a") (Some "x2");
      trow (Some 10) (Some 2) (Some "b") (Some "x2") ]

(* {1 Idempotence (the paper's "rules are idempotent")} *)

let arb_scenario =
  let open QCheck.Gen in
  let r_row = map2 (fun a c -> H.ri a ("r" ^ string_of_int a) c)
      (int_bound 8) (int_bound 5) in
  let s_row = map (fun c -> H.si c ("s" ^ string_of_int c)) (int_bound 5) in
  let dedup key_of rows =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun r ->
         let k = key_of r in
         if Hashtbl.mem seen k then false else (Hashtbl.add seen k (); true))
      rows
  in
  let op =
    oneof
      [ map2 (fun a c -> ins_r a "new" c) (int_range 20 25) (int_bound 5);
        map2 (fun c d -> ins_s c ("d" ^ string_of_int d)) (int_range 6 9) (int_bound 5);
        map2 (fun a c -> del_r a ~before:(H.ri a "?" c)) (int_bound 8) (int_bound 5);
        map2 (fun c d -> del_s c ~before:(H.si c ("s" ^ string_of_int d))) (int_bound 5) (int_bound 5);
        map3 (fun a z x -> upd_r a [ (2, Value.Int z) ] [ (2, Value.Int x) ])
          (int_bound 8) (int_bound 5) (int_bound 5);
        map2 (fun c z -> upd_s c [ (0, Value.Int z) ] [ (0, Value.Int c) ])
          (int_bound 5) (int_bound 5);
        map (fun a -> upd_r a [ (1, Value.Text "upd") ] [ (1, Value.Text "?") ])
          (int_bound 8);
        map (fun c -> upd_s c [ (1, Value.Text "upd") ] [ (1, Value.Text "?") ])
          (int_bound 5) ]
  in
  let* r_rows = list_size (int_bound 6) r_row in
  let* s_rows = list_size (int_bound 4) s_row in
  let* ops = list_size (int_range 1 6) op in
  return
    ( dedup (fun r -> Row.get r 0) r_rows,
      dedup (fun r -> Row.get r 0) s_rows,
      ops )

let prop_rules_idempotent =
  QCheck.Test.make ~name:"applying a rule twice = once" ~count:300
    (QCheck.make arb_scenario)
    (fun (r_rows, s_rows, ops) ->
       let catalog, fj = setup ~r_rows ~s_rows in
       List.for_all
         (fun op ->
            apply fj op;
            let once = t_rows catalog in
            apply fj op;
            let twice = t_rows catalog in
            List.length once = List.length twice
            && List.for_all2 Row.equal once twice)
         ops)

let () =
  Alcotest.run "foj_rules"
    [ ( "rule1",
        [ Alcotest.test_case "joins existing S" `Quick test_rule1_joins_existing_s;
          Alcotest.test_case "fills S-null survivor" `Quick
            test_rule1_fills_snull_survivor;
          Alcotest.test_case "no match" `Quick test_rule1_no_match;
          Alcotest.test_case "null join attribute" `Quick test_rule1_null_join;
          Alcotest.test_case "already reflected" `Quick
            test_rule1_already_reflected ] );
      ( "rule2",
        [ Alcotest.test_case "fills waiting R rows" `Quick
            test_rule2_fills_all_waiting_rs;
          Alcotest.test_case "unmatched survives" `Quick
            test_rule2_unmatched_survives;
          Alcotest.test_case "already reflected" `Quick
            test_rule2_already_reflected ] );
      ( "rule3",
        [ Alcotest.test_case "sole carrier preserves S" `Quick
            test_rule3_sole_carrier_preserves_s;
          Alcotest.test_case "other carrier keeps S" `Quick
            test_rule3_other_carrier_keeps_s;
          Alcotest.test_case "unmatched R" `Quick test_rule3_unmatched_r;
          Alcotest.test_case "missing ignored" `Quick test_rule3_missing_ignored ] );
      ( "rule4",
        [ Alcotest.test_case "strips carriers, drops survivor" `Quick
            test_rule4_strips_carriers_and_drops_survivor ] );
      ( "rule5",
        [ Alcotest.test_case "move to other S" `Quick test_rule5_move_to_other_s;
          Alcotest.test_case "fills null target" `Quick
            test_rule5_fills_null_target;
          Alcotest.test_case "move to unmatched" `Quick test_rule5_to_unmatched;
          Alcotest.test_case "stale update ignored" `Quick
            test_rule5_stale_ignored ] );
      ( "rule6",
        [ Alcotest.test_case "move" `Quick test_rule6_move;
          Alcotest.test_case "to unmatched" `Quick test_rule6_to_unmatched;
          Alcotest.test_case "missing ignored" `Quick test_rule6_missing_ignored ] );
      ( "rule7",
        [ Alcotest.test_case "R side" `Quick test_rule7_r_side;
          Alcotest.test_case "S side, all carriers" `Quick
            test_rule7_s_side_all_carriers ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_rules_idempotent ] ) ]
