(* Tests for the comparators: blocking INSERT INTO ... SELECT and
   trigger-based (Ronstrom-style) maintenance. *)

open Nbsc_value
open Nbsc_storage
open Nbsc_txn
open Nbsc_engine
open Nbsc_baseline
module H = Helpers

let ok name = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" name Manager.pp_error e

(* {1 Blocking INSERT INTO ... SELECT} *)

let test_dump_foj_correct () =
  let r_rows, s_rows = H.seed_rows ~r:40 ~s:15 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let oracle = H.foj_oracle db in
  let dump = Insert_into_select.foj db H.foj_spec in
  let steps = ref 0 in
  while Insert_into_select.step dump ~limit:7 = `Running do incr steps done;
  Alcotest.(check bool) "multiple steps" true (!steps > 3);
  Alcotest.(check bool) "sources dropped" false (Catalog.mem (Db.catalog db) "R");
  H.check_relations_equal "T = oracle" oracle (Db.snapshot db "T")

let test_dump_split_correct () =
  let db = H.fresh_split_db ~t_rows:(H.seed_t_rows ~n:50) in
  let t = Db.snapshot db "T" in
  let expected_r, expected_s =
    Nbsc_relalg.Relalg.split
      { Nbsc_relalg.Relalg.r_cols' = [ "a"; "b"; "c" ]; s_cols' = [ "c"; "d" ];
        r_key = [ "a" ]; s_key = [ "c" ] }
      t
  in
  let dump = Insert_into_select.split db (H.split_spec ~assume_consistent:true) in
  while Insert_into_select.step dump ~limit:16 = `Running do () done;
  H.check_relations_equal "R" expected_r (Db.snapshot db "R");
  H.check_relations_equal "S" expected_s (Db.snapshot db "S")

let test_dump_blocks_writers () =
  let r_rows, s_rows = H.seed_rows ~r:30 ~s:10 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let mgr = Db.manager db in
  let dump = Insert_into_select.foj db H.foj_spec in
  ignore (Insert_into_select.step dump ~limit:5);
  (* Mid-dump, the sources are latched: every write stalls. *)
  let txn = Manager.begin_txn mgr in
  (match
     Manager.update mgr ~txn ~table:"R"
       ~key:(Row.make [ Value.Int 1 ])
       [ (1, Value.Text "nope") ]
   with
   | Error (`Latched "R") -> ()
   | _ -> Alcotest.fail "expected Latched");
  ignore (Manager.abort mgr txn);
  while Insert_into_select.step dump ~limit:50 = `Running do () done;
  Alcotest.(check bool) "finished" true (Insert_into_select.finished dump)

(* {1 Trigger-based maintenance} *)

let test_trigger_keeps_t_fresh () =
  let r_rows, s_rows = H.seed_rows ~r:30 ~s:10 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let mgr = Db.manager db in
  let tr = Trigger_method.install_foj db H.foj_spec in
  (* Initial population is already there. *)
  H.check_relations_equal "initial" (H.foj_oracle db) (Db.snapshot db "T");
  (* Every user op is reflected synchronously. *)
  let txn = Manager.begin_txn mgr in
  ok "u" (Manager.update mgr ~txn ~table:"R"
            ~key:(Row.make [ Value.Int 3 ]) [ (1, Value.Text "fresh") ]);
  ok "i" (Manager.insert mgr ~txn ~table:"R" (H.ri 999 "brand-new" 4));
  ok "d" (Manager.delete mgr ~txn ~table:"S" ~key:(Row.make [ Value.Int 2 ]));
  ok "c" (Manager.commit mgr txn);
  H.check_relations_equal "after ops" (H.foj_oracle db) (Db.snapshot db "T");
  Alcotest.(check bool) "trigger work counted" true
    (Trigger_method.triggered_ops tr > 0);
  (* Uninstall stops maintenance. *)
  Trigger_method.uninstall tr;
  let txn = Manager.begin_txn mgr in
  ok "u2" (Manager.update mgr ~txn ~table:"R"
             ~key:(Row.make [ Value.Int 5 ]) [ (1, Value.Text "missed") ]);
  ok "c2" (Manager.commit mgr txn);
  Alcotest.(check bool) "now stale" false
    (Nbsc_relalg.Relalg.equal_as_sets (H.foj_oracle db) (Db.snapshot db "T"))

let test_trigger_split () =
  let db = H.fresh_split_db ~t_rows:(H.seed_t_rows ~n:40) in
  let mgr = Db.manager db in
  let _tr = Trigger_method.install_split db (H.split_spec ~assume_consistent:true) in
  let txn = Manager.begin_txn mgr in
  ok "u" (Manager.update mgr ~txn ~table:"T"
            ~key:(Row.make [ Value.Int 7 ])
            [ (2, Value.Int 3); (3, Value.Text (H.city_of 3)) ]);
  ok "c" (Manager.commit mgr txn);
  let t = Db.snapshot db "T" in
  let expected_r, expected_s =
    Nbsc_relalg.Relalg.split
      { Nbsc_relalg.Relalg.r_cols' = [ "a"; "b"; "c" ]; s_cols' = [ "c"; "d" ];
        r_key = [ "a" ]; s_key = [ "c" ] }
      t
  in
  H.check_relations_equal "R fresh" expected_r (Db.snapshot db "R");
  H.check_relations_equal "S fresh" expected_s (Db.snapshot db "S")

let test_trigger_work_attribution () =
  let r_rows, s_rows = H.seed_rows ~r:10 ~s:5 in
  let db = H.fresh_foj_db ~r_rows ~s_rows in
  let mgr = Db.manager db in
  let tr = Trigger_method.install_foj db H.foj_spec in
  let txn = Manager.begin_txn mgr in
  ok "u" (Manager.update mgr ~txn ~table:"R"
            ~key:(Row.make [ Value.Int 1 ]) [ (1, Value.Text "w") ]);
  Alcotest.(check bool) "last op did work" true (Trigger_method.last_op_work tr > 0);
  ok "c" (Manager.commit mgr txn);
  Trigger_method.uninstall tr

let () =
  Alcotest.run "baseline"
    [ ( "insert-into-select",
        [ Alcotest.test_case "FOJ correct" `Quick test_dump_foj_correct;
          Alcotest.test_case "split correct" `Quick test_dump_split_correct;
          Alcotest.test_case "blocks writers" `Quick test_dump_blocks_writers ] );
      ( "triggers",
        [ Alcotest.test_case "keeps T fresh" `Quick test_trigger_keeps_t_fresh;
          Alcotest.test_case "split variant" `Quick test_trigger_split;
          Alcotest.test_case "work attribution" `Quick
            test_trigger_work_attribution ] ) ]
