(* Tests for the multigranularity extension of the Figure 2 matrix. *)

open Nbsc_lock
open Multigranularity

let g m p = { gmode = m; gprovenance = p }
let native m = g m Compat.Native
let src i m = g m (Compat.Source i)

let test_standard_matrix () =
  (* The textbook 5x5 intent matrix. *)
  let expected =
    [ (IS, IS, true); (IS, IX, true); (IS, S, true); (IS, SIX, true);
      (IS, X, false);
      (IX, IS, true); (IX, IX, true); (IX, S, false); (IX, SIX, false);
      (IX, X, false);
      (S, IS, true); (S, IX, false); (S, S, true); (S, SIX, false);
      (S, X, false);
      (SIX, IS, true); (SIX, IX, false); (SIX, S, false); (SIX, SIX, false);
      (SIX, X, false);
      (X, IS, false); (X, IX, false); (X, S, false); (X, SIX, false);
      (X, X, false) ]
  in
  List.iter
    (fun (a, b, want) ->
       Alcotest.(check bool)
         (Format.asprintf "%a/%a" pp_mode a pp_mode b)
         want (standard a b))
    expected

let test_implied_intents () =
  Alcotest.(check bool) "S -> IS" true (implied_intent Compat.S = IS);
  Alcotest.(check bool) "X -> IX" true (implied_intent Compat.X = IX)

let test_figure2_principle_lifted () =
  (* Transferred locks never conflict with each other... *)
  Alcotest.(check bool) "src X / src X" true (compatible (src 0 X) (src 1 X));
  Alcotest.(check bool) "src SIX / src IX" true
    (compatible (src 0 SIX) (src 0 IX));
  (* ...native vs transferred only when both are read-only... *)
  Alcotest.(check bool) "native IS / src S" true
    (compatible (native IS) (src 0 S));
  Alcotest.(check bool) "native S / src IX" false
    (compatible (native S) (src 0 IX));
  Alcotest.(check bool) "native IX / src IS" false
    (compatible (native IX) (src 0 IS));
  (* ...and native vs native is the standard matrix. *)
  Alcotest.(check bool) "native IX / native IX" true
    (compatible (native IX) (native IX));
  Alcotest.(check bool) "native S / native IX" false
    (compatible (native S) (native IX))

let test_matrix_properties () =
  let cells = matrix () in
  Alcotest.(check int) "225 cells" 225 (List.length cells);
  (* Symmetry. *)
  List.iter
    (fun (a, b, c) ->
       Alcotest.(check bool) "symmetric" c (compatible b a);
       ignore (a, b))
    cells;
  (* Restriction of the lifted matrix to {S_record -> S, X_record -> X}
     with no intents degenerates to the original Figure 2. *)
  let base m = function
    | Compat.Native -> native (match m with Compat.S -> S | Compat.X -> X)
    | p -> g (match m with Compat.S -> S | Compat.X -> X) p
  in
  List.iter
    (fun held ->
       List.iter
         (fun req ->
            let lifted =
              compatible
                (base held.Compat.mode held.Compat.provenance)
                (base req.Compat.mode req.Compat.provenance)
            in
            Alcotest.(check bool) "agrees with record-level Fig. 2"
              (Compat.compatible held req) lifted)
         Compat.figure2_order)
    Compat.figure2_order

let test_table_locks_basic () =
  let t = Table_locks.create () in
  Alcotest.(check bool) "IX granted" true
    (Table_locks.acquire t ~owner:1 ~table:"a" (native IX) = Table_locks.Granted);
  Alcotest.(check bool) "second IX granted" true
    (Table_locks.acquire t ~owner:2 ~table:"a" (native IX) = Table_locks.Granted);
  (match Table_locks.acquire t ~owner:3 ~table:"a" (native S) with
   | Table_locks.Blocked owners ->
     Alcotest.(check (list int)) "S blocked by both" [ 1; 2 ]
       (List.sort compare owners)
   | Table_locks.Granted -> Alcotest.fail "table scan must block on IX");
  Table_locks.release_owner t ~owner:1;
  Table_locks.release_owner t ~owner:2;
  Alcotest.(check bool) "S after release" true
    (Table_locks.acquire t ~owner:3 ~table:"a" (native S) = Table_locks.Granted)

let test_table_locks_upgrade () =
  let t = Table_locks.create () in
  ignore (Table_locks.acquire t ~owner:1 ~table:"a" (native S));
  (* S + IX = SIX on re-acquisition. *)
  Alcotest.(check bool) "upgrade granted" true
    (Table_locks.acquire t ~owner:1 ~table:"a" (native IX) = Table_locks.Granted);
  (match Table_locks.holders t ~table:"a" with
   | [ (1, { gmode = SIX; _ }) ] -> ()
   | _ -> Alcotest.fail "expected a single SIX lock");
  (* SIX blocks another reader's IS? No: SIX/IS is compatible. *)
  Alcotest.(check bool) "IS joins SIX" true
    (Table_locks.acquire t ~owner:2 ~table:"a" (native IS) = Table_locks.Granted);
  (* but another S is blocked. *)
  (match Table_locks.acquire t ~owner:3 ~table:"a" (native S) with
   | Table_locks.Blocked [ 1 ] -> ()
   | _ -> Alcotest.fail "S vs SIX must block")

let test_transferred_table_locks () =
  (* During non-blocking commit, intents transferred from R and S
     coexist on T even at table granularity; a native table scan waits. *)
  let t = Table_locks.create () in
  ignore (Table_locks.acquire t ~owner:1 ~table:"T" (src 0 IX));
  Alcotest.(check bool) "both sources" true
    (Table_locks.acquire t ~owner:2 ~table:"T" (src 1 IX) = Table_locks.Granted);
  (match Table_locks.acquire t ~owner:3 ~table:"T" (native S) with
   | Table_locks.Blocked owners ->
     Alcotest.(check int) "blocked" 2 (List.length owners)
   | Table_locks.Granted -> Alcotest.fail "scan must wait");
  (* Even a native read intent waits: the transferred locks are write
     intents. *)
  (match Table_locks.acquire t ~owner:3 ~table:"T" (native IS) with
   | Table_locks.Blocked _ -> ()
   | Table_locks.Granted -> Alcotest.fail "native IS must wait on source IX")

let () =
  Alcotest.run "multigranularity"
    [ ( "matrix",
        [ Alcotest.test_case "standard 5x5" `Quick test_standard_matrix;
          Alcotest.test_case "implied intents" `Quick test_implied_intents;
          Alcotest.test_case "figure 2 lifted" `Quick
            test_figure2_principle_lifted;
          Alcotest.test_case "structural properties" `Quick
            test_matrix_properties ] );
      ( "table locks",
        [ Alcotest.test_case "basics" `Quick test_table_locks_basic;
          Alcotest.test_case "upgrade to SIX" `Quick test_table_locks_upgrade;
          Alcotest.test_case "transferred intents" `Quick
            test_transferred_table_locks ] ) ]
