(* Tests of the relational-algebra oracle: FOJ and split semantics. *)

open Nbsc_value
open Nbsc_relalg
module H = Helpers

let rel schema rows = Relalg.make schema rows

let foj_spec =
  { Relalg.r_join = [ "c" ];
    s_join = [ "c" ];
    out_join = [ "c" ];
    r_cols = [ "a"; "b" ];
    s_cols = [ "d" ];
    out_key = [ "a" ] }

let split_spec =
  { Relalg.r_cols' = [ "a"; "b"; "c" ];
    s_cols' = [ "c"; "d" ];
    r_key = [ "a" ];
    s_key = [ "c" ] }

let test_foj_basic () =
  let r = rel H.r_schema [ H.ri 1 "John" 10; H.ri 2 "Karen" 30; H.ri 3 "Mary" 10 ] in
  let s = rel H.s_schema [ H.si 10 "x"; H.si 20 "y" ] in
  let t = Relalg.full_outer_join foj_spec r s in
  Alcotest.(check int) "4 rows" 4 (List.length t.Relalg.rows);
  let expected =
    [ Row.make [ Value.Int 10; Value.Int 1; Value.Text "John"; Value.Text "x" ];
      Row.make [ Value.Int 30; Value.Int 2; Value.Text "Karen"; Value.Null ];
      Row.make [ Value.Int 10; Value.Int 3; Value.Text "Mary"; Value.Text "x" ];
      Row.make [ Value.Int 20; Value.Null; Value.Null; Value.Text "y" ] ]
  in
  H.check_relations_equal "foj" (Relalg.make t.Relalg.schema expected) t

let test_foj_empty_sides () =
  let empty_r = rel H.r_schema [] in
  let empty_s = rel H.s_schema [] in
  let r = rel H.r_schema [ H.ri 1 "a" 5 ] in
  let s = rel H.s_schema [ H.si 5 "d" ] in
  Alcotest.(check int) "both empty" 0
    (List.length (Relalg.full_outer_join foj_spec empty_r empty_s).Relalg.rows);
  Alcotest.(check int) "left only" 1
    (List.length (Relalg.full_outer_join foj_spec r empty_s).Relalg.rows);
  Alcotest.(check int) "right only" 1
    (List.length (Relalg.full_outer_join foj_spec empty_r s).Relalg.rows)

let test_foj_null_join_never_matches () =
  let r = rel H.r_schema [ Row.make [ Value.Int 1; Value.Text "a"; Value.Null ] ] in
  let s = rel H.s_schema [ Row.make [ Value.Null; Value.Text "d" ] ] in
  let t = Relalg.full_outer_join foj_spec r s in
  (* Both survive unmatched: NULL is not equal to NULL in a join. *)
  Alcotest.(check int) "two padded rows" 2 (List.length t.Relalg.rows)

let test_foj_many_to_many () =
  (* Two R rows share join 10 and S is keyed so duplicates can share a
     join value too. *)
  let s2_schema =
    Schema.make ~key:[ "k" ]
      [ Schema.column ~nullable:false "k" Value.TInt;
        Schema.column "c" Value.TInt; Schema.column "d" Value.TText ]
  in
  let r = rel H.r_schema [ H.ri 1 "a" 10; H.ri 2 "b" 10 ] in
  let s =
    rel s2_schema
      [ Row.make [ Value.Int 100; Value.Int 10; Value.Text "p" ];
        Row.make [ Value.Int 200; Value.Int 10; Value.Text "q" ] ]
  in
  let spec =
    { Relalg.r_join = [ "c" ];
      s_join = [ "c" ];
      out_join = [ "c" ];
      r_cols = [ "a"; "b" ];
      s_cols = [ "k"; "d" ];
      out_key = [ "a"; "k" ] }
  in
  let t = Relalg.full_outer_join spec r s in
  Alcotest.(check int) "cross product on join value" 4
    (List.length t.Relalg.rows)

let test_split_basic () =
  let t =
    rel H.t_flat_schema
      [ H.ti 1 "Peter" 7050 "Trondheim";
        H.ti 2 "Mark" 5020 "Bergen";
        H.ti 134 "Jen" 7050 "Trondheim" ]
  in
  let r, s = Relalg.split split_spec t in
  Alcotest.(check int) "R keeps every row" 3 (List.length r.Relalg.rows);
  Alcotest.(check int) "S deduplicates" 2 (List.length s.Relalg.rows)

let test_split_consistency_check () =
  let consistent =
    rel H.t_flat_schema
      [ H.ti 1 "P" 1 "A"; H.ti 2 "Q" 1 "A"; H.ti 3 "R" 2 "B" ]
  in
  let inconsistent =
    rel H.t_flat_schema [ H.ti 1 "P" 1 "A"; H.ti 2 "Q" 1 "DIFFERENT" ]
  in
  Alcotest.(check bool) "fd holds" true
    (Relalg.split_consistent split_spec consistent);
  Alcotest.(check bool) "fd violated" false
    (Relalg.split_consistent split_spec inconsistent)

let test_split_multiplicity () =
  let t =
    rel H.t_flat_schema
      [ H.ti 1 "a" 7 "x"; H.ti 2 "b" 7 "x"; H.ti 3 "c" 7 "x"; H.ti 4 "d" 9 "y" ]
  in
  let m = Relalg.split_multiplicity split_spec t in
  Alcotest.(check int) "two groups" 2 (List.length m);
  let counts = List.map snd m in
  Alcotest.(check bool) "counts 3 and 1" true
    (List.sort compare counts = [ 1; 3 ])

let test_project_dedup () =
  let t = rel H.t_flat_schema [ H.ti 1 "a" 7 "x"; H.ti 2 "b" 7 "x" ] in
  let p = Relalg.project t [ "c"; "d" ] ~key:[ "c" ] in
  Alcotest.(check int) "set semantics" 1 (List.length p.Relalg.rows)

let test_select () =
  let t = rel H.t_flat_schema [ H.ti 1 "a" 7 "x"; H.ti 2 "b" 9 "y" ] in
  let f = Relalg.select t (fun row -> Value.equal (Row.get row 2) (Value.Int 7)) in
  Alcotest.(check int) "filtered" 1 (List.length f.Relalg.rows)

(* Property: our oracle FOJ agrees with a naive nested-loop definition. *)
let naive_foj r_rows s_rows =
  let join_matches rrow srow = Value.equal (Row.get rrow 2) (Row.get srow 0) in
  let left =
    List.concat_map
      (fun rrow ->
         let ms = List.filter (join_matches rrow) s_rows in
         if Value.is_null (Row.get rrow 2) || ms = [] then
           [ Row.make
               [ Row.get rrow 2; Row.get rrow 0; Row.get rrow 1; Value.Null ] ]
         else
           List.map
             (fun srow ->
                Row.make
                  [ Row.get rrow 2; Row.get rrow 0; Row.get rrow 1;
                    Row.get srow 1 ])
             ms)
      r_rows
  in
  let right =
    List.filter_map
      (fun srow ->
         let matched =
           (not (Value.is_null (Row.get srow 0)))
           && List.exists (fun rrow -> join_matches rrow srow) r_rows
         in
         if matched then None
         else
           Some (Row.make [ Row.get srow 0; Value.Null; Value.Null; Row.get srow 1 ]))
      s_rows
  in
  left @ right

let arb_tables =
  let gen =
    QCheck.Gen.(
      let* nr = int_bound 15 in
      let* ns = int_bound 10 in
      let r_rows =
        List.init nr (fun i -> i)
        |> List.map (fun i ->
            map (fun c -> H.ri (i + 1) ("r" ^ string_of_int i) c) (int_bound 6))
      in
      let s_rows =
        List.init ns (fun i -> i)
        |> List.map (fun i ->
            map (fun d -> H.si i ("s" ^ string_of_int d)) (int_bound 100))
      in
      let* r = flatten_l r_rows in
      let* s = flatten_l s_rows in
      return (r, s))
  in
  QCheck.make gen

let prop_foj_matches_naive =
  QCheck.Test.make ~name:"oracle FOJ = naive nested loop" ~count:200 arb_tables
    (fun (r_rows, s_rows) ->
       let oracle =
         Relalg.full_outer_join foj_spec (rel H.r_schema r_rows)
           (rel H.s_schema s_rows)
       in
       let naive = naive_foj r_rows s_rows in
       Relalg.equal_as_sets oracle (Relalg.make oracle.Relalg.schema naive))

let prop_split_preserves_r =
  QCheck.Test.make ~name:"split keeps one R row per T row" ~count:200
    QCheck.(list_of_size Gen.(int_bound 20)
              (map (fun (a, c) -> H.ti a ("n" ^ string_of_int a) c (H.city_of c))
                 (pair small_nat (int_bound 5))))
    (fun rows ->
       (* Dedup keys to make a legal table. *)
       let seen = Hashtbl.create 16 in
       let rows =
         List.filter
           (fun row ->
              let k = Row.get row 0 in
              if Hashtbl.mem seen k then false
              else begin
                Hashtbl.add seen k ();
                true
              end)
           rows
       in
       let t = rel H.t_flat_schema rows in
       let r, s = Relalg.split split_spec t in
       List.length r.Relalg.rows = List.length rows
       && List.length s.Relalg.rows <= List.length rows)

let () =
  Alcotest.run "relalg"
    [ ( "foj",
        [ Alcotest.test_case "basic" `Quick test_foj_basic;
          Alcotest.test_case "empty sides" `Quick test_foj_empty_sides;
          Alcotest.test_case "null join" `Quick test_foj_null_join_never_matches;
          Alcotest.test_case "many to many" `Quick test_foj_many_to_many ] );
      ( "split",
        [ Alcotest.test_case "basic" `Quick test_split_basic;
          Alcotest.test_case "consistency check" `Quick
            test_split_consistency_check;
          Alcotest.test_case "multiplicity" `Quick test_split_multiplicity ] );
      ( "other",
        [ Alcotest.test_case "project dedup" `Quick test_project_dedup;
          Alcotest.test_case "select" `Quick test_select ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_foj_matches_naive; prop_split_preserves_r ] ) ]
