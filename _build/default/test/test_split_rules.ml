(* Unit tests for the split propagation rules (paper Rules 8-11):
   counters, LSN gating, split-attribute changes, and the C/U flag
   transitions of Sec. 5.3. *)

open Nbsc_value
open Nbsc_wal
open Nbsc_storage
open Nbsc_core
module H = Helpers
module LR = Log_record

(* Build a catalog with T loaded directly (each row's LSN = its 1-based
   position), the split prepared, and the initial image populated. *)
let setup ?(assume_consistent = true) ~t_rows () =
  let catalog = Catalog.create () in
  let t_tbl = Catalog.create_table catalog ~name:"T" H.t_flat_schema in
  List.iteri
    (fun i row -> ignore (Table.insert t_tbl ~lsn:(Lsn.of_int (i + 1)) row))
    t_rows;
  let layout = Spec.split_layout catalog (H.split_spec ~assume_consistent) in
  ignore (Catalog.create_table catalog ~name:"R" (Spec.split_r_schema layout));
  ignore (Catalog.create_table catalog ~name:"S" (Spec.split_s_schema layout));
  Table.add_index t_tbl ~name:Spec.ix_t_split ~columns:[ "c" ];
  let sp = Split.create catalog layout in
  let pop = Population.split sp ~t_tbl in
  while not (Population.step pop ~limit:max_int) do () done;
  (catalog, sp)

let r_tbl catalog = Catalog.find catalog "R"
let s_tbl catalog = Catalog.find catalog "S"
let key a = Row.make [ Value.Int a ]
let skey c = Row.make [ Value.Int c ]

let counter_of catalog c =
  match Table.find (s_tbl catalog) (skey c) with
  | Some r -> r.Record.counter
  | None -> -1

let flag_of catalog c =
  match Table.find (s_tbl catalog) (skey c) with
  | Some r -> r.Record.flag
  | None -> Alcotest.failf "S record %d missing" c

let apply sp ~at op = ignore (Split.apply sp ~lsn:(Lsn.of_int at) op)

let ins a b c d = LR.Insert { table = "T"; row = H.ti a b c d }
let del a ~before = LR.Delete { table = "T"; key = key a; before }
let upd a changes before = LR.Update { table = "T"; key = key a; changes; before }

(* {1 Rule 8: insert} *)

let test_rule8_insert_new_group () =
  let catalog, sp = setup ~t_rows:[ H.ti 1 "a" 10 "X" ] () in
  apply sp ~at:50 (ins 2 "b" 20 "Y");
  Alcotest.(check int) "R grew" 2 (Table.cardinality (r_tbl catalog));
  Alcotest.(check int) "new group counter" 1 (counter_of catalog 20)

let test_rule8_insert_existing_group () =
  let catalog, sp = setup ~t_rows:[ H.ti 1 "a" 10 "X" ] () in
  apply sp ~at:50 (ins 2 "b" 10 "X");
  Alcotest.(check int) "counter bumped" 2 (counter_of catalog 10);
  Alcotest.(check int) "still one S record" 1 (Table.cardinality (s_tbl catalog))

let test_rule8_reflected_ignored () =
  let catalog, sp = setup ~t_rows:[ H.ti 1 "a" 10 "X" ] () in
  apply sp ~at:50 (ins 1 "a" 10 "X");
  Alcotest.(check int) "counter untouched" 1 (counter_of catalog 10);
  Alcotest.(check bool) "ignored" true ((Split.stats sp).Split.ignored >= 1)

(* {1 Rule 9: delete} *)

let test_rule9_decrements_and_removes () =
  let catalog, sp =
    setup ~t_rows:[ H.ti 1 "a" 10 "X"; H.ti 2 "b" 10 "X" ] ()
  in
  apply sp ~at:50 (del 1 ~before:(H.ti 1 "a" 10 "X"));
  Alcotest.(check int) "R shrunk" 1 (Table.cardinality (r_tbl catalog));
  Alcotest.(check int) "counter down" 1 (counter_of catalog 10);
  apply sp ~at:51 (del 2 ~before:(H.ti 2 "b" 10 "X"));
  Alcotest.(check int) "S record removed at zero" (-1) (counter_of catalog 10);
  Alcotest.(check int) "S empty" 0 (Table.cardinality (s_tbl catalog))

let test_rule9_lsn_gate () =
  (* The initial image carries LSN 1; a log record with a smaller or
     equal LSN is already reflected and must be skipped. *)
  let catalog, sp = setup ~t_rows:[ H.ti 1 "a" 10 "X" ] () in
  apply sp ~at:1 (del 1 ~before:(H.ti 1 "a" 10 "X"));
  Alcotest.(check int) "stale delete ignored" 1 (Table.cardinality (r_tbl catalog));
  apply sp ~at:2 (del 1 ~before:(H.ti 1 "a" 10 "X"));
  Alcotest.(check int) "fresh delete applies" 0 (Table.cardinality (r_tbl catalog))

(* {1 Rules 10/11: update} *)

let test_rule10_r_part () =
  let catalog, sp = setup ~t_rows:[ H.ti 1 "a" 10 "X" ] () in
  apply sp ~at:50 (upd 1 [ (1, Value.Text "a2") ] [ (1, Value.Text "a") ]);
  let r = Option.get (Table.find (r_tbl catalog) (key 1)) in
  Alcotest.(check bool) "b updated" true
    (Value.equal (Row.get r.Record.row 1) (Value.Text "a2"));
  Alcotest.(check int) "R lsn moved" 50 (Lsn.to_int r.Record.lsn)

let test_rule10_lsn_gate_covers_s () =
  (* If the R record already reflects the operation, the S side must
     not be touched either. *)
  let catalog, sp = setup ~t_rows:[ H.ti 1 "a" 10 "X" ] () in
  apply sp ~at:1 (upd 1 [ (3, Value.Text "CHANGED") ] [ (3, Value.Text "X") ]);
  let s = Option.get (Table.find (s_tbl catalog) (skey 10)) in
  Alcotest.(check bool) "S row untouched" true
    (Value.equal (Row.get s.Record.row 1) (Value.Text "X"))

let test_rule11_nonsplit_update () =
  let catalog, sp = setup ~t_rows:[ H.ti 1 "a" 10 "X" ] () in
  apply sp ~at:50 (upd 1 [ (3, Value.Text "X2") ] [ (3, Value.Text "X") ]);
  let s = Option.get (Table.find (s_tbl catalog) (skey 10)) in
  Alcotest.(check bool) "S row updated" true
    (Value.equal (Row.get s.Record.row 1) (Value.Text "X2"));
  Alcotest.(check int) "S lsn moved" 50 (Lsn.to_int s.Record.lsn)

let test_rule11_s_lsn_gate () =
  (* S's own LSN gates rule 11: after one fresh update, replaying an
     older one is a no-op even though R accepted... R also gates by
     LSN, so craft: two T rows share the group; row 1's update at 60
     moved S's lsn to 60; row 2's older update at 55 still applies to R
     but not to S. *)
  let catalog, sp =
    setup ~t_rows:[ H.ti 1 "a" 10 "X"; H.ti 2 "b" 10 "X" ] ()
  in
  apply sp ~at:60 (upd 1 [ (3, Value.Text "NEW") ] [ (3, Value.Text "X") ]);
  apply sp ~at:55 (upd 2 [ (3, Value.Text "OLD") ] [ (3, Value.Text "X") ]);
  let s = Option.get (Table.find (s_tbl catalog) (skey 10)) in
  Alcotest.(check bool) "newer S image survives" true
    (Value.equal (Row.get s.Record.row 1) (Value.Text "NEW"));
  (* but R row 2 did move *)
  let r2 = Option.get (Table.find (r_tbl catalog) (key 2)) in
  Alcotest.(check int) "R2 lsn" 55 (Lsn.to_int r2.Record.lsn)

let test_rule11_split_change () =
  let catalog, sp =
    setup ~t_rows:[ H.ti 1 "a" 10 "X"; H.ti 2 "b" 10 "X" ] ()
  in
  (* Row 1 moves from group 10 to group 30 (both split and dependent
     column change together, preserving the FD). *)
  apply sp ~at:50
    (upd 1
       [ (2, Value.Int 30); (3, Value.Text "Z") ]
       [ (2, Value.Int 10); (3, Value.Text "X") ]);
  Alcotest.(check int) "old group decremented" 1 (counter_of catalog 10);
  Alcotest.(check int) "new group created" 1 (counter_of catalog 30);
  let r = Option.get (Table.find (r_tbl catalog) (key 1)) in
  Alcotest.(check bool) "R split col updated" true
    (Value.equal (Row.get r.Record.row 2) (Value.Int 30))

let test_rule11_split_change_to_existing () =
  let catalog, sp =
    setup ~t_rows:[ H.ti 1 "a" 10 "X"; H.ti 2 "b" 20 "Y" ] ()
  in
  apply sp ~at:50
    (upd 1
       [ (2, Value.Int 20); (3, Value.Text "Y") ]
       [ (2, Value.Int 10); (3, Value.Text "X") ]);
  Alcotest.(check int) "old group removed" (-1) (counter_of catalog 10);
  Alcotest.(check int) "target counter bumped" 2 (counter_of catalog 20)

let test_rule11_counter_follows_r_gate () =
  (* Regression: a fuzzy read can stamp the S record with an LSN ahead
     of the log position (another group member was scanned after a
     later update). A split-attribute change whose R side applies must
     still move the counters, even though the S record's LSN gate would
     say "already reflected" — otherwise counter = |group| breaks and a
     later delete removes the S record while carriers remain. *)
  let catalog, sp =
    setup ~t_rows:[ H.ti 1 "a" 10 "X"; H.ti 2 "b" 10 "X" ] ()
  in
  (* Simulate the fuzzy-read skew: bump s{^10}'s LSN far ahead. *)
  let s = Option.get (Table.find (s_tbl catalog) (skey 10)) in
  ignore
    (Table.set_record (s_tbl catalog) ~key:(skey 10)
       (Record.with_lsn s (Lsn.of_int 500)));
  (* Row 1 moves group at log position 50 (< 500): R applies, and the
     counters must follow. *)
  apply sp ~at:50
    (upd 1
       [ (2, Value.Int 30); (3, Value.Text "Z") ]
       [ (2, Value.Int 10); (3, Value.Text "X") ]);
  Alcotest.(check int) "old group decremented" 1 (counter_of catalog 10);
  Alcotest.(check int) "new group exists" 1 (counter_of catalog 30);
  (* Deleting the remaining member must now remove s{^10} exactly. *)
  apply sp ~at:51 (del 2 ~before:(H.ti 2 "b" 10 "X"));
  Alcotest.(check int) "old group gone" (-1) (counter_of catalog 10)

(* {1 Flags (Sec. 5.3)} *)

let test_flag_u_on_divergent_initial () =
  let catalog, sp =
    setup ~assume_consistent:false
      ~t_rows:[ H.ti 1 "a" 10 "X"; H.ti 2 "b" 10 "DIFFERENT" ]
      ()
  in
  ignore sp;
  Alcotest.(check bool) "U flagged" true (flag_of catalog 10 = Record.Unknown)

let test_flag_u_on_divergent_insert () =
  let catalog, sp =
    setup ~assume_consistent:false ~t_rows:[ H.ti 1 "a" 10 "X" ] ()
  in
  Alcotest.(check bool) "initially C" true (flag_of catalog 10 = Record.Consistent);
  apply sp ~at:50 (ins 2 "b" 10 "OTHER");
  Alcotest.(check bool) "U after divergent insert" true
    (flag_of catalog 10 = Record.Unknown)

let test_flag_u_on_shared_update () =
  let catalog, sp =
    setup ~assume_consistent:false
      ~t_rows:[ H.ti 1 "a" 10 "X"; H.ti 2 "b" 10 "X" ]
      ()
  in
  apply sp ~at:50 (upd 1 [ (3, Value.Text "X2") ] [ (3, Value.Text "X") ]);
  Alcotest.(check bool) "counter>1 update flags U" true
    (flag_of catalog 10 = Record.Unknown)

let test_flag_c_on_full_singleton_update () =
  let catalog, sp =
    setup ~assume_consistent:false
      ~t_rows:[ H.ti 1 "a" 10 "X"; H.ti 2 "b" 10 "DIFFERENT" ]
      ()
  in
  Alcotest.(check bool) "starts U" true (flag_of catalog 10 = Record.Unknown);
  (* Deleting one leaves a singleton (still U)... *)
  apply sp ~at:50 (del 2 ~before:(H.ti 2 "b" 10 "DIFFERENT"));
  Alcotest.(check bool) "still U" true (flag_of catalog 10 = Record.Unknown);
  (* ...and an update covering all non-key S columns of a counter-1
     record proves consistency. *)
  apply sp ~at:51 (upd 1 [ (3, Value.Text "FIXED") ] [ (3, Value.Text "X") ]);
  Alcotest.(check bool) "C after full update" true
    (flag_of catalog 10 = Record.Consistent)

let test_consistent_mode_never_flags () =
  let catalog, sp =
    setup ~assume_consistent:true ~t_rows:[ H.ti 1 "a" 10 "X" ] ()
  in
  apply sp ~at:50 (ins 2 "b" 10 "OTHER");
  Alcotest.(check bool) "stays C" true (flag_of catalog 10 = Record.Consistent);
  Alcotest.(check int) "unknown count 0" 0 (Split.unknown_count sp)

(* {1 Counter invariant (ablation for the Gupta-style counter)} *)

let prop_counter_equals_group_size =
  (* After any op sequence, every S counter equals the number of R rows
     with that split value, and S has no zero-counter records. *)
  QCheck.Test.make ~name:"counter = |R group|" ~count:200
    QCheck.(list_of_size Gen.(int_bound 40)
              (triple (int_bound 10) (int_bound 4) (int_bound 2)))
    (fun ops ->
       let t_rows = [ H.ti 0 "seed" 0 (H.city_of 0); H.ti 1 "seed" 1 (H.city_of 1) ] in
       let catalog, sp = setup ~t_rows () in
       let at = ref 100 in
       List.iter
         (fun (a, c, action) ->
            incr at;
            let op =
              match action with
              | 0 -> ins a ("n" ^ string_of_int a) c (H.city_of c)
              | 1 -> del a ~before:(H.ti a "?" c (H.city_of c))
              | _ ->
                upd a
                  [ (2, Value.Int c); (3, Value.Text (H.city_of c)) ]
                  [ (2, Value.Int (c + 1)); (3, Value.Text (H.city_of (c + 1))) ]
            in
            apply sp ~at:!at op)
         ops;
       let groups = Hashtbl.create 8 in
       Table.iter (r_tbl catalog) (fun _ r ->
           let c = Row.get r.Record.row 2 in
           Hashtbl.replace groups c
             (1 + try Hashtbl.find groups c with Not_found -> 0));
       let ok = ref (Hashtbl.length groups = Table.cardinality (s_tbl catalog)) in
       Table.iter (s_tbl catalog) (fun _ s ->
           let c = Row.get s.Record.row 0 in
           let expected = try Hashtbl.find groups c with Not_found -> 0 in
           if s.Record.counter <> expected || s.Record.counter <= 0 then
             ok := false);
       !ok)

let () =
  Alcotest.run "split_rules"
    [ ( "rule8",
        [ Alcotest.test_case "new group" `Quick test_rule8_insert_new_group;
          Alcotest.test_case "existing group" `Quick
            test_rule8_insert_existing_group;
          Alcotest.test_case "reflected ignored" `Quick
            test_rule8_reflected_ignored ] );
      ( "rule9",
        [ Alcotest.test_case "decrement and remove" `Quick
            test_rule9_decrements_and_removes;
          Alcotest.test_case "LSN gate" `Quick test_rule9_lsn_gate ] );
      ( "rules10-11",
        [ Alcotest.test_case "R part" `Quick test_rule10_r_part;
          Alcotest.test_case "R gate covers S" `Quick
            test_rule10_lsn_gate_covers_s;
          Alcotest.test_case "non-split update" `Quick test_rule11_nonsplit_update;
          Alcotest.test_case "S LSN gate" `Quick test_rule11_s_lsn_gate;
          Alcotest.test_case "split change" `Quick test_rule11_split_change;
          Alcotest.test_case "split change to existing" `Quick
            test_rule11_split_change_to_existing;
          Alcotest.test_case "counter follows R gate (regression)" `Quick
            test_rule11_counter_follows_r_gate ] );
      ( "flags",
        [ Alcotest.test_case "U on divergent initial image" `Quick
            test_flag_u_on_divergent_initial;
          Alcotest.test_case "U on divergent insert" `Quick
            test_flag_u_on_divergent_insert;
          Alcotest.test_case "U on shared update" `Quick
            test_flag_u_on_shared_update;
          Alcotest.test_case "C on full singleton update" `Quick
            test_flag_c_on_full_singleton_update;
          Alcotest.test_case "consistent mode never flags" `Quick
            test_consistent_mode_never_flags ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_counter_equals_group_size ] ) ]
