(* Tests for the iteration-analysis policies (paper Sec. 3.3): the
   three decision bases the paper lists, unit-level and end-to-end. *)

open Nbsc_core
module H = Helpers

(* {1 Unit behaviour} *)

let test_remaining_records () =
  let a = Analysis.create (Analysis.Remaining_records 5) in
  Alcotest.(check bool) "lag 6 not ready" false (Analysis.ready a ~lag:6);
  Alcotest.(check bool) "lag 5 ready" true (Analysis.ready a ~lag:5);
  Alcotest.(check bool) "lag 0 ready" true (Analysis.ready a ~lag:0)

let test_iteration_shrink () =
  let a =
    Analysis.create (Analysis.Iteration_shrink { factor = 0.5; floor = 2 })
  in
  (* First cycle: 100 records. Never ready before any cycle verdict. *)
  Analysis.observe a ~lag:50 ~consumed:100;
  Alcotest.(check bool) "mid-cycle not ready" false (Analysis.ready a ~lag:50);
  Analysis.end_iteration a;
  Alcotest.(check bool) "first cycle has no baseline" false
    (Analysis.ready a ~lag:10);
  (* Second cycle consumes 30 <= 0.5 * 100: shrinking. *)
  Analysis.observe a ~lag:0 ~consumed:30;
  Analysis.end_iteration a;
  Alcotest.(check bool) "shrinking cycle ready" true (Analysis.ready a ~lag:10);
  (* A growing cycle revokes readiness. *)
  Analysis.observe a ~lag:0 ~consumed:400;
  Analysis.end_iteration a;
  Alcotest.(check bool) "growing cycle not ready" false
    (Analysis.ready a ~lag:10);
  (* Unless the cycle is below the floor outright. *)
  Analysis.observe a ~lag:0 ~consumed:1;
  Analysis.end_iteration a;
  Alcotest.(check bool) "floor cycle ready" true (Analysis.ready a ~lag:10)

let test_estimated_time () =
  let a = Analysis.create (Analysis.Estimated_time { max_steps = 3. }) in
  (* Draining 10 records of lag per step. *)
  Analysis.observe a ~lag:100 ~consumed:12;
  Analysis.observe a ~lag:90 ~consumed:12;
  Analysis.observe a ~lag:80 ~consumed:12;
  Analysis.observe a ~lag:70 ~consumed:12;
  Alcotest.(check bool) "70 lag at ~10/step not ready" false
    (Analysis.ready a ~lag:70);
  Alcotest.(check bool) "15 lag at ~10/step ready" true
    (Analysis.ready a ~lag:15);
  (* A propagator that is losing ground is never ready (except lag 0). *)
  let b = Analysis.create (Analysis.Estimated_time { max_steps = 3. }) in
  Analysis.observe b ~lag:100 ~consumed:5;
  Analysis.observe b ~lag:120 ~consumed:5;
  Analysis.observe b ~lag:140 ~consumed:5;
  Alcotest.(check bool) "negative rate not ready" false
    (Analysis.ready b ~lag:10);
  Alcotest.(check bool) "lag 0 always ready" true (Analysis.ready b ~lag:0)

(* {1 End-to-end: every policy drives a transformation to completion
   and converges} *)

let converges policy () =
  let db = H.fresh_split_db ~t_rows:(H.seed_t_rows ~n:60) in
  let d = H.driver ~seed:8 db in
  let config =
    { Nbsc_core.Transform.default_config with
      Nbsc_core.Transform.scan_batch = 7;
      propagate_batch = 5;
      analysis = policy;
      drop_sources = false }
  in
  let tf =
    Nbsc_core.Transform.split db ~config (H.split_spec ~assume_consistent:true)
  in
  let budget = ref 150 in
  (match
     Nbsc_core.Transform.run tf ~between:(fun () ->
         if !budget > 0 then begin
           decr budget;
           H.random_t_op ~consistent:true d
         end)
   with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  let t = Nbsc_engine.Db.snapshot db "T" in
  let want_r, want_s =
    Nbsc_relalg.Relalg.split
      { Nbsc_relalg.Relalg.r_cols' = [ "a"; "b"; "c" ]; s_cols' = [ "c"; "d" ];
        r_key = [ "a" ]; s_key = [ "c" ] }
      t
  in
  H.check_relations_equal "R" want_r (Nbsc_engine.Db.snapshot db "R");
  H.check_relations_equal "S" want_s (Nbsc_engine.Db.snapshot db "S")

let () =
  Alcotest.run "analysis"
    [ ( "policies",
        [ Alcotest.test_case "remaining records" `Quick test_remaining_records;
          Alcotest.test_case "iteration shrink" `Quick test_iteration_shrink;
          Alcotest.test_case "estimated time" `Quick test_estimated_time ] );
      ( "end-to-end",
        [ Alcotest.test_case "remaining-records converges" `Quick
            (converges (Analysis.Remaining_records 8));
          Alcotest.test_case "iteration-shrink converges" `Quick
            (converges (Analysis.Iteration_shrink { factor = 0.7; floor = 4 }));
          Alcotest.test_case "estimated-time converges" `Quick
            (converges (Analysis.Estimated_time { max_steps = 2. })) ] ) ]
