(* Unit and property tests for the value/row/schema/codec layer. *)

open Nbsc_value

let v = Alcotest.testable Value.pp Value.equal

let test_compare_order () =
  Alcotest.(check bool) "null smallest" true
    (Value.compare Value.Null (Value.Int min_int) < 0);
  Alcotest.(check bool) "int order" true
    (Value.compare (Value.Int 1) (Value.Int 2) < 0);
  Alcotest.(check bool) "text order" true
    (Value.compare (Value.Text "a") (Value.Text "b") < 0);
  Alcotest.(check bool) "cross type stable" true
    (Value.compare (Value.Bool true) (Value.Int 0) < 0)

let test_type_of () =
  Alcotest.(check bool) "null has no type" true (Value.type_of Value.Null = None);
  Alcotest.(check bool) "int" true (Value.type_of (Value.Int 3) = Some Value.TInt)

let test_codec_roundtrip () =
  let cases =
    [ Value.Null; Value.Int 0; Value.Int (-42); Value.Int max_int;
      Value.Float 3.14; Value.Float nan; Value.Float (-0.);
      Value.Float infinity; Value.Bool true; Value.Bool false;
      Value.Text ""; Value.Text "with:colons|pipes\\and\nnewlines";
      Value.Text (String.make 1000 'x') ]
  in
  List.iter
    (fun value ->
       let decoded = Value.decode (Value.encode value) in
       match value with
       | Value.Float f when Float.is_nan f ->
         (match decoded with
          | Value.Float g -> Alcotest.(check bool) "nan" true (Float.is_nan g)
          | _ -> Alcotest.fail "nan decoded to non-float")
       | _ -> Alcotest.check v "roundtrip" value decoded)
    cases

let test_codec_rejects_garbage () =
  List.iter
    (fun s ->
       Alcotest.check_raises ("decode " ^ s) (Failure "")
         (fun () ->
            try ignore (Value.decode s)
            with Failure _ -> raise (Failure "")))
    [ ""; "Q"; "I"; "Inot-an-int"; "T5:ab"; "T2:abc"; "Bx" ]

let test_row_ops () =
  let r = Row.make [ Value.Int 1; Value.Text "a"; Value.Null ] in
  Alcotest.(check int) "arity" 3 (Row.arity r);
  let r2 = Row.set r 1 (Value.Text "b") in
  Alcotest.check v "functional update" (Value.Text "a") (Row.get r 1);
  Alcotest.check v "updated copy" (Value.Text "b") (Row.get r2 1);
  let p = Row.project r [ 2; 0 ] in
  Alcotest.check v "project order" (Value.Int 1) (Row.get p 1);
  Alcotest.(check bool) "all_null" true (Row.is_all_null (Row.all_null 4));
  Alcotest.(check bool) "not all_null" false (Row.is_all_null r)

let test_row_codec () =
  let rows =
    [ Row.make [];
      Row.make [ Value.Null ];
      Row.make [ Value.Int 5; Value.Text "x:y|z"; Value.Bool false;
                 Value.Float 2.5; Value.Null ] ]
  in
  List.iter
    (fun row ->
       Alcotest.(check bool) "row roundtrip" true
         (Row.equal row (Codec.decode_row (Codec.encode_row row))))
    rows;
  let changes = [ (0, Value.Int 9); (3, Value.Text "t") ] in
  let decoded = Codec.decode_changes (Codec.encode_changes changes) in
  Alcotest.(check bool) "changes roundtrip" true (changes = decoded)

let test_schema_validation () =
  let c = Schema.column in
  Alcotest.check_raises "duplicate column" (Invalid_argument "")
    (fun () ->
       try
         ignore
           (Schema.make ~key:[ "a" ]
              [ c "a" Value.TInt; c "a" Value.TText ])
       with Invalid_argument _ -> raise (Invalid_argument ""));
  Alcotest.check_raises "unknown key" (Invalid_argument "")
    (fun () ->
       try ignore (Schema.make ~key:[ "zz" ] [ c "a" Value.TInt ])
       with Invalid_argument _ -> raise (Invalid_argument ""));
  Alcotest.check_raises "empty key" (Invalid_argument "")
    (fun () ->
       try ignore (Schema.make ~key:[] [ c "a" Value.TInt ])
       with Invalid_argument _ -> raise (Invalid_argument ""))

let test_schema_lookup () =
  let c = Schema.column in
  let s =
    Schema.make ~key:[ "b"; "a" ]
      ~candidate_keys:[ [ "c" ] ]
      [ c "a" Value.TInt; c "b" Value.TText; c "c" Value.TFloat ]
  in
  Alcotest.(check int) "position" 2 (Schema.position s "c");
  Alcotest.(check bool) "key order preserved" true
    (Schema.key_positions s = [ 1; 0 ]);
  Alcotest.(check int) "two candidate keys" 2
    (List.length (Schema.candidate_keys s));
  Alcotest.(check bool) "mem" true (Schema.mem s "a");
  Alcotest.(check bool) "not mem" false (Schema.mem s "zz")

(* Properties *)

let value_gen =
  QCheck.Gen.(
    oneof
      [ return Value.Null;
        map (fun i -> Value.Int i) int;
        map (fun f -> Value.Float f) float;
        map (fun b -> Value.Bool b) bool;
        map (fun s -> Value.Text s) string ])

let arb_value = QCheck.make ~print:Value.to_string value_gen

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"value codec roundtrips" ~count:500 arb_value
    (fun value ->
       match value with
       | Value.Float f when Float.is_nan f ->
         (match Value.decode (Value.encode value) with
          | Value.Float g -> Float.is_nan g
          | _ -> false)
       | _ -> Value.equal value (Value.decode (Value.encode value)))

let prop_compare_total =
  QCheck.Test.make ~name:"compare is antisymmetric" ~count:500
    (QCheck.pair arb_value arb_value)
    (fun (a, b) ->
       let c1 = Value.compare a b and c2 = Value.compare b a in
       (c1 = 0) = (c2 = 0) && (c1 < 0) = (c2 > 0))

let prop_hash_consistent =
  QCheck.Test.make ~name:"equal values hash equally" ~count:500 arb_value
    (fun a -> Value.hash a = Value.hash (Value.decode (Value.encode a))
              || Float.is_nan (match a with Value.Float f -> f | _ -> 0.))

let arb_row =
  QCheck.make
    ~print:(fun r -> Row.to_string r)
    QCheck.Gen.(map Row.make (list_size (int_bound 8) value_gen))

let prop_row_codec =
  QCheck.Test.make ~name:"row codec roundtrips" ~count:300 arb_row
    (fun row ->
       let row =
         Array.map
           (function Value.Float f when Float.is_nan f -> Value.Null | x -> x)
           row
       in
       Row.equal row (Codec.decode_row (Codec.encode_row row)))

let () =
  Alcotest.run "value"
    [ ( "value",
        [ Alcotest.test_case "compare order" `Quick test_compare_order;
          Alcotest.test_case "type_of" `Quick test_type_of;
          Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "codec rejects garbage" `Quick
            test_codec_rejects_garbage ] );
      ( "row",
        [ Alcotest.test_case "row ops" `Quick test_row_ops;
          Alcotest.test_case "row codec" `Quick test_row_codec ] );
      ( "schema",
        [ Alcotest.test_case "validation" `Quick test_schema_validation;
          Alcotest.test_case "lookup" `Quick test_schema_lookup ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_codec_roundtrip; prop_compare_total; prop_hash_consistent;
            prop_row_codec ] ) ]
