test/test_ordered_index.mli:
