test/test_hsplit_merge.mli:
