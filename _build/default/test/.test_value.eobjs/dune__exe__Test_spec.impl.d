test/test_spec.ml: Alcotest Catalog Helpers List Nbsc_core Nbsc_engine Nbsc_storage Nbsc_value Schema Spec Transform Value
