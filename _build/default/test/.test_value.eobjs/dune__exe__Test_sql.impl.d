test/test_sql.ml: Alcotest Ast Db Exec Lexer List Nbsc_engine Nbsc_sql Nbsc_value Parser Pred Row String Value
