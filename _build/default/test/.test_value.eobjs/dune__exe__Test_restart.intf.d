test/test_restart.mli:
