test/test_multigranularity.mli:
