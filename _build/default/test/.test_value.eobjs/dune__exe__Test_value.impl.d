test/test_value.ml: Alcotest Array Codec Float List Nbsc_value QCheck QCheck_alcotest Row Schema String Value
