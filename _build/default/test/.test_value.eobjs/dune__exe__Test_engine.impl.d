test/test_engine.ml: Alcotest Catalog Db Gen Helpers List Manager Nbsc_engine Nbsc_storage Nbsc_txn Nbsc_value Nbsc_wal Option QCheck QCheck_alcotest Random Record Recovery Row Table Value
