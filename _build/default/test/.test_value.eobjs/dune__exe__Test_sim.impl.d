test/test_sim.ml: Alcotest Analysis Experiment Format List Metrics Nbsc_core Nbsc_sim Sim Transform
