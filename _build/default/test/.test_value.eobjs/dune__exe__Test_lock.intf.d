test/test_lock.mli:
