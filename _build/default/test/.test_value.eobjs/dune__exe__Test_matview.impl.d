test/test_matview.ml: Alcotest Db Helpers List Manager Matview Nbsc_core Nbsc_engine Nbsc_lock Nbsc_relalg Nbsc_storage Nbsc_txn Nbsc_value Row Spec Value
