test/test_persist.mli:
