test/test_wal.ml: Alcotest Format List Log Log_record Lsn Nbsc_value Nbsc_wal Option Printf QCheck QCheck_alcotest Row Value
