test/test_restart.ml: Alcotest Catalog Db Fun Helpers List Manager Nbsc_core Nbsc_engine Nbsc_relalg Nbsc_storage Nbsc_txn Nbsc_value Nbsc_wal Printf Random Recovery Row Schema Spec Transform Value
