test/test_baseline.ml: Alcotest Catalog Db Helpers Insert_into_select Manager Nbsc_baseline Nbsc_engine Nbsc_relalg Nbsc_storage Nbsc_txn Nbsc_value Row Trigger_method Value
