test/test_lock.ml: Alcotest Compat Gen Hashtbl Latch List Lock_table Lock_table_many Nbsc_lock Nbsc_value Printf QCheck QCheck_alcotest Row Value
