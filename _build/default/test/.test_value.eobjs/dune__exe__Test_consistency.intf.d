test/test_consistency.mli:
