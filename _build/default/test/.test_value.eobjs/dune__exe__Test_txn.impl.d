test/test_txn.ml: Alcotest Catalog Gen Helpers List Log Log_record Lsn Manager Nbsc_lock Nbsc_storage Nbsc_txn Nbsc_value Nbsc_wal Option QCheck QCheck_alcotest Record Row Table Value
