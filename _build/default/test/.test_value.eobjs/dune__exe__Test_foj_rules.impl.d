test/test_foj_rules.ml: Alcotest Catalog Foj Hashtbl Helpers List Log_record Lsn Nbsc_core Nbsc_storage Nbsc_value Nbsc_wal Population QCheck QCheck_alcotest Row Spec String Table Value
