test/test_matview.mli:
