test/test_foj_mm.mli:
