test/test_ordered_index.ml: Alcotest Gen Helpers List Lsn Nbsc_engine Nbsc_sql Nbsc_storage Nbsc_value Nbsc_wal QCheck QCheck_alcotest Record Row Table Value
