test/test_transform.mli:
