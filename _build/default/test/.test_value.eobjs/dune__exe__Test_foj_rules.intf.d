test/test_foj_rules.mli:
