test/test_multigranularity.ml: Alcotest Compat Format List Multigranularity Nbsc_lock Table_locks
