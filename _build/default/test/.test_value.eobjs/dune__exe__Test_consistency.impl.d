test/test_consistency.ml: Alcotest Catalog Consistency Helpers List Log Log_record Lsn Nbsc_core Nbsc_storage Nbsc_value Nbsc_wal Option Population Record Row Spec Split String Table Value
