test/test_split_rules.mli:
