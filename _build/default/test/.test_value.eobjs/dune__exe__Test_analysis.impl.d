test/test_analysis.ml: Alcotest Analysis Helpers Nbsc_core Nbsc_engine Nbsc_relalg
