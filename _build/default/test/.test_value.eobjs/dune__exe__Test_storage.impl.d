test/test_storage.ml: Alcotest Catalog Gen List Lsn Nbsc_storage Nbsc_value Nbsc_wal Option QCheck QCheck_alcotest Record Row Schema Table Value
