test/test_relalg.ml: Alcotest Gen Hashtbl Helpers List Nbsc_relalg Nbsc_value QCheck QCheck_alcotest Relalg Row Schema Value
