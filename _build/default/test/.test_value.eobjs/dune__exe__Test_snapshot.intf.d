test/test_snapshot.mli:
