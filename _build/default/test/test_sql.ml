(* Tests for the SQL front end: lexer, parser, executor, and the
   TRANSFORM statement family. *)

open Nbsc_value
open Nbsc_engine
open Nbsc_sql

let parse_ok input =
  match Parser.parse input with
  | Ok s -> s
  | Error m -> Alcotest.failf "parse %S: %s" input m

let parse_err input =
  match Parser.parse input with
  | Ok _ -> Alcotest.failf "parse %S should fail" input
  | Error _ -> ()

(* {1 Lexer} *)

let test_lexer_basics () =
  (match Lexer.tokenize "SELECT * FROM t WHERE a >= 10;" with
   | Ok toks -> Alcotest.(check int) "token count" 10 (List.length toks)
   | Error m -> Alcotest.fail m);
  (match Lexer.tokenize "'it''s'" with
   | Ok [ Lexer.String s; Lexer.Eof ] ->
     Alcotest.(check string) "quote escape" "it's" s
   | _ -> Alcotest.fail "string escape");
  (match Lexer.tokenize "x -- comment\ny" with
   | Ok [ Lexer.Ident "x"; Lexer.Ident "y"; Lexer.Eof ] -> ()
   | _ -> Alcotest.fail "comment skipped");
  (match Lexer.tokenize "-5 3.25" with
   | Ok [ Lexer.Int (-5); Lexer.Float 3.25; Lexer.Eof ] -> ()
   | _ -> Alcotest.fail "numbers");
  (match Lexer.tokenize "'unterminated" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unterminated string must fail")

(* {1 Parser} *)

let test_parse_create () =
  match parse_ok
          "CREATE TABLE t (a INT NOT NULL, b TEXT, c VARCHAR(10), PRIMARY KEY (a, b))"
  with
  | Ast.Create_table { name = "t"; columns; primary_key = [ "a"; "b" ] } ->
    Alcotest.(check int) "columns" 3 (List.length columns);
    let a = List.nth columns 0 in
    Alcotest.(check bool) "a not null" true a.Ast.cd_not_null;
    Alcotest.(check bool) "c is text" true
      ((List.nth columns 2).Ast.cd_type = Value.TText)
  | _ -> Alcotest.fail "wrong ast"

let test_parse_dml () =
  (match parse_ok "INSERT INTO t VALUES (1, 'x', NULL), (2, 'y', TRUE)" with
   | Ast.Insert { table = "t"; rows = [ r1; _ ] } ->
     Alcotest.(check bool) "null literal" true (List.nth r1 2 = Value.Null)
   | _ -> Alcotest.fail "insert ast");
  (match parse_ok "UPDATE t SET b = 'z', c = 3 WHERE a = 1 AND b <> 'q'" with
   | Ast.Update { assignments = [ _; _ ]; where = Pred.And _; _ } -> ()
   | _ -> Alcotest.fail "update ast");
  (match parse_ok "DELETE FROM t" with
   | Ast.Delete { where = Pred.True; _ } -> ()
   | _ -> Alcotest.fail "delete ast");
  (match parse_ok "SELECT a, b FROM t WHERE c IS NOT NULL OR a < 5" with
   | Ast.Select { projection = Some [ "a"; "b" ]; where = Pred.Or _; _ } -> ()
   | _ -> Alcotest.fail "select ast")

let test_parse_transforms () =
  (match parse_ok
           "TRANSFORM JOIN r, s INTO t ON r.c = s.c CARRY r (a, b) CARRY s (d) \
            MANY TO MANY"
   with
   | Ast.Transform_join { many_to_many = true; join_r = "c"; _ } -> ()
   | _ -> Alcotest.fail "join ast");
  (* Reversed ON order resolves the same way. *)
  (match parse_ok
           "TRANSFORM JOIN r, s INTO t ON s.c = r.cc CARRY r (a) CARRY s (d)"
   with
   | Ast.Transform_join { join_r = "cc"; join_s = "c"; _ } -> ()
   | _ -> Alcotest.fail "reversed join ast");
  (match parse_ok
           "TRANSFORM SPLIT t INTO r (a, b, c) AND s (c, d) ON (c) CHECKED"
   with
   | Ast.Transform_split { checked = true; split_on = [ "c" ]; _ } -> ()
   | _ -> Alcotest.fail "split ast");
  (match parse_ok "TRANSFORM ARCHIVE t INTO old AND live WHERE age > 30" with
   | Ast.Transform_archive { where = Pred.Cmp ("age", Pred.Gt, Value.Int 30); _ }
     -> ()
   | _ -> Alcotest.fail "archive ast");
  (match parse_ok "TRANSFORM MERGE a, b, c INTO all_of_them" with
   | Ast.Transform_merge { sources = [ "a"; "b"; "c" ]; _ } -> ()
   | _ -> Alcotest.fail "merge ast")

let test_parse_errors () =
  parse_err "CREATE TABLE t (a INT)";  (* no primary key *)
  parse_err "SELECT FROM t";
  parse_err "INSERT INTO t VALUES 1, 2";
  parse_err "TRANSFORM FROBNICATE t";
  parse_err "UPDATE t SET a";
  parse_err "SELECT * FROM t WHERE a =";
  parse_err "SELECT * FROM t extra garbage";
  parse_err "TRANSFORM JOIN r, s INTO t ON x.c = s.c CARRY r (a) CARRY s (d)"

let test_parse_many () =
  match Parser.parse_many "BEGIN; COMMIT; SHOW TABLES;" with
  | Ok [ Ast.Begin_txn; Ast.Commit_txn; Ast.Show_tables ] -> ()
  | Ok _ -> Alcotest.fail "wrong statements"
  | Error m -> Alcotest.fail m

(* {1 Executor} *)

let session () = Exec.create (Db.create ())

let run s input =
  match Exec.exec_string s input with
  | Ok outs -> outs
  | Error m -> Alcotest.failf "exec %S: %s" input m

let run_err s input =
  match Exec.exec_string s input with
  | Ok _ -> Alcotest.failf "exec %S should fail" input
  | Error m -> m

let rows_of = function
  | Exec.Rows { rows; _ } -> rows
  | Exec.Message m -> Alcotest.failf "expected rows, got message %S" m

let seeded () =
  let s = session () in
  ignore
    (run s
       "CREATE TABLE t (a INT NOT NULL, b TEXT, c INT, PRIMARY KEY (a)); \
        INSERT INTO t VALUES (1, 'x', 10), (2, 'y', 20), (3, 'z', 10);");
  s

let test_exec_crud () =
  let s = seeded () in
  (match run s "SELECT * FROM t WHERE c = 10" with
   | [ out ] -> Alcotest.(check int) "two rows" 2 (List.length (rows_of out))
   | _ -> Alcotest.fail "one result");
  ignore (run s "UPDATE t SET b = 'w' WHERE a >= 2");
  (match run s "SELECT a FROM t WHERE b = 'w'" with
   | [ out ] -> Alcotest.(check int) "updated" 2 (List.length (rows_of out))
   | _ -> Alcotest.fail "one result");
  ignore (run s "DELETE FROM t WHERE c = 10");
  (match run s "SELECT * FROM t" with
   | [ out ] -> Alcotest.(check int) "remaining" 1 (List.length (rows_of out))
   | _ -> Alcotest.fail "one result");
  ignore (run_err s "SELECT nope FROM t");
  ignore (run_err s "SELECT * FROM missing");
  ignore (run_err s "INSERT INTO t VALUES (2, 'dup', 20); INSERT INTO t VALUES (2, 'dup', 20)")

let test_exec_txn_control () =
  let s = seeded () in
  ignore (run s "BEGIN; UPDATE t SET b = 'tmp' WHERE a = 1; ROLLBACK;");
  (match run s "SELECT b FROM t WHERE a = 1" with
   | [ out ] ->
     Alcotest.(check bool) "rolled back" true
       (Row.equal (List.hd (rows_of out)) (Row.make [ Value.Text "x" ]))
   | _ -> Alcotest.fail "one result");
  ignore (run s "BEGIN; UPDATE t SET b = 'kept' WHERE a = 1; COMMIT;");
  (match run s "SELECT b FROM t WHERE a = 1" with
   | [ out ] ->
     Alcotest.(check bool) "committed" true
       (Row.equal (List.hd (rows_of out)) (Row.make [ Value.Text "kept" ]))
   | _ -> Alcotest.fail "one result");
  ignore (run_err s "COMMIT");
  ignore (run s "BEGIN");
  ignore (run_err s "BEGIN")

let test_exec_join_transform () =
  let s = session () in
  ignore
    (run s
       "CREATE TABLE r (a INT NOT NULL, b TEXT, c INT, PRIMARY KEY (a)); \
        CREATE TABLE s (c INT NOT NULL, d TEXT, PRIMARY KEY (c)); \
        INSERT INTO r VALUES (1, 'John', 1), (2, 'Karen', 1), (3, 'Mary', 3); \
        INSERT INTO s VALUES (1, 'as'), (3, 'Oslo');");
  ignore
    (run s
       "TRANSFORM JOIN r, s INTO t ON r.c = s.c CARRY r (a, b) CARRY s (d);");
  (* Interleave: one step, then a write, then run to completion. *)
  ignore (run s "TRANSFORM STEP 1");
  ignore (run s "UPDATE r SET b = 'Johnny' WHERE a = 1");
  ignore (run s "TRANSFORM RUN");
  (match run s "SELECT * FROM t WHERE b = 'Johnny'" with
   | [ out ] -> Alcotest.(check int) "propagated" 1 (List.length (rows_of out))
   | _ -> Alcotest.fail "one result");
  (* Sources dropped after the switch. *)
  ignore (run_err s "SELECT * FROM r");
  (match run s "SELECT * FROM t" with
   | [ out ] -> Alcotest.(check int) "t rows" 3 (List.length (rows_of out))
   | _ -> Alcotest.fail "one result")

let test_exec_split_and_guard () =
  let s = seeded () in
  ignore
    (run s "TRANSFORM SPLIT t INTO r (a, b, c) AND g (c) ON (c)");
  (* Only one transformation at a time. *)
  let m = run_err s "TRANSFORM MERGE t, t2 INTO z" in
  Alcotest.(check bool) "guard message" true
    (String.length m > 0);
  ignore (run s "TRANSFORM RUN");
  (match run s "SELECT * FROM g" with
   | [ out ] -> Alcotest.(check int) "distinct groups" 2 (List.length (rows_of out))
   | _ -> Alcotest.fail "one result")

let test_exec_archive () =
  let s = seeded () in
  ignore
    (run s "TRANSFORM ARCHIVE t INTO old AND fresh WHERE c >= 20; TRANSFORM RUN;");
  (match run s "SELECT * FROM old" with
   | [ out ] -> Alcotest.(check int) "archived" 1 (List.length (rows_of out))
   | _ -> Alcotest.fail "one result");
  (match run s "SELECT * FROM fresh" with
   | [ out ] -> Alcotest.(check int) "fresh" 2 (List.length (rows_of out))
   | _ -> Alcotest.fail "one result")

let test_exec_abort_transform () =
  let s = seeded () in
  ignore (run s "TRANSFORM ARCHIVE t INTO old AND fresh WHERE c >= 20");
  ignore (run s "TRANSFORM STEP 1");
  ignore (run s "TRANSFORM ABORT");
  ignore (run_err s "SELECT * FROM old");
  (* A new transformation can start afterwards. *)
  ignore (run s "TRANSFORM ARCHIVE t INTO old AND fresh WHERE c >= 20");
  ignore (run s "TRANSFORM RUN")

let test_key_probe_path () =
  (* Semantics must be identical whether the planner probes or scans;
     exercise equality-on-key, extra conjuncts, and a false conjunct. *)
  let s = seeded () in
  let one_row input expected =
    match run s input with
    | [ out ] -> Alcotest.(check int) input expected (List.length (rows_of out))
    | _ -> Alcotest.fail "one result"
  in
  one_row "SELECT * FROM t WHERE a = 2" 1;
  one_row "SELECT * FROM t WHERE a = 2 AND c = 20" 1;
  one_row "SELECT * FROM t WHERE a = 2 AND c = 999" 0;
  one_row "SELECT * FROM t WHERE a = 42" 0;
  (* Probe also drives UPDATE/DELETE. *)
  (match run s "UPDATE t SET b = 'probe' WHERE a = 1" with
   | [ Exec.Message m ] -> Alcotest.(check string) "one update" "1 row(s) updated" m
   | _ -> Alcotest.fail "message");
  (match run s "DELETE FROM t WHERE a = 3 AND b = 'nope'" with
   | [ Exec.Message m ] -> Alcotest.(check string) "no delete" "0 row(s) deleted" m
   | _ -> Alcotest.fail "message")

let test_render () =
  let s = seeded () in
  (match run s "SELECT a, b FROM t WHERE a = 1" with
   | [ out ] ->
     let text = Exec.render out in
     Alcotest.(check bool) "has header" true
       (String.length text > 0
        && String.sub text 0 1 = "a");
     Alcotest.(check bool) "row count line" true
       (String.length text >= 7
        && String.sub text (String.length text - 7) 7 = "(1 row)")
   | _ -> Alcotest.fail "one result")

let () =
  Alcotest.run "sql"
    [ ("lexer", [ Alcotest.test_case "basics" `Quick test_lexer_basics ]);
      ( "parser",
        [ Alcotest.test_case "create" `Quick test_parse_create;
          Alcotest.test_case "dml" `Quick test_parse_dml;
          Alcotest.test_case "transforms" `Quick test_parse_transforms;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "scripts" `Quick test_parse_many ] );
      ( "exec",
        [ Alcotest.test_case "crud" `Quick test_exec_crud;
          Alcotest.test_case "transactions" `Quick test_exec_txn_control;
          Alcotest.test_case "join transform" `Quick test_exec_join_transform;
          Alcotest.test_case "split + guard" `Quick test_exec_split_and_guard;
          Alcotest.test_case "archive" `Quick test_exec_archive;
          Alcotest.test_case "abort transform" `Quick test_exec_abort_transform;
          Alcotest.test_case "key probe path" `Quick test_key_probe_path;
          Alcotest.test_case "render" `Quick test_render ] ) ]
