(* nbsc-repl — an interactive SQL-ish shell over the engine.

     dune exec bin/nbsc_repl.exe
     dune exec bin/nbsc_repl.exe -- --data /path/to/dir   # durable

   With --data the database lives in a directory (snapshot + journaled
   WAL): kill the shell mid-transaction and reopen — committed work is
   replayed, in-flight transactions are rolled back. CHECKPOINT;
   rewrites the snapshot and truncates the WAL (run it after CREATE
   TABLE: DDL is persisted by snapshots, not the WAL).

   Statements end with ';'. Try:

     CREATE TABLE r (a INT NOT NULL, b TEXT, c INT, PRIMARY KEY (a));
     CREATE TABLE s (c INT NOT NULL, d TEXT, PRIMARY KEY (c));
     INSERT INTO r VALUES (1, 'John', 1), (2, 'Karen', 1), (3, 'Mary', 3);
     INSERT INTO s VALUES (1, 'as'), (3, 'Oslo');
     TRANSFORM JOIN r, s INTO t ON r.c = s.c CARRY r (a, b) CARRY s (d);
     TRANSFORM RUN;
     SELECT * FROM t;

   The prompt stays responsive while a transformation runs: use
   TRANSFORM STEP between your own statements to interleave, exactly
   like an application would. *)

let () =
  let data_dir =
    match Array.to_list Sys.argv with
    | _ :: "--data" :: dir :: _ -> Some dir
    | _ -> None
  in
  let persist =
    match data_dir with
    | None -> None
    | Some dir ->
      let p =
        if Sys.file_exists (Filename.concat dir "snapshot.nbsc") then
          Nbsc_engine.Persist.open_dir ~dir
        else Nbsc_engine.Persist.create_dir ~dir
      in
      (match p with
       | Ok p ->
         (match Nbsc_engine.Persist.last_recovery p with
          | Some report ->
            Format.printf "recovered: %a@." Nbsc_engine.Recovery.pp_report
              report
          | None -> ());
         Some p
       | Error e ->
         Format.printf "cannot open %s: %a@." dir Nbsc_engine.Persist.pp_error e;
         exit 1)
  in
  let db =
    match persist with
    | Some p -> Nbsc_engine.Persist.db p
    | None -> Nbsc_engine.Db.create ()
  in
  let session = Nbsc_sql.Exec.create db in
  let buffer = Buffer.create 256 in
  print_endline "nbsc-repl — online, non-blocking schema changes.";
  print_endline
    (match data_dir with
     | Some dir -> Printf.sprintf "Durable database in %s.  Statements end with ';'.  Ctrl-D quits." dir
     | None -> "In-memory database.  Statements end with ';'.  Ctrl-D quits.");
  let prompt () =
    print_string (if Buffer.length buffer = 0 then "nbsc> " else "  ... ");
    flush stdout
  in
  let run_buffered () =
    let input = Buffer.contents buffer in
    Buffer.clear buffer;
    if String.trim input <> "" then
      if String.uppercase_ascii (String.trim input) = "CHECKPOINT;" then
        match persist with
        | None -> print_endline "error: CHECKPOINT needs --data"
        | Some p ->
          (match Nbsc_engine.Persist.checkpoint p with
           | Ok () -> print_endline "checkpointed; WAL truncated"
           | Error e ->
             Format.printf "error: %a@." Nbsc_engine.Persist.pp_error e)
      else
        match Nbsc_sql.Exec.exec_string session input with
        | Ok outs ->
          List.iter (fun o -> print_endline (Nbsc_sql.Exec.render o)) outs
        | Error m -> Printf.printf "error: %s\n" m
  in
  try
    prompt ();
    while true do
      let line = input_line stdin in
      Buffer.add_string buffer line;
      Buffer.add_char buffer '\n';
      if String.contains line ';' then run_buffered ();
      prompt ()
    done
  with End_of_file ->
    run_buffered ();
    (match persist with Some p -> Nbsc_engine.Persist.close p | None -> ());
    print_newline ()
