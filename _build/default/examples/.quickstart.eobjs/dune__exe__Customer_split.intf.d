examples/customer_split.mli:
