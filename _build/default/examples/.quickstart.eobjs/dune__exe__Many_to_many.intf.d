examples/many_to_many.mli:
