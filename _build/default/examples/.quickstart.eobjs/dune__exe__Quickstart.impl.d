examples/quickstart.ml: Db Format List Nbsc_core Nbsc_engine Nbsc_relalg Nbsc_txn Nbsc_value Printf Row Schema Spec Transform Value
