examples/orders_archive.mli:
