examples/orders_archive.ml: Db Format Hsplit List Matview Nbsc_core Nbsc_engine Nbsc_relalg Nbsc_txn Nbsc_value Option Pred Printf Random Row Schema Spec Transform Value
