examples/quickstart.mli:
