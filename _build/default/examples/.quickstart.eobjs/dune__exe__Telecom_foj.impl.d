examples/telecom_foj.ml: Db Format List Nbsc_core Nbsc_engine Nbsc_storage Nbsc_txn Nbsc_value Printf Random Row Schema Spec Transform Value
