examples/many_to_many.ml: Db Format List Nbsc_core Nbsc_engine Nbsc_relalg Nbsc_txn Nbsc_value Printf Random Row Schema Spec Transform Value
