examples/customer_split.ml: Array Consistency Db Format List Nbsc_core Nbsc_engine Nbsc_relalg Nbsc_storage Nbsc_txn Nbsc_value Option Printf Row Schema Spec Transform Value
