examples/telecom_foj.mli:
