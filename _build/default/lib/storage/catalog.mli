(** The table catalog.

    Name -> table mapping with create/drop/rename. The final step of a
    transformation drops the source tables and (for the rename-based
    split variant of Sec. 5.2) renames tables; new transactions resolve
    names through the catalog, which is how the switch-over to the
    transformed tables happens. *)

open Nbsc_value

type t

val create : unit -> t

val create_table :
  t -> ?indexes:(string * string list) list -> name:string -> Schema.t ->
  Table.t
(** @raise Invalid_argument if the name is taken. *)

val add : t -> Table.t -> unit
(** Register an externally created table.
    @raise Invalid_argument if the name is taken. *)

val find : t -> string -> Table.t
(** @raise Not_found *)

val find_opt : t -> string -> Table.t option
val mem : t -> string -> bool

val drop : t -> string -> unit
(** @raise Not_found *)

val rename : t -> old_name:string -> new_name:string -> unit
(** The table keeps answering to its internal name for log purposes;
    only the catalog binding moves.
    @raise Not_found / Invalid_argument on missing source / taken
    target. *)

val names : t -> string list
val tables : t -> Table.t list
