open Nbsc_value

type t = {
  name : string;
  positions : int list;
  map : unit Row.Key.Tbl.t Row.Key.Tbl.t;  (* projection -> key set *)
}

let create ~name ~positions = { name; positions; map = Row.Key.Tbl.create 256 }

let name t = t.name
let positions t = t.positions

let insert t ~key row =
  let proj = Row.project row t.positions in
  let set =
    match Row.Key.Tbl.find_opt t.map proj with
    | Some s -> s
    | None ->
      let s = Row.Key.Tbl.create 4 in
      Row.Key.Tbl.add t.map proj s;
      s
  in
  Row.Key.Tbl.replace set key ()

let remove t ~key row =
  let proj = Row.project row t.positions in
  match Row.Key.Tbl.find_opt t.map proj with
  | None -> ()
  | Some set ->
    Row.Key.Tbl.remove set key;
    if Row.Key.Tbl.length set = 0 then Row.Key.Tbl.remove t.map proj

let lookup t proj =
  match Row.Key.Tbl.find_opt t.map proj with
  | None -> []
  | Some set -> Row.Key.Tbl.fold (fun k () acc -> k :: acc) set []

let cardinality t = Row.Key.Tbl.length t.map
