lib/storage/ordered_index.ml: List Nbsc_value Option Row Seq
