lib/storage/catalog.mli: Nbsc_value Schema Table
