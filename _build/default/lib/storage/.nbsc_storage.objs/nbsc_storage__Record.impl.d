lib/storage/record.ml: Format Lsn Nbsc_value Nbsc_wal Row
