lib/storage/index.mli: Nbsc_value Row
