lib/storage/table.mli: Lsn Nbsc_value Nbsc_wal Record Row Schema Value
