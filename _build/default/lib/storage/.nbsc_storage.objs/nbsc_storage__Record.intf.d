lib/storage/record.mli: Format Lsn Nbsc_value Nbsc_wal Row
