lib/storage/index.ml: Nbsc_value Row
