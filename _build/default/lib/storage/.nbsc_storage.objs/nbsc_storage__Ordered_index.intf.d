lib/storage/ordered_index.mli: Nbsc_value Row
