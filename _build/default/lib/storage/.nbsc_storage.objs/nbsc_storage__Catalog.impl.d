lib/storage/catalog.ml: Hashtbl Printf Table
