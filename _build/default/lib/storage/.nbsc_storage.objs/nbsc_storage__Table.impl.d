lib/storage/table.ml: Array Index List Lsn Nbsc_value Nbsc_wal Ordered_index Printf Record Row Schema String
