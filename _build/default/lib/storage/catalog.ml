type t = (string, Table.t) Hashtbl.t

let create () : t = Hashtbl.create 16

let add t table =
  let name = Table.name table in
  if Hashtbl.mem t name then
    invalid_arg (Printf.sprintf "Catalog.add: table %S exists" name);
  Hashtbl.replace t name table

let create_table t ?indexes ~name schema =
  if Hashtbl.mem t name then
    invalid_arg (Printf.sprintf "Catalog.create_table: table %S exists" name);
  let table = Table.create ?indexes ~name schema in
  Hashtbl.replace t name table;
  table

let find t name =
  match Hashtbl.find_opt t name with
  | Some table -> table
  | None -> raise Not_found

let find_opt = Hashtbl.find_opt
let mem = Hashtbl.mem

let drop t name =
  if not (Hashtbl.mem t name) then raise Not_found;
  Hashtbl.remove t name

let rename t ~old_name ~new_name =
  let table = find t old_name in
  if Hashtbl.mem t new_name then
    invalid_arg (Printf.sprintf "Catalog.rename: table %S exists" new_name);
  Hashtbl.remove t old_name;
  Hashtbl.replace t new_name table

let names t = Hashtbl.fold (fun name _ acc -> name :: acc) t []
let tables t = Hashtbl.fold (fun _ table acc -> table :: acc) t []
