lib/txn/manager.ml: Apply Catalog Compat Format Hashtbl Int Latch List Lock_table Lock_table_many Log Log_record Lsn Nbsc_lock Nbsc_storage Nbsc_value Nbsc_wal Record Row Schema String Table
