lib/txn/apply.mli: Catalog Format Log_record Lsn Nbsc_storage Nbsc_wal Table
