lib/txn/apply.ml: Catalog Format Log_record Nbsc_storage Nbsc_wal Table
