lib/txn/manager.mli: Catalog Compat Format Latch Lock_table Lock_table_many Log Log_record Lsn Nbsc_lock Nbsc_storage Nbsc_value Nbsc_wal Row Value
