(** Applying logged operations to storage.

    Shared by normal forward execution, transaction rollback, crash
    recovery redo, and (indirectly) the log propagator. Application is
    unconditional — idempotence decisions (LSN comparisons) belong to
    the callers that need them. *)

open Nbsc_wal
open Nbsc_storage

type error = [ `No_table of string | `Duplicate_key | `Not_found ]

val op : Catalog.t -> lsn:Lsn.t -> Log_record.op -> (unit, error) result

val op_to_table : Table.t -> lsn:Lsn.t -> Log_record.op ->
  (unit, [ `Duplicate_key | `Not_found ]) result
(** Same, with the table already resolved (the table name inside the op
    is ignored) — recovery replays renamed tables this way. *)

val pp_error : Format.formatter -> error -> unit
