lib/baseline/insert_into_select.ml: Catalog Db Foj Latch List Manager Nbsc_core Nbsc_engine Nbsc_lock Nbsc_storage Nbsc_txn Population Spec Split Table
