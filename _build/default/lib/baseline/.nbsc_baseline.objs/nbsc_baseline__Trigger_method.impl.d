lib/baseline/trigger_method.ml: Catalog Db Foj Manager Nbsc_core Nbsc_engine Nbsc_storage Nbsc_txn Population Spec Split Table
