lib/baseline/trigger_method.mli: Db Nbsc_core Nbsc_engine Spec
