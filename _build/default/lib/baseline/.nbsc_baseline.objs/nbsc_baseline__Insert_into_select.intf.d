lib/baseline/insert_into_select.mli: Db Nbsc_core Nbsc_engine Spec
