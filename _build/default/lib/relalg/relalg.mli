(** Pure relational operators on materialized row sets.

    These implement the {e semantics} the transformation framework must
    converge to: after synchronization, the transformed table of a FOJ
    transformation must equal [full_outer_join] of the final source
    tables, and the two tables of a split transformation must equal
    [split] of the final source (paper, Sections 4 and 5). The engine
    never uses these on large data except for the initial population;
    tests use them as the oracle. *)

open Nbsc_value

(** A materialized relation: a schema and its rows (bag semantics; the
    operators below produce sets keyed by the result key). *)
type t = {
  schema : Schema.t;
  rows : Row.t list;
}

val make : Schema.t -> Row.t list -> t

val project : t -> string list -> key:string list -> t
(** [project r cols ~key] keeps [cols] (in order) and re-keys the
    result. Duplicate result rows are collapsed to one (set semantics,
    as needed by the split operator's S-side). *)

val select : t -> (Row.t -> bool) -> t

(** Specification of a full outer join of two relations [r] and [s] on
    equality of [r_join] and [s_join] columns ("USING" semantics: the
    join attributes appear once in the result, named [out_join], taking
    the value of whichever side is present). The rest of the result is
    [r_cols] then [s_cols]; unmatched rows are padded with NULLs on the
    missing side (the paper's rnull / snull records). This layout is
    exactly the transformed table's, so tests can compare directly. *)
type foj_spec = {
  r_join : string list;
  s_join : string list;
  out_join : string list; (** result names of the join attributes *)
  r_cols : string list;   (** non-join columns of R kept in the result *)
  s_cols : string list;   (** non-join columns of S kept in the result *)
  out_key : string list;  (** key of the result schema *)
}

val full_outer_join : foj_spec -> t -> t -> t
(** [full_outer_join spec r s]. Result columns are
    [out_join @ r_cols @ s_cols]; the names must be distinct.

    @raise Invalid_argument if the spec references unknown columns or
    the output names collide. *)

(** Specification of a vertical split of [t] into [r] (one row per
    t-row) and [s] (one row per distinct split-key value). The split
    columns appear in both outputs, matching the paper's requirement
    that the transformed tables carry a candidate key of each source. *)
type split_spec = {
  r_cols' : string list;  (** columns kept in R, must include T's key *)
  s_cols' : string list;  (** columns kept in S, must include the split key *)
  r_key : string list;    (** key of R *)
  s_key : string list;    (** the split attribute(s); key of S *)
}

val split : split_spec -> t -> t * t
(** [split spec t] = (R, S). S has set semantics over [s_cols']. If two
    T rows agree on the split key but disagree on other S columns, the
    data is {e inconsistent} in the sense of the paper's Example 1; this
    function keeps the row whose whole S-projection is largest in row
    order, making the oracle deterministic. Use {!split_consistent} to
    detect such conflicts. *)

val split_consistent : split_spec -> t -> bool
(** Whether the functional dependency (split key -> other S columns)
    holds in [t], i.e. whether the split is information-preserving. *)

val split_multiplicity : split_spec -> t -> (Row.Key.t * int) list
(** For each split-key value, how many T rows carry it — the reference
    counter values the split transformation must maintain on S records
    (paper, Sec. 5; after Gupta et al.). Sorted by key. *)

val equal_as_sets : t -> t -> bool
(** Row-set equality modulo ordering (schemas must agree on arity;
    column names are not compared). *)

val diff_as_sets : t -> t -> Row.t list * Row.t list
(** [(only_in_a, only_in_b)] — for test failure messages. *)

val pp : Format.formatter -> t -> unit
(** Render as an aligned ASCII table (used to regenerate the paper's
    Figures 1 and 3). *)
