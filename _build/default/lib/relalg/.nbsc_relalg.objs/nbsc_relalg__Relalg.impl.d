lib/relalg/relalg.ml: Array Format Hashtbl List Nbsc_value Printf Row Schema String Value
