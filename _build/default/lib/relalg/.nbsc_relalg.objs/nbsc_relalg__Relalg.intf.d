lib/relalg/relalg.mli: Format Nbsc_value Row Schema
