open Nbsc_value

type t = {
  schema : Schema.t;
  rows : Row.t list;
}

let make schema rows = { schema; rows }

let dedup_by_key key_positions rows =
  let seen = Row.Key.Tbl.create 64 in
  List.filter
    (fun row ->
       let k = Row.Key.of_row row key_positions in
       if Row.Key.Tbl.mem seen k then false
       else begin
         Row.Key.Tbl.add seen k ();
         true
       end)
    rows

let subschema src names ~key =
  let cols =
    List.map
      (fun n ->
         let i = Schema.position src n in
         List.nth (Schema.columns src) i)
      names
  in
  Schema.make ~key cols

let project r names ~key =
  let positions = Schema.positions r.schema names in
  let schema = subschema r.schema names ~key in
  let rows = List.map (fun row -> Row.project row positions) r.rows in
  let rows = dedup_by_key (Schema.key_positions schema) rows in
  { schema; rows }

let select r pred = { r with rows = List.filter pred r.rows }

type foj_spec = {
  r_join : string list;
  s_join : string list;
  out_join : string list;
  r_cols : string list;
  s_cols : string list;
  out_key : string list;
}

let check_distinct_out names =
  let sorted = List.sort String.compare names in
  let rec go = function
    | a :: (b :: _ as rest) ->
      if String.equal a b then
        invalid_arg
          (Printf.sprintf "Relalg.full_outer_join: duplicate column %S" a);
      go rest
    | _ -> ()
  in
  go sorted

let nullable_columns src names =
  List.map
    (fun n ->
       let i = Schema.position src n in
       let c = List.nth (Schema.columns src) i in
       { c with Schema.nullable = true })
    names

let full_outer_join spec r s =
  check_distinct_out (spec.out_join @ spec.r_cols @ spec.s_cols);
  let r_join = Schema.positions r.schema spec.r_join in
  let s_join = Schema.positions s.schema spec.s_join in
  if List.length r_join <> List.length s_join then
    invalid_arg "Relalg.full_outer_join: join column count mismatch";
  if List.length spec.out_join <> List.length r_join then
    invalid_arg "Relalg.full_outer_join: out_join arity mismatch";
  let r_out = Schema.positions r.schema spec.r_cols in
  let s_out = Schema.positions s.schema spec.s_cols in
  let join_columns =
    List.map2
      (fun out_name rn ->
         let i = Schema.position r.schema rn in
         let c = List.nth (Schema.columns r.schema) i in
         { c with Schema.col_name = out_name })
      spec.out_join spec.r_join
  in
  let out_schema =
    Schema.make ~key:spec.out_key
      (join_columns
       @ nullable_columns r.schema spec.r_cols
       @ nullable_columns s.schema spec.s_cols)
  in
  (* Hash S rows by join key.  NULL join values never match (SQL
     semantics): such rows only appear padded with the opposite side's
     NULLs. *)
  let s_by_key = Row.Key.Tbl.create 64 in
  List.iter
    (fun srow ->
       let k = Row.Key.of_row srow s_join in
       if not (Row.Key.has_null k) then
         Row.Key.Tbl.replace s_by_key k
           (srow :: (try Row.Key.Tbl.find s_by_key k with Not_found -> [])))
    s.rows;
  let matched_s = Hashtbl.create 64 in
  let combine rrow srow =
    let join_vals =
      match rrow, srow with
      | Some row, _ -> Row.project row r_join
      | None, Some row -> Row.project row s_join
      | None, None -> Row.all_null (List.length r_join)
    in
    Array.concat
      [ join_vals;
        (match rrow with
         | Some row -> Row.project row r_out
         | None -> Row.all_null (List.length r_out));
        (match srow with
         | Some row -> Row.project row s_out
         | None -> Row.all_null (List.length s_out)) ]
  in
  let left =
    List.concat_map
      (fun rrow ->
         let k = Row.Key.of_row rrow r_join in
         let matches =
           if Row.Key.has_null k then []
           else try Row.Key.Tbl.find s_by_key k with Not_found -> []
         in
         match matches with
         | [] -> [ combine (Some rrow) None ]
         | ms ->
           List.map
             (fun srow ->
                Hashtbl.replace matched_s (Row.to_string srow) ();
                combine (Some rrow) (Some srow))
             ms)
      r.rows
  in
  let right =
    List.filter_map
      (fun srow ->
         if Hashtbl.mem matched_s (Row.to_string srow) then None
         else Some (combine None (Some srow)))
      s.rows
  in
  { schema = out_schema; rows = left @ right }

type split_spec = {
  r_cols' : string list;
  s_cols' : string list;
  r_key : string list;
  s_key : string list;
}

let split spec t =
  let r = project t spec.r_cols' ~key:spec.r_key in
  let s = project t spec.s_cols' ~key:spec.s_key in
  (* For inconsistent data keep, per split-key, the largest S projection
     in row order so the oracle is deterministic. *)
  let s_key_pos = Schema.key_positions s.schema in
  let best = Row.Key.Tbl.create 64 in
  List.iter
    (fun row ->
       let k = Row.Key.of_row row s_key_pos in
       match Row.Key.Tbl.find_opt best k with
       | Some prev when Row.compare prev row >= 0 -> ()
       | _ -> Row.Key.Tbl.replace best k row)
    s.rows;
  let s_rows =
    List.filter
      (fun row ->
         let k = Row.Key.of_row row s_key_pos in
         Row.equal (Row.Key.Tbl.find best k) row)
      s.rows
  in
  (r, { s with rows = dedup_by_key s_key_pos s_rows })

let split_consistent spec t =
  let s_pos = Schema.positions t.schema spec.s_cols' in
  let key_pos = Schema.positions t.schema spec.s_key in
  let seen = Row.Key.Tbl.create 64 in
  List.for_all
    (fun row ->
       let k = Row.Key.of_row row key_pos in
       let s_part = Row.project row s_pos in
       match Row.Key.Tbl.find_opt seen k with
       | None ->
         Row.Key.Tbl.add seen k s_part;
         true
       | Some prev -> Row.equal prev s_part)
    t.rows

let split_multiplicity spec t =
  let key_pos = Schema.positions t.schema spec.s_key in
  let counts = Row.Key.Tbl.create 64 in
  List.iter
    (fun row ->
       let k = Row.Key.of_row row key_pos in
       let c = try Row.Key.Tbl.find counts k with Not_found -> 0 in
       Row.Key.Tbl.replace counts k (c + 1))
    t.rows;
  Row.Key.Tbl.fold (fun k c acc -> (k, c) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> Row.Key.compare a b)

let sorted_rows r = List.sort Row.compare r.rows

let equal_as_sets a b =
  List.length a.rows = List.length b.rows
  && List.for_all2 Row.equal (sorted_rows a) (sorted_rows b)

let diff_as_sets a b =
  let only l1 l2 =
    List.filter (fun r -> not (List.exists (Row.equal r) l2)) l1
  in
  (only a.rows b.rows, only b.rows a.rows)

let pp ppf r =
  let headers =
    List.map (fun c -> c.Schema.col_name) (Schema.columns r.schema)
  in
  let cells = List.map (fun row ->
      List.map Value.to_string (Array.to_list row)) (sorted_rows r)
  in
  let widths =
    List.mapi
      (fun i h ->
         List.fold_left
           (fun w cs -> max w (String.length (List.nth cs i)))
           (String.length h) cells)
      headers
  in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let line cs =
    String.concat " | " (List.map2 pad cs widths)
  in
  Format.fprintf ppf "%s@." (line headers);
  Format.fprintf ppf "%s@."
    (String.concat "-+-" (List.map (fun w -> String.make w '-') widths));
  List.iter (fun cs -> Format.fprintf ppf "%s@." (line cs)) cells
