lib/sim/experiment.mli: Format Nbsc_core
