lib/sim/sim.mli: Metrics Nbsc_core Transform
