lib/sim/metrics.mli: Format
