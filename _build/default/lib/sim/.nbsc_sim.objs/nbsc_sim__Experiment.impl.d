lib/sim/experiment.ml: Analysis Format Hashtbl List Metrics Nbsc_core Printf Sim Transform
