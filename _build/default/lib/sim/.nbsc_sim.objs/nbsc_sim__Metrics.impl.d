lib/sim/metrics.ml: Array Format Int List
