lib/sim/sim.ml: Array Db Float Foj Format List Manager Metrics Nbsc_baseline Nbsc_core Nbsc_engine Nbsc_txn Nbsc_value Queue Random Row Schema Spec Split Sys Transform Value
