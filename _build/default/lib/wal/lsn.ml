type t = int

let zero = 0
let first = 1
let next t = t + 1
let compare = Int.compare
let equal = Int.equal
let ( < ) (a : t) b = a < b
let ( <= ) (a : t) b = a <= b
let ( > ) (a : t) b = a > b
let ( >= ) (a : t) b = a >= b
let max (a : t) b = Stdlib.max a b
let to_int t = t
let of_int t = t
let pp = Format.pp_print_int
let to_string = string_of_int
