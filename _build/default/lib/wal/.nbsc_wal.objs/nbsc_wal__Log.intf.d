lib/wal/log.mli: Format Log_record Lsn
