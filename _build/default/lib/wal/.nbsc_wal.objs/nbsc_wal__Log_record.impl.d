lib/wal/log_record.ml: Codec Format List Lsn Nbsc_value Row Schema Value
