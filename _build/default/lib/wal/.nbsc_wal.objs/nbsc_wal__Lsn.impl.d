lib/wal/lsn.ml: Format Int Stdlib
