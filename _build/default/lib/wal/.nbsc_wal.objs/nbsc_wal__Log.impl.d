lib/wal/log.ml: Array Format List Log_record Lsn
