lib/wal/log_record.mli: Format Lsn Nbsc_value Row Schema Value
