(** Log sequence numbers.

    Every log record and every stored record carries an LSN (paper,
    Sec. 1; Hvasshovd's fuzzy copy uses record LSNs as state
    identifiers). LSNs are totally ordered and dense enough for
    equality/ordering tests; [zero] precedes every real LSN. *)

type t

val zero : t
val first : t
val next : t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val max : t -> t -> t
val to_int : t -> int
val of_int : int -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
