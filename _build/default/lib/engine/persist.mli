(** Durability: a database directory with a snapshot file and a
    continuously-appended write-ahead-log file.

    Layout:
    {v
      <dir>/snapshot.nbsc   sharp snapshot (see Snapshot)
      <dir>/wal.nbsc        one encoded log record per line, appended
                            and flushed synchronously on every append
    v}

    {!open_dir} restores the snapshot, replays the WAL file (redo of
    completed work, rollback of transactions that were in flight at the
    crash), and re-attaches the WAL sink so new work keeps being
    journaled. {!checkpoint} rewrites the snapshot and truncates the
    WAL — the log-truncation step a real system runs periodically. *)

(** {b DDL durability caveat}: the WAL journals data operations only
    (the paper's log carries no DDL either); table definitions are
    persisted by snapshots. Run {!checkpoint} after creating or
    dropping tables, or records written to a table created since the
    last checkpoint cannot be replayed after a crash. *)

type t

type error =
  [ `Active_transactions of Nbsc_txn.Manager.txn_id list
  | `Corrupt of string
  | `Io of string ]

val create_dir : dir:string -> (t, error) result
(** Initialize an empty database directory (creates it if missing;
    refuses a directory that already holds a database). *)

val open_dir : dir:string -> (t, error) result
(** Open an existing directory, running crash recovery if the WAL holds
    unfinished transactions. *)

val db : t -> Db.t

val checkpoint : t -> (unit, error) result
(** Rewrite the snapshot at the current state and truncate the WAL.
    Requires no active transactions (sharp, like {!Snapshot.save}). *)

val close : t -> unit
(** Flush and close the WAL channel. The [t] must not be used after. *)

val last_recovery : t -> Recovery.report option
(** The report from recovery at [open_dir] time, if any replay ran. *)

val pp_error : Format.formatter -> error -> unit
