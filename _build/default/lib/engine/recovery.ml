open Nbsc_value
open Nbsc_wal
open Nbsc_storage
open Nbsc_txn

type table_def = {
  def_name : string;
  def_schema : Schema.t;
  def_indexes : (string * string list) list;
}

let table_def ?(indexes = []) def_name def_schema =
  { def_name; def_schema; def_indexes = indexes }

type report = {
  redo_applied : int;
  redo_skipped : int;
  losers : Log_record.txn_id list;
  undo_applied : int;
}

(* Analysis: who never completed, and what was each one's last record? *)
let analysis log =
  let last_lsn = Hashtbl.create 64 in
  let active = Hashtbl.create 64 in
  Log.iter log (fun r ->
      let txn = r.Log_record.txn in
      if txn <> Log_record.system_txn then begin
        Hashtbl.replace last_lsn txn r.Log_record.lsn;
        match r.Log_record.body with
        | Log_record.Begin -> Hashtbl.replace active txn ()
        | Log_record.Commit | Log_record.Abort_done -> Hashtbl.remove active txn
        | Log_record.Abort_begin | Log_record.Op _ | Log_record.Clr _
        | Log_record.Fuzzy_mark _ | Log_record.Cc_begin _ | Log_record.Cc_ok _
        | Log_record.Checkpoint _ -> ()
      end);
  let losers =
    Hashtbl.fold (fun txn () acc -> txn :: acc) active []
    |> List.sort Int.compare
  in
  (losers, fun txn -> try Hashtbl.find last_lsn txn with Not_found -> Lsn.zero)

let replay_into catalog log =
  let losers, last_lsn_of = analysis log in
  (* Redo: history repeats, including CLRs (repeating history, ARIES). *)
  let redo_applied = ref 0 and redo_skipped = ref 0 in
  let redo lsn op =
    match Catalog.find_opt catalog (Log_record.op_table op) with
    | None -> incr redo_skipped
    | Some table ->
      let key = Log_record.op_key (Table.schema table) op in
      let already_done =
        match Table.find table key with
        | Some record -> Lsn.(record.Record.lsn >= lsn)
        | None -> false
      in
      if already_done then incr redo_skipped
      else begin
        match Apply.op_to_table table ~lsn op with
        | Ok () -> incr redo_applied
        | Error (`Duplicate_key | `Not_found) ->
          (* Tolerated: overlapping history (a suffix replayed twice, or
             a delete already reflected in a snapshot) skips. *)
          incr redo_skipped
      end
  in
  Log.iter log (fun r ->
      match r.Log_record.body with
      | Log_record.Op op -> redo r.Log_record.lsn op
      | Log_record.Clr { op; _ } -> redo r.Log_record.lsn op
      | Log_record.Begin | Log_record.Commit | Log_record.Abort_begin
      | Log_record.Abort_done | Log_record.Fuzzy_mark _ | Log_record.Cc_begin _
      | Log_record.Cc_ok _ | Log_record.Checkpoint _ -> ());
  (* Undo: roll losers back.  No new log records are produced — the
     recovered catalog is the deliverable, not a continued log. *)
  let undo_applied = ref 0 in
  let undo_lsn = Lsn.next (Log.head log) in
  let rec undo_chain lsn =
    if Lsn.(lsn > Lsn.zero) then begin
      let r = Log.get log lsn in
      match r.Log_record.body with
      | Log_record.Op op ->
        (match Catalog.find_opt catalog (Log_record.op_table op) with
         | None -> undo_chain r.Log_record.prev_lsn
         | Some table ->
           let key = Log_record.op_key (Table.schema table) op in
           let inverse = Log_record.invert ~key op in
           (match Apply.op_to_table table ~lsn:undo_lsn inverse with
            | Ok () -> incr undo_applied
            | Error (`Duplicate_key | `Not_found) -> ());
           undo_chain r.Log_record.prev_lsn)
      | Log_record.Clr { undo_next; _ } -> undo_chain undo_next
      | Log_record.Begin -> ()
      | Log_record.Commit | Log_record.Abort_begin | Log_record.Abort_done
      | Log_record.Fuzzy_mark _ | Log_record.Cc_begin _ | Log_record.Cc_ok _
      | Log_record.Checkpoint _ -> undo_chain r.Log_record.prev_lsn
    end
  in
  List.iter (fun txn -> undo_chain (last_lsn_of txn)) losers;
  { redo_applied = !redo_applied;
    redo_skipped = !redo_skipped;
    losers;
    undo_applied = !undo_applied }

let recover ~table_defs log =
  let catalog = Catalog.create () in
  List.iter
    (fun d ->
       ignore
         (Catalog.create_table catalog ~indexes:d.def_indexes ~name:d.def_name
            d.def_schema))
    table_defs;
  (catalog, replay_into catalog log)

let pp_report ppf r =
  Format.fprintf ppf
    "redo: %d applied, %d skipped; losers: [%s]; undo: %d applied"
    r.redo_applied r.redo_skipped
    (String.concat "; " (List.map string_of_int r.losers))
    r.undo_applied
