(** Database facade.

    Bundles a catalog and a transaction manager and offers the
    conveniences everything above the substrate uses: one-shot
    auto-committed statements, bulk loads, and state snapshots for
    comparing against the relational-algebra oracle. *)

open Nbsc_value
open Nbsc_storage
open Nbsc_txn

type t

val create : unit -> t

val of_parts : Nbsc_storage.Catalog.t -> log:Nbsc_wal.Log.t -> t
(** Wrap an existing catalog (e.g. one restored from a snapshot) with a
    fresh transaction manager over the given log. *)

val catalog : t -> Catalog.t
val manager : t -> Manager.t
val log : t -> Nbsc_wal.Log.t

val create_table :
  t -> ?indexes:(string * string list) list -> name:string -> Schema.t ->
  Table.t

val table : t -> string -> Table.t
(** @raise Not_found *)

val with_txn : t -> (Manager.txn_id -> ('a, Manager.error) result) ->
  ('a, Manager.error) result
(** Run [f] in a fresh transaction; commit on [Ok], roll back on
    [Error]. A commit failure also rolls back. *)

val load : t -> table:string -> Row.t list -> (unit, Manager.error) result
(** Bulk-insert rows in one transaction. *)

val snapshot : t -> string -> Nbsc_relalg.Relalg.t
(** The table's current rows as a relation (for oracle comparison). *)

val row_count : t -> string -> int
