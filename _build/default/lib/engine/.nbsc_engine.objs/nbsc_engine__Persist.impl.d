lib/engine/persist.ml: Db Filename Format List Log Log_record Nbsc_txn Nbsc_wal Recovery Snapshot String Sys
