lib/engine/snapshot.ml: Catalog Codec Db Format List Log Lsn Manager Nbsc_storage Nbsc_txn Nbsc_value Nbsc_wal Record Schema String Table Value
