lib/engine/persist.mli: Db Format Nbsc_txn Recovery
