lib/engine/db.mli: Catalog Manager Nbsc_relalg Nbsc_storage Nbsc_txn Nbsc_value Nbsc_wal Row Schema Table
