lib/engine/recovery.ml: Apply Catalog Format Hashtbl Int List Log Log_record Lsn Nbsc_storage Nbsc_txn Nbsc_value Nbsc_wal Record Schema String Table
