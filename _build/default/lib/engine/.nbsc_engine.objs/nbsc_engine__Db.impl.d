lib/engine/db.ml: Catalog List Manager Nbsc_relalg Nbsc_storage Nbsc_txn Table
