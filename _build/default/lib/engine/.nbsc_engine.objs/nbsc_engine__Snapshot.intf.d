lib/engine/snapshot.mli: Db Format Manager Nbsc_txn
