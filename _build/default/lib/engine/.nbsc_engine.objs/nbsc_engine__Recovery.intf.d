lib/engine/recovery.mli: Catalog Format Log Log_record Nbsc_storage Nbsc_value Nbsc_wal Schema
