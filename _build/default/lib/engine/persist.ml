open Nbsc_wal

type error =
  [ `Active_transactions of Nbsc_txn.Manager.txn_id list
  | `Corrupt of string
  | `Io of string ]

type t = {
  dir : string;
  mutable pdb : Db.t;
  mutable out : out_channel;
  mutable report : Recovery.report option;
  mutable closed : bool;
}

let snapshot_path dir = Filename.concat dir "snapshot.nbsc"
let wal_path dir = Filename.concat dir "wal.nbsc"

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let io f = try Ok (f ()) with Sys_error m -> Error (`Io m)

let write_lines path lines =
  io (fun () ->
      let oc = open_out path in
      List.iter
        (fun l ->
           output_string oc l;
           output_char oc '\n')
        lines;
      close_out oc)

let read_lines path =
  io (fun () ->
      let ic = open_in path in
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file ->
          close_in ic;
          List.rev acc
      in
      go [])

let attach_sink t =
  Log.set_sink (Db.log t.pdb)
    (Some
       (fun record ->
          output_string t.out (Log_record.encode record);
          output_char t.out '\n';
          flush t.out))

let create_dir ~dir =
  let* () =
    io (fun () -> if not (Sys.file_exists dir) then Sys.mkdir dir 0o755)
  in
  if Sys.file_exists (snapshot_path dir) then
    Error (`Io (dir ^ " already holds a database"))
  else
    let pdb = Db.create () in
    let* () =
      match Snapshot.save pdb with
      | Ok lines -> write_lines (snapshot_path dir) lines
      | Error (`Active_transactions _ | `Corrupt _) -> assert false
    in
    let* out =
      io (fun () ->
          open_out_gen [ Open_append; Open_creat ] 0o644 (wal_path dir))
    in
    let t = { dir; pdb; out; report = None; closed = false } in
    attach_sink t;
    Ok t

let open_dir ~dir =
  let* snapshot_lines = read_lines (snapshot_path dir) in
  let* pdb =
    match Snapshot.load snapshot_lines with
    | Ok db -> Ok db
    | Error (`Corrupt _ as e) -> Error (e :> error)
    | Error (`Active_transactions _) -> assert false
  in
  let* wal_lines =
    if Sys.file_exists (wal_path dir) then read_lines (wal_path dir) else Ok []
  in
  (* Crash recovery over the retained log suffix, and the LSN the
     in-memory log must continue after. *)
  let* report, wal_head =
    match wal_lines with
    | [] -> Ok (None, Log.head (Db.log pdb))  (* the snapshot head *)
    | lines ->
      (match Log.of_lines lines with
       | wal ->
         Ok (Some (Recovery.replay_into (Db.catalog pdb) wal), Log.head wal)
       | exception Failure m -> Error (`Corrupt m))
  in
  let pdb =
    Db.of_parts (Db.catalog pdb) ~log:(Log.create ~base:wal_head ())
  in
  let* out =
    io (fun () ->
        open_out_gen [ Open_append; Open_creat ] 0o644 (wal_path dir))
  in
  let t = { dir; pdb; out; report; closed = false } in
  attach_sink t;
  Ok t

let db t = t.pdb

let checkpoint t =
  match Snapshot.save t.pdb with
  | Error e -> Error (e :> error)
  | Ok lines ->
    let* () = write_lines (snapshot_path t.dir) lines in
    (* Truncate the WAL: everything it held is in the snapshot now. *)
    let* () =
      io (fun () ->
          close_out t.out;
          t.out <- open_out (wal_path t.dir))
    in
    attach_sink t;
    Ok ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    Log.set_sink (Db.log t.pdb) None;
    close_out t.out
  end

let last_recovery t = t.report

let pp_error ppf = function
  | `Active_transactions txns ->
    Format.fprintf ppf "active transactions: [%s]"
      (String.concat "; " (List.map string_of_int txns))
  | `Corrupt m -> Format.fprintf ppf "corrupt: %s" m
  | `Io m -> Format.fprintf ppf "io error: %s" m
