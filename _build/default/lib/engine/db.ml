open Nbsc_storage
open Nbsc_txn

type t = {
  cat : Catalog.t;
  mgr : Manager.t;
}

let create () =
  let cat = Catalog.create () in
  { cat; mgr = Manager.create cat }

let of_parts cat ~log = { cat; mgr = Manager.create ~log cat }

let catalog t = t.cat
let manager t = t.mgr
let log t = Manager.log t.mgr

let create_table t ?indexes ~name schema =
  Catalog.create_table t.cat ?indexes ~name schema

let table t name = Catalog.find t.cat name

let with_txn t f =
  let txn = Manager.begin_txn t.mgr in
  match f txn with
  | Ok v ->
    (match Manager.commit t.mgr txn with
     | Ok () -> Ok v
     | Error e ->
       ignore (Manager.abort t.mgr txn);
       Error e)
  | Error e ->
    ignore (Manager.abort t.mgr txn);
    Error e

let load t ~table rows =
  with_txn t (fun txn ->
      List.fold_left
        (fun acc row ->
           match acc with
           | Error _ as e -> e
           | Ok () -> Manager.insert t.mgr ~txn ~table row)
        (Ok ()) rows)

let snapshot t name =
  let tbl = table t name in
  Nbsc_relalg.Relalg.make (Table.schema tbl) (Table.to_rows tbl)

let row_count t name = Table.cardinality (table t name)
