(** FOJ log propagation for many-to-many relationships (paper,
    Sec. 4.2, "Sketch of Log Propagation for Many-to-Many
    Relationships" — implemented in full here).

    Each R record may join multiple S records and vice versa, so T's
    key is the pair of source keys and an operation on a source record
    touches {e every} T record that record contributed to. The
    S-null / R-null padding discipline is the same as one-to-many: an
    unmatched record survives as its side joined with the NULL record,
    and the rules guarantee a side's survivor exists exactly when no
    real match does. *)

open Nbsc_value
open Nbsc_wal

val apply : Foj.t -> lsn:Lsn.t -> Log_record.op -> Row.Key.t list
(** Propagate one logged source operation under many-to-many
    semantics. Shares context and statistics with the one-to-many
    engine ({!Foj.stats}). *)
