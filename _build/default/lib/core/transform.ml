open Nbsc_value
open Nbsc_wal
open Nbsc_lock
open Nbsc_storage
open Nbsc_txn
open Nbsc_engine

type strategy = Blocking_commit | Nonblocking_abort | Nonblocking_commit

type config = {
  scan_batch : int;
  propagate_batch : int;
  analysis : Analysis.policy;
  strategy : strategy;
  drop_sources : bool;
  sync_gate : unit -> bool;
}

let default_config =
  { scan_batch = 256;
    propagate_batch = 256;
    analysis = Analysis.default;
    strategy = Nonblocking_abort;
    drop_sources = true;
    sync_gate = (fun () -> true) }

type phase =
  | Populating
  | Propagating
  | Checking
  | Quiescing
  | Draining
  | Done
  | Failed of string

type kind =
  | K_foj of Foj.t
  | K_split of Split.t * Consistency.t option
  | K_hsplit of Hsplit.t
  | K_merge of Merge.t

type t = {
  db : Db.t;
  mgr : Manager.t;
  config : config;
  kind : kind;
  pop : Population.t;
  prop : Propagator.t;
  src : string list;
  tgt : string list;
  holder : int;  (* latch holder id *)
  analysis : Analysis.t;
  mutable tphase : phase;
  mutable route : [ `Sources | `Targets ];
  mutable iterations : int;
  mutable caught_up_once : bool;
  mutable final_records : int;
  mutable old_txns : Manager.txn_id list;
  mutable forced_aborts : int;
  mutable hook_installed : bool;
}

type progress = {
  p_phase : phase;
  iterations : int;
  scanned : int;
  produced : int;
  propagated : int;
  lag : int;
  locks_transferred : int;
  final_records : int;
  unknown_flags : int;
  forced_aborts : int;
}

let next_holder =
  let counter = ref 1_000_000_000 in
  fun () ->
    incr counter;
    !counter

let write_fuzzy_mark mgr =
  let active = Manager.active_snapshot mgr in
  let lsn =
    Log.append (Manager.log mgr) ~txn:Log_record.system_txn ~prev_lsn:Lsn.zero
      (Log_record.Fuzzy_mark { active })
  in
  (lsn, active)

(* {2 Lock mapping — how a lock on a source record projects onto the
   transformed tables (used for sync-time lock transfer and for the
   two-schema locking of non-blocking commit)} *)

let foj_source_to_targets fj ~table ~key =
  let cctx = Foj.ctx fj in
  let l = cctx.Foj_common.layout in
  let spec = l.Spec.spec in
  let t_name = spec.Spec.t_table in
  if String.equal table spec.Spec.r_table then
    List.map (fun (k, _) -> (t_name, k)) (Foj_common.by_r_key cctx key)
  else if String.equal table spec.Spec.s_table then
    List.map (fun (k, _) -> (t_name, k)) (Foj_common.by_s_key cctx key)
  else []

let foj_target_to_sources fj ~key =
  let cctx = Foj.ctx fj in
  let l = cctx.Foj_common.layout in
  let spec = l.Spec.spec in
  (* T's composite key carries both source keys (possibly overlapping
     on shared join columns); project each side out by index. *)
  let part indices = Array.of_list (List.map (Array.get key) indices) in
  let r_part = part l.Spec.r_key_in_tkey in
  let s_part = part l.Spec.s_key_in_tkey in
  (if Row.Key.has_null r_part then [] else [ (spec.Spec.r_table, r_part) ])
  @ if Row.Key.has_null s_part then [] else [ (spec.Spec.s_table, s_part) ]

let split_source_to_targets sp db ~key =
  let layout = Split.layout sp in
  let spec = layout.Spec.sspec in
  let r_name = spec.Spec.r_table' and s_name = spec.Spec.s_table' in
  let base = [ (r_name, key) ] in
  match Catalog.find_opt (Db.catalog db) spec.Spec.t_table' with
  | None -> base
  | Some t_tbl ->
    (match Table.find t_tbl key with
     | None -> base
     | Some record ->
       let v = Row.project record.Record.row layout.Spec.split_in_t in
       (s_name, v) :: base)

let split_target_to_sources sp db ~table ~key =
  let layout = Split.layout sp in
  let spec = layout.Spec.sspec in
  let t_name = spec.Spec.t_table' in
  if String.equal table spec.Spec.r_table' then [ (t_name, key) ]
  else if String.equal table spec.Spec.s_table' then
    match Catalog.find_opt (Db.catalog db) t_name with
    | None -> []
    | Some t_tbl ->
      List.map
        (fun k -> (t_name, k))
        (Table.index_lookup t_tbl ~index:Spec.ix_t_split key)
  else []

let source_lock_mapper t ~table ~key =
  match t.kind with
  | K_foj fj -> foj_source_to_targets fj ~table ~key
  | K_split (sp, _) -> split_source_to_targets sp t.db ~key
  | K_hsplit hs ->
    (* The key lives in exactly one target, but lock both conservatively
       (an update may migrate the row). *)
    [ (Table.name (Hsplit.true_table hs), key);
      (Table.name (Hsplit.false_table hs), key) ]
  | K_merge mg -> [ (Table.name (Merge.target mg), key) ]

let target_lock_mapper t ~table ~key =
  match t.kind with
  | K_foj fj -> foj_target_to_sources fj ~key
  | K_split (sp, _) -> split_target_to_sources sp t.db ~table ~key
  | K_hsplit hs ->
    [ (Hsplit.layout hs).Spec.hspec.Spec.h_source, key ]
  | K_merge mg ->
    (* The target key could stem from any source; lock all of them. *)
    List.map
      (fun src -> (src, key))
      (Merge.layout mg).Spec.mspec.Spec.m_sources

let source_index t table =
  let rec go i = function
    | [] -> 0
    | s :: rest -> if String.equal s table then i else go (i + 1) rest
  in
  go 0 t.src

(* Two-schema locking hook for non-blocking commit (paper, Sec. 4.3):
   a lock on a source record is also taken on the implicated target
   records (with Source provenance, so transferred locks never fight
   each other), and a lock on a target record is also taken on the
   corresponding source records (Native — ordinary conflicts there). *)
let dual_lock_hook t ~txn:_ ~table ~key ~mode =
  if List.exists (String.equal table) t.src then
    List.map
      (fun (tbl, k) ->
         { Lock_table_many.table = tbl;
           key = k;
           lock =
             { Compat.mode; provenance = Compat.Source (source_index t table) }
         })
      (source_lock_mapper t ~table ~key)
  else if List.exists (String.equal table) t.tgt then
    List.map
      (fun (tbl, k) ->
         { Lock_table_many.table = tbl;
           key = k;
           lock = { Compat.mode; provenance = Compat.Native } })
      (target_lock_mapper t ~table ~key)
  else []

(* {2 Construction (the preparation step)} *)

let make db config kind ~pop ~rules ~src ~tgt =
  let mgr = Db.manager db in
  let mark_lsn, active = write_fuzzy_mark mgr in
  let from =
    List.fold_left
      (fun acc (_, first) -> if Lsn.(first < acc) then first else acc)
      mark_lsn active
  in
  let prop = Propagator.create mgr rules ~from in
  let t =
    { db;
      mgr;
      config;
      kind;
      pop;
      prop;
      src;
      tgt;
      holder = next_holder ();
      analysis = Analysis.create config.analysis;
      tphase = Populating;
      route = `Sources;
      iterations = 0;
      caught_up_once = false;
      final_records = 0;
      old_txns = [];
      forced_aborts = 0;
      hook_installed = false }
  in
  Propagator.set_lock_mapper prop (fun ~table ~key ->
      source_lock_mapper t ~table ~key);
  t

let foj db ?(config = default_config) spec =
  let catalog = Db.catalog db in
  let layout = Spec.foj_layout catalog spec in
  ignore
    (Catalog.create_table catalog
       ~indexes:(Spec.foj_t_indexes layout)
       ~name:spec.Spec.t_table (Spec.foj_t_schema layout));
  let fj = Foj.create catalog layout in
  let r_tbl = Catalog.find catalog spec.Spec.r_table in
  let s_tbl = Catalog.find catalog spec.Spec.s_table in
  let pop = Population.foj fj ~r_tbl ~s_tbl in
  let apply =
    if spec.Spec.many_to_many then
      fun ~lsn op ->
        List.map (fun k -> (spec.Spec.t_table, k)) (Foj_mm.apply fj ~lsn op)
    else
      fun ~lsn op ->
        List.map (fun k -> (spec.Spec.t_table, k)) (Foj.apply fj ~lsn op)
  in
  let rules =
    Propagator.rules
      ~sources:[ spec.Spec.r_table; spec.Spec.s_table ]
      ~targets:[ spec.Spec.t_table ] ~apply ()
  in
  make db config (K_foj fj) ~pop ~rules
    ~src:[ spec.Spec.r_table; spec.Spec.s_table ]
    ~tgt:[ spec.Spec.t_table ]

let split db ?(config = default_config) spec =
  let catalog = Db.catalog db in
  let layout = Spec.split_layout catalog spec in
  ignore
    (Catalog.create_table catalog ~name:spec.Spec.r_table'
       (Spec.split_r_schema layout));
  ignore
    (Catalog.create_table catalog ~name:spec.Spec.s_table'
       (Spec.split_s_schema layout));
  let t_tbl = Catalog.find catalog spec.Spec.t_table' in
  Table.add_index t_tbl ~name:Spec.ix_t_split ~columns:spec.Spec.split_key;
  let sp = Split.create catalog layout in
  let cc =
    if spec.Spec.assume_consistent then None
    else Some (Consistency.create catalog sp ~log:(Db.log db))
  in
  let pop = Population.split sp ~t_tbl in
  let rules =
    { Propagator.sources = [ spec.Spec.t_table' ];
      targets = [ spec.Spec.r_table'; spec.Spec.s_table' ];
      apply = (fun ~lsn op -> Split.apply sp ~lsn op);
      cc;
      cc_s_table = Some spec.Spec.s_table';
      transfer_locks = true }
  in
  make db config (K_split (sp, cc)) ~pop ~rules
    ~src:[ spec.Spec.t_table' ]
    ~tgt:[ spec.Spec.r_table'; spec.Spec.s_table' ]

let hsplit db ?(config = default_config) spec =
  let catalog = Db.catalog db in
  let layout = Spec.hsplit_layout catalog spec in
  ignore
    (Catalog.create_table catalog ~name:spec.Spec.h_true_table
       layout.Spec.h_schema);
  ignore
    (Catalog.create_table catalog ~name:spec.Spec.h_false_table
       layout.Spec.h_schema);
  let hs = Hsplit.create catalog layout in
  let source = Catalog.find catalog spec.Spec.h_source in
  let pop = Population.scan_one source ~ingest:(Hsplit.ingest_initial hs) in
  let rules =
    Propagator.rules ~sources:[ spec.Spec.h_source ]
      ~targets:[ spec.Spec.h_true_table; spec.Spec.h_false_table ]
      ~apply:(fun ~lsn op -> Hsplit.apply hs ~lsn op)
      ()
  in
  make db config (K_hsplit hs) ~pop ~rules
    ~src:[ spec.Spec.h_source ]
    ~tgt:[ spec.Spec.h_true_table; spec.Spec.h_false_table ]

let merge db ?(config = default_config) spec =
  let catalog = Db.catalog db in
  let layout = Spec.merge_layout catalog spec in
  ignore
    (Catalog.create_table catalog ~name:spec.Spec.m_target layout.Spec.m_schema);
  let mg = Merge.create catalog layout in
  let sources = List.map (Catalog.find catalog) spec.Spec.m_sources in
  let pop = Population.scan_many sources ~ingest:(Merge.ingest_initial mg) in
  let rules =
    Propagator.rules ~sources:spec.Spec.m_sources
      ~targets:[ spec.Spec.m_target ]
      ~apply:(fun ~lsn op -> Merge.apply mg ~lsn op)
      ()
  in
  make db config (K_merge mg) ~pop ~rules ~src:spec.Spec.m_sources
    ~tgt:[ spec.Spec.m_target ]

(* {2 Introspection} *)

let phase t = t.tphase
let routing t = t.route
let sources t = t.src
let targets t = t.tgt
let manager t = t.mgr

let foj_engine t = match t.kind with K_foj f -> Some f | _ -> None
let split_engine t = match t.kind with K_split (s, _) -> Some s | _ -> None
let hsplit_engine t = match t.kind with K_hsplit h -> Some h | _ -> None
let merge_engine t = match t.kind with K_merge m -> Some m | _ -> None
let checker t = match t.kind with K_split (_, cc) -> cc | _ -> None

let unknown_flags t =
  match t.kind with
  | K_split (sp, Some _) -> Split.unknown_count sp
  | K_split (_, None) | K_foj _ | K_hsplit _ | K_merge _ -> 0

let progress t =
  { p_phase = t.tphase;
    iterations = t.iterations;
    scanned = Population.scanned t.pop;
    produced = Population.produced t.pop;
    propagated = Propagator.records_processed t.prop;
    lag = Propagator.lag t.prop;
    locks_transferred = Propagator.locks_transferred t.prop;
    final_records = t.final_records;
    unknown_flags = unknown_flags t;
    forced_aborts = t.forced_aborts }

(* {2 Synchronization (paper, Sec. 3.4)} *)

let active_txns_on_sources t =
  let locks = Manager.locks t.mgr in
  List.concat_map
    (fun src ->
       List.filter_map
         (fun (_, owner, _) ->
            if Manager.is_active t.mgr owner then Some owner else None)
         (Lock_table.locked_resources locks ~table:src))
    t.src
  |> List.sort_uniq Int.compare

let latch_sources t =
  List.iter
    (fun table ->
       if not (Latch.try_latch (Manager.latches t.mgr) ~holder:t.holder ~table)
       then failwith ("Transform: latch on " ^ table ^ " unavailable"))
    t.src

let unlatch_sources t =
  List.iter
    (fun table ->
       if Latch.latched_by (Manager.latches t.mgr) ~table = Some t.holder then
         Latch.unlatch (Manager.latches t.mgr) ~holder:t.holder ~table)
    t.src

let finalize t =
  if t.hook_installed then begin
    Manager.set_extra_lock_hook t.mgr None;
    t.hook_installed <- false
  end;
  Manager.freeze_tables t.mgr [];
  if t.config.drop_sources then
    List.iter
      (fun src ->
         if Catalog.mem (Db.catalog t.db) src then
           Catalog.drop (Db.catalog t.db) src)
      t.src;
  t.tphase <- Done

let begin_sync t =
  match t.config.strategy with
  | Blocking_commit ->
    (* Block newcomers; current transactions run to completion. *)
    Manager.freeze_tables t.mgr t.src;
    t.tphase <- Quiescing
  | Nonblocking_abort ->
    latch_sources t;
    t.final_records <- Propagator.run_to_head t.prop;
    let old = active_txns_on_sources t in
    t.old_txns <- old;
    t.route <- `Targets;
    Manager.freeze_tables t.mgr t.src;
    unlatch_sources t;
    (* Force the transactions that were active on the sources to roll
       back; their CLRs keep flowing through the propagator, which
       releases the corresponding transferred locks as it reaches each
       abort record. *)
    List.iter
      (fun txn ->
         Manager.mark_abort_only t.mgr txn;
         match Manager.abort t.mgr txn with
         | Ok () -> t.forced_aborts <- t.forced_aborts + 1
         | Error _ -> ())
      old;
    t.tphase <- Draining
  | Nonblocking_commit ->
    latch_sources t;
    t.final_records <- Propagator.run_to_head t.prop;
    Propagator.transfer_current_source_locks t.prop;
    t.old_txns <- active_txns_on_sources t;
    Manager.set_extra_lock_hook t.mgr
      (Some (fun ~txn ~table ~key ~mode -> dual_lock_hook t ~txn ~table ~key ~mode));
    t.hook_installed <- true;
    t.route <- `Targets;
    Manager.freeze_tables t.mgr t.src;
    unlatch_sources t;
    t.tphase <- Draining

let cc_ready t =
  match t.kind with
  | K_foj _ | K_split (_, None) | K_hsplit _ | K_merge _ -> true
  | K_split (sp, Some _) -> Split.unknown_count sp = 0

let try_sync t =
  if t.config.sync_gate () && Analysis.ready t.analysis ~lag:(Propagator.lag t.prop)
  then
    if cc_ready t then begin
      begin_sync t;
      true
    end
    else begin
      t.tphase <- Checking;
      true
    end
  else false

let step t =
  (match t.tphase with
   | Populating ->
     if Population.step t.pop ~limit:t.config.scan_batch then begin
       ignore (write_fuzzy_mark t.mgr);
       t.tphase <- Propagating
     end
   | Propagating ->
     let consumed = Propagator.step t.prop ~limit:t.config.propagate_batch in
     Analysis.observe t.analysis ~lag:(Propagator.lag t.prop) ~consumed;
     if Propagator.lag t.prop = 0 && not t.caught_up_once then begin
       t.caught_up_once <- true;
       t.iterations <- t.iterations + 1;
       Analysis.end_iteration t.analysis
     end;
     if Propagator.lag t.prop > 0 then t.caught_up_once <- false;
     ignore (try_sync t)
   | Checking ->
     (match t.kind with
      | K_split (_, Some cc) -> ignore (Consistency.step cc)
      | K_split (_, None) | K_foj _ | K_hsplit _ | K_merge _ -> ());
     let consumed = Propagator.step t.prop ~limit:t.config.propagate_batch in
     Analysis.observe t.analysis ~lag:(Propagator.lag t.prop) ~consumed;
     if cc_ready t then begin
       t.tphase <- Propagating;
       ignore (try_sync t)
     end
   | Quiescing ->
     ignore (Propagator.step t.prop ~limit:t.config.propagate_batch);
     if active_txns_on_sources t = [] then begin
       t.final_records <- Propagator.run_to_head t.prop;
       t.route <- `Targets;
       finalize t
     end
   | Draining ->
     ignore (Propagator.step t.prop ~limit:t.config.propagate_batch);
     let all_done =
       List.for_all (fun txn -> not (Manager.is_active t.mgr txn)) t.old_txns
     in
     if all_done && Propagator.lag t.prop = 0 then finalize t
   | Done | Failed _ -> ());
  match t.tphase with
  | Done -> `Done
  | Failed m -> `Failed m
  | Populating | Propagating | Checking | Quiescing | Draining -> `Running

let run ?(between = fun () -> ()) t =
  let rec go () =
    match step t with
    | `Done -> Ok ()
    | `Failed m -> Error m
    | `Running ->
      between ();
      go ()
  in
  go ()

let abort t =
  match t.tphase with
  | Done -> ()
  | _ ->
    if t.hook_installed then begin
      Manager.set_extra_lock_hook t.mgr None;
      t.hook_installed <- false
    end;
    unlatch_sources t;
    Manager.freeze_tables t.mgr [];
    (* Drop transferred locks on the targets, then the targets. *)
    let locks = Manager.locks t.mgr in
    List.iter
      (fun tgt ->
         List.iter
           (fun (key, owner, _) -> Lock_table.release locks ~owner ~table:tgt ~key)
           (Lock_table.locked_resources locks ~table:tgt);
         if Catalog.mem (Db.catalog t.db) tgt then
           Catalog.drop (Db.catalog t.db) tgt)
      t.tgt;
    t.tphase <- Failed "aborted by request"

let pp_phase ppf = function
  | Populating -> Format.pp_print_string ppf "populating"
  | Propagating -> Format.pp_print_string ppf "propagating"
  | Checking -> Format.pp_print_string ppf "checking"
  | Quiescing -> Format.pp_print_string ppf "quiescing"
  | Draining -> Format.pp_print_string ppf "draining"
  | Done -> Format.pp_print_string ppf "done"
  | Failed m -> Format.fprintf ppf "failed: %s" m

let pp_progress ppf p =
  Format.fprintf ppf
    "@[phase=%a iter=%d scanned=%d produced=%d propagated=%d lag=%d \
     locks=%d final=%d unknown=%d aborts=%d@]"
    pp_phase p.p_phase p.iterations p.scanned p.produced p.propagated p.lag
    p.locks_transferred p.final_records p.unknown_flags p.forced_aborts
