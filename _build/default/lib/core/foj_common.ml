open Nbsc_value
open Nbsc_storage

let r_bit = 1
let s_bit = 2

let derive_presence (l : Spec.foj_layout) row =
  let any_non_null positions =
    List.exists (fun i -> not (Value.is_null (Row.get row i))) positions
  in
  (if any_non_null l.Spec.t_r_key_pos then r_bit else 0)
  lor if any_non_null l.Spec.t_s_key_pos then s_bit else 0

let presence l (record : Record.t) =
  if record.Record.aux <> 0 then record.Record.aux
  else derive_presence l record.Record.row

let has_r l record = presence l record land r_bit <> 0
let has_s l record = presence l record land s_bit <> 0

let t_row_of_sources (l : Spec.foj_layout) ~r ~s =
  let row = Row.all_null (Schema.arity l.Spec.t_schema) in
  let copy src mapping =
    List.iter (fun (src_pos, t_pos) -> row.(t_pos) <- Row.get src src_pos) mapping
  in
  (match s with
   | Some s_row ->
     copy s_row l.Spec.s_to_t;
     copy s_row l.Spec.s_join_to_t
   | None -> ());
  (match r with
   | Some r_row ->
     copy r_row l.Spec.r_to_t;
     copy r_row l.Spec.r_join_to_t  (* R wins on join columns; equal anyway *)
   | None -> ());
  let bits =
    (match r with Some _ -> r_bit | None -> 0)
    lor match s with Some _ -> s_bit | None -> 0
  in
  (row, bits)

let null_positions positions row =
  Row.update row (List.map (fun i -> (i, Value.Null)) positions)

let strip_r (l : Spec.foj_layout) row = null_positions l.Spec.t_r_carry_pos row
let strip_s (l : Spec.foj_layout) row = null_positions l.Spec.t_s_carry_pos row

let graft mapping ~src ~onto =
  Row.update onto
    (List.map (fun (src_pos, t_pos) -> (t_pos, Row.get src src_pos)) mapping)

let graft_r (l : Spec.foj_layout) ~r ~onto =
  graft (l.Spec.r_to_t @ l.Spec.r_join_to_t) ~src:r ~onto

let graft_s (l : Spec.foj_layout) ~s ~onto =
  graft (l.Spec.s_to_t @ l.Spec.s_join_to_t) ~src:s ~onto

let graft_s_from_t (l : Spec.foj_layout) ~src ~onto =
  Row.update onto
    (List.map (fun t_pos -> (t_pos, Row.get src t_pos)) l.Spec.t_s_carry_pos)

let changes_through mapping changes =
  List.filter_map
    (fun (pos, v) ->
       match List.assoc_opt pos mapping with
       | Some t_pos -> Some (t_pos, v)
       | None -> None)
    changes

let r_changes_to_t (l : Spec.foj_layout) changes =
  changes_through (l.Spec.r_to_t @ l.Spec.r_join_to_t) changes

let s_changes_to_t (l : Spec.foj_layout) changes =
  changes_through (l.Spec.s_to_t @ l.Spec.s_join_to_t) changes

let touches positions changes =
  List.exists (fun (pos, _) -> List.mem pos positions) changes

let r_join_changed (l : Spec.foj_layout) changes =
  touches l.Spec.join_in_r changes

let s_join_changed (l : Spec.foj_layout) changes =
  touches l.Spec.join_in_s changes

let r_key_of_r_row (l : Spec.foj_layout) row =
  Row.Key.of_row row l.Spec.r_key_in_r

let join_of_r_row (l : Spec.foj_layout) row =
  Row.Key.of_row row l.Spec.join_in_r

let s_key_of_s_row (l : Spec.foj_layout) row =
  Row.Key.of_row row l.Spec.s_key_in_s

let join_of_s_row (l : Spec.foj_layout) row =
  Row.Key.of_row row l.Spec.join_in_s

let t_key (l : Spec.foj_layout) row =
  Row.Key.of_row row (Schema.key_positions l.Spec.t_schema)

let r_key_of_t_row (l : Spec.foj_layout) row =
  Row.Key.of_row row l.Spec.t_r_key_pos

let s_key_of_t_row (l : Spec.foj_layout) row =
  Row.Key.of_row row l.Spec.t_s_key_pos

let join_of_t_row (l : Spec.foj_layout) row =
  Row.Key.of_row row l.Spec.t_join_pos

type ctx = {
  layout : Spec.foj_layout;
  t_tbl : Table.t;
}

let make_ctx catalog (layout : Spec.foj_layout) =
  { layout; t_tbl = Catalog.find catalog layout.Spec.spec.Spec.t_table }

let by_r_key ctx key =
  Table.index_lookup_records ctx.t_tbl ~index:Spec.ix_by_r_key key

let by_s_key ctx key =
  Table.index_lookup_records ctx.t_tbl ~index:Spec.ix_by_s_key key

let by_join ctx key =
  Table.index_lookup_records ctx.t_tbl ~index:Spec.ix_by_join key

let put ctx ~lsn ~presence row =
  match Table.insert ctx.t_tbl ~lsn ~aux:presence row with
  | Ok () -> Table.key_of_row ctx.t_tbl row
  | Error `Duplicate_key ->
    invalid_arg
      (Format.asprintf "Foj: rule produced duplicate T key for %a" Row.pp row)

let drop ctx key =
  match Table.delete ctx.t_tbl ~key with
  | Ok _ -> key
  | Error `Not_found ->
    invalid_arg
      (Format.asprintf "Foj: rule deleted missing T key %a" Row.Key.pp key)

let rekey ctx ~lsn ~old_key ~presence row =
  let k1 = drop ctx old_key in
  let k2 = put ctx ~lsn ~presence row in
  [ k1; k2 ]
