(** The iteration analysis (paper, Sec. 3.3).

    "Each log propagation iteration therefore ends with an analysis of
    the remaining work. Based on the analysis, either another log
    propagation iteration or the synchronization step is started. The
    analysis could be based on, e.g. the time used to complete the
    current iteration, a count of the remaining log records to be
    propagated, or an estimated remaining propagation time."

    All three bases are implemented. Whatever the policy, the final
    latched iteration processes exactly the records that remain when
    the latch is taken, so every policy is ultimately a bound on the
    blocking window — they differ in how they predict it. *)

type policy =
  | Remaining_records of int
      (** "a count of the remaining log records": synchronize when the
          propagator is at most this many records behind the head. *)
  | Iteration_shrink of { factor : float; floor : int }
      (** "the time used to complete the current iteration": iterations
          must be shrinking — synchronize when the records consumed in
          the cycle that just caught up are at most [factor] times the
          previous cycle's (or below [floor] outright). A propagator
          that cannot keep up never satisfies this, which is the
          paper's "the synchronization is never started" signal. *)
  | Estimated_time of { max_steps : float }
      (** "an estimated remaining propagation time": track the net
          drain rate (records of lag removed per step, smoothed) and
          synchronize when lag / rate is at most [max_steps] steps. *)

type t

val create : policy -> t

val observe : t -> lag:int -> consumed:int -> unit
(** Report one propagation step: the lag after it and the records it
    consumed. *)

val end_iteration : t -> unit
(** The propagator just caught up with the head (end of a cycle). *)

val ready : t -> lag:int -> bool
(** Should synchronization start now? *)

val default : policy
(** [Remaining_records 8]. *)

val pp_policy : Format.formatter -> policy -> unit
