(** The non-blocking transformation framework (paper, Sec. 3).

    A transformation is an incremental background process: create it
    (the {e preparation step} — target tables, indexes, validation),
    then call {!step} repeatedly, interleaved with user transactions at
    whatever granularity the caller (application, test, or the
    simulator's priority scheduler) chooses. Each step performs a
    bounded amount of work:

    + {e initial population} — fuzzy (lock-free) scan of the sources,
      transformation operator applied, initial image inserted;
    + {e log propagation} — the redo rules of Sections 4 and 5,
      transferring source-transaction locks to the targets as it goes;
    + {e consistency checking} — for split of possibly-inconsistent
      data, until every S record is C-flagged;
    + {e synchronization} — one of the paper's three strategies
      (Sec. 3.4), ending with the source tables dropped.

    User transactions are never blocked except for the final latched
    propagation iteration, whose size {!progress} reports (the paper
    measures it under 1 ms). *)

open Nbsc_txn
open Nbsc_engine

type strategy =
  | Blocking_commit
      (** block newcomers, let current transactions finish, then switch
          — violates the non-blocking requirement; the paper's foil *)
  | Nonblocking_abort
      (** latch briefly, switch, force transactions that were active on
          the sources to abort *)
  | Nonblocking_commit
      (** latch briefly, switch, let source transactions continue under
          two-schema locking (Fig. 2) until they finish *)

type config = {
  scan_batch : int;       (** source records per population step *)
  propagate_batch : int;  (** log records per propagation step *)
  analysis : Analysis.policy;
      (** the iteration analysis deciding when to attempt
          synchronization (paper, Sec. 3.3; see {!Analysis.policy}) *)
  strategy : strategy;
  drop_sources : bool;    (** drop source tables when done *)
  sync_gate : unit -> bool;
      (** consulted before entering synchronization; return [false] to
          keep propagating (e.g. the DBA wants the switch-over during
          off-hours, or an experiment wants a steady propagation
          phase). Default: always true. *)
}

val default_config : config
(** [{ scan_batch = 256; propagate_batch = 256;
      analysis = Analysis.default; strategy = Nonblocking_abort;
      drop_sources = true; sync_gate = fun () -> true }] *)

type phase =
  | Populating
  | Propagating
  | Checking        (** consistency checker active (split, Sec. 5.3) *)
  | Quiescing       (** blocking commit: waiting for old transactions *)
  | Draining        (** switched; old source transactions finishing *)
  | Done
  | Failed of string

type progress = {
  p_phase : phase;
  iterations : int;       (** times the propagator caught up with the log head *)
  scanned : int;          (** fuzzy-scanned source records *)
  produced : int;         (** initial-image rows written *)
  propagated : int;       (** log records consumed *)
  lag : int;              (** log records still to consume *)
  locks_transferred : int;
  final_records : int;    (** size of the final latched iteration *)
  unknown_flags : int;    (** U-flagged S records remaining (split) *)
  forced_aborts : int;    (** transactions killed by non-blocking abort *)
}

type t

val foj : Db.t -> ?config:config -> Spec.foj -> t
(** Preparation step for a full outer join transformation: validates
    the spec, creates T with its three indexes, writes the first fuzzy
    mark. @raise Invalid_argument on an invalid spec. *)

val split : Db.t -> ?config:config -> Spec.split -> t
(** Preparation step for a split transformation; also adds the
    split-column index to the source table (the consistency checker
    reads through it). *)

val hsplit : Db.t -> ?config:config -> Spec.hsplit -> t
(** Horizontal (selection) split — one of the "other relational
    operators" the paper's conclusion calls for. Same four-step
    framework and synchronization strategies. *)

val merge : Db.t -> ?config:config -> Spec.merge -> t
(** Merge (union) of same-schema tables — the reverse of [hsplit]. *)

val step : t -> [ `Running | `Done | `Failed of string ]
(** One bounded slice of background work. *)

val run : ?between:(unit -> unit) -> t -> (unit, string) result
(** Drive to completion, invoking [between] between steps so callers
    can interleave user transactions. *)

val phase : t -> phase
val progress : t -> progress

val routing : t -> [ `Sources | `Targets ]
(** Which schema version new transactions should use — flips exactly at
    the synchronization point. *)

val sources : t -> string list
val targets : t -> string list

val abort : t -> unit
(** Stop the transformation: log propagation ceases, transformed tables
    are deleted, transferred locks dropped, latches and freezes lifted
    (paper, Sec. 6: "aborting the transformation simply means that log
    propagation is stopped, and the transformed tables are deleted").
    No effect once [Done]. *)

val pp_phase : Format.formatter -> phase -> unit
val pp_progress : Format.formatter -> progress -> unit

(** Access to the underlying machinery, for tests and benches. *)
val manager : t -> Manager.t
val foj_engine : t -> Foj.t option
val split_engine : t -> Split.t option
val hsplit_engine : t -> Hsplit.t option
val merge_engine : t -> Merge.t option
val checker : t -> Consistency.t option
