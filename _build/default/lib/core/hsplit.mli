(** Horizontal (selection) split propagation.

    T's rows are routed into [h_true_table] or [h_false_table] by the
    predicate; the propagation rules follow the split transformation's
    LSN discipline (target records inherit the fuzzy scan's LSNs, and a
    logged operation applies only if newer than the target record).
    An update that flips the predicate migrates the row between the
    targets in one rule application. *)

open Nbsc_value
open Nbsc_wal
open Nbsc_storage

type t

val create : Catalog.t -> Spec.hsplit_layout -> t

val layout : t -> Spec.hsplit_layout
val true_table : t -> Table.t
val false_table : t -> Table.t

val ingest_initial : t -> Record.t -> unit
(** Route one fuzzily-scanned source record (keeps its LSN). *)

val apply : t -> lsn:Lsn.t -> Log_record.op -> (string * Row.Key.t) list

val locate : t -> Row.Key.t -> (Table.t * Record.t) option
(** Which target currently holds this key, if any. *)

type stats = {
  mutable applied : int;
  mutable ignored : int;
  mutable foreign : int;
  mutable migrations : int;  (** rows moved between targets by updates *)
}

val stats : t -> stats
