open Nbsc_value
open Nbsc_wal
open Nbsc_storage

type stats = {
  mutable started : int;
  mutable confirmed : int;
  mutable invalidated : int;
  mutable disagreed : int;
}

(* A check in flight on the checker side: begun (logged, image read) but
   CC-ok not yet written. *)
type in_flight = {
  if_key : Row.Key.t;
  if_image : Row.t;
}

type t = {
  split : Split.t;
  t_tbl : Table.t;
  log : Log.t;
  (* Checks whose CC-begin the propagator has seen but whose CC-ok it
     has not; the bool becomes true when the key is touched. *)
  pending : bool ref Row.Key.Tbl.t;
  mutable current : in_flight option;
  st : stats;
}

let create catalog split ~log =
  let layout = Split.layout split in
  { split;
    t_tbl = Catalog.find catalog layout.Spec.sspec.Spec.t_table';
    log;
    pending = Row.Key.Tbl.create 16;
    current = None;
    st = { started = 0; confirmed = 0; invalidated = 0; disagreed = 0 } }

let source_name t = Table.name t.t_tbl

let append_system t body =
  ignore (Log.append t.log ~txn:Log_record.system_txn ~prev_lsn:Lsn.zero body)

(* Dirty-read the S projections of every T record with split value v;
   Some image if they all agree and at least one exists. *)
let agreed_image t v =
  let layout = Split.layout t.split in
  let records =
    Table.index_lookup_records t.t_tbl ~index:Spec.ix_t_split v
  in
  let project (_, record) =
    Row.project record.Record.row layout.Spec.s_cols_in_t
  in
  match records with
  | [] -> None
  | first :: rest ->
    let image = project first in
    if List.for_all (fun r -> Row.equal (project r) image) rest then Some image
    else None

let step t =
  match t.current with
  | Some { if_key; if_image } ->
    (* Complete the check: log CC-ok; the propagator decides validity. *)
    append_system t
      (Log_record.Cc_ok
         { table = source_name t; key = if_key; image = if_image });
    t.current <- None;
    true
  | None ->
    (match Split.first_unknown t.split with
     | None -> false
     | Some (key, _) ->
       t.st.started <- t.st.started + 1;
       append_system t
         (Log_record.Cc_begin { table = source_name t; key });
       (match agreed_image t key with
        | Some image -> t.current <- Some { if_key = key; if_image = image }
        | None ->
          (* T records disagree (the data is genuinely inconsistent) or
             none exist yet; the record stays U and is retried after
             someone repairs the data or propagation catches up. *)
          t.st.disagreed <- t.st.disagreed + 1);
       true)

let note_touched t key =
  match Row.Key.Tbl.find_opt t.pending key with
  | Some dirty -> dirty := true
  | None -> ()

let on_cc_begin t key = Row.Key.Tbl.replace t.pending key (ref false)

let on_cc_ok t ~lsn key image =
  match Row.Key.Tbl.find_opt t.pending key with
  | None -> ()  (* no matching begin: stale record from a replay *)
  | Some dirty ->
    Row.Key.Tbl.remove t.pending key;
    if !dirty then t.st.invalidated <- t.st.invalidated + 1
    else begin
      let s_tbl = Split.s_table t.split in
      match Table.find s_tbl key with
      | None ->
        (* Deleted since: deletion would have dirtied the check, so this
           is unreachable; count as invalidated defensively. *)
        t.st.invalidated <- t.st.invalidated + 1
      | Some record ->
        let record' =
          { record with Record.row = image; lsn; flag = Record.Consistent }
        in
        (match Table.set_record s_tbl ~key record' with
         | Ok () -> t.st.confirmed <- t.st.confirmed + 1
         | Error `Not_found -> assert false)
    end

let stats t = t.st
