(** The consistency checker (CC) for split of possibly-inconsistent
    data (paper, Sec. 5.3).

    When the DBMS does not enforce the functional dependency
    (split key -> other S columns), the initial image and concurrent
    updates can leave S records whose true value is ambiguous (the
    paper's Example 1: two customers with postal code 7050 but
    different city spellings). Such records carry an Unknown flag.

    The checker picks a U-flagged record s{_v}, logs "CC-begin v",
    dirty-reads every T record contributing to s{_v} (via the split
    index on T), and — if they agree — logs "CC-ok v" with the correct
    image. The {e propagator} applies the image only if nothing touched
    s{_v} between the two log records; otherwise the check is void and
    retried. Because T has to be read, split of inconsistent data is
    not self-maintainable (paper's closing remark of Sec. 5.3). *)

open Nbsc_value
open Nbsc_wal
open Nbsc_storage

type t

val create : Catalog.t -> Split.t -> log:Log.t -> t

val step : t -> bool
(** Run one unit of checker work: either begin a check on some
    U-flagged record (logging CC-begin and performing the dirty read)
    or complete the previously begun check (logging CC-ok). Returns
    false when there was nothing to do (no U records and no check in
    flight). *)

(** {1 Propagator callbacks} *)

val note_touched : t -> Row.Key.t -> unit
(** The propagator reports every S key its rules touched; a pending
    check on that key is invalidated. *)

val on_cc_begin : t -> Row.Key.t -> unit
val on_cc_ok : t -> lsn:Lsn.t -> Row.Key.t -> Row.t -> unit
(** Called when the propagator reaches the corresponding log records.
    [on_cc_ok] installs the image iff the check is still clean. *)

type stats = {
  mutable started : int;
  mutable confirmed : int;   (** image installed, flag now C *)
  mutable invalidated : int; (** dirtied between begin and ok *)
  mutable disagreed : int;   (** T records did not agree; retry later *)
}

val stats : t -> stats
