lib/core/merge.mli: Catalog Log_record Lsn Nbsc_storage Nbsc_value Nbsc_wal Record Row Spec Table
