lib/core/transform.mli: Analysis Consistency Db Foj Format Hsplit Manager Merge Nbsc_engine Nbsc_txn Spec Split
