lib/core/spec.mli: Catalog Nbsc_storage Nbsc_value Pred Row Schema
