lib/core/analysis.ml: Format
