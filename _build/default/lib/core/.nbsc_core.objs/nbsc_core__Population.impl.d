lib/core/population.ml: Foj Foj_common List Lsn Nbsc_storage Nbsc_value Nbsc_wal Record Row Split Table
