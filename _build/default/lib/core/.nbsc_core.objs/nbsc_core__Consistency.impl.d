lib/core/consistency.ml: Catalog List Log Log_record Lsn Nbsc_storage Nbsc_value Nbsc_wal Record Row Spec Split Table
