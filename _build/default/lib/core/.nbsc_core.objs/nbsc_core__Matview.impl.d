lib/core/matview.ml: Catalog Db Foj Foj_mm List Manager Nbsc_engine Nbsc_storage Nbsc_txn Nbsc_wal Population Propagator Spec
