lib/core/population.mli: Foj Nbsc_storage Record Split Table
