lib/core/matview.mli: Db Nbsc_engine Spec
