lib/core/foj.ml: Foj_common List Nbsc_storage Nbsc_value Nbsc_wal Record Row Schema Spec String Table Value
