lib/core/foj_common.mli: Catalog Lsn Nbsc_storage Nbsc_value Nbsc_wal Record Row Spec Table Value
