lib/core/analysis.mli: Format
