lib/core/spec.ml: Catalog Format Fun List Nbsc_storage Nbsc_value Pred Row Schema String Table
