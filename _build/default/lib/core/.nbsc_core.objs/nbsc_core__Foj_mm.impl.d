lib/core/foj_mm.ml: Foj Foj_common List Nbsc_storage Nbsc_value Nbsc_wal Record Row Schema Spec String Table Value
