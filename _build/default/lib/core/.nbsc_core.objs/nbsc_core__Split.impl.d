lib/core/split.ml: Catalog Fun List Log_record Lsn Nbsc_storage Nbsc_value Nbsc_wal Record Row Schema Spec String Table
