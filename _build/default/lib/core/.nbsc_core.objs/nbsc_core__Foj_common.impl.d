lib/core/foj_common.ml: Array Catalog Format List Nbsc_storage Nbsc_value Record Row Schema Spec Table Value
