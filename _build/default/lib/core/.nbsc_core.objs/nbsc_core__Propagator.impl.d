lib/core/propagator.ml: Compat Consistency List Lock_table Log Log_record Lsn Manager Nbsc_lock Nbsc_txn Nbsc_value Nbsc_wal Row String
