lib/core/propagator.mli: Consistency Log_record Lsn Manager Nbsc_txn Nbsc_value Nbsc_wal Row
