lib/core/merge.ml: Catalog List Log_record Lsn Nbsc_storage Nbsc_wal Record Spec String Table
