lib/core/foj_mm.mli: Foj Log_record Lsn Nbsc_value Nbsc_wal Row
