lib/core/consistency.mli: Catalog Log Lsn Nbsc_storage Nbsc_value Nbsc_wal Row Split
