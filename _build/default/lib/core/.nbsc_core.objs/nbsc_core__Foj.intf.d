lib/core/foj.mli: Catalog Foj_common Log_record Lsn Nbsc_storage Nbsc_value Nbsc_wal Row Spec
