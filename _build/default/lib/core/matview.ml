open Nbsc_storage
open Nbsc_txn
open Nbsc_engine
module Lsn = Nbsc_wal.Lsn
module Log = Nbsc_wal.Log
module Log_record = Nbsc_wal.Log_record

type config = {
  scan_batch : int;
  propagate_batch : int;
}

let default_config = { scan_batch = 256; propagate_batch = 256 }

type t = {
  db : Db.t;
  config : config;
  name : string;
  pop : Population.t;
  prop : Propagator.t;
  mutable dropped : bool;
}

let create db ?(config = default_config) spec =
  let catalog = Db.catalog db in
  let layout = Spec.foj_layout catalog spec in
  ignore
    (Catalog.create_table catalog
       ~indexes:(Spec.foj_t_indexes layout)
       ~name:spec.Spec.t_table (Spec.foj_t_schema layout));
  let fj = Foj.create catalog layout in
  let r_tbl = Catalog.find catalog spec.Spec.r_table in
  let s_tbl = Catalog.find catalog spec.Spec.s_table in
  let pop = Population.foj fj ~r_tbl ~s_tbl in
  let apply =
    if spec.Spec.many_to_many then Foj_mm.apply fj else Foj.apply fj
  in
  let rules =
    Propagator.rules ~transfer_locks:false
      ~sources:[ spec.Spec.r_table; spec.Spec.s_table ]
      ~targets:[ spec.Spec.t_table ]
      ~apply:(fun ~lsn op ->
          List.map (fun k -> (spec.Spec.t_table, k)) (apply ~lsn op))
      ()
  in
  let mgr = Db.manager db in
  (* Same fuzzy-mark discipline as a transformation: propagation starts
     at the first record of any transaction active at the mark. *)
  let active = Manager.active_snapshot mgr in
  let mark =
    Log.append (Manager.log mgr) ~txn:Log_record.system_txn ~prev_lsn:Lsn.zero
      (Log_record.Fuzzy_mark { active })
  in
  let from =
    List.fold_left
      (fun acc (_, first) -> if Lsn.(first < acc) then first else acc)
      mark active
  in
  { db;
    config;
    name = spec.Spec.t_table;
    pop;
    prop = Propagator.create mgr rules ~from;
    dropped = false }

let populated t = Population.finished t.pop

let step t =
  if t.dropped then false
  else if not (Population.finished t.pop) then begin
    ignore (Population.step t.pop ~limit:t.config.scan_batch);
    true
  end
  else Propagator.step t.prop ~limit:t.config.propagate_batch > 0

let refresh t =
  if not t.dropped then begin
    while not (Population.finished t.pop) do
      ignore (Population.step t.pop ~limit:max_int)
    done;
    ignore (Propagator.run_to_head t.prop)
  end

let lag t = Propagator.lag t.prop
let table t = t.name

let drop t =
  if not t.dropped then begin
    t.dropped <- true;
    if Catalog.mem (Db.catalog t.db) t.name then
      Catalog.drop (Db.catalog t.db) t.name
  end
