(** Merge (union) propagation.

    Several same-schema source tables merged into one target. Target
    records inherit the sources' LSNs; logged operations apply only
    when newer. On a key collision between sources the highest LSN
    wins — callers should merge tables with disjoint keys (the spec
    documents this), but the rule is convergent either way. *)

open Nbsc_value
open Nbsc_wal
open Nbsc_storage

type t

val create : Catalog.t -> Spec.merge_layout -> t

val layout : t -> Spec.merge_layout
val target : t -> Table.t

val ingest_initial : t -> Record.t -> unit
val apply : t -> lsn:Lsn.t -> Log_record.op -> (string * Row.Key.t) list

type stats = {
  mutable applied : int;
  mutable ignored : int;
  mutable foreign : int;
  mutable collisions : int;  (** same key seen from two sources *)
}

val stats : t -> stats
