type policy =
  | Remaining_records of int
  | Iteration_shrink of { factor : float; floor : int }
  | Estimated_time of { max_steps : float }

type t = {
  policy : policy;
  mutable current_cycle : int;   (* records consumed this cycle *)
  mutable previous_cycle : int option;
  mutable last_cycle_ok : bool;  (* Iteration_shrink verdict *)
  mutable rate : float;          (* EWMA of net lag drain per step *)
  mutable rate_primed : bool;
  mutable last_lag : int option;
}

let create policy =
  { policy;
    current_cycle = 0;
    previous_cycle = None;
    last_cycle_ok = false;
    rate = 0.;
    rate_primed = false;
    last_lag = None }

let observe t ~lag ~consumed =
  t.current_cycle <- t.current_cycle + consumed;
  (match t.last_lag with
   | Some prev ->
     let drain = float_of_int (prev - lag) in
     if t.rate_primed then t.rate <- (0.8 *. t.rate) +. (0.2 *. drain)
     else begin
       t.rate <- drain;
       t.rate_primed <- true
     end
   | None -> ());
  t.last_lag <- Some lag

let end_iteration t =
  (match t.policy with
   | Iteration_shrink { factor; floor } ->
     let ok =
       t.current_cycle <= floor
       ||
       match t.previous_cycle with
       | Some prev ->
         float_of_int t.current_cycle <= factor *. float_of_int prev
       | None -> false
     in
     t.last_cycle_ok <- ok
   | Remaining_records _ | Estimated_time _ -> ());
  t.previous_cycle <- Some t.current_cycle;
  t.current_cycle <- 0

let ready t ~lag =
  match t.policy with
  | Remaining_records n -> lag <= n
  | Iteration_shrink { floor; _ } -> t.last_cycle_ok || lag <= min floor 1
  | Estimated_time { max_steps } ->
    lag = 0
    || (t.rate > 0. && float_of_int lag /. t.rate <= max_steps)

let default = Remaining_records 8

let pp_policy ppf = function
  | Remaining_records n -> Format.fprintf ppf "remaining-records<=%d" n
  | Iteration_shrink { factor; floor } ->
    Format.fprintf ppf "iteration-shrink(x%.2f, floor %d)" factor floor
  | Estimated_time { max_steps } ->
    Format.fprintf ppf "estimated-time<=%.1f steps" max_steps
