open Nbsc_value
open Nbsc_wal
open Nbsc_storage
module C = Foj_common

type foj_phase =
  | Scan_s
  | Scan_r
  | Leftovers of (Row.t * bool ref) list
  | F_done

type foj_state = {
  f : Foj.t;
  s_cursor : Table.Fuzzy_cursor.t;
  r_cursor : Table.Fuzzy_cursor.t;
  (* join value -> S rows seen with it (one in a clean one-to-many) *)
  s_hash : (Row.t * bool ref) list Row.Key.Tbl.t;
  mutable fphase : foj_phase;
}

type split_state = {
  sp : Split.t;
  t_cursor : Table.Fuzzy_cursor.t;
  mutable s_done : bool;
}

type scan_state = {
  mutable cursors : Table.Fuzzy_cursor.t list;
  ingest : Record.t -> unit;
}

type state = P_foj of foj_state | P_split of split_state | P_scan of scan_state

type t = {
  state : state;
  mutable scanned : int;
  mutable produced : int;
}

let foj f ~r_tbl ~s_tbl =
  { state =
      P_foj
        { f;
          s_cursor = Table.Fuzzy_cursor.make s_tbl;
          r_cursor = Table.Fuzzy_cursor.make r_tbl;
          s_hash = Row.Key.Tbl.create 1024;
          fphase = Scan_s };
    scanned = 0;
    produced = 0 }

let split sp ~t_tbl =
  { state = P_split { sp; t_cursor = Table.Fuzzy_cursor.make t_tbl; s_done = false };
    scanned = 0;
    produced = 0 }

let scan_many tables ~ingest =
  { state =
      P_scan { cursors = List.map Table.Fuzzy_cursor.make tables; ingest };
    scanned = 0;
    produced = 0 }

let scan_one table ~ingest = scan_many [ table ] ~ingest

let put_initial t cctx ~presence row =
  ignore (C.put cctx ~lsn:Lsn.zero ~presence row);
  t.produced <- t.produced + 1

let foj_step t fs ~limit =
  let cctx = Foj.ctx fs.f in
  let l = cctx.C.layout in
  match fs.fphase with
  | Scan_s ->
    let batch = Table.Fuzzy_cursor.next_batch fs.s_cursor ~limit in
    t.scanned <- t.scanned + List.length batch;
    List.iter
      (fun (record : Record.t) ->
         let srow = record.Record.row in
         let j = C.join_of_s_row l srow in
         let entry = (srow, ref false) in
         let existing =
           match Row.Key.Tbl.find_opt fs.s_hash j with
           | Some e -> e
           | None -> []
         in
         Row.Key.Tbl.replace fs.s_hash j (entry :: existing))
      batch;
    if Table.Fuzzy_cursor.finished fs.s_cursor then fs.fphase <- Scan_r;
    false
  | Scan_r ->
    let batch = Table.Fuzzy_cursor.next_batch fs.r_cursor ~limit in
    t.scanned <- t.scanned + List.length batch;
    List.iter
      (fun (record : Record.t) ->
         let rrow = record.Record.row in
         let j = C.join_of_r_row l rrow in
         let matches =
           if Row.Key.has_null j then []
           else
             match Row.Key.Tbl.find_opt fs.s_hash j with
             | Some entries -> entries
             | None -> []
         in
         match matches with
         | [] ->
           let row, bits = C.t_row_of_sources l ~r:(Some rrow) ~s:None in
           put_initial t cctx ~presence:bits row
         | entries ->
           List.iter
             (fun (srow, matched) ->
                matched := true;
                let row, bits =
                  C.t_row_of_sources l ~r:(Some rrow) ~s:(Some srow)
                in
                put_initial t cctx ~presence:bits row)
             entries)
      batch;
    if Table.Fuzzy_cursor.finished fs.r_cursor then begin
      let leftovers =
        Row.Key.Tbl.fold (fun _ entries acc -> entries @ acc) fs.s_hash []
        |> List.filter (fun (_, matched) -> not !matched)
      in
      fs.fphase <- Leftovers leftovers
    end;
    false
  | Leftovers remaining ->
    let rec emit n rest =
      if n >= limit then rest
      else
        match rest with
        | [] -> []
        | (srow, _) :: rest ->
          let row, bits = C.t_row_of_sources l ~r:None ~s:(Some srow) in
          put_initial t cctx ~presence:bits row;
          t.scanned <- t.scanned + 1;
          emit (n + 1) rest
    in
    (match emit 0 remaining with
     | [] ->
       fs.fphase <- F_done;
       true
     | rest ->
       fs.fphase <- Leftovers rest;
       false)
  | F_done -> true

let split_step t ss ~limit =
  if ss.s_done then true
  else begin
    let batch = Table.Fuzzy_cursor.next_batch ss.t_cursor ~limit in
    t.scanned <- t.scanned + List.length batch;
    List.iter
      (fun record ->
         Split.ingest_initial ss.sp record;
         t.produced <- t.produced + 1)
      batch;
    if Table.Fuzzy_cursor.finished ss.t_cursor then begin
      ss.s_done <- true;
      true
    end
    else false
  end

let scan_step t sc ~limit =
  match sc.cursors with
  | [] -> true
  | cursor :: rest ->
    let batch = Table.Fuzzy_cursor.next_batch cursor ~limit in
    t.scanned <- t.scanned + List.length batch;
    List.iter
      (fun record ->
         sc.ingest record;
         t.produced <- t.produced + 1)
      batch;
    if Table.Fuzzy_cursor.finished cursor then sc.cursors <- rest;
    sc.cursors = []

let step t ~limit =
  match t.state with
  | P_foj fs -> foj_step t fs ~limit
  | P_split ss -> split_step t ss ~limit
  | P_scan sc -> scan_step t sc ~limit

let finished t =
  match t.state with
  | P_foj fs -> fs.fphase = F_done
  | P_split ss -> ss.s_done
  | P_scan sc -> sc.cursors = []

let scanned t = t.scanned
let produced t = t.produced
