(** Table latches.

    The synchronization step latches the source tables for one final
    log propagation iteration (paper, Sec. 3.4): while a table is
    latched, ongoing transactions attempting to operate on it pause.
    Latches are short-lived and exclusive; they are held by a process
    id (the transformation), not by a transaction. *)

type t

type holder = int

val create : unit -> t

val try_latch : t -> holder:holder -> table:string -> bool
(** [true] if acquired (or already held by [holder]). *)

val unlatch : t -> holder:holder -> table:string -> unit
(** @raise Invalid_argument if [holder] does not hold the latch. *)

val is_latched : t -> table:string -> bool
val latched_by : t -> table:string -> holder option
val latched_tables : t -> holder:holder -> string list
