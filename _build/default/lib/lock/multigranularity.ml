type mode = IS | IX | S | SIX | X

let standard a b =
  match a, b with
  | IS, (IS | IX | S | SIX) | (IX | S | SIX), IS -> true
  | IX, IX -> true
  | S, S -> true
  | _ -> false

let implied_intent = function Compat.S -> IS | Compat.X -> IX

type glock = {
  gmode : mode;
  gprovenance : Compat.provenance;
}

let read_only = function IS | S -> true | IX | SIX | X -> false

let compatible a b =
  match a.gprovenance, b.gprovenance with
  | Compat.Source _, Compat.Source _ -> true
  | Compat.Native, Compat.Native -> standard a.gmode b.gmode
  | Compat.Native, Compat.Source _ | Compat.Source _, Compat.Native ->
    read_only a.gmode && read_only b.gmode

let all_modes = [ IS; IX; S; SIX; X ]

let all_provenances = [ Compat.Source 0; Compat.Source 1; Compat.Native ]

let matrix () =
  List.concat_map
    (fun pm ->
       List.concat_map
         (fun pp ->
            List.concat_map
              (fun m ->
                 List.map
                   (fun m' ->
                      let a = { gmode = m; gprovenance = pm } in
                      let b = { gmode = m'; gprovenance = pp } in
                      (a, b, compatible a b))
                   all_modes)
              all_modes)
         all_provenances)
    all_provenances
  (* 3 provenances x 3 provenances x 5 x 5 = 225 cells *)

(* Mode lattice join, for upgrades: the weakest mode at least as strong
   as both. *)
let join a b =
  if a = b then a
  else
    match a, b with
    | X, _ | _, X -> X
    | SIX, _ | _, SIX -> SIX
    | S, IX | IX, S -> SIX
    | S, IS | IS, S -> S
    | IX, IS | IS, IX -> IX
    | _ -> X

module Table_locks = struct
  type t = (string, (Lock_table.owner * glock) list ref) Hashtbl.t

  type outcome =
    | Granted
    | Blocked of Lock_table.owner list

  let create () : t = Hashtbl.create 16

  let grants t table =
    match Hashtbl.find_opt t table with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add t table r;
      r

  let acquire t ~owner ~table glock =
    let held = grants t table in
    let requested =
      (* Upgrade path: join with what this owner already holds in the
         same provenance class. *)
      match
        List.find_opt
          (fun (o, g) -> o = owner && g.gprovenance = glock.gprovenance)
          !held
      with
      | Some (_, g) -> { glock with gmode = join g.gmode glock.gmode }
      | None -> glock
    in
    let blockers =
      List.filter_map
        (fun (o, g) ->
           if o = owner then None
           else if compatible g requested then None
           else Some o)
        !held
      |> List.sort_uniq Int.compare
    in
    if blockers <> [] then Blocked blockers
    else begin
      held :=
        (owner, requested)
        :: List.filter
            (fun (o, g) ->
               not (o = owner && g.gprovenance = requested.gprovenance))
            !held;
      Granted
    end

  let release_owner t ~owner =
    Hashtbl.iter
      (fun _ held -> held := List.filter (fun (o, _) -> o <> owner) !held)
      t

  let holders t ~table =
    match Hashtbl.find_opt t table with Some r -> !r | None -> []
end

let pp_mode ppf m =
  Format.pp_print_string ppf
    (match m with IS -> "IS" | IX -> "IX" | S -> "S" | SIX -> "SIX" | X -> "X")
