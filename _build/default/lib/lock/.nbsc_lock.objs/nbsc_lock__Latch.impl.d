lib/lock/latch.ml: Hashtbl Printf
