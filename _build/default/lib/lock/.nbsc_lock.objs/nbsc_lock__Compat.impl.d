lib/lock/compat.ml: Format List String
