lib/lock/latch.mli:
