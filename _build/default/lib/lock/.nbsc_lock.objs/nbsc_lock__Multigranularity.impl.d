lib/lock/multigranularity.ml: Compat Format Hashtbl Int List Lock_table
