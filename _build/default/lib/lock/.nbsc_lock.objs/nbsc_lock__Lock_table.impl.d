lib/lock/lock_table.ml: Compat Hashtbl Int List Nbsc_value Row String
