lib/lock/lock_table.mli: Compat Nbsc_value Row
