lib/lock/compat.mli: Format
