lib/lock/multigranularity.mli: Compat Format Lock_table
