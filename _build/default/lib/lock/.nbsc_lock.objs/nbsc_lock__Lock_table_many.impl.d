lib/lock/lock_table_many.ml: Compat Int List Lock_table Nbsc_value Row
