(** Multigranularity locking — the extension the paper notes for its
    Figure 2 matrix ("The compatibility matrix can easily be extended
    to multigranularity locking", Sec. 4.3).

    Classic intent modes IS/IX/S/SIX/X at table granularity, combined
    with lock provenance: locks transferred from the source tables are
    mutually compatible (their conflicts were resolved at the source),
    and a transferred lock is compatible with a native one exactly when
    neither side implies a write (both within {IS, S}) — the same
    principle as the record-level Figure 2 matrix, lifted to intent
    modes. *)

type mode = IS | IX | S | SIX | X

val standard : mode -> mode -> bool
(** The textbook intent-mode matrix. *)

val implied_intent : Compat.mode -> mode
(** The table-level intent a record lock requires: S -> IS, X -> IX. *)

type glock = {
  gmode : mode;
  gprovenance : Compat.provenance;
}

val compatible : glock -> glock -> bool
(** The Figure 2 principle over intent modes (see module doc). *)

val matrix : unit -> (glock * glock * bool) list
(** Every (held, requested, compatible) combination over both modes and
    the three provenance classes of Figure 2 — 225 cells; tests check
    its structural properties. *)

(** Table-granularity lock manager using {!compatible}; pairs with the
    record-level {!Lock_table} (take the intent first, then the record
    lock). *)
module Table_locks : sig
  type t

  type outcome =
    | Granted
    | Blocked of Lock_table.owner list

  val create : unit -> t

  val acquire :
    t -> owner:Lock_table.owner -> table:string -> glock -> outcome
  (** Re-acquisition upgrades to the join of held and requested mode
      (e.g. holding S and asking IX yields SIX). *)

  val release_owner : t -> owner:Lock_table.owner -> unit
  val holders : t -> table:string -> (Lock_table.owner * glock) list
end

val pp_mode : Format.formatter -> mode -> unit
