type holder = int

type t = (string, holder) Hashtbl.t

let create () : t = Hashtbl.create 16

let try_latch t ~holder ~table =
  match Hashtbl.find_opt t table with
  | None ->
    Hashtbl.replace t table holder;
    true
  | Some h -> h = holder

let unlatch t ~holder ~table =
  match Hashtbl.find_opt t table with
  | Some h when h = holder -> Hashtbl.remove t table
  | Some _ | None ->
    invalid_arg (Printf.sprintf "Latch.unlatch: %d does not hold %s" holder table)

let is_latched t ~table = Hashtbl.mem t table
let latched_by t ~table = Hashtbl.find_opt t table

let latched_tables t ~holder =
  Hashtbl.fold (fun table h acc -> if h = holder then table :: acc else acc) t []
