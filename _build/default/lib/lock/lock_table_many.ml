(* Atomic multi-resource acquisition: used by the non-blocking-commit
   synchronization strategy, where one user operation must lock the
   record in its own table AND the corresponding records in the other
   schema version (paper, Sec. 4.3: "If a transaction cannot get a lock
   on all implicated records in all tables, it is not allowed to go
   forward with the operation"). *)

open Nbsc_value

type request = {
  table : string;
  key : Row.Key.t;
  lock : Compat.lock;
}

let acquire_all t ~owner requests =
  (* Dry-run: collect every conflict before granting anything. *)
  let blockers =
    List.concat_map
      (fun r ->
         List.filter_map
           (fun (o, held) ->
              if o = owner then None
              else if Compat.compatible held r.lock then None
              else Some o)
           (Lock_table.holders t ~table:r.table ~key:r.key))
      requests
    |> List.sort_uniq Int.compare
  in
  if blockers <> [] then Lock_table.Blocked blockers
  else begin
    List.iter
      (fun r ->
         match Lock_table.acquire t ~owner ~table:r.table ~key:r.key r.lock with
         | Lock_table.Granted -> ()
         | Lock_table.Blocked _ ->
           (* Impossible: the dry run found no conflicts and nothing
              interleaves between the check and the grant. *)
           assert false)
      requests;
    Lock_table.Granted
  end
