(** Lock modes and compatibility, including the paper's Figure 2.

    During the non-blocking synchronization strategies, locks held on
    the source tables R and S are {e transferred} to the transformed
    table T. Two transferred locks never conflict with each other —
    their conflicts were already resolved by the concurrency controller
    of the source tables, and operations on R and S touch disjoint
    attributes of T. They do conflict with locks taken natively on T by
    new transactions (paper, Sec. 4.3, Fig. 2). We model this with a
    {e provenance} on every lock. *)

type mode = S | X

(** Where a lock on a record came from. [Source i] marks a lock
    transferred from source table number [i] (0 for R, 1 for S; the
    index only matters for printing — all transferred locks are
    mutually compatible). *)
type provenance = Native | Source of int

type lock = {
  mode : mode;
  provenance : provenance;
}

val standard : mode -> mode -> bool
(** The ordinary S/X matrix: only S/S is compatible. *)

val compatible : lock -> lock -> bool
(** The Figure 2 matrix, generalized: transferred locks are mutually
    compatible; a native lock and a transferred lock are compatible
    only if both are shared; two native locks follow {!standard}. *)

val pp_mode : Format.formatter -> mode -> unit
val pp_provenance : Format.formatter -> provenance -> unit
val pp_lock : Format.formatter -> lock -> unit

val figure2_order : lock list
(** The six lock classes in the paper's row/column order:
    R.r, S.r, T.r, R.w, S.w, T.w. *)

val figure2_cells : unit -> bool list list
(** The 6x6 matrix of {!compatible} over {!figure2_order} — tests check
    this equals the 36 cells printed in the paper. *)

val pp_figure2 : Format.formatter -> unit -> unit
(** Render the matrix like the paper's Figure 2. *)
