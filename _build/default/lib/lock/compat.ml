type mode = S | X

type provenance = Native | Source of int

type lock = {
  mode : mode;
  provenance : provenance;
}

let standard a b = match a, b with S, S -> true | _ -> false

let compatible a b =
  match a.provenance, b.provenance with
  | Source _, Source _ -> true
  | Native, Native -> standard a.mode b.mode
  | Native, Source _ | Source _, Native -> a.mode = S && b.mode = S

let pp_mode ppf m = Format.pp_print_string ppf (match m with S -> "S" | X -> "X")

let pp_provenance ppf = function
  | Native -> Format.pp_print_string ppf "T"
  | Source 0 -> Format.pp_print_string ppf "R"
  | Source 1 -> Format.pp_print_string ppf "S"
  | Source i -> Format.fprintf ppf "src%d" i

let pp_lock ppf l =
  Format.fprintf ppf "%a.%s" pp_provenance l.provenance
    (match l.mode with S -> "r" | X -> "w")

let figure2_order =
  [ { mode = S; provenance = Source 0 };
    { mode = S; provenance = Source 1 };
    { mode = S; provenance = Native };
    { mode = X; provenance = Source 0 };
    { mode = X; provenance = Source 1 };
    { mode = X; provenance = Native } ]

let figure2_cells () =
  List.map
    (fun held -> List.map (fun req -> compatible held req) figure2_order)
    figure2_order

let pp_figure2 ppf () =
  let label l = Format.asprintf "%a" pp_lock l in
  Format.fprintf ppf "     %s@."
    (String.concat "  " (List.map label figure2_order));
  List.iter2
    (fun held row ->
       Format.fprintf ppf "%s  %s@." (label held)
         (String.concat "    "
            (List.map (fun ok -> if ok then "y" else "n") row)))
    figure2_order (figure2_cells ())
