type token =
  | Ident of string
  | Int of int
  | Float of float
  | String of string
  | Punct of string
  | Eof

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "identifier %S" s
  | Int i -> Format.fprintf ppf "integer %d" i
  | Float f -> Format.fprintf ppf "float %g" f
  | String s -> Format.fprintf ppf "string %S" s
  | Punct p -> Format.fprintf ppf "%S" p
  | Eof -> Format.pp_print_string ppf "end of input"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let toks = ref [] in
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  let rec go i =
    if i >= n then Ok (List.rev (Eof :: !toks))
    else
      let c = input.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1)
      else if c = '-' && i + 1 < n && input.[i + 1] = '-' then begin
        (* line comment *)
        let rec skip j = if j < n && input.[j] <> '\n' then skip (j + 1) else j in
        go (skip i)
      end
      else if is_ident_start c then begin
        let j = ref i in
        while !j < n && is_ident input.[!j] do incr j done;
        toks := Ident (String.sub input i (!j - i)) :: !toks;
        go !j
      end
      else if is_digit c || (c = '-' && i + 1 < n && is_digit input.[i + 1])
      then begin
        let j = ref (i + 1) in
        while !j < n && (is_digit input.[!j] || input.[!j] = '.') do incr j done;
        let text = String.sub input i (!j - i) in
        (match int_of_string_opt text with
         | Some v -> toks := Int v :: !toks
         | None ->
           (match float_of_string_opt text with
            | Some v -> toks := Float v :: !toks
            | None -> raise Exit));
        go !j
      end
      else if c = '\'' then begin
        let buf = Buffer.create 16 in
        let rec scan j =
          if j >= n then err "unterminated string at offset %d" i
          else if input.[j] = '\'' then
            if j + 1 < n && input.[j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              scan (j + 2)
            end
            else begin
              toks := String (Buffer.contents buf) :: !toks;
              go (j + 1)
            end
          else begin
            Buffer.add_char buf input.[j];
            scan (j + 1)
          end
        in
        scan (i + 1)
      end
      else
        let two =
          if i + 1 < n then String.sub input i 2 else ""
        in
        match two with
        | "<=" | ">=" | "<>" ->
          toks := Punct two :: !toks;
          go (i + 2)
        | _ ->
          (match c with
           | '(' | ')' | ',' | ';' | '*' | '=' | '<' | '>' | '.' ->
             toks := Punct (String.make 1 c) :: !toks;
             go (i + 1)
           | _ -> err "unexpected character %C at offset %d" c i)
  in
  try go 0 with Exit -> Error "malformed number"
