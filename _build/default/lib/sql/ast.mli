(** Abstract syntax of the SQL-ish command language.

    Enough surface to drive the engine and the transformation framework
    interactively: DDL, DML, simple queries, transaction control, and a
    TRANSFORM family mapping onto {!Nbsc_core.Transform}. *)

open Nbsc_value

type column_def = {
  cd_name : string;
  cd_type : Value.ty;
  cd_not_null : bool;
}

type statement =
  | Create_table of {
      name : string;
      columns : column_def list;
      primary_key : string list;
    }
  | Drop_table of string
  | Create_index of { index : string; on_table : string; columns : string list }
  | Insert of { table : string; rows : Value.t list list }
  | Update of {
      table : string;
      assignments : (string * Value.t) list;
      where : Pred.t;
    }
  | Delete of { table : string; where : Pred.t }
  | Select of {
      projection : string list option;  (** None = [*] *)
      table : string;
      where : Pred.t;
    }
  | Begin_txn
  | Commit_txn
  | Rollback_txn
  | Show_tables
  | Transform_join of {
      r : string;
      s : string;
      target : string;
      join_r : string;
      join_s : string;
      carry_r : string list;
      carry_s : string list;
      many_to_many : bool;
    }
  | Transform_split of {
      source : string;
      r_target : string;
      r_cols : string list;
      s_target : string;
      s_cols : string list;
      split_on : string list;
      checked : bool;
    }
  | Transform_archive of {
      source : string;
      match_target : string;
      rest_target : string;
      where : Pred.t;
    }
  | Transform_merge of { sources : string list; target : string }
  | Transform_status
  | Transform_step of int
  | Transform_run
  | Transform_abort

val pp : Format.formatter -> statement -> unit
