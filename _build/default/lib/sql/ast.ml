open Nbsc_value

type column_def = {
  cd_name : string;
  cd_type : Value.ty;
  cd_not_null : bool;
}

type statement =
  | Create_table of {
      name : string;
      columns : column_def list;
      primary_key : string list;
    }
  | Drop_table of string
  | Create_index of { index : string; on_table : string; columns : string list }
  | Insert of { table : string; rows : Value.t list list }
  | Update of {
      table : string;
      assignments : (string * Value.t) list;
      where : Pred.t;
    }
  | Delete of { table : string; where : Pred.t }
  | Select of {
      projection : string list option;
      table : string;
      where : Pred.t;
    }
  | Begin_txn
  | Commit_txn
  | Rollback_txn
  | Show_tables
  | Transform_join of {
      r : string;
      s : string;
      target : string;
      join_r : string;
      join_s : string;
      carry_r : string list;
      carry_s : string list;
      many_to_many : bool;
    }
  | Transform_split of {
      source : string;
      r_target : string;
      r_cols : string list;
      s_target : string;
      s_cols : string list;
      split_on : string list;
      checked : bool;
    }
  | Transform_archive of {
      source : string;
      match_target : string;
      rest_target : string;
      where : Pred.t;
    }
  | Transform_merge of { sources : string list; target : string }
  | Transform_status
  | Transform_step of int
  | Transform_run
  | Transform_abort

let pp ppf = function
  | Create_table { name; _ } -> Format.fprintf ppf "CREATE TABLE %s" name
  | Drop_table name -> Format.fprintf ppf "DROP TABLE %s" name
  | Create_index { index; on_table; _ } ->
    Format.fprintf ppf "CREATE INDEX %s ON %s" index on_table
  | Insert { table; rows } ->
    Format.fprintf ppf "INSERT INTO %s (%d rows)" table (List.length rows)
  | Update { table; _ } -> Format.fprintf ppf "UPDATE %s" table
  | Delete { table; _ } -> Format.fprintf ppf "DELETE FROM %s" table
  | Select { table; _ } -> Format.fprintf ppf "SELECT ... FROM %s" table
  | Begin_txn -> Format.pp_print_string ppf "BEGIN"
  | Commit_txn -> Format.pp_print_string ppf "COMMIT"
  | Rollback_txn -> Format.pp_print_string ppf "ROLLBACK"
  | Show_tables -> Format.pp_print_string ppf "SHOW TABLES"
  | Transform_join { r; s; target; _ } ->
    Format.fprintf ppf "TRANSFORM JOIN %s, %s INTO %s" r s target
  | Transform_split { source; _ } ->
    Format.fprintf ppf "TRANSFORM SPLIT %s" source
  | Transform_archive { source; _ } ->
    Format.fprintf ppf "TRANSFORM ARCHIVE %s" source
  | Transform_merge { target; _ } ->
    Format.fprintf ppf "TRANSFORM MERGE INTO %s" target
  | Transform_status -> Format.pp_print_string ppf "TRANSFORM STATUS"
  | Transform_step n -> Format.fprintf ppf "TRANSFORM STEP %d" n
  | Transform_run -> Format.pp_print_string ppf "TRANSFORM RUN"
  | Transform_abort -> Format.pp_print_string ppf "TRANSFORM ABORT"
