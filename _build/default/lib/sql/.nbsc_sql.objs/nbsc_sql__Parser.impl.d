lib/sql/parser.ml: Ast Format Lexer List Nbsc_value Pred String Value
