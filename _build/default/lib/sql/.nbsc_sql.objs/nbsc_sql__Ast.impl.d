lib/sql/ast.ml: Format List Nbsc_value Pred Value
