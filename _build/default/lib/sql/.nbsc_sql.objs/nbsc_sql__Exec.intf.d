lib/sql/exec.mli: Ast Db Nbsc_core Nbsc_engine Nbsc_value Row Transform
