lib/sql/lexer.ml: Buffer Format List String
