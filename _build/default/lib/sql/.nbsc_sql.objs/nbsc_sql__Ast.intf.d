lib/sql/ast.mli: Format Nbsc_value Pred Value
