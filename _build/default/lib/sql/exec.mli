(** Executing parsed statements against a database.

    A session holds an optional explicit transaction (BEGIN/COMMIT) and
    at most one running transformation; statements outside an explicit
    transaction auto-commit. SELECT reads without locks (read
    uncommitted) — the REPL is an inspection tool, not a client
    library; programs should use {!Nbsc_txn.Manager} directly. *)

open Nbsc_value
open Nbsc_engine
open Nbsc_core

type session

val create : Db.t -> session
val db : session -> Db.t

val transformation : session -> Transform.t option
(** The transformation started by a TRANSFORM statement, if any. *)

type outcome =
  | Message of string
  | Rows of { header : string list; rows : Row.t list }

val exec : session -> Ast.statement -> (outcome, string) result

val exec_string : session -> string -> (outcome list, string) result
(** Parse and execute a ';'-separated script, stopping at the first
    error. *)

val render : outcome -> string
(** Human-readable rendering (aligned table for [Rows]). *)
