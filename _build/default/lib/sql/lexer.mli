(** Tokenizer for the SQL-ish language. Keywords are case-insensitive;
    identifiers keep their case. Strings use single quotes with ['']
    escaping. *)

type token =
  | Ident of string
  | Int of int
  | Float of float
  | String of string
  | Punct of string  (** one of ( ) , ; * = <> < <= > >= . *)
  | Eof

val tokenize : string -> (token list, string) result
(** The error is a human-readable message with position. *)

val pp_token : Format.formatter -> token -> unit
