(** Recursive-descent parser for the SQL-ish language; see the grammar
    summary in the repository README and the cases in {!Ast}. *)

val parse : string -> (Ast.statement, string) result
(** One statement, optionally ';'-terminated. The error is a
    human-readable message. *)

val parse_many : string -> (Ast.statement list, string) result
(** A ';'-separated script. *)
