open Nbsc_value

exception Parse_error of string

type cursor = {
  mutable toks : Lexer.token list;
}

let fail fmt = Format.kasprintf (fun m -> raise (Parse_error m)) fmt

let peek c = match c.toks with [] -> Lexer.Eof | t :: _ -> t

let advance c =
  match c.toks with [] -> () | _ :: rest -> c.toks <- rest

let next c =
  let t = peek c in
  advance c;
  t

(* Keywords are case-insensitive identifiers. *)
let kw_of = function
  | Lexer.Ident s -> Some (String.uppercase_ascii s)
  | _ -> None

let peek_kw c = kw_of (peek c)

let eat_kw c expected =
  match peek_kw c with
  | Some k when k = expected -> advance c
  | _ -> fail "expected %s, got %a" expected Lexer.pp_token (peek c)

let try_kw c expected =
  match peek_kw c with
  | Some k when k = expected ->
    advance c;
    true
  | _ -> false

let eat_punct c p =
  match peek c with
  | Lexer.Punct q when q = p -> advance c
  | t -> fail "expected %S, got %a" p Lexer.pp_token t

let try_punct c p =
  match peek c with
  | Lexer.Punct q when q = p ->
    advance c;
    true
  | _ -> false

let ident c =
  match next c with
  | Lexer.Ident s -> s
  | t -> fail "expected an identifier, got %a" Lexer.pp_token t

let comma_sep c item =
  let rec go acc =
    let x = item c in
    if try_punct c "," then go (x :: acc) else List.rev (x :: acc)
  in
  go []

let paren_idents c =
  eat_punct c "(";
  let xs = comma_sep c ident in
  eat_punct c ")";
  xs

let literal c =
  match next c with
  | Lexer.Int i -> Value.Int i
  | Lexer.Float f -> Value.Float f
  | Lexer.String s -> Value.Text s
  | Lexer.Ident s ->
    (match String.uppercase_ascii s with
     | "TRUE" -> Value.Bool true
     | "FALSE" -> Value.Bool false
     | "NULL" -> Value.Null
     | _ -> fail "expected a literal, got identifier %S" s)
  | t -> fail "expected a literal, got %a" Lexer.pp_token t

let value_ty c =
  let name = ident c in
  match String.uppercase_ascii name with
  | "INT" | "INTEGER" | "BIGINT" -> Value.TInt
  | "FLOAT" | "REAL" | "DOUBLE" -> Value.TFloat
  | "BOOL" | "BOOLEAN" -> Value.TBool
  | "TEXT" | "VARCHAR" | "STRING" ->
    (* tolerate VARCHAR(n) *)
    if try_punct c "(" then begin
      (match next c with Lexer.Int _ -> () | t -> fail "expected a length, got %a" Lexer.pp_token t);
      eat_punct c ")"
    end;
    Value.TText
  | other -> fail "unknown type %S" other

(* {1 Predicates} *)

let cmp_op c =
  match next c with
  | Lexer.Punct "=" -> Pred.Eq
  | Lexer.Punct "<>" -> Pred.Ne
  | Lexer.Punct "<" -> Pred.Lt
  | Lexer.Punct "<=" -> Pred.Le
  | Lexer.Punct ">" -> Pred.Gt
  | Lexer.Punct ">=" -> Pred.Ge
  | t -> fail "expected a comparison operator, got %a" Lexer.pp_token t

let rec pred_or c =
  let left = pred_and c in
  if try_kw c "OR" then Pred.Or (left, pred_or c) else left

and pred_and c =
  let left = pred_unary c in
  if try_kw c "AND" then Pred.And (left, pred_and c) else left

and pred_unary c =
  if try_kw c "NOT" then Pred.Not (pred_unary c) else pred_atom c

and pred_atom c =
  if try_punct c "(" then begin
    let p = pred_or c in
    eat_punct c ")";
    p
  end
  else
    match peek_kw c with
    | Some "TRUE" ->
      advance c;
      Pred.True
    | Some "FALSE" ->
      advance c;
      Pred.False
    | _ ->
      let col = ident c in
      if try_kw c "IS" then
        if try_kw c "NOT" then begin
          eat_kw c "NULL";
          Pred.Not (Pred.Is_null col)
        end
        else begin
          eat_kw c "NULL";
          Pred.Is_null col
        end
      else
        let op = cmp_op c in
        Pred.Cmp (col, op, literal c)

let where_clause c =
  if try_kw c "WHERE" then pred_or c else Pred.True

(* {1 Statements} *)

let create_index c =
  let index = ident c in
  eat_kw c "ON";
  let on_table = ident c in
  let columns = paren_idents c in
  Ast.Create_index { index; on_table; columns }

let create_table c =
  let name = ident c in
  eat_punct c "(";
  let columns = ref [] in
  let primary_key = ref [] in
  let rec members () =
    (match peek_kw c with
     | Some "PRIMARY" ->
       advance c;
       eat_kw c "KEY";
       primary_key := paren_idents c
     | _ ->
       let cd_name = ident c in
       let cd_type = value_ty c in
       let cd_not_null =
         if try_kw c "NOT" then begin
           eat_kw c "NULL";
           true
         end
         else false
       in
       columns := { Ast.cd_name; cd_type; cd_not_null } :: !columns);
    if try_punct c "," then members ()
  in
  members ();
  eat_punct c ")";
  if !primary_key = [] then fail "CREATE TABLE needs a PRIMARY KEY clause";
  Ast.Create_table
    { name; columns = List.rev !columns; primary_key = !primary_key }

let insert c =
  eat_kw c "INTO";
  let table = ident c in
  eat_kw c "VALUES";
  let tuple c =
    eat_punct c "(";
    let vs = comma_sep c literal in
    eat_punct c ")";
    vs
  in
  let rows = comma_sep c tuple in
  Ast.Insert { table; rows }

let update c =
  let table = ident c in
  eat_kw c "SET";
  let assignment c =
    let col = ident c in
    eat_punct c "=";
    (col, literal c)
  in
  let assignments = comma_sep c assignment in
  let where = where_clause c in
  Ast.Update { table; assignments; where }

let delete c =
  eat_kw c "FROM";
  let table = ident c in
  let where = where_clause c in
  Ast.Delete { table; where }

let select c =
  let projection =
    if try_punct c "*" then None else Some (comma_sep c ident)
  in
  eat_kw c "FROM";
  let table = ident c in
  let where = where_clause c in
  Ast.Select { projection; table; where }

(* TRANSFORM JOIN r, s INTO t ON r.c = s.c CARRY r (a, b) CARRY s (d)
   [MANY TO MANY] *)
let transform_join c =
  let r = ident c in
  eat_punct c ",";
  let s = ident c in
  eat_kw c "INTO";
  let target = ident c in
  eat_kw c "ON";
  let qualified c =
    let t = ident c in
    eat_punct c ".";
    (t, ident c)
  in
  let t1, col1 = qualified c in
  eat_punct c "=";
  let t2, col2 = qualified c in
  let join_r, join_s =
    if t1 = r && t2 = s then (col1, col2)
    else if t1 = s && t2 = r then (col2, col1)
    else fail "ON clause must relate %s and %s" r s
  in
  let carry tbl =
    eat_kw c "CARRY";
    let t = ident c in
    if t <> tbl then fail "expected CARRY %s, got CARRY %s" tbl t;
    paren_idents c
  in
  let carry_r = carry r in
  let carry_s = carry s in
  let many_to_many =
    if try_kw c "MANY" then begin
      eat_kw c "TO";
      eat_kw c "MANY";
      true
    end
    else false
  in
  Ast.Transform_join
    { r; s; target; join_r; join_s; carry_r; carry_s; many_to_many }

(* TRANSFORM SPLIT t INTO r (cols) AND s (cols) ON (cols) [CHECKED] *)
let transform_split c =
  let source = ident c in
  eat_kw c "INTO";
  let r_target = ident c in
  let r_cols = paren_idents c in
  eat_kw c "AND";
  let s_target = ident c in
  let s_cols = paren_idents c in
  eat_kw c "ON";
  let split_on = paren_idents c in
  let checked = try_kw c "CHECKED" in
  Ast.Transform_split
    { source; r_target; r_cols; s_target; s_cols; split_on; checked }

(* TRANSFORM ARCHIVE t INTO matched AND rest WHERE pred *)
let transform_archive c =
  let source = ident c in
  eat_kw c "INTO";
  let match_target = ident c in
  eat_kw c "AND";
  let rest_target = ident c in
  eat_kw c "WHERE";
  let where = pred_or c in
  Ast.Transform_archive { source; match_target; rest_target; where }

(* TRANSFORM MERGE a, b [, ...] INTO t *)
let transform_merge c =
  let sources = comma_sep c ident in
  eat_kw c "INTO";
  let target = ident c in
  Ast.Transform_merge { sources; target }

let transform c =
  match peek_kw c with
  | Some "JOIN" ->
    advance c;
    transform_join c
  | Some "SPLIT" ->
    advance c;
    transform_split c
  | Some "ARCHIVE" ->
    advance c;
    transform_archive c
  | Some "MERGE" ->
    advance c;
    transform_merge c
  | Some "STATUS" ->
    advance c;
    Ast.Transform_status
  | Some "STEP" ->
    advance c;
    (match peek c with
     | Lexer.Int n ->
       advance c;
       Ast.Transform_step n
     | _ -> Ast.Transform_step 1)
  | Some "RUN" ->
    advance c;
    Ast.Transform_run
  | Some "ABORT" ->
    advance c;
    Ast.Transform_abort
  | _ ->
    fail "expected JOIN, SPLIT, ARCHIVE, MERGE, STATUS, STEP, RUN or ABORT \
          after TRANSFORM"

let statement c =
  match peek_kw c with
  | Some "CREATE" ->
    advance c;
    (match peek_kw c with
     | Some "INDEX" ->
       advance c;
       create_index c
     | _ ->
       eat_kw c "TABLE";
       create_table c)
  | Some "DROP" ->
    advance c;
    eat_kw c "TABLE";
    Ast.Drop_table (ident c)
  | Some "INSERT" ->
    advance c;
    insert c
  | Some "UPDATE" ->
    advance c;
    update c
  | Some "DELETE" ->
    advance c;
    delete c
  | Some "SELECT" ->
    advance c;
    select c
  | Some "BEGIN" ->
    advance c;
    Ast.Begin_txn
  | Some "COMMIT" ->
    advance c;
    Ast.Commit_txn
  | Some ("ROLLBACK" | "ABORT") ->
    advance c;
    Ast.Rollback_txn
  | Some "SHOW" ->
    advance c;
    eat_kw c "TABLES";
    Ast.Show_tables
  | Some "TRANSFORM" ->
    advance c;
    transform c
  | _ -> fail "expected a statement, got %a" Lexer.pp_token (peek c)

let run input f =
  match Lexer.tokenize input with
  | Error m -> Error m
  | Ok toks -> (
      let c = { toks } in
      try Ok (f c) with Parse_error m -> Error m)

let parse input =
  run input (fun c ->
      let s = statement c in
      ignore (try_punct c ";");
      (match peek c with
       | Lexer.Eof -> ()
       | t -> fail "trailing input: %a" Lexer.pp_token t);
      s)

let parse_many input =
  run input (fun c ->
      let rec go acc =
        match peek c with
        | Lexer.Eof -> List.rev acc
        | _ ->
          let s = statement c in
          ignore (try_punct c ";");
          go (s :: acc)
      in
      go [])
