(** Typed attribute values.

    The engine stores every attribute as a [Value.t]. [Null] is a first
    class citizen because the full outer join transformation joins
    unmatched records with the special R-null / S-null records, whose
    attributes are all [Null] (paper, Sec. 4.1). *)

type t =
  | Null
  | Int of int
  | Float of float
  | Bool of bool
  | Text of string

(** Value type descriptors, used by schemas. *)
type ty = TInt | TFloat | TBool | TText

val type_of : t -> ty option
(** [type_of v] is the type of [v], or [None] for [Null]. *)

val compare : t -> t -> int
(** Total order. [Null] sorts before every non-null value; values of
    different types are ordered by type tag. *)

val equal : t -> t -> bool

val hash : t -> int

val is_null : t -> bool

val pp : Format.formatter -> t -> unit

val pp_ty : Format.formatter -> ty -> unit

val to_string : t -> string

val encode : t -> string
(** Compact tagged encoding, inverse of {!decode}. Used by the log
    codec; round-trips exactly (including NaN floats and strings with
    arbitrary bytes). *)

val decode : string -> t
(** @raise Failure on malformed input. *)

(* Convenience constructors. *)
val int : int -> t
val float : float -> t
val bool : bool -> t
val text : string -> t
