(** Table schemas.

    A schema names the columns of a table, gives each a type and
    nullability, and distinguishes one {e primary key} (a non-empty set
    of column positions). Transformed tables built by the framework must
    carry a candidate key of every source table (paper, Sec. 3.1); the
    schema type supports declaring such extra candidate keys so the
    framework can validate a transformation before it starts. *)

type column = {
  col_name : string;
  col_ty : Value.ty;
  nullable : bool;
}

type t

val column : ?nullable:bool -> string -> Value.ty -> column
(** [column name ty] declares a column; [nullable] defaults to [true]
    because join transformations pad unmatched sides with NULLs. *)

val make :
  ?candidate_keys:string list list -> key:string list -> column list -> t
(** [make ~key cols] builds a schema whose primary key is the listed
    column names, in order.

    @raise Invalid_argument on duplicate column names, an empty or
    unknown key, or an unknown candidate key column. *)

val columns : t -> column list
val arity : t -> int
val key_positions : t -> int list
val key_names : t -> string list
val candidate_keys : t -> int list list
(** All declared candidate keys, primary key first. *)

val position : t -> string -> int
(** @raise Not_found if the column does not exist. *)

val position_opt : t -> string -> int option
val name_at : t -> int -> string
val mem : t -> string -> bool

val positions : t -> string list -> int list
(** Positions of several columns. @raise Not_found as {!position}. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
