lib/value/pred.ml: Format List Row Schema String Value
