lib/value/schema.ml: Array Format List Printf String Value
