lib/value/codec.mli: Row Value
