lib/value/codec.ml: Array Buffer List Row String Value
