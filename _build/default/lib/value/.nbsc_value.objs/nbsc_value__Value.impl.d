lib/value/value.ml: Format Hashtbl Int64 Stdlib String
