lib/value/row.ml: Array Format Hashtbl List Map Stdlib Value
