lib/value/row.mli: Format Hashtbl Map Value
