lib/value/schema.mli: Format Value
