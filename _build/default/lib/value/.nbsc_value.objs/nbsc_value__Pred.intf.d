lib/value/pred.mli: Format Row Schema Value
