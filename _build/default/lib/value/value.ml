type t =
  | Null
  | Int of int
  | Float of float
  | Bool of bool
  | Text of string

type ty = TInt | TFloat | TBool | TText

let type_of = function
  | Null -> None
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | Bool _ -> Some TBool
  | Text _ -> Some TText

let tag_rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | Text _ -> 4

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | Text x, Text y -> String.compare x y
  | _ -> Stdlib.compare (tag_rank a) (tag_rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 17
  | Int x -> Hashtbl.hash (0, x)
  | Float x -> Hashtbl.hash (1, x)
  | Bool x -> Hashtbl.hash (2, x)
  | Text x -> Hashtbl.hash (3, x)

let is_null = function Null -> true | _ -> false

let pp ppf = function
  | Null -> Format.pp_print_string ppf "NULL"
  | Int x -> Format.pp_print_int ppf x
  | Float x -> Format.fprintf ppf "%g" x
  | Bool x -> Format.pp_print_bool ppf x
  | Text x -> Format.fprintf ppf "%S" x

let pp_ty ppf ty =
  Format.pp_print_string ppf
    (match ty with
     | TInt -> "int"
     | TFloat -> "float"
     | TBool -> "bool"
     | TText -> "text")

let to_string v = Format.asprintf "%a" pp v

(* The encoding is a one-character tag followed by a payload that never
   needs escaping: ints/floats via their literal syntax (floats through
   Int64 bits so NaN and -0. round-trip), text length-prefixed. *)
let encode = function
  | Null -> "N"
  | Int x -> "I" ^ string_of_int x
  | Float x -> "F" ^ Int64.to_string (Int64.bits_of_float x)
  | Bool true -> "Bt"
  | Bool false -> "Bf"
  | Text s -> "T" ^ string_of_int (String.length s) ^ ":" ^ s

let decode s =
  if String.length s = 0 then failwith "Value.decode: empty input";
  let payload () = String.sub s 1 (String.length s - 1) in
  match s.[0] with
  | 'N' -> Null
  | 'I' ->
    (try Int (int_of_string (payload ()))
     with _ -> failwith "Value.decode: bad int")
  | 'F' ->
    (try Float (Int64.float_of_bits (Int64.of_string (payload ())))
     with _ -> failwith "Value.decode: bad float")
  | 'B' ->
    (match payload () with
     | "t" -> Bool true
     | "f" -> Bool false
     | _ -> failwith "Value.decode: bad bool")
  | 'T' ->
    let p = payload () in
    (match String.index_opt p ':' with
     | None -> failwith "Value.decode: bad text"
     | Some i ->
       let len =
         try int_of_string (String.sub p 0 i)
         with _ -> failwith "Value.decode: bad text length"
       in
       if String.length p - i - 1 <> len then
         failwith "Value.decode: text length mismatch";
       Text (String.sub p (i + 1) len))
  | _ -> failwith "Value.decode: unknown tag"

let int x = Int x
let float x = Float x
let bool x = Bool x
let text x = Text x
