type op = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Cmp of string * op * Value.t
  | Is_null of string
  | And of t * t
  | Or of t * t
  | Not of t

let cmp_holds op c =
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let rec compile schema = function
  | True -> fun _ -> true
  | False -> fun _ -> false
  | Cmp (col, op, v) ->
    let i = Schema.position schema col in
    fun row ->
      let x = Row.get row i in
      (* NULL never compares (SQL semantics collapsed to false). *)
      (not (Value.is_null x))
      && (not (Value.is_null v))
      && cmp_holds op (Value.compare x v)
  | Is_null col ->
    let i = Schema.position schema col in
    fun row -> Value.is_null (Row.get row i)
  | And (a, b) ->
    let fa = compile schema a and fb = compile schema b in
    fun row -> fa row && fb row
  | Or (a, b) ->
    let fa = compile schema a and fb = compile schema b in
    fun row -> fa row || fb row
  | Not a ->
    let fa = compile schema a in
    fun row -> not (fa row)

let eval schema t row = compile schema t row

let columns t =
  let rec go acc = function
    | True | False -> acc
    | Cmp (c, _, _) | Is_null c -> c :: acc
    | And (a, b) | Or (a, b) -> go (go acc a) b
    | Not a -> go acc a
  in
  List.sort_uniq String.compare (go [] t)

let negate t = Not t

let pp_op ppf op =
  Format.pp_print_string ppf
    (match op with Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=")

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Cmp (c, op, v) -> Format.fprintf ppf "%s %a %a" c pp_op op Value.pp v
  | Is_null c -> Format.fprintf ppf "%s IS NULL" c
  | And (a, b) -> Format.fprintf ppf "(%a AND %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp a pp b
  | Not a -> Format.fprintf ppf "NOT %a" pp a
