(** Wire codec for rows and row fragments.

    The write-ahead log stores rows and partial-row updates as strings
    so a log can be serialized, shipped or replayed byte-for-byte (the
    paper's method works from the log alone, so the log must be
    self-contained). Every encoder has an exact inverse. *)

val encode_row : Row.t -> string
val decode_row : string -> Row.t

val encode_changes : (int * Value.t) list -> string
(** Positional updates, as carried by update log records. *)

val decode_changes : string -> (int * Value.t) list

val encode_string_list : string list -> string
val decode_string_list : string -> string list
