(* All composite encodings are sequences of length-prefixed chunks:
   "<len>:<bytes>" repeated. Length prefixes make the format immune to
   any byte appearing inside a chunk. *)

let put_chunk buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let chunks_of_string s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match String.index_from_opt s i ':' with
      | None -> failwith "Codec: missing length prefix"
      | Some j ->
        let len =
          try int_of_string (String.sub s i (j - i))
          with _ -> failwith "Codec: bad length prefix"
        in
        if j + 1 + len > n then failwith "Codec: chunk overruns input";
        go (j + 1 + len) (String.sub s (j + 1) len :: acc)
  in
  go 0 []

let string_of_chunks chunks =
  let buf = Buffer.create 64 in
  List.iter (put_chunk buf) chunks;
  Buffer.contents buf

let encode_row (r : Row.t) =
  string_of_chunks (List.map Value.encode (Array.to_list r))

let decode_row s = Array.of_list (List.map Value.decode (chunks_of_string s))

let encode_changes changes =
  string_of_chunks
    (List.concat_map
       (fun (i, v) -> [ string_of_int i; Value.encode v ])
       changes)

let decode_changes s =
  let rec pair = function
    | [] -> []
    | [ _ ] -> failwith "Codec.decode_changes: odd chunk count"
    | i :: v :: rest ->
      let pos =
        try int_of_string i
        with _ -> failwith "Codec.decode_changes: bad position"
      in
      (pos, Value.decode v) :: pair rest
  in
  pair (chunks_of_string s)

let encode_string_list = string_of_chunks
let decode_string_list = chunks_of_string
