(** Rows (records) and keys.

    A row is an immutable array of values whose positions are given
    meaning by a {!Schema.t}. A key is the projection of a row onto key
    positions; keys are used as hash-table keys throughout the engine,
    so they come with [equal]/[hash]/[compare]. *)

type t = Value.t array

val make : Value.t list -> t
val of_array : Value.t array -> t
(** Copies, so later mutation of the argument cannot alias. *)

val arity : t -> int
val get : t -> int -> Value.t

val set : t -> int -> Value.t -> t
(** Functional update: returns a fresh row. *)

val update : t -> (int * Value.t) list -> t
(** Apply several positional updates at once (fresh row). *)

val project : t -> int list -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val all_null : int -> t
(** [all_null n] is the n-ary all-NULL row — the R-null / S-null record
    of the paper (Sec. 4.1). *)

val is_all_null : t -> bool

(** Keys: projections of rows used for identity. *)
module Key : sig
  type row = t
  type t = Value.t array

  val of_row : row -> int list -> t
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
  val has_null : t -> bool

  (** Hashtbl over keys. *)
  module Tbl : Hashtbl.S with type key = t

  (** Ordered map over keys. *)
  module Map : Map.S with type key = t
end
