type column = {
  col_name : string;
  col_ty : Value.ty;
  nullable : bool;
}

type t = {
  cols : column array;
  key : int list;
  cand_keys : int list list;  (* primary key first *)
}

let column ?(nullable = true) col_name col_ty = { col_name; col_ty; nullable }

let find_pos cols name =
  let rec go i =
    if i >= Array.length cols then None
    else if String.equal cols.(i).col_name name then Some i
    else go (i + 1)
  in
  go 0

let make ?(candidate_keys = []) ~key columns =
  let cols = Array.of_list columns in
  Array.iteri
    (fun i c ->
       match find_pos cols c.col_name with
       | Some j when j < i ->
         invalid_arg
           (Printf.sprintf "Schema.make: duplicate column %S" c.col_name)
       | _ -> ())
    cols;
  let resolve what names =
    if names = [] then invalid_arg (Printf.sprintf "Schema.make: empty %s" what);
    List.map
      (fun n ->
         match find_pos cols n with
         | Some i -> i
         | None ->
           invalid_arg
             (Printf.sprintf "Schema.make: unknown %s column %S" what n))
      names
  in
  let key = resolve "key" key in
  let cand_keys = key :: List.map (resolve "candidate key") candidate_keys in
  { cols; key; cand_keys }

let columns t = Array.to_list t.cols
let arity t = Array.length t.cols
let key_positions t = t.key
let candidate_keys t = t.cand_keys
let name_at t i = t.cols.(i).col_name
let key_names t = List.map (name_at t) t.key

let position_opt t name = find_pos t.cols name

let position t name =
  match position_opt t name with Some i -> i | None -> raise Not_found

let mem t name = position_opt t name <> None
let positions t names = List.map (position t) names

let equal a b =
  a.key = b.key
  && a.cand_keys = b.cand_keys
  && Array.length a.cols = Array.length b.cols
  && Array.for_all2
       (fun x y ->
          String.equal x.col_name y.col_name
          && x.col_ty = y.col_ty && x.nullable = y.nullable)
       a.cols b.cols

let pp ppf t =
  let pp_col ppf c =
    Format.fprintf ppf "%s %a%s" c.col_name Value.pp_ty c.col_ty
      (if c.nullable then "" else " not null")
  in
  Format.fprintf ppf "(%a) key(%s)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_col)
    (Array.to_list t.cols)
    (String.concat ", " (key_names t))
