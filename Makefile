.PHONY: all build test check fmt clean

all: build

build:
	dune build

test:
	dune runtest

# Full CI gate: build, tests, and (when ocamlformat is installed) a
# formatting check. See ci/check.sh.
check:
	./ci/check.sh

# Reformat in place (requires ocamlformat).
fmt:
	dune build @fmt --auto-promote

clean:
	dune clean
