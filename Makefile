.PHONY: all build test check crash contention scrub bench-engine bench-shard bench-migrate bench-compare fmt clean

all: build

build:
	dune build

test:
	dune runtest

# Full CI gate: build, tests, and (when ocamlformat is installed) a
# formatting check. See ci/check.sh.
check:
	./ci/check.sh

# Crash matrix only: every fault-injection site crossed with every
# operator, at a fixed seed so failures reproduce.
crash:
	NBSC_CRASH_SEED=42 dune exec test/test_crash_matrix.exe

# Contention soak only: high-conflict workload crossed with every sync
# strategy, fault-free and with a sync-commit fault, at a fixed seed.
contention:
	NBSC_CONTENTION_SEED=42 dune exec test/test_contention.exe

# Storage-integrity drill (bench-free): the integrity suite at a fixed
# seed, then an end-to-end scrub pass — generate a store, verify it
# clean, damage one byte, verify the scrub refuses it.
scrub:
	NBSC_CRASH_SEED=42 dune exec test/test_integrity.exe
	@dir=$$(mktemp -u /tmp/nbsc_scrub.XXXXXX); \
	trap 'rm -rf "$$dir"' EXIT; \
	dune exec bin/nbsc_cli.exe -- mkstore "$$dir" --rows 200 && \
	dune exec bin/nbsc_cli.exe -- scrub "$$dir" && \
	dune exec bin/nbsc_cli.exe -- flip "$$dir/wal.nbsc" && \
	if dune exec bin/nbsc_cli.exe -- scrub "$$dir"; then \
	  echo "scrub missed injected corruption" >&2; exit 1; \
	else echo "scrub drill OK"; fi

# Full-scale engine bench: mixed transactional workload under a
# concurrent FOJ schema change; writes BENCH_engine.json and gates
# against the committed quick-scale baseline.
bench-engine:
	dune exec bench/main.exe -- engine --out BENCH_engine.json \
		--gate ci/bench_engine_baseline.json

# Full-scale sharded-execution bench: the split transformation driven
# serial and across a 1/2/4/8-domain pool; writes BENCH_shard.json and
# enforces equality with the serial baseline (byte-identical at one
# domain). The regression gate against ci/bench_shard_baseline.json
# runs at quick scale in ci/check.sh, where the scales match.
bench-shard:
	dune exec bench/main.exe -- shard --out BENCH_shard.json

# Migration-strategy bench: eager vs lazy vs hybrid initial-image
# migration for the same FOJ change under a live workload; writes
# BENCH_migrate.json (the eager-vs-lazy trajectory) and gates the
# aggregate workload throughput against the committed full-scale
# baseline.
bench-migrate:
	dune exec bench/main.exe -- migrate --out BENCH_migrate.json \
		--gate ci/bench_migrate_baseline.json

# Competitor-strategy bench: the paper's log-redo method vs the
# DBLog-style virtual-cut populator vs the shadow-table baseline, all
# running the same FOJ change under the same live workload; writes
# BENCH_compare.json (throughput impact, catch-up lag, WAL high-water,
# crash-resume cost) and gates the paper run's workload throughput
# against the committed baseline. Exits non-zero if any strategy
# diverges from its relational oracle.
bench-compare:
	dune exec bench/main.exe -- compare --out BENCH_compare.json \
		--gate ci/bench_compare_baseline.json

# Reformat in place (requires ocamlformat).
fmt:
	dune build @fmt --auto-promote

clean:
	dune clean
