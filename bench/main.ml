(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Sec. 6) plus the worked examples (Figs. 1-3),
   the synchronization-window measurement, the method-comparison
   ablation, and Bechamel micro-benchmarks of the substrate.

   Usage: main.exe [target ...] [--trace FILE] [--out FILE] [--gate FILE]
     targets: fig1 fig2 fig3 fig4a fig4b fig4c fig4d foj sync methods
              ablate deadlock wal engine shard migrate compare micro
              trace all quick
   The wal target measures the segmented log (append throughput under
   truncation, bounded-memory soak) and writes its JSON to [--out]
   when given. The engine target runs the end-to-end mixed workload
   under a concurrent FOJ change, writes BENCH_engine.json via [--out],
   gates against a committed baseline via [--gate FILE], and with
   [--trace FILE] streams its metric events there.
   No arguments = "all" (paper-scale; several minutes). Adding "quick"
   runs the selected harnesses at reduced scale. [--trace FILE] runs
   the traced fixed-seed scenario, writes every trace event to FILE
   (JSON lines) and prints the per-phase timings as JSON. *)

open Nbsc_value
open Nbsc_core
open Nbsc_sim
module Obs = Nbsc_obs.Obs
module Json = Nbsc_obs.Json

let say fmt = Format.printf (fmt ^^ "@.")

let header title =
  say "";
  say "==============================================================";
  say "%s" title;
  say "=============================================================="

let pp_points ~x_label points =
  say "%-10s %14s %14s  %s" x_label "rel.throughput" "rel.resp.time" "status";
  List.iter
    (fun p ->
       say "%-10.4f %14.4f %14.4f  %s" p.Experiment.x
         p.Experiment.rel_throughput p.Experiment.rel_response
         (match p.Experiment.tf_done_at with
          | Some t -> Printf.sprintf "done@%d" t
          | None ->
            if p.Experiment.tf_completed then "done" else "still running"))
    points

(* {1 Worked examples} *)

let fig1 () =
  header "Figure 1 - example full outer join transformation";
  let r_schema =
    Schema.make ~key:[ "a" ]
      [ Schema.column ~nullable:false "a" Value.TInt;
        Schema.column "b" Value.TText; Schema.column "c" Value.TInt ]
  in
  let s_schema =
    Schema.make ~key:[ "c" ]
      [ Schema.column ~nullable:false "c" Value.TInt;
        Schema.column "d" Value.TText ]
  in
  let db = Nbsc_engine.Db.create () in
  ignore (Nbsc_engine.Db.create_table db ~name:"R" r_schema);
  ignore (Nbsc_engine.Db.create_table db ~name:"S" s_schema);
  let row vs = Row.make vs in
  (match
     Nbsc_engine.Db.load db ~table:"R"
       [ row [ Value.Int 1; Value.Text "John"; Value.Int 1 ];
         row [ Value.Int 2; Value.Text "Karen"; Value.Int 1 ];
         row [ Value.Int 3; Value.Text "Mary"; Value.Int 3 ] ]
   with
   | Ok () -> ()
   | Error _ -> failwith "load R");
  (match
     Nbsc_engine.Db.load db ~table:"S"
       [ row [ Value.Int 1; Value.Text "as" ];
         row [ Value.Int 3; Value.Text "Oslo" ] ]
   with
   | Ok () -> ()
   | Error _ -> failwith "load S");
  say "R:";
  say "%s"
    (Format.asprintf "%a" Nbsc_relalg.Relalg.pp (Nbsc_engine.Db.snapshot db "R"));
  say "S:";
  say "%s"
    (Format.asprintf "%a" Nbsc_relalg.Relalg.pp (Nbsc_engine.Db.snapshot db "S"));
  let spec =
    { Spec.r_table = "R"; s_table = "S"; t_table = "T";
      join_r = [ "c" ]; join_s = [ "c" ]; t_join = [ "c" ];
      r_carry = [ "a"; "b" ]; s_carry = [ "d" ]; many_to_many = false }
  in
  let tf =
    Transform.foj db
      ~config:{ Transform.default_config with Transform.drop_sources = false }
      spec
  in
  (match Transform.run tf with Ok () -> () | Error m -> failwith m);
  say "T = R FOJ S (produced by the non-blocking transformation):";
  say "%s"
    (Format.asprintf "%a" Nbsc_relalg.Relalg.pp (Nbsc_engine.Db.snapshot db "T"))

let fig2 () =
  header "Figure 2 - lock compatibility matrix for T (non-blocking sync)";
  say "%s" (Format.asprintf "%a" Nbsc_lock.Compat.pp_figure2 ());
  (* The 36 cells from the paper, row-major (true = compatible). *)
  let expected =
    [ [ true; true; true; true; true; false ];
      [ true; true; true; true; true; false ];
      [ true; true; true; false; false; false ];
      [ true; true; false; true; true; false ];
      [ true; true; false; true; true; false ];
      [ false; false; false; false; false; false ] ]
  in
  if Nbsc_lock.Compat.figure2_cells () = expected then
    say "matches the paper's matrix: yes (36/36 cells)"
  else say "matches the paper's matrix: NO - MISMATCH"

let fig3 () =
  header "Figure 3 / Example 1 - example split transformation";
  let t_schema =
    Schema.make ~key:[ "id" ]
      [ Schema.column ~nullable:false "id" Value.TInt;
        Schema.column "name" Value.TText;
        Schema.column "postal_code" Value.TInt;
        Schema.column "city" Value.TText ]
  in
  let db = Nbsc_engine.Db.create () in
  ignore (Nbsc_engine.Db.create_table db ~name:"Customer" t_schema);
  let row i n p c =
    Row.make [ Value.Int i; Value.Text n; Value.Int p; Value.Text c ]
  in
  (match
     Nbsc_engine.Db.load db ~table:"Customer"
       [ row 1 "Peter" 7050 "Trondheim";
         row 2 "Mark" 5020 "Bergen";
         row 3 "Gary" 50 "Oslo";
         row 134 "Jen" 7050 "Trondheim" ]
   with
   | Ok () -> ()
   | Error _ -> failwith "load Customer");
  say "Customer:";
  say "%s"
    (Format.asprintf "%a" Nbsc_relalg.Relalg.pp
       (Nbsc_engine.Db.snapshot db "Customer"));
  let spec =
    { Spec.t_table' = "Customer"; r_table' = "CustomerAddr";
      s_table' = "Place"; r_cols = [ "id"; "name"; "postal_code" ];
      s_cols = [ "postal_code"; "city" ]; split_key = [ "postal_code" ];
      assume_consistent = false }
  in
  let tf =
    Transform.split db
      ~config:{ Transform.default_config with Transform.drop_sources = false }
      spec
  in
  (match Transform.run tf with Ok () -> () | Error m -> failwith m);
  say "CustomerAddr (R):";
  say "%s"
    (Format.asprintf "%a" Nbsc_relalg.Relalg.pp
       (Nbsc_engine.Db.snapshot db "CustomerAddr"));
  say "Place (S), with reference counters:";
  let s_tbl = Nbsc_engine.Db.table db "Place" in
  Nbsc_storage.Table.iter s_tbl (fun _ record ->
      say "  %s" (Format.asprintf "%a" Nbsc_storage.Record.pp record))

(* {1 Figure 4} *)

let paper_note lines = List.iter (fun l -> say "  paper: %s" l) lines

let workloads = [ 50.; 60.; 70.; 80.; 90.; 100. ]

let fig4a setup =
  header
    "Figure 4(a) - rel. throughput during initial population (split, 20% \
     updates on T)";
  paper_note [ "~0.94 at 100% workload rising to ~0.99-1.00 at 50%" ];
  pp_points ~x_label:"workload%"
    (Experiment.fig4ab_population ~setup ~workloads ())

let fig4b setup =
  header
    "Figure 4(b) - rel. response time during initial population (split, 20% \
     updates on T)";
  paper_note [ "~1.05 at 40-50% workload rising to ~1.25-1.30 at 100%" ];
  pp_points ~x_label:"workload%"
    (Experiment.fig4ab_population ~setup ~workloads:(40. :: workloads) ())

let fig4c setup =
  header
    "Figure 4(c) - rel. throughput during log propagation, 20% vs 80% updates \
     on T";
  paper_note
    [ "20% mix: ~0.96-0.98 across workloads; 80% mix: falling to ~0.88-0.92";
      "(the 80% mix needs ~4x the propagation priority)" ];
  say "-- 20%% of updates on T --";
  pp_points ~x_label:"workload%"
    (Experiment.fig4c_propagation ~setup ~source_share:0.2
       ~workloads:(40. :: workloads) ());
  say "-- 80%% of updates on T --";
  pp_points ~x_label:"workload%"
    (Experiment.fig4c_propagation ~setup ~source_share:0.8
       ~workloads:(40. :: workloads) ())

let fig4d_priorities = [ 0.0005; 0.001; 0.002; 0.005; 0.01; 0.02; 0.04; 0.08 ]

let fig4d setup =
  header
    "Figure 4(d) - completion time and interference vs priority (75% workload)";
  paper_note
    [ "completion time ~1/priority; below a threshold (paper: ~0.5%) the";
      "transformation never finishes; interference grows with priority" ];
  pp_points ~x_label:"priority"
    (Experiment.fig4d_priority ~setup ~workload_pct:75.
       ~priorities:fig4d_priorities ());
  say "-- with the anti-starvation governor (every point must complete) --";
  pp_points ~x_label:"priority"
    (Experiment.fig4d_priority_governed ~setup ~workload_pct:75.
       ~priorities:fig4d_priorities ())

let fig4_foj setup =
  header "Figure 4(a)/(c) for FOJ (paper: 'very similar results')";
  say "-- initial population (FOJ of R:scale x S:0.4*scale rows) --";
  pp_points ~x_label:"workload%"
    (Experiment.fig4ab_population_foj ~setup ~workloads ());
  say "-- log propagation, 20%% updates on sources --";
  pp_points ~x_label:"workload%"
    (Experiment.fig4c_propagation_foj ~setup ~source_share:0.2 ~workloads ())

let sync_bench setup =
  header "Synchronization window (paper: < 1 ms, non-blocking abort)";
  List.iter
    (fun strategy ->
       match Experiment.sync_window ~setup ~strategy () with
       | Error e -> say "sync window failed: %s" (Nbsc_error.to_string e)
       | Ok r ->
         say "%-22s final-iteration records=%d wall=%s forced aborts=%d"
           r.Experiment.strategy_name r.Experiment.final_records
           (match r.Experiment.wall_ns with
            | Some ns -> Printf.sprintf "%.4f ms" (float_of_int ns /. 1e6)
            | None -> "n/a")
           r.Experiment.forced_aborts)
    [ Transform.Nonblocking_abort; Transform.Nonblocking_commit;
      Transform.Blocking_commit ]

let ablate setup =
  header "Ablations: iteration-analysis threshold and batch size";
  say "-- sync_lag_threshold sweep (latch window vs eagerness) --";
  List.iter
    (fun r -> say "%s" (Format.asprintf "%a" Experiment.pp_threshold_row r))
    (Experiment.threshold_sweep ~setup
       ~thresholds:[ 0; 2; 8; 64; 512; 4096 ] ());
  say "-- batch-size sweep --";
  List.iter
    (fun r -> say "%s" (Format.asprintf "%a" Experiment.pp_batch_row r))
    (Experiment.batch_sweep ~setup ~batches:[ 4; 16; 64; 256; 1024 ] ());
  say "-- iteration-analysis policies (paper Sec. 3.3's three bases) --";
  (match Experiment.policy_comparison ~setup () with
   | Error e -> say "policy comparison failed: %s" (Nbsc_error.to_string e)
   | Ok rows ->
     List.iter
       (fun r -> say "%s" (Format.asprintf "%a" Experiment.pp_policy_row r))
       rows)

let methods setup =
  header "Method comparison (ablation): log-based vs blocking vs triggers";
  List.iter
    (fun row -> say "%s" (Format.asprintf "%a" Experiment.pp_method_row row))
    (Experiment.method_comparison ~setup ~workload_pct:75. ())

let deadlock_bench quick =
  header "Deadlock detector under a high-conflict workload";
  say "  (40-row table, 90%% of updates on it, transformation propagating";
  say "   throughout; youngest-in-cycle detection, wait-queue fairness)";
  let kind = Sim.Split_scenario { t_rows = 40; assume_consistent = true } in
  let workload =
    { Sim.n_clients = 24;
      think_time = 400;
      ops_per_txn = 6;
      source_share = 0.9;
      seed = 42 }
  in
  let duration = if quick then 150_000 else 600_000 in
  (* Sync gated off: the transformation stays in propagation for the
     whole horizon, so clients keep hammering the 40-row source table
     (after the switch they would route to the targets and the
     hot spot would evaporate). Hook-threaded cycles are exercised by
     the directed deadlock tests and the contention soak. *)
  let config =
    { Transform.default_config with
      Transform.scan_batch = 8;
      propagate_batch = 16;
      analysis = Analysis.Remaining_records 8;
      strategy = Transform.Nonblocking_commit;
      drop_sources = false;
      sync_gate = (fun () -> false) }
  in
  let r =
    Sim.run ~kind ~workload
      ~background:(Sim.Transformation { Sim.priority = 0.1; config })
      ~duration ~warmup:(duration / 20) ()
  in
  let s = r.Sim.mgr_stats in
  say "engine:  ops=%d commits=%d aborts=%d blocked=%d" s.Nbsc_txn.Manager.Stats.ops
    s.Nbsc_txn.Manager.Stats.commits s.Nbsc_txn.Manager.Stats.aborts s.Nbsc_txn.Manager.Stats.blocked;
  say "detector: lock_waits=%d deadlocks(Die)=%d wounded=%d"
    s.Nbsc_txn.Manager.Stats.lock_waits s.Nbsc_txn.Manager.Stats.deadlocks
    s.Nbsc_txn.Manager.Stats.victims;
  say "clients: %s" (Format.asprintf "%a" Metrics.pp_summary r.Sim.summary);
  say "tf: %s"
    (match r.Sim.tf_done_at with
     | Some t -> Printf.sprintf "completed at t=%d" t
     | None -> "still running at horizon")

(* {1 Traced run} *)

let trace_bench ~quick ~out =
  header "Traced fixed-seed run (schema-change spans + quantum points)";
  let setup =
    if quick then Experiment.quick_setup
    else { Experiment.quick_setup with Experiment.scale = 10_000 }
  in
  let sink, finish =
    match out with
    | Some path ->
      let oc = open_out path in
      (Some (Obs.jsonl_sink oc), fun () -> close_out oc)
    | None -> (None, fun () -> ())
  in
  let tr = Experiment.traced_run ~setup ?sink () in
  finish ();
  (match out with
   | Some path ->
     say "%d trace events written to %s" (List.length tr.Experiment.tr_events)
       path
   | None ->
     say "%d trace events captured (pass --trace FILE to keep them)"
       (List.length tr.Experiment.tr_events));
  say "per-phase timings (JSON):";
  say "%s" (Json.to_string (Experiment.phases_to_json tr.Experiment.tr_phases))

(* {1 WAL bounded-memory benchmark} *)

let wal_bench ~quick ~out =
  header "WAL segmented log: append throughput and bounded memory";
  let module Log = Nbsc_wal.Log in
  let module Lsn = Nbsc_wal.Lsn in
  (* Raw path: sustained appends with periodic low-water truncation,
     the access pattern the Manager produces. The live window is held
     at [keep] records; the interesting numbers are appends/s (segment
     bookkeeping must not tax the hot path) and the live high-water
     mark (must track the window, not the total volume). *)
  let total = if quick then 200_000 else 2_000_000 in
  let keep = 8_192 in
  let log = Log.create ~segment_size:1024 () in
  let body =
    Nbsc_wal.Log_record.Op
      (Nbsc_wal.Log_record.Insert
         { table = "t"; row = Row.make [ Value.Int 1; Value.Text "payload" ] })
  in
  let t0 = Sys.time () in
  for i = 1 to total do
    ignore (Log.append log ~txn:1 ~prev_lsn:Lsn.zero body);
    if i mod keep = 0 then Log.truncate_to log (Lsn.of_int (i - keep + 1))
  done;
  let dt = Sys.time () -. t0 in
  let appends_per_s = if dt > 0. then float_of_int total /. dt else 0. in
  say "raw: %d appends in %.3fs (%.0f appends/s)" total dt appends_per_s;
  say "raw: live high-water %d records (window %d), %d segments live, %d reclaimed"
    (Log.live_high_water log) keep (Log.segments log) (Log.truncated_total log);
  (* End-to-end: the sim soak under a never-synchronizing schema change
     plus sustained traffic, at 1x and 2x duration. Bounded memory
     means the high-water mark does not follow the duration. *)
  let soak duration =
    let config =
      { Transform.scan_batch = 16;
        propagate_batch = 32;
        analysis = Analysis.Remaining_records 8;
        strategy = Transform.Nonblocking_abort;
        drop_sources = false;
        sync_gate = (fun () -> false);
        pace = None }
    in
    let workload =
      { Sim.n_clients = 8;
        think_time = 500;
        ops_per_txn = 10;
        source_share = 0.2;
        seed = 11 }
    in
    Sim.run
      ~kind:(Sim.Split_scenario { t_rows = 500; assume_consistent = true })
      ~workload
      ~background:(Sim.Transformation { Sim.priority = 0.05; config })
      ~duration ~warmup:10_000 ()
  in
  let base_duration = if quick then 150_000 else 600_000 in
  let short = soak base_duration in
  let long = soak (2 * base_duration) in
  let pp_run tag d (r : Sim.result) =
    say "soak %s (duration %d): high-water %d live records, %d reclaimed, %d committed"
      tag d r.Sim.wal_high_water r.Sim.wal_truncated
      r.Sim.summary.Metrics.committed
  in
  pp_run "1x" base_duration short;
  pp_run "2x" (2 * base_duration) long;
  say "flat across durations: %s"
    (if long.Sim.wal_high_water <= 2 * short.Sim.wal_high_water then "yes"
     else "NO - GROWS WITH RUN LENGTH");
  let json =
    Json.Obj
      [ ("bench", Json.String "wal");
        ("quick", Json.Bool quick);
        ( "raw",
          Json.Obj
            [ ("appends", Json.Int total);
              ("keep_window", Json.Int keep);
              ("seconds", Json.Float dt);
              ("appends_per_s", Json.Float appends_per_s);
              ("live_high_water", Json.Int (Log.live_high_water log));
              ("segments_live", Json.Int (Log.segments log));
              ("records_reclaimed", Json.Int (Log.truncated_total log)) ] );
        ( "soak",
          Json.List
            (List.map
               (fun (d, (r : Sim.result)) ->
                  Json.Obj
                    [ ("duration", Json.Int d);
                      ("wal_high_water", Json.Int r.Sim.wal_high_water);
                      ("wal_truncated", Json.Int r.Sim.wal_truncated);
                      ( "committed",
                        Json.Int r.Sim.summary.Metrics.committed ) ])
               [ (base_duration, short); (2 * base_duration, long) ]) ) ]
  in
  (match out with
   | Some path ->
     let oc = open_out path in
     output_string oc (Json.to_string json);
     output_char oc '\n';
     close_out oc;
     say "results written to %s" path
   | None -> say "%s" (Json.to_string json))

(* {1 End-to-end engine benchmark}

   A full mixed workload against a persisted database: populate an FOJ
   schema change, build and drain a propagation backlog, then measure
   transaction throughput while the propagator runs concurrently — the
   number the hot-path work (structured WAL records, compiled rule
   plans, group commit) is accountable to. Writes BENCH_engine.json
   via [--out]; [--gate FILE] compares the fresh throughput against a
   committed baseline and fails the process on a >20% regression. *)

(* Pre-refactor numbers, measured by this same bench on the code as of
   the bounded-memory-WAL PR (commit cc244f3, full scale, this
   machine). Recorded here so every BENCH_engine.json carries both
   sides of the before/after comparison the refactor is accountable
   to. *)
let pre_refactor_baseline =
  [ ("txn_per_s", 7400.0);
    ("populate_rows_per_s", 215000.0);
    ("propagate_records_per_s", 183000.0);
    ("alloc_words_per_txn", 12524.0) ]

let engine_bench ~quick ~out ~gate ~trace =
  header "Engine end-to-end: mixed workload under a concurrent FOJ change";
  let module Db = Nbsc_engine.Db in
  let module Persist = Nbsc_engine.Persist in
  let module Manager = Nbsc_txn.Manager in
  let scale = if quick then 3_000 else 15_000 in
  let s_count = scale * 2 / 5 in
  let mixed_txns = if quick then 1_500 else 8_000 in
  let ops_per_txn = 8 in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "nbsc_bench_engine.%d" (Unix.getpid ()))
  in
  (* A previous run may have died and left the directory behind. *)
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Sys.rmdir dir
  end;
  let p =
    match Persist.create_dir ~dir with
    | Ok p -> p
    | Error e -> failwith (Nbsc_error.to_string e)
  in
  let db = Persist.db p in
  let mgr = Db.manager db in
  let obs = Manager.obs mgr in
  let trace_finish =
    match trace with
    | None -> fun () -> ()
    | Some path ->
      let oc = open_out path in
      let sink = Obs.jsonl_sink oc in
      Obs.Registry.attach obs sink;
      fun () ->
        Obs.Registry.detach obs sink;
        close_out oc;
        say "metric events written to %s" path
  in
  let r_schema =
    Schema.make ~key:[ "a" ]
      [ Schema.column ~nullable:false "a" Value.TInt;
        Schema.column "b" Value.TText; Schema.column "c" Value.TInt ]
  in
  let s_schema =
    Schema.make ~key:[ "c" ]
      [ Schema.column ~nullable:false "c" Value.TInt;
        Schema.column "d" Value.TText ]
  in
  ignore (Db.create_table db ~name:"R" r_schema);
  ignore (Db.create_table db ~name:"S" s_schema);
  let load table rows =
    match Db.load db ~table rows with
    | Ok () -> ()
    | Error e -> failwith (Format.asprintf "load %s: %a" table Manager.pp_error e)
  in
  let rec chunked lo hi step f =
    if lo <= hi then begin
      f lo (min hi (lo + step - 1));
      chunked (lo + step) hi step f
    end
  in
  chunked 1 scale 2048 (fun lo hi ->
      load "R"
        (List.init (hi - lo + 1) (fun i ->
             let k = lo + i in
             Row.make
               [ Value.Int k; Value.Text ("r" ^ string_of_int k);
                 Value.Int ((k mod s_count) + 1) ])));
  chunked 1 s_count 2048 (fun lo hi ->
      load "S"
        (List.init (hi - lo + 1) (fun i ->
             let k = lo + i in
             Row.make [ Value.Int k; Value.Text ("s" ^ string_of_int k) ])));
  let spec =
    { Spec.r_table = "R"; s_table = "S"; t_table = "T";
      join_r = [ "c" ]; join_s = [ "c" ]; t_join = [ "c" ];
      r_carry = [ "a"; "b" ]; s_carry = [ "d" ]; many_to_many = false }
  in
  let gate_open = ref false in
  let config =
    { Transform.default_config with
      Transform.scan_batch = 512;
      propagate_batch = 512;
      analysis = Analysis.Remaining_records 64;
      drop_sources = false;
      sync_gate = (fun () -> !gate_open) }
  in
  let tf = Transform.foj db ~config spec in
  let step_tf () =
    match Transform.step tf with
    | `Running | `Done -> ()
    | `Failed m -> failwith ("engine bench: transformation failed: " ^ m)
  in
  (* Phase A: initial population, timed in isolation. *)
  let t0 = Unix.gettimeofday () in
  while Transform.phase tf = Transform.Populating do
    step_tf ()
  done;
  let populate_s = Unix.gettimeofday () -. t0 in
  let populated = (Transform.progress tf).Transform.produced in
  let populate_rate =
    if populate_s > 0. then float_of_int populated /. populate_s else 0.
  in
  say "populate: %d rows in %.3fs (%.0f rows/s)" populated populate_s
    populate_rate;
  (* Workload generator shared by phases B and C. Updates dominate,
     split across the non-join R column, the join column (rekeying
     rule), and S; a slice of inserts grows R past the initial scan. *)
  let rng = Random.State.make [| 42 |] in
  let next_r = ref scale in
  let errors = ref 0 in
  let run_txn () =
    match
      Db.with_txn db (fun txn ->
          let rec ops n =
            if n = 0 then Ok ()
            else
              let r =
                match Random.State.int rng 100 with
                | d when d < 45 ->
                  let k = Row.make [ Value.Int (1 + Random.State.int rng scale) ] in
                  Manager.update mgr ~txn ~table:"R" ~key:k
                    [ (1, Value.Text ("u" ^ string_of_int n)) ]
                | d when d < 60 ->
                  let k = Row.make [ Value.Int (1 + Random.State.int rng scale) ] in
                  Manager.update mgr ~txn ~table:"R" ~key:k
                    [ (2, Value.Int (1 + Random.State.int rng s_count)) ]
                | d when d < 75 ->
                  let k =
                    Row.make [ Value.Int (1 + Random.State.int rng s_count) ]
                  in
                  Manager.update mgr ~txn ~table:"S" ~key:k
                    [ (1, Value.Text ("v" ^ string_of_int n)) ]
                | d when d < 90 ->
                  incr next_r;
                  Manager.insert mgr ~txn ~table:"R"
                    (Row.make
                       [ Value.Int !next_r;
                         Value.Text ("r" ^ string_of_int !next_r);
                         Value.Int (1 + Random.State.int rng s_count) ])
                | _ ->
                  let k = Row.make [ Value.Int (1 + Random.State.int rng scale) ] in
                  (match Manager.read mgr ~txn ~table:"R" ~key:k with
                   | Ok _ -> Ok ()
                   | Error e -> Error e)
              in
              match r with Ok () -> ops (n - 1) | Error e -> Error e
          in
          ops ops_per_txn)
    with
    | Ok () -> ()
    | Error _ -> incr errors
  in
  (* Phase B: build a propagation backlog with the job parked, then
     time draining it — the pure redo-rule application rate. *)
  let backlog_txns = if quick then 300 else 1_500 in
  for _ = 1 to backlog_txns do
    run_txn ()
  done;
  let lag0 = (Transform.progress tf).Transform.lag in
  let before_prop = (Transform.progress tf).Transform.propagated in
  let t0 = Unix.gettimeofday () in
  while (Transform.progress tf).Transform.lag > 0 do
    step_tf ()
  done;
  let propagate_s = Unix.gettimeofday () -. t0 in
  let propagated = (Transform.progress tf).Transform.propagated - before_prop in
  let propagate_rate =
    if propagate_s > 0. then float_of_int propagated /. propagate_s else 0.
  in
  say "propagate: backlog lag=%d, %d records in %.3fs (%.0f records/s)" lag0
    propagated propagate_s propagate_rate;
  (* Phase C: the headline number — mixed workload with the propagator
     stepped concurrently (one quantum per transaction), persistence
     attached, allocation measured across the whole phase. *)
  (* Commits inside a 32-wide batch share one durability barrier; the
     trailing flush stays inside the timed region so every measured
     transaction is durable by the end of the phase. *)
  Manager.set_group_commit mgr 32;
  let commits0 = (Manager.Stats.get mgr).Manager.Stats.commits in
  let gc0 = Gc.quick_stat () in
  let words0 = gc0.Gc.minor_words +. gc0.Gc.major_words -. gc0.Gc.promoted_words in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to mixed_txns do
    run_txn ();
    ignore (Db.step_jobs db)
  done;
  Manager.flush_commits mgr;
  let mixed_s = Unix.gettimeofday () -. t0 in
  Manager.set_group_commit mgr 1;
  let gc1 = Gc.quick_stat () in
  let words1 = gc1.Gc.minor_words +. gc1.Gc.major_words -. gc1.Gc.promoted_words in
  let commits = (Manager.Stats.get mgr).Manager.Stats.commits - commits0 in
  let txn_per_s = if mixed_s > 0. then float_of_int commits /. mixed_s else 0. in
  let alloc_words_per_txn =
    if commits > 0 then (words1 -. words0) /. float_of_int commits else 0.
  in
  say "mixed: %d txns (%d ops each) in %.3fs = %.0f txn/s, %.0f alloc words/txn"
    commits ops_per_txn mixed_s txn_per_s alloc_words_per_txn;
  if !errors > 0 then say "mixed: %d transactions failed" !errors;
  List.iter
    (fun (name, v) ->
       if String.starts_with ~prefix:"engine." name then
         say "%-28s %s" name (Format.asprintf "%a" Obs.pp_value v))
    (Obs.Registry.snapshot obs);
  (* Phase D: open the gate, drive the change to completion, checkpoint
     and close — the full lifecycle must still finish under the bench
     workload. *)
  gate_open := true;
  (match Db.run_jobs db with
   | Ok () -> ()
   | Error m -> failwith ("engine bench: run to completion: " ^ m));
  let t_rows = Db.row_count db "T" in
  say "done: T has %d rows; transformation %s" t_rows
    (Format.asprintf "%a" Transform.pp_phase (Transform.phase tf));
  (match Persist.checkpoint p with
   | Ok () -> ()
   | Error e -> failwith (Nbsc_error.to_string e));
  Persist.close p;
  trace_finish ();
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir;
  let assoc_float l = Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) l) in
  let json =
    Json.Obj
      [ ("bench", Json.String "engine");
        ("quick", Json.Bool quick);
        ("scale", Json.Int scale);
        ( "populate",
          Json.Obj
            [ ("rows", Json.Int populated);
              ("seconds", Json.Float populate_s);
              ("rows_per_s", Json.Float populate_rate) ] );
        ( "propagate",
          Json.Obj
            [ ("records", Json.Int propagated);
              ("seconds", Json.Float propagate_s);
              ("records_per_s", Json.Float propagate_rate) ] );
        ( "mixed",
          Json.Obj
            [ ("txns", Json.Int commits);
              ("ops_per_txn", Json.Int ops_per_txn);
              ("seconds", Json.Float mixed_s);
              ("txn_per_s", Json.Float txn_per_s);
              ("alloc_words_per_txn", Json.Float alloc_words_per_txn) ] );
        ("t_rows", Json.Int t_rows);
        ("baseline", assoc_float pre_refactor_baseline);
        ( "speedup_txn",
          let base = List.assoc "txn_per_s" pre_refactor_baseline in
          Json.Float (if base > 0. then txn_per_s /. base else 0.) ) ]
  in
  (match out with
   | Some path ->
     let oc = open_out path in
     output_string oc (Json.to_string json);
     output_char oc '\n';
     close_out oc;
     say "results written to %s" path
   | None -> say "%s" (Json.to_string json));
  (* Regression gate: fresh throughput vs the committed baseline. The
     margin absorbs machine noise; a real hot-path regression lands far
     outside it. *)
  match gate with
  | None -> ()
  | Some path ->
    let contents =
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    (match Json.of_string (String.trim contents) with
     | Error m -> failwith (Printf.sprintf "gate %s: bad JSON: %s" path m)
     | Ok j ->
       let committed =
         match Option.bind (Json.member "mixed" j) (Json.member "txn_per_s")
               |> Option.map (fun v -> Json.to_float v)
         with
         | Some (Some f) -> f
         | _ -> failwith (Printf.sprintf "gate %s: no mixed.txn_per_s" path)
       in
       let floor = 0.8 *. committed in
       say "gate: fresh %.0f txn/s vs committed %.0f txn/s (floor %.0f)"
         txn_per_s committed floor;
       if txn_per_s < floor then begin
         say "gate: FAIL - >20%% throughput regression";
         exit 1
       end
       else say "gate: ok")

(* {1 Sharded-execution benchmark}

   The same split transformation driven serial and sharded across a
   domain pool at 1/2/4/8 domains: initial population (the fuzzy scan)
   and log-propagation drain are timed per configuration, and every
   sharded run must produce the same final relations as the serial
   baseline — the 1-domain run byte-identically (records, LSNs,
   counters), the wider ones as sets. Writes BENCH_shard.json via
   [--out]; [--gate FILE] compares the 1-domain population rate
   against a committed baseline and fails on a >20% regression. *)

let shard_bench ~quick ~out ~gate =
  header "Sharded execution: population and propagation across domains";
  let module Db = Nbsc_engine.Db in
  let module Manager = Nbsc_txn.Manager in
  let scale = if quick then 2_000 else 20_000 in
  let backlog = if quick then 1_000 else 5_000 in
  let t_schema =
    Schema.make ~key:[ "a" ]
      [ Schema.column ~nullable:false "a" Value.TInt;
        Schema.column "b" Value.TText; Schema.column "c" Value.TInt;
        Schema.column "d" Value.TText ]
  in
  let spec =
    { Spec.t_table' = "T"; r_table' = "R"; s_table' = "S";
      r_cols = [ "a"; "b"; "c" ]; s_cols = [ "c"; "d" ];
      split_key = [ "c" ]; assume_consistent = true }
  in
  (* One run: populate (timed), park the job while a deterministic
     backlog of user transactions hits T, drain the log (timed), then
     sync. The backlog is applied with the job parked, so every
     configuration sees the identical operation history. *)
  let run_one ~exec =
    let db = Db.create () in
    ignore (Db.create_table db ~name:"T" t_schema);
    let rec chunked lo hi step f =
      if lo <= hi then begin
        f lo (min hi (lo + step - 1));
        chunked (lo + step) hi step f
      end
    in
    chunked 1 scale 2048 (fun lo hi ->
        match
          Db.load db ~table:"T"
            (List.init (hi - lo + 1) (fun i ->
                 let k = lo + i in
                 let c = k mod 97 in
                 Row.make
                   [ Value.Int k; Value.Text ("n" ^ string_of_int k);
                     Value.Int c; Value.Text ("city" ^ string_of_int c) ]))
        with
        | Ok () -> ()
        | Error e -> failwith (Format.asprintf "load T: %a" Manager.pp_error e));
    let gate_open = ref false in
    let config =
      { Transform.default_config with
        Transform.scan_batch = 256;
        propagate_batch = 256;
        analysis = Analysis.Remaining_records 64;
        drop_sources = false;
        sync_gate = (fun () -> !gate_open) }
    in
    let tf = Transform.split db ~config ~exec spec in
    let step_tf () =
      match Transform.step tf with
      | `Running | `Done -> ()
      | `Failed m -> failwith ("shard bench: transformation failed: " ^ m)
    in
    let t0 = Unix.gettimeofday () in
    while Transform.phase tf = Transform.Populating do
      step_tf ()
    done;
    let populate_s = Unix.gettimeofday () -. t0 in
    let populated = (Transform.progress tf).Transform.produced in
    let mgr = Db.manager db in
    for i = 1 to backlog do
      let txn = Manager.begin_txn mgr in
      let outcome =
        if i mod 5 = 0 then
          let k = scale + i in
          let c = k mod 97 in
          Manager.insert mgr ~txn ~table:"T"
            (Row.make
               [ Value.Int k; Value.Text ("i" ^ string_of_int k);
                 Value.Int c; Value.Text ("city" ^ string_of_int c) ])
        else
          Manager.update mgr ~txn ~table:"T"
            ~key:(Row.make [ Value.Int ((i * 7 mod scale) + 1) ])
            [ (1, Value.Text ("u" ^ string_of_int i)) ]
      in
      (match outcome with
       | Ok () -> ()
       | Error e ->
         failwith (Format.asprintf "shard bench op %d: %a" i Manager.pp_error e));
      match Manager.commit mgr txn with
      | Ok () -> ()
      | Error e ->
        failwith (Format.asprintf "shard bench commit %d: %a" i Manager.pp_error e)
    done;
    let before = (Transform.progress tf).Transform.propagated in
    let t0 = Unix.gettimeofday () in
    while (Transform.progress tf).Transform.lag > 0 do
      step_tf ()
    done;
    let propagate_s = Unix.gettimeofday () -. t0 in
    let propagated = (Transform.progress tf).Transform.propagated - before in
    gate_open := true;
    let rec finish n =
      if n > 100_000 then failwith "shard bench: no convergence";
      match Transform.step tf with
      | `Done -> ()
      | `Running -> finish (n + 1)
      | `Failed m -> failwith ("shard bench: sync failed: " ^ m)
    in
    finish 0;
    (db, populated, populate_s, propagated, propagate_s)
  in
  (* Record-level state: rows plus LSNs, reference counters and
     consistency flags — what the 1-domain byte-identity covers. *)
  let record_state db name =
    Nbsc_storage.Table.fold (Db.table db name) ~init:[] ~f:(fun acc _ r ->
        Format.asprintf "%a" Nbsc_storage.Record.pp r :: acc)
    |> List.sort compare
  in
  let set_state db name =
    List.sort compare
      (List.map Row.to_string (Db.snapshot db name).Nbsc_relalg.Relalg.rows)
  in
  let rate n s = if s > 0. then float_of_int n /. s else 0. in
  let serial_db, s_rows, s_pop, s_recs, s_prop = run_one ~exec:Domain_pool.Serial in
  say "serial:    populate %d rows in %.3fs (%.0f rows/s); drain %d records in %.3fs (%.0f records/s)"
    s_rows s_pop (rate s_rows s_pop) s_recs s_prop (rate s_recs s_prop);
  let failures = ref 0 in
  let runs =
    List.map
      (fun domains ->
         let pool = Domain_pool.create ~size:domains () in
         let db, rows, pop, recs, prop =
           run_one ~exec:(Domain_pool.Sharded { pool; shards = domains })
         in
         Domain_pool.shutdown pool;
         let equal =
           if domains = 1 then
             List.for_all
               (fun t -> record_state serial_db t = record_state db t)
               [ "T"; "R"; "S" ]
           else
             List.for_all
               (fun t -> set_state serial_db t = set_state db t)
               [ "R"; "S" ]
         in
         if not equal then begin
           incr failures;
           say "%d domains: EQUALITY FAIL - diverges from the serial baseline"
             domains
         end;
         say "%d domains: populate %.3fs (%.0f rows/s, speedup %.2fx); drain %.3fs (%.0f records/s, speedup %.2fx)%s"
           domains pop (rate rows pop)
           (if pop > 0. then s_pop /. pop else 0.)
           prop (rate recs prop)
           (if prop > 0. then s_prop /. prop else 0.)
           (if equal then "" else "  [MISMATCH]");
         (domains, rows, pop, recs, prop, equal))
      [ 1; 2; 4; 8 ]
  in
  let json =
    Json.Obj
      [ ("bench", Json.String "shard");
        ("quick", Json.Bool quick);
        ("scale", Json.Int scale);
        ("backlog", Json.Int backlog);
        ( "serial",
          Json.Obj
            [ ("populate_seconds", Json.Float s_pop);
              ("populate_rows_per_s", Json.Float (rate s_rows s_pop));
              ("propagate_seconds", Json.Float s_prop);
              ("propagate_records_per_s", Json.Float (rate s_recs s_prop)) ] );
        ( "runs",
          Json.List
            (List.map
               (fun (d, rows, pop, recs, prop, equal) ->
                  Json.Obj
                    [ ("domains", Json.Int d);
                      ("populate_seconds", Json.Float pop);
                      ("populate_rows_per_s", Json.Float (rate rows pop));
                      ( "populate_speedup",
                        Json.Float (if pop > 0. then s_pop /. pop else 0.) );
                      ("propagate_seconds", Json.Float prop);
                      ("propagate_records_per_s", Json.Float (rate recs prop));
                      ( "propagate_speedup",
                        Json.Float (if prop > 0. then s_prop /. prop else 0.) );
                      ("equal_to_serial", Json.Bool equal) ])
               runs) ) ]
  in
  (match out with
   | Some path ->
     let oc = open_out path in
     output_string oc (Json.to_string json);
     output_char oc '\n';
     close_out oc;
     say "results written to %s" path
   | None -> say "%s" (Json.to_string json));
  if !failures > 0 then begin
    say "shard: FAIL - %d configuration(s) diverged from the serial baseline"
      !failures;
    exit 1
  end;
  (* Regression gate: the 1-domain sharded population rate vs the
     committed baseline — the sharding machinery itself must not tax
     the single-domain path. *)
  (match gate with
   | None -> ()
   | Some path ->
     let contents =
       let ic = open_in path in
       let n = in_channel_length ic in
       let s = really_input_string ic n in
       close_in ic;
       s
     in
     (match Json.of_string (String.trim contents) with
      | Error m -> failwith (Printf.sprintf "gate %s: bad JSON: %s" path m)
      | Ok j ->
        let committed =
          let one_domain =
            match Json.member "runs" j with
            | Some (Json.List rs) ->
              List.find_opt
                (fun r -> Json.member "domains" r = Some (Json.Int 1))
                rs
            | _ -> None
          in
          match
            Option.bind one_domain (Json.member "populate_rows_per_s")
            |> Option.map Json.to_float
          with
          | Some (Some f) -> f
          | _ ->
            failwith
              (Printf.sprintf "gate %s: no 1-domain populate_rows_per_s" path)
        in
        let fresh =
          match List.find_opt (fun (d, _, _, _, _, _) -> d = 1) runs with
          | Some (_, rows, pop, _, _, _) -> rate rows pop
          | None -> 0.
        in
        let floor = 0.8 *. committed in
        say "gate: fresh %.0f rows/s vs committed %.0f rows/s (floor %.0f)"
          fresh committed floor;
        if fresh < floor then begin
          say "gate: FAIL - >20%% population regression";
          exit 1
        end
        else say "gate: ok"))

(* {1 Micro-benchmarks (Bechamel)} *)

let micro () =
  header "Micro-benchmarks (Bechamel; ns per operation)";
  let open Bechamel in
  let open Toolkit in
  let log = Nbsc_wal.Log.create () in
  let table =
    Nbsc_storage.Table.create ~name:"bench"
      ~indexes:[ ("by_c", [ "c" ]) ]
      (Schema.make ~key:[ "a" ]
         [ Schema.column ~nullable:false "a" Value.TInt;
           Schema.column "b" Value.TText; Schema.column "c" Value.TInt ])
  in
  let n = ref 0 in
  let locks = Nbsc_lock.Lock_table.create () in
  let key_of i = Row.make [ Value.Int i ] in
  let sample_row =
    Row.make [ Value.Int 1; Value.Text "hello world"; Value.Int 42 ]
  in
  for i = 0 to 9_999 do
    ignore
      (Nbsc_storage.Table.insert table
         ~lsn:(Nbsc_wal.Lsn.of_int (i + 1))
         (Row.make
            [ Value.Int i; Value.Text ("b" ^ string_of_int i);
              Value.Int (i mod 97) ]))
  done;
  let tests =
    [ Test.make ~name:"log append+get"
        (Staged.stage (fun () ->
             incr n;
             let lsn =
               Nbsc_wal.Log.append log ~txn:1 ~prev_lsn:Nbsc_wal.Lsn.zero
                 (Nbsc_wal.Log_record.Op
                    (Nbsc_wal.Log_record.Insert
                       { table = "t"; row = sample_row }))
             in
             ignore (Nbsc_wal.Log.get log lsn)));
      Test.make ~name:"log record encode/decode"
        (Staged.stage (fun () ->
             let r =
               { Nbsc_wal.Log_record.lsn = Nbsc_wal.Lsn.of_int 7;
                 txn = 3;
                 prev_lsn = Nbsc_wal.Lsn.of_int 6;
                 body =
                   Nbsc_wal.Log_record.Op
                     (Nbsc_wal.Log_record.Insert
                        { table = "t"; row = sample_row })
               }
             in
             ignore (Nbsc_wal.Log_record.decode (Nbsc_wal.Log_record.encode r))));
      Test.make ~name:"lock acquire+release"
        (Staged.stage (fun () ->
             incr n;
             let key = key_of (!n mod 1024) in
             ignore
               (Nbsc_lock.Lock_table.acquire locks ~owner:1 ~table:"t" ~key
                  { Nbsc_lock.Compat.mode = Nbsc_lock.Compat.X;
                    provenance = Nbsc_lock.Compat.Native });
             Nbsc_lock.Lock_table.release locks ~owner:1 ~table:"t" ~key));
      Test.make ~name:"table point lookup"
        (Staged.stage (fun () ->
             incr n;
             ignore (Nbsc_storage.Table.find table (key_of (!n mod 10_000)))));
      Test.make ~name:"secondary index lookup"
        (Staged.stage (fun () ->
             incr n;
             ignore
               (Nbsc_storage.Table.index_lookup table ~index:"by_c"
                  (Row.make [ Value.Int (!n mod 97) ]))));
      Test.make ~name:"table update"
        (Staged.stage (fun () ->
             incr n;
             ignore
               (Nbsc_storage.Table.update table
                  ~lsn:(Nbsc_wal.Lsn.of_int (100_000 + !n))
                  ~key:(key_of (!n mod 10_000))
                  [ (1, Value.Text "updated") ])))
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"nbsc" tests) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name est ->
       match Analyze.OLS.estimates est with
       | Some [ e ] -> rows := (name, e) :: !rows
       | _ -> rows := (name, nan) :: !rows)
    results;
  List.iter
    (fun (name, e) -> say "%-32s %10.1f ns/op" name e)
    (List.sort compare !rows)

(* {1 Migration-strategy benchmark}

   The same FOJ change run under each initial-image migration strategy
   — eager, lazy, hybrid — with the same single-operation workload
   (locked updates, locked reads, snapshot reads) interleaved one
   transaction per quantum: when is the transformation cost paid, how
   many quanta until the change completes, what throughput does the
   workload see while it runs, and how much of the image was
   demand-migrated. The three final target relations must be
   identical: the strategy moves cost, never contents. Writes
   BENCH_migrate.json via [--out]; [--gate FILE] compares the eager
   run's workload throughput against a committed baseline and fails
   on a >30% regression. *)

type migrate_run = {
  mr_label : string;
  mr_quanta : int;
  mr_populate_quanta : int;
  mr_populate_s : float;
  mr_total_s : float;
  mr_txns : int;
  mr_txn_per_s : float;
  mr_demand : int;
  mr_scanned : int;
  mr_propagated : int;
}

let migrate_bench ~quick ~out ~gate =
  header "Migration strategies: eager vs lazy vs hybrid (FOJ)";
  let module Db = Nbsc_engine.Db in
  let module Manager = Nbsc_txn.Manager in
  let scale = if quick then 2_000 else 10_000 in
  let s_count = scale * 2 / 5 in
  let sweep_quantum = if quick then 16 else 64 in
  let r_schema =
    Schema.make ~key:[ "a" ]
      [ Schema.column ~nullable:false "a" Value.TInt;
        Schema.column "b" Value.TText; Schema.column "c" Value.TInt ]
  in
  let s_schema =
    Schema.make ~key:[ "c" ]
      [ Schema.column ~nullable:false "c" Value.TInt;
        Schema.column "d" Value.TText ]
  in
  let spec =
    { Spec.r_table = "R"; s_table = "S"; t_table = "T";
      join_r = [ "c" ]; join_s = [ "c" ]; t_join = [ "c" ];
      r_carry = [ "a"; "b" ]; s_carry = [ "d" ]; many_to_many = false }
  in
  let run_one (label, migration) =
    let db = Db.create () in
    let mgr = Db.manager db in
    ignore (Db.create_table db ~name:"R" r_schema);
    ignore (Db.create_table db ~name:"S" s_schema);
    let load table rows =
      match Db.load db ~table rows with
      | Ok () -> ()
      | Error e ->
        failwith (Format.asprintf "load %s: %a" table Manager.pp_error e)
    in
    let rec chunked lo hi step f =
      if lo <= hi then begin
        f lo (min hi (lo + step - 1));
        chunked (lo + step) hi step f
      end
    in
    chunked 1 scale 2048 (fun lo hi ->
        load "R"
          (List.init (hi - lo + 1) (fun i ->
               let k = lo + i in
               Row.make
                 [ Value.Int k; Value.Text ("r" ^ string_of_int k);
                   Value.Int ((k mod s_count) + 1) ])));
    chunked 1 s_count 2048 (fun lo hi ->
        load "S"
          (List.init (hi - lo + 1) (fun i ->
               let k = lo + i in
               Row.make [ Value.Int k; Value.Text ("s" ^ string_of_int k) ])));
    let options =
      Options.{ default with scan_batch = 256; propagate_batch = 256;
                strategy = migration; drop_sources = false }
    in
    let tf = Transform.foj db ~options spec in
    let rng = Random.State.make [| 7 |] in
    let txns = ref 0 in
    let errors = ref 0 in
    let run_txn () =
      let k = Row.make [ Value.Int (1 + Random.State.int rng scale) ] in
      let res =
        match Random.State.int rng 100 with
        | d when d < 40 ->
          Db.with_txn db (fun txn ->
              Manager.update mgr ~txn ~table:"R" ~key:k
                [ (1, Value.Text ("u" ^ string_of_int d)) ])
        | d when d < 70 ->
          Db.with_txn db (fun txn ->
              match Manager.read mgr ~txn ~table:"R" ~key:k with
              | Ok _ -> Ok ()
              | Error e -> Error e)
        | _ ->
          Db.with_txn ~isolation:`Snapshot db (fun txn ->
              match Manager.read mgr ~txn ~table:"R" ~key:k with
              | Ok _ -> Ok ()
              | Error e -> Error e)
      in
      match res with Ok () -> incr txns | Error _ -> incr errors
    in
    let quanta = ref 0 in
    let populate_quanta = ref 0 in
    let populate_s = ref 0. in
    let finished = ref false in
    let t0 = Unix.gettimeofday () in
    while not !finished do
      (match Transform.step tf with
       | `Running -> ()
       | `Done -> finished := true
       | `Failed m -> failwith ("migrate bench: transformation failed: " ^ m));
      incr quanta;
      if !populate_quanta = 0 && Transform.phase tf <> Transform.Populating
      then begin
        populate_quanta := !quanta;
        populate_s := Unix.gettimeofday () -. t0
      end;
      if not !finished then run_txn ();
      if !quanta > scale * 20 then
        failwith ("migrate bench: " ^ label ^ " did not converge")
    done;
    let total_s = Unix.gettimeofday () -. t0 in
    let p = Transform.progress tf in
    let txn_per_s =
      if total_s > 0. then float_of_int !txns /. total_s else 0.
    in
    say
      "%-8s %6d quanta (%d to populate, %.3fs), %.3fs total, %d txns \
       (%.0f txn/s, %d refused), %d demand-migrated, scanned %d, \
       propagated %d"
      label !quanta !populate_quanta !populate_s total_s !txns txn_per_s
      !errors
      (Transform.demand_migrations tf)
      p.Transform.scanned p.Transform.propagated;
    (* Whatever the strategy, T must equal the full outer join of the
       final sources — the strategy moves cost, never contents. *)
    let oracle =
      Nbsc_relalg.Relalg.full_outer_join
        { Nbsc_relalg.Relalg.r_join = [ "c" ]; s_join = [ "c" ];
          out_join = [ "c" ]; r_cols = [ "a"; "b" ]; s_cols = [ "d" ];
          out_key = [ "a" ] }
        (Db.snapshot db "R") (Db.snapshot db "S")
    in
    if not (Nbsc_relalg.Relalg.equal_as_sets oracle (Db.snapshot db "T"))
    then begin
      say "migrate bench: %s diverged from the FOJ oracle" label;
      exit 1
    end;
    { mr_label = label;
      mr_quanta = !quanta;
      mr_populate_quanta = !populate_quanta;
      mr_populate_s = !populate_s;
      mr_total_s = total_s;
      mr_txns = !txns;
      mr_txn_per_s = txn_per_s;
      mr_demand = Transform.demand_migrations tf;
      mr_scanned = p.Transform.scanned;
      mr_propagated = p.Transform.propagated }
  in
  let runs =
    List.map run_one
      [ ("eager", Options.Eager); ("lazy", Options.Lazy);
        ("hybrid", Options.Hybrid { sweep_quantum }) ]
  in
  let eager = List.hd runs in
  say "all strategies converged to their FOJ oracle";
  let run_json r =
    Json.Obj
      [ ("strategy", Json.String r.mr_label);
        ("quanta", Json.Int r.mr_quanta);
        ("populate_quanta", Json.Int r.mr_populate_quanta);
        ("populate_s", Json.Float r.mr_populate_s);
        ("total_s", Json.Float r.mr_total_s);
        ("txns", Json.Int r.mr_txns);
        ("txn_per_s", Json.Float r.mr_txn_per_s);
        ("demand_migrations", Json.Int r.mr_demand);
        ("scanned", Json.Int r.mr_scanned);
        ("propagated", Json.Int r.mr_propagated) ]
  in
  let find l = List.find (fun r -> String.equal r.mr_label l) runs in
  let lazy_run = find "lazy" in
  (* Across all three runs: the lazy run contributes by far the most
     transactions, so this aggregate is stable enough to gate on even
     at quick scale (the eager run alone finishes in a handful of
     quanta and its rate is mostly timer noise). *)
  let workload_txn_per_s =
    let txns = List.fold_left (fun a r -> a + r.mr_txns) 0 runs in
    let secs = List.fold_left (fun a r -> a +. r.mr_total_s) 0. runs in
    if secs > 0. then float_of_int txns /. secs else 0.
  in
  let json =
    Json.Obj
      [ ("bench", Json.String "migrate");
        ("quick", Json.Bool quick);
        ("scale", Json.Int scale);
        ("runs", Json.List (List.map run_json runs));
        ("eager_txn_per_s", Json.Float eager.mr_txn_per_s);
        ("workload_txn_per_s", Json.Float workload_txn_per_s);
        ( "lazy_total_vs_eager",
          Json.Float
            (if eager.mr_total_s > 0. then
               lazy_run.mr_total_s /. eager.mr_total_s
             else 0.) );
        ( "lazy_demand_share",
          Json.Float
            (float_of_int lazy_run.mr_demand
             /. float_of_int (scale + s_count)) ) ]
  in
  (match out with
   | Some path ->
     let oc = open_out path in
     output_string oc (Json.to_string json);
     output_char oc '\n';
     close_out oc;
     say "results written to %s" path
   | None -> say "%s" (Json.to_string json));
  match gate with
  | None -> ()
  | Some path ->
    let contents =
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    (match Json.of_string (String.trim contents) with
     | Error m -> failwith (Printf.sprintf "gate %s: bad JSON: %s" path m)
     | Ok j ->
       let committed =
         match
           Json.member "workload_txn_per_s" j
           |> Option.map (fun v -> Json.to_float v)
         with
         | Some (Some f) -> f
         | _ ->
           failwith (Printf.sprintf "gate %s: no workload_txn_per_s" path)
       in
       let floor = 0.7 *. committed in
       say "gate: fresh %.0f txn/s vs committed %.0f txn/s (floor %.0f)"
         workload_txn_per_s committed floor;
       if workload_txn_per_s < floor then begin
         say
           "gate: FAIL - >30%% workload-throughput regression under \
            migration";
         exit 1
       end
       else say "gate: ok")

(* {1 Competitor-strategy comparison}

   The same FOJ change run by three implementations head-to-head: the
   paper's log-redo method (eager, fuzzy scan), the same executor with
   the DBLog-style virtual-cut populator (watermark-bracketed chunks),
   and the classical shadow-table method (audit-log trigger plus a
   latched chunked backfill with an atomic cutover). All three face the
   identical single-operation workload — locked updates, locked reads,
   snapshot reads, one transaction per quantum — and each final target
   must equal the relational FOJ oracle over its own final sources
   (divergence exits non-zero). Reported per strategy: workload
   throughput and refusals (the shadow latches show up here), peak
   catch-up lag (propagator lag, resp. audit-log depth), the WAL
   record high-water, and the quanta a crash-and-resume costs (the
   paper method resumes from its checkpointed position; the shadow
   method starts over — that asymmetry is the point). Writes
   BENCH_compare.json via [--out]; [--gate FILE] compares the paper
   run's workload throughput against a committed baseline and fails on
   a >30% regression. *)

type compare_run = {
  cr_label : string;
  cr_quanta : int;
  cr_total_s : float;
  cr_txns : int;
  cr_refused : int;
  cr_txn_per_s : float;
  cr_lag_peak : int;
  cr_wal_high_water : int;
  cr_resume_quanta : int;
}

let compare_bench ~quick ~out ~gate =
  header "Competitor strategies: paper vs shadow-table vs virtual-cut (FOJ)";
  let module Db = Nbsc_engine.Db in
  let module Manager = Nbsc_txn.Manager in
  let module Log = Nbsc_wal.Log in
  let module Persist = Nbsc_engine.Persist in
  let module Shadow = Nbsc_baseline.Shadow_table in
  let scale = if quick then 1_500 else 8_000 in
  let r_schema =
    Schema.make ~key:[ "a" ]
      [ Schema.column ~nullable:false "a" Value.TInt;
        Schema.column "b" Value.TText; Schema.column "c" Value.TInt ]
  in
  let s_schema =
    Schema.make ~key:[ "c" ]
      [ Schema.column ~nullable:false "c" Value.TInt;
        Schema.column "d" Value.TText ]
  in
  let spec =
    { Spec.r_table = "R"; s_table = "S"; t_table = "T";
      join_r = [ "c" ]; join_s = [ "c" ]; t_join = [ "c" ];
      r_carry = [ "a"; "b" ]; s_carry = [ "d" ]; many_to_many = false }
  in
  let load db table rows =
    match Db.load db ~table rows with
    | Ok () -> ()
    | Error e ->
      failwith (Format.asprintf "load %s: %a" table Manager.pp_error e)
  in
  let seed_sources ?(n = scale) db =
    let ns = n * 2 / 5 in
    ignore (Db.create_table db ~name:"R" r_schema);
    ignore (Db.create_table db ~name:"S" s_schema);
    let rec chunked lo hi step f =
      if lo <= hi then begin
        f lo (min hi (lo + step - 1));
        chunked (lo + step) hi step f
      end
    in
    chunked 1 n 2048 (fun lo hi ->
        load db "R"
          (List.init (hi - lo + 1) (fun i ->
               let k = lo + i in
               Row.make
                 [ Value.Int k; Value.Text ("r" ^ string_of_int k);
                   Value.Int ((k mod ns) + 1) ])));
    chunked 1 ns 2048 (fun lo hi ->
        load db "S"
          (List.init (hi - lo + 1) (fun i ->
               let k = lo + i in
               Row.make [ Value.Int k; Value.Text ("s" ^ string_of_int k) ])))
  in
  let options =
    Options.{ default with scan_batch = 256; propagate_batch = 256;
              drop_sources = false }
  in
  let vc_options = { options with Options.population = Options.Virtual_cut } in
  let oracle_check label db =
    let oracle =
      Nbsc_relalg.Relalg.full_outer_join
        { Nbsc_relalg.Relalg.r_join = [ "c" ]; s_join = [ "c" ];
          out_join = [ "c" ]; r_cols = [ "a"; "b" ]; s_cols = [ "d" ];
          out_key = [ "a" ] }
        (Db.snapshot db "R") (Db.snapshot db "S")
    in
    if not (Nbsc_relalg.Relalg.equal_as_sets oracle (Db.snapshot db "T"))
    then begin
      say "compare bench: %s diverged from the FOJ oracle" label;
      exit 1
    end
  in
  (* The shared workload-under-change loop: [step] advances the change
     one quantum (true = done), [lag] is the strategy's catch-up gauge
     (propagator lag, resp. audit-log depth). *)
  let run_loop label db ~step ~lag =
    let mgr = Db.manager db in
    let log = Manager.log mgr in
    let rng = Random.State.make [| 11 |] in
    let txns = ref 0 and refused = ref 0 in
    let run_txn () =
      let k = Row.make [ Value.Int (1 + Random.State.int rng scale) ] in
      let res =
        match Random.State.int rng 100 with
        | d when d < 40 ->
          Db.with_txn db (fun txn ->
              Manager.update mgr ~txn ~table:"R" ~key:k
                [ (1, Value.Text ("u" ^ string_of_int d)) ])
        | d when d < 70 ->
          Db.with_txn db (fun txn ->
              match Manager.read mgr ~txn ~table:"R" ~key:k with
              | Ok _ -> Ok ()
              | Error e -> Error e)
        | _ ->
          Db.with_txn ~isolation:`Snapshot db (fun txn ->
              match Manager.read mgr ~txn ~table:"R" ~key:k with
              | Ok _ -> Ok ()
              | Error e -> Error e)
      in
      match res with Ok () -> incr txns | Error _ -> incr refused
    in
    let quanta = ref 0 and lag_peak = ref 0 and wal_hw = ref 0 in
    let finished = ref false in
    let t0 = Unix.gettimeofday () in
    while not !finished do
      finished := step ();
      incr quanta;
      lag_peak := max !lag_peak (lag ());
      wal_hw := max !wal_hw (Log.live_high_water log);
      (* Ten workload transactions per quantum: enough samples that the
         throughput (and the shadow method's latch refusals) are
         measured, not timer noise. *)
      if not !finished then
        for _ = 1 to 10 do run_txn () done;
      if !quanta > scale * 30 then
        failwith ("compare bench: " ^ label ^ " did not converge")
    done;
    let total_s = Unix.gettimeofday () -. t0 in
    (!quanta, total_s, !txns, !refused, !lag_peak, !wal_hw)
  in
  (* Crash-resume cost, measured on a small persisted instance: drive
     the change past its population, checkpoint, crash mid-flight, and
     count the quanta the reopened database needs to converge. The
     paper-framework strategies resume from the checkpointed propagator
     position; the shadow method has no durable job state — its
     partial targets are dropped and the whole backfill repeats. *)
  let mini = if quick then 400 else 1_000 in
  let mini_options population =
    { options with Options.scan_batch = 32; propagate_batch = 32; population }
  in
  let fresh_dir label =
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "nbsc_compare_%d_%s" (Unix.getpid ()) label)
    in
    if Sys.file_exists dir then
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir)
    else Unix.mkdir dir 0o755;
    dir
  in
  let wipe dir =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  let ok_p what = function
    | Ok v -> v
    | Error e -> failwith (Format.asprintf "%s: %a" what Persist.pp_error e)
  in
  let mini_traffic db rng =
    let mgr = Db.manager db in
    let k = Row.make [ Value.Int (1 + Random.State.int rng mini) ] in
    ignore
      (Db.with_txn db (fun txn ->
           Manager.update mgr ~txn ~table:"R" ~key:k
             [ (1, Value.Text "crashy") ]))
  in
  let resume_quanta_paper label population =
    let dir = fresh_dir label in
    let p = ok_p "create" (Persist.create_dir ~dir) in
    let db = Persist.db p in
    seed_sources ~n:mini db;
    ok_p "checkpoint" (Persist.checkpoint p);
    let opts = mini_options population in
    let tf = Transform.foj db ~options:opts spec in
    let rng = Random.State.make [| 23 |] in
    (* Past the population, so the checkpoint can cover a resume. *)
    while Transform.phase tf = Transform.Populating do
      (match Transform.step tf with
       | `Running | `Done -> ()
       | `Failed m -> failwith ("compare bench: " ^ m));
      mini_traffic db rng
    done;
    ok_p "checkpoint" (Persist.checkpoint p);
    for _ = 1 to 8 do
      ignore (Transform.step tf);
      mini_traffic db rng
    done;
    Persist.crash p;
    let p2 = ok_p "reopen" (Persist.open_dir ~dir) in
    let db2 = Persist.db p2 in
    let tf2 =
      match Transform.resume ~options:opts p2 with
      | Ok [ tf2 ] -> tf2
      | Ok l -> failwith (Printf.sprintf "resume: %d jobs" (List.length l))
      | Error e -> failwith ("resume: " ^ Nbsc_error.to_string e)
    in
    let quanta = ref 0 in
    let finished = ref false in
    while not !finished do
      (match Transform.step tf2 with
       | `Running -> ()
       | `Done -> finished := true
       | `Failed m -> failwith ("compare bench: resumed: " ^ m));
      incr quanta;
      if !quanta > mini * 30 then failwith "compare bench: resume stuck"
    done;
    oracle_check (label ^ " (resumed)") db2;
    Persist.close p2;
    wipe dir;
    !quanta
  in
  let resume_quanta_shadow () =
    let dir = fresh_dir "shadow" in
    let p = ok_p "create" (Persist.create_dir ~dir) in
    let db = Persist.db p in
    seed_sources ~n:mini db;
    ok_p "checkpoint" (Persist.checkpoint p);
    let sh =
      Shadow.create db ~drop_sources:false ~chunk:32
        (Transformation.foj ~options:(mini_options Options.Fuzzy) db spec)
    in
    let rng = Random.State.make [| 23 |] in
    (* Crash roughly mid-backfill. *)
    while Shadow.backfilled sh < mini / 2 do
      ignore (Shadow.step sh ~limit:32);
      mini_traffic db rng
    done;
    ok_p "checkpoint" (Persist.checkpoint p);
    Persist.crash p;
    let p2 = ok_p "reopen" (Persist.open_dir ~dir) in
    let db2 = Persist.db p2 in
    (* No durable job state: drop the half-built target, start over. *)
    let catalog = Db.catalog db2 in
    if Nbsc_storage.Catalog.mem catalog "T" then
      Nbsc_storage.Catalog.drop catalog "T";
    let sh2 =
      Shadow.create db2 ~drop_sources:false ~chunk:32
        (Transformation.foj ~options:(mini_options Options.Fuzzy) db2 spec)
    in
    let quanta = ref 0 in
    while not (Shadow.step sh2 ~limit:32) do
      incr quanta;
      if !quanta > mini * 30 then failwith "compare bench: shadow stuck"
    done;
    oracle_check "shadow (restarted)" db2;
    Persist.close p2;
    wipe dir;
    !quanta
  in
  let run_paper label options =
    let db = Db.create () in
    seed_sources db;
    let tf = Transform.foj db ~options spec in
    let step () =
      match Transform.step tf with
      | `Running -> false
      | `Done -> true
      | `Failed m -> failwith ("compare bench: " ^ label ^ ": " ^ m)
    in
    let lag () = (Transform.progress tf).Transform.lag in
    let quanta, total_s, txns, refused, lag_peak, wal_hw =
      run_loop label db ~step ~lag
    in
    oracle_check label db;
    let resume =
      resume_quanta_paper label options.Options.population
    in
    { cr_label = label; cr_quanta = quanta; cr_total_s = total_s;
      cr_txns = txns; cr_refused = refused;
      cr_txn_per_s =
        (if total_s > 0. then float_of_int txns /. total_s else 0.);
      cr_lag_peak = lag_peak; cr_wal_high_water = wal_hw;
      cr_resume_quanta = resume }
  in
  let run_shadow () =
    let db = Db.create () in
    seed_sources db;
    let sh =
      Shadow.create db ~drop_sources:false ~chunk:256
        (Transformation.foj ~options db spec)
    in
    let step () = Shadow.step sh ~limit:256 in
    let lag () = Shadow.audit_pending sh in
    let quanta, total_s, txns, refused, lag_peak, wal_hw =
      run_loop "shadow" db ~step ~lag
    in
    oracle_check "shadow" db;
    say
      "shadow: %d writes captured, %d replayed, %d latched windows"
      (Shadow.captured sh) (Shadow.replayed sh) (Shadow.latched_windows sh);
    { cr_label = "shadow"; cr_quanta = quanta; cr_total_s = total_s;
      cr_txns = txns; cr_refused = refused;
      cr_txn_per_s =
        (if total_s > 0. then float_of_int txns /. total_s else 0.);
      cr_lag_peak = lag_peak; cr_wal_high_water = wal_hw;
      cr_resume_quanta = resume_quanta_shadow () }
  in
  let runs =
    [ run_paper "paper" options;
      run_paper "virtual-cut" vc_options;
      run_shadow () ]
  in
  List.iter
    (fun r ->
       say
         "%-12s %6d quanta, %.3fs, %d txns (%.0f txn/s, %d refused), \
          lag peak %d, wal high-water %d, crash-resume %d quanta"
         r.cr_label r.cr_quanta r.cr_total_s r.cr_txns r.cr_txn_per_s
         r.cr_refused r.cr_lag_peak r.cr_wal_high_water r.cr_resume_quanta)
    runs;
  say "all strategies converged to their FOJ oracle";
  let find l = List.find (fun r -> String.equal r.cr_label l) runs in
  let paper = find "paper" in
  let shadow = find "shadow" in
  let vc = find "virtual-cut" in
  let ratio a b = if b > 0. then a /. b else 0. in
  let run_json r =
    Json.Obj
      [ ("strategy", Json.String r.cr_label);
        ("quanta", Json.Int r.cr_quanta);
        ("total_s", Json.Float r.cr_total_s);
        ("txns", Json.Int r.cr_txns);
        ("refused", Json.Int r.cr_refused);
        ("txn_per_s", Json.Float r.cr_txn_per_s);
        ("catchup_lag_peak", Json.Int r.cr_lag_peak);
        ("wal_high_water", Json.Int r.cr_wal_high_water);
        ("crash_resume_quanta", Json.Int r.cr_resume_quanta) ]
  in
  let json =
    Json.Obj
      [ ("bench", Json.String "compare");
        ("quick", Json.Bool quick);
        ("scale", Json.Int scale);
        ("runs", Json.List (List.map run_json runs));
        ("paper_txn_per_s", Json.Float paper.cr_txn_per_s);
        ("shadow_vs_paper_txn", Json.Float (ratio shadow.cr_txn_per_s paper.cr_txn_per_s));
        ("vc_vs_paper_txn", Json.Float (ratio vc.cr_txn_per_s paper.cr_txn_per_s));
        ( "shadow_vs_paper_resume",
          Json.Float
            (ratio
               (float_of_int shadow.cr_resume_quanta)
               (float_of_int paper.cr_resume_quanta)) ) ]
  in
  (match out with
   | Some path ->
     let oc = open_out path in
     output_string oc (Json.to_string json);
     output_char oc '\n';
     close_out oc;
     say "results written to %s" path
   | None -> say "%s" (Json.to_string json));
  match gate with
  | None -> ()
  | Some path ->
    let contents =
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    (match Json.of_string (String.trim contents) with
     | Error m -> failwith (Printf.sprintf "gate %s: bad JSON: %s" path m)
     | Ok j ->
       let committed =
         match
           Json.member "paper_txn_per_s" j
           |> Option.map (fun v -> Json.to_float v)
         with
         | Some (Some f) -> f
         | _ -> failwith (Printf.sprintf "gate %s: no paper_txn_per_s" path)
       in
       let floor = 0.7 *. committed in
       say "gate: fresh %.0f txn/s vs committed %.0f txn/s (floor %.0f)"
         paper.cr_txn_per_s committed floor;
       if paper.cr_txn_per_s < floor then begin
         say
           "gate: FAIL - >30%% paper-strategy workload-throughput \
            regression";
         exit 1
       end
       else say "gate: ok")

(* {1 Driver} *)

let () =
  let args = match Array.to_list Sys.argv with _ :: rest -> rest | [] -> [] in
  (* Peel off [--trace FILE]; its presence implies the trace target. *)
  let trace_out, args =
    let rec go acc = function
      | "--trace" :: path :: rest -> (Some path, List.rev_append acc rest)
      | a :: rest -> go (a :: acc) rest
      | [] -> (None, List.rev acc)
    in
    go [] args
  in
  (* Peel off [--out FILE] (used by the wal and engine targets for
     their JSON). *)
  let json_out, args =
    let rec go acc = function
      | "--out" :: path :: rest -> (Some path, List.rev_append acc rest)
      | a :: rest -> go (a :: acc) rest
      | [] -> (None, List.rev acc)
    in
    go [] args
  in
  (* Peel off [--gate FILE] (engine target: regression gate vs a
     committed baseline). *)
  let gate_file, args =
    let rec go acc = function
      | "--gate" :: path :: rest -> (Some path, List.rev_append acc rest)
      | a :: rest -> go (a :: acc) rest
      | [] -> (None, List.rev acc)
    in
    go [] args
  in
  (* [--trace] implies the trace target, except when the engine target
     is explicitly named — there it streams that bench's own metric
     events instead. *)
  let args =
    if trace_out <> None && not (List.mem "engine" args) then "trace" :: args
    else args
  in
  let quick = List.mem "quick" args in
  let setup =
    if quick then Experiment.quick_setup else Experiment.default_setup
  in
  let sync_setup =
    if quick then Experiment.quick_setup
    else { Experiment.quick_setup with Experiment.scale = 10_000 }
  in
  let targets =
    match List.filter (fun a -> a <> "quick") args with
    | [] -> [ "all" ]
    | ts -> ts
  in
  let wants t = List.mem "all" targets || List.mem t targets in
  if wants "fig1" then fig1 ();
  if wants "fig2" then fig2 ();
  if wants "fig3" then fig3 ();
  if wants "fig4a" then fig4a setup;
  if wants "fig4b" then fig4b setup;
  if wants "fig4c" then fig4c setup;
  if wants "fig4d" then fig4d setup;
  if wants "foj" then fig4_foj setup;
  if wants "sync" then sync_bench sync_setup;
  if wants "methods" then methods sync_setup;
  if wants "ablate" then ablate sync_setup;
  if wants "deadlock" then deadlock_bench quick;
  if wants "wal" then wal_bench ~quick ~out:json_out;
  if wants "engine" then
    engine_bench ~quick ~out:json_out ~gate:gate_file
      ~trace:(if List.mem "engine" targets then trace_out else None);
  if wants "shard" then shard_bench ~quick ~out:json_out ~gate:gate_file;
  if wants "migrate" then migrate_bench ~quick ~out:json_out ~gate:gate_file;
  if wants "compare" then compare_bench ~quick ~out:json_out ~gate:gate_file;
  if List.mem "trace" targets then trace_bench ~quick ~out:trace_out;
  if wants "micro" then micro ();
  say "";
  say "done."
