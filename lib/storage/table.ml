open Nbsc_value
open Nbsc_wal

(* Per-shard projection of the arrival array, built lazily when the
   first sharded cursor opens. Bucket [s] holds, in arrival order, every
   arrival entry whose key hashes to shard [s] — duplicates and stale
   entries included, so a 1-shard view replays the arrival array
   verbatim and the sharded scan at [shards = 1] is byte-identical to
   the legacy cursor. While any sharded cursor is live, [push_arrival]
   appends to the matching bucket too (fuzzy scans must be able to see
   later arrivals, exactly like the flat array). *)
type shard_view = {
  sv_shards : int;
  sv_arr : Row.Key.t array array;
  sv_len : int array;
  mutable sv_cursors : int;
}

(* One superseded row state, kept for snapshot readers. [v_row = None]
   is a delete tombstone: a reader whose snapshot covers the deleting
   transaction resolves to "no row" instead of falling through to an
   older committed version. Stamps are the overwritten record's own
   (lsn, txn) — commit-LSN resolution happens above storage, which only
   records what it was told. *)
type version = {
  v_row : Row.t option;
  v_lsn : Lsn.t;
  v_txn : int;
}

type t = {
  name : string;
  schema : Schema.t;
  (* Key positions compiled once at creation: every heap operation
     projects the key, and rebuilding the position list (plus a
     list-walking projection) per call dominated the table hot path. *)
  key_positions : int array;
  key_member : bool array;  (* indexed by column position *)
  heap : Record.t Row.Key.Tbl.t;
  (* Version chains, newest first; the heap record is always the newest
     state and is not duplicated here. Bounded by [gc_versions]. *)
  versions : version list Row.Key.Tbl.t;
  mutable nversions : int;
  mutable indexes : Index.t list;
  mutable ordered : Ordered_index.t list;
  (* Arrival order of keys; the fuzzy cursor walks this like a page
     scan. Deleted keys become stale entries that lookups skip, and
     delete+reinsert appends the key again — both reclaimed by
     [maybe_compact] once the stale fraction passes 1/2, but only while
     no fuzzy cursor is live (cursor positions index into this array). *)
  mutable arrival : Row.Key.t array;
  mutable arrival_len : int;
  mutable live_cursors : int;
  mutable shard_view : shard_view option;
  (* Consulted before materializing a version entry for an overwritten
     committed (system, txn = 0) state. The transaction manager wires
     this to "is any snapshot transaction active?", so the bulk system
     writes of population and propagation pay nothing when nobody can
     ever resolve the overwritten state: a snapshot that begins later
     pins at a higher LSN and reads the new heap record directly.
     Uncommitted user writes always push — a snapshot may begin before
     they commit. Default: retain everything (bare tables without a
     manager stay fully versioned). *)
  mutable retain_versions : unit -> bool;
}

let create ?(indexes = []) ~name schema =
  let mk (index_name, cols) =
    Index.create ~name:index_name ~positions:(Schema.positions schema cols)
  in
  let key_positions = Array.of_list (Schema.key_positions schema) in
  let key_member = Array.make (Schema.arity schema) false in
  Array.iter (fun i -> key_member.(i) <- true) key_positions;
  { name;
    schema;
    key_positions;
    key_member;
    heap = Row.Key.Tbl.create 1024;
    versions = Row.Key.Tbl.create 64;
    nversions = 0;
    indexes = List.map mk indexes;
    ordered = [];
    arrival = Array.make 1024 [||];
    arrival_len = 0;
    live_cursors = 0;
    retain_versions = (fun () -> true);
    shard_view = None }

(* Key-hash partitioning shared by every shard-aware component (cursor
   buckets, propagator routing, shard latches): the assignment must be
   one function or a record would scan in one shard and propagate in
   another. *)
let shard_of_key ~shards key =
  if shards <= 1 then 0 else (Row.Key.hash key land max_int) mod shards

let name t = t.name
let schema t = t.schema
let cardinality t = Row.Key.Tbl.length t.heap
let key_of_row t row =
  let n = Array.length t.key_positions in
  let out = Array.make n Value.Null in
  for i = 0 to n - 1 do
    out.(i) <- Row.get row t.key_positions.(i)
  done;
  Row.unsafe_of_array out
let find t key = Row.Key.Tbl.find_opt t.heap key
let mem t key = Row.Key.Tbl.mem t.heap key

let arrival_length t = t.arrival_len

(* Rewrite [arrival] keeping the first occurrence of every key still in
   the heap, in order. Only called with no live cursor, so no position
   can dangle. The array shrinks back toward the live count (churn must
   not leave a table holding its high-water arrival forever). *)
let compact_arrival t =
  let live = Row.Key.Tbl.length t.heap in
  let cap = ref 1024 in
  while !cap < live do cap := !cap * 2 done;
  let fresh = Array.make !cap [||] in
  let kept = Row.Key.Tbl.create (max 16 live) in
  let n = ref 0 in
  for i = 0 to t.arrival_len - 1 do
    let key = t.arrival.(i) in
    if Row.Key.Tbl.mem t.heap key && not (Row.Key.Tbl.mem kept key) then begin
      Row.Key.Tbl.replace kept key ();
      fresh.(!n) <- key;
      incr n
    end
  done;
  t.arrival <- fresh;
  t.arrival_len <- !n

let maybe_compact t =
  if
    t.live_cursors = 0
    && t.arrival_len >= 64
    && t.arrival_len > 2 * Row.Key.Tbl.length t.heap
  then compact_arrival t

let sv_push sv shard key =
  let len = sv.sv_len.(shard) in
  if len >= Array.length sv.sv_arr.(shard) then begin
    let bigger = Array.make (max 64 (Array.length sv.sv_arr.(shard) * 2)) [||] in
    Array.blit sv.sv_arr.(shard) 0 bigger 0 len;
    sv.sv_arr.(shard) <- bigger
  end;
  sv.sv_arr.(shard).(len) <- key;
  sv.sv_len.(shard) <- len + 1

let build_shard_view t ~shards =
  let sv =
    { sv_shards = shards;
      sv_arr = Array.init shards (fun _ -> Array.make 64 [||]);
      sv_len = Array.make shards 0;
      sv_cursors = 0 }
  in
  for i = 0 to t.arrival_len - 1 do
    let key = t.arrival.(i) in
    sv_push sv (shard_of_key ~shards key) key
  done;
  t.shard_view <- Some sv;
  sv

let push_arrival t key =
  maybe_compact t;
  if t.arrival_len >= Array.length t.arrival then begin
    let bigger = Array.make (Array.length t.arrival * 2) [||] in
    Array.blit t.arrival 0 bigger 0 t.arrival_len;
    t.arrival <- bigger
  end;
  t.arrival.(t.arrival_len) <- key;
  t.arrival_len <- t.arrival_len + 1;
  (* Mirror the append into the live shard view, if any — sharded
     cursors must observe later arrivals exactly as flat cursors do.
     The view only exists while its cursors are live, and live cursors
     suppress [maybe_compact], so bucket positions never dangle. *)
  match t.shard_view with
  | Some sv -> sv_push sv (shard_of_key ~shards:sv.sv_shards key) key
  | None -> ()

(* {2 Version chains} *)

let push_version t key v =
  let chain =
    match Row.Key.Tbl.find_opt t.versions key with
    | Some c -> c
    | None -> []
  in
  Row.Key.Tbl.replace t.versions key (v :: chain);
  t.nversions <- t.nversions + 1

let push_old_record t key (old : Record.t) =
  push_version t key
    { v_row = Some old.Record.row; v_lsn = old.Record.lsn;
      v_txn = old.Record.txn }

let set_retain_hint t f = t.retain_versions <- f

(* Whether overwriting a state written by [txn] must keep the old
   version: always for user transactions (their heap record stays
   invisible to snapshots until they commit), and for system writes
   only while the hint says a snapshot might still resolve it. *)
let must_retain t ~txn = txn <> 0 || t.retain_versions ()

let versions t key =
  match Row.Key.Tbl.find_opt t.versions key with
  | Some c -> c
  | None -> []

let versions_count t = t.nversions

let gc_versions t ~horizon ~classify =
  let reclaimed = ref 0 in
  (* Collect updates first: the stdlib hashtable must not be mutated
     while being iterated. *)
  let updates = ref [] in
  Row.Key.Tbl.iter
    (fun key chain ->
       (* A version is reachable only while no newer committed state at
          or below the horizon covers it: every live and future snapshot
          sits at or above the horizon and resolves to that newer state
          first. The heap record is the newest state of all. *)
       let covered =
         ref
           (match Row.Key.Tbl.find_opt t.heap key with
            | Some r ->
              (match classify ~txn:r.Record.txn ~lsn:r.Record.lsn with
               | `At c -> Lsn.(c <= horizon)
               | `Dead | `Live -> false)
            | None -> false)
       in
       let keep =
         List.filter
           (fun v ->
              match classify ~txn:v.v_txn ~lsn:v.v_lsn with
              | `Live ->
                (* An uncommitted writer's overwritten state — only that
                   writer can reach it, but keep it unconditionally:
                   cheap, and robust against unlocked system writes. *)
                true
              | `Dead ->
                incr reclaimed;
                false
              | `At c ->
                if !covered then begin
                  incr reclaimed;
                  false
                end
                else if Lsn.(c <= horizon) then begin
                  covered := true;
                  (* This is the version every snapshot at or above the
                     horizon resolves to — keep it, unless it is a
                     tombstone with no live heap record, where end-of-
                     chain already means "no row". *)
                  match v.v_row with
                  | None ->
                    incr reclaimed;
                    false
                  | Some _ -> true
                end
                else true)
           chain
       in
       if List.compare_lengths keep chain <> 0 then
         updates := (key, keep) :: !updates)
    t.versions;
  List.iter
    (fun (key, keep) ->
       match keep with
       | [] -> Row.Key.Tbl.remove t.versions key
       | keep -> Row.Key.Tbl.replace t.versions key keep)
    !updates;
  t.nversions <- t.nversions - !reclaimed;
  !reclaimed

let index_insert t key row =
  List.iter (fun ix -> Index.insert ix ~key row) t.indexes;
  List.iter (fun ix -> Ordered_index.insert ix ~key row) t.ordered

let index_remove t key row =
  List.iter (fun ix -> Index.remove ix ~key row) t.indexes;
  List.iter (fun ix -> Ordered_index.remove ix ~key row) t.ordered

let insert t ~lsn ?txn ?counter ?flag ?aux row =
  if Row.arity row <> Schema.arity t.schema then
    invalid_arg
      (Printf.sprintf "Table.insert(%s): arity %d, expected %d" t.name
         (Row.arity row) (Schema.arity t.schema));
  let key = key_of_row t row in
  if Row.Key.Tbl.mem t.heap key then Error `Duplicate_key
  else begin
    Row.Key.Tbl.replace t.heap key (Record.make ?txn ?counter ?flag ?aux ~lsn row);
    index_insert t key row;
    push_arrival t key;
    Ok ()
  end

let check_not_key t changes =
  List.iter
    (fun (i, _) ->
       if i >= 0 && i < Array.length t.key_member && t.key_member.(i) then
         invalid_arg
           (Printf.sprintf "Table.update(%s): change touches key column %d"
              t.name i))
    changes

let update t ~lsn ?(txn = 0) ~key changes =
  match Row.Key.Tbl.find_opt t.heap key with
  | None -> Error `Not_found
  | Some record ->
    check_not_key t changes;
    if must_retain t ~txn then push_old_record t key record;
    let row' = Row.update record.Record.row changes in
    let record' =
      Record.with_txn (Record.with_lsn (Record.with_row record row') lsn) txn
    in
    (* An update that leaves every indexed column alone leaves that
       index's entry (projection and key) unchanged — skip the
       remove+reinsert. Most workload updates touch no index at all. *)
    List.iter
      (fun ix ->
         if Index.touches ix changes then begin
           Index.remove ix ~key record.Record.row;
           Index.insert ix ~key row'
         end)
      t.indexes;
    List.iter
      (fun ix ->
         if Ordered_index.touches ix changes then begin
           Ordered_index.remove ix ~key record.Record.row;
           Ordered_index.insert ix ~key row'
         end)
      t.ordered;
    Row.Key.Tbl.replace t.heap key record';
    Ok record'

let set_record t ~key record =
  match Row.Key.Tbl.find_opt t.heap key with
  | None -> Error `Not_found
  | Some old ->
    if not (Row.Key.equal (key_of_row t record.Record.row) key) then
      invalid_arg (Printf.sprintf "Table.set_record(%s): key mismatch" t.name);
    (* [set_record] callers are all system-side (counter bumps, the
       consistency checker): gate like a system write. *)
    if must_retain t ~txn:0 then push_old_record t key old;
    index_remove t key old.Record.row;
    Row.Key.Tbl.replace t.heap key record;
    index_insert t key record.Record.row;
    Ok ()

let delete t ~lsn ?(txn = 0) key =
  match Row.Key.Tbl.find_opt t.heap key with
  | None -> Error `Not_found
  | Some record ->
    (* The tombstone records the delete itself: a snapshot that covers
       the deleting transaction must resolve to "no row", not fall
       through to the pre-delete version. Unlike update, an elided
       delete push is unsafe whenever a chain already exists — with
       the heap record gone, a later snapshot's chain walk would fall
       through to a stale pre-delete version — so retain in that case
       regardless of the hint. *)
    if must_retain t ~txn || Row.Key.Tbl.mem t.versions key then begin
      push_old_record t key record;
      push_version t key { v_row = None; v_lsn = lsn; v_txn = txn }
    end;
    Row.Key.Tbl.remove t.heap key;
    index_remove t key record.Record.row;
    maybe_compact t;
    Ok record

let index_definitions t =
  List.map
    (fun ix ->
       ( Index.name ix,
         List.map (fun i -> Schema.name_at t.schema i) (Index.positions ix) ))
    t.indexes

let ordered_index_definitions t =
  List.map
    (fun ix ->
       ( Ordered_index.name ix,
         List.map
           (fun i -> Schema.name_at t.schema i)
           (Ordered_index.positions ix) ))
    t.ordered

let add_ordered_index t ~name ~columns =
  let exists =
    List.exists (fun ix -> String.equal (Ordered_index.name ix) name) t.ordered
  in
  if not exists then begin
    let ix =
      Ordered_index.create ~name ~positions:(Schema.positions t.schema columns)
    in
    Row.Key.Tbl.iter
      (fun key r -> Ordered_index.insert ix ~key r.Record.row)
      t.heap;
    t.ordered <- ix :: t.ordered
  end

let find_ordered t name =
  match
    List.find_opt (fun ix -> String.equal (Ordered_index.name ix) name) t.ordered
  with
  | Some ix -> ix
  | None -> raise Not_found

let ordered_range t ~index ?lo ?hi () =
  Ordered_index.range (find_ordered t index) ?lo ?hi ()

let add_index t ~name ~columns =
  let exists =
    List.exists (fun ix -> String.equal (Index.name ix) name) t.indexes
  in
  if not exists then begin
    let ix = Index.create ~name ~positions:(Schema.positions t.schema columns) in
    Row.Key.Tbl.iter (fun key r -> Index.insert ix ~key r.Record.row) t.heap;
    t.indexes <- ix :: t.indexes
  end

let find_index t name =
  match List.find_opt (fun ix -> String.equal (Index.name ix) name) t.indexes with
  | Some ix -> ix
  | None -> raise Not_found

let index_lookup t ~index proj = Index.lookup (find_index t index) proj

let index_lookup_records t ~index proj =
  List.filter_map
    (fun key ->
       match find t key with Some r -> Some (key, r) | None -> None)
    (index_lookup t ~index proj)

let iter t f = Row.Key.Tbl.iter f t.heap

let fold t ~init ~f =
  Row.Key.Tbl.fold (fun k r acc -> f acc k r) t.heap init

let to_rows t = fold t ~init:[] ~f:(fun acc _ r -> r.Record.row :: acc)

let max_lsn t =
  fold t ~init:Lsn.zero ~f:(fun acc _ r -> Lsn.max acc r.Record.lsn)

module Fuzzy_cursor = struct
  type table = t

  type t = {
    table : table;
    (* [Some (view, shard)]: walk that shard's bucket instead of the
       flat arrival array. Sharded cursors over distinct shards of one
       table can run on different domains concurrently: each touches
       only its own bucket, its own [seen]/[pos], and reads the heap,
       which is frozen for the duration of a parallel quantum. *)
    view : (shard_view * int) option;
    mutable pos : int;
    seen : unit Row.Key.Tbl.t;
    mutable scanned : int;
    mutable live : bool;
  }

  let make table =
    table.live_cursors <- table.live_cursors + 1;
    { table; view = None; pos = 0; seen = Row.Key.Tbl.create 1024;
      scanned = 0; live = true }

  let make_sharded table ~shards ~shard =
    if shards <= 0 || shard < 0 || shard >= shards then
      invalid_arg "Fuzzy_cursor.make_sharded: shard out of range";
    let sv =
      match table.shard_view with
      | Some sv when sv.sv_shards = shards -> sv
      | Some sv when sv.sv_cursors > 0 ->
        invalid_arg
          "Fuzzy_cursor.make_sharded: live view with a different shard count"
      | Some _ | None -> build_shard_view table ~shards
    in
    sv.sv_cursors <- sv.sv_cursors + 1;
    table.live_cursors <- table.live_cursors + 1;
    { table; view = Some (sv, shard); pos = 0;
      seen = Row.Key.Tbl.create 1024; scanned = 0; live = true }

  let close c =
    if c.live then begin
      c.live <- false;
      c.table.live_cursors <- c.table.live_cursors - 1;
      match c.view with
      | None -> ()
      | Some (sv, _) ->
        sv.sv_cursors <- sv.sv_cursors - 1;
        if sv.sv_cursors = 0 then begin
          (* Last sharded cursor gone: drop the view so plain scans and
             compaction stop paying for the mirror (guard against a
             newer view having replaced it meanwhile). *)
          match c.table.shard_view with
          | Some cur when cur == sv -> c.table.shard_view <- None
          | Some _ | None -> ()
        end
    end

  let cursor_len c =
    match c.view with
    | Some (sv, shard) -> sv.sv_len.(shard)
    | None -> c.table.arrival_len

  let cursor_key c i =
    match c.view with
    | Some (sv, shard) -> sv.sv_arr.(shard).(i)
    | None -> c.table.arrival.(i)

  let next_batch c ~limit =
    let batch = ref [] in
    let n = ref 0 in
    while !n < limit && c.pos < cursor_len c do
      let key = cursor_key c c.pos in
      c.pos <- c.pos + 1;
      if not (Row.Key.Tbl.mem c.seen key) then begin
        Row.Key.Tbl.replace c.seen key ();
        match Row.Key.Tbl.find_opt c.table.heap key with
        | Some record ->
          batch := record :: !batch;
          incr n;
          c.scanned <- c.scanned + 1
        | None -> ()  (* deleted since arrival: skip, like a page scan *)
      end
    done;
    List.rev !batch

  let finished c = c.pos >= cursor_len c
  let scanned c = c.scanned
end
