(** Heap tables.

    A table is a heap of {!Record.t} keyed by primary key, plus any
    number of secondary indexes kept in sync on every mutation. All
    mutators take the LSN of the log record that caused them — storage
    itself never talks to the log.

    The {b fuzzy cursor} implements the lock-free scan of Hvasshovd et
    al. used by the initial population step: it walks the heap in
    insertion order in bounded batches so user transactions can
    interleave; concurrent updates may or may not be observed, which is
    exactly the fuzziness the log propagation must absorb. *)

open Nbsc_value
open Nbsc_wal

type t

val create : ?indexes:(string * string list) list -> name:string ->
  Schema.t -> t
(** [create ~name schema ~indexes] where each index is
    [(index_name, column_names)].
    @raise Invalid_argument on unknown index columns. *)

val name : t -> string
val schema : t -> Schema.t
val cardinality : t -> int

val key_of_row : t -> Row.t -> Row.Key.t

val find : t -> Row.Key.t -> Record.t option
val mem : t -> Row.Key.t -> bool

val insert : t -> lsn:Lsn.t -> ?txn:int -> ?counter:int -> ?flag:Record.flag ->
  ?aux:int -> Row.t -> (unit, [ `Duplicate_key ]) result
(** [txn] stamps the record's writer for MVCC visibility; the default 0
    means "committed at [lsn]" (system, bulk-load and restore writes). *)

val update : t -> lsn:Lsn.t -> ?txn:int -> key:Row.Key.t ->
  (int * Value.t) list -> (Record.t, [ `Not_found ]) result
(** Returns the {e new} record. Updating key columns re-keys the heap
    (fails [`Duplicate_key] is impossible here: callers that change key
    columns must delete+insert instead — the engine enforces this; the
    transformation rules never update T's key columns in place except
    through their own delete/insert logic).
    @raise Invalid_argument if the changes touch a key column. *)

val set_record : t -> key:Row.Key.t -> Record.t ->
  (unit, [ `Not_found ]) result
(** Replace a record wholesale, preserving the key (used by the split
    rules to adjust counter/flag/LSN in one step).
    @raise Invalid_argument if the new row has a different key. *)

val delete : t -> lsn:Lsn.t -> ?txn:int -> Row.Key.t ->
  (Record.t, [ `Not_found ]) result
(** Returns the deleted record. [lsn]/[txn] stamp the delete tombstone
    pushed onto the key's version chain. *)

(** {2 Version chains (MVCC)}

    Every mutation pushes the overwritten record state onto the key's
    version chain (deletes additionally push a tombstone), so snapshot
    readers can resolve the row image as of an older LSN without any
    lock. Storage records stamps verbatim; commit-LSN resolution — which
    transaction stamp means "committed where" — belongs to the caller
    ({!Nbsc_txn.Manager}), which supplies it to {!gc_versions} as a
    classifier. *)

val set_retain_hint : t -> (unit -> bool) -> unit
(** Version-retention hint for {e system} (txn = 0) overwrites, which
    commit at their own LSN: when the hint returns [false] the
    overwritten state is not pushed — a snapshot beginning later pins
    at a higher LSN and reads the new heap record directly, so only a
    snapshot already active at overwrite time could need it. The
    transaction manager wires this to "is any snapshot transaction
    active?", which makes bulk population/propagation writes free of
    version churn on a snapshot-less system. User-transaction
    overwrites always push regardless of the hint (their heap record
    stays invisible until commit), as do deletes of keys that already
    carry a chain (the tombstone must shadow stale entries). Default:
    always retain. *)

(** One superseded row state. [v_row = None] is a delete tombstone. *)
type version = {
  v_row : Row.t option;
  v_lsn : Lsn.t;
  v_txn : int;
}

val versions : t -> Row.Key.t -> version list
(** The key's superseded states, newest first. The current heap record
    ({!find}) is not duplicated here — a visibility walk consults it
    first, then this chain. *)

val versions_count : t -> int
(** Total chain entries across all keys (the [storage.versions_live]
    gauge reads this). *)

val gc_versions :
  t ->
  horizon:Lsn.t ->
  classify:(txn:int -> lsn:Lsn.t -> [ `At of Lsn.t | `Dead | `Live ]) ->
  int
(** Reclaim chain entries no snapshot at or above [horizon] can reach:
    entries of dead (aborted or unknown) transactions, and everything
    covered by a newer state committed at or below the horizon.
    [classify] resolves a stamp to [`At commit_lsn] (committed), [`Dead]
    or [`Live] (still active — always retained). Returns the number of
    entries reclaimed. The caller must pick [horizon] at or below the
    oldest active snapshot LSN. *)

val index_definitions : t -> (string * string list) list
(** Name and column list of every hash index (snapshots rebuild them
    from this). *)

val ordered_index_definitions : t -> (string * string list) list

val add_ordered_index : t -> name:string -> columns:string list -> unit
(** Create an ordered (range-capable) index and backfill it. No-op if
    one with this name exists. @raise Not_found on unknown columns. *)

val ordered_range :
  t -> index:string -> ?lo:Row.Key.t * bool -> ?hi:Row.Key.t * bool -> unit ->
  Row.Key.t list
(** Primary keys whose indexed values lie within the bounds, ascending.
    @raise Not_found if the ordered index does not exist. *)

val add_index : t -> name:string -> columns:string list -> unit
(** Create a secondary index and backfill it from current contents
    (the transformation's preparation step adds a split-column index to
    the source table this way). No-op if an index with this name
    already exists.
    @raise Not_found on unknown columns. *)

val index_lookup : t -> index:string -> Row.Key.t -> Row.Key.t list
(** Primary keys matching the given indexed values.
    @raise Not_found if the index does not exist. *)

val index_lookup_records : t -> index:string -> Row.Key.t ->
  (Row.Key.t * Record.t) list

val iter : t -> (Row.Key.t -> Record.t -> unit) -> unit
val fold : t -> init:'a -> f:('a -> Row.Key.t -> Record.t -> 'a) -> 'a
val to_rows : t -> Row.t list

val max_lsn : t -> Lsn.t
(** Highest record LSN in the table ([Lsn.zero] when empty). *)

val arrival_length : t -> int
(** Length of the arrival-order scan array, stale entries included.
    Kept within a constant factor of {!cardinality} under churn by
    opportunistic compaction, which runs only while no fuzzy cursor is
    live — an unclosed cursor blocks reclamation. *)

val shard_of_key : shards:int -> Row.Key.t -> int
(** The canonical key-hash partitioning ([0 .. shards-1]) used by
    sharded cursors, propagator routing and shard latches. [shards <= 1]
    always maps to 0. *)

(** Lock-free incremental scan. *)
module Fuzzy_cursor : sig
  type table = t
  type t

  val make : table -> t
  (** Also marks the table as having a live cursor, which suspends
      arrival-array compaction until {!close}. *)

  val make_sharded : table -> shards:int -> shard:int -> t
  (** A cursor over only the arrival entries whose key hashes (via
      {!shard_of_key}) to [shard]. The per-shard buckets are built
      lazily on first use and mirror later arrivals while any sharded
      cursor is live; with [shards = 1] the bucket replays the arrival
      array verbatim, so the scan is byte-identical to {!make}.
      Cursors over distinct shards may run on different domains as
      long as the heap is not mutated concurrently.
      @raise Invalid_argument if [shard] is out of range, or if a live
      sharded scan with a different [shards] count exists. *)

  val next_batch : t -> limit:int -> Record.t list
  (** Up to [limit] more records. Records inserted after the cursor's
      position may or may not be seen; each key is reported at most
      once per scan. An empty list means the scan is complete. *)

  val finished : t -> bool
  val scanned : t -> int

  val close : t -> unit
  (** Release the cursor (idempotent). Every cursor must be closed when
      its scan ends or is abandoned, or the table can never compact its
      arrival array. The cursor must not be used afterwards. *)
end
