open Nbsc_value
open Nbsc_wal

type flag = Consistent | Unknown

type t = {
  row : Row.t;
  lsn : Lsn.t;
  txn : int;
  counter : int;
  flag : flag;
  aux : int;
}

let make ?(txn = 0) ?(counter = 1) ?(flag = Consistent) ?(aux = 0) ~lsn row =
  { row; lsn; txn; counter; flag; aux }

let with_row t row = { t with row }
let with_lsn t lsn = { t with lsn }
let with_txn t txn = { t with txn }
let with_counter t counter = { t with counter }
let with_flag t flag = { t with flag }
let with_aux t aux = { t with aux }

let pp ppf t =
  Format.fprintf ppf "%a lsn=%a cnt=%d %s" Row.pp t.row Lsn.pp t.lsn t.counter
    (match t.flag with Consistent -> "C" | Unknown -> "U")
