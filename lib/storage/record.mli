(** Stored records.

    Besides the row itself, a stored record carries:
    - its {b LSN}: the LSN of the log record that produced its current
      state (used as the idempotence state identifier by fuzzy copy and
      by the split rules 8–11);
    - a {b counter}: the number of source rows a split S-record stands
      for (paper, Sec. 5, after Gupta et al.) — 1 for ordinary records;
    - a {b consistency flag}: Consistent/Unknown, used by the split of
      possibly-inconsistent data (paper, Sec. 5.3);
    - an {b aux} bitmap: opaque to storage; the FOJ transformation uses
      it to record which side(s) of the join a transformed record
      carries (r-part / s-part), disambiguating "joined with the NULL
      record" from an S record whose non-key attributes are genuinely
      NULL — a corner the paper leaves implicit. 0 means "unset";
    - a {b txn} stamp: the transaction that wrote this version, used by
      MVCC visibility. 0 is the committed-system sentinel — the version
      counts as committed at its own [lsn] (bulk loads, records restored
      from a snapshot, propagator/population writes, CLR restores). *)

open Nbsc_value
open Nbsc_wal

type flag = Consistent | Unknown

type t = {
  row : Row.t;
  lsn : Lsn.t;
  txn : int;
  counter : int;
  flag : flag;
  aux : int;
}

val make :
  ?txn:int -> ?counter:int -> ?flag:flag -> ?aux:int -> lsn:Lsn.t -> Row.t -> t
val with_row : t -> Row.t -> t
val with_lsn : t -> Lsn.t -> t
val with_txn : t -> int -> t
val with_counter : t -> int -> t
val with_flag : t -> flag -> t
val with_aux : t -> int -> t
val pp : Format.formatter -> t -> unit
