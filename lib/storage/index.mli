(** Secondary (non-unique) indexes.

    An index maps the projection of a row onto some column positions to
    the set of primary keys of rows having that projection. The FOJ
    rules depend on an index over T's join attributes and over the
    S-key columns of T ("these indexes provide fast lookup on all
    T-records that are affected by an operation on an S-record",
    paper Sec. 4.1). *)

open Nbsc_value

type t

val create : name:string -> positions:int list -> t
val name : t -> string
val positions : t -> int list

val touches : t -> (int * Value.t) list -> bool
(** Whether a change list mentions any indexed column. An update whose
    changes don't touch the index leaves both projection and key
    unchanged, so maintenance can be skipped. *)

val insert : t -> key:Row.Key.t -> Row.t -> unit
(** Register [row] (whose primary key is [key]). *)

val remove : t -> key:Row.Key.t -> Row.t -> unit
(** Unregister; must be called with the row as indexed. *)

val lookup : t -> Row.Key.t -> Row.Key.t list
(** Primary keys of all rows whose projection equals the given values. *)

val cardinality : t -> int
(** Number of distinct indexed values (for stats/tests). *)
