(** Ordered (range-capable) secondary indexes.

    The hash indexes of {!Index} answer equality probes — all the
    propagation rules need. An ordered index additionally answers range
    queries in key order (balanced-tree map underneath), which the SQL
    layer uses for range predicates. Same non-unique semantics:
    projection of the row onto the indexed columns maps to the set of
    primary keys carrying it. *)

open Nbsc_value

type t

val create : name:string -> positions:int list -> t
val name : t -> string
val positions : t -> int list

val touches : t -> (int * Value.t) list -> bool
(** Whether a change list mentions any indexed column (see
    {!Index.touches}). *)

val insert : t -> key:Row.Key.t -> Row.t -> unit
val remove : t -> key:Row.Key.t -> Row.t -> unit

val lookup : t -> Row.Key.t -> Row.Key.t list

val range :
  t -> ?lo:Row.Key.t * bool -> ?hi:Row.Key.t * bool -> unit -> Row.Key.t list
(** Primary keys of rows whose projection lies within the bounds, in
    ascending projection order. Each bound is [(value, inclusive)];
    omitted bounds are open-ended. *)

val min_value : t -> Row.Key.t option
val max_value : t -> Row.Key.t option
val cardinality : t -> int
