open Nbsc_value

type t = {
  name : string;
  positions : int list;
  touch_mask : bool array;  (* see {!Index.touches} *)
  mutable map : unit Row.Key.Tbl.t Row.Key.Map.t;
}

let create ~name ~positions =
  let top = List.fold_left max (-1) positions in
  let touch_mask = Array.make (top + 1) false in
  List.iter (fun i -> touch_mask.(i) <- true) positions;
  { name; positions; touch_mask; map = Row.Key.Map.empty }

let name t = t.name
let positions t = t.positions

let touches t changes =
  let mask = t.touch_mask in
  let n = Array.length mask in
  List.exists (fun (i, _) -> i < n && Array.unsafe_get mask i) changes

let insert t ~key row =
  let proj = Row.project row t.positions in
  let set =
    match Row.Key.Map.find_opt proj t.map with
    | Some s -> s
    | None ->
      let s = Row.Key.Tbl.create 4 in
      t.map <- Row.Key.Map.add proj s t.map;
      s
  in
  Row.Key.Tbl.replace set key ()

let remove t ~key row =
  let proj = Row.project row t.positions in
  match Row.Key.Map.find_opt proj t.map with
  | None -> ()
  | Some set ->
    Row.Key.Tbl.remove set key;
    if Row.Key.Tbl.length set = 0 then t.map <- Row.Key.Map.remove proj t.map

let keys_of set = Row.Key.Tbl.fold (fun k () acc -> k :: acc) set []

let lookup t proj =
  match Row.Key.Map.find_opt proj t.map with
  | None -> []
  | Some set -> keys_of set

let in_lo lo proj =
  match lo with
  | None -> true
  | Some (v, inclusive) ->
    let c = Row.Key.compare proj v in
    if inclusive then c >= 0 else c > 0

let in_hi hi proj =
  match hi with
  | None -> true
  | Some (v, inclusive) ->
    let c = Row.Key.compare proj v in
    if inclusive then c <= 0 else c < 0

let range t ?lo ?hi () =
  (* Seek to the lower bound, then walk until the upper bound fails. *)
  let seq =
    match lo with
    | None -> Row.Key.Map.to_seq t.map
    | Some (v, _) -> Row.Key.Map.to_seq_from v t.map
  in
  let rec collect acc seq =
    match seq () with
    | Seq.Nil -> List.rev acc
    | Seq.Cons ((proj, set), rest) ->
      if not (in_hi hi proj) then List.rev acc
      else if in_lo lo proj then collect (List.rev_append (keys_of set) acc) rest
      else collect acc rest
  in
  collect [] seq

let min_value t = Option.map fst (Row.Key.Map.min_binding_opt t.map)
let max_value t = Option.map fst (Row.Key.Map.max_binding_opt t.map)
let cardinality t = Row.Key.Map.cardinal t.map
