open Nbsc_value

type t = {
  name : string;
  positions : int list;
  (* Compiled forms: projection runs on every heap mutation of an
     indexed table, and walking the position list per call showed up in
     the engine bench. [touch_mask.(i)] says whether column [i] is
     indexed, so updates that leave every indexed column alone can skip
     maintenance entirely. *)
  pos_arr : int array;
  touch_mask : bool array;
  map : unit Row.Key.Tbl.t Row.Key.Tbl.t;  (* projection -> key set *)
}

let compile positions =
  let pos_arr = Array.of_list positions in
  let top = Array.fold_left max (-1) pos_arr in
  let touch_mask = Array.make (top + 1) false in
  Array.iter (fun i -> touch_mask.(i) <- true) pos_arr;
  (pos_arr, touch_mask)

let create ~name ~positions =
  let pos_arr, touch_mask = compile positions in
  { name; positions; pos_arr; touch_mask; map = Row.Key.Tbl.create 256 }

let name t = t.name
let positions t = t.positions

let touches t changes =
  let mask = t.touch_mask in
  let n = Array.length mask in
  List.exists (fun (i, _) -> i < n && Array.unsafe_get mask i) changes

let project t row =
  let pos = t.pos_arr in
  let n = Array.length pos in
  let out = Array.make n Value.Null in
  for i = 0 to n - 1 do
    out.(i) <- Row.get row (Array.unsafe_get pos i)
  done;
  Row.unsafe_of_array out

let insert t ~key row =
  let proj = project t row in
  let set =
    match Row.Key.Tbl.find_opt t.map proj with
    | Some s -> s
    | None ->
      let s = Row.Key.Tbl.create 4 in
      Row.Key.Tbl.add t.map proj s;
      s
  in
  Row.Key.Tbl.replace set key ()

let remove t ~key row =
  let proj = project t row in
  match Row.Key.Tbl.find_opt t.map proj with
  | None -> ()
  | Some set ->
    Row.Key.Tbl.remove set key;
    if Row.Key.Tbl.length set = 0 then Row.Key.Tbl.remove t.map proj

let lookup t proj =
  match Row.Key.Tbl.find_opt t.map proj with
  | None -> []
  | Some set -> Row.Key.Tbl.fold (fun k () acc -> k :: acc) set []

let cardinality t = Row.Key.Tbl.length t.map
