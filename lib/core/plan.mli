(** Schema-compiled propagation plans.

    Every operator's propagation rules reduce to two positional
    primitives: a {e route} (a [(src_pos, dst_pos)] mapping that
    re-expresses rows or change lists of a source table in target
    coordinates) and a {e projection} (a position set used to extract
    keys, test membership, or NULL out one side's columns). The layouts
    in {!Spec} resolve column {e names} once; this module compiles the
    resulting position lists once more — at operator construction —
    into closures over int arrays, so the per-record loop does no
    [List.assoc], no list rebuilding, and no redundant row copies.

    [Interpreted] retains the original list-walking implementations,
    bit-for-bit: it is the reference the differential tests run the
    same workload through. Both modes must produce identical output
    {e order}, not just identical sets. *)

open Nbsc_value

type mode = Compiled | Interpreted

val default_mode : mode
(** [Compiled]. *)

val mode_of_string : string -> mode option
val mode_to_string : mode -> string

(** {1 Routes} *)

type route

val route : mode -> (int * int) list -> route
(** Compile a [(src_pos, dst_pos)] mapping. Pair order is preserved by
    {!graft_changes}; on duplicate source positions the first pair wins
    (matching [List.assoc]). *)

val route_pairs : route -> (int * int) list

val dst_of_src : route -> int -> int option

val changes_through : route -> (int * Value.t) list -> (int * Value.t) list
(** Re-express positional changes in destination coordinates, dropping
    changes whose position is not routed. Change order is preserved. *)

val graft_changes : route -> Row.t -> (int * Value.t) list
(** [(dst, src.(s))] for every pair, in pair order. *)

val graft : route -> src:Row.t -> onto:Row.t -> Row.t
(** Fresh row: [onto] with every routed position overwritten from
    [src]. *)

val blit : route -> src:Row.t -> dst:Value.t array -> unit
(** In-place variant of {!graft} for rows still under construction. *)

(** {1 Projections} *)

type proj

val proj : mode -> int list -> proj
val positions : proj -> int list

val project : proj -> Row.t -> Row.Key.t
(** The row's values at the projected positions, in position order. *)

val mem : proj -> int -> bool
val touches : proj -> (int * Value.t) list -> bool
(** Whether any change lands on a projected position. *)

val filter_out : proj -> (int * Value.t) list -> (int * Value.t) list
(** Drop changes that land on a projected position. *)

val covered_by : proj -> (int * Value.t) list -> bool
(** Whether every projected position appears in the change list. *)

val null_out : proj -> Row.t -> Row.t
(** Fresh row with the projected positions set to NULL. *)

val any_non_null : proj -> Row.t -> bool

val refresh_changes : proj -> Row.t -> (int * Value.t) list
(** [(p, src.(p))] for every projected position — a same-coordinate
    change list. *)

val graft_self : proj -> src:Row.t -> onto:Row.t -> Row.t
(** Fresh row: [onto] with the projected positions copied from [src]
    (same coordinates on both sides). *)
