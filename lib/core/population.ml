open Nbsc_value
open Nbsc_wal
open Nbsc_storage
module C = Foj_common

(* The population step is pluggable: a transformation supplies a
   bounded stepper over its private scan state, and the framework only
   ever sees the [t] record below. The built-in constructors cover the
   paper's operators; custom transformations use [make] directly. *)

type counters = {
  mutable scanned : int;
  mutable produced : int;
}

type t = {
  c : counters;
  step_fn : limit:int -> bool;
  finished_fn : unit -> bool;
  close_fn : unit -> unit;
}

let make ?(close = fun () -> ()) ~step ~finished () =
  let c = { scanned = 0; produced = 0 } in
  { c;
    step_fn = (fun ~limit -> step c ~limit);
    finished_fn = finished;
    close_fn = close }

let step t ~limit = t.step_fn ~limit
let finished t = t.finished_fn ()
let scanned t = t.c.scanned
let produced t = t.c.produced
let close t = t.close_fn ()

(* {2 Sharded execution}

   The sharded steppers split every quantum across per-shard fuzzy
   cursors: workers read their own shard bucket and compute pure values
   (join keys, projected target rows) in parallel, and all shared-state
   mutation — the join hash, [C.put], operator ingest — happens on the
   calling domain after the barrier, in shard order. With one shard the
   bucket replays the arrival array verbatim and the merge loop applies
   the identical operation sequence, so [Sharded {shards = 1}] is
   byte-identical to [Serial] (enforced by differential tests). *)

let per_shard_limit ~shards limit =
  if limit >= max_int / 2 then limit else max 1 (limit / shards)

let sharded_cursors tbl ~shards =
  Array.init shards (fun shard ->
      Table.Fuzzy_cursor.make_sharded tbl ~shards ~shard)

(* {2 FOJ: hash S, stream R, emit unmatched S leftovers} *)

type foj_phase =
  | Scan_s
  | Scan_r
  | Leftovers of (Row.t * bool ref) list
  | F_done

let foj_serial f ~r_tbl ~s_tbl =
  let cctx = Foj.ctx f in
  let s_cursor = Table.Fuzzy_cursor.make s_tbl in
  let r_cursor = Table.Fuzzy_cursor.make r_tbl in
  (* join value -> S rows seen with it (one in a clean one-to-many) *)
  let s_hash : (Row.t * bool ref) list Row.Key.Tbl.t =
    Row.Key.Tbl.create 1024
  in
  let fphase = ref Scan_s in
  let put_initial c ~presence row =
    ignore (C.put cctx ~lsn:Lsn.zero ~presence row);
    c.produced <- c.produced + 1
  in
  let step c ~limit =
    match !fphase with
    | Scan_s ->
      let batch = Table.Fuzzy_cursor.next_batch s_cursor ~limit in
      c.scanned <- c.scanned + List.length batch;
      List.iter
        (fun (record : Record.t) ->
           let srow = record.Record.row in
           let j = C.join_of_s_row cctx srow in
           let entry = (srow, ref false) in
           let existing =
             match Row.Key.Tbl.find_opt s_hash j with
             | Some e -> e
             | None -> []
           in
           Row.Key.Tbl.replace s_hash j (entry :: existing))
        batch;
      if Table.Fuzzy_cursor.finished s_cursor then begin
        Table.Fuzzy_cursor.close s_cursor;
        fphase := Scan_r
      end;
      false
    | Scan_r ->
      let batch = Table.Fuzzy_cursor.next_batch r_cursor ~limit in
      c.scanned <- c.scanned + List.length batch;
      List.iter
        (fun (record : Record.t) ->
           let rrow = record.Record.row in
           let j = C.join_of_r_row cctx rrow in
           let matches =
             if Row.Key.has_null j then []
             else
               match Row.Key.Tbl.find_opt s_hash j with
               | Some entries -> entries
               | None -> []
           in
           match matches with
           | [] ->
             let row, bits = C.t_row_of_sources cctx ~r:(Some rrow) ~s:None in
             put_initial c ~presence:bits row
           | entries ->
             List.iter
               (fun (srow, matched) ->
                  matched := true;
                  let row, bits =
                    C.t_row_of_sources cctx ~r:(Some rrow) ~s:(Some srow)
                  in
                  put_initial c ~presence:bits row)
               entries)
        batch;
      if Table.Fuzzy_cursor.finished r_cursor then begin
        Table.Fuzzy_cursor.close r_cursor;
        let leftovers =
          Row.Key.Tbl.fold (fun _ entries acc -> entries @ acc) s_hash []
          |> List.filter (fun (_, matched) -> not !matched)
        in
        fphase := Leftovers leftovers
      end;
      false
    | Leftovers remaining ->
      let rec emit n rest =
        if n >= limit then rest
        else
          match rest with
          | [] -> []
          | (srow, _) :: rest ->
            (* These S rows were already counted when [Scan_s] read
               them; emitting a leftover scans nothing new (the sim
               bills scan cost per [scanned] increment). *)
            let row, bits = C.t_row_of_sources cctx ~r:None ~s:(Some srow) in
            put_initial c ~presence:bits row;
            emit (n + 1) rest
      in
      (match emit 0 remaining with
       | [] ->
         fphase := F_done;
         true
       | rest ->
         fphase := Leftovers rest;
         false)
    | F_done -> true
  in
  make ~step
    ~finished:(fun () -> !fphase = F_done)
    ~close:(fun () ->
        Table.Fuzzy_cursor.close s_cursor;
        Table.Fuzzy_cursor.close r_cursor)
    ()

let foj_sharded exec ~shards f ~r_tbl ~s_tbl =
  let cctx = Foj.ctx f in
  let s_cursors = sharded_cursors s_tbl ~shards in
  let r_cursors = sharded_cursors r_tbl ~shards in
  let s_hash : (Row.t * bool ref) list Row.Key.Tbl.t =
    Row.Key.Tbl.create 1024
  in
  let fphase = ref Scan_s in
  let put_initial c ~presence row =
    ignore (C.put cctx ~lsn:Lsn.zero ~presence row);
    c.produced <- c.produced + 1
  in
  let step c ~limit =
    let limit = per_shard_limit ~shards limit in
    match !fphase with
    | Scan_s ->
      (* Workers scan and compute join keys; the hash inserts run
         serially at the barrier, in shard order. *)
      let batches =
        Domain_pool.run_shards exec ~shards (fun i ->
            List.map
              (fun (record : Record.t) ->
                 let srow = record.Record.row in
                 (C.join_of_s_row cctx srow, srow))
              (Table.Fuzzy_cursor.next_batch s_cursors.(i) ~limit))
      in
      Array.iter
        (fun pairs ->
           c.scanned <- c.scanned + List.length pairs;
           List.iter
             (fun (j, srow) ->
                let entry = (srow, ref false) in
                let existing =
                  match Row.Key.Tbl.find_opt s_hash j with
                  | Some e -> e
                  | None -> []
                in
                Row.Key.Tbl.replace s_hash j (entry :: existing))
             pairs)
        batches;
      if Array.for_all Table.Fuzzy_cursor.finished s_cursors then begin
        Array.iter Table.Fuzzy_cursor.close s_cursors;
        fphase := Scan_r
      end;
      false
    | Scan_r ->
      (* Workers probe the — now read-only — join hash and project the
         target rows; match flags and [put_initial] mutate at the
         barrier only. *)
      let batches =
        Domain_pool.run_shards exec ~shards (fun i ->
            List.map
              (fun (record : Record.t) ->
                 let rrow = record.Record.row in
                 let j = C.join_of_r_row cctx rrow in
                 let matches =
                   if Row.Key.has_null j then []
                   else
                     match Row.Key.Tbl.find_opt s_hash j with
                     | Some entries -> entries
                     | None -> []
                 in
                 match matches with
                 | [] ->
                   let row, bits =
                     C.t_row_of_sources cctx ~r:(Some rrow) ~s:None
                   in
                   [ (None, row, bits) ]
                 | entries ->
                   List.map
                     (fun (srow, matched) ->
                        let row, bits =
                          C.t_row_of_sources cctx ~r:(Some rrow) ~s:(Some srow)
                        in
                        (Some matched, row, bits))
                     entries)
              (Table.Fuzzy_cursor.next_batch r_cursors.(i) ~limit))
      in
      Array.iter
        (fun batch ->
           c.scanned <- c.scanned + List.length batch;
           List.iter
             (List.iter (fun (matched, row, bits) ->
                  (match matched with Some m -> m := true | None -> ());
                  put_initial c ~presence:bits row))
             batch)
        batches;
      if Array.for_all Table.Fuzzy_cursor.finished r_cursors then begin
        Array.iter Table.Fuzzy_cursor.close r_cursors;
        let leftovers =
          Row.Key.Tbl.fold (fun _ entries acc -> entries @ acc) s_hash []
          |> List.filter (fun (_, matched) -> not !matched)
        in
        fphase := Leftovers leftovers
      end;
      false
    | Leftovers remaining ->
      let rec emit n rest =
        if n >= limit then rest
        else
          match rest with
          | [] -> []
          | (srow, _) :: rest ->
            let row, bits = C.t_row_of_sources cctx ~r:None ~s:(Some srow) in
            put_initial c ~presence:bits row;
            emit (n + 1) rest
      in
      (match emit 0 remaining with
       | [] ->
         fphase := F_done;
         true
       | rest ->
         fphase := Leftovers rest;
         false)
    | F_done -> true
  in
  make ~step
    ~finished:(fun () -> !fphase = F_done)
    ~close:(fun () ->
        Array.iter Table.Fuzzy_cursor.close s_cursors;
        Array.iter Table.Fuzzy_cursor.close r_cursors)
    ()

let foj ?(exec = Domain_pool.Serial) f ~r_tbl ~s_tbl =
  match exec with
  | Domain_pool.Serial -> foj_serial f ~r_tbl ~s_tbl
  | Domain_pool.Sharded { shards; _ } ->
    foj_sharded exec ~shards:(max 1 shards) f ~r_tbl ~s_tbl

(* {2 Split: stream T into R parts and reference-counted S parts} *)

let split_serial sp ~t_tbl =
  let t_cursor = Table.Fuzzy_cursor.make t_tbl in
  let s_done = ref false in
  let step c ~limit =
    if !s_done then true
    else begin
      let batch = Table.Fuzzy_cursor.next_batch t_cursor ~limit in
      c.scanned <- c.scanned + List.length batch;
      List.iter
        (fun record ->
           Split.ingest_initial sp record;
           c.produced <- c.produced + 1)
        batch;
      if Table.Fuzzy_cursor.finished t_cursor then begin
        Table.Fuzzy_cursor.close t_cursor;
        s_done := true;
        true
      end
      else false
    end
  in
  make ~step
    ~finished:(fun () -> !s_done)
    ~close:(fun () -> Table.Fuzzy_cursor.close t_cursor)
    ()

let split_sharded exec ~shards sp ~t_tbl =
  let cursors = sharded_cursors t_tbl ~shards in
  let s_done = ref false in
  let step c ~limit =
    if !s_done then true
    else begin
      let batches =
        Domain_pool.run_shards exec ~shards (fun i ->
            Table.Fuzzy_cursor.next_batch cursors.(i)
              ~limit:(per_shard_limit ~shards limit))
      in
      Array.iter
        (fun batch ->
           c.scanned <- c.scanned + List.length batch;
           List.iter
             (fun record ->
                Split.ingest_initial sp record;
                c.produced <- c.produced + 1)
             batch)
        batches;
      if Array.for_all Table.Fuzzy_cursor.finished cursors then begin
        Array.iter Table.Fuzzy_cursor.close cursors;
        s_done := true;
        true
      end
      else false
    end
  in
  make ~step
    ~finished:(fun () -> !s_done)
    ~close:(fun () -> Array.iter Table.Fuzzy_cursor.close cursors)
    ()

let split ?(exec = Domain_pool.Serial) sp ~t_tbl =
  match exec with
  | Domain_pool.Serial -> split_serial sp ~t_tbl
  | Domain_pool.Sharded { shards; _ } ->
    split_sharded exec ~shards:(max 1 shards) sp ~t_tbl

(* {2 Generic sequential scans (hsplit, merge, materialized views)} *)

let scan_many_serial tables ~ingest =
  let cursors = ref (List.map Table.Fuzzy_cursor.make tables) in
  let step c ~limit =
    match !cursors with
    | [] -> true
    | cursor :: rest ->
      let batch = Table.Fuzzy_cursor.next_batch cursor ~limit in
      c.scanned <- c.scanned + List.length batch;
      List.iter
        (fun record ->
           ingest record;
           c.produced <- c.produced + 1)
        batch;
      if Table.Fuzzy_cursor.finished cursor then begin
        Table.Fuzzy_cursor.close cursor;
        cursors := rest
      end;
      !cursors = []
  in
  make ~step
    ~finished:(fun () -> !cursors = [])
    ~close:(fun () -> List.iter Table.Fuzzy_cursor.close !cursors)
    ()

let scan_many_sharded exec ~shards tables ~ingest =
  let remaining = ref tables in
  let current = ref None in  (* the head table's per-shard cursors *)
  let open_current () =
    match !current with
    | Some cs -> cs
    | None ->
      (match !remaining with
       | [] -> [||]
       | tbl :: _ ->
         let cs = sharded_cursors tbl ~shards in
         current := Some cs;
         cs)
  in
  let step c ~limit =
    match !remaining with
    | [] -> true
    | _ :: rest ->
      let cs = open_current () in
      let batches =
        Domain_pool.run_shards exec ~shards (fun i ->
            Table.Fuzzy_cursor.next_batch cs.(i)
              ~limit:(per_shard_limit ~shards limit))
      in
      Array.iter
        (fun batch ->
           c.scanned <- c.scanned + List.length batch;
           List.iter
             (fun record ->
                ingest record;
                c.produced <- c.produced + 1)
             batch)
        batches;
      if Array.for_all Table.Fuzzy_cursor.finished cs then begin
        Array.iter Table.Fuzzy_cursor.close cs;
        current := None;
        remaining := rest
      end;
      !remaining = []
  in
  make ~step
    ~finished:(fun () -> !remaining = [])
    ~close:(fun () ->
        match !current with
        | Some cs -> Array.iter Table.Fuzzy_cursor.close cs
        | None -> ())
    ()

let scan_tagged tables ~ingest =
  let cursors =
    ref (List.map (fun (name, tbl) -> (name, Table.Fuzzy_cursor.make tbl)) tables)
  in
  let step c ~limit =
    match !cursors with
    | [] -> true
    | (table, cursor) :: rest ->
      let batch = Table.Fuzzy_cursor.next_batch cursor ~limit in
      c.scanned <- c.scanned + List.length batch;
      List.iter
        (fun record ->
           ingest ~table record;
           c.produced <- c.produced + 1)
        batch;
      if Table.Fuzzy_cursor.finished cursor then begin
        Table.Fuzzy_cursor.close cursor;
        cursors := rest
      end;
      !cursors = []
  in
  make ~step
    ~finished:(fun () -> !cursors = [])
    ~close:(fun () -> List.iter (fun (_, c) -> Table.Fuzzy_cursor.close c) !cursors)
    ()

let scan_many ?(exec = Domain_pool.Serial) tables ~ingest =
  match exec with
  | Domain_pool.Serial -> scan_many_serial tables ~ingest
  | Domain_pool.Sharded { shards; _ } ->
    scan_many_sharded exec ~shards:(max 1 shards) tables ~ingest

let scan_one ?exec table ~ingest = scan_many ?exec [ table ] ~ingest
