open Nbsc_value
open Nbsc_wal
open Nbsc_storage
open Nbsc_txn

(* One source table being scanned. Cursors open lazily (the table
   suspends arrival-array compaction while a cursor is live, so a
   source not yet reached should not pay) and close as soon as their
   scan completes. *)
type source = {
  src_name : string;
  src_table : Table.t;
  mutable src_cursor : Table.Fuzzy_cursor.t option;
  mutable src_done : bool;
}

type t = {
  mgr : Manager.t;
  job : string;
  rules : Propagator.rules;
  chunk : int;
  sources : source list;
  (* Current chunk: buffered scan results (reversed) awaiting the high
     watermark, and the low watermark that opened the chunk. *)
  mutable buffer : (source * Record.t) list;
  mutable buffered : int;
  mutable low : Lsn.t option;
  mutable discarded : int;
  mutable chunks : int;
}

let create mgr ~job ~sources ~rules ~chunk =
  if chunk < 1 then invalid_arg "Virtual_cut: chunk must be >= 1";
  { mgr;
    job;
    rules;
    chunk;
    sources =
      List.map
        (fun (src_name, src_table) ->
           { src_name; src_table; src_cursor = None; src_done = false })
        sources;
    buffer = [];
    buffered = 0;
    low = None;
    discarded = 0;
    chunks = 0 }

let discarded t = t.discarded
let chunks t = t.chunks

let cursor_of src =
  match src.src_cursor with
  | Some c -> c
  | None ->
    let c = Table.Fuzzy_cursor.make src.src_table in
    src.src_cursor <- Some c;
    c

let close_cursor src =
  (match src.src_cursor with
   | Some c -> Table.Fuzzy_cursor.close c
   | None -> ());
  src.src_cursor <- None

let scan_exhausted t = List.for_all (fun s -> s.src_done) t.sources

let finished t = scan_exhausted t && t.low = None && t.buffered = 0

let append_mark t ~high =
  Log.append (Manager.log t.mgr) ~txn:Log_record.system_txn ~prev_lsn:Lsn.zero
    (Log_record.Watermark { job = t.job; high })

(* Every source-table key written between the chunk's watermarks (the
   DBLog "window"): a buffered scan result for such a key is stale by
   definition — some transaction changed the record while the chunk was
   in flight. Keyed per table with the engine's own key equality. *)
let window_writes t ~low ~high =
  let by_table = Hashtbl.create 4 in
  let note op =
    let table = Log_record.op_table op in
    match List.find_opt (fun s -> String.equal s.src_name table) t.sources with
    | None -> ()
    | Some s ->
      let keys =
        match Hashtbl.find_opt by_table table with
        | Some keys -> keys
        | None ->
          let keys = Row.Key.Tbl.create 16 in
          Hashtbl.add by_table table keys;
          keys
      in
      Row.Key.Tbl.replace keys
        (Log_record.op_key (Table.schema s.src_table) op)
        ()
  in
  Log.iter (Manager.log t.mgr) ~from:(Lsn.next low) ~upto:high (fun r ->
      match r.Log_record.body with
      | Log_record.Op op | Log_record.Clr { op; _ } -> note op
      | _ -> ());
  by_table

(* Replay one source record's state through the rules, exactly as if
   its insert had just been logged — the same uniform path the lazy
   demand scan uses, so the LSN gates absorb any overlap with log
   propagation. *)
let ingest t counters src ~lsn row =
  ignore
    (t.rules.Propagator.apply ~lsn
       (Log_record.Insert { table = src.src_name; row }));
  counters.Population.produced <- counters.Population.produced + 1

(* Close the open chunk: high watermark, then apply the buffered rows —
   discarding any superseded inside the window and re-reading those at
   their current state (a row deleted in the window yields nothing; the
   log propagation already carries its delete). *)
let seal t counters ~low =
  let high = append_mark t ~high:true in
  let window = window_writes t ~low ~high in
  List.iter
    (fun (src, record) ->
       let stale =
         match Hashtbl.find_opt window src.src_name with
         | None -> false
         | Some keys ->
           Row.Key.Tbl.mem keys
             (Row.Key.of_row record.Record.row
                (Schema.key_positions (Table.schema src.src_table)))
       in
       if not stale then
         ingest t counters src ~lsn:record.Record.lsn record.Record.row
       else begin
         t.discarded <- t.discarded + 1;
         let key =
           Row.Key.of_row record.Record.row
             (Schema.key_positions (Table.schema src.src_table))
         in
         match Table.find src.src_table key with
         | None -> ()
         | Some cur -> ingest t counters src ~lsn:cur.Record.lsn cur.Record.row
       end)
    (List.rev t.buffer);
  t.buffer <- [];
  t.buffered <- 0;
  t.low <- None;
  t.chunks <- t.chunks + 1

let step t counters ~limit =
  if finished t then true
  else begin
    let low =
      match t.low with
      | Some l -> l
      | None ->
        let l = append_mark t ~high:false in
        t.low <- Some l;
        l
    in
    let remaining = ref (max 1 limit) in
    let scanning = ref true in
    while !scanning && !remaining > 0 && t.buffered < t.chunk do
      match List.find_opt (fun s -> not s.src_done) t.sources with
      | None -> scanning := false
      | Some src ->
        (match
           Table.Fuzzy_cursor.next_batch (cursor_of src)
             ~limit:(min !remaining (t.chunk - t.buffered))
         with
         | [] ->
           close_cursor src;
           src.src_done <- true
         | recs ->
           List.iter
             (fun r ->
                t.buffer <- (src, r) :: t.buffer;
                t.buffered <- t.buffered + 1;
                counters.Population.scanned <- counters.Population.scanned + 1)
             recs;
           remaining := !remaining - List.length recs)
    done;
    if t.buffered >= t.chunk || scan_exhausted t then seal t counters ~low;
    finished t
  end

let close t =
  List.iter close_cursor t.sources;
  t.buffer <- [];
  t.buffered <- 0

let population t =
  Population.make
    ~close:(fun () -> close t)
    ~step:(fun counters ~limit -> step t counters ~limit)
    ~finished:(fun () -> finished t)
    ()
