open Nbsc_value
open Nbsc_wal
open Nbsc_lock
open Nbsc_storage
open Nbsc_txn

type rules = {
  sources : string list;
  targets : string list;
  apply : lsn:Lsn.t -> Log_record.op -> (string * Row.Key.t) list;
  cc : Consistency.t option;
  cc_s_table : string option;
  transfer_locks : bool;
}

let rules ?cc ?cc_s_table ?(transfer_locks = true) ~sources ~targets ~apply () =
  { sources; targets; apply; cc; cc_s_table; transfer_locks }

(* One per-shard log cursor plus its WAL-retention pin. Shards advance
   at their own pace within a quantum, so each pins its own position —
   the log must keep every record the laggiest shard has yet to read. *)
type shard_state = {
  cursor : Log.Cursor.t;
  pin : Manager.pin;
}

type t = {
  mgr : Manager.t;
  rules : rules;
  shards : shard_state array;  (* length 1 when serial *)
  nshards : int;
  exec : Domain_pool.exec;
  mutable closed : bool;
  (* Source-table name -> position in [rules.sources], and the target
     set — precomputed because [handle_op] consults them for every log
     record on the redo path. *)
  source_index : (string, int) Hashtbl.t;
  target_set : (string, unit) Hashtbl.t;
  (* Transactions whose records must be ignored wholesale. Crash
     recovery rolls loser transactions back without logging the undo, so
     a propagator resumed from a retained log suffix would otherwise
     apply loser operations that no Abort record ever compensates. *)
  skip_set : (Log_record.txn_id, unit) Hashtbl.t;
  mutable processed : int;
  mutable transferred : int;
  mutable lock_mapper :
    (table:string -> key:Row.Key.t -> (string * Row.Key.t) list) option;
  (* Background sweep for the lazy migration strategies: migrates a
     bounded number of still-cold source records per call. The thunk is
     the transformation's demand scan; owning it here makes the
     propagator the single background catch-up engine (log tail {e and}
     cold records). *)
  mutable sweeper : (limit:int -> bool) option;
  mutable swept : int;
}

let create ?(skip = []) ?(exec = Domain_pool.Serial) mgr rules ~from =
  let source_index = Hashtbl.create 8 in
  List.iteri
    (fun i s ->
       if not (Hashtbl.mem source_index s) then Hashtbl.add source_index s i)
    rules.sources;
  let target_set = Hashtbl.create 8 in
  List.iter (fun tgt -> Hashtbl.replace target_set tgt ()) rules.targets;
  let skip_set = Hashtbl.create 8 in
  List.iter (fun txn -> Hashtbl.replace skip_set txn ()) skip;
  let nshards =
    match exec with
    | Domain_pool.Serial -> 1
    | Domain_pool.Sharded { shards; _ } ->
      (* The consistency checker's ordering contract (CC-begin /
         CC-ok interleaved with the S-table touches rule application
         derives) is not expressible as a per-source-key partition, so
         a CC-carrying split degrades to one shard rather than risk
         reordering checks against touches. *)
      if rules.cc <> None then 1 else max 1 shards
  in
  let shards =
    Array.init nshards (fun _ ->
        let cursor = Log.Cursor.make (Manager.log mgr) ~from in
        let pin = Manager.pin_wal mgr (fun () -> Log.Cursor.position cursor) in
        { cursor; pin })
  in
  { mgr;
    rules;
    shards;
    nshards;
    exec;
    closed = false;
    source_index;
    target_set;
    skip_set;
    processed = 0;
    transferred = 0;
    lock_mapper = None;
    sweeper = None;
    swept = 0 }

let close t =
  if not t.closed then begin
    t.closed <- true;
    Array.iter (fun sh -> Manager.unpin_wal t.mgr sh.pin) t.shards
  end

let provenance_of t table = Hashtbl.find_opt t.source_index table

let note_cc_touches t touched =
  match t.rules.cc, t.rules.cc_s_table with
  | Some cc, Some s_table ->
    List.iter
      (fun (table, key) ->
         if String.equal table s_table then Consistency.note_touched cc key)
      touched
  | _ -> ()

let transfer_locks t ~owner ~source touched =
  if not t.rules.transfer_locks then ()
  else
  match provenance_of t source with
  | None -> ()
  | Some i ->
    let locks = Manager.locks t.mgr in
    let lock = { Compat.mode = Compat.X; provenance = Compat.Source i } in
    List.iter
      (fun (table, key) ->
         (* Transfers are upserts; only count the ones that actually
            add coverage, or re-propagating a record (resume, repeated
            transfer) inflates the metric. *)
         if Lock_table.transfer locks ~owner ~table ~key lock then
           t.transferred <- t.transferred + 1)
      touched

let is_transferred_on_target t ~table (lock : Compat.lock) =
  (match lock.Compat.provenance with
   | Compat.Source _ -> true
   | Compat.Native -> false)
  && Hashtbl.mem t.target_set table

let release_transferred t ~owner =
  Lock_table.release_owner_where (Manager.locks t.mgr) ~owner
    (fun ~table ~lock -> is_transferred_on_target t ~table lock)

let handle_op t ~txn ~lsn op =
  let source = Log_record.op_table op in
  if Hashtbl.mem t.source_index source then begin
    let touched = t.rules.apply ~lsn op in
    note_cc_touches t touched;
    (* Transferred locks extend a {e live} transaction's source locks to
       the target records it implicates. A transaction that already
       committed or rolled back holds no source locks — its Commit /
       Abort_done record (later in the log) would release the transfer
       immediately anyway. Skipping the dead-owner upsert matters: a
       caught-up propagator processes almost every record after its
       transaction finished. *)
    if Manager.is_active t.mgr txn then
      transfer_locks t ~owner:txn ~source touched
  end

let handle_record t (r : Log_record.t) =
  if Hashtbl.mem t.skip_set r.Log_record.txn then ()
  else
  match r.Log_record.body with
  | Log_record.Op op -> handle_op t ~txn:r.Log_record.txn ~lsn:r.Log_record.lsn op
  | Log_record.Clr { op; _ } ->
    handle_op t ~txn:r.Log_record.txn ~lsn:r.Log_record.lsn op
  | Log_record.Commit | Log_record.Abort_done ->
    release_transferred t ~owner:r.Log_record.txn
  | Log_record.Cc_begin { key; _ } ->
    (match t.rules.cc with
     | Some cc -> Consistency.on_cc_begin cc key
     | None -> ())
  | Log_record.Cc_ok { key; image; _ } ->
    (match t.rules.cc with
     | Some cc -> Consistency.on_cc_ok cc ~lsn:r.Log_record.lsn key image
     | None -> ())
  | Log_record.Begin | Log_record.Abort_begin | Log_record.Fuzzy_mark _
  | Log_record.Checkpoint _ | Log_record.Job_state _ | Log_record.Job_done _
  | Log_record.Watermark _ ->
    ()

(* Which shard a record belongs to: operations route by the source
   key's hash — the same partitioning the sharded fuzzy cursors use, so
   one record's scan and propagation agree — and everything else
   (commit/abort bookkeeping, marks) rides shard 0. Same-key operations
   land in the same shard regardless of source table, so per-key log
   order is preserved; cross-key reordering inside one quantum is
   absorbed by the LSN-gated rules, and a commit applied before a
   same-quantum operation of another shard is safe because transfers
   are guarded by [Manager.is_active]. *)
let shard_of_record t (r : Log_record.t) =
  match r.Log_record.body with
  | Log_record.Op op | Log_record.Clr { op; _ } ->
    let source = Log_record.op_table op in
    if Hashtbl.mem t.source_index source then
      (match Catalog.find_opt (Manager.catalog t.mgr) source with
       | Some tbl ->
         Table.shard_of_key ~shards:t.nshards
           (Log_record.op_key (Table.schema tbl) op)
       | None -> 0)
    else 0
  | _ -> 0

let step t ~limit =
  if t.nshards = 1 then begin
    let sh = t.shards.(0) in
    let consumed = ref 0 in
    let continue = ref true in
    while !continue && !consumed < limit do
      match Log.Cursor.next sh.cursor with
      | None -> continue := false
      | Some r ->
        handle_record t r;
        incr consumed;
        t.processed <- t.processed + 1
    done;
    !consumed
  end
  else begin
    (* Parallel filter, serial apply: every worker advances its own
       cursor up to [limit] records, keeping the ones routed to its
       shard; the records are applied on the calling domain after the
       barrier, in shard order. The log does not grow during a quantum
       (rule application never appends), so the cursors read a frozen
       suffix. *)
    let collected =
      Domain_pool.run_shards t.exec ~shards:t.nshards (fun i ->
          let sh = t.shards.(i) in
          let recs = ref [] in
          let consumed = ref 0 in
          let continue = ref true in
          while !continue && !consumed < limit do
            match Log.Cursor.next sh.cursor with
            | None -> continue := false
            | Some r ->
              incr consumed;
              if shard_of_record t r = i then recs := r :: !recs
          done;
          (List.rev !recs, !consumed))
    in
    Array.iter
      (fun (recs, _) ->
         List.iter
           (fun r ->
              handle_record t r;
              t.processed <- t.processed + 1)
           recs)
      collected;
    (* Forward progress this quantum: the most any shard advanced (each
       record is consumed by every cursor but handled exactly once). *)
    Array.fold_left (fun acc (_, consumed) -> max acc consumed) 0 collected
  end

let lag t =
  Array.fold_left (fun acc sh -> max acc (Log.Cursor.lag sh.cursor)) 0 t.shards

let rec run_to_head t =
  let n = step t ~limit:max_int in
  (* Rule application never appends to the log, but the consistency
     checker does not run inside this loop, so one pass suffices; be
     defensive anyway. *)
  if lag t > 0 then n + run_to_head t else n

(* The persistence low-water mark: resuming must replay from wherever
   the laggiest shard stood. Faster shards then re-read an overlap,
   which the LSN-gated rules absorb (replay is idempotent). *)
let position t =
  Array.fold_left
    (fun acc sh ->
       let p = Log.Cursor.position sh.cursor in
       if Lsn.(p < acc) then p else acc)
    (Log.Cursor.position t.shards.(0).cursor)
    t.shards
let records_processed t = t.processed
let locks_transferred t = t.transferred

let set_lock_mapper t mapper = t.lock_mapper <- Some mapper

let set_sweeper t sweeper = t.sweeper <- Some sweeper

let sweep t ~limit =
  match t.sweeper with
  | None -> true
  | Some f ->
    let finished = f ~limit in
    if not finished then t.swept <- t.swept + limit;
    finished

let swept t = t.swept

let transfer_current_source_locks t =
  match t.lock_mapper with
  | None -> invalid_arg "Propagator: no lock mapper installed"
  | Some mapper ->
    let locks = Manager.locks t.mgr in
    (* One pass over the grants table for all sources at once;
       per-source [locked_resources] would rescan every granted lock
       once per source table. *)
    List.iter
      (fun (source, key, owner, (lock : Compat.lock)) ->
         match Hashtbl.find_opt t.source_index source with
         | None -> ()
         | Some i ->
           if Manager.is_active t.mgr owner then
             List.iter
               (fun (table, tkey) ->
                  let target_lock =
                    { Compat.mode = lock.Compat.mode;
                      provenance = Compat.Source i }
                  in
                  if
                    Lock_table.transfer locks ~owner ~table ~key:tkey
                      target_lock
                  then t.transferred <- t.transferred + 1)
               (mapper ~table:source ~key))
      (Lock_table.locked_resources_in locks ~tables:t.rules.sources)
