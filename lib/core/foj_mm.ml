open Nbsc_value
open Nbsc_storage
module LR = Nbsc_wal.Log_record
module C = Foj_common

(* Distinct S parts among a match list, preferring a record that is the
   side's NULL-padded survivor (has no R part) so fills reuse it. *)
let distinct_s_parts cctx matches =
  let seen = Row.Key.Tbl.create 8 in
  List.iter
    (fun (k, record) ->
       if C.has_s cctx record then begin
         let sk = C.s_key_of_t_row cctx record.Record.row in
         match Row.Key.Tbl.find_opt seen sk with
         | Some (_, prev) when not (C.has_r cctx prev) -> ()
         | Some _ when not (C.has_r cctx record) ->
           Row.Key.Tbl.replace seen sk (k, record)
         | Some _ -> ()
         | None -> Row.Key.Tbl.add seen sk (k, record)
       end)
    matches;
  Row.Key.Tbl.fold (fun sk kr acc -> (sk, kr) :: acc) seen []

let distinct_r_parts cctx matches =
  let seen = Row.Key.Tbl.create 8 in
  List.iter
    (fun (k, record) ->
       if C.has_r cctx record then begin
         let rk = C.r_key_of_t_row cctx record.Record.row in
         match Row.Key.Tbl.find_opt seen rk with
         | Some (_, prev) when not (C.has_s cctx prev) -> ()
         | Some _ when not (C.has_s cctx record) ->
           Row.Key.Tbl.replace seen rk (k, record)
         | Some _ -> ()
         | None -> Row.Key.Tbl.add seen rk (k, record)
       end)
    matches;
  Row.Key.Tbl.fold (fun rk kr acc -> (rk, kr) :: acc) seen []

let others_with_s cctx ~except sk =
  List.filter
    (fun (k, record) -> not (Row.Key.equal k except) && C.has_s cctx record)
    (C.by_s_key cctx sk)

let others_with_r cctx ~except rk =
  List.filter
    (fun (k, record) -> not (Row.Key.equal k except) && C.has_r cctx record)
    (C.by_r_key cctx rk)

(* Insert r{^y}{_x}: one T record per matching S record. *)
let insert_r t ~lsn row =
  let cctx = Foj.ctx t in
  let st = Foj.stats t in
  let y = C.r_key_of_r_row cctx row in
  match C.by_r_key cctx y with
  | (k, _) :: _ ->
    st.Foj.ignored <- st.Foj.ignored + 1;
    [ k ]
  | [] ->
    st.Foj.applied <- st.Foj.applied + 1;
    let x = C.join_of_r_row cctx row in
    let base, bits = C.t_row_of_sources cctx ~r:(Some row) ~s:None in
    let matches = if Row.Key.has_null x then [] else C.by_join cctx x in
    (match distinct_s_parts cctx matches with
     | [] -> [ C.put cctx ~lsn ~presence:bits base ]
     | s_parts ->
       List.concat_map
         (fun (_, (k2, record2)) ->
            let joined =
              C.graft_s_with_key cctx ~src:record2.Record.row ~onto:base
            in
            let dropped =
              (* An S survivor (no R part) is consumed by the match. *)
              if not (C.has_r cctx record2) then [ C.drop cctx ~lsn k2 ] else []
            in
            dropped
            @ [ C.put cctx ~lsn ~presence:(C.r_bit lor C.s_bit) joined ])
         s_parts)

(* Delete r{^y}: remove every T record it contributed to, preserving
   S parts that lose their last carrier. *)
let delete_r t ~lsn y =
  let cctx = Foj.ctx t in
  let st = Foj.stats t in
  match C.by_r_key cctx y with
  | [] ->
    st.Foj.ignored <- st.Foj.ignored + 1;
    []
  | carriers ->
    st.Foj.applied <- st.Foj.applied + 1;
    List.concat_map
      (fun (k, record) ->
         if not (C.has_s cctx record) then [ C.drop cctx ~lsn k ]
         else begin
           let sk = C.s_key_of_t_row cctx record.Record.row in
           let survivors = others_with_s cctx ~except:k sk in
           let k1 = C.drop cctx ~lsn k in
           if survivors = [] then
             [ k1;
               C.put cctx ~lsn ~presence:C.s_bit
                 (C.strip_r cctx record.Record.row)
             ]
           else [ k1 ]
         end)
      carriers

let update_r_other t ~lsn y changes =
  let cctx = Foj.ctx t in
  let st = Foj.stats t in
  match C.by_r_key cctx y with
  | [] ->
    st.Foj.ignored <- st.Foj.ignored + 1;
    []
  | carriers ->
    st.Foj.applied <- st.Foj.applied + 1;
    let t_changes = C.r_changes_to_t cctx changes in
    (* Changes routed here never alter T's key columns: join-column
       rewrites landing in this rule come from rule 5's x = z case and
       are no-ops by construction — drop them rather than re-keying. *)
    let t_changes = C.drop_t_key_changes cctx t_changes in
    List.map
      (fun (k, _) ->
         if t_changes <> [] then begin
           match Table.update cctx.C.t_tbl ~lsn ~key:k t_changes with
           | Ok _ -> ()
           | Error `Not_found -> assert false
         end;
         k)
      carriers

let update_r_join t ~lsn y changes before =
  let cctx = Foj.ctx t in
  let st = Foj.stats t in
  match C.by_r_key cctx y with
  | [] ->
    st.Foj.ignored <- st.Foj.ignored + 1;
    []
  | ((k0, first) :: _ as carriers) ->
    let t_pre_state =
      List.for_all
        (fun (r_pos, old_v) ->
           match C.r_join_dst cctx r_pos with
           | None -> true
           | Some t_pos -> Value.equal (Row.get first.Record.row t_pos) old_v)
        before
    in
    let t_changes = C.r_changes_to_t cctx changes in
    let new_r_in_t = Row.update first.Record.row t_changes in
    let z = C.join_of_t_row cctx new_r_in_t in
    let x = C.join_of_t_row cctx first.Record.row in
    if not t_pre_state then begin
      st.Foj.ignored <- st.Foj.ignored + 1;
      [ k0 ]
    end
    else if Row.Key.equal x z then update_r_other t ~lsn y changes
    else begin
      st.Foj.applied <- st.Foj.applied + 1;
      let touched = ref [] in
      let push ks = touched := !touched @ ks in
      (* Detach: every record r{^y} contributed to must go, preserving
         S counterparts that lose their last carrier. *)
      List.iter
        (fun (k, record) ->
           if C.has_s cctx record then begin
             let sk = C.s_key_of_t_row cctx record.Record.row in
             let survivors = others_with_s cctx ~except:k sk in
             push [ C.drop cctx ~lsn k ];
             if survivors = [] then
               push
                 [ C.put cctx ~lsn ~presence:C.s_bit
                     (C.strip_r cctx record.Record.row) ]
           end
           else push [ C.drop cctx ~lsn k ])
        carriers;
      (* Attach at the new join value. *)
      let r_part = C.strip_s cctx new_r_in_t in
      let matches_z = if Row.Key.has_null z then [] else C.by_join cctx z in
      (match distinct_s_parts cctx matches_z with
       | [] -> push [ C.put cctx ~lsn ~presence:C.r_bit r_part ]
       | s_parts ->
         List.iter
           (fun (_, (k2, record2)) ->
              let joined =
                C.graft_s_with_key cctx ~src:record2.Record.row ~onto:r_part
              in
              if not (C.has_r cctx record2) then push [ C.drop cctx ~lsn k2 ];
              push [ C.put cctx ~lsn ~presence:(C.r_bit lor C.s_bit) joined ])
           s_parts);
      !touched
    end

(* Insert s{^x}{_z}: one new T record per R record with join value z. *)
let insert_s t ~lsn row =
  let cctx = Foj.ctx t in
  let st = Foj.stats t in
  let sk = C.s_key_of_s_row cctx row in
  match C.by_s_key cctx sk with
  | (k, _) :: _ ->
    st.Foj.ignored <- st.Foj.ignored + 1;
    [ k ]
  | [] ->
    st.Foj.applied <- st.Foj.applied + 1;
    let z = C.join_of_s_row cctx row in
    let base, bits = C.t_row_of_sources cctx ~r:None ~s:(Some row) in
    let matches = if Row.Key.has_null z then [] else C.by_join cctx z in
    (match distinct_r_parts cctx matches with
     | [] -> [ C.put cctx ~lsn ~presence:bits base ]
     | r_parts ->
       List.concat_map
         (fun (_, (k2, record2)) ->
            if not (C.has_s cctx record2) then
              (* r{^v}{_z} was unmatched: fill it in place. *)
              let filled = C.graft_s cctx ~s:row ~onto:record2.Record.row in
              C.rekey cctx ~lsn ~old_key:k2
                ~presence:(C.presence cctx record2 lor C.s_bit)
                filled
            else begin
              (* r{^v} already matches other S records: add a sibling. *)
              let r_only = C.strip_s cctx record2.Record.row in
              let joined = C.graft_s cctx ~s:row ~onto:r_only in
              [ C.put cctx ~lsn ~presence:(C.r_bit lor C.s_bit) joined ]
            end)
         r_parts)

let delete_s t ~lsn sk =
  let cctx = Foj.ctx t in
  let st = Foj.stats t in
  match C.by_s_key cctx sk with
  | [] ->
    st.Foj.ignored <- st.Foj.ignored + 1;
    []
  | carriers ->
    st.Foj.applied <- st.Foj.applied + 1;
    List.concat_map
      (fun (k, record) ->
         if not (C.has_r cctx record) then [ C.drop cctx ~lsn k ]
         else begin
           let rk = C.r_key_of_t_row cctx record.Record.row in
           let survivors = others_with_r cctx ~except:k rk in
           let k1 = C.drop cctx ~lsn k in
           if survivors = [] then
             [ k1;
               C.put cctx ~lsn ~presence:C.r_bit
                 (C.strip_s cctx record.Record.row)
             ]
           else [ k1 ]
         end)
      carriers

let update_s_other t ~lsn sk changes =
  let cctx = Foj.ctx t in
  let st = Foj.stats t in
  match C.by_s_key cctx sk with
  | [] ->
    st.Foj.ignored <- st.Foj.ignored + 1;
    []
  | carriers ->
    st.Foj.applied <- st.Foj.applied + 1;
    let t_changes = C.s_changes_to_t cctx changes in
    List.map
      (fun (k, _) ->
         if t_changes <> [] then begin
           match Table.update cctx.C.t_tbl ~lsn ~key:k t_changes with
           | Ok _ -> ()
           | Error `Not_found -> assert false
         end;
         k)
      carriers

let update_s_join t ~lsn sk changes =
  let cctx = Foj.ctx t in
  let st = Foj.stats t in
  match C.by_s_key cctx sk with
  | [] ->
    st.Foj.ignored <- st.Foj.ignored + 1;
    []
  | ((_, first) :: _ as carriers) ->
    st.Foj.applied <- st.Foj.applied + 1;
    let touched = ref [] in
    let push ks = touched := !touched @ ks in
    let t_changes = C.s_changes_to_t cctx changes in
    let new_s_in_t = Row.update first.Record.row t_changes in
    let z = C.join_of_t_row cctx new_s_in_t in
    (* Detach from every carrier. *)
    List.iter
      (fun (k, record) ->
         if not (C.has_r cctx record) then push [ C.drop cctx ~lsn k ]
         else begin
           let rk = C.r_key_of_t_row cctx record.Record.row in
           let survivors = others_with_r cctx ~except:k rk in
           push [ C.drop cctx ~lsn k ];
           if survivors = [] then
             push
               [ C.put cctx ~lsn ~presence:C.r_bit
                   (C.strip_s cctx record.Record.row) ]
         end)
      carriers;
    (* Attach at the new join value. *)
    let s_part = C.strip_r cctx new_s_in_t in
    let matches_z = if Row.Key.has_null z then [] else C.by_join cctx z in
    (match distinct_r_parts cctx matches_z with
     | [] -> push [ C.put cctx ~lsn ~presence:C.s_bit s_part ]
     | r_parts ->
       List.iter
         (fun (_, (k2, record2)) ->
            if not (C.has_s cctx record2) then begin
              let filled =
                C.graft_s_with_key cctx ~src:new_s_in_t
                  ~onto:record2.Record.row
              in
              push
                (C.rekey cctx ~lsn ~old_key:k2
                   ~presence:(C.presence cctx record2 lor C.s_bit)
                   filled)
            end
            else begin
              let r_only = C.strip_s cctx record2.Record.row in
              let joined =
                C.graft_s_with_key cctx ~src:new_s_in_t ~onto:r_only
              in
              push [ C.put cctx ~lsn ~presence:(C.r_bit lor C.s_bit) joined ]
            end)
         r_parts);
    !touched

let apply t ~lsn (op : LR.op) =
  let cctx = Foj.ctx t in
  let spec = cctx.C.layout.Spec.spec in
  let table = LR.op_table op in
  if String.equal table spec.Spec.r_table then
    match op with
    | LR.Insert { row; _ } -> insert_r t ~lsn row
    | LR.Delete { key; _ } -> delete_r t ~lsn key
    | LR.Update { key; changes; before; _ } ->
      if C.r_join_changed cctx changes then
        update_r_join t ~lsn key changes before
      else update_r_other t ~lsn key changes
  else if String.equal table spec.Spec.s_table then
    match op with
    | LR.Insert { row; _ } -> insert_s t ~lsn row
    | LR.Delete { key; _ } -> delete_s t ~lsn key
    | LR.Update { key; changes; _ } ->
      if C.s_join_changed cctx changes then update_s_join t ~lsn key changes
      else update_s_other t ~lsn key changes
  else begin
    let st = Foj.stats t in
    st.Foj.foreign <- st.Foj.foreign + 1;
    []
  end
