(** Anti-starvation pacing for schema transformations.

    A feedback governor closing the loop the paper's Fig. 4(d) leaves
    open: at a too-low static priority the transformation never
    finishes, because user transactions append log records faster than
    the propagator drains them. The governor watches the propagation
    {e lag} (records logged but not yet propagated) across observation
    windows; when a whole window passes without the lag improving it
    multiplies its {!gain} — the factor schedulers apply to the
    transformation's configured priority — and once the transformation
    has caught up {e and} user response time is back near its
    pre-escalation baseline, it decays the gain toward 1. Geometric
    escalation guarantees convergence: any workload the machine can
    sustain at priority 1 is eventually granted enough capacity.

    The governor holds no clock and drives nothing. Schedulers feed
    {!observe_lag} / {!observe_response} and read {!gain}; one instance
    must not be shared between concurrent runs (it is mutable). Wire it
    into a transformation via [Transform.config.pace]. *)

type config = {
  window : int;         (** lag observations per escalation decision *)
  escalate : float;     (** gain multiplier on a no-progress window *)
  relax : float;        (** gain multiplier ([< 1]) when caught up *)
  max_gain : float;     (** escalation ceiling *)
  lag_slack : int;      (** lag at or below this counts as caught up *)
  rt_tolerance : float;
      (** relax only once response time is within this factor of the
          pre-escalation baseline *)
}

val default_config : config
(** window 6, escalate 2.0, relax 0.5, max_gain 4096, lag_slack 4,
    rt_tolerance 1.5. *)

type t

type stats = {
  current_gain : float;
  escalations : int;
  relaxes : int;
}

val create : ?config:config -> ?obs:Nbsc_obs.Obs.Registry.t -> unit -> t
(** [obs], when given, registers the probes [governor.gain],
    [governor.escalations] and [governor.relaxes] — read-on-demand
    views of this instance's state, so snapshots see the governor
    without it writing anywhere. *)

val observe_lag : t -> lag:int -> unit
(** Feed the current propagation lag. Call on a steady cadence (each
    executor quantum, or on a timer when the transformation is too
    starved to run quanta at all — a starved job cannot report its own
    starvation). *)

val observe_response : t -> rt:float -> unit
(** Feed a user-transaction response time (any consistent unit). While
    the gain is 1 this builds the baseline; during escalation it gates
    the relax step. Optional — without it, relax is gated on lag
    alone. *)

val gain : t -> float
(** Current priority multiplier, [>= 1]. *)

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
