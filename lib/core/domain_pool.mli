(** A spawn-once pool of OCaml 5 domains for per-shard schema-change
    work. Workers are spawned at [create] and parked on a condition
    variable between quanta; [run] is a fork/join barrier dispatching
    one task per worker, with worker 0 always running on the calling
    domain (a pool of size 1 never leaves it).

    The discipline callers must keep: the pool runs {e read-mostly}
    work — scanning frozen structures and computing pure values — and
    all shared-state mutation happens on the calling domain after the
    barrier returns. The engine itself stays single-domain; only the
    bounded quantum bodies fan out. *)

type t

(** How a transformation executes its quanta. [Serial] is the legacy
    single-cursor path; [Sharded] partitions rows by key hash into
    [shards] buckets and fans each quantum out over [pool]. A
    [Sharded] execution with [shards = 1] performs the exact same
    operation sequence as [Serial] (the differential tests enforce
    byte-identity). *)
type exec =
  | Serial
  | Sharded of { pool : t; shards : int }

val create : ?obs:Nbsc_obs.Obs.Registry.t -> size:int -> unit -> t
(** [create ~size ()] spawns [size - 1] worker domains (clamped to at
    least 1 total). With [?obs], registers a [pool.worker<i>.tasks]
    counter per worker, incremented at each dispatch. *)

val size : t -> int

val run : t -> (int -> 'a) -> 'a array
(** [run t f] evaluates [f 0 .. f (size-1)] — [f 0] on the calling
    domain, the rest on the parked workers — and returns all results
    after every worker finished (a full barrier). If any call raised,
    the lowest-indexed exception is re-raised after the barrier. *)

val run_shards : exec -> shards:int -> (int -> 'a) -> 'a array
(** [run_shards exec ~shards f] evaluates [f] for every shard index.
    [Serial] (or one shard) runs all of them inline, in order; a
    [Sharded] exec distributes shard [i] to worker [i mod size]. *)

val shards : exec -> int
(** Shard count of an execution mode: 1 for [Serial]. *)

val shutdown : t -> unit
(** Park and join every worker domain. Idempotent; [run] after
    [shutdown] raises [Invalid_argument]. *)
