open Nbsc_wal
open Nbsc_storage
module LR = Log_record

type stats = {
  mutable applied : int;
  mutable ignored : int;
  mutable foreign : int;
  mutable collisions : int;
}

type t = {
  layout : Spec.merge_layout;
  tgt : Table.t;
  st : stats;
}

let create catalog (layout : Spec.merge_layout) =
  { layout;
    tgt = Catalog.find catalog layout.Spec.mspec.Spec.m_target;
    st = { applied = 0; ignored = 0; foreign = 0; collisions = 0 } }

let layout t = t.layout
let target t = t.tgt
let stats t = t.st

let upsert t ~lsn row =
  let key = Table.key_of_row t.tgt row in
  match Table.find t.tgt key with
  | None ->
    (match Table.insert t.tgt ~lsn row with
     | Ok () -> ()
     | Error `Duplicate_key -> assert false);
    key
  | Some existing ->
    t.st.collisions <- t.st.collisions + 1;
    if Lsn.(lsn > existing.Record.lsn) then begin
      match Table.set_record t.tgt ~key (Record.make ~lsn row) with
      | Ok () -> ()
      | Error `Not_found -> assert false
    end;
    key

let ingest_initial t (record : Record.t) =
  ignore (upsert t ~lsn:record.Record.lsn record.Record.row)

let rule_insert t ~lsn row =
  let key = Table.key_of_row t.tgt row in
  match Table.find t.tgt key with
  | Some existing when Lsn.(existing.Record.lsn >= lsn) ->
    t.st.ignored <- t.st.ignored + 1;
    [ (Table.name t.tgt, key) ]
  | Some _ | None ->
    t.st.applied <- t.st.applied + 1;
    [ (Table.name t.tgt, upsert t ~lsn row) ]

let rule_delete t ~lsn key =
  match Table.find t.tgt key with
  | None ->
    t.st.ignored <- t.st.ignored + 1;
    []
  | Some existing when Lsn.(existing.Record.lsn >= lsn) ->
    t.st.ignored <- t.st.ignored + 1;
    [ (Table.name t.tgt, key) ]
  | Some _ ->
    t.st.applied <- t.st.applied + 1;
    (match Table.delete t.tgt ~lsn key with
     | Ok _ -> ()
     | Error `Not_found -> assert false);
    [ (Table.name t.tgt, key) ]

let rule_update t ~lsn key changes =
  match Table.find t.tgt key with
  | None ->
    t.st.ignored <- t.st.ignored + 1;
    []
  | Some existing when Lsn.(existing.Record.lsn >= lsn) ->
    t.st.ignored <- t.st.ignored + 1;
    [ (Table.name t.tgt, key) ]
  | Some _ ->
    t.st.applied <- t.st.applied + 1;
    (match Table.update t.tgt ~lsn ~key changes with
     | Ok _ -> ()
     | Error `Not_found -> assert false);
    [ (Table.name t.tgt, key) ]

let apply t ~lsn (op : LR.op) =
  let sources = t.layout.Spec.mspec.Spec.m_sources in
  if not (List.exists (String.equal (LR.op_table op)) sources) then begin
    t.st.foreign <- t.st.foreign + 1;
    []
  end
  else
    match op with
    | LR.Insert { row; _ } -> rule_insert t ~lsn row
    | LR.Delete { key; _ } -> rule_delete t ~lsn key
    | LR.Update { key; changes; _ } -> rule_update t ~lsn key changes
