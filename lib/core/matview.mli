(** Deferred materialized views.

    The paper's closing remark: "Non-blocking population of tables may
    have other important usages than schema changes. Using the
    technique to create other types of derived tables like Materialized
    Views is an obvious example."

    This module is that example: a full-outer-join view created with
    zero blocking (fuzzy population, log catch-up) and then maintained
    {e deferred} — the view trails the sources by however many log
    records the application tolerates, and {!refresh} catches it up on
    demand. Unlike a schema transformation there is no synchronization
    step, no lock transfer, and the sources stay primary forever.

    Because the initial image comes from a fuzzy read, this sidesteps
    the limitation the paper notes about classical MV maintenance
    ("an MV must initially be consistent, i.e. populated with the
    result of a blocking read"). *)


type t

type config = {
  scan_batch : int;
  propagate_batch : int;
}

val default_config : config

val create :
  Nbsc_engine.Db.t -> ?config:config -> ?plan_mode:Plan.mode -> Spec.foj -> t
(** Creates the view table (named [spec.t_table]) with its indexes and
    starts the background population. [many_to_many] views are
    supported. [plan_mode] selects compiled or interpreted propagation
    plans (default {!Plan.default_mode}). @raise Invalid_argument on an
    invalid spec. *)

val step : t -> bool
(** One bounded unit of background work (population, then propagation);
    true if anything was done. Call from an idle loop, or ignore and
    use {!refresh}. *)

val refresh : t -> unit
(** Catch the view up with the current log head (deferred maintenance:
    run before querying the view). *)

val lag : t -> int
(** Staleness: log records not yet reflected. 0 after {!refresh}
    (until the next source write). *)

val populated : t -> bool
(** Whether the initial fuzzy population has finished (before that,
    [lag] does not measure staleness meaningfully). *)

val table : t -> string

val drop : t -> unit
(** Stop maintenance and drop the view table. *)
