module Obs = Nbsc_obs.Obs

(* One parked worker domain. The slot's mutex guards [work], [completed]
   and [stop]; the coordinator writes a job under the lock and signals
   [work_ready], the worker runs it outside the lock and signals
   [work_done]. Results and exceptions travel through the closure, not
   the slot — the barrier's lock handoff orders those writes. *)
type slot = {
  lock : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable work : (unit -> unit) option;
  mutable completed : bool;
  mutable stop : bool;
}

type t = {
  pool_size : int;
  slots : slot array;  (* workers 1 .. size-1 *)
  domains : unit Domain.t array;
  tasks : Obs.Counter.t array option;  (* per worker, incl. worker 0 *)
  mutable shut : bool;
}

type exec =
  | Serial
  | Sharded of { pool : t; shards : int }

let worker_loop slot =
  let rec loop () =
    Mutex.lock slot.lock;
    while slot.work = None && not slot.stop do
      Condition.wait slot.work_ready slot.lock
    done;
    if slot.stop then Mutex.unlock slot.lock
    else begin
      let job = match slot.work with Some j -> j | None -> assert false in
      Mutex.unlock slot.lock;
      (* The job never raises: [run] wraps the user function so the
         exception crosses domains as a value. *)
      job ();
      Mutex.lock slot.lock;
      slot.work <- None;
      slot.completed <- true;
      Condition.signal slot.work_done;
      Mutex.unlock slot.lock;
      loop ()
    end
  in
  loop ()

let create ?obs ~size () =
  let size = max 1 size in
  let slots =
    Array.init (size - 1) (fun _ ->
        { lock = Mutex.create ();
          work_ready = Condition.create ();
          work_done = Condition.create ();
          work = None;
          completed = false;
          stop = false })
  in
  let domains =
    Array.map (fun slot -> Domain.spawn (fun () -> worker_loop slot)) slots
  in
  let tasks =
    match obs with
    | None -> None
    | Some reg ->
      Some
        (Array.init size (fun i ->
             Obs.Registry.counter reg
               (Printf.sprintf "pool.worker%d.tasks" i)))
  in
  { pool_size = size; slots; domains; tasks; shut = false }

let size t = t.pool_size

let count_task t i =
  match t.tasks with None -> () | Some c -> Obs.Counter.incr c.(i)

let run t f =
  if t.shut then invalid_arg "Domain_pool.run: pool is shut down";
  if t.pool_size = 1 then begin
    count_task t 0;
    [| f 0 |]
  end
  else begin
    let results = Array.make t.pool_size None in
    for i = 1 to t.pool_size - 1 do
      let slot = t.slots.(i - 1) in
      count_task t i;
      Mutex.lock slot.lock;
      slot.completed <- false;
      slot.work <-
        Some
          (fun () ->
             results.(i) <-
               (match f i with v -> Some (Ok v) | exception e -> Some (Error e)));
      Condition.signal slot.work_ready;
      Mutex.unlock slot.lock
    done;
    count_task t 0;
    results.(0) <- (match f 0 with v -> Some (Ok v) | exception e -> Some (Error e));
    for i = 1 to t.pool_size - 1 do
      let slot = t.slots.(i - 1) in
      Mutex.lock slot.lock;
      while not slot.completed do
        Condition.wait slot.work_done slot.lock
      done;
      Mutex.unlock slot.lock
    done;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end

let shards = function Serial -> 1 | Sharded { shards; _ } -> max 1 shards

let run_shards exec ~shards:n f =
  let n = max 1 n in
  match exec with
  | Serial -> Array.init n f
  | Sharded { pool; _ } ->
    if n = 1 || pool.pool_size = 1 then Array.init n f
    else begin
      (* Shard i runs on worker (i mod size); each worker walks its own
         stride, so every shard is covered exactly once and results are
         written to disjoint indices. *)
      let results = Array.make n None in
      let per_worker w =
        let i = ref w in
        while !i < n do
          results.(!i) <-
            (match f !i with
             | v -> Some (Ok v)
             | exception e -> Some (Error e));
          i := !i + pool.pool_size
        done
      in
      ignore (run pool per_worker);
      Array.map
        (function
          | Some (Ok v) -> v
          | Some (Error e) -> raise e
          | None -> assert false)
        results
    end

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    Array.iter
      (fun slot ->
         Mutex.lock slot.lock;
         slot.stop <- true;
         Condition.signal slot.work_ready;
         Mutex.unlock slot.lock)
      t.slots;
    Array.iter Domain.join t.domains
  end
