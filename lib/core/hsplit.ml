open Nbsc_value
open Nbsc_wal
open Nbsc_storage
module LR = Log_record

type stats = {
  mutable applied : int;
  mutable ignored : int;
  mutable foreign : int;
  mutable migrations : int;
}

type t = {
  layout : Spec.hsplit_layout;
  t_true : Table.t;
  t_false : Table.t;
  st : stats;
}

let create catalog (layout : Spec.hsplit_layout) =
  { layout;
    t_true = Catalog.find catalog layout.Spec.hspec.Spec.h_true_table;
    t_false = Catalog.find catalog layout.Spec.hspec.Spec.h_false_table;
    st = { applied = 0; ignored = 0; foreign = 0; migrations = 0 } }

let layout t = t.layout
let true_table t = t.t_true
let false_table t = t.t_false
let stats t = t.st

let route t row = if t.layout.Spec.h_route row then t.t_true else t.t_false

let locate t key =
  match Table.find t.t_true key with
  | Some r -> Some (t.t_true, r)
  | None ->
    (match Table.find t.t_false key with
     | Some r -> Some (t.t_false, r)
     | None -> None)

let ingest_initial t (record : Record.t) =
  let target = route t record.Record.row in
  match Table.insert target ~lsn:record.Record.lsn record.Record.row with
  | Ok () -> ()
  | Error `Duplicate_key -> ()  (* double-fed batch: ignore *)

let rule_insert t ~lsn row =
  let target = route t row in
  let key = Table.key_of_row target row in
  match locate t key with
  | Some (held_in, _) ->
    (* Already reflected (the fuzzy scan or an earlier replay); the
       delete that would precede a re-insert is propagated first, so
       presence alone means "same or newer state". *)
    t.st.ignored <- t.st.ignored + 1;
    [ (Table.name held_in, key) ]
  | None ->
    t.st.applied <- t.st.applied + 1;
    (match Table.insert target ~lsn row with
     | Ok () -> ()
     | Error `Duplicate_key -> assert false);
    [ (Table.name target, key) ]

let rule_delete t ~lsn key =
  match locate t key with
  | None ->
    t.st.ignored <- t.st.ignored + 1;
    []
  | Some (held_in, record) when Lsn.(record.Record.lsn >= lsn) ->
    t.st.ignored <- t.st.ignored + 1;
    [ (Table.name held_in, key) ]
  | Some (held_in, _) ->
    t.st.applied <- t.st.applied + 1;
    (match Table.delete held_in ~lsn key with
     | Ok _ -> ()
     | Error `Not_found -> assert false);
    [ (Table.name held_in, key) ]

let rule_update t ~lsn key changes =
  match locate t key with
  | None ->
    t.st.ignored <- t.st.ignored + 1;
    []
  | Some (held_in, record) when Lsn.(record.Record.lsn >= lsn) ->
    t.st.ignored <- t.st.ignored + 1;
    [ (Table.name held_in, key) ]
  | Some (held_in, record) ->
    t.st.applied <- t.st.applied + 1;
    let new_row = Row.update record.Record.row changes in
    let target = route t new_row in
    if target == held_in then begin
      match Table.update held_in ~lsn ~key changes with
      | Ok _ -> [ (Table.name held_in, key) ]
      | Error `Not_found -> assert false
    end
    else begin
      (* The predicate flipped: migrate. *)
      t.st.migrations <- t.st.migrations + 1;
      (match Table.delete held_in ~lsn key with
       | Ok _ -> ()
       | Error `Not_found -> assert false);
      (match Table.insert target ~lsn new_row with
       | Ok () -> ()
       | Error `Duplicate_key -> assert false);
      [ (Table.name held_in, key); (Table.name target, key) ]
    end

let apply t ~lsn (op : LR.op) =
  let source = t.layout.Spec.hspec.Spec.h_source in
  if not (String.equal (LR.op_table op) source) then begin
    t.st.foreign <- t.st.foreign + 1;
    []
  end
  else
    match op with
    | LR.Insert { row; _ } -> rule_insert t ~lsn row
    | LR.Delete { key; _ } -> rule_delete t ~lsn key
    | LR.Update { key; changes; _ } -> rule_update t ~lsn key changes
