open Nbsc_value
open Nbsc_storage
module LR = Nbsc_wal.Log_record
module C = Foj_common

type stats = {
  mutable applied : int;
  mutable ignored : int;
  mutable foreign : int;
}

type t = {
  cctx : C.ctx;
  st : stats;
}

let create ?mode catalog layout =
  { cctx = C.make_ctx ?mode catalog layout;
    st = { applied = 0; ignored = 0; foreign = 0 } }

let ctx t = t.cctx
let stats t = t.st

let l t = t.cctx.C.layout

(* Rule 1: insert r{^y}{_x} into R. *)
let rule_insert_r t ~lsn row =
  let cctx = t.cctx in
  let y = C.r_key_of_r_row cctx row in
  match C.by_r_key cctx y with
  | (k, _) :: _ ->
    (* t{^y} exists: the log record is already reflected (Theorem 1). *)
    t.st.ignored <- t.st.ignored + 1;
    [ k ]
  | [] ->
    t.st.applied <- t.st.applied + 1;
    let x = C.join_of_r_row cctx row in
    let fresh, bits = C.t_row_of_sources cctx ~r:(Some row) ~s:None in
    if Row.Key.has_null x then
      (* A NULL join attribute never matches: t{^y}{_null}. *)
      [ C.put cctx ~lsn ~presence:bits fresh ]
    else begin
      let matches = C.by_join cctx x in
      match
        List.find_opt (fun (_, record) -> not (C.has_r cctx record)) matches
      with
      | Some (k, record) ->
        (* t{^null}{_x} found: fill in the R part. *)
        let row' = C.graft_r cctx ~r:row ~onto:record.Record.row in
        C.rekey cctx ~lsn ~old_key:k
          ~presence:(C.presence cctx record lor C.r_bit)
          row'
      | None ->
        (match
           List.find_opt (fun (_, record) -> C.has_s cctx record) matches
         with
         | Some (_, record) ->
           (* t{^v}{_x} exists: join the new R row with its s{^x} part. *)
           let row' =
             C.graft_s_from_t cctx ~src:record.Record.row ~onto:fresh
           in
           [ C.put cctx ~lsn ~presence:(bits lor C.s_bit) row' ]
         | None ->
           (* No s{^x} in T: t{^y}{_null} (join columns keep x). *)
           [ C.put cctx ~lsn ~presence:bits fresh ])
    end

(* Rule 3: delete r{^y} from R. *)
let rule_delete_r t ~lsn y =
  let cctx = t.cctx in
  match C.by_r_key cctx y with
  | [] ->
    t.st.ignored <- t.st.ignored + 1;
    []
  | (k, record) :: _ ->
    t.st.applied <- t.st.applied + 1;
    if not (C.has_s cctx record) then [ C.drop cctx ~lsn k ]
    else begin
      let sk = C.s_key_of_t_row cctx record.Record.row in
      let others =
        List.filter (fun (k', _) -> not (Row.Key.equal k k'))
          (C.by_s_key cctx sk)
      in
      if others = [] then begin
        (* t{^y}{_x} is the only record containing s{^x}: preserve the
           S part as t{^null}{_x} before deleting. *)
        let survivor = C.strip_r cctx record.Record.row in
        let k1 = C.drop cctx ~lsn k in
        let k2 = C.put cctx ~lsn ~presence:C.s_bit survivor in
        [ k1; k2 ]
      end
      else [ C.drop cctx ~lsn k ]
    end

(* Rule 7 (R side): update of non-join attributes of r{^y}. *)
let rule_update_r_other t ~lsn y changes =
  let cctx = t.cctx in
  match C.by_r_key cctx y with
  | [] ->
    t.st.ignored <- t.st.ignored + 1;
    []
  | (k, _) :: _ ->
    t.st.applied <- t.st.applied + 1;
    let t_changes = C.r_changes_to_t cctx changes in
    (* Changes routed here never alter T's key columns: join-column
       rewrites landing in this rule come from rule 5's x = z case and
       are no-ops by construction — drop them rather than re-keying. *)
    let t_changes = C.drop_t_key_changes cctx t_changes in
    if t_changes = [] then [ k ]
    else begin
      (match Table.update cctx.C.t_tbl ~lsn ~key:k t_changes with
       | Ok _ -> ()
       | Error `Not_found -> assert false);
      [ k ]
    end

(* Rule 5: update of the join attribute of r{^y} from x to z. *)
let rule_update_r_join t ~lsn y changes before =
  let cctx = t.cctx in
  match C.by_r_key cctx y with
  | [] ->
    t.st.ignored <- t.st.ignored + 1;
    []
  | (k, record) :: _ ->
    let row = record.Record.row in
    (* w <> x check (see the .mli note): T must still show the
       pre-update value on every changed join column, else a newer
       state is already reflected and the record is skipped. *)
    let t_pre_state =
      List.for_all
        (fun (r_pos, old_v) ->
           match C.r_join_dst cctx r_pos with
           | None -> true
           | Some t_pos -> Value.equal (Row.get row t_pos) old_v)
        before
    in
    let t_changes = C.r_changes_to_t cctx changes in
    let new_r_in_t = Row.update row t_changes in
    let z = C.join_of_t_row cctx new_r_in_t in
    let x = C.join_of_t_row cctx row in
    if not t_pre_state then begin
      t.st.ignored <- t.st.ignored + 1;
      [ k ]
    end
    else if Row.Key.equal x z then
      (* Join value unchanged (update rewrote it to the same value):
         behaves like a plain attribute update. *)
      rule_update_r_other t ~lsn y changes
    else begin
      t.st.applied <- t.st.applied + 1;
      let touched = ref [] in
      let push ks = touched := !touched @ ks in
      (* Preserve s{^x} if t{^y}{_x} was its only carrier. *)
      if C.has_s cctx record then begin
        let sk = C.s_key_of_t_row cctx row in
        let others =
          List.filter (fun (k', _) -> not (Row.Key.equal k k'))
            (C.by_s_key cctx sk)
        in
        if others = [] then
          push [ C.put cctx ~lsn ~presence:C.s_bit (C.strip_r cctx row) ]
      end;
      (* Query the destination before removing the old record. *)
      let matches_z =
        if Row.Key.has_null z then [] else C.by_join cctx z
      in
      push [ C.drop cctx ~lsn k ];
      let r_part = C.strip_s cctx new_r_in_t in
      (match
         List.find_opt (fun (_, r2) -> not (C.has_r cctx r2)) matches_z
       with
       | Some (k2, r2) ->
         (* t{^null}{_z} found: merge into t{^y}{_z}. *)
         let merged = C.graft_s_from_t cctx ~src:r2.Record.row ~onto:r_part in
         push [ C.drop cctx ~lsn k2 ];
         push [ C.put cctx ~lsn ~presence:(C.r_bit lor C.s_bit) merged ]
       | None ->
         (match
            List.find_opt (fun (_, r2) -> C.has_s cctx r2) matches_z
          with
          | Some (_, r2) ->
            (* t{^v}{_z} exists: join with its s{^z} part. *)
            let merged =
              C.graft_s_from_t cctx ~src:r2.Record.row ~onto:r_part
            in
            push [ C.put cctx ~lsn ~presence:(C.r_bit lor C.s_bit) merged ]
          | None ->
            (* No s{^z}: t{^y}{_null} with join z. *)
            push [ C.put cctx ~lsn ~presence:C.r_bit r_part ]));
      !touched
    end

(* Rule 2: insert s{^x} into S. *)
let rule_insert_s t ~lsn row =
  let cctx = t.cctx in
  let x = C.join_of_s_row cctx row in
  let sk = C.s_key_of_s_row cctx row in
  if Row.Key.has_null x then begin
    (* NULL join value: appears only padded with r-null. *)
    match C.by_s_key cctx sk with
    | (k, _) :: _ ->
      t.st.ignored <- t.st.ignored + 1;
      [ k ]
    | [] ->
      t.st.applied <- t.st.applied + 1;
      let fresh, bits = C.t_row_of_sources cctx ~r:None ~s:(Some row) in
      [ C.put cctx ~lsn ~presence:bits fresh ]
  end
  else begin
    let matches = C.by_join cctx x in
    let unfilled =
      List.filter (fun (_, record) -> not (C.has_s cctx record)) matches
    in
    if matches = [] then begin
      t.st.applied <- t.st.applied + 1;
      let fresh, bits = C.t_row_of_sources cctx ~r:None ~s:(Some row) in
      [ C.put cctx ~lsn ~presence:bits fresh ]
    end
    else if unfilled = [] then begin
      (* Every record with join x already carries an S part: reflected. *)
      t.st.ignored <- t.st.ignored + 1;
      List.map fst matches
    end
    else begin
      t.st.applied <- t.st.applied + 1;
      List.concat_map
        (fun (k, record) ->
           let row' = C.graft_s cctx ~s:row ~onto:record.Record.row in
           C.rekey cctx ~lsn ~old_key:k
             ~presence:(C.presence cctx record lor C.s_bit)
             row')
        unfilled
    end
  end

(* Rule 4: delete s{^x} from S. *)
let rule_delete_s t ~lsn sk =
  let cctx = t.cctx in
  match C.by_s_key cctx sk with
  | [] ->
    t.st.ignored <- t.st.ignored + 1;
    []
  | matches ->
    t.st.applied <- t.st.applied + 1;
    List.concat_map
      (fun (k, record) ->
         if not (C.has_r cctx record) then [ C.drop cctx ~lsn k ]
         else
           C.rekey cctx ~lsn ~old_key:k ~presence:C.r_bit
             (C.strip_s cctx record.Record.row))
      matches

(* Rule 7 (S side): update of non-join attributes of s{^x}. *)
let rule_update_s_other t ~lsn sk changes =
  let cctx = t.cctx in
  match C.by_s_key cctx sk with
  | [] ->
    t.st.ignored <- t.st.ignored + 1;
    []
  | matches ->
    t.st.applied <- t.st.applied + 1;
    let t_changes = C.s_changes_to_t cctx changes in
    List.map
      (fun (k, _) ->
         if t_changes <> [] then begin
           match Table.update cctx.C.t_tbl ~lsn ~key:k t_changes with
           | Ok _ -> ()
           | Error `Not_found -> assert false
         end;
         k)
      matches

(* Rule 6: update of the join attribute of s{^x} to z. *)
let rule_update_s_join t ~lsn sk changes =
  let cctx = t.cctx in
  match C.by_s_key cctx sk with
  | [] ->
    t.st.ignored <- t.st.ignored + 1;
    []
  | ((_, first) :: _ as matches) ->
    t.st.applied <- t.st.applied + 1;
    let touched = ref [] in
    let push ks = touched := !touched @ ks in
    (* The log lacks the unchanged S attributes; extract them from a
       record in T (paper: "sx is used to extract the attribute values
       of sz"). *)
    let t_changes = C.s_changes_to_t cctx changes in
    let new_s_in_t = Row.update first.Record.row t_changes in
    let z = C.join_of_t_row cctx new_s_in_t in
    (* Phase 1: detach s{^x} from every carrier. *)
    List.iter
      (fun (k, record) ->
         if not (C.has_r cctx record) then push [ C.drop cctx ~lsn k ]
         else
           push
             (C.rekey cctx ~lsn ~old_key:k ~presence:C.r_bit
                (C.strip_s cctx record.Record.row)))
      matches;
    (* Phase 2: attach s{^z} to records with join value z. *)
    if Row.Key.has_null z then begin
      (* New join value never matches: s{^z} survives as t{^null}{_z}. *)
      push
        [ C.put cctx ~lsn ~presence:C.s_bit (C.strip_r cctx new_s_in_t) ]
    end
    else begin
      let matches_z = C.by_join cctx z in
      let fillable =
        List.filter
          (fun (_, r2) -> C.has_r cctx r2 && not (C.has_s cctx r2))
          matches_z
      in
      if matches_z = [] then
        push
          [ C.put cctx ~lsn ~presence:C.s_bit (C.strip_r cctx new_s_in_t) ]
      else
        List.iter
          (fun (k2, r2) ->
             (* Fill the S part and refresh the S-key columns in T. *)
             let filled =
               C.graft_s_with_key cctx ~src:new_s_in_t ~onto:r2.Record.row
             in
             push
               (C.rekey cctx ~lsn ~old_key:k2
                  ~presence:(C.presence cctx r2 lor C.s_bit)
                  filled))
          fillable
    end;
    !touched

let apply t ~lsn (op : LR.op) =
  let spec = (l t).Spec.spec in
  let table = LR.op_table op in
  if String.equal table spec.Spec.r_table then
    match op with
    | LR.Insert { row; _ } -> rule_insert_r t ~lsn row
    | LR.Delete { key; _ } -> rule_delete_r t ~lsn key
    | LR.Update { key; changes; before; _ } ->
      if C.r_join_changed t.cctx changes then
        rule_update_r_join t ~lsn key changes before
      else rule_update_r_other t ~lsn key changes
  else if String.equal table spec.Spec.s_table then
    match op with
    | LR.Insert { row; _ } -> rule_insert_s t ~lsn row
    | LR.Delete { key; _ } -> rule_delete_s t ~lsn key
    | LR.Update { key; changes; _ } ->
      if C.s_join_changed t.cctx changes then
        rule_update_s_join t ~lsn key changes
      else rule_update_s_other t ~lsn key changes
  else begin
    t.st.foreign <- t.st.foreign + 1;
    []
  end
