open Nbsc_wal
open Nbsc_lock
open Nbsc_storage
open Nbsc_txn
open Nbsc_engine

(* Nbsc_core grows its own Db facade; inside this library the engine's
   is meant (the alias also keeps ocamldep from seeing a cycle). *)
module Db = Nbsc_engine.Db
module Obs = Nbsc_obs.Obs
module Json = Nbsc_obs.Json

(* The sync-strategy constructors now live in {!Options}; the equation
   keeps every existing [Transform.Nonblocking_abort] reference valid. *)
type strategy = Options.sync =
  | Blocking_commit
  | Nonblocking_abort
  | Nonblocking_commit

type config = {
  scan_batch : int;
  propagate_batch : int;
  analysis : Analysis.policy;
  strategy : strategy;
  drop_sources : bool;
  sync_gate : unit -> bool;
  pace : Governor.t option;
}

let default_config =
  { scan_batch = 256;
    propagate_batch = 256;
    analysis = Analysis.default;
    strategy = Nonblocking_abort;
    drop_sources = true;
    sync_gate = (fun () -> true);
    pace = None }

let config_of_options (o : Options.t) =
  { scan_batch = o.Options.scan_batch;
    propagate_batch = o.Options.propagate_batch;
    analysis = o.Options.analysis;
    strategy = o.Options.sync;
    drop_sources = o.Options.drop_sources;
    sync_gate = o.Options.sync_gate;
    pace = o.Options.pace }

let options_of_config (c : config) =
  { Options.default with
    Options.scan_batch = c.scan_batch;
    propagate_batch = c.propagate_batch;
    analysis = c.analysis;
    sync = c.strategy;
    drop_sources = c.drop_sources;
    sync_gate = c.sync_gate;
    pace = c.pace }

(* With a governor attached, a starving transformation also works
   harder per quantum: the batch limit scales with the gain (capped —
   a quantum must stay a quantum). Schedulers that hand out CPU by
   priority additionally multiply their share by [Governor.gain]. *)
let paced_batch config base =
  match config.pace with
  | None -> base
  | Some g -> base * (1 + min 15 (int_of_float (Governor.gain g) - 1))

type phase =
  | Populating
  | Propagating
  | Checking
  | Quiescing
  | Draining
  | Done
  | Failed of string

type t = {
  db : Db.t;
  mgr : Manager.t;
  config : config;
  tf : Transformation.packed;
  pop : Population.t;
  prop : Propagator.t;
  src : string list;
  tgt : string list;
  lock_map : Transformation.lock_map;
  consistency : Consistency.t option;
  unknown : unit -> int;
  hooks : Transformation.sync_hooks;
  holder : int;  (* latch holder id, also the lock-hook id *)
  job_name : string;
  analysis : Analysis.t;
  mutable tphase : phase;
  mutable route : [ `Sources | `Targets ];
  mutable iterations : int;
  mutable caught_up_once : bool;
  mutable final_records : int;
  mutable old_txns : Manager.txn_id list;
  mutable forced_aborts : int;
  mutable hook_installed : bool;
  migration : Options.migration;
  mutable demand_migrations : int;
  mutable demand_hook : bool;  (* access hook registered in the manager *)
  obs : Obs.Registry.t;
  root_span : Obs.span;
  mutable phase_span : (string * Obs.span) option;
}

type progress = {
  p_phase : phase;
  iterations : int;
  scanned : int;
  produced : int;
  applied : int;
  propagated : int;
  lag : int;
  locks_transferred : int;
  final_records : int;
  unknown_flags : int;
  forced_aborts : int;
}

(* {2 Durable job state}

   A persistable executor journals an opaque resume payload: an
   envelope [version; phase; log position; encoded spec]. The phase
   collapses to the three resume situations — "pop" (population
   unfinished: restart from scratch), "prop" (initial image complete:
   rebuild the operator around the snapshot-restored targets and
   continue propagation from [position]) and "drain" (already switched:
   finish propagation onto the targets and finalize). *)

let payload_version = "v1"

let phase_tag = function
  | Populating -> "pop"
  | Propagating | Checking | Quiescing -> "prop"
  | Draining -> "drain"
  | Done | Failed _ -> "prop" (* unreachable: completed jobs deregister *)

let encode_job_state ~tag ~position spec_payload =
  Nbsc_value.Codec.encode_string_list
    [ payload_version; tag; Lsn.to_string position; spec_payload ]

let decode_job_state s =
  match Nbsc_value.Codec.decode_string_list s with
  | [ v; tag; position; spec_payload ] when String.equal v payload_version ->
    let position =
      match int_of_string_opt position with
      | Some n -> Lsn.of_int n
      | None -> failwith "Transform: bad log position in job state"
    in
    (tag, position, spec_payload)
  | _ -> failwith "Transform: malformed job state payload"
  | exception Failure m -> failwith ("Transform: " ^ m)

let write_fuzzy_mark mgr =
  let active = Manager.active_snapshot mgr in
  ignore
    (Log.append (Manager.log mgr) ~txn:Log_record.system_txn ~prev_lsn:Lsn.zero
       (Log_record.Fuzzy_mark { active }))

(* {2 Introspection} *)

let phase t = t.tphase
let routing t = t.route
let sources t = t.src
let targets t = t.tgt
let manager t = t.mgr
let job_name t = t.job_name
let checker t = t.consistency

let name t =
  let (module T : Transformation.S) = t.tf in
  T.name

let migration t = t.migration
let demand_migrations t = t.demand_migrations

let counters t =
  let (module T : Transformation.S) = t.tf in
  T.counters ()

let progress t =
  { p_phase = t.tphase;
    iterations = t.iterations;
    scanned = Population.scanned t.pop;
    produced = Population.produced t.pop;
    applied = Transformation.counter t.tf "applied";
    propagated = Propagator.records_processed t.prop;
    lag = Propagator.lag t.prop;
    locks_transferred = Propagator.locks_transferred t.prop;
    final_records = t.final_records;
    unknown_flags = t.unknown ();
    forced_aborts = t.forced_aborts }

(* {2 Trace spans}

   One root span ("schema_change") per executor; under it one span per
   lifecycle phase, named after the paper's stages: populate, propagate,
   check, sync (sync covers quiescing, draining and finalization).
   Span ids are allocated even when no sink listens — they are
   per-registry counters, so traces stay deterministic regardless of
   when a sink attached. *)

let phase_str = function
  | Populating -> "populating"
  | Propagating -> "propagating"
  | Checking -> "checking"
  | Quiescing -> "quiescing"
  | Draining -> "draining"
  | Done -> "done"
  | Failed m -> "failed: " ^ m

let span_name_of_phase = function
  | Populating -> Some "populate"
  | Propagating -> Some "propagate"
  | Checking -> Some "check"
  | Quiescing | Draining -> Some "sync"
  | Done | Failed _ -> None

let sync_spans t =
  let want = span_name_of_phase t.tphase in
  let cur = Option.map fst t.phase_span in
  if not (Option.equal String.equal cur want) then begin
    (match t.phase_span with
     | Some (_, span) -> Obs.span_close t.obs span
     | None -> ());
    match want with
    | Some w ->
      t.phase_span <- Some (w, Obs.span_open t.obs ~parent:t.root_span w)
    | None ->
      t.phase_span <- None;
      Obs.span_close t.obs
        ~attrs:
          (match t.tphase with
           | Failed m -> [ ("failed", Json.String m) ]
           | _ -> [])
        t.root_span
  end

let remove_probes t =
  Obs.Registry.remove t.obs ("transform." ^ t.job_name ^ ".lag");
  Obs.Registry.remove t.obs ("transform." ^ t.job_name ^ ".propagated")

(* {2 Lazy demand migration (Options.Lazy / Hybrid)}

   While populating, an access hook in the transaction manager migrates
   any source record the instant a transaction touches it: the record's
   current state is replayed through the propagation rules as if its
   insert had just been logged. Idempotent by the rules' LSN gating —
   when the log propagation later reaches the record's real operations
   it finds the state already reflected. The hook removes itself from
   the hot path once population (the background sweep) completes:
   records written after that point ride the ordinary log propagation,
   so demand migration has nothing left to do. *)

let demand_migrate t ~table ~key =
  if List.exists (String.equal table) t.src then
    match Catalog.find_opt (Db.catalog t.db) table with
    | None -> ()
    | Some tbl ->
      (match Table.find tbl key with
       | None -> ()
       | Some record ->
         let (module T : Transformation.S) = t.tf in
         ignore
           (T.rules.Propagator.apply ~lsn:record.Record.lsn
              (Log_record.Insert { table; row = record.Record.row }));
         t.demand_migrations <- t.demand_migrations + 1)

let install_demand_hook t =
  Manager.add_access_hook t.mgr ~id:t.holder (fun ~table ~key ->
      if t.tphase = Populating then demand_migrate t ~table ~key);
  t.demand_hook <- true

let remove_demand_hook t =
  if t.demand_hook then begin
    Manager.remove_access_hook t.mgr ~id:t.holder;
    t.demand_hook <- false
  end

(* {2 Two-schema locking (paper, Sec. 4.3)}

   A lock on a source record is also taken on the implicated target
   records (with Source provenance, so transferred locks never fight
   each other), and a lock on a target record is also taken on the
   corresponding source records (Native — ordinary conflicts there).
   Both directions come from the operator's lock map. *)

let source_index t table =
  let rec go i = function
    | [] -> 0
    | s :: rest -> if String.equal s table then i else go (i + 1) rest
  in
  go 0 t.src

let dual_lock_hook t ~txn:_ ~table ~key ~mode =
  if List.exists (String.equal table) t.src then
    List.map
      (fun (tbl, k) ->
         { Lock_table_many.table = tbl;
           key = k;
           lock =
             { Compat.mode; provenance = Compat.Source (source_index t table) }
         })
      (t.lock_map.Transformation.source_to_targets ~table ~key)
  else if List.exists (String.equal table) t.tgt then
    List.map
      (fun (tbl, k) ->
         { Lock_table_many.table = tbl;
           key = k;
           lock = { Compat.mode; provenance = Compat.Native } })
      (t.lock_map.Transformation.target_to_sources ~table ~key)
  else []

(* {2 Synchronization (paper, Sec. 3.4)} *)

let active_txns_on_sources t =
  let locks = Manager.locks t.mgr in
  List.filter_map
    (fun (_, _, owner, _) ->
       if Manager.is_active t.mgr owner then Some owner else None)
    (Lock_table.locked_resources_in locks ~tables:t.src)
  |> List.sort_uniq Int.compare

let latch_sources t =
  let latches = Manager.latches t.mgr in
  let rec go acquired = function
    | [] -> true
    | table :: rest ->
      if Latch.try_latch latches ~holder:t.holder ~table then
        go (table :: acquired) rest
      else begin
        (* Another transformation holds one of our latches right now —
           back out and retry at a later step rather than deadlocking. *)
        List.iter
          (fun table -> Latch.unlatch latches ~holder:t.holder ~table)
          acquired;
        false
      end
  in
  go [] t.src

let unlatch_sources t =
  List.iter
    (fun table ->
       if Latch.latched_by (Manager.latches t.mgr) ~table = Some t.holder then
         Latch.unlatch (Manager.latches t.mgr) ~holder:t.holder ~table)
    t.src

let switch_routing t =
  t.hooks.Transformation.before_switch ();
  t.route <- `Targets;
  t.hooks.Transformation.after_switch ()

let persistable t =
  let (module T : Transformation.S) = t.tf in
  Option.is_some T.spec_payload

let write_job_done t =
  if persistable t then
    ignore
      (Log.append (Manager.log t.mgr) ~txn:Log_record.system_txn
         ~prev_lsn:Lsn.zero (Log_record.Job_done { job = t.job_name }))

let finalize t =
  (* The schema-change commit point doubles as a durability barrier:
     user commits acked inside the group window must not sit in the
     buffered sink while the switch becomes observable (and while the
     fault site below can crash us). *)
  Manager.flush_commits t.mgr;
  Fault.hit "sync_commit";
  if t.hook_installed then begin
    Manager.remove_extra_lock_hook t.mgr ~id:t.holder;
    t.hook_installed <- false
  end;
  remove_demand_hook t;
  Manager.unfreeze_tables t.mgr t.src;
  if t.config.drop_sources then
    List.iter
      (fun src ->
         if Catalog.mem (Db.catalog t.db) src then
           Catalog.drop (Db.catalog t.db) src)
      t.src;
  t.hooks.Transformation.on_done ();
  (* Population finished long ago, but with [drop_sources = false] its
     fuzzy cursors were never closed — the source tables would refuse
     arrival compaction forever. Close is idempotent. *)
  Population.close t.pop;
  Propagator.close t.prop;
  remove_probes t;
  (* No [Job_done] here: the targets' final writes are unlogged, so
     completion only becomes durable at the next checkpoint (which
     finds no job registered and drops the stale [Job_state] from the
     WAL). A crash before that checkpoint resumes the job in its last
     persisted phase and re-converges — finalization is idempotent. *)
  Db.unregister_job t.db ~name:t.job_name;
  t.tphase <- Done

(* Returns false when the sources could not be latched (another
   transformation is synchronizing on an overlapping table); the caller
   stays in Propagating and retries on a later step. *)
let begin_sync t =
  match t.config.strategy with
  | Blocking_commit ->
    (* Block newcomers; current transactions run to completion. *)
    Manager.freeze_tables t.mgr t.src;
    t.tphase <- Quiescing;
    true
  | Nonblocking_abort ->
    if not (latch_sources t) then false
    else begin
      t.final_records <- Propagator.run_to_head t.prop;
      let old = active_txns_on_sources t in
      t.old_txns <- old;
      switch_routing t;
      Manager.freeze_tables t.mgr t.src;
      unlatch_sources t;
      (* Force the transactions that were active on the sources to roll
         back; their CLRs keep flowing through the propagator, which
         releases the corresponding transferred locks as it reaches each
         abort record. *)
      List.iter
        (fun txn ->
           Manager.mark_abort_only t.mgr txn;
           match Manager.abort t.mgr txn with
           | Ok () -> t.forced_aborts <- t.forced_aborts + 1
           | Error _ -> ())
        old;
      t.tphase <- Draining;
      true
    end
  | Nonblocking_commit ->
    if not (latch_sources t) then false
    else begin
      t.final_records <- Propagator.run_to_head t.prop;
      Propagator.transfer_current_source_locks t.prop;
      t.old_txns <- active_txns_on_sources t;
      Manager.add_extra_lock_hook t.mgr ~id:t.holder
        (fun ~txn ~table ~key ~mode -> dual_lock_hook t ~txn ~table ~key ~mode);
      t.hook_installed <- true;
      switch_routing t;
      Manager.freeze_tables t.mgr t.src;
      unlatch_sources t;
      t.tphase <- Draining;
      true
    end

let cc_ready t = match t.consistency with None -> true | Some _ -> t.unknown () = 0

let try_sync t =
  if
    t.config.sync_gate ()
    && Analysis.ready t.analysis ~lag:(Propagator.lag t.prop)
  then
    if cc_ready t then begin_sync t
    else begin
      t.tphase <- Checking;
      true
    end
  else false

(* {2 The quantum stepper} *)

let step_quantum t =
  (match t.tphase with
   | Populating ->
     let finished =
       match t.migration with
       | Options.Eager ->
         Population.step t.pop
           ~limit:(paced_batch t.config t.config.scan_batch)
       | Options.Lazy ->
         (* Minimal background sweep: demand migration carries the hot
            set; one cold record per quantum guarantees completion on
            an idle system. *)
         Propagator.sweep t.prop ~limit:1
       | Options.Hybrid { sweep_quantum } ->
         Propagator.sweep t.prop ~limit:(max 1 sweep_quantum)
     in
     if finished then begin
       remove_demand_hook t;
       write_fuzzy_mark t.mgr;
       t.tphase <- Propagating
     end
   | Propagating ->
     let consumed =
       Propagator.step t.prop
         ~limit:(paced_batch t.config t.config.propagate_batch)
     in
     Analysis.observe t.analysis ~lag:(Propagator.lag t.prop) ~consumed;
     if Propagator.lag t.prop = 0 && not t.caught_up_once then begin
       t.caught_up_once <- true;
       t.iterations <- t.iterations + 1;
       Analysis.end_iteration t.analysis
     end;
     if Propagator.lag t.prop > 0 then t.caught_up_once <- false;
     ignore (try_sync t)
   | Checking ->
     (match t.consistency with
      | Some cc -> ignore (Consistency.step cc)
      | None -> ());
     let consumed = Propagator.step t.prop ~limit:t.config.propagate_batch in
     Analysis.observe t.analysis ~lag:(Propagator.lag t.prop) ~consumed;
     if cc_ready t then begin
       t.tphase <- Propagating;
       ignore (try_sync t)
     end
   | Quiescing ->
     ignore (Propagator.step t.prop ~limit:t.config.propagate_batch);
     if active_txns_on_sources t = [] then begin
       t.final_records <- Propagator.run_to_head t.prop;
       switch_routing t;
       finalize t
     end
   | Draining ->
     ignore (Propagator.step t.prop ~limit:t.config.propagate_batch);
     let all_done =
       List.for_all (fun txn -> not (Manager.is_active t.mgr txn)) t.old_txns
     in
     if all_done && Propagator.lag t.prop = 0 then finalize t
   | Done | Failed _ -> ());
  (match t.config.pace with
   | Some g when t.tphase <> Populating ->
     Governor.observe_lag g ~lag:(Propagator.lag t.prop)
   | Some _ | None -> ());
  (* Emit the per-quantum progress point {e before} reconciling spans:
     the work just done belongs to the span that was open while it ran,
     even on the step that closes the phase. *)
  if Obs.Registry.tracing t.obs then begin
    let attrs =
      [ ("job", Json.String t.job_name);
        ("phase", Json.String (phase_str t.tphase));
        ("scanned", Json.Int (Population.scanned t.pop));
        ("produced", Json.Int (Population.produced t.pop));
        ("propagated", Json.Int (Propagator.records_processed t.prop));
        ("position", Json.Int (Lsn.to_int (Propagator.position t.prop)));
        ("lag", Json.Int (Propagator.lag t.prop));
        ("locks_transferred", Json.Int (Propagator.locks_transferred t.prop));
        ("gain",
         Json.Float
           (match t.config.pace with
            | Some g -> Governor.gain g
            | None -> 1.0)) ]
    in
    match t.phase_span with
    | Some (_, span) -> Obs.point t.obs ~in_span:span "transform.quantum" attrs
    | None -> Obs.point t.obs "transform.quantum" attrs
  end;
  sync_spans t;
  Fault.hit "quantum_end";
  match t.tphase with
  | Done -> `Done
  | Failed m -> `Failed m
  | Populating | Propagating | Checking | Quiescing | Draining -> `Running

let step t =
  if Manager.disk_full t.mgr then begin
    (* Degraded: a durable append found no space. Quanta write
       population/propagation records the sink could not make durable,
       so the change pauses rather than grow an unbounded buffered
       suffix. Probing the durability barrier each step makes the pause
       lift on its own once an append succeeds again (the sink clears
       the manager's flag); until then the quantum performs no work. *)
    Log.sync (Manager.log t.mgr);
    if Manager.disk_full t.mgr then `Running else step_quantum t
  end
  else step_quantum t

let run ?(between = fun () -> ()) t =
  let rec go () =
    match step t with
    | `Done -> Ok ()
    | `Failed m -> Error m
    | `Running ->
      between ();
      go ()
  in
  go ()

(* {2 Construction} *)

type resume_info = {
  r_phase : [ `Propagating | `Draining ];
  r_position : Lsn.t;
  r_skip : Manager.txn_id list;
}

let create db ?config ?options ?resume ?job_name ?exec packed =
  (* The funnel for every construction path (builders, resume, bench,
     Db.Schema_change) — validate here and no programmatically-built
     record with a zero batch or sweep quantum can wedge the quantum
     loop. [check] raises a clear [Nbsc_error] on rejection. *)
  (match options with Some o -> ignore (Options.check o) | None -> ());
  let config =
    match (options, config) with
    | Some o, _ -> config_of_options o
    | None, Some c -> c
    | None, None -> default_config
  in
  let config =
    if config.scan_batch < 1 || config.propagate_batch < 1 then
      Nbsc_error.fail
        (Nbsc_error.invalidf
           "config batches must be >= 1 (scan %d, propagate %d)"
           config.scan_batch config.propagate_batch)
    else config
  in
  let migration =
    match options with Some o -> o.Options.strategy | None -> Options.Eager
  in
  let exec =
    match options with
    | Some { Options.exec = Some _ as e; _ } -> e
    | _ -> exec
  in
  let (module T : Transformation.S) = packed in
  let mgr = Db.manager db in
  let prop, tphase, route =
    match resume with
    | None ->
      (Transformation.start_propagator ?exec mgr T.rules, Populating, `Sources)
    | Some r ->
      (* The initial image is already in the targets (restored from the
         snapshot); re-read the retained log suffix from where the
         crashed propagator stood. Loser transactions were rolled back
         by recovery without logging, so their records are skipped. *)
      let prop =
        Propagator.create ~skip:r.r_skip ?exec mgr T.rules ~from:r.r_position
      in
      (match r.r_phase with
       | `Propagating -> (prop, Propagating, `Sources)
       | `Draining ->
         (* Already switched before the crash: the sources are dead
            (frozen, no surviving transactions) and only the log tail
            still needs to reach the targets. *)
         Manager.freeze_tables mgr T.sources;
         (prop, Draining, `Targets))
  in
  let holder = Db.fresh_holder db in
  let obs = Db.obs db in
  let job_name =
    match job_name with
    | Some n -> n
    | None -> T.name ^ "#" ^ string_of_int holder
  in
  let root_span =
    Obs.span_open obs "schema_change"
      ~attrs:
        [ ("job", Json.String job_name);
          ("operator", Json.String T.name);
          ("sources", Json.List (List.map (fun s -> Json.String s) T.sources));
          ("targets", Json.List (List.map (fun s -> Json.String s) T.targets)) ]
  in
  let t =
    { db;
      mgr;
      config;
      tf = packed;
      pop = T.population;
      prop;
      src = T.sources;
      tgt = T.targets;
      lock_map = T.lock_map;
      consistency = T.consistency;
      unknown = T.unknown_flags;
      hooks = T.sync_hooks;
      holder;
      job_name;
      analysis = Analysis.create config.analysis;
      tphase;
      route;
      iterations = 0;
      caught_up_once = false;
      final_records = 0;
      old_txns = [];
      forced_aborts = 0;
      hook_installed = false;
      migration;
      demand_migrations = 0;
      demand_hook = false;
      obs;
      root_span;
      phase_span = None }
  in
  sync_spans t;
  (match t.migration with
   | Options.Eager -> ()
   | Options.Lazy | Options.Hybrid _ ->
     (* The propagator doubles as the cold-record sweeper; the demand
        hook covers the hot set. Only meaningful while populating — a
        resumed Propagating/Draining job has its initial image already. *)
     Propagator.set_sweeper prop (fun ~limit -> Population.step t.pop ~limit);
     if t.tphase = Populating then install_demand_hook t);
  Obs.Registry.probe obs ("transform." ^ t.job_name ^ ".lag") (fun () ->
      float_of_int (Propagator.lag t.prop));
  Obs.Registry.probe obs ("transform." ^ t.job_name ^ ".propagated") (fun () ->
      float_of_int (Propagator.records_processed t.prop));
  Propagator.set_lock_mapper prop (fun ~table ~key ->
      t.lock_map.Transformation.source_to_targets ~table ~key);
  let persist =
    match T.spec_payload with
    | None -> None
    | Some spec_payload ->
      Some
        (fun () ->
           { Db.job_state =
               encode_job_state ~tag:(phase_tag t.tphase)
                 ~position:(Propagator.position t.prop) spec_payload;
             low_water = Propagator.position t.prop })
  in
  Db.register_job db ?persist ~name:t.job_name ~step:(fun () -> step t) ();
  (* Journal the job's existence right away: a crash from here on finds
     a [Job_state] in the WAL and knows a schema change was in flight
     (at worst it restarts population from scratch). *)
  (match persist with
   | Some p ->
     ignore
       (Log.append (Manager.log t.mgr) ~txn:Log_record.system_txn
          ~prev_lsn:Lsn.zero
          (Log_record.Job_state { job = t.job_name; state = (p ()).Db.job_state }))
   | None -> ());
  t

let foj db ?config ?options ?exec spec =
  create db ?config ?options ?exec (Transformation.foj ?options ?exec db spec)

let split db ?config ?options ?exec spec =
  create db ?config ?options ?exec (Transformation.split ?options ?exec db spec)

let hsplit db ?config ?options ?exec spec =
  create db ?config ?options ?exec (Transformation.hsplit ?options ?exec db spec)

let merge db ?config ?options ?exec spec =
  create db ?config ?options ?exec (Transformation.merge ?options ?exec db spec)

(* {2 Crash resume} *)

let targets_of_spec = function
  | Spec.Foj s -> [ s.Spec.t_table ]
  | Spec.Split s -> [ s.Spec.r_table'; s.Spec.s_table' ]
  | Spec.Hsplit s -> [ s.Spec.h_true_table; s.Spec.h_false_table ]
  | Spec.Merge s -> [ s.Spec.m_target ]

let resume_one db ?config ?options ?exec ~losers (name, state) =
  match decode_job_state state with
  | exception Failure m -> Error (Nbsc_error.corrupt m)
  | tag, position, spec_payload ->
    (match Spec.decode spec_payload with
     | exception Failure m -> Error (Nbsc_error.corrupt m)
     | spec ->
       let catalog = Db.catalog db in
       let targets = targets_of_spec spec in
       (match tag with
        | "pop" | "prop" | "drain" -> ()
        | other -> failwith ("Transform.resume: unknown phase " ^ other));
       (* Resumable only if the initial image completed before the
          crash {e and} the durable state can still carry it forward:
          the targets must have been in the snapshot and the retained
          log suffix must reach back to the propagator's position.
          Otherwise restart: drop the half-built targets and run the
          whole transformation again. *)
       let resumable =
         (match tag with "prop" | "drain" -> true | _ -> false)
         && Lsn.(position > Log.base (Db.log db))
         && List.for_all (Catalog.mem catalog) targets
       in
       let resume =
         if not resumable then begin
           List.iter
             (fun tgt -> if Catalog.mem catalog tgt then Catalog.drop catalog tgt)
             targets;
           None
         end
         else
           Some
             { r_phase =
                 (if String.equal tag "drain" then `Draining else `Propagating);
               r_position = position;
               r_skip = losers }
       in
       (match Transformation.of_payload ?options ?exec db spec_payload with
        | Error m -> Error (Nbsc_error.corrupt m)
        | Ok packed ->
          Ok (create db ?config ?options ?resume ~job_name:name ?exec packed)))

let resume ?config ?options ?exec persist =
  let db = Persist.db persist in
  let losers =
    match Persist.last_recovery persist with
    | Some r -> r.Recovery.losers
    | None -> []
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | ((name, _) as job) :: rest ->
      (match resume_one db ?config ?options ?exec ~losers job with
       | Error e -> Error (`Job_failed (name, Nbsc_error.to_string e))
       | exception Failure m -> Error (`Job_failed (name, m))
       | Ok t -> go (t :: acc) rest)
  in
  go [] (Persist.pending_jobs persist)

let abort t =
  match t.tphase with
  | Done -> ()
  | _ ->
    if t.hook_installed then begin
      Manager.remove_extra_lock_hook t.mgr ~id:t.holder;
      t.hook_installed <- false
    end;
    remove_demand_hook t;
    unlatch_sources t;
    Manager.unfreeze_tables t.mgr t.src;
    (* Drop transferred locks on the targets, then the targets. *)
    let locks = Manager.locks t.mgr in
    List.iter
      (fun tgt ->
         List.iter
           (fun (key, owner, _) -> Lock_table.release locks ~owner ~table:tgt ~key)
           (Lock_table.locked_resources locks ~table:tgt);
         if Catalog.mem (Db.catalog t.db) tgt then
           Catalog.drop (Db.catalog t.db) tgt)
      t.tgt;
    write_job_done t;
    Population.close t.pop;
    Propagator.close t.prop;
    Db.unregister_job t.db ~name:t.job_name;
    remove_probes t;
    t.tphase <- Failed "aborted by request";
    sync_spans t

let pp_phase ppf p = Format.pp_print_string ppf (phase_str p)

let pp_progress ppf p =
  Format.fprintf ppf
    "@[phase=%a iter=%d scanned=%d produced=%d applied=%d propagated=%d \
     lag=%d locks=%d final=%d unknown=%d aborts=%d@]"
    pp_phase p.p_phase p.iterations p.scanned p.produced p.applied p.propagated
    p.lag p.locks_transferred p.final_records p.unknown_flags p.forced_aborts
