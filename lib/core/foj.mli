(** FOJ log propagation — the paper's Rules 1–7 (Sec. 4.2).

    One-to-many: the join attribute is unique in S. The rules are
    idempotent and use no state identifiers; convergence rests on
    Theorem 1 (records in the transformed table are always in the same
    or a newer state than the log record being propagated, provided the
    log is applied in sequential order starting from the first record
    of any transaction active at the fuzzy mark).

    Note on Rule 5: the paper's text reads "If t{^y}{_w} is not found in
    Ti, or if w = x, the log record is ignored", which contradicts both
    the sentence that follows ("Assuming that t{^y}{_x} is found …") and
    the rule's justification. We implement the evident intent: ignore
    when w <> x, i.e. when T already reflects a state newer than the
    update being propagated. *)

open Nbsc_value
open Nbsc_wal
open Nbsc_storage

type t

val create : ?mode:Plan.mode -> Catalog.t -> Spec.foj_layout -> t
(** [mode] (default {!Plan.default_mode}) selects the compiled or the
    retained interpreted rule plan — semantics are identical; the
    interpreted plan exists as the differential-test reference. *)

val ctx : t -> Foj_common.ctx

val apply : t -> lsn:Lsn.t -> Log_record.op -> Row.Key.t list
(** Propagate one logged source-table operation into T. Operations on
    unrelated tables are ignored. Returns the T keys the rule touched
    or corresponds to — the lock-transfer set. *)

(** Rule-level counters, for ablation benches. *)
type stats = {
  mutable applied : int;
  mutable ignored : int;   (** ops already reflected (Theorem 1 path) *)
  mutable foreign : int;   (** ops on unrelated tables *)
}

val stats : t -> stats
