open Nbsc_value
open Nbsc_wal
open Nbsc_storage
module LR = Log_record

type stats = {
  mutable applied : int;
  mutable ignored : int;
  mutable foreign : int;
}

type t = {
  layout : Spec.split_layout;
  r_tbl : Table.t;
  s_tbl : Table.t;
  (* The rule plan, compiled once against the layout (see {!Plan}). *)
  route_t_r : Plan.route;  (* t_to_r *)
  route_t_s : Plan.route;  (* t_to_s *)
  p_r_cols : Plan.proj;    (* r_cols_in_t *)
  p_s_cols : Plan.proj;    (* s_cols_in_t *)
  p_s_key : Plan.proj;     (* S's key columns in S coordinates *)
  p_split_in_r : Plan.proj;
  p_split_in_t : Plan.proj;
  p_non_key_s : Plan.proj; (* S's non-key positions *)
  st : stats;
}

let create ?(mode = Plan.default_mode) catalog (layout : Spec.split_layout) =
  let route = Plan.route mode and proj = Plan.proj mode in
  let s_key = Schema.key_positions layout.Spec.s_schema' in
  { layout;
    r_tbl = Catalog.find catalog layout.Spec.sspec.Spec.r_table';
    s_tbl = Catalog.find catalog layout.Spec.sspec.Spec.s_table';
    route_t_r = route layout.Spec.t_to_r;
    route_t_s = route layout.Spec.t_to_s;
    p_r_cols = proj layout.Spec.r_cols_in_t;
    p_s_cols = proj layout.Spec.s_cols_in_t;
    p_s_key = proj s_key;
    p_split_in_r = proj layout.Spec.split_in_r;
    p_split_in_t = proj layout.Spec.split_in_t;
    p_non_key_s =
      proj
        (List.filter
           (fun i -> not (List.mem i s_key))
           (List.init (Schema.arity layout.Spec.s_schema') Fun.id));
    st = { applied = 0; ignored = 0; foreign = 0 } }

let layout t = t.layout
let r_table t = t.r_tbl
let s_table t = t.s_tbl
let stats t = t.st

let consistent_mode t = t.layout.Spec.sspec.Spec.assume_consistent

let r_row_of_t t trow = Plan.project t.p_r_cols trow
let s_row_of_t t trow = Plan.project t.p_s_cols trow

let r_name t = Table.name t.r_tbl
let s_name t = Table.name t.s_tbl

let s_key_of_s_row t srow = Plan.project t.p_s_key srow

let split_of_r_row t rrow = Plan.project t.p_split_in_r rrow

(* Insert or reference an S record.  On an existing record only the
   counter and possibly the LSN move (paper, rule 8); a differing image
   flips the flag to Unknown (Sec. 5.3). *)
let upsert_s t ~lsn srow =
  let sk = s_key_of_s_row t srow in
  (match Table.find t.s_tbl sk with
   | Some record ->
     let flag =
       if consistent_mode t then record.Record.flag
       else if not (Row.equal record.Record.row srow) then Record.Unknown
       else record.Record.flag
     in
     let record' =
       { record with
         Record.counter = record.Record.counter + 1;
         lsn = Lsn.max record.Record.lsn lsn;
         flag }
     in
     (match Table.set_record t.s_tbl ~key:sk record' with
      | Ok () -> ()
      | Error `Not_found -> assert false)
   | None ->
     (match Table.insert t.s_tbl ~lsn ~counter:1 ~flag:Record.Consistent srow
      with
      | Ok () -> ()
      | Error `Duplicate_key -> assert false));
  sk

(* Drop one reference to an S record; remove it at zero (paper, rule 9). *)
let decrement_s t ~lsn sk =
  match Table.find t.s_tbl sk with
  | None -> None  (* tolerated: a torn fuzzy image repaired later *)
  | Some record ->
    if record.Record.counter <= 1 then begin
      match Table.delete t.s_tbl ~lsn sk with
      | Ok _ -> Some sk
      | Error `Not_found -> assert false
    end
    else begin
      let record' =
        { record with
          Record.counter = record.Record.counter - 1;
          lsn = Lsn.max record.Record.lsn lsn }
      in
      (match Table.set_record t.s_tbl ~key:sk record' with
       | Ok () -> ()
       | Error `Not_found -> assert false);
      Some sk
    end

let ingest_initial t (record : Record.t) =
  let trow = record.Record.row in
  let lsn = record.Record.lsn in
  let rrow = r_row_of_t t trow in
  (match Table.insert t.r_tbl ~lsn rrow with
   | Ok () -> ignore (upsert_s t ~lsn (s_row_of_t t trow))
   | Error `Duplicate_key ->
     (* The fuzzy cursor reports each key once; a duplicate here means
        the same population batch was fed twice — ignore. *)
     ())

(* Rule 8: insert t{^y}{_x} into T. *)
let rule_insert t ~lsn trow =
  let rrow = r_row_of_t t trow in
  let y = Table.key_of_row t.r_tbl rrow in
  match Table.find t.r_tbl y with
  | Some _ ->
    t.st.ignored <- t.st.ignored + 1;
    [ (r_name t, y) ]
  | None ->
    t.st.applied <- t.st.applied + 1;
    (match Table.insert t.r_tbl ~lsn rrow with
     | Ok () -> ()
     | Error `Duplicate_key -> assert false);
    let sk = upsert_s t ~lsn (s_row_of_t t trow) in
    [ (r_name t, y); (s_name t, sk) ]

(* Rule 9: delete t{^y} from T. *)
let rule_delete t ~lsn y =
  match Table.find t.r_tbl y with
  | None ->
    t.st.ignored <- t.st.ignored + 1;
    []
  | Some record when Lsn.(record.Record.lsn >= lsn) ->
    t.st.ignored <- t.st.ignored + 1;
    [ (r_name t, y) ]
  | Some record ->
    t.st.applied <- t.st.applied + 1;
    (match Table.delete t.r_tbl ~lsn y with
     | Ok _ -> ()
     | Error `Not_found -> assert false);
    let sk = split_of_r_row t record.Record.row in
    (match decrement_s t ~lsn sk with
     | Some sk -> [ (r_name t, y); (s_name t, sk) ]
     | None -> [ (r_name t, y) ])

(* Rules 10 and 11: update t{^y}. *)
let rule_update t ~lsn y changes =
  match Table.find t.r_tbl y with
  | None ->
    t.st.ignored <- t.st.ignored + 1;
    []
  | Some record when Lsn.(record.Record.lsn >= lsn) ->
    (* The R-side LSN gates the whole propagation: if the operation is
       reflected in R it is also reflected in S (paper, Sec. 5.2). *)
    t.st.ignored <- t.st.ignored + 1;
    [ (r_name t, y) ]
  | Some record ->
    t.st.applied <- t.st.applied + 1;
    let x_old = split_of_r_row t record.Record.row in
    (* Rule 10: update the R part; the LSN moves even when no R column
       changes. *)
    let r_changes = Plan.changes_through t.route_t_r changes in
    (match Table.update t.r_tbl ~lsn ~key:y r_changes with
     | Ok _ -> ()
     | Error `Not_found -> assert false);
    let touched = ref [ (r_name t, y) ] in
    (* Rule 11: update the S part, gated by the S record's own LSN. *)
    let s_changes = Plan.changes_through t.route_t_s changes in
    if s_changes <> [] then begin
      let split_changed = Plan.touches t.p_split_in_t changes in
      match Table.find t.s_tbl x_old with
      | None -> ()  (* torn image: the S side will be rebuilt by CC *)
      | Some srec when split_changed ->
        (* Delete s{^x} followed by insert of s{^z}.  The counter moves
           are gated by the R side alone: rule 10's LSN check already
           guarantees this R row changes groups exactly once, whereas
           the S records' own LSNs may run ahead of the log (the fuzzy
           read stamps them with scan-time states), and skipping the
           counter transfer would break the counter = group-size
           invariant that deletion correctness rests on. *)
        (match decrement_s t ~lsn x_old with
         | Some sk -> touched := (s_name t, sk) :: !touched
         | None -> ());
        let new_srow = Row.update srec.Record.row s_changes in
        let sk' = upsert_s t ~lsn:(Lsn.max srec.Record.lsn lsn) new_srow in
        touched := (s_name t, sk') :: !touched
      | Some srec when Lsn.(srec.Record.lsn >= lsn) -> ()
      | Some srec ->
        begin
          let new_srow = Row.update srec.Record.row s_changes in
          let flag =
            if consistent_mode t then srec.Record.flag
            else if srec.Record.counter > 1 then Record.Unknown
            else begin
              (* Counter 1: an update covering every non-key column
                 makes the record consistent by construction. *)
              let all_non_key_updated = Plan.covered_by t.p_non_key_s s_changes in
              if all_non_key_updated then Record.Consistent
              else srec.Record.flag
            end
          in
          let srec' =
            { srec with Record.row = new_srow; lsn; flag }
          in
          (match Table.set_record t.s_tbl ~key:x_old srec' with
           | Ok () -> ()
           | Error `Not_found -> assert false);
          touched := (s_name t, x_old) :: !touched
        end
    end;
    !touched

let apply t ~lsn (op : LR.op) =
  let source = t.layout.Spec.sspec.Spec.t_table' in
  if not (String.equal (LR.op_table op) source) then begin
    t.st.foreign <- t.st.foreign + 1;
    []
  end
  else
    match op with
    | LR.Insert { row; _ } -> rule_insert t ~lsn row
    | LR.Delete { key; _ } -> rule_delete t ~lsn key
    | LR.Update { key; changes; _ } -> rule_update t ~lsn key changes

let unknown_count t =
  Table.fold t.s_tbl ~init:0 ~f:(fun acc _ record ->
      if record.Record.flag = Record.Unknown then acc + 1 else acc)

let first_unknown t =
  Table.fold t.s_tbl ~init:None ~f:(fun acc key record ->
      match acc with
      | Some _ -> acc
      | None ->
        if record.Record.flag = Record.Unknown then Some (key, record)
        else None)
