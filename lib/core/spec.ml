open Nbsc_value
open Nbsc_storage

type foj = {
  r_table : string;
  s_table : string;
  t_table : string;
  join_r : string list;
  join_s : string list;
  t_join : string list;
  r_carry : string list;
  s_carry : string list;
  many_to_many : bool;
}

let ix_by_r_key = "by_r_key"
let ix_by_s_key = "by_s_key"
let ix_by_join = "by_join"

type foj_layout = {
  spec : foj;
  t_schema : Schema.t;
  r_schema : Schema.t;
  s_schema : Schema.t;
  r_key_in_r : int list;
  s_key_in_s : int list;
  join_in_r : int list;
  join_in_s : int list;
  t_join_pos : int list;
  t_r_carry_pos : int list;
  t_s_carry_pos : int list;
  t_r_key_pos : int list;
  t_s_key_pos : int list;
  r_key_in_tkey : int list;
  s_key_in_tkey : int list;
  r_to_t : (int * int) list;
  s_to_t : (int * int) list;
  r_join_to_t : (int * int) list;
  s_join_to_t : (int * int) list;
}

let fail fmt = Format.kasprintf invalid_arg fmt

let check_distinct what names =
  let sorted = List.sort String.compare names in
  let rec go = function
    | a :: (b :: _ as rest) ->
      if String.equal a b then fail "Spec: duplicate %s %S" what a;
      go rest
    | _ -> ()
  in
  go sorted

let check_subset ~what ~of_ sub super =
  List.iter
    (fun n ->
       if not (List.mem n super) then fail "Spec: %s %S must be in %s" what n of_)
    sub

let column_of schema name =
  let i = Schema.position schema name in
  List.nth (Schema.columns schema) i

let foj_layout catalog spec =
  let r_tbl =
    match Catalog.find_opt catalog spec.r_table with
    | Some t -> t
    | None -> fail "Spec: source table %S not found" spec.r_table
  in
  let s_tbl =
    match Catalog.find_opt catalog spec.s_table with
    | Some t -> t
    | None -> fail "Spec: source table %S not found" spec.s_table
  in
  let r_schema = Table.schema r_tbl and s_schema = Table.schema s_tbl in
  if List.length spec.join_r <> List.length spec.join_s then
    fail "Spec: join column lists differ in length";
  if List.length spec.t_join <> List.length spec.join_r then
    fail "Spec: t_join must name each join column once";
  List.iter2
    (fun rn sn ->
       let rc = column_of r_schema rn and sc = column_of s_schema sn in
       if rc.Schema.col_ty <> sc.Schema.col_ty then
         fail "Spec: join columns %S and %S have different types" rn sn)
    spec.join_r spec.join_s;
  (* Preparation-step requirement (paper 3.1): T must include a
     candidate key of each source.  Key columns may be carried outright
     or be join columns (then they live in T under the t_join name). *)
  let r_key_names = Schema.key_names r_schema in
  let r_key_carried n = List.mem n spec.r_carry
  and r_key_joined n =
    List.exists2 (fun rj _ -> String.equal rj n) spec.join_r spec.t_join
  in
  List.iter
    (fun n ->
       if not (r_key_carried n || r_key_joined n) then
         fail "Spec: R key column %S must be carried or joined on" n)
    r_key_names;
  let s_key_names = Schema.key_names s_schema in
  let s_key_carried n = List.mem n spec.s_carry
  and s_key_joined n =
    List.exists2 (fun sj _ -> String.equal sj n) spec.join_s spec.t_join
  in
  List.iter
    (fun n ->
       if not (s_key_carried n || s_key_joined n) then
         fail "Spec: S key column %S must be carried or joined on" n)
    s_key_names;
  List.iter
    (fun n ->
       if List.mem n spec.r_carry then
         fail "Spec: join column %S must not also be in r_carry" n)
    spec.join_r;
  List.iter
    (fun n ->
       if List.mem n spec.s_carry then
         fail "Spec: join column %S must not also be in s_carry" n)
    spec.join_s;
  let t_names = spec.t_join @ spec.r_carry @ spec.s_carry in
  check_distinct "T column" t_names;
  (* Build T's schema: join columns first (typed from R), then carried
     columns.  Everything nullable: FOJ pads with NULLs. *)
  let t_columns =
    List.map2
      (fun tn rn ->
         let c = column_of r_schema rn in
         Schema.column tn c.Schema.col_ty)
      spec.t_join spec.join_r
    @ List.map
        (fun rn ->
           let c = column_of r_schema rn in
           Schema.column rn c.Schema.col_ty)
        spec.r_carry
    @ List.map
        (fun sn ->
           let c = column_of s_schema sn in
           Schema.column sn c.Schema.col_ty)
        spec.s_carry
  in
  (* Key columns as named in T: carried ones keep their name; joined
     ones are renamed to the matching t_join name.  The composite T key
     deduplicates shared columns (a column joined on from both sides
     appears once). *)
  let in_t_name joins carried n =
    if carried n then n
    else
      let rec find js ts =
        match js, ts with
        | j :: _, t :: _ when String.equal j n -> t
        | _ :: js, _ :: ts -> find js ts
        | _ -> assert false
      in
      find joins spec.t_join
  in
  let r_key_in_t_names =
    List.map (in_t_name spec.join_r r_key_carried) r_key_names
  in
  let s_key_in_t_names =
    List.map (in_t_name spec.join_s s_key_carried) s_key_names
  in
  let t_key =
    List.fold_left
      (fun acc n -> if List.mem n acc then acc else acc @ [ n ])
      [] (r_key_in_t_names @ s_key_in_t_names)
  in
  let t_schema = Schema.make ~key:t_key t_columns in
  let pos_t = Schema.positions t_schema in
  let t_join_pos = pos_t spec.t_join in
  let t_r_carry_pos = pos_t spec.r_carry in
  let t_s_carry_pos = pos_t spec.s_carry in
  { spec;
    t_schema;
    r_schema;
    s_schema;
    r_key_in_r = Schema.key_positions r_schema;
    s_key_in_s = Schema.key_positions s_schema;
    join_in_r = Schema.positions r_schema spec.join_r;
    join_in_s = Schema.positions s_schema spec.join_s;
    t_join_pos;
    t_r_carry_pos;
    t_s_carry_pos;
    t_r_key_pos = pos_t r_key_in_t_names;
    t_s_key_pos = pos_t s_key_in_t_names;
    r_key_in_tkey =
      List.map
        (fun n ->
           let rec idx i = function
             | [] -> assert false
             | x :: rest -> if String.equal x n then i else idx (i + 1) rest
           in
           idx 0 t_key)
        r_key_in_t_names;
    s_key_in_tkey =
      List.map
        (fun n ->
           let rec idx i = function
             | [] -> assert false
             | x :: rest -> if String.equal x n then i else idx (i + 1) rest
           in
           idx 0 t_key)
        s_key_in_t_names;
    r_to_t =
      List.combine (Schema.positions r_schema spec.r_carry) t_r_carry_pos;
    s_to_t =
      List.combine (Schema.positions s_schema spec.s_carry) t_s_carry_pos;
    r_join_to_t =
      List.combine (Schema.positions r_schema spec.join_r) t_join_pos;
    s_join_to_t =
      List.combine (Schema.positions s_schema spec.join_s) t_join_pos }

let foj_t_schema l = l.t_schema

let foj_t_indexes l =
  let names positions =
    List.map (fun i -> Schema.name_at l.t_schema i) positions
  in
  [ (ix_by_r_key, names l.t_r_key_pos);
    (ix_by_s_key, names l.t_s_key_pos);
    (ix_by_join, names l.t_join_pos) ]

type split = {
  t_table' : string;
  r_table' : string;
  s_table' : string;
  r_cols : string list;
  s_cols : string list;
  split_key : string list;
  assume_consistent : bool;
}

let ix_t_split = "by_split"

type split_layout = {
  sspec : split;
  t_schema' : Schema.t;
  r_schema' : Schema.t;
  s_schema' : Schema.t;
  t_key_in_t : int list;
  split_in_t : int list;
  r_cols_in_t : int list;
  s_cols_in_t : int list;
  split_in_r : int list;
  split_in_s : int list;
  t_to_r : (int * int) list;
  t_to_s : (int * int) list;
}

let split_layout catalog sspec =
  let t_tbl =
    match Catalog.find_opt catalog sspec.t_table' with
    | Some t -> t
    | None -> fail "Spec: source table %S not found" sspec.t_table'
  in
  let t_schema' = Table.schema t_tbl in
  check_distinct "R column" sspec.r_cols;
  check_distinct "S column" sspec.s_cols;
  List.iter
    (fun n ->
       if not (Schema.mem t_schema' n) then
         fail "Spec: column %S not in table %S" n sspec.t_table')
    (sspec.r_cols @ sspec.s_cols);
  check_subset ~what:"T key column" ~of_:"r_cols" (Schema.key_names t_schema')
    sspec.r_cols;
  check_subset ~what:"split column" ~of_:"r_cols" sspec.split_key sspec.r_cols;
  check_subset ~what:"split column" ~of_:"s_cols" sspec.split_key sspec.s_cols;
  let sub cols ~key =
    Schema.make ~key
      (List.map (fun n -> column_of t_schema' n) cols)
  in
  let r_schema' = sub sspec.r_cols ~key:(Schema.key_names t_schema') in
  let s_schema' = sub sspec.s_cols ~key:sspec.split_key in
  let pos_t = Schema.positions t_schema' in
  let r_cols_in_t = pos_t sspec.r_cols and s_cols_in_t = pos_t sspec.s_cols in
  { sspec;
    t_schema';
    r_schema';
    s_schema';
    t_key_in_t = Schema.key_positions t_schema';
    split_in_t = pos_t sspec.split_key;
    r_cols_in_t;
    s_cols_in_t;
    split_in_r = Schema.positions r_schema' sspec.split_key;
    split_in_s = Schema.positions s_schema' sspec.split_key;
    t_to_r = List.combine r_cols_in_t (List.init (List.length sspec.r_cols) Fun.id);
    t_to_s = List.combine s_cols_in_t (List.init (List.length sspec.s_cols) Fun.id) }

let split_r_schema l = l.r_schema'
let split_s_schema l = l.s_schema'

type hsplit = {
  h_source : string;
  h_true_table : string;
  h_false_table : string;
  h_pred : Pred.t;
}

type hsplit_layout = {
  hspec : hsplit;
  h_schema : Schema.t;
  h_route : Row.t -> bool;
}

let hsplit_layout catalog hspec =
  let src =
    match Catalog.find_opt catalog hspec.h_source with
    | Some t -> t
    | None -> fail "Spec: source table %S not found" hspec.h_source
  in
  let h_schema = Table.schema src in
  List.iter
    (fun c ->
       if not (Schema.mem h_schema c) then
         fail "Spec: predicate column %S not in %S" c hspec.h_source)
    (Pred.columns hspec.h_pred);
  if String.equal hspec.h_true_table hspec.h_false_table then
    fail "Spec: horizontal split targets must differ";
  { hspec; h_schema; h_route = Pred.compile h_schema hspec.h_pred }

type merge = {
  m_sources : string list;
  m_target : string;
}

type merge_layout = {
  mspec : merge;
  m_schema : Schema.t;
}

type any =
  | Foj of foj
  | Split of split
  | Hsplit of hsplit
  | Merge of merge

let enc = Codec.encode_string_list
let dec = Codec.decode_string_list
let enc_bool b = if b then "1" else "0"

let dec_bool = function
  | "1" -> true
  | "0" -> false
  | s -> failwith ("Spec.decode: bad boolean " ^ s)

let encode = function
  | Foj f ->
    enc
      [ "foj"; f.r_table; f.s_table; f.t_table; enc f.join_r; enc f.join_s;
        enc f.t_join; enc f.r_carry; enc f.s_carry; enc_bool f.many_to_many ]
  | Split s ->
    enc
      [ "split"; s.t_table'; s.r_table'; s.s_table'; enc s.r_cols;
        enc s.s_cols; enc s.split_key; enc_bool s.assume_consistent ]
  | Hsplit h ->
    enc
      [ "hsplit"; h.h_source; h.h_true_table; h.h_false_table;
        Pred.encode h.h_pred ]
  | Merge m -> enc [ "merge"; enc m.m_sources; m.m_target ]

let decode s =
  match dec s with
  | [ "foj"; r_table; s_table; t_table; join_r; join_s; t_join; r_carry;
      s_carry; many_to_many ] ->
    Foj
      { r_table; s_table; t_table; join_r = dec join_r; join_s = dec join_s;
        t_join = dec t_join; r_carry = dec r_carry; s_carry = dec s_carry;
        many_to_many = dec_bool many_to_many }
  | [ "split"; t_table'; r_table'; s_table'; r_cols; s_cols; split_key;
      assume_consistent ] ->
    Split
      { t_table'; r_table'; s_table'; r_cols = dec r_cols;
        s_cols = dec s_cols; split_key = dec split_key;
        assume_consistent = dec_bool assume_consistent }
  | [ "hsplit"; h_source; h_true_table; h_false_table; pred ] ->
    Hsplit { h_source; h_true_table; h_false_table; h_pred = Pred.decode pred }
  | [ "merge"; m_sources; m_target ] ->
    Merge { m_sources = dec m_sources; m_target }
  | _ -> failwith "Spec.decode: malformed specification"

let merge_layout catalog mspec =
  (match mspec.m_sources with
   | [] | [ _ ] -> fail "Spec: merge needs at least two sources"
   | _ -> ());
  check_distinct "merge source" mspec.m_sources;
  let schemas =
    List.map
      (fun name ->
         match Catalog.find_opt catalog name with
         | Some t -> Table.schema t
         | None -> fail "Spec: source table %S not found" name)
      mspec.m_sources
  in
  match schemas with
  | [] -> assert false
  | first :: rest ->
    List.iteri
      (fun i s ->
         if not (Schema.equal first s) then
           fail "Spec: merge source %S has a different schema"
             (List.nth mspec.m_sources (i + 1)))
      rest;
    { mspec; m_schema = first }
