(** Schema-change options — the one knob record.

    Earlier revisions spread configuration over [Transform.config],
    [?plan_mode], [?exec] and per-builder optional arguments; this
    record collapses all of it into a single value threaded through
    {!Transformation} builders, {!Transform.create}/[resume] and
    [Db.Schema_change.start]. Two orthogonal strategy axes:

    - {!sync} — how the final switch-over synchronizes with in-flight
      transactions (the paper's three strategies, Sec. 3.4);
    - {!migration} — how the initial image reaches the target tables:
      - [Eager]: the classical fuzzy-scan population (paper, Sec. 3.2);
        records are copied up front, at [scan_batch] records per
        quantum.
      - [Lazy]: records migrate on first access under the new schema
        (SLSM-style); the background sweep visits cold records at the
        minimum rate of one per quantum so the change still completes
        on an idle system.
      - [Hybrid { sweep_quantum }]: lazy demand migration plus a
        background sweep of [sweep_quantum] cold records per quantum —
        the dial between "all cost up front" and "all cost on access".

    Migration strategy choice never changes the final relational
    contents — only {e when} each record pays its transformation cost.
    Under [Lazy]/[Hybrid] the executor registers an access hook with
    the transaction manager; a record touched by any transaction while
    the change is populating is transformed immediately (idempotently —
    the log propagation re-applies at the same LSN and is ignored). *)

type sync = Blocking_commit | Nonblocking_abort | Nonblocking_commit
(** Constructors re-exported by {!Transform.strategy} — existing code
    referring to [Transform.Nonblocking_abort] keeps compiling. *)

type migration = Eager | Lazy | Hybrid of { sweep_quantum : int }

(** How the eager population scan handles writes concurrent with a
    chunk in flight:

    - [Fuzzy]: the paper's fuzzy scan (Sec. 3.2) — scanned images may
      be stale; log propagation re-applies every concurrent write and
      the LSN gates sort it out.
    - [Virtual_cut]: DBLog-style watermark chunks — each chunk scan is
      bracketed by low/high {!Nbsc_wal.Log_record.Watermark} records;
      chunk rows superseded by log records between the watermarks are
      discarded and re-read at their current state, so the populated
      image is consistent per chunk without ever locking the scan.

    Only meaningful under [strategy = Eager]; the lazy strategies
    migrate on demand and have no bulk scan to bracket. *)
type population = Fuzzy | Virtual_cut

type t = {
  scan_batch : int;       (** source records per eager population quantum *)
  propagate_batch : int;  (** log records per propagation quantum *)
  analysis : Analysis.policy;
      (** when to attempt synchronization (paper, Sec. 3.3) *)
  sync : sync;            (** switch-over synchronization strategy *)
  strategy : migration;   (** initial-image migration strategy *)
  population : population;
      (** eager population scan discipline (fuzzy vs virtual cut) *)
  drop_sources : bool;    (** drop source tables when done *)
  sync_gate : unit -> bool;
      (** consulted before entering synchronization; return [false] to
          keep propagating *)
  pace : Governor.t option;
      (** anti-starvation governor; one per transformation run *)
  plan_mode : Plan.mode option;
      (** force compiled/interpreted rule plans ([None] = operator
          default) *)
  exec : Domain_pool.exec option;
      (** sharded execution for population and propagation ([None] =
          serial) *)
}

val default : t
(** [{ scan_batch = 256; propagate_batch = 256;
      analysis = Analysis.default; sync = Nonblocking_abort;
      strategy = Eager; population = Fuzzy; drop_sources = true;
      sync_gate = (fun () -> true); pace = None; plan_mode = None;
      exec = None }] — byte-identical behaviour to the legacy
    [Transform.default_config]. *)

val validate : t -> (t, Nbsc_error.t) result
(** Reject records whose numeric knobs cannot drive the quantum loop:
    [scan_batch] and [propagate_batch] must be at least 1, and a
    [Hybrid] sweep quantum must be at least 1. String parsers catch
    these at the parse boundary, but options records built with record
    update syntax bypass the parsers, so {!Transform.create} calls
    this on every construction path. *)

val check : t -> t
(** [validate], raising {!Nbsc_error.Error} on rejection. *)

val migration_of_string : string -> migration option
(** ["eager"], ["lazy"], ["hybrid"] (sweep quantum 32) or ["hybrid:N"]. *)

val migration_to_string : migration -> string
val pp_migration : Format.formatter -> migration -> unit

val sync_of_string : string -> sync option
val sync_to_string : sync -> string
val pp_sync : Format.formatter -> sync -> unit

val population_of_string : string -> population option
(** ["fuzzy"], ["virtual-cut"] (also ["virtual_cut"], ["vc"]). *)

val population_to_string : population -> string
val pp_population : Format.formatter -> population -> unit
