(** Transformation specifications and their derived layouts.

    A specification names the source table(s), the new table(s), and
    how columns map between them. Validation enforces the paper's
    preparation-step requirements (Sec. 3.1): the transformed tables
    must carry at least one candidate key of every source table, and
    key columns must exist with matching types.

    The derived {e layout} precomputes every column-position mapping the
    propagation rules need, so rule application is array indexing, not
    name lookup. *)

open Nbsc_value
open Nbsc_storage

(** {1 Full outer join} *)

(** Join R and S into T on [join_r] = [join_s]. T's columns are the
    join attributes (named [t_join]) followed by [r_carry] (non-join R
    columns, including R's primary key) and [s_carry] (non-join S
    columns, including S's primary key). T's primary key is R's key
    columns plus S's key columns — composite so that the R-null and
    S-null padded records of a full outer join are uniquely addressable
    (and so that many-to-many results are too). *)
type foj = {
  r_table : string;
  s_table : string;
  t_table : string;
  join_r : string list;
  join_s : string list;
  t_join : string list;  (** the join attributes' names in T *)
  r_carry : string list;
  s_carry : string list;
  many_to_many : bool;
      (** false: the paper's Rules 1–7, requiring [join_s] unique in S
          (one-to-many); true: the Sec. 4.2 generalization. *)
}

(** Index names the framework creates on T (paper, Sec. 4.1). *)
val ix_by_r_key : string
val ix_by_s_key : string
val ix_by_join : string

(** Precomputed positions. "In T" positions index T's schema; "in R/S"
    positions index the source schemas. *)
type foj_layout = {
  spec : foj;
  t_schema : Schema.t;
  (* source-side *)
  r_schema : Schema.t;
  s_schema : Schema.t;
  r_key_in_r : int list;
  s_key_in_s : int list;
  join_in_r : int list;
  join_in_s : int list;
  (* T-side *)
  t_join_pos : int list;
  t_r_carry_pos : int list;   (** r_carry columns, in spec order *)
  t_s_carry_pos : int list;
  t_r_key_pos : int list;     (** R's key columns as they sit in T *)
  t_s_key_pos : int list;
  r_key_in_tkey : int list;
      (** index of each R key column within T's composite key tuple *)
  s_key_in_tkey : int list;
  (* source column -> T column for carried (non-join) columns *)
  r_to_t : (int * int) list;  (** (position in R, position in T) *)
  s_to_t : (int * int) list;
  r_join_to_t : (int * int) list;  (** join columns: R position -> T *)
  s_join_to_t : (int * int) list;
}

val foj_layout : Catalog.t -> foj -> foj_layout
(** Validates the spec against the catalog.
    @raise Invalid_argument with a descriptive message if the spec
    violates a preparation-step requirement. *)

val foj_t_schema : foj_layout -> Schema.t
val foj_t_indexes : foj_layout -> (string * string list) list

(** {1 Vertical split} *)

(** Split T into R (one row per T row, keyed like T) and S (one row per
    distinct split-key value). [split_key] is the shared candidate key:
    it must be listed in both [r_cols] and [s_cols] (paper, Sec. 5 —
    e.g. postal code lives in both customer and place tables). *)
type split = {
  t_table' : string;
  r_table' : string;
  s_table' : string;
  r_cols : string list;   (** T columns going to R; must include T's key *)
  s_cols : string list;   (** T columns going to S *)
  split_key : string list;
  assume_consistent : bool;
      (** true: Sec. 5.2 (DBMS guarantees the FD); false: Sec. 5.3 with
          C/U flags and the consistency checker. *)
}

val ix_t_split : string
(** Index created on the source T over the split columns, used by the
    consistency checker to read all T records contributing to an
    S-record without scanning. *)

type split_layout = {
  sspec : split;
  t_schema' : Schema.t;
  r_schema' : Schema.t;
  s_schema' : Schema.t;
  t_key_in_t : int list;
  split_in_t : int list;       (** split columns in T *)
  r_cols_in_t : int list;      (** R's columns as they sit in T *)
  s_cols_in_t : int list;
  split_in_r : int list;       (** split columns in R *)
  split_in_s : int list;
  t_to_r : (int * int) list;   (** (position in T, position in R) *)
  t_to_s : (int * int) list;
}

val split_layout : Catalog.t -> split -> split_layout
(** @raise Invalid_argument on spec violations. *)

val split_r_schema : split_layout -> Schema.t
val split_s_schema : split_layout -> Schema.t

(** {1 Horizontal (selection) split}

    The paper's conclusion calls for transformation methods for other
    relational operators; selection is the natural next one: split T
    horizontally into the rows satisfying a predicate and the rest
    (e.g. moving closed orders to an archive table). Both targets keep
    T's schema and key; rows migrate between them when an update flips
    the predicate. *)

type hsplit = {
  h_source : string;
  h_true_table : string;   (** rows satisfying the predicate *)
  h_false_table : string;  (** the complement *)
  h_pred : Pred.t;
}

type hsplit_layout = {
  hspec : hsplit;
  h_schema : Schema.t;
  h_route : Row.t -> bool;  (** compiled predicate *)
}

val hsplit_layout : Catalog.t -> hsplit -> hsplit_layout
(** @raise Invalid_argument on unknown source or predicate columns. *)

(** {1 Merge (union)}

    The reverse of the horizontal split: several same-schema tables
    merged into one. Sources should have disjoint keys; on a collision
    the record with the highest LSN wins (last-writer-wins), which is
    the only convergent choice available from the log alone. *)

type merge = {
  m_sources : string list;  (** at least two *)
  m_target : string;
}

type merge_layout = {
  mspec : merge;
  m_schema : Schema.t;
}

val merge_layout : Catalog.t -> merge -> merge_layout
(** @raise Invalid_argument unless all sources exist and share one
    schema. *)

(** {1 Wire codec}

    A specification is pure data, so it can ride inside a durable
    resume payload: a crashed schema change is rebuilt from its encoded
    spec plus a log position (see [Transform.resume]). *)

type any =
  | Foj of foj
  | Split of split
  | Hsplit of hsplit
  | Merge of merge

val encode : any -> string
(** Exact inverse of {!decode}. *)

val decode : string -> any
(** @raise Failure on malformed input. *)
