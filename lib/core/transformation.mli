(** The pluggable transformation interface.

    The paper's framework is generic: full outer join, vertical split,
    horizontal split and merge all follow the same
    fuzzy-scan -> log-redo -> synchronize lifecycle and differ only in

    + how the initial image is populated ({!S.population}),
    + which redo rules propagate logged operations ({!S.rules}),
    + how a lock on a source record projects onto the transformed
      tables and back ({!S.lock_map} — the two-schema locking of the
      non-blocking commit strategy, Fig. 2),
    + whether a consistency checker must clear every record before
      synchronization ({!S.consistency}, split of possibly-inconsistent
      data, Sec. 5.3).

    This module captures exactly that contract as a first-class module
    interface. Each operator implements {!S}; the generic executor in
    {!Transform} owns the lifecycle state machine and never looks
    inside. Adding a new schema-change operator therefore means
    implementing [S] — the executor, the simulator, the SQL front end
    and the CLI pick it up unchanged. *)

open Nbsc_value
open Nbsc_txn

(** How locks project across the schema change (paper, Sec. 4.3): a
    lock on a source record implicates target records (lock transfer,
    two-schema locking) and a lock on a target record implicates source
    records (the other direction of the Fig. 2 matrix). *)
type lock_map = {
  source_to_targets :
    table:string -> key:Row.Key.t -> (string * Row.Key.t) list;
  target_to_sources :
    table:string -> key:Row.Key.t -> (string * Row.Key.t) list;
}

(** Callbacks the executor fires at the synchronization transitions, in
    whichever of the three strategies is running. All of the paper's
    operators are pure table rewrites and use {!no_hooks}; an operator
    that maintains auxiliary state (external indexes, caches) hooks in
    here. *)
type sync_hooks = {
  before_switch : unit -> unit;
      (** under the latch, immediately before routing flips *)
  after_switch : unit -> unit;
      (** routing now points at the targets; draining may continue *)
  on_done : unit -> unit;
      (** the transformation completed (after source tables dropped) *)
}

val no_hooks : sync_hooks

(** The contract a schema-change operator implements. *)
module type S = sig
  val name : string
  (** Short operator name, e.g. ["foj"] — used for job registry ids and
      progress displays. *)

  val sources : string list
  (** Tables being transformed away, in provenance order (index [i]
      maps to [Compat.Source i]). *)

  val targets : string list
  (** Tables being produced. Created by the builder (the paper's
      preparation step) before the module is handed to the executor. *)

  val spec_payload : string option
  (** The operator's specification, encoded ({!Spec.encode}) so the
      executor can journal it and {!of_payload} can rebuild the
      operator after a crash. [None] marks a custom operator that
      cannot be rebuilt from data — its jobs restart from scratch
      rather than resume. *)

  val population : Population.t
  (** The bounded fuzzy-scan stepper for the initial image. *)

  val rules : Propagator.rules
  (** The redo rules the log propagator applies. *)

  val lock_map : lock_map

  val consistency : Consistency.t option
  (** The background checker, when the operator needs one before it may
      synchronize. *)

  val unknown_flags : unit -> int
  (** Records the checker has not yet confirmed; must reach 0 before
      synchronization when [consistency] is [Some _]. *)

  val counters : unit -> (string * int) list
  (** Labelled operator counters ("applied", "ignored", "foreign", plus
      operator-specific ones like "migrations" or "collisions") — the
      uniform replacement for reaching into operator internals. *)

  val sync_hooks : sync_hooks
end

type packed = (module S)

val start_propagator :
  ?exec:Domain_pool.exec -> Manager.t -> Propagator.rules -> Propagator.t
(** Write a fuzzy mark and open a log cursor at the first record of any
    transaction active at the mark (paper, Sec. 3.2) — the shared
    preparation tail of every transformation and of materialized-view
    maintenance. [?exec] shards the propagator's cursors
    ({!Propagator.create}). *)

val counter : packed -> string -> int
(** [counter p name] reads one labelled counter, 0 when absent. *)

(** {2 The paper's operators}

    Each builder performs the preparation step (validate the spec,
    create target tables and indexes) and packs the operator's [S]
    implementation. [transfer_locks] is true for schema changes and
    false for materialized views (the view never takes over from its
    sources).

    [options] is the one-record configuration ({!Options.t}): its
    [plan_mode]/[exec] fields supersede the same-named deprecated
    optional arguments when set, and [strategy = Lazy | Hybrid _]
    replaces the operator's eager population with the uniform demand
    scan — each source record's current state replayed through the
    propagation rules (LSN-gated, so double migration is a no-op). *)

val foj :
  ?transfer_locks:bool ->
  ?plan_mode:Plan.mode ->
  ?options:Options.t ->
  ?exec:Domain_pool.exec ->
  Nbsc_engine.Db.t ->
  Spec.foj ->
  packed

val split :
  ?plan_mode:Plan.mode -> ?options:Options.t -> ?exec:Domain_pool.exec ->
  Nbsc_engine.Db.t -> Spec.split -> packed

val hsplit :
  ?options:Options.t -> ?exec:Domain_pool.exec -> Nbsc_engine.Db.t ->
  Spec.hsplit -> packed

val merge :
  ?options:Options.t -> ?exec:Domain_pool.exec -> Nbsc_engine.Db.t ->
  Spec.merge -> packed

val of_payload :
  ?options:Options.t -> ?exec:Domain_pool.exec -> Nbsc_engine.Db.t -> string ->
  (packed, string) result
(** Rebuild an operator from an encoded specification ({!S.spec_payload})
    — the crash-resume path. Unlike first-time preparation, the target
    tables may already exist (restored from the snapshot); they are
    reused when their schemas match and rejected otherwise. *)
