(** Shared machinery for the FOJ propagation rules.

    T rows are assembled from an R part, an S part, and the shared join
    attributes. A record that lacks one side stores NULLs in that
    side's carried columns — the paper's r-null / s-null records — and
    remembers which sides are real in the record's [aux] presence
    bitmap (bit 0: has an R part, bit 1: has an S part).

    All helpers work through a {!ctx}: the layout's positional mappings
    and projections compiled once (see {!Plan}) at operator
    construction, so the per-record rules do no name lookup and rebuild
    no lists. *)

open Nbsc_value
open Nbsc_wal
open Nbsc_storage

val r_bit : int
val s_bit : int

(** The compiled rule plan plus T-table handle. [layout] and [t_tbl]
    stay exposed: the lock maps and population scans reach through
    them. *)
type ctx = {
  layout : Spec.foj_layout;
  t_tbl : Table.t;
  mode : Plan.mode;
  route_r : Plan.route;
  route_s : Plan.route;
  route_r_join : Plan.route;
  p_r_carry : Plan.proj;
  p_s_carry : Plan.proj;
  p_s_carry_key : Plan.proj;
  p_t_r_key : Plan.proj;
  p_t_s_key : Plan.proj;
  p_t_join : Plan.proj;
  p_t_key : Plan.proj;
  p_r_key_in_r : Plan.proj;
  p_join_in_r : Plan.proj;
  p_s_key_in_s : Plan.proj;
  p_join_in_s : Plan.proj;
  t_arity : int;
}

val make_ctx : ?mode:Plan.mode -> Catalog.t -> Spec.foj_layout -> ctx
val mode : ctx -> Plan.mode

val presence : ctx -> Record.t -> int
(** The record's presence bitmap; if [aux] is unset (a row inserted
    natively, not by the framework), derived from NULL-ness of the key
    columns. *)

val has_r : ctx -> Record.t -> bool
val has_s : ctx -> Record.t -> bool

val t_row_of_sources : ctx -> r:Row.t option -> s:Row.t option -> Row.t * int
(** Build a T row (and its presence) from source rows. Join columns
    come from whichever side is present (they agree when both are). *)

val strip_r : ctx -> Row.t -> Row.t
(** NULL out the R-carried columns (join columns keep the S side's
    value, which is equal). *)

val strip_s : ctx -> Row.t -> Row.t

val graft_r : ctx -> r:Row.t -> onto:Row.t -> Row.t
(** Copy an R source row's carried and join values onto a T row. *)

val graft_s : ctx -> s:Row.t -> onto:Row.t -> Row.t

val graft_s_from_t : ctx -> src:Row.t -> onto:Row.t -> Row.t
(** Copy the S part (carried columns) of T row [src] onto [onto]
    (used when a new R record joins an S part already present in T). *)

val graft_s_with_key : ctx -> src:Row.t -> onto:Row.t -> Row.t
(** {!graft_s_from_t} that also refreshes the S-key columns sitting in
    T — the many-to-many fill path. *)

val r_changes_to_t : ctx -> (int * Value.t) list -> (int * Value.t) list
(** Re-express positional changes on R in T coordinates (carried and
    join columns only; changes to columns not in T vanish). *)

val s_changes_to_t : ctx -> (int * Value.t) list -> (int * Value.t) list

val drop_t_key_changes : ctx -> (int * Value.t) list -> (int * Value.t) list
(** Drop changes landing on T's own key columns (rule 7's no-op join
    rewrites). *)

val r_join_dst : ctx -> int -> int option
(** Where an R join column lands in T, if it is a join column. *)

val r_join_changed : ctx -> (int * Value.t) list -> bool
(** Whether an R-side update touches a join column (rule 5 vs 7). *)

val s_join_changed : ctx -> (int * Value.t) list -> bool

(** {1 Key projections} *)

val r_key_of_r_row : ctx -> Row.t -> Row.Key.t
val join_of_r_row : ctx -> Row.t -> Row.Key.t
val s_key_of_s_row : ctx -> Row.t -> Row.Key.t
val join_of_s_row : ctx -> Row.t -> Row.Key.t
val t_key : ctx -> Row.t -> Row.Key.t
val r_key_of_t_row : ctx -> Row.t -> Row.Key.t
val s_key_of_t_row : ctx -> Row.t -> Row.Key.t
val join_of_t_row : ctx -> Row.t -> Row.Key.t

(** {1 T-table access}

    All mutators run at a given LSN and return the T keys they touched
    (the lock-transfer set for the synchronization strategies). *)

val by_r_key : ctx -> Row.Key.t -> (Row.Key.t * Record.t) list
val by_s_key : ctx -> Row.Key.t -> (Row.Key.t * Record.t) list
val by_join : ctx -> Row.Key.t -> (Row.Key.t * Record.t) list

val put : ctx -> lsn:Lsn.t -> presence:int -> Row.t -> Row.Key.t
(** Insert; raises on duplicate key (rule bugs must not pass silently). *)

val drop : ctx -> lsn:Lsn.t -> Row.Key.t -> Row.Key.t

val rekey : ctx -> lsn:Lsn.t -> old_key:Row.Key.t -> presence:int -> Row.t ->
  Row.Key.t list
(** Replace a record wholesale (delete + insert — T's heap key may
    change when a side is filled in or stripped). Returns both keys. *)
