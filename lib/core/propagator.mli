(** The log propagator (paper, Sec. 3.3).

    Reads the log forward from the first record that might not be
    reflected in the initial image (the oldest record of any
    transaction active at the first fuzzy mark) and applies each
    operation through the transformation's rules. Along the way it

    - {e transfers locks}: every target record a rule touches is locked
      on behalf of the source transaction with [Source] provenance, and
      those locks are released when the transaction's commit / abort
      record is reached (paper, Sec. 3.3 and 4.3) — exactly the
      machinery the non-blocking synchronization strategies rely on;
    - drives the {e consistency checker} callbacks when it encounters
      CC-begin / CC-ok records (split of inconsistent data, Sec. 5.3);
    - exposes its {e lag} (remaining log records), the quantity the
      iteration analysis uses to decide when to synchronize. *)

open Nbsc_value
open Nbsc_wal
open Nbsc_txn

(** How the propagator talks to a concrete transformation. *)
type rules = {
  sources : string list;
      (** source tables, in provenance order (index i -> [Source i]) *)
  targets : string list;
  apply : lsn:Lsn.t -> Log_record.op -> (string * Row.Key.t) list;
      (** apply one operation; returns touched (target table, key) *)
  cc : Consistency.t option;
  cc_s_table : string option;
      (** the split S table, whose touches invalidate pending checks *)
  transfer_locks : bool;
      (** schema transformations transfer source-transaction locks to
          the targets (paper, Sec. 3.3); materialized-view maintenance
          does not — the view never takes over from its sources *)
}

val rules :
  ?cc:Consistency.t -> ?cc_s_table:string -> ?transfer_locks:bool ->
  sources:string list -> targets:string list ->
  apply:(lsn:Lsn.t -> Log_record.op -> (string * Row.Key.t) list) -> unit ->
  rules
(** Convenience constructor; [transfer_locks] defaults to true. *)

type t

val create :
  ?skip:Log_record.txn_id list -> ?exec:Domain_pool.exec ->
  Manager.t -> rules -> from:Lsn.t -> t
(** With [?exec] sharded (default {!Domain_pool.Serial}), the
    propagator keeps one log cursor and one WAL pin per shard; a step
    fans the cursor reads out over the pool — each worker keeps the
    records whose source key hashes to its shard — and applies the kept
    records serially after the barrier, in shard order. One shard is
    byte-identical to serial. A rules value carrying a consistency
    checker degrades to one shard (check ordering is not key-local).

    [skip] lists transactions whose log records the propagator ignores
    entirely. Crash recovery rolls losers back {e without logging} the
    compensation, so a propagator resumed over a retained log suffix
    must not apply their operations (no Abort record will ever undo the
    effect on the targets).

    The cursor is pinned in the manager's WAL-retention registry so log
    truncation never reclaims records the propagator has yet to read;
    call {!close} when the propagator is done or abandoned, or the pin
    keeps the log suffix alive forever.

    @raise Nbsc_wal.Log.Truncated if [from] is at or below the log's
    base — the saved position refers to records already truncated, so
    the catch-up cannot resume from it (restart the population from
    scratch instead of silently replaying the wrong suffix). *)

val close : t -> unit
(** Unpin the cursor from the manager's WAL-retention registry
    (idempotent). The propagator must not be stepped afterwards. *)

val step : t -> limit:int -> int
(** Process up to [limit] log records; returns how many were consumed. *)

val run_to_head : t -> int
(** The final, latched propagation: consume everything. Returns the
    number of records consumed — the paper's claim is that this is tiny
    (sub-millisecond) when the iteration analysis chose well. *)

val lag : t -> int
val position : t -> Lsn.t
val records_processed : t -> int
val locks_transferred : t -> int

val transfer_current_source_locks : t -> unit
(** Non-blocking-commit synchronization: transfer every lock currently
    held on a source table to the corresponding target records
    (paper, Sec. 3.4 / 4.3). Requires lag = 0. *)

val release_transferred : t -> owner:Log_record.txn_id -> unit
(** Drop one transaction's transferred locks on the targets (used when
    force-aborting source transactions whose end records will never be
    propagated because the transformation is being torn down). *)

val set_sweeper : t -> (limit:int -> bool) -> unit
(** Attach the background sweep the lazy migration strategies use: a
    bounded thunk that migrates up to [limit] still-cold source
    records (typically a {!Population.scan_tagged} step feeding the
    rules). Owning the sweep makes the propagator the single
    background catch-up engine — log tail and cold records alike. *)

val sweep : t -> limit:int -> bool
(** Run one sweep quantum; true when every cold record has been
    visited (vacuously true when no sweeper is attached). *)

val swept : t -> int
(** Total sweep work performed (in requested records), a coarse
    progress indicator; exact migrated-record counts live on the
    population's [scanned]/[produced] counters. *)

val set_lock_mapper :
  t -> (table:string -> key:Row.Key.t -> (string * Row.Key.t) list) -> unit
(** How a lock on a source record maps to target records; needed by
    {!transfer_current_source_locks}. *)
