(** DBLog-style virtual-cut population — a drop-in alternative to the
    paper's fuzzy scan (selected with
    [Options.population = Virtual_cut]).

    The fuzzy scan tolerates concurrent writes by letting the scanned
    image be stale and relying on log propagation to patch it up. The
    virtual cut (after the DBLog watermark algorithm of Andreakis and
    Papapanagiotou)
    instead detects staleness per chunk, without ever locking the
    scan: each chunk of the source scan is bracketed by a low and a
    high {!Nbsc_wal.Log_record.Watermark} record in the WAL. Any
    source-table write logged between the two watermarks supersedes
    the buffered scan result for its key — that row is discarded and
    re-read at its current state before the chunk is applied, so every
    row the populator emits was current at some point inside the
    chunk's window.

    Rows are replayed through the transformation's propagation rules
    (the uniform path the lazy demand scan uses), so the LSN-gated
    rules absorb the overlap between re-read rows and subsequent log
    propagation for every operator uniformly. *)

open Nbsc_storage
open Nbsc_txn

type t

val create :
  Manager.t ->
  job:string ->
  sources:(string * Table.t) list ->
  rules:Propagator.rules ->
  chunk:int ->
  t
(** [job] names the transformation in the watermark records; [chunk]
    is the target number of buffered rows per watermark pair (the scan
    still advances at most [limit] rows per population step, so one
    chunk typically spans several quanta — which is what gives
    concurrent writes a window to land in).
    @raise Invalid_argument if [chunk < 1]. *)

val population : t -> Population.t
(** The populator as a standard bounded-step population. *)

val discarded : t -> int
(** Buffered rows superseded inside a watermark window (each was
    discarded and re-read at its current state). *)

val chunks : t -> int
(** Watermark pairs written so far. *)
