open Nbsc_value
open Nbsc_storage

let r_bit = 1
let s_bit = 2

(* The rule plan: every positional mapping and projection the FOJ rules
   consult per record, compiled once against the layout at operator
   construction ([make_ctx]). The rules then work through the closures
   in [Plan] and never re-walk the layout's lists on the hot path. *)
type ctx = {
  layout : Spec.foj_layout;
  t_tbl : Table.t;
  mode : Plan.mode;
  route_r : Plan.route;       (* r_to_t @ r_join_to_t *)
  route_s : Plan.route;       (* s_to_t @ s_join_to_t *)
  route_r_join : Plan.route;  (* r_join_to_t alone (rule 5 pre-state) *)
  p_r_carry : Plan.proj;      (* t_r_carry_pos *)
  p_s_carry : Plan.proj;      (* t_s_carry_pos *)
  p_s_carry_key : Plan.proj;  (* t_s_carry_pos U t_s_key_pos *)
  p_t_r_key : Plan.proj;
  p_t_s_key : Plan.proj;
  p_t_join : Plan.proj;
  p_t_key : Plan.proj;        (* T's own key columns *)
  p_r_key_in_r : Plan.proj;
  p_join_in_r : Plan.proj;
  p_s_key_in_s : Plan.proj;
  p_join_in_s : Plan.proj;
  t_arity : int;
}

let make_ctx ?(mode = Plan.default_mode) catalog (l : Spec.foj_layout) =
  let route = Plan.route mode and proj = Plan.proj mode in
  { layout = l;
    t_tbl = Catalog.find catalog l.Spec.spec.Spec.t_table;
    mode;
    route_r = route (l.Spec.r_to_t @ l.Spec.r_join_to_t);
    route_s = route (l.Spec.s_to_t @ l.Spec.s_join_to_t);
    route_r_join = route l.Spec.r_join_to_t;
    p_r_carry = proj l.Spec.t_r_carry_pos;
    p_s_carry = proj l.Spec.t_s_carry_pos;
    p_s_carry_key =
      proj
        (l.Spec.t_s_carry_pos
         @ List.filter
             (fun p -> not (List.mem p l.Spec.t_s_carry_pos))
             l.Spec.t_s_key_pos);
    p_t_r_key = proj l.Spec.t_r_key_pos;
    p_t_s_key = proj l.Spec.t_s_key_pos;
    p_t_join = proj l.Spec.t_join_pos;
    p_t_key = proj (Schema.key_positions l.Spec.t_schema);
    p_r_key_in_r = proj l.Spec.r_key_in_r;
    p_join_in_r = proj l.Spec.join_in_r;
    p_s_key_in_s = proj l.Spec.s_key_in_s;
    p_join_in_s = proj l.Spec.join_in_s;
    t_arity = Schema.arity l.Spec.t_schema }

let mode ctx = ctx.mode

let derive_presence ctx row =
  (if Plan.any_non_null ctx.p_t_r_key row then r_bit else 0)
  lor if Plan.any_non_null ctx.p_t_s_key row then s_bit else 0

let presence ctx (record : Record.t) =
  if record.Record.aux <> 0 then record.Record.aux
  else derive_presence ctx record.Record.row

let has_r ctx record = presence ctx record land r_bit <> 0
let has_s ctx record = presence ctx record land s_bit <> 0

let t_row_of_sources ctx ~r ~s =
  let row = Row.all_null ctx.t_arity in
  (match s with
   | Some s_row -> Plan.blit ctx.route_s ~src:s_row ~dst:row
   | None -> ());
  (match r with
   | Some r_row ->
     (* R wins on join columns; equal anyway. *)
     Plan.blit ctx.route_r ~src:r_row ~dst:row
   | None -> ());
  let bits =
    (match r with Some _ -> r_bit | None -> 0)
    lor match s with Some _ -> s_bit | None -> 0
  in
  (row, bits)

let strip_r ctx row = Plan.null_out ctx.p_r_carry row
let strip_s ctx row = Plan.null_out ctx.p_s_carry row

let graft_r ctx ~r ~onto = Plan.graft ctx.route_r ~src:r ~onto
let graft_s ctx ~s ~onto = Plan.graft ctx.route_s ~src:s ~onto

let graft_s_from_t ctx ~src ~onto = Plan.graft_self ctx.p_s_carry ~src ~onto

let graft_s_with_key ctx ~src ~onto =
  Plan.graft_self ctx.p_s_carry_key ~src ~onto

let r_changes_to_t ctx changes = Plan.changes_through ctx.route_r changes
let s_changes_to_t ctx changes = Plan.changes_through ctx.route_s changes

let drop_t_key_changes ctx changes = Plan.filter_out ctx.p_t_key changes

let r_join_dst ctx r_pos = Plan.dst_of_src ctx.route_r_join r_pos

let r_join_changed ctx changes = Plan.touches ctx.p_join_in_r changes
let s_join_changed ctx changes = Plan.touches ctx.p_join_in_s changes

let r_key_of_r_row ctx row = Plan.project ctx.p_r_key_in_r row
let join_of_r_row ctx row = Plan.project ctx.p_join_in_r row
let s_key_of_s_row ctx row = Plan.project ctx.p_s_key_in_s row
let join_of_s_row ctx row = Plan.project ctx.p_join_in_s row
let t_key ctx row = Plan.project ctx.p_t_key row
let r_key_of_t_row ctx row = Plan.project ctx.p_t_r_key row
let s_key_of_t_row ctx row = Plan.project ctx.p_t_s_key row
let join_of_t_row ctx row = Plan.project ctx.p_t_join row

let by_r_key ctx key =
  Table.index_lookup_records ctx.t_tbl ~index:Spec.ix_by_r_key key

let by_s_key ctx key =
  Table.index_lookup_records ctx.t_tbl ~index:Spec.ix_by_s_key key

let by_join ctx key =
  Table.index_lookup_records ctx.t_tbl ~index:Spec.ix_by_join key

let put ctx ~lsn ~presence row =
  match Table.insert ctx.t_tbl ~lsn ~aux:presence row with
  | Ok () -> Table.key_of_row ctx.t_tbl row
  | Error `Duplicate_key ->
    invalid_arg
      (Format.asprintf "Foj: rule produced duplicate T key for %a" Row.pp row)

let drop ctx ~lsn key =
  match Table.delete ctx.t_tbl ~lsn key with
  | Ok _ -> key
  | Error `Not_found ->
    invalid_arg
      (Format.asprintf "Foj: rule deleted missing T key %a" Row.Key.pp key)

let rekey ctx ~lsn ~old_key ~presence row =
  let k1 = drop ctx ~lsn old_key in
  let k2 = put ctx ~lsn ~presence row in
  [ k1; k2 ]
