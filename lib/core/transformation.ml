open Nbsc_value
open Nbsc_wal
open Nbsc_storage
open Nbsc_txn
module Db = Nbsc_engine.Db

type lock_map = {
  source_to_targets :
    table:string -> key:Row.Key.t -> (string * Row.Key.t) list;
  target_to_sources :
    table:string -> key:Row.Key.t -> (string * Row.Key.t) list;
}

type sync_hooks = {
  before_switch : unit -> unit;
  after_switch : unit -> unit;
  on_done : unit -> unit;
}

let no_hooks =
  { before_switch = (fun () -> ());
    after_switch = (fun () -> ());
    on_done = (fun () -> ()) }

module type S = sig
  val name : string
  val sources : string list
  val targets : string list
  val spec_payload : string option
  val population : Population.t
  val rules : Propagator.rules
  val lock_map : lock_map
  val consistency : Consistency.t option
  val unknown_flags : unit -> int
  val counters : unit -> (string * int) list
  val sync_hooks : sync_hooks
end

type packed = (module S)

(* Preparation must tolerate targets that already exist: after a crash
   the targets were restored from the snapshot and the builder re-runs
   to rebuild the operator around them. A pre-existing table is only
   accepted with the exact schema the spec derives. *)
(* Target tables go through the engine facade's [create_table] so the
   manager wires its version-retention hint into them — bulk population
   writes must stay free of version churn while no snapshot is live. *)
let ensure_table db ?indexes ~name schema =
  let catalog = Db.catalog db in
  match Catalog.find_opt catalog name with
  | None -> ignore (Db.create_table db ?indexes ~name schema)
  | Some tbl ->
    if not (Schema.equal (Table.schema tbl) schema) then
      invalid_arg
        (Printf.sprintf
           "Transformation: table %S already exists with a different schema"
           name);
    List.iter
      (fun (ix, columns) -> Table.add_index tbl ~name:ix ~columns)
      (match indexes with Some ixs -> ixs | None -> [])

let start_propagator ?exec mgr rules =
  let active = Manager.active_snapshot mgr in
  let mark =
    Log.append (Manager.log mgr) ~txn:Log_record.system_txn ~prev_lsn:Lsn.zero
      (Log_record.Fuzzy_mark { active })
  in
  let from =
    List.fold_left
      (fun acc (_, first) -> if Lsn.(first < acc) then first else acc)
      mark active
  in
  Propagator.create ?exec mgr rules ~from

(* {1 Lazy migration: the uniform demand scan}

   Under [Options.Lazy]/[Hybrid] the eager, operator-specialized
   population is replaced by a uniform sweep that replays each source
   record's {e current} state through the propagation rules, exactly as
   if its insert had just been logged. The rules are LSN-gated
   idempotent upserts, so a record already migrated — by an access-hook
   demand migration or by actual log propagation — is simply ignored.
   This gives every operator lazy migration for free: no second
   population path per operator. *)

let demand_population catalog ~sources ~(rules : Propagator.rules) =
  let tables = List.map (fun n -> (n, Catalog.find catalog n)) sources in
  Population.scan_tagged tables ~ingest:(fun ~table record ->
      ignore
        (rules.Propagator.apply ~lsn:record.Record.lsn
           (Log_record.Insert { table; row = record.Record.row })))

let opt_plan_mode options plan_mode =
  match options with
  | Some { Options.plan_mode = Some _ as m; _ } -> m
  | _ -> plan_mode

let opt_exec options exec =
  match options with
  | Some { Options.exec = Some _ as e; _ } -> e
  | _ -> exec

let lazy_migration options =
  match options with
  | Some o -> o.Options.strategy <> Options.Eager
  | None -> false

(* {1 Virtual-cut population}

   [Options.population = Virtual_cut] swaps the operator-specialized
   fuzzy population for the DBLog-style watermark populator
   ({!Virtual_cut}), which routes every chunk row through the
   propagation rules — the same uniform path as the lazy demand scan,
   so it too works for every operator with no per-operator code. Only
   meaningful under [Eager]; lazy strategies have no bulk scan. *)

let virtual_cut_population db ~job ~sources ~rules ~options ~fallback =
  match options with
  | Some o
    when o.Options.strategy = Options.Eager
      && o.Options.population = Options.Virtual_cut ->
    let catalog = Db.catalog db in
    let tables = List.map (fun n -> (n, Catalog.find catalog n)) sources in
    (* Chunks deliberately span several quanta (3 x the per-step scan
       budget): a chunk scanned and sealed within one step has an empty
       watermark window, and the whole point is to give concurrent
       writes a window to land in. *)
    let chunk = max 1 (3 * o.Options.scan_batch) in
    let v = Virtual_cut.create (Db.manager db) ~job ~sources:tables ~rules ~chunk in
    (Virtual_cut.population v, Some v)
  | _ -> (fallback (), None)

let vc_counters = function
  | None -> []
  | Some v ->
    [ ("vc_discarded", Virtual_cut.discarded v);
      ("vc_chunks", Virtual_cut.chunks v) ]

let counter (module T : S) name =
  match List.assoc_opt name (T.counters ()) with
  | Some n -> n
  | None -> 0

(* {1 Full outer join} *)

let foj_source_to_targets fj ~table ~key =
  let cctx = Foj.ctx fj in
  let l = cctx.Foj_common.layout in
  let spec = l.Spec.spec in
  let t_name = spec.Spec.t_table in
  if String.equal table spec.Spec.r_table then
    List.map (fun (k, _) -> (t_name, k)) (Foj_common.by_r_key cctx key)
  else if String.equal table spec.Spec.s_table then
    List.map (fun (k, _) -> (t_name, k)) (Foj_common.by_s_key cctx key)
  else []

let foj_target_to_sources fj ~key =
  let cctx = Foj.ctx fj in
  let l = cctx.Foj_common.layout in
  let spec = l.Spec.spec in
  (* T's composite key carries both source keys (possibly overlapping
     on shared join columns); project each side out by index. *)
  let part indices = Array.of_list (List.map (Array.get key) indices) in
  let r_part = part l.Spec.r_key_in_tkey in
  let s_part = part l.Spec.s_key_in_tkey in
  (if Row.Key.has_null r_part then [] else [ (spec.Spec.r_table, r_part) ])
  @ if Row.Key.has_null s_part then [] else [ (spec.Spec.s_table, s_part) ]

let foj ?(transfer_locks = true) ?plan_mode ?options ?exec db spec =
  let plan_mode = opt_plan_mode options plan_mode in
  let exec = opt_exec options exec in
  let catalog = Db.catalog db in
  let layout = Spec.foj_layout catalog spec in
  ensure_table db
    ~indexes:(Spec.foj_t_indexes layout)
    ~name:spec.Spec.t_table (Spec.foj_t_schema layout);
  let fj = Foj.create ?mode:plan_mode catalog layout in
  let r_tbl = Catalog.find catalog spec.Spec.r_table in
  let s_tbl = Catalog.find catalog spec.Spec.s_table in
  let apply =
    if spec.Spec.many_to_many then
      fun ~lsn op ->
        List.map (fun k -> (spec.Spec.t_table, k)) (Foj_mm.apply fj ~lsn op)
    else
      fun ~lsn op ->
        List.map (fun k -> (spec.Spec.t_table, k)) (Foj.apply fj ~lsn op)
  in
  let rules =
    Propagator.rules ~transfer_locks
      ~sources:[ spec.Spec.r_table; spec.Spec.s_table ]
      ~targets:[ spec.Spec.t_table ] ~apply ()
  in
  let pop, vc =
    if lazy_migration options then
      ( demand_population catalog
          ~sources:[ spec.Spec.r_table; spec.Spec.s_table ] ~rules,
        None )
    else
      virtual_cut_population db ~job:"foj"
        ~sources:[ spec.Spec.r_table; spec.Spec.s_table ]
        ~rules ~options
        ~fallback:(fun () -> Population.foj ?exec fj ~r_tbl ~s_tbl)
  in
  (module struct
    let name = "foj"
    let sources = [ spec.Spec.r_table; spec.Spec.s_table ]
    let targets = [ spec.Spec.t_table ]
    let spec_payload = Some (Spec.encode (Spec.Foj spec))
    let population = pop
    let rules = rules
    let lock_map =
      { source_to_targets =
          (fun ~table ~key -> foj_source_to_targets fj ~table ~key);
        target_to_sources = (fun ~table:_ ~key -> foj_target_to_sources fj ~key)
      }
    let consistency = None
    let unknown_flags () = 0
    let counters () =
      let st = Foj.stats fj in
      [ ("applied", st.Foj.applied); ("ignored", st.Foj.ignored);
        ("foreign", st.Foj.foreign) ]
      @ vc_counters vc
    let sync_hooks = no_hooks
  end : S)

(* {1 Vertical split} *)

let split_source_to_targets sp db ~key =
  let layout = Split.layout sp in
  let spec = layout.Spec.sspec in
  let r_name = spec.Spec.r_table' and s_name = spec.Spec.s_table' in
  let base = [ (r_name, key) ] in
  match Catalog.find_opt (Db.catalog db) spec.Spec.t_table' with
  | None -> base
  | Some t_tbl ->
    (match Table.find t_tbl key with
     | None -> base
     | Some record ->
       let v = Row.project record.Record.row layout.Spec.split_in_t in
       (s_name, v) :: base)

let split_target_to_sources sp db ~table ~key =
  let layout = Split.layout sp in
  let spec = layout.Spec.sspec in
  let t_name = spec.Spec.t_table' in
  if String.equal table spec.Spec.r_table' then [ (t_name, key) ]
  else if String.equal table spec.Spec.s_table' then
    match Catalog.find_opt (Db.catalog db) t_name with
    | None -> []
    | Some t_tbl ->
      List.map
        (fun k -> (t_name, k))
        (Table.index_lookup t_tbl ~index:Spec.ix_t_split key)
  else []

let split ?plan_mode ?options ?exec db spec =
  let plan_mode = opt_plan_mode options plan_mode in
  let exec = opt_exec options exec in
  let catalog = Db.catalog db in
  let layout = Spec.split_layout catalog spec in
  ensure_table db ~name:spec.Spec.r_table' (Spec.split_r_schema layout);
  ensure_table db ~name:spec.Spec.s_table' (Spec.split_s_schema layout);
  let t_tbl = Catalog.find catalog spec.Spec.t_table' in
  Table.add_index t_tbl ~name:Spec.ix_t_split ~columns:spec.Spec.split_key;
  let sp = Split.create ?mode:plan_mode catalog layout in
  let cc =
    if spec.Spec.assume_consistent then None
    else Some (Consistency.create catalog sp ~log:(Db.log db))
  in
  let rules =
    { Propagator.sources = [ spec.Spec.t_table' ];
      targets = [ spec.Spec.r_table'; spec.Spec.s_table' ];
      apply = (fun ~lsn op -> Split.apply sp ~lsn op);
      cc;
      cc_s_table = Some spec.Spec.s_table';
      transfer_locks = true }
  in
  let pop, vc =
    if lazy_migration options then
      (demand_population catalog ~sources:[ spec.Spec.t_table' ] ~rules, None)
    else
      virtual_cut_population db ~job:"split"
        ~sources:[ spec.Spec.t_table' ] ~rules ~options
        ~fallback:(fun () -> Population.split ?exec sp ~t_tbl)
  in
  (module struct
    let name = "split"
    let sources = [ spec.Spec.t_table' ]
    let targets = [ spec.Spec.r_table'; spec.Spec.s_table' ]
    let spec_payload = Some (Spec.encode (Spec.Split spec))
    let population = pop
    let rules = rules
    let lock_map =
      { source_to_targets =
          (fun ~table:_ ~key -> split_source_to_targets sp db ~key);
        target_to_sources =
          (fun ~table ~key -> split_target_to_sources sp db ~table ~key) }
    let consistency = cc
    let unknown_flags () =
      match cc with None -> 0 | Some _ -> Split.unknown_count sp
    let counters () =
      let st = Split.stats sp in
      [ ("applied", st.Split.applied); ("ignored", st.Split.ignored);
        ("foreign", st.Split.foreign); ("unknown", Split.unknown_count sp) ]
      @ vc_counters vc
    let sync_hooks = no_hooks
  end : S)

(* {1 Horizontal (selection) split} *)

let hsplit ?options ?exec db spec =
  let exec = opt_exec options exec in
  let catalog = Db.catalog db in
  let layout = Spec.hsplit_layout catalog spec in
  ensure_table db ~name:spec.Spec.h_true_table layout.Spec.h_schema;
  ensure_table db ~name:spec.Spec.h_false_table layout.Spec.h_schema;
  let hs = Hsplit.create catalog layout in
  let source = Catalog.find catalog spec.Spec.h_source in
  let rules =
    Propagator.rules ~sources:[ spec.Spec.h_source ]
      ~targets:[ spec.Spec.h_true_table; spec.Spec.h_false_table ]
      ~apply:(fun ~lsn op -> Hsplit.apply hs ~lsn op)
      ()
  in
  let pop, vc =
    if lazy_migration options then
      (demand_population catalog ~sources:[ spec.Spec.h_source ] ~rules, None)
    else
      virtual_cut_population db ~job:"hsplit"
        ~sources:[ spec.Spec.h_source ] ~rules ~options
        ~fallback:(fun () ->
          Population.scan_one ?exec source ~ingest:(Hsplit.ingest_initial hs))
  in
  (module struct
    let name = "hsplit"
    let sources = [ spec.Spec.h_source ]
    let targets = [ spec.Spec.h_true_table; spec.Spec.h_false_table ]
    let spec_payload = Some (Spec.encode (Spec.Hsplit spec))
    let population = pop
    let rules = rules
    let lock_map =
      { source_to_targets =
          (fun ~table:_ ~key ->
             (* The key lives in exactly one target, but lock both
                conservatively (an update may migrate the row). *)
             [ (Table.name (Hsplit.true_table hs), key);
               (Table.name (Hsplit.false_table hs), key) ]);
        target_to_sources =
          (fun ~table:_ ~key -> [ (spec.Spec.h_source, key) ]) }
    let consistency = None
    let unknown_flags () = 0
    let counters () =
      let st = Hsplit.stats hs in
      [ ("applied", st.Hsplit.applied); ("ignored", st.Hsplit.ignored);
        ("foreign", st.Hsplit.foreign); ("migrations", st.Hsplit.migrations) ]
      @ vc_counters vc
    let sync_hooks = no_hooks
  end : S)

(* {1 Merge (union)} *)

let merge ?options ?exec db spec =
  let exec = opt_exec options exec in
  let catalog = Db.catalog db in
  let layout = Spec.merge_layout catalog spec in
  ensure_table db ~name:spec.Spec.m_target layout.Spec.m_schema;
  let mg = Merge.create catalog layout in
  let sources = List.map (Catalog.find catalog) spec.Spec.m_sources in
  let rules =
    Propagator.rules ~sources:spec.Spec.m_sources
      ~targets:[ spec.Spec.m_target ]
      ~apply:(fun ~lsn op -> Merge.apply mg ~lsn op)
      ()
  in
  let pop, vc =
    if lazy_migration options then
      (demand_population catalog ~sources:spec.Spec.m_sources ~rules, None)
    else
      virtual_cut_population db ~job:"merge" ~sources:spec.Spec.m_sources
        ~rules ~options
        ~fallback:(fun () ->
          Population.scan_many ?exec sources ~ingest:(Merge.ingest_initial mg))
  in
  (module struct
    let name = "merge"
    let sources = spec.Spec.m_sources
    let targets = [ spec.Spec.m_target ]
    let spec_payload = Some (Spec.encode (Spec.Merge spec))
    let population = pop
    let rules = rules
    let lock_map =
      { source_to_targets =
          (fun ~table:_ ~key -> [ (Table.name (Merge.target mg), key) ]);
        target_to_sources =
          (fun ~table:_ ~key ->
             (* The target key could stem from any source; lock all. *)
             List.map (fun src -> (src, key)) spec.Spec.m_sources) }
    let consistency = None
    let unknown_flags () = 0
    let counters () =
      let st = Merge.stats mg in
      [ ("applied", st.Merge.applied); ("ignored", st.Merge.ignored);
        ("foreign", st.Merge.foreign); ("collisions", st.Merge.collisions) ]
      @ vc_counters vc
    let sync_hooks = no_hooks
  end : S)

(* {1 Rebuilding from a durable payload} *)

let of_payload ?options ?exec db payload =
  match Spec.decode payload with
  | exception Failure m -> Error m
  | spec ->
    (try
       Ok
         (match spec with
          | Spec.Foj s -> foj ?options ?exec db s
          | Spec.Split s -> split ?options ?exec db s
          | Spec.Hsplit s -> hsplit ?options ?exec db s
          | Spec.Merge s -> merge ?options ?exec db s)
     with Invalid_argument m | Failure m -> Error m)
