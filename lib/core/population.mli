(** The initial population step (paper, Sec. 3.2).

    Source tables are read with lock-free fuzzy cursors, in bounded
    batches so user transactions interleave freely; the transformation
    operator is applied to the fuzzy result and inserted into the
    transformed tables. The resulting initial image is inconsistent —
    that is the point — and the log propagation absorbs it.

    FOJ scans S first (building an in-memory join table), then streams
    R against it, then emits the unmatched S rows padded with the
    R-null record. Split streams T, inserting R parts (which inherit
    the source record's LSN, the rules' state identifier) and
    reference-counting S parts. *)

open Nbsc_storage

type t

type counters = {
  mutable scanned : int;
  mutable produced : int;
}

val make :
  ?close:(unit -> unit) ->
  step:(counters -> limit:int -> bool) -> finished:(unit -> bool) -> unit -> t
(** Build a population from a bounded stepper: [step counters ~limit]
    does up to [limit] records of work, bumps the counters, and returns
    true when done. [close] (default a no-op) releases whatever scan
    resources the stepper holds — the built-in constructors use it to
    close their fuzzy cursors, which unblocks arrival-array compaction
    on the source tables. This is the extension point a custom
    {!Transformation.S} implementation uses; the constructors below are
    the paper's operators expressed through it. *)

val foj : ?exec:Domain_pool.exec -> Foj.t -> r_tbl:Table.t -> s_tbl:Table.t -> t
val split : ?exec:Domain_pool.exec -> Split.t -> t_tbl:Table.t -> t

val scan_one : ?exec:Domain_pool.exec -> Table.t -> ingest:(Record.t -> unit) -> t
(** Generic single-source population: fuzzy-scan the table and feed
    each record to [ingest] (horizontal split, materialized views). *)

val scan_many :
  ?exec:Domain_pool.exec -> Table.t list -> ingest:(Record.t -> unit) -> t
(** Several sources scanned in sequence (merge).

    With [?exec] sharded (default {!Domain_pool.Serial}), each
    constructor partitions the fuzzy scan by key hash: workers read
    per-shard cursors and compute pure values in parallel; all table
    and operator mutation stays on the calling domain, after the
    barrier, in shard order. One shard is byte-identical to serial. *)

val scan_tagged :
  (string * Table.t) list -> ingest:(table:string -> Record.t -> unit) -> t
(** Like {!scan_many}, but each record is delivered with the name of
    the table it came from — the uniform sweep the lazy migration
    strategies feed through the propagation rules. Serial only: lazy
    sweeps run in (often single-record) quanta where sharding has
    nothing to win. *)

val step : t -> limit:int -> bool
(** Do up to [limit] records of work; true when population is done. *)

val finished : t -> bool
val scanned : t -> int
(** Source records consumed so far. *)

val produced : t -> int
(** Target rows written so far. *)

val close : t -> unit
(** Release the population's scan resources (idempotent — the built-in
    steppers close each cursor as its scan completes, and cursor close
    is itself idempotent). Call when tearing a population down before
    it finishes. *)
