type sync = Blocking_commit | Nonblocking_abort | Nonblocking_commit

type migration = Eager | Lazy | Hybrid of { sweep_quantum : int }

type population = Fuzzy | Virtual_cut

type t = {
  scan_batch : int;
  propagate_batch : int;
  analysis : Analysis.policy;
  sync : sync;
  strategy : migration;
  population : population;
  drop_sources : bool;
  sync_gate : unit -> bool;
  pace : Governor.t option;
  plan_mode : Plan.mode option;
  exec : Domain_pool.exec option;
}

let default =
  { scan_batch = 256;
    propagate_batch = 256;
    analysis = Analysis.default;
    sync = Nonblocking_abort;
    strategy = Eager;
    population = Fuzzy;
    drop_sources = true;
    sync_gate = (fun () -> true);
    pace = None;
    plan_mode = None;
    exec = None }

(* Field validation. String parsers reject bad values at the parse
   boundary, but options records are also built programmatically
   (record update syntax bypasses every parser), so the engine
   re-validates at [Transform.create] via [check]. *)
let validate t =
  if t.scan_batch < 1 then
    Error
      (`Invalid
        (Printf.sprintf "scan_batch must be >= 1 (got %d)" t.scan_batch))
  else if t.propagate_batch < 1 then
    Error
      (`Invalid
        (Printf.sprintf "propagate_batch must be >= 1 (got %d)"
           t.propagate_batch))
  else
    match t.strategy with
    | Hybrid { sweep_quantum } when sweep_quantum < 1 ->
      Error
        (`Invalid
          (Printf.sprintf "hybrid sweep_quantum must be >= 1 (got %d)"
             sweep_quantum))
    | Eager | Lazy | Hybrid _ -> Ok t

let check t =
  match validate t with Ok t -> t | Error e -> Nbsc_error.fail e

let migration_of_string = function
  | "eager" -> Some Eager
  | "lazy" -> Some Lazy
  | s ->
    (match String.index_opt s ':' with
     | Some i when String.equal (String.sub s 0 i) "hybrid" ->
       (match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
        with
        | Some q when q > 0 -> Some (Hybrid { sweep_quantum = q })
        | _ -> None)
     | _ -> if String.equal s "hybrid" then Some (Hybrid { sweep_quantum = 32 })
       else None)

let migration_to_string = function
  | Eager -> "eager"
  | Lazy -> "lazy"
  | Hybrid { sweep_quantum } -> Printf.sprintf "hybrid:%d" sweep_quantum

let pp_migration ppf m = Format.pp_print_string ppf (migration_to_string m)

let sync_to_string = function
  | Blocking_commit -> "blocking-commit"
  | Nonblocking_abort -> "nonblocking-abort"
  | Nonblocking_commit -> "nonblocking-commit"

let sync_of_string = function
  | "blocking-commit" | "blocking_commit" | "blocking" -> Some Blocking_commit
  | "nonblocking-abort" | "nonblocking_abort" | "abort" -> Some Nonblocking_abort
  | "nonblocking-commit" | "nonblocking_commit" | "commit" ->
    Some Nonblocking_commit
  | _ -> None

let pp_sync ppf s = Format.pp_print_string ppf (sync_to_string s)

let population_of_string = function
  | "fuzzy" -> Some Fuzzy
  | "virtual-cut" | "virtual_cut" | "vc" -> Some Virtual_cut
  | _ -> None

let population_to_string = function
  | Fuzzy -> "fuzzy"
  | Virtual_cut -> "virtual-cut"

let pp_population ppf p = Format.pp_print_string ppf (population_to_string p)
