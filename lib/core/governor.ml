(* Anti-starvation pacing (feedback governor).

   The paper's Fig. 4(d) finding: with a static priority, the
   transformation "never finishes if its priority is set too low" —
   user transactions produce log records faster than the propagator
   consumes them and the lag diverges. The governor closes the loop:
   it watches lag across observation windows and multiplies the
   transformation's effective priority ([gain]) whenever a full window
   goes by without the lag improving, then decays the boost once the
   transformation has caught up and user response time has recovered.
   Escalation is geometric and unbounded below [max_gain], so any
   diverging point eventually receives enough capacity to converge:
   the never-finishes region degrades into a slower-but-finishing one.

   The module is pure bookkeeping — no clocks, no scheduler knowledge.
   Whoever schedules (the simulator, [Db.run_jobs] drivers) feeds
   observations in and multiplies its own notion of priority by
   [gain]. *)

type config = {
  window : int;
      (* lag observations per escalation decision; small windows react
         fast, large ones tolerate noise *)
  escalate : float;   (* gain multiplier when a window shows no progress *)
  relax : float;      (* gain multiplier (< 1) when caught up *)
  max_gain : float;   (* escalation ceiling *)
  lag_slack : int;    (* lag at or below this counts as caught up *)
  rt_tolerance : float;
      (* relax only once response time is within this factor of the
         baseline established before we escalated *)
}

let default_config =
  { window = 6;
    escalate = 2.0;
    relax = 0.5;
    max_gain = 4096.0;
    lag_slack = 4;
    rt_tolerance = 1.5 }

type t = {
  config : config;
  mutable gain : float;
  mutable obs : int;          (* observations in the current window *)
  mutable window_min : int;   (* best (lowest) lag seen this window *)
  mutable prev_min : int;     (* best lag of the previous window *)
  mutable rt_ema : float;     (* smoothed user response time *)
  mutable rt_baseline : float; (* response time when gain was last 1.0 *)
  mutable n_escalations : int;
  mutable n_relaxes : int;
}

type stats = {
  current_gain : float;
  escalations : int;
  relaxes : int;
}

let create ?(config = default_config) ?obs:registry () =
  let t =
    { config;
      gain = 1.0;
      obs = 0;
      window_min = max_int;
      prev_min = max_int;
      rt_ema = 0.0;
      rt_baseline = 0.0;
      n_escalations = 0;
      n_relaxes = 0 }
  in
  (* Probes, not write-through counters: the governor stays pure
     bookkeeping and the registry reads its state on demand. *)
  (match registry with
   | None -> ()
   | Some r ->
     let module Obs = Nbsc_obs.Obs in
     Obs.Registry.probe r "governor.gain" (fun () -> t.gain);
     Obs.Registry.probe r "governor.escalations" (fun () ->
         float_of_int t.n_escalations);
     Obs.Registry.probe r "governor.relaxes" (fun () ->
         float_of_int t.n_relaxes));
  t

let gain t = t.gain

let observe_response t ~rt =
  if t.rt_ema = 0.0 then t.rt_ema <- rt
  else t.rt_ema <- (0.8 *. t.rt_ema) +. (0.2 *. rt);
  if t.gain <= 1.0 then t.rt_baseline <- t.rt_ema

let rt_recovered t =
  t.rt_baseline = 0.0 || t.rt_ema = 0.0
  || t.rt_ema <= t.rt_baseline *. t.config.rt_tolerance

let relax_step t =
  if t.gain > 1.0 then begin
    t.gain <- Float.max 1.0 (t.gain *. t.config.relax);
    t.n_relaxes <- t.n_relaxes + 1
  end

let observe_lag t ~lag =
  if lag <= t.config.lag_slack then begin
    (* Caught up: yield the boost back, but only once the users have
       actually recovered — dropping the gain while response time is
       still inflated would oscillate. *)
    if rt_recovered t then relax_step t;
    t.obs <- 0;
    t.window_min <- max_int;
    t.prev_min <- max_int
  end
  else begin
    if lag < t.window_min then t.window_min <- lag;
    t.obs <- t.obs + 1;
    if t.obs >= t.config.window then begin
      (* A full window without the best lag improving on the previous
         window's best means we are losing (or merely holding) ground:
         escalate. *)
      if t.window_min >= t.prev_min && t.gain < t.config.max_gain then begin
        t.gain <- Float.min t.config.max_gain (t.gain *. t.config.escalate);
        t.n_escalations <- t.n_escalations + 1
      end;
      t.prev_min <- t.window_min;
      t.obs <- 0;
      t.window_min <- max_int
    end
  end

let stats t =
  { current_gain = t.gain;
    escalations = t.n_escalations;
    relaxes = t.n_relaxes }

let pp_stats ppf s =
  Format.fprintf ppf "gain=%.1f escalations=%d relaxes=%d" s.current_gain
    s.escalations s.relaxes
