(** Split log propagation — the paper's Rules 8–11 (Sec. 5.2) with the
    consistency-flag maintenance of Sec. 5.3.

    Unlike FOJ, split uses record LSNs as state identifiers: the LSNs
    R records inherit from the fuzzy read of T identify exactly which
    logged operations are already reflected. Each S record carries a
    reference counter (after Gupta et al.) counting the T rows it
    stands for, and — when the DBMS does not guarantee consistency — a
    C/U flag driven by the events of Sec. 5.3. *)

open Nbsc_value
open Nbsc_wal
open Nbsc_storage

type t

val create : ?mode:Plan.mode -> Catalog.t -> Spec.split_layout -> t
(** [mode] (default {!Plan.default_mode}) selects the compiled or the
    retained interpreted rule plan — semantics are identical; the
    interpreted plan exists as the differential-test reference. *)

val layout : t -> Spec.split_layout
val r_table : t -> Table.t
val s_table : t -> Table.t

val apply : t -> lsn:Lsn.t -> Log_record.op -> (string * Row.Key.t) list
(** Propagate one logged operation on the source table T into R and S.
    Returns the (table, key) pairs touched — the lock-transfer set. *)

val ingest_initial : t -> Record.t -> unit
(** Feed one fuzzily-read T record to the initial population: inserts
    the R part (inheriting the record's LSN — the state identifier the
    rules need) and upserts the S part, maintaining counter and flag. *)

val unknown_count : t -> int
(** Number of U-flagged S records (must reach 0 before sync when
    consistency is not assumed). *)

val first_unknown : t -> (Row.Key.t * Record.t) option

(** Counters, for ablation benches. *)
type stats = {
  mutable applied : int;
  mutable ignored : int;
  mutable foreign : int;
}

val stats : t -> stats
