(** The generic schema-change executor (paper, Sec. 3).

    A transformation is an incremental background process: build an
    operator with the {!Transformation} builders (the {e preparation
    step} — target tables, indexes, validation), hand it to {!create},
    then call {!step} repeatedly, interleaved with user transactions at
    whatever granularity the caller (application, test, or the
    simulator's priority scheduler) chooses. Each step performs one
    bounded {e quantum} of work:

    + {e initial population} — fuzzy (lock-free) scan of the sources,
      transformation operator applied, initial image inserted;
    + {e log propagation} — the redo rules of Sections 4 and 5,
      transferring source-transaction locks to the targets as it goes;
    + {e consistency checking} — until the operator's checker clears
      every record (split of possibly-inconsistent data, Sec. 5.3);
    + {e synchronization} — one of the paper's three strategies
      (Sec. 3.4), ending with the source tables dropped.

    The executor owns only this lifecycle state machine; everything
    operator-specific (population, redo rules, lock projection,
    consistency) comes through the {!Transformation.S} contract. Each
    executor also registers itself as a background job on its {!Db}, so
    several in-flight transformations interleave fairly under
    [Db.step_jobs] / [Db.run_jobs]; overlapping synchronizations
    serialize themselves by backing off when a source latch is held by
    another transformation.

    User transactions are never blocked except for the final latched
    propagation iteration, whose size {!progress} reports (the paper
    measures it under 1 ms). *)

open Nbsc_txn
open Nbsc_engine

(** In signatures below, [Db.t] is the engine's {!Nbsc_engine.Db.t} —
    the same type [Nbsc_core.Db.t] re-exports. *)

(** Synchronization strategy, re-exported from {!Options.sync} so the
    constructors remain addressable as [Transform.Nonblocking_abort]
    etc. (the historical spelling). *)
type strategy = Options.sync =
  | Blocking_commit
      (** block newcomers, let current transactions finish, then switch
          — violates the non-blocking requirement; the paper's foil *)
  | Nonblocking_abort
      (** latch briefly, switch, force transactions that were active on
          the sources to abort *)
  | Nonblocking_commit
      (** latch briefly, switch, let source transactions continue under
          two-schema locking (Fig. 2) until they finish *)

type config = {
  scan_batch : int;       (** source records per population quantum *)
  propagate_batch : int;  (** log records per propagation quantum *)
  analysis : Analysis.policy;
      (** the iteration analysis deciding when to attempt
          synchronization (paper, Sec. 3.3; see {!Analysis.policy}) *)
  strategy : strategy;
  drop_sources : bool;    (** drop source tables when done *)
  sync_gate : unit -> bool;
      (** consulted before entering synchronization; return [false] to
          keep propagating (e.g. the DBA wants the switch-over during
          off-hours, or an experiment wants a steady propagation
          phase). Default: always true. *)
  pace : Governor.t option;
      (** anti-starvation governor (see {!Governor}). The executor
          feeds it the propagation lag each quantum and scales its
          batch limits with the gain; priority schedulers (the
          simulator) additionally multiply the transformation's CPU
          share by [Governor.gain]. One governor per transformation
          run — instances are mutable and must not be shared.
          Default: [None] (static pacing, Fig. 4(d) behaviour). *)
}

val default_config : config
(** [{ scan_batch = 256; propagate_batch = 256;
      analysis = Analysis.default; strategy = Nonblocking_abort;
      drop_sources = true; sync_gate = fun () -> true; pace = None }]

    @deprecated [config] predates {!Options.t}; new code should pass
    [?options] instead. [config] remains as a thin subset — it cannot
    express migration strategy, plan mode or sharded execution. *)

val config_of_options : Options.t -> config
(** Project the one-record options onto the legacy [config] subset
    (drops [strategy]/[plan_mode]/[exec]). *)

val options_of_config : config -> Options.t
(** Embed a legacy [config] into {!Options.t} with the remaining
    fields at their defaults ([Eager], no plan-mode override, serial
    execution) — the upgrade path for callers still building
    [config] values. *)

type phase =
  | Populating
  | Propagating
  | Checking        (** consistency checker active (split, Sec. 5.3) *)
  | Quiescing       (** blocking commit: waiting for old transactions *)
  | Draining        (** switched; old source transactions finishing *)
  | Done
  | Failed of string

type progress = {
  p_phase : phase;
  iterations : int;       (** times the propagator caught up with the log head *)
  scanned : int;          (** fuzzy-scanned source records *)
  produced : int;         (** initial-image rows written *)
  applied : int;          (** redo-rule applications (operator counter) *)
  propagated : int;       (** log records consumed *)
  lag : int;              (** log records still to consume *)
  locks_transferred : int;
  final_records : int;    (** size of the final latched iteration *)
  unknown_flags : int;    (** records the checker has not yet confirmed *)
  forced_aborts : int;    (** transactions killed by non-blocking abort *)
}

type t

(** Where a crashed executor left off, per the durable job state the
    recovery report surfaced. Used by {!resume}; exposed for tests. *)
type resume_info = {
  r_phase : [ `Propagating | `Draining ];
      (** [`Propagating]: initial image complete, keep applying the log.
          [`Draining]: already switched to the targets; finish the log
          tail and finalize. (An executor that crashed during population
          restarts from scratch instead — see {!resume}.) *)
  r_position : Nbsc_wal.Lsn.t;
      (** log position the rebuilt propagator reads from *)
  r_skip : Manager.txn_id list;
      (** loser transactions recovery rolled back without logging —
          their records must not be applied to the targets *)
}

val create :
  Nbsc_engine.Db.t -> ?config:config -> ?options:Options.t ->
  ?resume:resume_info -> ?job_name:string ->
  ?exec:Domain_pool.exec -> Transformation.packed -> t
(** Wrap any {!Transformation.S} operator in an executor and register
    it as a background job on the database. When the operator is
    persistable ({!Transformation.S.spec_payload}), the executor also
    journals a [Job_state] record and registers a persist thunk so
    checkpoints keep the durable state current. [resume] starts the
    executor mid-lifecycle instead of at population; [job_name] pins
    the registry name (resume keeps the crashed job's name so the
    durable [Job_state]/[Job_done] chain stays coherent). [exec]
    (default {!Domain_pool.Serial}) shards the executor's {e propagator}
    — a packed operator's population carries its own execution mode,
    chosen when the operator was built; the convenience constructors
    below pass one [?exec] to both.

    [options] ({!Options.t}) supersedes [config] (and, through its
    [plan_mode]/[exec] fields, the deprecated per-call arguments) when
    given. Under [options.strategy = Lazy | Hybrid _] the executor
    runs demand-driven migration: an access hook in the transaction
    manager transforms each source record on first touch, and the
    propagator doubles as a background sweeper over the cold records
    ([Lazy]: one per quantum; [Hybrid { sweep_quantum }]: that many).
    The populating phase ends when the sweep has visited every record;
    everything after (propagation, synchronization, crash resume) is
    strategy-independent. A lazy job that crashes while populating
    restarts from scratch on resume, exactly like an eager one — the
    sweep is a fuzzy scan and both are idempotent. *)

(** {2 Convenience constructors for the paper's operators}

    [foj db spec] = [create db (Transformation.foj db spec)], etc.

    @deprecated These raw constructors predate the managed façade.
    New code should go through [Nbsc_core.Db.Schema_change.start],
    which validates the spec into a [result] instead of raising,
    returns a handle with status/cancel, and keeps error reporting in
    {!Nbsc_error.t}. They remain for tests and for callers that need
    the bare executor. *)

val foj :
  Nbsc_engine.Db.t -> ?config:config -> ?options:Options.t ->
  ?exec:Domain_pool.exec -> Spec.foj -> t

val split :
  Nbsc_engine.Db.t -> ?config:config -> ?options:Options.t ->
  ?exec:Domain_pool.exec -> Spec.split -> t

val hsplit :
  Nbsc_engine.Db.t -> ?config:config -> ?options:Options.t ->
  ?exec:Domain_pool.exec -> Spec.hsplit -> t

val merge :
  Nbsc_engine.Db.t -> ?config:config -> ?options:Options.t ->
  ?exec:Domain_pool.exec -> Spec.merge -> t

val step : t -> [ `Running | `Done | `Failed of string ]
(** One bounded quantum of background work. *)

val run : ?between:(unit -> unit) -> t -> (unit, string) result
(** Drive to completion, invoking [between] between steps so callers
    can interleave user transactions. *)

val phase : t -> phase
val progress : t -> progress

val routing : t -> [ `Sources | `Targets ]
(** Which schema version new transactions should use — flips exactly at
    the synchronization point. *)

val sources : t -> string list
val targets : t -> string list

val name : t -> string
(** The operator's short name ("foj", "split", ...). *)

val job_name : t -> string
(** The unique name this executor registered in the {!Db} job
    registry, e.g. ["foj#1000000001"]. *)

val counters : t -> (string * int) list
(** The operator's labelled counters (see {!Transformation.S.counters}). *)

val migration : t -> Options.migration
(** The migration strategy this executor runs under. *)

val demand_migrations : t -> int
(** Records migrated by the access hook (first-touch demand migration)
    — 0 under [Eager]. *)

val resume :
  ?config:config -> ?options:Options.t -> ?exec:Domain_pool.exec -> Persist.t ->
  (t list, Nbsc_error.t) result
(** Rebuild and re-register every schema-change job that was in flight
    when the (re)opened database crashed ({!Persist.pending_jobs}).

    A job whose initial population had finished resumes from its last
    checkpointed propagator position — the source tables are {e not}
    re-scanned; the retained WAL suffix is applied instead (skipping
    recovery's loser transactions). A job still populating, or whose
    durable state cannot cover a resume (targets missing from the
    snapshot, position behind the retained log), drops its half-built
    targets and restarts from scratch. Errors on a payload that cannot
    be decoded.

    Pass the same [options] the crashed job ran under: the migration
    strategy is an execution policy, not part of the durable state, so
    the resumed executor re-derives it from [options] (a lazy job that
    crashed mid-sweep restarts its population — sweep and demand
    migration are idempotent, so re-converging is safe). *)

val abort : t -> unit
(** Stop the transformation: log propagation ceases, transformed tables
    are deleted, transferred locks dropped, latches and freezes lifted
    (paper, Sec. 6: "aborting the transformation simply means that log
    propagation is stopped, and the transformed tables are deleted").
    No effect once [Done]. *)

val pp_phase : Format.formatter -> phase -> unit
val pp_progress : Format.formatter -> progress -> unit

(** Access to the underlying machinery, for tests and benches. *)
val manager : t -> Manager.t
val checker : t -> Consistency.t option
