open Nbsc_value

type mode = Compiled | Interpreted

let default_mode = Compiled

let mode_of_string = function
  | "compiled" -> Some Compiled
  | "interpreted" -> Some Interpreted
  | _ -> None

let mode_to_string = function
  | Compiled -> "compiled"
  | Interpreted -> "interpreted"

(* Both backends are records of closures so the per-record call sites
   are mode-blind; the compiled closures share the arrays built here
   and allocate only their results. *)

type route = {
  pairs : (int * int) list;
  dst_of_src : int -> int option;
  changes_through : (int * Value.t) list -> (int * Value.t) list;
  graft_changes : Row.t -> (int * Value.t) list;
  graft : src:Row.t -> onto:Row.t -> Row.t;
  blit : src:Row.t -> dst:Value.t array -> unit;
}

let route_pairs r = r.pairs
let dst_of_src r = r.dst_of_src
let changes_through r = r.changes_through
let graft_changes r = r.graft_changes
let graft r = r.graft
let blit r = r.blit

let route_interpreted pairs =
  let graft_changes src =
    List.map (fun (s, d) -> (d, Row.get src s)) pairs
  in
  { pairs;
    dst_of_src = (fun s -> List.assoc_opt s pairs);
    changes_through =
      (fun changes ->
         List.filter_map
           (fun (pos, v) ->
              match List.assoc_opt pos pairs with
              | Some d -> Some (d, v)
              | None -> None)
           changes);
    graft_changes;
    graft = (fun ~src ~onto -> Row.update onto (graft_changes src));
    blit =
      (fun ~src ~dst ->
         List.iter (fun (s, d) -> dst.(d) <- Row.get src s) pairs) }

let route_compiled pairs =
  let n = List.length pairs in
  let srcs = Array.make n 0 and dsts = Array.make n 0 in
  List.iteri
    (fun i (s, d) ->
       srcs.(i) <- s;
       dsts.(i) <- d)
    pairs;
  let max_src = Array.fold_left max (-1) srcs in
  let dst_of = Array.make (max_src + 1) (-1) in
  (* Reverse fill so the first pair wins, like [List.assoc]. *)
  for i = n - 1 downto 0 do
    dst_of.(srcs.(i)) <- dsts.(i)
  done;
  let lookup s =
    if s < 0 || s > max_src then -1 else Array.unsafe_get dst_of s
  in
  let blit ~src ~dst =
    for i = 0 to n - 1 do
      dst.(dsts.(i)) <- Row.get src srcs.(i)
    done
  in
  { pairs;
    dst_of_src = (fun s -> match lookup s with -1 -> None | d -> Some d);
    changes_through =
      (fun changes ->
         List.filter_map
           (fun (pos, v) ->
              match lookup pos with -1 -> None | d -> Some (d, v))
           changes);
    graft_changes =
      (fun src ->
         let rec go i =
           if i >= n then [] else (dsts.(i), Row.get src srcs.(i)) :: go (i + 1)
         in
         go 0);
    graft =
      (fun ~src ~onto ->
         let b = Row.Build.of_row onto in
         for i = 0 to n - 1 do
           Row.Build.set b dsts.(i) (Row.get src srcs.(i))
         done;
         Row.Build.finish b);
    blit }

let route mode pairs =
  match mode with
  | Interpreted -> route_interpreted pairs
  | Compiled -> route_compiled pairs

type proj = {
  positions : int list;
  project : Row.t -> Row.Key.t;
  mem : int -> bool;
  touches : (int * Value.t) list -> bool;
  filter_out : (int * Value.t) list -> (int * Value.t) list;
  covered_by : (int * Value.t) list -> bool;
  null_out : Row.t -> Row.t;
  any_non_null : Row.t -> bool;
  refresh_changes : Row.t -> (int * Value.t) list;
  graft_self : src:Row.t -> onto:Row.t -> Row.t;
}

let positions p = p.positions
let project p = p.project
let mem p = p.mem
let touches p = p.touches
let filter_out p = p.filter_out
let covered_by p = p.covered_by
let null_out p = p.null_out
let any_non_null p = p.any_non_null
let refresh_changes p = p.refresh_changes
let graft_self p = p.graft_self

let proj_interpreted ps =
  let mem i = List.mem i ps in
  { positions = ps;
    project = (fun row -> Row.Key.of_row row ps);
    mem;
    touches = (fun changes -> List.exists (fun (pos, _) -> mem pos) changes);
    filter_out =
      (fun changes -> List.filter (fun (pos, _) -> not (mem pos)) changes);
    covered_by =
      (fun changes -> List.for_all (fun i -> List.mem_assoc i changes) ps);
    null_out =
      (fun row -> Row.update row (List.map (fun i -> (i, Value.Null)) ps));
    any_non_null =
      (fun row ->
         List.exists (fun i -> not (Value.is_null (Row.get row i))) ps);
    refresh_changes =
      (fun src -> List.map (fun p -> (p, Row.get src p)) ps);
    graft_self =
      (fun ~src ~onto ->
         Row.update onto (List.map (fun p -> (p, Row.get src p)) ps)) }

let proj_compiled ps =
  let arr = Array.of_list ps in
  let n = Array.length arr in
  let max_pos = Array.fold_left max (-1) arr in
  let mask = Array.make (max_pos + 1) false in
  Array.iter (fun p -> mask.(p) <- true) arr;
  let mem p = p >= 0 && p <= max_pos && Array.unsafe_get mask p in
  { positions = ps;
    project =
      (fun row ->
         let out = Array.make n Value.Null in
         for i = 0 to n - 1 do
           out.(i) <- Row.get row arr.(i)
         done;
         Row.unsafe_of_array out);
    mem;
    touches = (fun changes -> List.exists (fun (pos, _) -> mem pos) changes);
    filter_out =
      (fun changes -> List.filter (fun (pos, _) -> not (mem pos)) changes);
    covered_by =
      (fun changes ->
         Array.for_all (fun p -> List.mem_assoc p changes) arr);
    null_out =
      (fun row ->
         let b = Row.Build.of_row row in
         Array.iter (fun p -> Row.Build.set b p Value.Null) arr;
         Row.Build.finish b);
    any_non_null =
      (fun row ->
         let rec go i =
           i < n && (not (Value.is_null (Row.get row arr.(i))) || go (i + 1))
         in
         go 0);
    refresh_changes =
      (fun src ->
         let rec go i =
           if i >= n then [] else (arr.(i), Row.get src arr.(i)) :: go (i + 1)
         in
         go 0);
    graft_self =
      (fun ~src ~onto ->
         let b = Row.Build.of_row onto in
         Row.Build.blit_positions ~src ~positions:arr b;
         Row.Build.finish b) }

let proj mode ps =
  match mode with
  | Interpreted -> proj_interpreted ps
  | Compiled -> proj_compiled ps
