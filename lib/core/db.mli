(** The full database facade: everything {!Nbsc_engine.Db} offers
    (same type [t] — values interchange freely) plus the managed
    schema-change API.

    [Nbsc_core.Db.Schema_change] is the one front door for online
    schema changes: it validates a {!Spec.any} into a [result] (the
    raw [Transform.foj]/[split]/[hsplit]/[merge] constructors raise
    [Invalid_argument] instead and are deprecated for new code),
    reports every failure as an {!Nbsc_error.t}, and hands back an
    opaque handle with status / step / cancel. The CLI, the REPL and
    the examples go through it. *)

include module type of struct
  include Nbsc_engine.Db
end

(** Managed lifecycle of one online schema change. *)
module Schema_change : sig
  module Options = Options
  (** The one-record configuration ({!Nbsc_core.Options}): batch sizes,
      synchronization strategy and migration strategy
      ([Eager | Lazy | Hybrid of { sweep_quantum : int }]) in a single
      value. *)

  type handle
  (** An in-flight (or finished) schema change, registered as a
      background job on its database — drive it with {!step}/{!run}
      or with [Db.step_jobs]/[Db.run_jobs] like any other job. *)

  (** A status report, taken by {!status}. *)
  type info = {
    sc_job : string;               (** job-registry name *)
    sc_operator : string;          (** "foj", "split", "hsplit", "merge" *)
    sc_phase : Transform.phase;
    sc_progress : Transform.progress;
    sc_routing : [ `Sources | `Targets ];
  }

  val start :
    t -> ?config:Transform.config -> ?options:Options.t ->
    ?exec:Domain_pool.exec -> Spec.any ->
    (handle, Nbsc_error.t) result
  (** Validate the spec, build the operator (target tables, indexes)
      and register the executor. A rejected specification returns
      [`Invalid] — nothing raises. [options] is the preferred
      configuration ({!Options.t}); it supersedes the deprecated
      [config] and [exec] arguments when given. [exec] (default
      {!Domain_pool.Serial}) shards the change's population and
      propagation across a domain pool. *)

  val resume :
    ?config:Transform.config -> ?options:Options.t ->
    ?exec:Domain_pool.exec ->
    Nbsc_engine.Persist.t -> (handle list, Nbsc_error.t) result
  (** Rebuild every schema change that was in flight when the reopened
      database crashed (see [Transform.resume]). Pass the same
      [options] the crashed jobs ran under — the migration strategy is
      an execution policy, not durable state. *)

  val status : handle -> info

  val step : handle -> [ `Running | `Done | `Failed of Nbsc_error.t ]
  (** One bounded quantum of background work. *)

  val run :
    ?between:(unit -> unit) -> handle -> (unit, Nbsc_error.t) result
  (** Drive to completion, calling [between] between quanta. *)

  val cancel : handle -> unit
  (** Stop the change and delete the transformed tables (paper,
      Sec. 6). No effect once done. *)

  val transform : handle -> Transform.t
  (** Escape hatch to the bare executor, for tests and benches. *)

  val pp_info : Format.formatter -> info -> unit
end
