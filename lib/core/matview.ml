open Nbsc_storage
module Db = Nbsc_engine.Db

type config = {
  scan_batch : int;
  propagate_batch : int;
}

let default_config = { scan_batch = 256; propagate_batch = 256 }

type t = {
  db : Db.t;
  config : config;
  name : string;
  pop : Population.t;
  prop : Propagator.t;
  mutable dropped : bool;
}

let create db ?(config = default_config) ?plan_mode spec =
  (* A materialized view is an FOJ transformation that never
     synchronizes: same preparation, population and redo rules, but no
     lock transfer (the view never takes over from its sources). The
     executor's lifecycle is not used — the view propagates forever and
     is never registered as a completable background job. *)
  let (module T : Transformation.S) =
    Transformation.foj ~transfer_locks:false ?plan_mode db spec
  in
  { db;
    config;
    name = spec.Spec.t_table;
    pop = T.population;
    prop = Transformation.start_propagator (Db.manager db) T.rules;
    dropped = false }

let populated t = Population.finished t.pop

let step t =
  if t.dropped then false
  else if not (Population.finished t.pop) then begin
    ignore (Population.step t.pop ~limit:t.config.scan_batch);
    true
  end
  else Propagator.step t.prop ~limit:t.config.propagate_batch > 0

let refresh t =
  if not t.dropped then begin
    while not (Population.finished t.pop) do
      ignore (Population.step t.pop ~limit:max_int)
    done;
    ignore (Propagator.run_to_head t.prop)
  end

let lag t = Propagator.lag t.prop
let table t = t.name

let drop t =
  if not t.dropped then begin
    t.dropped <- true;
    Population.close t.pop;
    Propagator.close t.prop;
    if Catalog.mem (Db.catalog t.db) t.name then
      Catalog.drop (Db.catalog t.db) t.name
  end
