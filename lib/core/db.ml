include Nbsc_engine.Db

module Schema_change = struct
  module Options = Options

  type handle = Transform.t

  type info = {
    sc_job : string;
    sc_operator : string;
    sc_phase : Transform.phase;
    sc_progress : Transform.progress;
    sc_routing : [ `Sources | `Targets ];
  }

  let transform h = h

  let start db ?config ?options ?exec spec =
    (* The builders validate specs with Invalid_argument (a contract
       several tests pin down); the façade folds that into a result. *)
    match
      (match spec with
       | Spec.Foj s -> Transform.foj db ?config ?options ?exec s
       | Spec.Split s -> Transform.split db ?config ?options ?exec s
       | Spec.Hsplit s -> Transform.hsplit db ?config ?options ?exec s
       | Spec.Merge s -> Transform.merge db ?config ?options ?exec s)
    with
    | t -> Ok t
    | exception Invalid_argument m -> Error (`Invalid m)
    | exception Failure m -> Error (`Msg m)
    | exception Nbsc_error.Error e -> Error e

  let resume = Transform.resume

  let status h =
    { sc_job = Transform.job_name h;
      sc_operator = Transform.name h;
      sc_phase = Transform.phase h;
      sc_progress = Transform.progress h;
      sc_routing = Transform.routing h }

  let step h =
    match Transform.step h with
    | `Running -> `Running
    | `Done -> `Done
    | `Failed m -> `Failed (`Job_failed (Transform.job_name h, m))

  let run ?between h =
    match Transform.run ?between h with
    | Ok () -> Ok ()
    | Error m -> Error (`Job_failed (Transform.job_name h, m))

  let cancel = Transform.abort

  let pp_info ppf i =
    Format.fprintf ppf "@[%s (%s): %a, routing=%s@ %a@]" i.sc_job i.sc_operator
      Transform.pp_phase i.sc_phase
      (match i.sc_routing with `Sources -> "sources" | `Targets -> "targets")
      Transform.pp_progress i.sc_progress
end
