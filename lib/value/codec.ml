(* All composite encodings are sequences of length-prefixed chunks:
   "<len>:<bytes>" repeated. Length prefixes make the format immune to
   any byte appearing inside a chunk. *)

let put_chunk buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let chunks_of_string s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match String.index_from_opt s i ':' with
      | None -> failwith "Codec: missing length prefix"
      | Some j ->
        let len =
          try int_of_string (String.sub s i (j - i))
          with _ -> failwith "Codec: bad length prefix"
        in
        if j + 1 + len > n then failwith "Codec: chunk overruns input";
        go (j + 1 + len) (String.sub s (j + 1) len :: acc)
  in
  go 0 []

let string_of_chunks chunks =
  let buf = Buffer.create 64 in
  List.iter (put_chunk buf) chunks;
  Buffer.contents buf

let encode_row (r : Row.t) =
  string_of_chunks (List.map Value.encode (Array.to_list r))

let decode_row s = Array.of_list (List.map Value.decode (chunks_of_string s))

let encode_changes changes =
  string_of_chunks
    (List.concat_map
       (fun (i, v) -> [ string_of_int i; Value.encode v ])
       changes)

let decode_changes s =
  let rec pair = function
    | [] -> []
    | [ _ ] -> failwith "Codec.decode_changes: odd chunk count"
    | i :: v :: rest ->
      let pos =
        try int_of_string i
        with _ -> failwith "Codec.decode_changes: bad position"
      in
      (pos, Value.decode v) :: pair rest
  in
  pair (chunks_of_string s)

let encode_string_list = string_of_chunks
let decode_string_list = chunks_of_string

(* Buffer-direct variants for the WAL persist sink: encoding there runs
   once per log record, and building the nested composite strings only
   to copy them into an output buffer showed up in the engine bench.
   Byte-for-byte the same format as the string encoders above. *)

let add_chunk = put_chunk

let add_chunk_of_buffer buf inner =
  Buffer.add_string buf (string_of_int (Buffer.length inner));
  Buffer.add_char buf ':';
  Buffer.add_buffer buf inner

(* One value as a chunk, without materialising [Value.encode]'s
   intermediate string: the encoded length of every constructor is
   known (or computable from one digit string), so the length prefix
   can be written first and the payload streamed behind it. *)
let add_value_chunk buf (v : Value.t) =
  match v with
  | Value.Null -> Buffer.add_string buf "1:N"
  | Value.Bool true -> Buffer.add_string buf "2:Bt"
  | Value.Bool false -> Buffer.add_string buf "2:Bf"
  | Value.Int x ->
    let d = string_of_int x in
    Buffer.add_string buf (string_of_int (1 + String.length d));
    Buffer.add_string buf ":I";
    Buffer.add_string buf d
  | Value.Float x ->
    let d = Int64.to_string (Int64.bits_of_float x) in
    Buffer.add_string buf (string_of_int (1 + String.length d));
    Buffer.add_string buf ":F";
    Buffer.add_string buf d
  | Value.Text s ->
    let d = string_of_int (String.length s) in
    Buffer.add_string buf
      (string_of_int (1 + String.length d + 1 + String.length s));
    Buffer.add_string buf ":T";
    Buffer.add_string buf d;
    Buffer.add_char buf ':';
    Buffer.add_string buf s

let encode_row_into buf (r : Row.t) = Array.iter (add_value_chunk buf) r

let encode_changes_into buf changes =
  List.iter
    (fun (i, v) ->
       put_chunk buf (string_of_int i);
       add_value_chunk buf v)
    changes
