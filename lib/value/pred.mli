(** Row predicates.

    A small, serializable predicate language over named columns, used
    by the horizontal-split transformation (the "other relational
    operators" the paper's conclusion calls for), by selections in the
    SQL front end, and by tests. Compile against a schema once, then
    evaluate per row at array-index speed. *)

type op = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Cmp of string * op * Value.t   (** column op constant *)
  | Is_null of string
  | And of t * t
  | Or of t * t
  | Not of t

val compile : Schema.t -> t -> (Row.t -> bool)
(** Resolve column names to positions.
    @raise Not_found on unknown columns.

    Comparison semantics are SQL-ish three-valued collapsed to bool:
    any [Cmp] against NULL (either side) is false; use [Is_null] to
    test for NULL explicitly. *)

val eval : Schema.t -> t -> Row.t -> bool
(** One-shot [compile] + apply (tests, small inputs). *)

val columns : t -> string list
(** Column names mentioned, without duplicates. *)

val negate : t -> t
(** Logical complement under the collapsed semantics above —
    {b note}: because NULL comparisons are false on both sides,
    [negate (Cmp ...)] is [Not (Cmp ...)], which is true for NULLs.
    The horizontal split relies on [p] and [negate p] partitioning
    every row exactly one way, which [Not] guarantees. *)

val encode : t -> string
(** Compact tagged encoding, exact inverse of {!decode}. Lets a
    predicate ride inside a durable resume payload (the horizontal
    split's partition predicate must survive a crash). *)

val decode : string -> t
(** @raise Failure on malformed input. *)

val pp : Format.formatter -> t -> unit
