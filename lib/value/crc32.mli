(** CRC-32 (IEEE 802.3), the per-line checksum of the on-disk format.

    Every WAL line and snapshot line is framed as
    [<8 lowercase hex chars>:<payload>]; the hex field is the CRC-32 of
    the payload bytes. A single flipped bit anywhere in a line — payload
    or checksum field — is guaranteed to be detected; longer burst
    errors are detected with probability [1 - 2{^-32}]. *)

type t = int32

val of_string : string -> t

val of_substring : string -> pos:int -> len:int -> t

val of_buffer : Buffer.t -> t
(** Checksum a buffer's current contents without copying them out —
    the WAL sink's hot path. *)

val equal : t -> t -> bool

val to_hex : t -> string
(** Always exactly 8 lowercase hex characters (zero-padded). *)

val of_hex : string -> t option
(** Inverse of {!to_hex}; [None] unless given exactly 8 hex digits. *)
