type op = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Cmp of string * op * Value.t
  | Is_null of string
  | And of t * t
  | Or of t * t
  | Not of t

let cmp_holds op c =
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let rec compile schema = function
  | True -> fun _ -> true
  | False -> fun _ -> false
  | Cmp (col, op, v) ->
    let i = Schema.position schema col in
    fun row ->
      let x = Row.get row i in
      (* NULL never compares (SQL semantics collapsed to false). *)
      (not (Value.is_null x))
      && (not (Value.is_null v))
      && cmp_holds op (Value.compare x v)
  | Is_null col ->
    let i = Schema.position schema col in
    fun row -> Value.is_null (Row.get row i)
  | And (a, b) ->
    let fa = compile schema a and fb = compile schema b in
    fun row -> fa row && fb row
  | Or (a, b) ->
    let fa = compile schema a and fb = compile schema b in
    fun row -> fa row || fb row
  | Not a ->
    let fa = compile schema a in
    fun row -> not (fa row)

let eval schema t row = compile schema t row

let columns t =
  let rec go acc = function
    | True | False -> acc
    | Cmp (c, _, _) | Is_null c -> c :: acc
    | And (a, b) | Or (a, b) -> go (go acc a) b
    | Not a -> go acc a
  in
  List.sort_uniq String.compare (go [] t)

let negate t = Not t

let op_tag = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let op_of_tag = function
  | "eq" -> Eq | "ne" -> Ne | "lt" -> Lt | "le" -> Le | "gt" -> Gt | "ge" -> Ge
  | s -> failwith ("Pred.decode: unknown operator " ^ s)

let rec encode t =
  Codec.encode_string_list
    (match t with
     | True -> [ "t" ]
     | False -> [ "f" ]
     | Cmp (c, op, v) -> [ "cmp"; c; op_tag op; Value.encode v ]
     | Is_null c -> [ "null"; c ]
     | And (a, b) -> [ "and"; encode a; encode b ]
     | Or (a, b) -> [ "or"; encode a; encode b ]
     | Not a -> [ "not"; encode a ])

let rec decode s =
  match Codec.decode_string_list s with
  | [ "t" ] -> True
  | [ "f" ] -> False
  | [ "cmp"; c; op; v ] -> Cmp (c, op_of_tag op, Value.decode v)
  | [ "null"; c ] -> Is_null c
  | [ "and"; a; b ] -> And (decode a, decode b)
  | [ "or"; a; b ] -> Or (decode a, decode b)
  | [ "not"; a ] -> Not (decode a)
  | _ -> failwith "Pred.decode: malformed predicate"

let pp_op ppf op =
  Format.pp_print_string ppf
    (match op with Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=")

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Cmp (c, op, v) -> Format.fprintf ppf "%s %a %a" c pp_op op Value.pp v
  | Is_null c -> Format.fprintf ppf "%s IS NULL" c
  | And (a, b) -> Format.fprintf ppf "(%a AND %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp a pp b
  | Not a -> Format.fprintf ppf "NOT %a" pp a
