type t = Value.t array

let make vs = Array.of_list vs
let of_array a = Array.copy a
let unsafe_of_array a = a
let arity = Array.length
let get r i = r.(i)

let set r i v =
  let r' = Array.copy r in
  r'.(i) <- v;
  r'

let update r changes =
  let r' = Array.copy r in
  List.iter (fun (i, v) -> r'.(i) <- v) changes;
  r'

let project r positions = Array.of_list (List.map (fun i -> r.(i)) positions)

let compare a b =
  let n = Array.length a and m = Array.length b in
  if n <> m then Stdlib.compare n m
  else
    let rec go i =
      if i >= n then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let equal a b = compare a b = 0

let hash r = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 r

let pp ppf r =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Value.pp)
    (Array.to_list r)

let to_string r = Format.asprintf "%a" pp r

let all_null n = Array.make n Value.Null
let is_all_null r = Array.for_all Value.is_null r

module Build = struct
  type row = t
  type t = Value.t array

  let of_row = Array.copy
  let null n = Array.make n Value.Null
  let set (b : t) i v = b.(i) <- v
  let blit_positions ~src ~positions (b : t) =
    Array.iter (fun p -> b.(p) <- src.(p)) positions
  let finish (b : t) : row = b
end

module Key = struct
  type row = t
  type t = Value.t array

  let of_row (r : row) positions = project r positions
  let equal = equal
  let compare = compare
  let hash = hash
  let pp = pp
  let to_string = to_string
  let has_null k = Array.exists Value.is_null k

  module Tbl = Hashtbl.Make (struct
      type nonrec t = t

      let equal = equal
      let hash = hash
    end)

  module Map = Map.Make (struct
      type nonrec t = t

      let compare = compare
    end)
end
