(** Rows (records) and keys.

    A row is an immutable array of values whose positions are given
    meaning by a {!Schema.t}. A key is the projection of a row onto key
    positions; keys are used as hash-table keys throughout the engine,
    so they come with [equal]/[hash]/[compare]. *)

type t = Value.t array

val make : Value.t list -> t
val of_array : Value.t array -> t
(** Copies, so later mutation of the argument cannot alias. *)

val unsafe_of_array : Value.t array -> t
(** Adopts the array without copying. Hot-path constructor for callers
    that just built the array and will never mutate it again (compiled
    rule plans, {!Build}); everyone else goes through {!of_array}. *)

val arity : t -> int
val get : t -> int -> Value.t

val set : t -> int -> Value.t -> t
(** Functional update: returns a fresh row. *)

val update : t -> (int * Value.t) list -> t
(** Apply several positional updates at once (fresh row). *)

val project : t -> int list -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val all_null : int -> t
(** [all_null n] is the n-ary all-NULL row — the R-null / S-null record
    of the paper (Sec. 4.1). *)

val is_all_null : t -> bool

(** In-place batch builder for compiled plans: start from a copy or an
    all-NULL array, mutate positions, then adopt the result without a
    final copy. A builder must not escape after [finish]. *)
module Build : sig
  type row = t
  type t

  val of_row : row -> t
  val null : int -> t
  val set : t -> int -> Value.t -> unit
  val blit_positions : src:row -> positions:int array -> t -> unit
  (** Copy the values at [positions] from [src] (same coordinates). *)

  val finish : t -> row
end

(** Keys: projections of rows used for identity. *)
module Key : sig
  type row = t
  type t = Value.t array

  val of_row : row -> int list -> t
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
  val has_null : t -> bool

  (** Hashtbl over keys. *)
  module Tbl : Hashtbl.S with type key = t

  (** Ordered map over keys. *)
  module Map : Map.S with type key = t
end
