(** Wire codec for rows and row fragments.

    The write-ahead log stores rows and partial-row updates as strings
    so a log can be serialized, shipped or replayed byte-for-byte (the
    paper's method works from the log alone, so the log must be
    self-contained). Every encoder has an exact inverse. *)

val encode_row : Row.t -> string
val decode_row : string -> Row.t

val encode_changes : (int * Value.t) list -> string
(** Positional updates, as carried by update log records. *)

val decode_changes : string -> (int * Value.t) list

val encode_string_list : string list -> string
val decode_string_list : string -> string list

(** {2 Buffer-direct encoding}

    Same byte format as the string encoders, written straight into a
    caller-supplied buffer — the WAL persist sink encodes one record
    per write operation and must not build the nested composite
    strings just to copy them. *)

val add_chunk : Buffer.t -> string -> unit
(** Append one length-prefixed chunk. *)

val add_chunk_of_buffer : Buffer.t -> Buffer.t -> unit
(** Append the contents of the second buffer as one chunk. *)

val add_value_chunk : Buffer.t -> Value.t -> unit
(** [add_chunk buf (Value.encode v)] minus the intermediate string. *)

val encode_row_into : Buffer.t -> Row.t -> unit
(** [add_chunk buf (encode_row r)] minus the intermediate string — the
    appended bytes are the {e chunks} of the row, so wrap with
    {!add_chunk_of_buffer} where [encode_row]'s result was itself a
    chunk. *)

val encode_changes_into : Buffer.t -> (int * Value.t) list -> unit
