(* CRC-32 (IEEE 802.3 polynomial, reflected), the checksum every
   durable line carries. Table-driven: 256-entry table computed once at
   module initialisation, one lookup + xor per byte. Implemented here
   rather than pulled in as a dependency — the container toolchain is
   frozen, and the algorithm is 20 lines. *)

type t = int32

let poly = 0xEDB88320l

let table =
  Array.init 256 (fun n ->
      let c = ref (Int32.of_int n) in
      for _ = 0 to 7 do
        c :=
          if Int32.logand !c 1l <> 0l then
            Int32.logxor (Int32.shift_right_logical !c 1) poly
          else Int32.shift_right_logical !c 1
      done;
      !c)

let update crc byte =
  let idx = Int32.to_int (Int32.logand (Int32.logxor crc (Int32.of_int byte)) 0xffl) in
  Int32.logxor (Int32.shift_right_logical crc 8) (Array.unsafe_get table idx)

let finish crc = Int32.logxor crc 0xffffffffl

let of_substring s ~pos ~len =
  let crc = ref 0xffffffffl in
  for i = pos to pos + len - 1 do
    crc := update !crc (Char.code (String.unsafe_get s i))
  done;
  finish !crc

let of_string s = of_substring s ~pos:0 ~len:(String.length s)

(* Over a [Buffer.t] without materialising its contents — the WAL sink
   checksums the encoded record straight out of its reusable buffer
   (PR 6's no-intermediate-strings discipline). [Buffer.nth] is O(1). *)
let of_buffer b =
  let n = Buffer.length b in
  let crc = ref 0xffffffffl in
  for i = 0 to n - 1 do
    crc := update !crc (Char.code (Buffer.nth b i))
  done;
  finish !crc

let equal = Int32.equal

let to_hex c = Printf.sprintf "%08lx" c

let of_hex s =
  if String.length s <> 8 then None
  else
    let ok = ref true in
    String.iter
      (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> () | _ -> ok := false)
      s;
    if not !ok then None
    else
      (* [Int32.of_string] accepts the full unsigned 32-bit range for
         hexadecimal literals. *)
      match Int32.of_string ("0x" ^ s) with
      | c -> Some c
      | exception Failure _ -> None
