(** The paper's experiments (Sec. 6, Figure 4), as parameter sweeps
    over paired simulation runs.

    Each function returns the series a figure plots; the bench harness
    prints them. Absolute numbers depend on the cost model (see
    DESIGN.md); the claims under reproduction are the {e shapes}:
    interference grows with workload, response time suffers more than
    throughput, a heavier update mix on the transformed tables needs a
    higher propagation priority and interferes more, and below a
    priority threshold the transformation never completes. *)

type point = {
  x : float;
  rel_throughput : float;
  rel_response : float;
  tf_completed : bool;
  tf_done_at : int option;
}

val pp_point : Format.formatter -> point -> unit

type setup = {
  scale : int;
      (** source-table scale; the paper uses 50 000 T rows (split) and
          50 000 + 20 000 rows (FOJ) *)
  duration : int;
  warmup : int;
  seed : int;
  seeds : int;       (** paired runs averaged per point *)
  priority : float;  (** transformation priority for workload sweeps *)
}

val default_setup : setup
(** Paper-scale tables with a measurement window sized so the
    transformation is still running while we measure. *)

val quick_setup : setup
(** Small tables and window, for tests and smoke runs. *)

(** Figure 4(a)/4(b): interference of the {e initial population} of a
    split transformation on throughput and response time, 20% of
    updates on T, as a function of workload %. One [point] per
    workload. *)
val fig4ab_population : ?setup:setup -> workloads:float list -> unit ->
  point list

(** Same experiment for the FOJ transformation (the paper reports the
    results are "very similar"). *)
val fig4ab_population_foj : ?setup:setup -> workloads:float list -> unit ->
  point list

(** Figure 4(c): interference of {e log propagation} for a given share
    of updates on T (0.2 and 0.8 in the paper). The transformation is
    created before the window so population is done and propagation
    dominates. *)
val fig4c_propagation : ?setup:setup -> source_share:float ->
  workloads:float list -> unit -> point list

val fig4c_propagation_foj : ?setup:setup -> source_share:float ->
  workloads:float list -> unit -> point list

(** Figure 4(d): completion time and throughput interference versus
    transformation priority at a fixed workload (75% in the paper).
    Points with [tf_completed = false] did not converge within the
    simulation horizon — the paper's "never finishes if the priority is
    set too low". *)
val fig4d_priority : ?setup:setup -> workload_pct:float ->
  priorities:float list -> unit -> point list

(** The same sweep with a fresh {!Nbsc_core.Governor} attached to each
    point: the configured priority becomes a floor that the feedback
    loop escalates whenever propagation lag stops shrinking, so every
    point — including those that never converge statically — completes
    within the horizon, at the price of more interference while the
    gain is high. *)
val fig4d_priority_governed : ?setup:setup -> workload_pct:float ->
  priorities:float list -> unit -> point list

(** The synchronization-window measurement backing the "< 1 ms" claim:
    runs a split transformation under load with the non-blocking abort
    strategy and reports the size (log records) and wall-clock time of
    the final latched propagation. *)
type sync_report = {
  final_records : int;
  wall_ns : int option;
  forced_aborts : int;
  strategy_name : string;
}

val sync_window : ?setup:setup -> strategy:Nbsc_core.Transform.strategy ->
  unit -> (sync_report, Nbsc_error.t) result
(** Errors with [`Invalid] when the configured run never surfaced
    transformation progress (misconfigured horizon or gate) instead of
    crashing the experiment harness. *)

(** Ablation: the framework versus the two comparators — blocking
    [INSERT INTO ... SELECT] (Sec. 1) and trigger-based maintenance
    (Ronström, Sec. 2.1) — under the same workload. The blocking dump
    stalls every source-table transaction for its whole duration; the
    trigger method pays maintenance inside user transactions; the
    log-based framework defers it. *)
type method_row = {
  label : string;
  m_rel_throughput : float;
  m_rel_response : float;
  m_done_at : int option;
  m_retries : int;   (** user operations stalled on latches/freezes *)
}

val method_comparison : ?setup:setup -> workload_pct:float -> unit ->
  method_row list

val pp_method_row : Format.formatter -> method_row -> unit

(** Ablation: the iteration-analysis threshold (paper Sec. 3.3 — "the
    synchronization step should not be started if a significant portion
    of the log remains to be propagated"). Sweeping the lag threshold
    trades the size of the final latched iteration (the blocking
    window) against how eagerly the transformation can finish. *)
type threshold_row = {
  t_threshold : int;
  t_final_records : int;    (** size of the latched final iteration *)
  t_done_at : int option;
  t_rel_response : float;
}

val threshold_sweep : ?setup:setup -> thresholds:int list -> unit ->
  threshold_row list

val pp_threshold_row : Format.formatter -> threshold_row -> unit

(** Ablation: propagation batch size — bigger slices monopolize the
    server longer per grant (burstier response times) but carry less
    per-slice overhead. *)
type batch_row = {
  b_batch : int;
  b_done_at : int option;
  b_rel_response : float;
  b_rel_throughput : float;
}

val batch_sweep : ?setup:setup -> batches:int list -> unit -> batch_row list
val pp_batch_row : Format.formatter -> batch_row -> unit

(** Ablation: the three iteration-analysis bases of paper Sec. 3.3
    compared head-to-head. *)
type policy_row = {
  p_name : string;
  p_final_records : int;
  p_done_at : int option;
  p_iterations : int;
}

val policy_comparison :
  ?setup:setup -> unit -> (policy_row list, Nbsc_error.t) result
(** Errors with [`Invalid] when any point's run never surfaced
    transformation progress (see {!sync_window}). *)

val pp_policy_row : Format.formatter -> policy_row -> unit

(** {1 A traced fixed-seed run}

    The shared harness behind [nbsc trace], [bench --trace] and the
    span-nesting tests: a split transformation under 75% workload with
    every trace event captured. Because the registry clock is the
    simulator's virtual time, the same [setup.seed] always produces the
    same trace. *)

(** One span's lifetime, extracted from the event stream. *)
type phase_timing = {
  ph_name : string;            (** e.g. ["schema_change"], ["populate"] *)
  ph_span : int;
  ph_parent : int option;
  ph_start : float;            (** virtual time *)
  ph_end : float option;       (** [None] if still open at the horizon *)
}

val phase_timings : Nbsc_obs.Obs.event list -> phase_timing list
(** Spans in open order, paired with their close events. *)

val phases_to_json : phase_timing list -> Nbsc_obs.Json.t
(** The per-phase timing report the bench prints:
    [[{"name":..,"span":..,"parent":..?,"start":..,"end":..?}, ...]]. *)

type traced = {
  tr_result : Sim.result;
  tr_events : Nbsc_obs.Obs.event list;  (** everything, oldest first *)
  tr_phases : phase_timing list;
}

val traced_run : ?setup:setup -> ?sink:Nbsc_obs.Obs.sink -> unit -> traced
(** Run with an in-memory capture (always) and [sink] (additionally,
    e.g. a {!Nbsc_obs.Obs.jsonl_sink}) attached before the
    transformation starts. *)
